#!/usr/bin/env bash
# bench_record — measure the engine's tracked perf metrics and append
# correctly-shaped history entries to BENCH_engine.json, so the recorded
# perf trajectory (README "Performance") stops being hand-edited.
#
# Measure mode (run once on the baseline commit, once on the candidate):
#   tools/bench_record.sh measure --build build --out after.json [--reps 5] \
#       [--seeds 8] [--episodes 300] [--distribute N]
#
#   Runs bench_micro_components (BM_FullSurrogateEvaluation,
#   BM_MonteCarloSurrogate/16, BM_CostEvaluator) and bench_engine_scaling
#   at parallelism 1 and 4, takes the min over --reps repetitions (the
#   noise-robust estimator the recorded history uses), and writes one flat
#   measurement JSON. Every measurement records hardware_threads (nproc),
#   so the single-hardware-thread caveat on recorded scaling numbers is
#   machine-checkable instead of a prose footnote. With --distribute N it
#   also times the same aggregate study sharded over N lcda_run worker
#   processes (min wall-clock over the reps), both through the default
#   persistent worker pool and with --no-worker-pool (spawn-per-shard),
#   so the pool's dispatch win is tracked as pool_speedup.
#
# Append mode (combine a before/after pair into the history):
#   tools/bench_record.sh append --before before.json --after after.json \
#       --change "what this PR changed" --baseline-commit abc1234 \
#       [--file BENCH_engine.json]
#
# The CMake target `bench_record` runs measure mode against the current
# build tree.
set -euo pipefail

mode="${1:-}"
shift || true

BUILD=build
OUT=""
REPS=3
SEEDS=8
EPISODES=300
DISTRIBUTE=0
BEFORE=""
AFTER=""
CHANGE=""
BASELINE_COMMIT=""
BENCH_FILE="BENCH_engine.json"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build) BUILD="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --reps) REPS="$2"; shift 2 ;;
    --seeds) SEEDS="$2"; shift 2 ;;
    --episodes) EPISODES="$2"; shift 2 ;;
    --distribute) DISTRIBUTE="$2"; shift 2 ;;
    --before) BEFORE="$2"; shift 2 ;;
    --after) AFTER="$2"; shift 2 ;;
    --change) CHANGE="$2"; shift 2 ;;
    --baseline-commit) BASELINE_COMMIT="$2"; shift 2 ;;
    --file) BENCH_FILE="$2"; shift 2 ;;
    *) echo "bench_record: unknown argument $1" >&2; exit 2 ;;
  esac
done

case "$mode" in
measure)
  [[ -n "$OUT" ]] || { echo "bench_record measure: --out required" >&2; exit 2; }
  [[ -x "$BUILD/bench_micro_components" ]] || {
    echo "bench_record: $BUILD/bench_micro_components missing (configure with Google Benchmark)" >&2
    exit 1
  }
  [[ -x "$BUILD/bench_engine_scaling" ]] || {
    echo "bench_record: $BUILD/bench_engine_scaling missing" >&2; exit 1
  }

  tmpdir=$(mktemp -d)
  trap 'rm -rf "$tmpdir"' EXIT

  echo "bench_record: micro benchmarks ($REPS repetitions)..." >&2
  "$BUILD/bench_micro_components" \
    --benchmark_filter='BM_FullSurrogateEvaluation$|BM_MonteCarloSurrogate/16$|BM_CostEvaluator$' \
    --benchmark_repetitions="$REPS" \
    --benchmark_format=json >"$tmpdir/micro.json" 2>/dev/null

  echo "bench_record: engine scaling ($REPS runs of $SEEDS seeds x $EPISODES episodes)..." >&2
  for rep in $(seq "$REPS"); do
    LCDA_PARALLELISM=4 "$BUILD/bench_engine_scaling" "$SEEDS" "$EPISODES" \
      --json="$tmpdir/engine_$rep.json" >/dev/null
  done

  # Warm-rerun wall clock: one cold aggregate study populating a fresh
  # persistent cache, then the identical command re-run against the
  # populated cache (min over the reps). The warm number is the tracked
  # save+load+hit-path cost of the evaluation store.
  [[ -x "$BUILD/lcda_run" ]] || {
    echo "bench_record: $BUILD/lcda_run missing (needed for warm rerun)" >&2
    exit 1
  }
  echo "bench_record: warm rerun (1 cold + $REPS warm, $SEEDS seeds x $EPISODES episodes)..." >&2
  cachedir="$tmpdir/warm_cache"
  rm -rf "$cachedir"
  start=$(date +%s%N)
  "$BUILD/lcda_run" --scenario=paper-energy --strategy=rl --aggregate \
    --seeds="$SEEDS" --episodes="$EPISODES" --parallelism=1 \
    --cache-dir="$cachedir" --quiet >/dev/null
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 )) >"$tmpdir/warm_cold.txt"
  : >"$tmpdir/warm_walls.txt"
  for rep in $(seq "$REPS"); do
    start=$(date +%s%N)
    "$BUILD/lcda_run" --scenario=paper-energy --strategy=rl --aggregate \
      --seeds="$SEEDS" --episodes="$EPISODES" --parallelism=1 \
      --cache-dir="$cachedir" --quiet >/dev/null
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 )) >>"$tmpdir/warm_walls.txt"
  done

  # Optional distributed-mode wall clock: the same NACIM aggregate study
  # sharded over worker processes through lcda_run --distribute.
  if [[ "$DISTRIBUTE" -gt 0 ]]; then
    [[ -x "$BUILD/lcda_run" ]] || {
      echo "bench_record: $BUILD/lcda_run missing (needed for --distribute)" >&2
      exit 1
    }
    echo "bench_record: distributed aggregate ($REPS runs, $DISTRIBUTE workers, pooled + --no-worker-pool)..." >&2
    : >"$tmpdir/dist_walls.txt"
    : >"$tmpdir/dist_nopool_walls.txt"
    for rep in $(seq "$REPS"); do
      start=$(date +%s%N)
      "$BUILD/lcda_run" --scenario=paper-energy --strategy=rl --aggregate \
        --seeds="$SEEDS" --episodes="$EPISODES" --parallelism=4 \
        --distribute="$DISTRIBUTE" --quiet >/dev/null 2>&1
      end=$(date +%s%N)
      echo $(( (end - start) / 1000000 )) >>"$tmpdir/dist_walls.txt"
      start=$(date +%s%N)
      "$BUILD/lcda_run" --scenario=paper-energy --strategy=rl --aggregate \
        --seeds="$SEEDS" --episodes="$EPISODES" --parallelism=4 \
        --distribute="$DISTRIBUTE" --no-worker-pool --quiet >/dev/null 2>&1
      end=$(date +%s%N)
      echo $(( (end - start) / 1000000 )) >>"$tmpdir/dist_nopool_walls.txt"
    done

    # Straggler mitigation: the same sharded study with two injected
    # 400ms-per-seed stragglers, once with work stealing (the default)
    # and once with --no-steal. Records both min walls plus the steal
    # count reported in the coordinator's stderr summary; the quotient
    # is the tracked straggler-mitigation win.
    echo "bench_record: straggler mitigation ($REPS runs each, steal on/off)..." >&2
    : >"$tmpdir/straggler_steal_walls.txt"
    : >"$tmpdir/straggler_nosteal_walls.txt"
    : >"$tmpdir/straggler_steals.txt"
    for rep in $(seq "$REPS"); do
      start=$(date +%s%N)
      LCDA_FAULT="sleep=400@seed:0,1" \
        "$BUILD/lcda_run" --scenario=paper-energy --strategy=rl --aggregate \
        --seeds="$SEEDS" --episodes="$EPISODES" --parallelism=4 \
        --distribute="$DISTRIBUTE" --quiet \
        >/dev/null 2>"$tmpdir/straggler_rep.err"
      end=$(date +%s%N)
      echo $(( (end - start) / 1000000 )) >>"$tmpdir/straggler_steal_walls.txt"
      grep -o 'steals=[0-9]*' "$tmpdir/straggler_rep.err" | head -1 \
        | cut -d= -f2 >>"$tmpdir/straggler_steals.txt"
      start=$(date +%s%N)
      LCDA_FAULT="sleep=400@seed:0,1" \
        "$BUILD/lcda_run" --scenario=paper-energy --strategy=rl --aggregate \
        --seeds="$SEEDS" --episodes="$EPISODES" --parallelism=4 \
        --distribute="$DISTRIBUTE" --no-steal --quiet >/dev/null 2>&1
      end=$(date +%s%N)
      echo $(( (end - start) / 1000000 )) >>"$tmpdir/straggler_nosteal_walls.txt"
    done
  fi

  # Checkpoint overhead at the default cadence (every 64 episodes), on
  # two workloads. The headline number uses the faithful train-then-
  # Monte-Carlo evaluator (shrunk so one episode is ~0.2 s) — the class
  # of study checkpointing exists for — and must stay within the <=5%
  # budget. The surrogate pair is the recorded worst case: with ~2 us
  # evaluations the run is so cheap that writing any O(state) snapshot
  # dominates it, so its ratio documents the floor cost, not the budget.
  echo "bench_record: checkpoint overhead, surrogate worst case ($REPS runs each, off/on)..." >&2
  ckptdir="$tmpdir/ckpt_store"
  : >"$tmpdir/ckpt_off_walls.txt"
  : >"$tmpdir/ckpt_on_walls.txt"
  for rep in $(seq "$REPS"); do
    start=$(date +%s%N)
    "$BUILD/lcda_run" --scenario=paper-energy --strategy=rl --aggregate \
      --seeds="$SEEDS" --episodes="$EPISODES" --parallelism=1 \
      --quiet >/dev/null 2>&1
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 )) >>"$tmpdir/ckpt_off_walls.txt"
    rm -rf "$ckptdir"
    start=$(date +%s%N)
    "$BUILD/lcda_run" --scenario=paper-energy --strategy=rl --aggregate \
      --seeds="$SEEDS" --episodes="$EPISODES" --parallelism=1 \
      --checkpoint-dir="$ckptdir" --quiet >/dev/null 2>&1
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 )) >>"$tmpdir/ckpt_on_walls.txt"
  done

  echo "bench_record: checkpoint overhead, faithful evaluator (1 run each, off/on)..." >&2
  faithful_eps=96
  faithful_args=(--scenario=trained-small --strategy=genetic
    --episodes="$faithful_eps" --seeds=1
    --set=trained.epochs=1 --set=trained.dataset.train_per_class=8
    --set=trained.dataset.test_per_class=8
    --set=trained.monte_carlo_samples=2)
  start=$(date +%s%N)
  "$BUILD/lcda_run" "${faithful_args[@]}" --quiet >/dev/null 2>&1
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 )) >"$tmpdir/ckpt_faithful_off.txt"
  rm -rf "$ckptdir"
  start=$(date +%s%N)
  "$BUILD/lcda_run" "${faithful_args[@]}" --checkpoint-dir="$ckptdir" \
    --quiet >/dev/null 2>&1
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 )) >"$tmpdir/ckpt_faithful_on.txt"
  echo "$faithful_eps" >"$tmpdir/ckpt_faithful_eps.txt"

  # Observability overhead on the same faithful workload: one run with
  # the obs substrate fully on (--trace-spans + --metrics-out) against
  # the obs-off wall already measured above (the checkpoint pair's "off"
  # run is the identical command). The per-episode engine cost dwarfs
  # the one-time export tail here, which is what the <=1.05 budget
  # (README "Observability") is about — the ~2 us surrogate runs are
  # cheaper than writing any trace file at all.
  echo "bench_record: observability overhead, faithful evaluator (1 obs-on run)..." >&2
  start=$(date +%s%N)
  "$BUILD/lcda_run" "${faithful_args[@]}" \
    --trace-spans="$tmpdir/obs_trace.json" \
    --metrics-out="$tmpdir/obs_metrics.json" --quiet >/dev/null 2>&1
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 )) >"$tmpdir/obs_on_wall.txt"

  # Crash recovery: kill a single-seed study three-quarters through via
  # the fault harness, resume it, and record how many episodes the resume
  # recovered from the checkpoint instead of re-running. resumed / total
  # is the recovery_ratio.
  echo "bench_record: crash recovery (kill at 3/4, resume)..." >&2
  rm -rf "$ckptdir"
  kill_ep=$(( EPISODES * 3 / 4 ))
  rc=0
  LCDA_FAULT="kill@episode:$kill_ep" \
    "$BUILD/lcda_run" --scenario=paper-energy --strategy=genetic \
    --episodes="$EPISODES" --seeds=1 --checkpoint-dir="$ckptdir" \
    --quiet >/dev/null 2>&1 || rc=$?
  [[ "$rc" -eq 42 ]] || {
    echo "bench_record: injected crash exited $rc (want 42)" >&2; exit 1
  }
  start=$(date +%s%N)
  "$BUILD/lcda_run" --scenario=paper-energy --strategy=genetic \
    --episodes="$EPISODES" --seeds=1 --checkpoint-dir="$ckptdir" --resume \
    --quiet >/dev/null 2>"$tmpdir/recovery.err"
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 )) >"$tmpdir/recovery_wall.txt"
  grep -o 'resumed_episodes=[0-9]*' "$tmpdir/recovery.err" | head -1 \
    | cut -d= -f2 >"$tmpdir/recovery_resumed.txt"
  echo "$kill_ep" >"$tmpdir/recovery_kill_ep.txt"

  # nproc is what std::thread::hardware_concurrency reports on Linux
  # (both honour the process's cpu affinity mask / cgroup pinning).
  HW_THREADS=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)

  python3 - "$tmpdir" "$OUT" "$REPS" "$SEEDS" "$EPISODES" "$HW_THREADS" "$DISTRIBUTE" <<'PYEOF'
import json, sys
tmpdir, out_path, reps, seeds, episodes, hw_threads, distribute = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]),
    int(sys.argv[5]), int(sys.argv[6]), int(sys.argv[7]))

micro = json.load(open(f"{tmpdir}/micro.json"))
def bench_min(name):
    times = [b["real_time"] for b in micro["benchmarks"]
             if b.get("run_type") != "aggregate" and b["name"] == name]
    if not times:
        raise SystemExit(f"bench_record: no samples for {name}")
    return min(times)

walls = {1: [], 4: []}
for rep in range(1, reps + 1):
    sweep = json.load(open(f"{tmpdir}/engine_{rep}.json"))["sweep"]
    for row in sweep:
        if row["parallelism"] in walls:
            walls[row["parallelism"]].append(row["wall_ms"])
for par, values in walls.items():
    if not values:
        raise SystemExit(f"bench_record: engine sweep has no parallelism-{par} row "
                         "(is LCDA_PARALLELISM < 4?)")

measurement = {
    "format": "lcda-bench-measurement-v1",
    "reps": reps,
    "estimator": "min",
    "hardware_threads": hw_threads,
    "surrogate_full_evaluation_ns": round(bench_min("BM_FullSurrogateEvaluation")),
    "monte_carlo_16_ns": round(bench_min("BM_MonteCarloSurrogate/16")),
    "cost_evaluator_ns": round(bench_min("BM_CostEvaluator")),
    "engine_scaling_wall_ms": {
        "seeds": seeds,
        "episodes": episodes,
        "parallelism_1": round(min(walls[1]), 1),
        "parallelism_4": round(min(walls[4]), 1),
    },
}
warm_cold = int(open(f"{tmpdir}/warm_cold.txt").read().strip())
warm_walls = [int(line) for line in open(f"{tmpdir}/warm_walls.txt") if line.strip()]
if not warm_walls:
    raise SystemExit("bench_record: no warm-rerun wall samples")
measurement["warm_rerun_wall_ms"] = {
    "seeds": seeds,
    "episodes": episodes,
    "parallelism": 1,
    "cold_wall_ms": warm_cold,
    "warm_wall_ms": min(warm_walls),
    "note": "RL aggregate vs a populated persistent cache (store save+load+hit path)",
}
if distribute > 0:
    dist_walls = [int(line) for line in open(f"{tmpdir}/dist_walls.txt")
                  if line.strip()]
    if not dist_walls:
        raise SystemExit("bench_record: no distributed wall samples")
    nopool_walls = [int(line) for line in open(f"{tmpdir}/dist_nopool_walls.txt")
                    if line.strip()]
    measurement["distributed_wall_ms"] = {
        "workers": distribute,
        "seeds": seeds,
        "episodes": episodes,
        "wall_ms": min(dist_walls),
        "note": "lcda_run --distribute wall clock incl. worker dispatch and merge"
                " (persistent pool, the default)",
    }
    if nopool_walls:
        measurement["distributed_wall_ms"]["no_pool_wall_ms"] = min(nopool_walls)
    steal_walls = [int(line) for line in open(f"{tmpdir}/straggler_steal_walls.txt")
                   if line.strip()]
    nosteal_walls = [int(line) for line in
                     open(f"{tmpdir}/straggler_nosteal_walls.txt") if line.strip()]
    steal_counts = [int(line) for line in open(f"{tmpdir}/straggler_steals.txt")
                    if line.strip()]
    if not steal_walls or not nosteal_walls:
        raise SystemExit("bench_record: no straggler wall samples")
    measurement["straggler_mitigation_wall_ms"] = {
        "workers": distribute,
        "seeds": seeds,
        "episodes": episodes,
        "injected_sleep_ms": 400,
        "injected_seeds": [0, 1],
        "steal_wall_ms": min(steal_walls),
        "no_steal_wall_ms": min(nosteal_walls),
        "steals": max(steal_counts) if steal_counts else 0,
        "note": "two injected 400ms/seed stragglers; steal vs --no-steal wall",
    }
ckpt_off = [int(line) for line in open(f"{tmpdir}/ckpt_off_walls.txt")
            if line.strip()]
ckpt_on = [int(line) for line in open(f"{tmpdir}/ckpt_on_walls.txt")
           if line.strip()]
if not ckpt_off or not ckpt_on:
    raise SystemExit("bench_record: no checkpoint-overhead wall samples")
f_off = int(open(f"{tmpdir}/ckpt_faithful_off.txt").read().strip())
f_on = int(open(f"{tmpdir}/ckpt_faithful_on.txt").read().strip())
f_eps = int(open(f"{tmpdir}/ckpt_faithful_eps.txt").read().strip())
s_off, s_on = min(ckpt_off), min(ckpt_on)
measurement["checkpoint_overhead_wall_ms"] = {
    "checkpoint_every": 64,
    "episodes": f_eps,
    "off_wall_ms": f_off,
    "on_wall_ms": f_on,
    "overhead_pct": round(max(0.0, (f_on / f_off - 1.0) * 100.0), 2) if f_off else None,
    "note": "single-seed genetic study on the faithful (train + Monte-Carlo)"
            " evaluator, trained-small shrunk to ~0.2 s/episode, with vs"
            " without --checkpoint-dir at the default cadence",
    "surrogate_worst_case": {
        "seeds": seeds,
        "episodes": episodes,
        "off_wall_ms": s_off,
        "on_wall_ms": s_on,
        "overhead_pct": round((s_on / s_off - 1.0) * 100.0, 2) if s_off else None,
        "note": "same flags on the ~2 us/eval surrogate aggregate: the run is"
                " cheaper than its own O(state) snapshots, so this ratio"
                " tracks the checkpoint floor cost, not the <=5% budget",
    },
}
o_on = int(open(f"{tmpdir}/obs_on_wall.txt").read().strip())
measurement["obs_overhead_wall_ms"] = {
    "episodes": f_eps,
    "off_wall_ms": f_off,
    "on_wall_ms": o_on,
    "obs_overhead_ratio": round(o_on / f_off, 3) if f_off else None,
    "note": "single-seed genetic study on the faithful evaluator with"
            " --trace-spans + --metrics-out vs the same run with"
            " observability off; the ratio is held to <= 1.05",
}
resumed_txt = open(f"{tmpdir}/recovery_resumed.txt").read().strip()
if not resumed_txt:
    raise SystemExit("bench_record: resume run reported no resumed_episodes")
resumed = int(resumed_txt)
kill_ep = int(open(f"{tmpdir}/recovery_kill_ep.txt").read().strip())
measurement["crash_recovery"] = {
    "episodes": episodes,
    "kill_episode": kill_ep,
    "resumed_episodes": resumed,
    "recovery_ratio": round(resumed / episodes, 3),
    "resume_wall_ms": int(open(f"{tmpdir}/recovery_wall.txt").read().strip()),
    "note": "single-seed genetic study killed at 3/4 via LCDA_FAULT, then --resume;"
            " recovery_ratio is the fraction of episodes restored instead of re-run",
}
json.dump(measurement, open(out_path, "w"), indent=2)
print(json.dumps(measurement, indent=2))
PYEOF
  echo "bench_record: wrote $OUT" >&2
  ;;

append)
  [[ -n "$BEFORE" && -n "$AFTER" && -n "$CHANGE" ]] || {
    echo "bench_record append: --before, --after and --change are required" >&2
    exit 2
  }
  python3 - "$BEFORE" "$AFTER" "$CHANGE" "$BASELINE_COMMIT" "$BENCH_FILE" <<'PYEOF'
import json, sys
before_path, after_path, change, baseline_commit, bench_file = sys.argv[1:6]
before = json.load(open(before_path))
after = json.load(open(after_path))

def pair(key, digits=2):
    b, a = before[key], after[key]
    return {"before": b, "after": a,
            "speedup": round(b / a, digits) if a else None}

b_eng, a_eng = before["engine_scaling_wall_ms"], after["engine_scaling_wall_ms"]
if (b_eng["seeds"], b_eng["episodes"]) != (a_eng["seeds"], a_eng["episodes"]):
    raise SystemExit("bench_record: before/after engine runs have different shapes")

entry = {
    "change": change,
    "baseline_commit": baseline_commit or "unknown",
    # Machine-checkable scaling context: recorded parallel speedups are
    # only meaningful relative to the threads the measuring box exposed.
    "hardware_threads": {"before": before.get("hardware_threads"),
                         "after": after.get("hardware_threads")},
    "surrogate_full_evaluation_ns": pair("surrogate_full_evaluation_ns"),
    "monte_carlo_16_ns": pair("monte_carlo_16_ns"),
    "cost_evaluator_ns": pair("cost_evaluator_ns"),
    "engine_scaling_wall_ms": {
        "strategy": "NACIM",
        "episodes": a_eng["episodes"],
        "seeds": a_eng["seeds"],
        "parallelism_1": {
            "before": b_eng["parallelism_1"], "after": a_eng["parallelism_1"],
            "speedup": round(b_eng["parallelism_1"] / a_eng["parallelism_1"], 2),
        },
        "parallelism_4": {
            "before": b_eng["parallelism_4"], "after": a_eng["parallelism_4"],
            "speedup": round(b_eng["parallelism_4"] / a_eng["parallelism_4"], 2),
        },
    },
}

# Warm-rerun wall clock rides along when either side measured it; the
# warm_speedup quotient is the headline save+load improvement.
if "warm_rerun_wall_ms" in after or "warm_rerun_wall_ms" in before:
    b, a = before.get("warm_rerun_wall_ms"), after.get("warm_rerun_wall_ms")
    entry["warm_rerun_wall_ms"] = {"before": b, "after": a}
    if b and a and a.get("warm_wall_ms"):
        entry["warm_rerun_wall_ms"]["warm_speedup"] = round(
            b["warm_wall_ms"] / a["warm_wall_ms"], 2)

# Observability overhead rides along when either side measured it; the
# "after" side's ratio is the recorded on/off cost, budgeted <= 1.05.
if "obs_overhead_wall_ms" in after or "obs_overhead_wall_ms" in before:
    entry["obs_overhead_wall_ms"] = {
        "before": before.get("obs_overhead_wall_ms"),
        "after": after.get("obs_overhead_wall_ms"),
    }
    a = after.get("obs_overhead_wall_ms")
    if a and a.get("obs_overhead_ratio") is not None:
        entry["obs_overhead_wall_ms"]["obs_overhead_ratio"] = a["obs_overhead_ratio"]

# Distributed wall clock rides along when either side measured it (a PR
# introducing the mode has no "before" number). When the "after" side
# timed both the pooled and --no-worker-pool dispatch paths, their
# quotient is the tracked pool win.
if "distributed_wall_ms" in after or "distributed_wall_ms" in before:
    entry["distributed_wall_ms"] = {
        "before": before.get("distributed_wall_ms"),
        "after": after.get("distributed_wall_ms"),
    }
    a = after.get("distributed_wall_ms")
    if a and a.get("no_pool_wall_ms") and a.get("wall_ms"):
        entry["distributed_wall_ms"]["pool_speedup"] = round(
            a["no_pool_wall_ms"] / a["wall_ms"], 2)

# Straggler-mitigation walls ride along the same way; the no_steal /
# steal quotient on the "after" side is the headline mitigation win.
if "straggler_mitigation_wall_ms" in after or "straggler_mitigation_wall_ms" in before:
    entry["straggler_mitigation_wall_ms"] = {
        "before": before.get("straggler_mitigation_wall_ms"),
        "after": after.get("straggler_mitigation_wall_ms"),
    }
    a = after.get("straggler_mitigation_wall_ms")
    if a and a.get("steal_wall_ms"):
        entry["straggler_mitigation_wall_ms"]["mitigation_speedup"] = round(
            a["no_steal_wall_ms"] / a["steal_wall_ms"], 2)

# Checkpoint overhead and crash recovery ride along the same way (a PR
# introducing checkpointing has no "before" numbers). The "after" side's
# overhead_pct is held to the checkpoint subsystem's <=5% budget, and
# recovery_ratio is the fraction of a killed study a resume restored.
if "checkpoint_overhead_wall_ms" in after or "checkpoint_overhead_wall_ms" in before:
    entry["checkpoint_overhead_wall_ms"] = {
        "before": before.get("checkpoint_overhead_wall_ms"),
        "after": after.get("checkpoint_overhead_wall_ms"),
    }
if "crash_recovery" in after or "crash_recovery" in before:
    entry["crash_recovery"] = {
        "before": before.get("crash_recovery"),
        "after": after.get("crash_recovery"),
    }
    a = after.get("crash_recovery")
    if a and "recovery_ratio" in a:
        entry["crash_recovery"]["recovery_ratio"] = a["recovery_ratio"]

doc = json.load(open(bench_file))
if doc.get("format") != "lcda-bench-engine-v1":
    raise SystemExit(f"bench_record: {bench_file} is not a lcda-bench-engine-v1 file")
doc["history"].append(entry)
with open(bench_file, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench_record: appended history entry #{len(doc['history'])} to {bench_file}")
PYEOF
  ;;

*)
  echo "usage: tools/bench_record.sh measure --out FILE [--build DIR] [--reps N] [--seeds N] [--episodes N] [--distribute N]" >&2
  echo "       tools/bench_record.sh append --before F --after F --change DESC [--baseline-commit SHA] [--file BENCH_engine.json]" >&2
  exit 2
  ;;
esac
