#!/usr/bin/env python3
"""CI gate over a bench_engine_scaling --json sweep.

Fails (exit 1) when the parallelism-4 wall-clock is worse than the
parallelism-1 wall-clock by more than the tolerance — i.e. when a
serialization point has crept back into the parallel core. Usage:

    check_scaling_gate.py SWEEP.json [TOLERANCE]

TOLERANCE is the allowed wall(4)/wall(1) ratio, default 1.15 (absorbs
shared-runner noise; a real regression such as a global memo lock or
per-episode queue traffic lands far above it).
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = float(sys.argv[2]) if len(sys.argv) > 2 else 1.15
    sweep = json.load(open(sys.argv[1]))["sweep"]
    wall = {row["parallelism"]: row["wall_ms"] for row in sweep}
    if 1 not in wall or 4 not in wall:
        print("check_scaling_gate: sweep lacks parallelism 1 and/or 4 rows "
              "(run with LCDA_PARALLELISM>=4)", file=sys.stderr)
        return 2
    ratio = wall[4] / wall[1]
    print(f"parallelism-1: {wall[1]:.1f} ms, parallelism-4: {wall[4]:.1f} ms "
          f"(ratio {ratio:.2f}, tolerance {tolerance:.2f})")
    return 0 if ratio <= tolerance else 1


if __name__ == "__main__":
    sys.exit(main())
