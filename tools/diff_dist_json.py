#!/usr/bin/env python3
"""Compare two lcda_run --json documents, ignoring the "dist" object.

Distributed runs attach scheduling stats (per-shard wall clocks, steal
counts) under a top-level "dist" key; those are real measurements and so
non-reproducible by design — as is the "obs" metrics snapshot (inside
"dist" today; stripped at the top level too, defensively). Everything
else — the engine payload — must match exactly, which is the
byte-identity contract CI enforces.
"""
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    doc.pop("dist", None)
    doc.pop("obs", None)
    return doc


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} A.json B.json")
    a, b = load(sys.argv[1]), load(sys.argv[2])
    if a != b:
        sys.exit(f"FATAL: {sys.argv[1]} and {sys.argv[2]} differ outside 'dist'")
    print(f"{sys.argv[1]} == {sys.argv[2]} (ignoring 'dist')")


if __name__ == "__main__":
    main()
