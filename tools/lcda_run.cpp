// lcda_run — the scenario-driven experiment CLI.
//
// Every study in this repository is data: a named Scenario (search space,
// evaluator, objective/reward, noise setting, episode budgets) pulled from
// the registry or a JSON file, crossed with one or more strategies and
// seeds. This binary can therefore reproduce any figure of the paper and
// sweep any scenario x strategy grid without writing a new program.
//
//   lcda_run --list
//   lcda_run --scenario=paper-energy --strategy=lcda --seeds=2
//   lcda_run --scenario=paper-latency --strategy=lcda,nacim --json=out.json
//   lcda_run --scenario=tight-area --set space.area_budget_mm2=15
//   lcda_run --scenario-file=my_study.json --trace=trace.csv
//   lcda_run --scenario=paper-energy --aggregate --seeds=8 --json=agg.json
//   lcda_run --scenario=paper-energy --speedup --seeds=4 --trace=speedup.csv
//
// Flags:
//   --list                 list registered scenarios and exit
//   --print-config         dump the resolved scenario as JSON and exit
//   --scenario=NAME        registry scenario (see --list)
//   --scenario-file=PATH   load a scenario JSON file instead
//   --scenario-dir=DIR     register every *.json scenario in DIR first
//                          (the LCDA_SCENARIO_DIR environment variable
//                          autoloads a directory the same way)
//   --strategy=A[,B...]    strategies to run (default: the scenario's);
//                          "all" sweeps every strategy
//   --aggregate            multi-seed aggregate per strategy instead of the
//                          per-seed episode listing (core::run_aggregate):
//                          running-best mean/stddev across seeds, final-best
//                          statistics, cache traffic. --seeds sets the seed
//                          count; --threshold=R also reports episodes-to-R
//   --speedup              paired LCDA-vs-NACIM episodes-to-threshold study
//                          (core::speedup_study) over --seeds seeds;
//                          --threshold-fraction=F sets the "comparable
//                          solution" bar (default 0.95 of NACIM's best)
//   --threshold=R          reward threshold for --aggregate's
//                          episodes-to-threshold statistic
//   --threshold-fraction=F speedup threshold fraction (--speedup only)
//   --episodes=N           override the per-strategy episode budget
//   --seeds=N              seeds per strategy (base, base+1, ...; default 1)
//   --seed=K               override the base seed
//   --set key=value        dotted-path config override (repeatable), e.g.
//                          --set space.conv_layers=4 --set objective=latency
//   --cache-dir=PATH       enable the on-disk evaluation cache
//   --parallelism=N        worker threads (default: LCDA_PARALLELISM, else 1;
//                          0 = one per hardware thread); traces are
//                          bit-identical for every setting
//   --json=PATH            write the full experiment (runs + traces + cache
//                          counters) as JSON
//   --trace=PATH           write the episode traces as CSV ("-" = stdout;
//                          human-readable output then moves to stderr so
//                          stdout stays valid CSV) — the format CI diffs
//                          against golden traces
//   --quiet                suppress the per-episode listing
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "lcda/core/report.h"
#include "lcda/core/scenario.h"
#include "lcda/core/stats_runner.h"
#include "lcda/util/strings.h"

namespace {

using namespace lcda;

struct CliOptions {
  bool list = false;
  bool print_config = false;
  bool quiet = false;
  bool aggregate = false;
  bool speedup = false;
  std::string scenario;
  std::string scenario_file;
  std::string scenario_dir;
  std::string strategies;
  std::string cache_dir;
  std::string json_path;
  std::string trace_path;
  std::vector<std::string> overrides;
  int episodes = 0;  // 0 = scenario default
  int seeds = 1;
  long long seed = -1;          // -1 = scenario default
  int parallelism = -1;         // -1 = environment default
  double threshold = std::numeric_limits<double>::quiet_NaN();
  double threshold_fraction = 0.95;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario=NAME [--scenario-dir=DIR] "
               "[--strategy=A,B] [--seeds=N] "
               "[--episodes=N] [--seed=K] [--set key=value ...] "
               "[--cache-dir=DIR] [--parallelism=N] [--json=PATH] "
               "[--trace=PATH|-] [--quiet]\n"
               "       %s --scenario=NAME --aggregate [--threshold=R] [...]\n"
               "       %s --scenario=NAME --speedup [--threshold-fraction=F] "
               "[...]\n"
               "       %s --scenario-file=PATH [...]\n"
               "       %s --list | --print-config --scenario=NAME\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// Strict double flag parsing, same loud-failure policy as
/// parse_number_flag below.
double parse_double_flag(const std::string& value, const char* flag) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !std::isfinite(parsed)) {
    throw std::invalid_argument(std::string("bad value for ") + flag + ": \"" +
                                value + "\" (want a finite number)");
  }
  return parsed;
}

bool flag_value(std::string_view arg, std::string_view name, std::string& out) {
  if (!util::starts_with(arg, name)) return false;
  out = std::string(arg.substr(name.size()));
  return true;
}

/// Strict numeric flag parsing: a typo or out-of-range value must fail
/// loudly, not become 0 (which --parallelism would read as "use every
/// hardware thread") or silently fall back to a default (which negative
/// values would, via the unset sentinels).
long long parse_number_flag(const std::string& value, const char* flag,
                            long long min_value) {
  const auto parsed = util::parse_int(value);
  if (!parsed || *parsed < min_value) {
    throw std::invalid_argument(std::string("bad value for ") + flag + ": \"" +
                                value + "\" (want an integer >= " +
                                std::to_string(min_value) + ")");
  }
  return *parsed;
}

/// Opens the --trace destination: `path` as a file, or stdout for "-".
/// Returns the stream to write to, or nullptr after printing an error.
struct TraceOut {
  std::ofstream file;
  std::ostream* stream = nullptr;
};
bool open_trace(const std::string& path, TraceOut& out) {
  if (path == "-") {
    out.stream = &std::cout;
    return true;
  }
  out.file.open(path, std::ios::trunc);
  if (!out.file) {
    std::fprintf(stderr, "lcda_run: cannot write %s\n", path.c_str());
    return false;
  }
  out.stream = &out.file;
  return true;
}

std::vector<core::Strategy> resolve_strategies(const std::string& spec,
                                               core::Strategy fallback) {
  if (spec.empty()) return {fallback};
  if (util::to_lower(spec) == "all") return core::all_strategies();
  std::vector<core::Strategy> out;
  for (const std::string& name : util::split(spec, ',')) {
    out.push_back(core::strategy_from_name(util::trim(name)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      std::string value;
      if (arg == "--list") cli.list = true;
      else if (arg == "--print-config") cli.print_config = true;
      else if (arg == "--quiet") cli.quiet = true;
      else if (arg == "--aggregate") cli.aggregate = true;
      else if (arg == "--speedup") cli.speedup = true;
      else if (flag_value(arg, "--scenario-file=", cli.scenario_file)) {}
      else if (flag_value(arg, "--scenario-dir=", cli.scenario_dir)) {}
      else if (flag_value(arg, "--scenario=", cli.scenario)) {}
      else if (flag_value(arg, "--strategy=", cli.strategies)) {}
      else if (flag_value(arg, "--cache-dir=", cli.cache_dir)) {}
      else if (flag_value(arg, "--json=", cli.json_path)) {}
      else if (flag_value(arg, "--trace=", cli.trace_path)) {}
      else if (arg == "--set" && i + 1 < argc) cli.overrides.emplace_back(argv[++i]);
      else if (flag_value(arg, "--set=", value)) cli.overrides.push_back(value);
      else if (flag_value(arg, "--episodes=", value)) {
        cli.episodes = static_cast<int>(parse_number_flag(value, "--episodes", 1));
      } else if (flag_value(arg, "--seeds=", value)) {
        cli.seeds = static_cast<int>(parse_number_flag(value, "--seeds", 1));
      } else if (flag_value(arg, "--seed=", value)) {
        cli.seed = parse_number_flag(value, "--seed", 0);
      } else if (flag_value(arg, "--parallelism=", value)) {
        cli.parallelism = static_cast<int>(parse_number_flag(value, "--parallelism", 0));
      } else if (flag_value(arg, "--threshold-fraction=", value)) {
        cli.threshold_fraction = parse_double_flag(value, "--threshold-fraction");
      } else if (flag_value(arg, "--threshold=", value)) {
        cli.threshold = parse_double_flag(value, "--threshold");
      } else {
        std::fprintf(stderr, "lcda_run: unknown argument \"%s\"\n",
                     std::string(arg).c_str());
        return usage(argv[0]);
      }
    }

    // Tracing to stdout reserves it for CSV; narration moves to stderr.
    std::FILE* const human = cli.trace_path == "-" ? stderr : stdout;

    if (!cli.scenario_dir.empty()) {
      (void)core::register_scenarios_from(cli.scenario_dir);
    }

    if (cli.list) {
      std::fprintf(human, "%-16s %s\n", "scenario", "what it stresses");
      for (const std::string& name : core::list_scenarios()) {
        const core::Scenario s = core::scenario_by_name(name);
        std::fprintf(human, "%-16s %s  [default strategy: %s]\n",
                     s.name.c_str(), s.summary.c_str(),
                     std::string(core::strategy_name(s.default_strategy)).c_str());
      }
      return 0;
    }

    if (cli.scenario.empty() == cli.scenario_file.empty()) {
      std::fprintf(stderr,
                   "lcda_run: exactly one of --scenario / --scenario-file "
                   "is required\n");
      return usage(argv[0]);
    }
    core::Scenario scenario = cli.scenario_file.empty()
                                  ? core::scenario_by_name(cli.scenario)
                                  : core::load_scenario(cli.scenario_file);

    for (const std::string& kv : cli.overrides) {
      core::apply_override(scenario.config, kv);
    }
    if (cli.seed >= 0) scenario.config.seed = static_cast<std::uint64_t>(cli.seed);
    scenario.config.parallelism =
        cli.parallelism >= 0 ? cli.parallelism : core::env_parallelism();
    if (!cli.cache_dir.empty()) scenario.config.persistent_cache_dir = cli.cache_dir;

    if (cli.print_config) {
      std::printf("%s\n", core::scenario_to_json(scenario).dump(2).c_str());
      return 0;
    }
    if (cli.seeds <= 0) {
      std::fprintf(stderr, "lcda_run: --seeds must be >= 1\n");
      return 2;
    }

    if (cli.aggregate && cli.speedup) {
      std::fprintf(stderr, "lcda_run: --aggregate and --speedup are exclusive\n");
      return usage(argv[0]);
    }
    // Flags another mode would silently ignore must fail loudly instead.
    if (cli.speedup && cli.episodes > 0) {
      std::fprintf(stderr,
                   "lcda_run: --speedup uses the scenario's episode budgets; "
                   "override them with --set lcda_episodes=N / "
                   "--set nacim_episodes=N instead of --episodes\n");
      return usage(argv[0]);
    }
    if (cli.speedup && !std::isnan(cli.threshold)) {
      std::fprintf(stderr,
                   "lcda_run: --threshold applies to --aggregate; --speedup "
                   "takes --threshold-fraction\n");
      return usage(argv[0]);
    }
    if (!cli.speedup && cli.threshold_fraction != 0.95) {
      std::fprintf(stderr, "lcda_run: --threshold-fraction requires --speedup\n");
      return usage(argv[0]);
    }
    if (!cli.aggregate && !std::isnan(cli.threshold)) {
      std::fprintf(stderr, "lcda_run: --threshold requires --aggregate\n");
      return usage(argv[0]);
    }

    const std::vector<core::Strategy> strategies =
        resolve_strategies(cli.strategies, scenario.default_strategy);

    std::fprintf(human, "# scenario %s: %s\n", scenario.name.c_str(),
                 scenario.summary.c_str());
    std::fprintf(human, "# parallelism %d, base seed %llu\n",
                 scenario.config.parallelism,
                 static_cast<unsigned long long>(scenario.config.seed));

    // --- multi-seed aggregate mode (SpeedupReport/AggregateResult were
    // engine-only until now; this surfaces them through the CLI) ---------
    if (cli.aggregate) {
      std::vector<core::AggregateResult> aggregates;
      std::fprintf(human, "%-14s %8s %8s %10s %10s %10s %10s\n", "strategy",
                   "episodes", "seeds", "best mean", "stddev", "min", "max");
      for (core::Strategy strategy : strategies) {
        const int episodes =
            cli.episodes > 0 ? cli.episodes
                             : core::default_episodes(strategy, scenario.config);
        core::AggregateResult agg = core::run_aggregate(
            strategy, episodes, cli.seeds, scenario.config, cli.threshold);
        std::fprintf(human, "%-14s %8d %8d %10.4f %10.4f %10.4f %10.4f\n",
                     std::string(core::strategy_name(strategy)).c_str(),
                     episodes, cli.seeds, agg.final_best.mean(),
                     agg.final_best.stddev(), agg.final_best.min(),
                     agg.final_best.max());
        if (!std::isnan(cli.threshold)) {
          std::fprintf(human,
                       "  threshold %+0.4f: %d/%d seeds reached, "
                       "mean %.1f episodes\n",
                       cli.threshold, agg.reached, cli.seeds,
                       agg.episodes_to_threshold.mean());
        }
        std::fprintf(human, "  cache: %lld hits, %lld misses, %lld persistent\n",
                     static_cast<long long>(agg.cache_hits),
                     static_cast<long long>(agg.cache_misses),
                     static_cast<long long>(agg.persistent_hits));
        aggregates.push_back(std::move(agg));
      }

      if (!cli.trace_path.empty()) {
        TraceOut trace;
        if (!open_trace(cli.trace_path, trace)) return 1;
        for (const core::AggregateResult& agg : aggregates) {
          core::write_aggregate_csv(*trace.stream, agg,
                                    core::strategy_name(agg.strategy));
        }
      }
      if (!cli.json_path.empty()) {
        util::Json doc = util::Json::object();
        doc["experiment"] = scenario.name;
        doc["seed"] = static_cast<long long>(scenario.config.seed);
        doc["seeds"] = cli.seeds;
        util::Json arr = util::Json::array();
        for (const core::AggregateResult& agg : aggregates) {
          arr.push_back(core::aggregate_to_json(agg));
        }
        doc["aggregates"] = arr;
        doc["scenario"] = core::scenario_to_json(scenario);
        core::write_json_file(doc, cli.json_path);
        std::fprintf(human, "\nwrote %s\n", cli.json_path.c_str());
      }
      return 0;
    }

    // --- paired LCDA-vs-NACIM speedup study -----------------------------
    if (cli.speedup) {
      const std::vector<core::SpeedupReport> reports =
          core::speedup_study(scenario.config, cli.seeds, cli.threshold_fraction);
      std::fprintf(human, "%-6s %12s %10s %10s %10s %10s\n", "seed",
                   "threshold", "lcda eps", "nacim eps", "nacim best",
                   "speedup");
      util::OnlineStats speedups;
      for (std::size_t s = 0; s < reports.size(); ++s) {
        const core::SpeedupReport& r = reports[s];
        std::fprintf(human, "%-6zu %12.4f %10d %10d %10.4f %9.1fx\n", s,
                     r.threshold, r.lcda_episodes, r.nacim_episodes,
                     r.nacim_best, r.speedup());
        if (r.speedup() > 0.0) speedups.add(r.speedup());
      }
      if (speedups.count() > 0) {
        std::fprintf(human, "mean speedup over %zu seed(s): %.1fx\n",
                     speedups.count(), speedups.mean());
      }

      if (!cli.trace_path.empty()) {
        TraceOut trace;
        if (!open_trace(cli.trace_path, trace)) return 1;
        core::write_speedup_csv(*trace.stream, reports, scenario.name);
      }
      if (!cli.json_path.empty()) {
        util::Json doc = util::Json::object();
        doc["experiment"] = scenario.name;
        doc["seed"] = static_cast<long long>(scenario.config.seed);
        doc["speedup_study"] = core::speedup_study_to_json(reports);
        doc["scenario"] = core::scenario_to_json(scenario);
        core::write_json_file(doc, cli.json_path);
        std::fprintf(human, "\nwrote %s\n", cli.json_path.c_str());
      }
      return 0;
    }

    struct Completed {
      std::string label;
      core::RunResult run;
    };
    std::vector<Completed> completed;

    for (core::Strategy strategy : strategies) {
      const int episodes =
          cli.episodes > 0 ? cli.episodes
                           : core::default_episodes(strategy, scenario.config);
      for (int s = 0; s < cli.seeds; ++s) {
        core::ExperimentConfig config = scenario.config;
        config.seed = scenario.config.seed + static_cast<std::uint64_t>(s);
        const core::RunResult run =
            core::run_strategy(strategy, episodes, config);

        const std::string label = std::string(core::strategy_name(strategy)) +
                                  "/seed" + std::to_string(config.seed);
        std::fprintf(human, "\n== %s (%d episodes) ==\n", label.c_str(),
                     episodes);
        if (!cli.quiet) {
          for (const auto& ep : run.episodes) {
            std::fprintf(human,
                         "  ep %3d  reward %+8.3f  acc %.3f  E %10.4g pJ  "
                         "L %10.4g ns  %s%s\n",
                         ep.episode, ep.reward, ep.accuracy, ep.energy_pj,
                         ep.latency_ns, ep.design.rollout_text().c_str(),
                         ep.valid ? "" : "  [invalid]");
          }
        }
        std::fprintf(human, "best reward %+0.4f at episode %d (%s)\n",
                     run.best_reward(), run.best_episode,
                     run.best().design.describe().c_str());
        std::fprintf(human,
                     "cache: %lld hits, %lld misses, %lld persistent hits\n",
                     static_cast<long long>(run.cache_hits),
                     static_cast<long long>(run.cache_misses),
                     static_cast<long long>(run.persistent_hits));
        completed.push_back({label, run});
      }
    }

    if (!cli.trace_path.empty()) {
      TraceOut trace;
      if (!open_trace(cli.trace_path, trace)) return 1;
      for (const Completed& c : completed) {
        core::write_run_csv(*trace.stream, c.run, c.label);
      }
    }

    if (!cli.json_path.empty()) {
      std::vector<core::LabelledRun> labelled;
      labelled.reserve(completed.size());
      for (const Completed& c : completed) {
        labelled.push_back({c.label, &c.run});
      }
      util::Json doc = core::experiment_to_json(scenario.name,
                                                scenario.config.seed, labelled);
      doc["scenario"] = core::scenario_to_json(scenario);
      core::write_json_file(doc, cli.json_path);
      std::fprintf(human, "\nwrote %s\n", cli.json_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lcda_run: %s\n", e.what());
    return 1;
  }
}
