// lcda_run — the scenario-driven experiment CLI.
//
// Every study in this repository is data: a named Scenario (search space,
// evaluator, objective/reward, noise setting, episode budgets) pulled from
// the registry or a JSON file, crossed with one or more strategies and
// seeds. This binary can therefore reproduce any figure of the paper and
// sweep any scenario x strategy grid without writing a new program.
//
//   lcda_run --list
//   lcda_run --scenario=paper-energy --strategy=lcda --seeds=2
//   lcda_run --scenario=paper-latency --strategy=lcda,nacim --json=out.json
//   lcda_run --scenario=tight-area --set space.area_budget_mm2=15
//   lcda_run --scenario-file=my_study.json --trace=trace.csv
//   lcda_run --scenario=paper-energy --aggregate --seeds=8 --json=agg.json
//   lcda_run --scenario=paper-energy --speedup --seeds=4 --trace=speedup.csv
//   lcda_run --scenario=paper-energy --aggregate --seeds=8 --distribute=2
//
// Flags:
//   --list                 list registered scenarios and exit
//   --print-config         dump the resolved scenario as JSON and exit
//   --scenario=NAME        registry scenario (see --list)
//   --scenario-file=PATH   load a scenario JSON file instead
//   --scenario-dir=DIR     register every *.json scenario in DIR first
//                          (the LCDA_SCENARIO_DIR environment variable
//                          autoloads a directory the same way)
//   --strategy=A[,B...]    strategies to run (default: the scenario's);
//                          "all" sweeps every strategy
//   --aggregate            multi-seed aggregate per strategy instead of the
//                          per-seed episode listing (core::run_aggregate):
//                          running-best mean/stddev across seeds, final-best
//                          statistics, cache traffic. --seeds sets the seed
//                          count; --threshold=R also reports episodes-to-R
//   --speedup              paired LCDA-vs-NACIM episodes-to-threshold study
//                          (core::speedup_study) over --seeds seeds;
//                          --threshold-fraction=F sets the "comparable
//                          solution" bar (default 0.95 of NACIM's best)
//   --threshold=R          reward threshold for --aggregate's
//                          episodes-to-threshold statistic
//   --threshold-fraction=F speedup threshold fraction (--speedup only)
//   --episodes=N           override the per-strategy episode budget
//   --seeds=N              seeds per strategy (base, base+1, ...; default 1)
//   --seed=K               override the base seed
//   --set key=value        dotted-path config override (repeatable), e.g.
//                          --set space.conv_layers=4 --set objective=latency
//   --cache-dir=PATH       enable the on-disk evaluation store
//   --checkpoint-dir=DIR   enable crash-resumable checkpoints: each run
//                          snapshots its full engine state (optimizer
//                          internals, RNG cursors, trace, cache log) under
//                          DIR/<study fingerprint> and appends a per-round
//                          changelog between snapshots. Trace-invariant:
//                          output is byte-identical with or without it
//   --checkpoint-every=N   episodes between snapshots (default 64; requires
//                          --checkpoint-dir or a scenario checkpoint_dir)
//   --resume               restore the newest valid checkpoint before
//                          running; a run killed at any episode and resumed
//                          this way produces byte-identical final JSON and
//                          trace CSV. Falls back to a cold start (with a
//                          warning) when no usable checkpoint exists
//   --parallelism=N        worker threads (default: LCDA_PARALLELISM, else 1;
//                          0 = one per hardware thread); traces are
//                          bit-identical for every setting
//   --distribute=N         shard the study across N worker PROCESSES (the
//                          lcda::dist coordinator keeps a pool of N resident
//                          `lcda_run --worker-loop` subprocesses, dispatches
//                          shard specs to them over stdin/stdout pipes and
//                          merges their result manifests); every output —
//                          traces, JSON, cache counters — is byte-identical
//                          to the same command without --distribute (see
//                          README "Scaling out")
//   --no-worker-pool       spawn one `lcda_run --worker=SPEC` process per
//                          shard attempt instead of keeping the resident
//                          pool; byte-identical output, pays process startup
//                          and store/memo warm-up per attempt (requires
//                          --distribute)
//   --max-retries=K        extra attempts per failed shard before the run
//                          aborts (default 2; requires --distribute)
//   --shard-dir=DIR        keep shard specs/manifests in DIR instead of an
//                          auto-cleaned temp directory (requires
//                          --distribute)
//   --keep-shard-dir       keep the automatic temp shard directory (specs,
//                          manifests, progress sidecars) for post-mortem;
//                          without it the temp directory is removed on
//                          success AND failure (requires --distribute)
//   --no-steal             disable straggler work stealing; shards then run
//                          exactly where the planner put them (requires
//                          --distribute)
//   --steal-threshold=K    a shard is a straggler when its estimated
//                          remaining time exceeds K x the median of its
//                          peers (default 2.0, must be >= 1; requires
//                          --distribute)
//   --worker=SPEC.json     internal: run one shard spec and write its result
//                          manifest (what --distribute --no-worker-pool
//                          spawns)
//   --worker-loop          internal: resident worker — read
//                          lcda-worker-cmd-v1 command lines from stdin, run
//                          each dispatched spec, reply done/failed on stdout
//                          (what --distribute keeps one of per slot)
//   --json=PATH            write the full experiment (runs + traces + cache
//                          counters) as JSON
//   --trace=PATH           write the episode traces as CSV ("-" = stdout;
//                          human-readable output then moves to stderr so
//                          stdout stays valid CSV) — the format CI diffs
//                          against golden traces
//   --trace-spans=PATH     export the span timeline as Chrome trace-event
//                          JSON (load it in Perfetto or chrome://tracing).
//                          With --distribute the coordinator gathers every
//                          worker's per-attempt trace file and merges them
//                          into one timeline: pid 0 is the coordinator,
//                          pid 1+k is shard k. Purely additive — traces,
//                          JSON and manifests stay byte-identical
//   --metrics-out=PATH     write the final metrics snapshot
//                          (lcda-metrics-v1 JSON). Distributed runs fold
//                          every worker manifest's "obs" delta in, so the
//                          per-study store totals equal the manifest sums
//   --metrics-interval=SEC periodic "[obs] t=..s name=value" heartbeat on
//                          stderr while the study runs (and a final line
//                          when it stops)
//   --quiet                suppress the per-episode listing
//
// Store maintenance (act on --cache-dir=DIR and exit):
//   --store-compact        merge segments into fresh index buckets, dedupe
//                          republished records, drop corrupt ones
//                          (skip-and-count) and enforce the budget
//                          oldest-first; safe while readers/writers are
//                          live. --store-buckets=N sets the index shard
//                          count (default 16); --store-max-entries=N /
//                          --store-max-bytes=N apply a budget
//   --store-fsck           verify every segment and index bucket (headers,
//                          per-record checksums, sort order); exits
//                          nonzero when any damage is found
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lcda/core/report.h"
#include "lcda/store/eval_store.h"
#include "lcda/core/scenario.h"
#include "lcda/core/stats_runner.h"
#include "lcda/dist/coordinator.h"
#include "lcda/dist/merge.h"
#include "lcda/dist/shard.h"
#include "lcda/obs/metrics.h"
#include "lcda/obs/reporter.h"
#include "lcda/obs/trace.h"
#include "lcda/util/strings.h"
#include "lcda/util/subprocess.h"

namespace {

using namespace lcda;

/// ", N shared" when cross-study reuse happened, "" otherwise — existing
/// cache summary lines (and everything that greps them) stay unchanged
/// until the store actually shares across studies.
std::string shared_hits_suffix(long long shared) {
  return shared > 0 ? ", " + std::to_string(shared) + " shared" : std::string();
}

struct CliOptions {
  bool list = false;
  bool print_config = false;
  bool quiet = false;
  bool aggregate = false;
  bool speedup = false;
  std::string scenario;
  std::string scenario_file;
  std::string scenario_dir;
  std::string strategies;
  std::string cache_dir;
  std::string checkpoint_dir;
  long long checkpoint_every = 0;  // 0 = scenario default
  bool resume = false;
  std::string json_path;
  std::string trace_path;
  std::string trace_spans;      // --trace-spans: Chrome trace-event JSON
  std::string metrics_out;      // --metrics-out: final snapshot JSON
  double metrics_interval = 0.0;  // --metrics-interval: stderr heartbeat
  std::string shard_dir;        // --distribute: where shard files live
  bool store_compact = false;   // store maintenance modes (need --cache-dir)
  bool store_fsck = false;
  long long store_buckets = 16;
  long long store_max_entries = 0;
  long long store_max_bytes = 0;
  std::string worker_spec;      // internal --worker mode
  bool worker_loop = false;     // internal --worker-loop mode
  bool no_worker_pool = false;  // spawn-per-attempt instead of the pool
  std::vector<std::string> overrides;
  int episodes = 0;  // 0 = scenario default
  int seeds = 1;
  long long seed = -1;          // -1 = scenario default
  int parallelism = -1;         // -1 = environment default
  int distribute = 0;           // 0 = in-process; N = worker processes
  int max_retries = 2;          // per-shard retry budget (--distribute)
  bool max_retries_set = false;
  bool keep_shard_dir = false;  // keep the auto temp shard dir
  bool no_steal = false;        // disable straggler work stealing
  double steal_threshold = 2.0; // straggler bar (x median peer estimate)
  bool steal_threshold_set = false;
  double threshold = std::numeric_limits<double>::quiet_NaN();
  double threshold_fraction = 0.95;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario=NAME [--scenario-dir=DIR] "
               "[--strategy=A,B] [--seeds=N] "
               "[--episodes=N] [--seed=K] [--set key=value ...] "
               "[--cache-dir=DIR] [--parallelism=N] [--json=PATH] "
               "[--trace=PATH|-] [--trace-spans=PATH] [--metrics-out=PATH] "
               "[--metrics-interval=SEC] [--quiet]\n"
               "       %s ... --distribute=N [--max-retries=K] "
               "[--shard-dir=DIR] [--keep-shard-dir] [--no-steal] "
               "[--steal-threshold=K] [--no-worker-pool]\n"
               "       %s --scenario=NAME --aggregate [--threshold=R] [...]\n"
               "       %s --scenario=NAME --speedup [--threshold-fraction=F] "
               "[...]\n"
               "       %s --scenario-file=PATH [...]\n"
               "       %s --cache-dir=DIR --store-compact "
               "[--store-buckets=N] [--store-max-entries=N] "
               "[--store-max-bytes=N] | --store-fsck\n"
               "       %s --list | --print-config --scenario=NAME\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// Strict double flag parsing, same loud-failure policy as
/// parse_number_flag below.
double parse_double_flag(const std::string& value, const char* flag) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !std::isfinite(parsed)) {
    throw std::invalid_argument(std::string("bad value for ") + flag + ": \"" +
                                value + "\" (want a finite number)");
  }
  return parsed;
}

bool flag_value(std::string_view arg, std::string_view name, std::string& out) {
  if (!util::starts_with(arg, name)) return false;
  out = std::string(arg.substr(name.size()));
  return true;
}

/// Strict numeric flag parsing: a typo or out-of-range value must fail
/// loudly, not become 0 (which --parallelism would read as "use every
/// hardware thread") or silently fall back to a default (which negative
/// values would, via the unset sentinels).
long long parse_number_flag(const std::string& value, const char* flag,
                            long long min_value) {
  const auto parsed = util::parse_int(value);
  if (!parsed || *parsed < min_value) {
    throw std::invalid_argument(std::string("bad value for ") + flag + ": \"" +
                                value + "\" (want an integer >= " +
                                std::to_string(min_value) + ")");
  }
  return *parsed;
}

/// Opens the --trace destination: `path` as a file, or stdout for "-".
/// Returns the stream to write to, or nullptr after printing an error.
struct TraceOut {
  std::ofstream file;
  std::ostream* stream = nullptr;
};
bool open_trace(const std::string& path, TraceOut& out) {
  if (path == "-") {
    out.stream = &std::cout;
    return true;
  }
  out.file.open(path, std::ios::trunc);
  if (!out.file) {
    std::fprintf(stderr, "lcda_run: cannot write %s\n", path.c_str());
    return false;
  }
  out.stream = &out.file;
  return true;
}

std::vector<core::Strategy> resolve_strategies(const std::string& spec,
                                               core::Strategy fallback) {
  if (spec.empty()) return {fallback};
  if (util::to_lower(spec) == "all") return core::all_strategies();
  std::vector<core::Strategy> out;
  for (const std::string& name : util::split(spec, ',')) {
    out.push_back(core::strategy_from_name(util::trim(name)));
  }
  return out;
}

/// Per-strategy episode budgets, resolved once so the in-process and
/// distributed paths can never disagree on them.
std::vector<dist::StrategyStudy> resolve_studies(
    const CliOptions& cli, const core::Scenario& scenario,
    const std::vector<core::Strategy>& strategies) {
  std::vector<dist::StrategyStudy> studies;
  studies.reserve(strategies.size());
  for (core::Strategy strategy : strategies) {
    const int episodes =
        cli.episodes > 0 ? cli.episodes
                         : core::default_episodes(strategy, scenario.config);
    studies.push_back({strategy, episodes});
  }
  return studies;
}

/// A completed distributed study: the executed plan (steal-appended specs
/// included) plus every shard's loaded (and spec-verified) result
/// manifest, index-aligned with specs, and the coordinator's scheduling
/// stats for the "dist" JSON object.
struct DistributedStudy {
  std::vector<dist::ShardSpec> specs;
  std::vector<util::Json> manifests;
  dist::Coordinator::Stats stats;

  /// Study-wide metrics: every worker manifest's "obs" delta folded
  /// together, then the coordinator's own registry merged in. The store
  /// totals and resumed_episodes the summary line and "dist" JSON report
  /// read from here (counters "store.*", "engine.resumed_episodes") —
  /// the same values the old per-manifest-key sums produced, since
  /// run_strategy mirrors each run's counters into the registry exactly
  /// once. Observability only — the numbers shift with pooling and
  /// scheduling, never the bytes.
  obs::MetricsSnapshot obs;

  /// Worker span timelines gathered from the shard directory before it
  /// is cleaned up: one (shard index, export_chrome document) pair per
  /// successful attempt that ran with --trace-spans.
  std::vector<std::pair<int, util::Json>> trace_docs;

  /// The shards study entry `k` owns. Plan order used to make this a
  /// contiguous range; work stealing appends specs out of order, so
  /// select by the study_slot tag the planner stamped (and steals
  /// inherit).
  [[nodiscard]] std::pair<std::vector<dist::ShardSpec>,
                          std::vector<util::Json>>
  study_slice(std::size_t k) const {
    std::pair<std::vector<dist::ShardSpec>, std::vector<util::Json>> slice;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].study_slot == static_cast<int>(k)) {
        slice.first.push_back(specs[i]);
        slice.second.push_back(manifests[i]);
      }
    }
    return slice;
  }
};

/// The "dist" object distributed --json documents carry: study-level
/// scheduling counters plus one record per shard that ever existed in the
/// plan. Wall times are real milliseconds, so this object is the one part
/// of a distributed document that is NOT byte-reproducible — consumers
/// diffing documents strip it first (CI does).
util::Json dist_stats_to_json(const DistributedStudy& study) {
  const dist::Coordinator::Stats& stats = study.stats;
  util::Json j = util::Json::object();
  j["planned"] = stats.planned;
  j["spawned"] = stats.spawned;
  j["pool_workers"] = stats.pool_workers;
  j["retries"] = stats.retries;
  j["steals"] = stats.steals;
  j["stolen_seeds"] = stats.stolen_seeds;
  j["superseded"] = stats.superseded;
  j["dead_workers"] = stats.dead_workers;
  util::Json banned = util::Json::array();
  for (int slot : stats.banlisted_slots) banned.push_back(slot);
  j["banlisted_slots"] = banned;
  util::Json shards = util::Json::array();
  for (const dist::Coordinator::ShardStats& s : stats.shards) {
    util::Json e = util::Json::object();
    e["index"] = s.index;
    e["seeds"] = s.seeds;
    e["attempts"] = s.attempts;
    e["slot"] = s.slot;
    e["wall_ms"] = s.wall_ms;
    if (s.stolen_from >= 0) e["stolen_from"] = s.stolen_from;
    if (s.supersedes) e["supersedes"] = true;
    if (s.superseded) e["superseded"] = true;
    shards.push_back(e);
  }
  j["shards"] = shards;
  util::Json store = util::Json::object();
  store["hits"] = study.obs.counter("store.hits");
  store["misses"] = study.obs.counter("store.misses");
  store["shared_hits"] = study.obs.counter("store.shared_hits");
  store["shared_misses"] = study.obs.counter("store.shared_misses");
  store["bytes_read"] = study.obs.counter("store.bytes_read");
  store["bytes_published"] = study.obs.counter("store.bytes_published");
  j["store"] = store;
  j["resumed_episodes"] = study.obs.counter("engine.resumed_episodes");
  // Everything below is append-only: existing consumers index the keys
  // above by name and must keep finding them where they are.
  j["steal_considered"] = stats.steal_considered;
  j["steal_suppressed_min_stale"] = stats.steal_suppressed_min_stale;
  j["obs"] = study.obs.to_json();
  return j;
}

/// Plans the study, drives the shard workers to completion through the
/// coordinator, and loads their manifests. The shard directory is the
/// user's --shard-dir (theirs to keep) or an automatic temp directory,
/// removed on success AND failure unless --keep-shard-dir asks for a
/// post-mortem copy.
DistributedStudy run_distributed(const CliOptions& cli,
                                 const core::Scenario& scenario,
                                 dist::ShardMode mode,
                                 const std::vector<dist::StrategyStudy>& studies,
                                 const char* argv0) {
  namespace fs = std::filesystem;
  const bool auto_dir = cli.shard_dir.empty();
  const std::string shard_dir =
      auto_dir ? (fs::temp_directory_path() /
                  ("lcda-shards-" + std::to_string(static_cast<long>(::getpid()))))
                     .string()
               : cli.shard_dir;
  const bool cleanup = auto_dir && !cli.keep_shard_dir;

  DistributedStudy study;
  study.specs =
      dist::plan_shards(scenario, mode, studies, cli.seeds, cli.distribute,
                        cli.threshold, cli.threshold_fraction);

  dist::Coordinator::Options opts;
  opts.worker_command = {util::self_executable_path(argv0)};
  opts.shard_dir = shard_dir;
  opts.max_parallel = cli.distribute;
  opts.max_retries = cli.max_retries;
  opts.verbose = !cli.quiet;  // --quiet silences shard narration too
  opts.enable_steal = !cli.no_steal;
  opts.steal_threshold = cli.steal_threshold;
  opts.use_worker_pool = !cli.no_worker_pool;
  opts.trace_spans = !cli.trace_spans.empty();

  try {
    dist::Coordinator coordinator(opts);
    coordinator.run(study.specs);
    study.stats = coordinator.stats();
    study.manifests.reserve(study.specs.size());
    for (const dist::ShardSpec& spec : study.specs) {
      study.manifests.push_back(dist::load_shard_manifest(spec));
    }
    // Fold every worker's metrics delta (the tolerated extra "obs"
    // manifest key), then merge the coordinator's own registry — the
    // dist.* scheduling counters land there at the end of
    // Coordinator::run. Store totals and resumed_episodes read from this
    // snapshot downstream.
    for (const util::Json& manifest : study.manifests) {
      if (!manifest.contains("obs")) continue;
      study.obs.merge(obs::MetricsSnapshot::from_json(manifest.at("obs")));
    }
    study.obs.merge(obs::Registry::instance().snapshot());
    // Worker span timelines must leave the shard directory before the
    // cleanup below removes it. Failed attempts never write a trace
    // file, so missing paths are expected, not errors.
    if (opts.trace_spans) {
      for (const dist::Coordinator::ShardStats& s : study.stats.shards) {
        for (int a = 0; a <= s.attempts; ++a) {
          const std::string path = shard_dir + "/shard-" +
                                   std::to_string(s.index) + "-trace-a" +
                                   std::to_string(a) + ".json";
          std::ifstream in(path);
          if (!in) continue;
          std::ostringstream buf;
          buf << in.rdbuf();
          try {
            study.trace_docs.emplace_back(s.index,
                                          util::Json::parse(buf.str()));
          } catch (const std::exception& e) {
            std::fprintf(stderr, "lcda_run: skipping damaged trace %s: %s\n",
                         path.c_str(), e.what());
          }
        }
      }
    }
  } catch (...) {
    std::error_code ec;
    if (cleanup) {
      fs::remove_all(shard_dir, ec);
    } else if (auto_dir) {
      std::fprintf(stderr, "lcda_run: shard dir kept at %s\n",
                   shard_dir.c_str());
    }
    throw;
  }
  if (cleanup) {
    std::error_code ec;
    fs::remove_all(shard_dir, ec);
  } else if (auto_dir) {
    std::fprintf(stderr, "lcda_run: shard dir kept at %s\n", shard_dir.c_str());
  }

  // One greppable scheduling summary per distributed run (bench_record.sh
  // and humans read it; byte-diffed outputs never include stderr). Store
  // fields come from the merged registry snapshot now; the field order is
  // frozen, new fields append at the end.
  const dist::Coordinator::Stats& st = study.stats;
  std::fprintf(stderr,
               "[dist] summary: shards=%d spawned=%d retries=%d steals=%d "
               "stolen_seeds=%d superseded=%d dead_workers=%d "
               "banlisted_slots=%zu pool_workers=%d store_hits=%lld "
               "store_shared=%lld store_misses=%lld store_bytes_read=%lld "
               "store_bytes_published=%lld resumed_episodes=%lld "
               "steal_considered=%d steal_suppressed_min_stale=%d\n",
               st.planned, st.spawned, st.retries, st.steals, st.stolen_seeds,
               st.superseded, st.dead_workers, st.banlisted_slots.size(),
               st.pool_workers, study.obs.counter("store.hits"),
               study.obs.counter("store.shared_hits"),
               study.obs.counter("store.misses"),
               study.obs.counter("store.bytes_read"),
               study.obs.counter("store.bytes_published"),
               study.obs.counter("engine.resumed_episodes"),
               st.steal_considered, st.steal_suppressed_min_stale);
  return study;
}

/// Final observability artifacts, written once just before a successful
/// exit: the Chrome-trace span timeline (--trace-spans) and the final
/// metrics snapshot (--metrics-out). `study` is non-null on distributed
/// runs: its gathered worker timelines land on per-shard pid lanes
/// (pid 1+k for shard k; the coordinator owns pid 0) and its merged
/// snapshot — not the local registry — becomes the metrics document, so
/// per-study store totals equal the manifest-summed values.
void write_observability(const CliOptions& cli, const DistributedStudy* study) {
  if (!cli.trace_spans.empty()) {
    util::Json doc = obs::SpanTracer::instance().export_chrome(
        0, study != nullptr ? "coordinator" : "lcda_run");
    if (study != nullptr) {
      util::Json& events = doc["traceEvents"];
      for (const auto& [index, worker_doc] : study->trace_docs) {
        obs::append_chrome_events(events, worker_doc, 1 + index,
                                  "worker shard " + std::to_string(index));
      }
    }
    obs::write_trace_file(doc, cli.trace_spans);
    std::fprintf(stderr, "[obs] wrote span timeline %s\n",
                 cli.trace_spans.c_str());
  }
  if (!cli.metrics_out.empty()) {
    obs::write_metrics_file(study != nullptr
                                ? study->obs
                                : obs::Registry::instance().snapshot(),
                            cli.metrics_out);
    std::fprintf(stderr, "[obs] wrote metrics %s\n", cli.metrics_out.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      std::string value;
      if (arg == "--list") cli.list = true;
      else if (arg == "--print-config") cli.print_config = true;
      else if (arg == "--quiet") cli.quiet = true;
      else if (arg == "--aggregate") cli.aggregate = true;
      else if (arg == "--speedup") cli.speedup = true;
      else if (flag_value(arg, "--scenario-file=", cli.scenario_file)) {}
      else if (flag_value(arg, "--scenario-dir=", cli.scenario_dir)) {}
      else if (flag_value(arg, "--scenario=", cli.scenario)) {}
      else if (flag_value(arg, "--strategy=", cli.strategies)) {}
      else if (flag_value(arg, "--cache-dir=", cli.cache_dir)) {}
      else if (flag_value(arg, "--checkpoint-dir=", cli.checkpoint_dir)) {}
      else if (flag_value(arg, "--checkpoint-every=", value)) {
        cli.checkpoint_every = parse_number_flag(value, "--checkpoint-every", 1);
      }
      else if (arg == "--resume") cli.resume = true;
      else if (arg == "--store-compact") cli.store_compact = true;
      else if (arg == "--store-fsck") cli.store_fsck = true;
      else if (flag_value(arg, "--store-buckets=", value)) {
        cli.store_buckets = parse_number_flag(value, "--store-buckets", 1);
      } else if (flag_value(arg, "--store-max-entries=", value)) {
        cli.store_max_entries = parse_number_flag(value, "--store-max-entries", 0);
      } else if (flag_value(arg, "--store-max-bytes=", value)) {
        cli.store_max_bytes = parse_number_flag(value, "--store-max-bytes", 0);
      }
      else if (flag_value(arg, "--json=", cli.json_path)) {}
      else if (flag_value(arg, "--trace-spans=", cli.trace_spans)) {}
      else if (flag_value(arg, "--trace=", cli.trace_path)) {}
      else if (flag_value(arg, "--metrics-out=", cli.metrics_out)) {}
      else if (flag_value(arg, "--metrics-interval=", value)) {
        cli.metrics_interval = parse_double_flag(value, "--metrics-interval");
        if (cli.metrics_interval <= 0.0) {
          throw std::invalid_argument("bad value for --metrics-interval: \"" +
                                      value + "\" (want seconds > 0)");
        }
      }
      else if (flag_value(arg, "--shard-dir=", cli.shard_dir)) {}
      else if (arg == "--keep-shard-dir") cli.keep_shard_dir = true;
      else if (arg == "--no-steal") cli.no_steal = true;
      else if (flag_value(arg, "--steal-threshold=", value)) {
        cli.steal_threshold = parse_double_flag(value, "--steal-threshold");
        if (cli.steal_threshold < 1.0) {
          throw std::invalid_argument(
              "bad value for --steal-threshold: \"" + value +
              "\" (want a number >= 1)");
        }
        cli.steal_threshold_set = true;
      }
      else if (arg == "--worker-loop") cli.worker_loop = true;
      else if (arg == "--no-worker-pool") cli.no_worker_pool = true;
      else if (flag_value(arg, "--worker=", cli.worker_spec)) {}
      else if (arg == "--set" && i + 1 < argc) cli.overrides.emplace_back(argv[++i]);
      else if (flag_value(arg, "--set=", value)) cli.overrides.push_back(value);
      else if (flag_value(arg, "--episodes=", value)) {
        cli.episodes = static_cast<int>(parse_number_flag(value, "--episodes", 1));
      } else if (flag_value(arg, "--seeds=", value)) {
        cli.seeds = static_cast<int>(parse_number_flag(value, "--seeds", 1));
      } else if (flag_value(arg, "--seed=", value)) {
        cli.seed = parse_number_flag(value, "--seed", 0);
      } else if (flag_value(arg, "--parallelism=", value)) {
        cli.parallelism = static_cast<int>(parse_number_flag(value, "--parallelism", 0));
      } else if (flag_value(arg, "--distribute=", value)) {
        cli.distribute = static_cast<int>(parse_number_flag(value, "--distribute", 1));
      } else if (flag_value(arg, "--max-retries=", value)) {
        cli.max_retries = static_cast<int>(parse_number_flag(value, "--max-retries", 0));
        cli.max_retries_set = true;
      } else if (flag_value(arg, "--threshold-fraction=", value)) {
        cli.threshold_fraction = parse_double_flag(value, "--threshold-fraction");
      } else if (flag_value(arg, "--threshold=", value)) {
        cli.threshold = parse_double_flag(value, "--threshold");
      } else {
        std::fprintf(stderr, "lcda_run: unknown argument \"%s\"\n",
                     std::string(arg).c_str());
        return usage(argv[0]);
      }
    }

    // Internal worker modes. --worker executes one shard spec and exits;
    // --worker-loop stays resident and executes specs dispatched over
    // stdin until `shutdown` or EOF. Everything a shard needs travels in
    // its spec file, so no other flag applies to either.
    if (cli.worker_loop) {
      return dist::run_worker_loop();
    }
    if (!cli.worker_spec.empty()) {
      return dist::run_worker(cli.worker_spec);
    }

    // Arm observability before any worker thread exists: the enabled
    // flags are plain bools, written single-threaded here and only read
    // afterwards. Distributed runs always meter — the merged registry
    // feeds the "dist" JSON store totals and the summary line. Worker
    // processes never reach this point; they arm themselves at
    // run_worker/run_worker_loop entry.
    if (!cli.metrics_out.empty() || cli.metrics_interval > 0.0 ||
        !cli.trace_spans.empty() || cli.distribute > 0) {
      obs::Registry::instance().enable();
    }
    if (!cli.trace_spans.empty()) obs::SpanTracer::instance().enable();
    std::optional<obs::StatsReporter> reporter;
    if (cli.metrics_interval > 0.0) reporter.emplace(cli.metrics_interval);

    // Store maintenance modes: act on the store directory and exit.
    if (cli.store_compact || cli.store_fsck) {
      if (cli.cache_dir.empty()) {
        std::fprintf(stderr,
                     "lcda_run: --store-compact/--store-fsck require "
                     "--cache-dir=DIR\n");
        return 2;
      }
      if (cli.store_compact) {
        const lcda::store::Budget budget{
            static_cast<std::size_t>(cli.store_max_entries),
            static_cast<std::size_t>(cli.store_max_bytes)};
        const lcda::store::CompactionReport rep = lcda::store::compact_store(
            cli.cache_dir, budget, static_cast<std::size_t>(cli.store_buckets));
        std::printf(
            "store-compact %s: %zu files merged (%zu unreadable dropped), "
            "%zu records kept, %zu duplicates dropped, %zu corrupt dropped, "
            "%zu evicted\n",
            cli.cache_dir.c_str(), rep.input_files, rep.skipped_files,
            rep.records_kept, rep.duplicates_dropped, rep.corrupt_dropped,
            rep.evicted);
      }
      if (cli.store_fsck) {
        const lcda::store::FsckReport rep = lcda::store::fsck(cli.cache_dir);
        std::printf(
            "store-fsck %s: %zu files, %zu records ok, %zu bad files, "
            "%zu bad records -> %s\n",
            cli.cache_dir.c_str(), rep.files, rep.records, rep.bad_files,
            rep.bad_records, rep.clean() ? "clean" : "DAMAGED");
        if (!rep.clean()) return 1;
      }
      write_observability(cli, nullptr);
      return 0;
    }

    // Tracing to stdout reserves it for CSV; narration moves to stderr.
    std::FILE* const human = cli.trace_path == "-" ? stderr : stdout;

    if (!cli.scenario_dir.empty()) {
      (void)core::register_scenarios_from(cli.scenario_dir);
    }

    if (cli.list) {
      std::fprintf(human, "%-16s %s\n", "scenario", "what it stresses");
      for (const std::string& name : core::list_scenarios()) {
        const core::Scenario s = core::scenario_by_name(name);
        std::fprintf(human, "%-16s %s  [default strategy: %s]\n",
                     s.name.c_str(), s.summary.c_str(),
                     std::string(core::strategy_name(s.default_strategy)).c_str());
        if (!s.description.empty()) {
          std::fprintf(human, "%-16s %s\n", "", s.description.c_str());
        }
      }
      return 0;
    }

    if (cli.scenario.empty() == cli.scenario_file.empty()) {
      std::fprintf(stderr,
                   "lcda_run: exactly one of --scenario / --scenario-file "
                   "is required\n");
      return usage(argv[0]);
    }
    core::Scenario scenario = cli.scenario_file.empty()
                                  ? core::scenario_by_name(cli.scenario)
                                  : core::load_scenario(cli.scenario_file);

    for (const std::string& kv : cli.overrides) {
      core::apply_override(scenario.config, kv);
    }
    if (cli.seed >= 0) scenario.config.seed = static_cast<std::uint64_t>(cli.seed);
    scenario.config.parallelism =
        cli.parallelism >= 0 ? cli.parallelism : core::env_parallelism();
    if (!cli.cache_dir.empty()) scenario.config.persistent_cache_dir = cli.cache_dir;
    if (!cli.checkpoint_dir.empty()) {
      scenario.config.checkpoint_dir = cli.checkpoint_dir;
    }
    if (cli.checkpoint_every > 0) {
      scenario.config.checkpoint_every = static_cast<int>(cli.checkpoint_every);
    }
    if (cli.resume) scenario.config.resume = true;
    if ((cli.checkpoint_every > 0 || cli.resume) &&
        scenario.config.checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "lcda_run: --checkpoint-every/--resume require "
                   "--checkpoint-dir (or a scenario checkpoint_dir)\n");
      return 2;
    }

    if (cli.print_config) {
      std::printf("%s\n", core::scenario_to_json(scenario).dump(2).c_str());
      return 0;
    }
    if (cli.seeds <= 0) {
      std::fprintf(stderr, "lcda_run: --seeds must be >= 1\n");
      return 2;
    }

    if (cli.aggregate && cli.speedup) {
      std::fprintf(stderr, "lcda_run: --aggregate and --speedup are exclusive\n");
      return usage(argv[0]);
    }
    // Flags another mode would silently ignore must fail loudly instead.
    if (cli.speedup && cli.episodes > 0) {
      std::fprintf(stderr,
                   "lcda_run: --speedup uses the scenario's episode budgets; "
                   "override them with --set lcda_episodes=N / "
                   "--set nacim_episodes=N instead of --episodes\n");
      return usage(argv[0]);
    }
    if (cli.speedup && !std::isnan(cli.threshold)) {
      std::fprintf(stderr,
                   "lcda_run: --threshold applies to --aggregate; --speedup "
                   "takes --threshold-fraction\n");
      return usage(argv[0]);
    }
    if (!cli.speedup && cli.threshold_fraction != 0.95) {
      std::fprintf(stderr, "lcda_run: --threshold-fraction requires --speedup\n");
      return usage(argv[0]);
    }
    if (!cli.aggregate && !std::isnan(cli.threshold)) {
      std::fprintf(stderr, "lcda_run: --threshold requires --aggregate\n");
      return usage(argv[0]);
    }
    if (cli.distribute == 0 &&
        (!cli.shard_dir.empty() || cli.max_retries_set || cli.keep_shard_dir ||
         cli.no_steal || cli.steal_threshold_set || cli.no_worker_pool)) {
      std::fprintf(stderr,
                   "lcda_run: --shard-dir / --max-retries / --keep-shard-dir "
                   "/ --no-steal / --steal-threshold / --no-worker-pool "
                   "require --distribute\n");
      return usage(argv[0]);
    }

    const std::vector<core::Strategy> strategies =
        resolve_strategies(cli.strategies, scenario.default_strategy);

    std::fprintf(human, "# scenario %s: %s\n", scenario.name.c_str(),
                 scenario.summary.c_str());
    std::fprintf(human, "# parallelism %d, base seed %llu\n",
                 scenario.config.parallelism,
                 static_cast<unsigned long long>(scenario.config.seed));

    // --- multi-seed aggregate mode (SpeedupReport/AggregateResult were
    // engine-only until now; this surfaces them through the CLI) ---------
    if (cli.aggregate) {
      const std::vector<dist::StrategyStudy> studies =
          resolve_studies(cli, scenario, strategies);
      std::vector<core::AggregateResult> aggregates;
      util::Json dist_stats;
      std::optional<DistributedStudy> dstudy;
      if (cli.distribute > 0) {
        // Shard across worker processes and fold the manifests back; the
        // merged aggregates are byte-identical to the in-process branch.
        dstudy.emplace(run_distributed(cli, scenario,
                                       dist::ShardMode::kAggregate, studies,
                                       argv[0]));
        dist_stats = dist_stats_to_json(*dstudy);
        for (std::size_t k = 0; k < studies.size(); ++k) {
          const auto [specs, manifests] = dstudy->study_slice(k);
          aggregates.push_back(dist::merge_aggregate(specs, manifests));
        }
      } else {
        for (const dist::StrategyStudy& s : studies) {
          aggregates.push_back(core::run_aggregate(s.strategy, s.episodes,
                                                   cli.seeds, scenario.config,
                                                   cli.threshold));
        }
        if (!scenario.config.checkpoint_dir.empty()) {
          long long resumed = 0;
          for (const core::AggregateResult& agg : aggregates)
            resumed += agg.resumed_episodes;
          std::fprintf(stderr, "[ckpt] aggregate: resumed_episodes=%lld\n",
                       resumed);
        }
      }

      std::fprintf(human, "%-14s %8s %8s %10s %10s %10s %10s\n", "strategy",
                   "episodes", "seeds", "best mean", "stddev", "min", "max");
      for (const core::AggregateResult& agg : aggregates) {
        std::fprintf(human, "%-14s %8d %8d %10.4f %10.4f %10.4f %10.4f\n",
                     std::string(core::strategy_name(agg.strategy)).c_str(),
                     agg.episodes, agg.seeds, agg.final_best.mean(),
                     agg.final_best.stddev(), agg.final_best.min(),
                     agg.final_best.max());
        if (!std::isnan(cli.threshold)) {
          std::fprintf(human,
                       "  threshold %+0.4f: %d/%d seeds reached, "
                       "mean %.1f episodes\n",
                       cli.threshold, agg.reached, agg.seeds,
                       agg.episodes_to_threshold.mean());
        }
        std::fprintf(human, "  cache: %lld hits, %lld misses, %lld persistent%s\n",
                     static_cast<long long>(agg.cache_hits),
                     static_cast<long long>(agg.cache_misses),
                     static_cast<long long>(agg.persistent_hits),
                     shared_hits_suffix(agg.persistent_shared_hits).c_str());
      }

      if (!cli.trace_path.empty()) {
        TraceOut trace;
        if (!open_trace(cli.trace_path, trace)) return 1;
        for (const core::AggregateResult& agg : aggregates) {
          core::write_aggregate_csv(*trace.stream, agg,
                                    core::strategy_name(agg.strategy));
        }
      }
      if (!cli.json_path.empty()) {
        util::Json doc = util::Json::object();
        doc["experiment"] = scenario.name;
        doc["seed"] = static_cast<long long>(scenario.config.seed);
        doc["seeds"] = cli.seeds;
        util::Json arr = util::Json::array();
        for (const core::AggregateResult& agg : aggregates) {
          arr.push_back(core::aggregate_to_json(agg));
        }
        doc["aggregates"] = arr;
        doc["scenario"] = core::scenario_to_json(scenario);
        if (cli.distribute > 0) doc["dist"] = dist_stats;
        core::write_json_file(doc, cli.json_path);
        std::fprintf(human, "\nwrote %s\n", cli.json_path.c_str());
      }
      write_observability(cli, dstudy ? &*dstudy : nullptr);
      return 0;
    }

    // --- paired LCDA-vs-NACIM speedup study -----------------------------
    if (cli.speedup) {
      std::vector<core::SpeedupReport> reports;
      util::Json dist_stats;
      std::optional<DistributedStudy> dstudy;
      if (cli.distribute > 0) {
        // The speedup study has no strategy axis: one plan over the seeds.
        dstudy.emplace(run_distributed(cli, scenario, dist::ShardMode::kSpeedup,
                                       {{core::Strategy::kLcda, 0}}, argv[0]));
        dist_stats = dist_stats_to_json(*dstudy);
        reports = dist::merge_speedup(dstudy->specs, dstudy->manifests);
      } else {
        reports = core::speedup_study(scenario.config, cli.seeds,
                                      cli.threshold_fraction);
        if (!scenario.config.checkpoint_dir.empty()) {
          long long resumed = 0;
          for (const core::SpeedupReport& r : reports)
            resumed += r.resumed_episodes;
          std::fprintf(stderr, "[ckpt] speedup: resumed_episodes=%lld\n",
                       resumed);
        }
      }
      std::fprintf(human, "%-6s %12s %10s %10s %10s %10s\n", "seed",
                   "threshold", "lcda eps", "nacim eps", "nacim best",
                   "speedup");
      util::OnlineStats speedups;
      for (std::size_t s = 0; s < reports.size(); ++s) {
        const core::SpeedupReport& r = reports[s];
        std::fprintf(human, "%-6zu %12.4f %10d %10d %10.4f %9.1fx\n", s,
                     r.threshold, r.lcda_episodes, r.nacim_episodes,
                     r.nacim_best, r.speedup());
        if (r.speedup() > 0.0) speedups.add(r.speedup());
      }
      if (speedups.count() > 0) {
        std::fprintf(human, "mean speedup over %zu seed(s): %.1fx\n",
                     speedups.count(), speedups.mean());
      }

      if (!cli.trace_path.empty()) {
        TraceOut trace;
        if (!open_trace(cli.trace_path, trace)) return 1;
        core::write_speedup_csv(*trace.stream, reports, scenario.name);
      }
      if (!cli.json_path.empty()) {
        util::Json doc = util::Json::object();
        doc["experiment"] = scenario.name;
        doc["seed"] = static_cast<long long>(scenario.config.seed);
        doc["speedup_study"] = core::speedup_study_to_json(reports);
        doc["scenario"] = core::scenario_to_json(scenario);
        if (cli.distribute > 0) doc["dist"] = dist_stats;
        core::write_json_file(doc, cli.json_path);
        std::fprintf(human, "\nwrote %s\n", cli.json_path.c_str());
      }
      write_observability(cli, dstudy ? &*dstudy : nullptr);
      return 0;
    }

    // --- per-seed runs, sharded across worker processes -----------------
    if (cli.distribute > 0) {
      const std::vector<dist::StrategyStudy> studies =
          resolve_studies(cli, scenario, strategies);
      const DistributedStudy study = run_distributed(
          cli, scenario, dist::ShardMode::kRuns, studies, argv[0]);
      const std::vector<dist::MergedRun> runs =
          dist::merge_runs(study.specs, study.manifests);

      // Per-episode listings stay inside the workers; the coordinator
      // prints each run's summary (full traces flow through --json and
      // --trace, byte-identical to a non-distributed run).
      for (const dist::MergedRun& run : runs) {
        std::fprintf(human, "\n== %s (%lld episodes) ==\n", run.label.c_str(),
                     run.run_json.at("episodes").as_int());
        std::fprintf(human, "best reward %+0.4f at episode %d (%s)\n",
                     run.best_reward, run.best_episode,
                     run.best_design.c_str());
        std::fprintf(human,
                     "cache: %lld hits, %lld misses, %lld persistent hits%s\n",
                     run.cache_hits, run.cache_misses, run.persistent_hits,
                     shared_hits_suffix(run.persistent_shared_hits).c_str());
      }

      if (!cli.trace_path.empty()) {
        TraceOut trace;
        if (!open_trace(cli.trace_path, trace)) return 1;
        for (const dist::MergedRun& run : runs) *trace.stream << run.csv;
      }
      if (!cli.json_path.empty()) {
        // Same document shape as core::experiment_to_json, with each
        // worker's run JSON embedded verbatim.
        util::Json doc = util::Json::object();
        doc["experiment"] = scenario.name;
        doc["seed"] = static_cast<long long>(scenario.config.seed);
        util::Json arr = util::Json::array();
        for (const dist::MergedRun& run : runs) arr.push_back(run.run_json);
        doc["runs"] = arr;
        doc["scenario"] = core::scenario_to_json(scenario);
        doc["dist"] = dist_stats_to_json(study);
        core::write_json_file(doc, cli.json_path);
        std::fprintf(human, "\nwrote %s\n", cli.json_path.c_str());
      }
      write_observability(cli, &study);
      return 0;
    }

    struct Completed {
      std::string label;
      core::RunResult run;
    };
    std::vector<Completed> completed;

    for (core::Strategy strategy : strategies) {
      const int episodes =
          cli.episodes > 0 ? cli.episodes
                           : core::default_episodes(strategy, scenario.config);
      for (int s = 0; s < cli.seeds; ++s) {
        core::ExperimentConfig config = scenario.config;
        config.seed = scenario.config.seed + static_cast<std::uint64_t>(s);
        const core::RunResult run =
            core::run_strategy(strategy, episodes, config);

        const std::string label = std::string(core::strategy_name(strategy)) +
                                  "/seed" + std::to_string(config.seed);
        std::fprintf(human, "\n== %s (%d episodes) ==\n", label.c_str(),
                     episodes);
        if (!cli.quiet) {
          for (const auto& ep : run.episodes) {
            std::fprintf(human,
                         "  ep %3d  reward %+8.3f  acc %.3f  E %10.4g pJ  "
                         "L %10.4g ns  %s%s\n",
                         ep.episode, ep.reward, ep.accuracy, ep.energy_pj,
                         ep.latency_ns, ep.design.rollout_text().c_str(),
                         ep.valid ? "" : "  [invalid]");
          }
        }
        std::fprintf(human, "best reward %+0.4f at episode %d (%s)\n",
                     run.best_reward(), run.best_episode,
                     run.best().design.describe().c_str());
        std::fprintf(human,
                     "cache: %lld hits, %lld misses, %lld persistent hits%s\n",
                     static_cast<long long>(run.cache_hits),
                     static_cast<long long>(run.cache_misses),
                     static_cast<long long>(run.persistent_hits),
                     shared_hits_suffix(run.persistent_shared_hits).c_str());
        if (!scenario.config.checkpoint_dir.empty()) {
          std::fprintf(stderr, "[ckpt] %s: resumed_episodes=%lld/%d\n",
                       label.c_str(),
                       static_cast<long long>(run.resumed_episodes), episodes);
        }
        completed.push_back({label, run});
      }
    }

    if (!cli.trace_path.empty()) {
      TraceOut trace;
      if (!open_trace(cli.trace_path, trace)) return 1;
      for (const Completed& c : completed) {
        core::write_run_csv(*trace.stream, c.run, c.label);
      }
    }

    if (!cli.json_path.empty()) {
      std::vector<core::LabelledRun> labelled;
      labelled.reserve(completed.size());
      for (const Completed& c : completed) {
        labelled.push_back({c.label, &c.run});
      }
      util::Json doc = core::experiment_to_json(scenario.name,
                                                scenario.config.seed, labelled);
      doc["scenario"] = core::scenario_to_json(scenario);
      core::write_json_file(doc, cli.json_path);
      std::fprintf(human, "\nwrote %s\n", cli.json_path.c_str());
    }
    write_observability(cli, nullptr);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lcda_run: %s\n", e.what());
    return 1;
  }
}
