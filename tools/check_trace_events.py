#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file exported by lcda_run --trace-spans.

Checks the invariants the exporter promises (trace.h):

  - the document is well-formed JSON with a "traceEvents" array and at
    least one non-metadata event (an empty timeline means the spans never
    fired — a wiring regression, not a quiet success);
  - every event carries ph/pid/tid/ts, and ph is "B", "E" or "M";
  - begin/end pairs are balanced per (pid, tid) lane and properly nested
    (an "E" never arrives with no open "B");
  - timestamps are non-decreasing per (pid, tid) lane.

Optional arguments assert the merged-timeline shape:

  --min-pids=N   require at least N distinct pid lanes (a distributed
                 run's merged timeline must span the coordinator AND its
                 workers; 1 + worker count is the natural bar)

Exit status: 0 when valid, 1 when any check fails, 2 on usage errors.
"""
import json
import sys


def fail(msg):
    print(f"FATAL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    path = None
    min_pids = 1
    for arg in sys.argv[1:]:
        if arg.startswith("--min-pids="):
            min_pids = int(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            sys.exit(f"usage: {sys.argv[0]} [--min-pids=N] trace.json")
        else:
            path = arg
    if path is None:
        sys.exit(f"usage: {sys.argv[0]} [--min-pids=N] trace.json")

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no 'traceEvents' array")

    spans = 0
    open_stacks = {}  # (pid, tid) -> list of open span names
    last_ts = {}      # (pid, tid) -> last timestamp seen
    pids = set()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"{path}: event {i} is not an object")
        ph = e.get("ph")
        if ph not in ("B", "E", "M"):
            fail(f"{path}: event {i} has unexpected ph {ph!r}")
        if "pid" not in e:
            fail(f"{path}: event {i} has no pid")
        pids.add(e["pid"])
        if ph == "M":
            continue
        for key in ("name", "tid", "ts"):
            if key not in e:
                fail(f"{path}: event {i} ({ph}) has no {key}")
        lane = (e["pid"], e["tid"])
        ts = e["ts"]
        if lane in last_ts and ts < last_ts[lane]:
            fail(f"{path}: event {i}: timestamp {ts} goes backwards on "
                 f"pid={lane[0]} tid={lane[1]} (last was {last_ts[lane]})")
        last_ts[lane] = ts
        stack = open_stacks.setdefault(lane, [])
        if ph == "B":
            stack.append(e["name"])
            spans += 1
        else:
            if not stack:
                fail(f"{path}: event {i}: 'E' ({e['name']}) with no open "
                     f"'B' on pid={lane[0]} tid={lane[1]}")
            stack.pop()

    for (pid, tid), stack in open_stacks.items():
        if stack:
            fail(f"{path}: unbalanced spans on pid={pid} tid={tid}: "
                 f"still open at end: {stack}")
    if spans == 0:
        fail(f"{path}: no spans at all — instrumentation never fired")
    if len(pids) < min_pids:
        fail(f"{path}: only {len(pids)} pid lane(s), expected >= {min_pids}")

    print(f"{path}: OK — {spans} spans across {len(pids)} pid lane(s), "
          f"{len(open_stacks)} thread lane(s)")


if __name__ == "__main__":
    main()
