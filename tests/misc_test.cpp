// Coverage for remaining public surface: choice-space accounting, snap with
// out-of-space devices, surrogate calibration seeds, mapper option edges,
// evaluator quantization behaviour, and CSV run dumps under invalid designs.
#include <gtest/gtest.h>

#include <sstream>

#include "lcda/cim/cost_model.h"
#include "lcda/core/evaluator.h"
#include "lcda/core/experiment.h"
#include "lcda/search/space.h"
#include "lcda/surrogate/accuracy_model.h"

namespace lcda {
namespace {

TEST(HardwareChoices, CombinationCount) {
  cim::HardwareChoices choices;
  // 2 devices * 3 bits * 5 adc * 3 xbar * 2 mux = 180.
  EXPECT_EQ(choices.combinations(), 180u);
  choices.devices.push_back(cim::DeviceType::kSram);
  EXPECT_EQ(choices.combinations(), 270u);
}

TEST(Space, SnapReplacesForeignDevice) {
  const search::SearchSpace space;  // devices: RRAM, FeFET
  search::Design d;
  d.rollout.assign(6, {32, 3});
  d.hw.device = cim::DeviceType::kSram;
  const search::Design snapped = space.snap(d);
  EXPECT_EQ(snapped.hw.device, cim::DeviceType::kRram);
  EXPECT_TRUE(space.contains(snapped));
}

TEST(Surrogate, CalibrationSeedChangesLuckOnly) {
  surrogate::AccuracyModel::Options a;
  surrogate::AccuracyModel::Options b = a;
  b.calibration_seed = a.calibration_seed + 1;
  const surrogate::AccuracyModel ma(a), mb(b);
  const std::vector<nn::ConvSpec> rollout(6, {64, 3});
  const double accA = ma.clean_accuracy(rollout);
  const double accB = mb.clean_accuracy(rollout);
  EXPECT_NE(accA, accB);
  EXPECT_NEAR(accA, accB, 4.0 * a.luck_sigma + 1e-9);
}

TEST(Mapper, SingleLayerNetworkMaps) {
  cim::HardwareConfig hw;
  const auto circuits = cim::make_circuits(hw);
  nn::BackboneOptions bb;
  bb.pool_after = {};
  const auto shapes = nn::backbone_shapes({{16, 3}}, bb);
  const auto mapping = cim::map_network(shapes, hw, circuits);
  ASSERT_EQ(mapping.layers.size(), 3u);  // conv + 2 FC
  EXPECT_GT(mapping.total_arrays, 0);
  EXPECT_GT(mapping.mean_utilization(), 0.0);
}

TEST(Mapper, EmptyNetworkRejected) {
  cim::HardwareConfig hw;
  const auto circuits = cim::make_circuits(hw);
  EXPECT_THROW((void)cim::map_network({}, hw, circuits), std::invalid_argument);
}

TEST(Mapper, ZeroMaxReplicationEffectivelyOne) {
  cim::HardwareConfig hw;
  const auto circuits = cim::make_circuits(hw);
  nn::BackboneOptions bb;
  cim::MapperOptions mopts;
  mopts.max_replication = 1;
  const auto mapping = cim::map_network(
      nn::backbone_shapes({{32, 3}, {32, 3}}, bb), hw, circuits, mopts);
  for (const auto& lm : mapping.layers) EXPECT_EQ(lm.replication, 1);
}

TEST(SurrogateEvaluator, MoreMcSamplesTightensSem) {
  core::SurrogateEvaluator::Options few;
  few.monte_carlo_samples = 4;
  core::SurrogateEvaluator::Options many;
  many.monte_carlo_samples = 256;
  core::SurrogateEvaluator e_few(few), e_many(many);
  search::Design d;
  d.rollout.assign(6, {64, 3});
  // Run each several times and compare the spread of the *means*.
  util::OnlineStats means_few, means_many;
  for (std::uint64_t s = 0; s < 8; ++s) {
    util::Rng r1(s), r2(s);
    means_few.add(e_few.evaluate(d, r1).accuracy);
    means_many.add(e_many.evaluate(d, r2).accuracy);
  }
  EXPECT_GT(means_few.stddev(), means_many.stddev());
}

TEST(WriteRunCsv, InvalidEpisodesStillEmitted) {
  core::RunResult run;
  core::EpisodeRecord bad;
  bad.episode = 0;
  bad.valid = false;
  bad.reward = -1.0;
  bad.design.rollout.assign(6, {128, 7});
  run.episodes.push_back(bad);
  std::ostringstream os;
  core::write_run_csv(os, run, "x");
  EXPECT_NE(os.str().find(",-1,0,"), std::string::npos);
}

TEST(CostModel, MuxFourBeatsMuxEightOnLatency) {
  // Fewer columns share an ADC -> fewer serialized conversions per read.
  cim::HardwareConfig m8;
  cim::HardwareConfig m4;
  m4.col_mux = 4;
  const std::vector<nn::ConvSpec> rollout(6, {64, 3});
  nn::BackboneOptions bb;
  const auto r8 = cim::CostEvaluator(m8).evaluate(rollout, bb);
  const auto r4 = cim::CostEvaluator(m4).evaluate(rollout, bb);
  EXPECT_LT(r4.latency_ns, r8.latency_ns);
  // ...at the cost of more ADC area per array.
  EXPECT_GT(r4.area_arrays_mm2 / r4.mapping.total_arrays,
            r8.area_arrays_mm2 / r8.mapping.total_arrays);
}

TEST(Experiment, SeedChangesTrajectories) {
  core::ExperimentConfig a;
  a.seed = 1;
  core::ExperimentConfig b;
  b.seed = 2;
  const auto ra = core::run_strategy(core::Strategy::kNacimRl, 10, a);
  const auto rb = core::run_strategy(core::Strategy::kNacimRl, 10, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < 10; ++i) {
    if (!(ra.episodes[i].design == rb.episodes[i].design)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace lcda
