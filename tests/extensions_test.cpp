// Tests for the extension modules: Explainer (explainable NAS), the
// fine-tuned-LLM ablation, Adam, JSON reports, and programming cost.
#include <gtest/gtest.h>

#include <memory>

#include "lcda/core/experiment.h"
#include "lcda/core/report.h"
#include "lcda/llm/explain.h"
#include "lcda/llm/scripted_llm.h"
#include "lcda/llm/simulated_gpt4.h"
#include "lcda/nn/adam.h"
#include "lcda/nn/sequential.h"

namespace lcda {
namespace {

llm::HistoryEntry entry(std::vector<nn::ConvSpec> rollout, double perf) {
  llm::HistoryEntry h;
  h.design.rollout = std::move(rollout);
  h.performance = perf;
  return h;
}

// ------------------------------------------------------------- Explainer

TEST(Explainer, RequestCarriesBothDesignsAndMarker) {
  const auto prev = entry({{32, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}}, 0.40);
  const auto cur = entry({{48, 3}, {48, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}}, 0.43);
  const llm::ChatRequest req =
      llm::Explainer::build_request(prev, cur, llm::Objective::kEnergy);
  const std::string text = req.full_text();
  EXPECT_NE(text.find(llm::kExplainMarker), std::string::npos);
  EXPECT_NE(text.find("[[32,3]"), std::string::npos);
  EXPECT_NE(text.find("[[48,3]"), std::string::npos);
  EXPECT_NE(text.find("performance=0.4"), std::string::npos);
}

TEST(Explainer, SimulatedGpt4NarratesChannelChange) {
  auto gpt = std::make_shared<llm::SimulatedGpt4>();
  llm::Explainer explainer(gpt);
  const auto prev = entry({{32, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}}, 0.40);
  const auto cur = entry({{48, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}}, 0.43);
  const std::string why = explainer.explain(prev, cur, llm::Objective::kEnergy);
  EXPECT_NE(why.find("layer 1"), std::string::npos);
  EXPECT_NE(why.find("32"), std::string::npos);
  EXPECT_NE(why.find("48"), std::string::npos);
  EXPECT_NE(why.find("widened"), std::string::npos);
}

TEST(Explainer, NarratesKernelAndHardwareChanges) {
  auto gpt = std::make_shared<llm::SimulatedGpt4>();
  llm::Explainer explainer(gpt);
  auto prev = entry({{32, 5}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}}, 0.40);
  auto cur = prev;
  cur.design.rollout[0].kernel = 3;
  cur.design.hw.adc_bits = 4;
  cur.performance = 0.45;
  const std::string why =
      explainer.explain(prev, cur, llm::Objective::kLatency);
  EXPECT_NE(why.find("kernel 5x5 -> 3x3"), std::string::npos);
  EXPECT_NE(why.find("ADC resolution"), std::string::npos);
}

TEST(Explainer, IdenticalDesignsExplained) {
  auto gpt = std::make_shared<llm::SimulatedGpt4>();
  llm::Explainer explainer(gpt);
  const auto prev = entry({{32, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}}, 0.4);
  const std::string why = explainer.explain(prev, prev, llm::Objective::kEnergy);
  EXPECT_NE(why.find("identical"), std::string::npos);
}

TEST(Explainer, RejectsNullClient) {
  EXPECT_THROW(llm::Explainer(nullptr), std::invalid_argument);
}

// ------------------------------------------------- fine-tuned LLM ablation

TEST(Finetuned, StrategyWiring) {
  EXPECT_EQ(core::strategy_name(core::Strategy::kLcdaFinetuned), "LCDA-finetuned");
  EXPECT_EQ(core::strategy_name(core::Strategy::kNsga2), "NSGA-II");
  core::ExperimentConfig cfg;
  EXPECT_EQ(core::make_optimizer(core::Strategy::kLcdaFinetuned, cfg)->name(),
            "LCDA(SimulatedGPT4)");
  EXPECT_EQ(core::make_optimizer(core::Strategy::kNsga2, cfg)->name(), "NSGA-II");
}

TEST(Finetuned, PinsKernelsUnderLatencyObjective) {
  // With corrected priors the expert stops fiddling kernels on the latency
  // objective: proposals keep 3x3 everywhere.
  llm::SimulatedGpt4::Options o;
  o.seed = 9;
  o.wrong_cim_kernel_priors = false;
  llm::SimulatedGpt4 gpt(o);
  llm::PromptBuilder::Options popts;
  popts.objective = llm::Objective::kLatency;
  llm::PromptBuilder builder{search::SearchSpace{}, popts};

  std::vector<llm::HistoryEntry> history;
  history.push_back(entry({{32, 5}, {32, 5}, {64, 5}, {64, 5}, {128, 5}, {128, 5}}, 0.5));
  for (int ep = 0; ep < 15; ++ep) {
    const auto resp = gpt.complete(builder.build(history));
    const auto parsed = llm::parse_design_response(resp.content, search::SearchSpace{});
    ASSERT_TRUE(parsed.ok);
    for (const auto& spec : parsed.design.rollout) {
      EXPECT_EQ(spec.kernel, 3) << "fine-tuned expert pins kernels at 3";
    }
    history.push_back({parsed.design, 0.5 + 0.01 * ep});
  }
}

TEST(Finetuned, ImprovesLatencyObjectiveOverWrongPriors) {
  // The ablation the paper could not run: corrected priors should make LCDA
  // at least as good on the latency objective as the wrong-prior variant,
  // measured over a few seeds.
  double ft_total = 0.0, wrong_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    core::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.objective = llm::Objective::kLatency;
    ft_total +=
        core::run_strategy(core::Strategy::kLcdaFinetuned, 20, cfg).best_reward();
    wrong_total += core::run_strategy(core::Strategy::kLcda, 20, cfg).best_reward();
  }
  EXPECT_GE(ft_total, wrong_total - 0.05);
}

// ------------------------------------------------------------------ Adam

TEST(Adam, RejectsBadOptions) {
  nn::Param p;
  p.value = nn::Tensor({1});
  p.grad = nn::Tensor({1});
  std::vector<nn::Param*> params = {&p};
  EXPECT_THROW(nn::Adam(params, {.lr = 0.0}), std::invalid_argument);
  EXPECT_THROW(nn::Adam(params, {.lr = 0.1, .beta1 = 1.0}), std::invalid_argument);
}

TEST(Adam, FirstStepIsSignedLr) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  nn::Param p;
  p.value = nn::Tensor({2}, {1.0f, 1.0f});
  p.grad = nn::Tensor({2}, {0.5f, -3.0f});
  std::vector<nn::Param*> params = {&p};
  nn::Adam adam(params, {.lr = 0.01});
  adam.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.01f, 1e-4);
  EXPECT_NEAR(p.value[1], 1.0f + 0.01f, 1e-4);
  EXPECT_EQ(adam.steps(), 1);
}

TEST(Adam, MinimizesAQuadratic) {
  // f(w) = (w - 3)^2; grad = 2(w-3). Adam should converge to 3.
  nn::Param p;
  p.value = nn::Tensor({1}, {0.0f});
  p.grad = nn::Tensor({1});
  std::vector<nn::Param*> params = {&p};
  nn::Adam adam(params, {.lr = 0.05});
  for (int i = 0; i < 600; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05);
}

TEST(Adam, WeightDecayShrinksWeights) {
  nn::Param p;
  p.value = nn::Tensor({1}, {5.0f});
  p.grad = nn::Tensor({1}, {0.0f});
  std::vector<nn::Param*> params = {&p};
  nn::Adam adam(params, {.lr = 0.1, .weight_decay = 0.1});
  adam.step();
  EXPECT_LT(p.value[0], 5.0f);
}

// ----------------------------------------------------------- JSON report

TEST(Report, DesignJsonHasAllKnobs) {
  search::Design d;
  d.rollout = {{32, 3}, {64, 5}};
  d.hw.device = cim::DeviceType::kFefet;
  const std::string s = core::design_to_json(d).dump();
  EXPECT_NE(s.find("\"rollout\":[[32,3],[64,5]]"), std::string::npos);
  EXPECT_NE(s.find("\"device\":\"FeFET\""), std::string::npos);
  EXPECT_NE(s.find("\"xbar_size\":128"), std::string::npos);
}

TEST(Report, RunJsonRoundTrip) {
  core::ExperimentConfig cfg;
  cfg.seed = 41;
  const core::RunResult run = core::run_strategy(core::Strategy::kRandom, 3, cfg);
  const util::Json j = core::run_to_json(run, "random");
  const std::string s = j.dump();
  EXPECT_NE(s.find("\"label\":\"random\""), std::string::npos);
  EXPECT_NE(s.find("\"episodes\":3"), std::string::npos);
  EXPECT_NE(s.find("\"trace\":["), std::string::npos);
}

TEST(Report, ExperimentJsonCombinesRuns) {
  core::ExperimentConfig cfg;
  cfg.seed = 42;
  const core::RunResult a = core::run_strategy(core::Strategy::kRandom, 2, cfg);
  const core::RunResult b = core::run_strategy(core::Strategy::kLcda, 2, cfg);
  const util::Json j =
      core::experiment_to_json("fig2", 42, {{"A", &a}, {"B", &b}});
  const std::string s = j.dump();
  EXPECT_NE(s.find("\"experiment\":\"fig2\""), std::string::npos);
  EXPECT_NE(s.find("\"label\":\"A\""), std::string::npos);
  EXPECT_NE(s.find("\"label\":\"B\""), std::string::npos);
  EXPECT_THROW((void)core::experiment_to_json("x", 1, {{"A", nullptr}}),
               std::invalid_argument);
}

// ----------------------------------------------------- programming cost

TEST(ProgrammingCost, ScalesWithReplicationAndCells) {
  const std::vector<nn::ConvSpec> rollout = {{32, 3}, {32, 3}, {64, 3},
                                             {64, 3}, {128, 3}, {128, 3}};
  const nn::BackboneOptions bb;
  cim::HardwareConfig hw;
  const cim::CostEvaluator eval(hw);
  const cim::CostReport rep = eval.evaluate(rollout, bb);
  EXPECT_GT(rep.total_weights, 0);
  EXPECT_EQ(rep.total_cells, rep.total_weights * hw.cells_per_weight());
  EXPECT_GT(rep.programming_energy_pj, 0.0);

  // FeFET writes are cheaper per pulse.
  cim::HardwareConfig fefet = hw;
  fefet.device = cim::DeviceType::kFefet;
  const cim::CostReport frep = cim::CostEvaluator(fefet).evaluate(rollout, bb);
  EXPECT_LT(frep.programming_energy_pj / frep.total_cells,
            rep.programming_energy_pj / rep.total_cells);
}

}  // namespace
}  // namespace lcda
