// Scenario registry, ExperimentConfig serialization, and the run-level
// behaviour of the persistent evaluation store: the contracts behind
// `lcda_run` and the data-driven benches. (Store internals — segments,
// budgets, corruption recovery, migration — live in store_test.)
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "lcda/core/scenario.h"
#include "lcda/core/report.h"
#include "lcda/noise/write_verify.h"

namespace {

using namespace lcda;

std::string canonical(const core::ExperimentConfig& config) {
  return core::config_to_json(config, /*include_defaults=*/true).dump();
}

/// Episode trace only — cache counters legitimately differ between a cold
/// and a warm run of the same study.
std::string trace_text(const core::RunResult& run) {
  return core::run_to_json(run, "run").at("trace").dump();
}

/// A unique fresh temp directory per test.
std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("lcda_scenario_test_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// ------------------------------------------------------- config round-trip

TEST(ConfigJson, DefaultConfigSerializesEmpty) {
  const core::ExperimentConfig def;
  EXPECT_EQ(core::config_to_json(def).dump(), "{}");
}

TEST(ConfigJson, NonDefaultFieldsSurviveRoundTrip) {
  core::ExperimentConfig config;
  config.objective = llm::Objective::kLatency;
  config.combined_reward = true;
  config.latency_weight = 0.5;
  config.lcda_episodes = 7;
  config.seed = 99;
  config.space.conv_layers = 4;
  config.space.channel_choices = {8, 16};
  config.space.hw.devices = {cim::DeviceType::kFefet, cim::DeviceType::kSram};
  config.space.area_budget_mm2 = 12.5;
  config.space.backbone.pool_after = {0, 2};
  config.evaluator.monte_carlo_samples = 3;
  config.evaluator.accuracy.variation_coeff = 1.75;
  config.evaluator.write_verify_fraction = 0.2;
  config.evaluator_kind = core::EvaluatorKind::kTrained;
  config.trained.dataset.image_size = 16;
  config.trained.epochs = 2;
  config.batch_size = 8;
  config.cache_evaluations = false;
  config.persistent_cache_dir = "/tmp/cache";

  const util::Json sparse = core::config_to_json(config);
  const core::ExperimentConfig back = core::config_from_json(sparse);
  EXPECT_EQ(canonical(back), canonical(config));

  // The sparse form names only what changed.
  EXPECT_FALSE(sparse.contains("nacim_episodes"));
  EXPECT_FALSE(sparse.at("space").contains("kernel_choices"));
}

TEST(ConfigJson, FullDumpRoundTripsToo) {
  core::ExperimentConfig config;
  config.space.conv_layers = 5;
  const core::ExperimentConfig back =
      core::config_from_json(core::config_to_json(config, true));
  EXPECT_EQ(canonical(back), canonical(config));
}

TEST(ConfigJson, LargeSeedsRoundTripThroughHexStrings) {
  core::ExperimentConfig config;
  config.seed = 0xdeadbeefcafef00dULL;  // > 2^53
  const util::Json j = core::config_to_json(config);
  EXPECT_TRUE(j.at("seed").is_string());
  EXPECT_EQ(core::config_from_json(j).seed, config.seed);

  // Quoted seeds are hex only with an explicit 0x prefix; "42" means 42.
  EXPECT_EQ(core::config_from_json(util::Json::parse(R"({"seed":"42"})")).seed,
            42u);
  EXPECT_EQ(core::config_from_json(util::Json::parse(R"({"seed":"0x42"})")).seed,
            0x42u);
  EXPECT_THROW((void)core::config_from_json(
                   util::Json::parse(R"({"seed":"fast"})")),
               std::invalid_argument);
}

TEST(ConfigJson, UnknownKeysAreRejected) {
  EXPECT_THROW((void)core::config_from_json(util::Json::parse(
                   R"({"objectives":"energy"})")),
               std::invalid_argument);
  EXPECT_THROW((void)core::config_from_json(util::Json::parse(
                   R"({"space":{"conv_layer":4}})")),
               std::invalid_argument);
  EXPECT_THROW((void)core::config_from_json(util::Json::parse(
                   R"({"evaluator":{"accuracy":{"lucky_sigma":1}}})")),
               std::invalid_argument);
  // The error names the offending key.
  try {
    (void)core::config_from_json(util::Json::parse(R"({"space":{"typo":1}})"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("typo"), std::string::npos);
  }
}

TEST(ConfigJson, BadEnumValuesAreRejected) {
  EXPECT_THROW((void)core::config_from_json(
                   util::Json::parse(R"({"objective":"power"})")),
               std::invalid_argument);
  EXPECT_THROW((void)core::config_from_json(
                   util::Json::parse(R"({"evaluator_kind":"oracle"})")),
               std::invalid_argument);
  EXPECT_THROW((void)core::config_from_json(util::Json::parse(
                   R"({"space":{"hardware":{"devices":["MRAM"]}}})")),
               std::invalid_argument);
}

// --------------------------------------------------------------- overrides

TEST(ApplyOverride, DottedPathsReachEveryLayer) {
  core::ExperimentConfig config;
  core::apply_override(config, "objective=latency");
  core::apply_override(config, "space.conv_layers=4");
  core::apply_override(config, "space.channel_choices=[16,32,64]");
  core::apply_override(config, "space.hardware.devices=[\"FeFET\"]");
  core::apply_override(config, "evaluator.accuracy.variation_coeff=2.25");
  core::apply_override(config, "cache_evaluations=false");
  EXPECT_EQ(config.objective, llm::Objective::kLatency);
  EXPECT_EQ(config.space.conv_layers, 4);
  EXPECT_EQ(config.space.channel_choices, (std::vector<int>{16, 32, 64}));
  ASSERT_EQ(config.space.hw.devices.size(), 1u);
  EXPECT_EQ(config.space.hw.devices[0], cim::DeviceType::kFefet);
  EXPECT_EQ(config.evaluator.accuracy.variation_coeff, 2.25);
  EXPECT_FALSE(config.cache_evaluations);
}

TEST(ApplyOverride, RejectsUnknownPathsAndBadSyntax) {
  core::ExperimentConfig config;
  EXPECT_THROW(core::apply_override(config, "space.conv_layer=4"),
               std::invalid_argument);
  EXPECT_THROW(core::apply_override(config, "nope.deep.path=1"),
               std::invalid_argument);
  EXPECT_THROW(core::apply_override(config, "no_equals_sign"),
               std::invalid_argument);
  EXPECT_THROW(core::apply_override(config, "=5"), std::invalid_argument);
}

// ---------------------------------------------------------------- registry

TEST(Registry, BuiltinCatalogIsComplete) {
  const std::vector<std::string> names = core::list_scenarios();
  for (const char* required :
       {"paper-energy", "paper-latency", "naive", "finetuned", "tight-area",
        "high-variation", "deep-backbone", "multi-objective", "trained-small"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing builtin scenario " << required;
  }
  EXPECT_GE(names.size(), 9u);
}

TEST(Registry, PaperScenariosMatchTheLegacyConfigs) {
  // The refactor's contract: the paper scenarios ARE the pre-registry
  // hardcoded configs. paper-energy is a default ExperimentConfig...
  EXPECT_EQ(canonical(core::scenario_by_name("paper-energy").config),
            canonical(core::ExperimentConfig{}));
  // ...and paper-latency/finetuned only flip the objective.
  core::ExperimentConfig latency;
  latency.objective = llm::Objective::kLatency;
  EXPECT_EQ(canonical(core::scenario_by_name("paper-latency").config),
            canonical(latency));
  EXPECT_EQ(canonical(core::scenario_by_name("finetuned").config),
            canonical(latency));
  EXPECT_EQ(core::scenario_by_name("naive").default_strategy,
            core::Strategy::kLcdaNaive);
  EXPECT_EQ(core::scenario_by_name("finetuned").default_strategy,
            core::Strategy::kLcdaFinetuned);
}

TEST(Registry, DuplicateAndUnknownNamesThrow) {
  core::Scenario s;
  s.name = "paper-energy";
  EXPECT_THROW(core::register_scenario(s), std::invalid_argument);
  try {
    (void)core::scenario_by_name("no-such-scenario");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error lists what IS available.
    EXPECT_NE(std::string(e.what()).find("paper-energy"), std::string::npos);
  }
}

TEST(Registry, CustomScenariosRegisterAndRoundTripThroughFiles) {
  core::Scenario s;
  s.name = "test-custom";
  s.summary = "registered by scenario_test";
  s.default_strategy = core::Strategy::kGenetic;
  s.config.space.conv_layers = 3;
  s.config.lcda_episodes = 4;
  core::register_scenario(s);

  const core::Scenario back = core::scenario_by_name("test-custom");
  EXPECT_EQ(back.summary, s.summary);
  EXPECT_EQ(back.default_strategy, core::Strategy::kGenetic);
  EXPECT_EQ(canonical(back.config), canonical(s.config));

  const std::string path = temp_dir("files") + "/custom.json";
  core::save_scenario(s, path);
  const core::Scenario loaded = core::load_scenario(path);
  EXPECT_EQ(loaded.name, s.name);
  EXPECT_EQ(loaded.default_strategy, s.default_strategy);
  EXPECT_EQ(canonical(loaded.config), canonical(s.config));
}

TEST(Registry, ScenarioDirRegistersDroppedInFilesInNameOrder) {
  const std::string dir = temp_dir("scenario_dir");
  core::Scenario s = core::scenario_by_name("tight-area");
  s.name = "dropped-in-b";
  core::save_scenario(s, dir + "/b.json");
  s.name = "dropped-in-a";
  core::save_scenario(s, dir + "/a.json");
  std::ofstream(dir + "/notes.txt") << "not a scenario";  // ignored

  const std::vector<std::string> names = core::register_scenarios_from(dir);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "dropped-in-a");  // deterministic file-name order
  EXPECT_EQ(names[1], "dropped-in-b");
  EXPECT_EQ(core::scenario_by_name("dropped-in-a").config.space.area_budget_mm2,
            20.0);

  // Re-registering identical definitions (env autoload + explicit
  // --scenario-dir of the same directory) is a harmless no-op ...
  EXPECT_TRUE(core::register_scenarios_from(dir).empty());
  // ... but a CONFLICTING definition under a taken name fails loudly.
  const std::string dir2 = temp_dir("scenario_dir_conflict");
  s.name = "dropped-in-a";
  s.config.seed = 999;
  core::save_scenario(s, dir2 + "/a.json");
  EXPECT_THROW(core::register_scenarios_from(dir2), std::invalid_argument);
  // And a directory that cannot be read is a hard error, not a no-op.
  EXPECT_THROW(core::register_scenarios_from(dir + "/missing"),
               std::runtime_error);
}

TEST(Registry, ScenarioDirRejectsMalformedFiles) {
  const std::string dir = temp_dir("scenario_dir_bad");
  std::ofstream(dir + "/broken.json") << R"({"name": "broken", "typo": 1})";
  EXPECT_THROW(core::register_scenarios_from(dir), std::invalid_argument);
}

TEST(Registry, EveryBuiltinScenarioRoundTripsThroughJson) {
  for (const std::string& name : core::list_scenarios()) {
    const core::Scenario s = core::scenario_by_name(name);
    const core::Scenario back = core::scenario_from_json(core::scenario_to_json(s));
    EXPECT_EQ(back.name, s.name);
    EXPECT_EQ(back.default_strategy, s.default_strategy);
    EXPECT_EQ(canonical(back.config), canonical(s.config)) << name;
  }
}

// ------------------------------------------------------- study fingerprint

TEST(StudyFingerprint, IgnoresEngineKnobsAndDefaultBudgets) {
  core::ExperimentConfig a;
  core::ExperimentConfig b;
  b.parallelism = 8;
  b.cache_evaluations = false;
  b.persistent_cache_dir = "/tmp/x";
  b.lcda_episodes = 50;  // only defaults; the real count is the parameter
  b.nacim_episodes = 100;
  EXPECT_EQ(core::study_fingerprint(a, core::Strategy::kLcda, 20),
            core::study_fingerprint(b, core::Strategy::kLcda, 20));
}

TEST(StudyFingerprint, SeparatesStudies) {
  const core::ExperimentConfig base;
  const auto fp = core::study_fingerprint(base, core::Strategy::kLcda, 20);
  EXPECT_NE(fp, core::study_fingerprint(base, core::Strategy::kNacimRl, 20));
  // Batched optimizers truncate their last batch at the budget, shifting
  // RNG consumption — different budgets must not share entries.
  EXPECT_NE(fp, core::study_fingerprint(base, core::Strategy::kLcda, 21));
  core::ExperimentConfig seeded = base;
  seeded.seed = 2;
  EXPECT_NE(fp, core::study_fingerprint(seeded, core::Strategy::kLcda, 20));
  core::ExperimentConfig spaced = base;
  spaced.space.area_budget_mm2 = 20.0;
  EXPECT_NE(fp, core::study_fingerprint(spaced, core::Strategy::kLcda, 20));
  core::ExperimentConfig batched = base;
  batched.batch_size = 4;  // batch composition can shape proposal streams
  EXPECT_NE(fp, core::study_fingerprint(batched, core::Strategy::kLcda, 20));
}

// ------------------------------------------------ fingerprint namespaces

TEST(EvaluationFingerprint, IgnoresStreamIdentityAndEngineKnobs) {
  // The evaluation-identity namespace is what legally determines an
  // Evaluation: space, evaluator, reward, noise. Seed, batch size and every
  // engine knob belong to the stream/engine side, so studies differing only
  // there share records through the store's shared namespace.
  core::ExperimentConfig a;
  core::ExperimentConfig b;
  b.seed = 99;
  b.batch_size = 4;
  b.parallelism = 8;
  b.pipeline_depth = 2;
  b.persistent_cache_dir = "/tmp/x";
  b.lcda_episodes = 50;
  EXPECT_EQ(core::evaluation_fingerprint(a), core::evaluation_fingerprint(b));
}

TEST(EvaluationFingerprint, SeparatesEvaluationIdentities) {
  const core::ExperimentConfig base;
  const auto fp = core::evaluation_fingerprint(base);
  core::ExperimentConfig spaced = base;
  spaced.space.area_budget_mm2 = 20.0;
  EXPECT_NE(fp, core::evaluation_fingerprint(spaced));
  core::ExperimentConfig noisy = base;
  noisy.evaluator.accuracy.variation_coeff = 1.75;
  EXPECT_NE(fp, core::evaluation_fingerprint(noisy));
  core::ExperimentConfig objective = base;
  objective.objective = llm::Objective::kLatency;
  EXPECT_NE(fp, core::evaluation_fingerprint(objective));
}

TEST(StreamFingerprint, SeparatesStreams) {
  const core::ExperimentConfig base;
  const auto fp = core::stream_fingerprint(base, core::Strategy::kLcda, 20);
  EXPECT_NE(fp, core::stream_fingerprint(base, core::Strategy::kNacimRl, 20));
  // Batched optimizers truncate their last batch at the budget, shifting
  // RNG consumption — different budgets must not share full keys.
  EXPECT_NE(fp, core::stream_fingerprint(base, core::Strategy::kLcda, 21));
  core::ExperimentConfig seeded = base;
  seeded.seed = 2;
  EXPECT_NE(fp, core::stream_fingerprint(seeded, core::Strategy::kLcda, 20));
  core::ExperimentConfig batched = base;
  batched.batch_size = 4;
  EXPECT_NE(fp, core::stream_fingerprint(batched, core::Strategy::kLcda, 20));
}

// ------------------------------------------- persistent evaluation store

TEST(PersistentStore, SecondRunIsServedFromDiskWithIdenticalTrace) {
  core::ExperimentConfig config;
  config.persistent_cache_dir = temp_dir("reuse");
  config.lcda_episodes = 8;

  const core::RunResult cold =
      core::run_strategy(core::Strategy::kLcda, config.lcda_episodes, config);
  EXPECT_EQ(cold.persistent_hits, 0);
  EXPECT_GT(cold.cache_misses, 0);

  const core::RunResult warm =
      core::run_strategy(core::Strategy::kLcda, config.lcda_episodes, config);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.persistent_hits, cold.cache_misses);
  EXPECT_EQ(trace_text(warm), trace_text(cold));
}

TEST(PersistentStore, DifferentEpisodeBudgetsDoNotShareEntries) {
  // Batched optimizers truncate the final batch at the budget, which
  // shifts RNG consumption: a 4-episode stream is NOT a prefix of an
  // 8-episode stream in general, so budgets must not share full keys. And
  // shared-namespace reuse only ever flows through compacted index buckets,
  // which don't exist until --store-compact runs.
  const std::string dir = temp_dir("budgets");
  core::ExperimentConfig config;
  config.persistent_cache_dir = dir;
  (void)core::run_strategy(core::Strategy::kLcda, 4, config);
  const core::RunResult big = core::run_strategy(core::Strategy::kLcda, 8, config);
  EXPECT_EQ(big.persistent_hits, 0);
  EXPECT_EQ(big.persistent_shared_hits, 0);
  // Each study published its own append-only segment.
  std::size_t segments = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/segments")) {
    (void)entry;
    ++segments;
  }
  EXPECT_EQ(segments, 2u);
}

TEST(PersistentStore, WarmBatchedOptimizerRunsStayBitIdentical) {
  // The guarantee that forced episodes into the fingerprint: a genetic
  // run's warm rerun (same budget) must match its cold run bit for bit,
  // even though the population batching truncates at the budget tail.
  core::ExperimentConfig config;
  config.persistent_cache_dir = temp_dir("batched");
  const core::RunResult cold =
      core::run_strategy(core::Strategy::kGenetic, 30, config);
  const core::RunResult warm =
      core::run_strategy(core::Strategy::kGenetic, 30, config);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_GT(warm.persistent_hits, 0);
  EXPECT_EQ(trace_text(warm), trace_text(cold));
}

TEST(PersistentStore, RunRespectsConfiguredBudgetAndStaysBitIdentical) {
  core::ExperimentConfig config;
  config.persistent_cache_dir = temp_dir("evict_run");
  config.persistent_cache_max_entries = 4;
  config.lcda_episodes = 8;

  const core::RunResult cold =
      core::run_strategy(core::Strategy::kLcda, config.lcda_episodes, config);
  ASSERT_GT(cold.cache_misses, 4);  // else the budget never binds
  EXPECT_GT(cold.persistent_evictions, 0);

  // The warm rerun only finds the newest entries on disk, re-evaluates the
  // evicted ones — deterministically — and must stay bit-identical.
  const core::RunResult warm =
      core::run_strategy(core::Strategy::kLcda, config.lcda_episodes, config);
  EXPECT_GT(warm.persistent_hits, 0);
  EXPECT_GT(warm.cache_misses, 0);
  EXPECT_EQ(warm.persistent_hits + warm.cache_misses, cold.cache_misses);
  EXPECT_EQ(trace_text(warm), trace_text(cold));
}

TEST(PersistentStore, DistinctStreamsDoNotShareFullKeys) {
  // LCDA and LCDA-naive share an evaluation identity (same space, evaluator
  // and reward) but not a stream, so neither study may claim the other's
  // records as its own — and the shared namespace stays silent until an
  // explicit --store-compact publishes index buckets.
  const std::string dir = temp_dir("separate");
  core::ExperimentConfig config;
  config.persistent_cache_dir = dir;
  config.lcda_episodes = 4;
  (void)core::run_strategy(core::Strategy::kLcda, 4, config);
  const core::RunResult other =
      core::run_strategy(core::Strategy::kLcdaNaive, 4, config);
  EXPECT_EQ(other.persistent_hits, 0);
  EXPECT_EQ(other.persistent_shared_hits, 0);
}

TEST(PersistentStore, SkippedFilesSurfaceInRunResult) {
  core::ExperimentConfig config;
  config.persistent_cache_dir = temp_dir("skip_visible");
  config.lcda_episodes = 4;
  const core::RunResult cold =
      core::run_strategy(core::Strategy::kLcda, config.lcda_episodes, config);
  EXPECT_EQ(cold.persistent_skipped, 0);
  EXPECT_EQ(cold.persistent_save_failures, 0);

  // Corrupt the study's published segment; the rerun reports the skip,
  // still completes (cold, deterministically), and stays bit-identical.
  std::size_t corrupted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           config.persistent_cache_dir + "/segments")) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "garbage";
    ++corrupted;
  }
  ASSERT_EQ(corrupted, 1u);
  const core::RunResult rerun =
      core::run_strategy(core::Strategy::kLcda, config.lcda_episodes, config);
  EXPECT_EQ(rerun.persistent_skipped, 1);
  EXPECT_EQ(rerun.persistent_hits, 0);
  EXPECT_EQ(trace_text(rerun), trace_text(cold));
}

// --------------------------------------------------- scenario behaviours

TEST(Scenarios, DescriptionsExistAndRoundTrip) {
  // Every built-in carries a description (lcda_run --list prints it, shard
  // specs embed it), and the field survives serialization. Only the
  // built-ins are checked: other tests drop scenarios into the shared
  // registry, and those need not carry one.
  for (const char* name :
       {"paper-energy", "paper-latency", "naive", "finetuned", "tight-area",
        "high-variation", "deep-backbone", "multi-objective", "trained-small"}) {
    EXPECT_FALSE(core::scenario_by_name(name).description.empty())
        << name << " has no description";
  }
  const core::Scenario s = core::scenario_by_name("paper-energy");
  const core::Scenario back = core::scenario_from_json(
      util::Json::parse(core::scenario_to_json(s).dump()));
  EXPECT_EQ(back.description, s.description);

  // Absent field stays absent: a description-less scenario serializes
  // without the key and loads back empty.
  core::Scenario bare;
  bare.name = "bare";
  EXPECT_FALSE(core::scenario_to_json(bare).contains("description"));
  EXPECT_TRUE(core::scenario_from_json(core::scenario_to_json(bare))
                  .description.empty());
}

TEST(Scenarios, TightAreaBudgetPropagatesToDesigns) {
  const core::Scenario s = core::scenario_by_name("tight-area");
  const search::SearchSpace space(s.config.space);
  util::Rng rng(1);
  const search::Design d = space.sample(rng);
  EXPECT_EQ(d.hw.area_budget_mm2, 20.0);
  // And snapping an out-of-space design stamps the budget too.
  EXPECT_EQ(space.snap(search::Design{}).hw.area_budget_mm2, 20.0);
}

TEST(Scenarios, WriteVerifyReducesEffectiveSigma) {
  EXPECT_EQ(noise::effective_sigma_scale(0.0, 0.1), 1.0);
  EXPECT_NEAR(noise::effective_sigma_scale(1.0, 0.1), 0.1, 1e-12);
  const double scale = noise::effective_sigma_scale(0.25, 0.1);
  EXPECT_GT(scale, 0.85);
  EXPECT_LT(scale, 0.88);
  EXPECT_THROW((void)noise::effective_sigma_scale(1.5, 0.1),
               std::invalid_argument);
}

TEST(Scenarios, WriteVerifyAccuracyGainIsPaidInProgrammingEnergy) {
  search::Design design;
  design.rollout = {{32, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}};
  core::SurrogateEvaluator plain;
  core::SurrogateEvaluator::Options wv_opts;
  wv_opts.write_verify_fraction = 0.25;
  core::SurrogateEvaluator with_wv(wv_opts);
  util::Rng rng_a(1), rng_b(1);
  const core::Evaluation base = plain.evaluate(design, rng_a);
  const core::Evaluation verified = with_wv.evaluate(design, rng_b);
  EXPECT_GT(verified.accuracy, base.accuracy);  // reduced effective sigma
  // ...bought with extra one-time write pulses: (1-f) + f*pulses = 2.75x.
  EXPECT_NEAR(verified.cost.programming_energy_pj,
              2.75 * base.cost.programming_energy_pj,
              1e-6 * base.cost.programming_energy_pj);
}

TEST(Scenarios, CombinedRewardTradesBothMetrics) {
  const core::ExperimentConfig cfg = core::scenario_by_name("multi-objective").config;
  EXPECT_TRUE(cfg.combined_reward);
  const core::RewardFunction reward = core::make_reward(cfg);
  EXPECT_TRUE(reward.is_combined());
  cim::CostReport cost;
  cost.valid = true;
  cost.energy_total_pj = 8e7;  // energy term = 1
  cost.latency_ns = 1e9 / 1600.0;  // FPS term = 1
  EXPECT_NEAR(reward(0.5, cost), 0.5 - 1.0 + 1.0, 1e-12);
  cost.valid = false;
  EXPECT_EQ(reward(0.5, cost), core::kInvalidReward);
}

TEST(Scenarios, DeepBackbonePromptsYieldEightLayerRollouts) {
  core::ExperimentConfig cfg = core::scenario_by_name("deep-backbone").config;
  cfg.lcda_episodes = 3;
  const core::RunResult run =
      core::run_strategy(core::Strategy::kLcda, cfg.lcda_episodes, cfg);
  for (const auto& ep : run.episodes) {
    EXPECT_EQ(ep.design.rollout.size(), 8u);
  }
}

TEST(Scenarios, PaperEnergyViaRegistryMatchesLegacyHardcodedRun) {
  // The acceptance contract in miniature: driving the run through the
  // registry reproduces the pre-refactor (hand-built config) trace.
  core::ExperimentConfig legacy;  // what the benches used to build inline
  legacy.objective = llm::Objective::kEnergy;
  legacy.seed = 1;
  const core::RunResult expected = core::run_strategy(
      core::Strategy::kLcda, legacy.lcda_episodes, legacy);
  const core::RunResult actual = core::run_strategy(
      core::Strategy::kLcda, 20, core::scenario_by_name("paper-energy").config);
  EXPECT_EQ(trace_text(actual), trace_text(expected));
}

}  // namespace
