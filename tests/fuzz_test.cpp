// Robustness fuzzing of every text-handling path: random byte soup, random
// bracket soup and truncated real payloads must never crash, and whatever
// parses must land inside the search space. These are the paths that face
// an uncontrolled LLM in production.
#include <gtest/gtest.h>

#include <string>

#include "lcda/llm/parser.h"
#include "lcda/llm/prompt_reader.h"
#include "lcda/util/rng.h"
#include "lcda/util/strings.h"

namespace lcda {
namespace {

std::string random_bytes(util::Rng& rng, int len) {
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.uniform_int(32, 126)));  // printable
  }
  return s;
}

std::string random_bracket_soup(util::Rng& rng, int len) {
  static const char alphabet[] = "[]0123456789,-. \nhardware=RFeT";
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.index(sizeof(alphabet) - 1)]);
  }
  return s;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, NeverCrashesAndStaysInSpace) {
  const search::SearchSpace space;
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const std::string text = rng.chance(0.5)
                                 ? random_bytes(rng, static_cast<int>(rng.uniform_int(0, 400)))
                                 : random_bracket_soup(rng, static_cast<int>(rng.uniform_int(0, 400)));
    const llm::ParseResult r = llm::parse_design_response(text, space);
    if (r.ok) {
      EXPECT_TRUE(space.contains(r.design)) << text;
    } else {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3, 4, 5));

class PromptReaderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PromptReaderFuzz, NeverCrashes) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const std::string text =
        rng.chance(0.5)
            ? random_bytes(rng, static_cast<int>(rng.uniform_int(0, 600)))
            : random_bracket_soup(rng, static_cast<int>(rng.uniform_int(0, 600)));
    const llm::PromptFacts facts = llm::read_prompt(text);
    EXPECT_GE(facts.conv_layers, 1);
    EXPECT_LE(facts.conv_layers, 32);
    for (const auto& h : facts.history) {
      EXPECT_FALSE(h.design.rollout.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PromptReaderFuzz, ::testing::Values(7, 8, 9));

TEST(ParserFuzzDirected, TruncatedRealPayloads) {
  const search::SearchSpace space;
  const std::string full =
      "Based on the results, I suggest:\n"
      "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]\n"
      "hardware=[FeFET,2,6,128,8]\n";
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const llm::ParseResult r =
        llm::parse_design_response(full.substr(0, cut), space);
    if (r.ok) EXPECT_TRUE(space.contains(r.design)) << "cut=" << cut;
  }
}

TEST(StringsFuzz, ExtractIntsHandlesAdversarialInput) {
  util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const std::string s = random_bracket_soup(rng, 120);
    const auto ints = util::extract_ints(s);
    for (long long v : ints) {
      EXPECT_LT(std::abs(v), 1000000000000LL);  // bounded by 120 chars
    }
  }
}

TEST(StringsFuzz, SplitJoinRoundTrip) {
  util::Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    // Alphabet without the delimiter so split/join round-trips exactly.
    std::string s;
    for (int j = 0; j < 50; ++j) {
      s.push_back(static_cast<char>(rng.uniform_int('a', 'z')));
      if (rng.chance(0.2)) s.push_back(',');
    }
    const auto parts = util::split(s, ',');
    EXPECT_EQ(util::join(parts, ","), s);
  }
}

}  // namespace
}  // namespace lcda
