#include <gtest/gtest.h>

#include <cmath>

#include "lcda/search/nsga2_optimizer.h"

namespace lcda::search {
namespace {

TEST(MoDominance, Definition) {
  const MoPoint a{0.8, -1.0};
  const MoPoint b{0.7, -2.0};
  const MoPoint c{0.9, -3.0};
  EXPECT_TRUE(mo_dominates(a, b));
  EXPECT_FALSE(mo_dominates(b, a));
  EXPECT_FALSE(mo_dominates(a, c));  // c is better on accuracy, worse on cost
  EXPECT_FALSE(mo_dominates(c, a));
  EXPECT_FALSE(mo_dominates(a, a));
}

TEST(NonDominatedSort, RanksLayeredFronts) {
  // Front 0: (1,0), (0,1); front 1: (0.5,0.5)? No — (0.5,0.5) is not
  // dominated by either. Use truly layered points.
  const std::vector<MoPoint> pts = {
      {1.0, -1.0},   // 0: front 0
      {0.5, -0.5},   // 1: front 0 (trade-off with 0)
      {0.9, -1.5},   // 2: dominated by 0 -> front 1
      {0.4, -0.9},   // 3: dominated by 1 -> front 1
      {0.3, -2.0},   // 4: dominated by several -> front >= 1
  };
  const auto ranks = non_dominated_sort(pts);
  EXPECT_EQ(ranks[0], 0);
  EXPECT_EQ(ranks[1], 0);
  EXPECT_EQ(ranks[2], 1);
  EXPECT_EQ(ranks[3], 1);
  EXPECT_GE(ranks[4], 1);
}

TEST(NonDominatedSort, AllIncomparableIsOneFront) {
  const std::vector<MoPoint> pts = {{0.1, -1}, {0.2, -2}, {0.3, -3}};
  for (int r : non_dominated_sort(pts)) EXPECT_EQ(r, 0);
}

TEST(CrowdingDistance, BoundariesAreInfinite) {
  const std::vector<MoPoint> pts = {{0.1, -1}, {0.2, -2}, {0.3, -3}, {0.4, -4}};
  const auto ranks = non_dominated_sort(pts);
  const auto crowd = crowding_distance(pts, ranks);
  EXPECT_TRUE(std::isinf(crowd[0]));
  EXPECT_TRUE(std::isinf(crowd[3]));
  EXPECT_FALSE(std::isinf(crowd[1]));
  EXPECT_FALSE(std::isinf(crowd[2]));
  EXPECT_GT(crowd[1], 0.0);
}

TEST(Nsga2, ProposalsStayInSpace) {
  const SearchSpace space;
  Nsga2Optimizer nsga(space, {.population = 8, .crossover_rate = 0.9,
                              .mutation_rate = 0.1, .use_latency = false});
  util::Rng rng(1);
  for (int ep = 0; ep < 40; ++ep) {
    const Design d = nsga.propose(rng);
    ASSERT_TRUE(space.contains(d));
    Observation obs;
    obs.design = d;
    obs.accuracy = 0.5;
    obs.energy_pj = 1e7;
    obs.valid = true;
    nsga.feedback(obs);
  }
  EXPECT_GT(nsga.archive_size(), 0u);
}

TEST(Nsga2, RejectsTinyPopulation) {
  EXPECT_THROW(Nsga2Optimizer(SearchSpace{},
                              {.population = 2, .crossover_rate = 0.9,
                               .mutation_rate = 0.1, .use_latency = false}),
               std::invalid_argument);
}

TEST(Nsga2, SpreadsAlongAPlantedFront) {
  // Objectives depend only on the first layer's channels: accuracy grows
  // with width, cost grows with width^2 — every width is Pareto-optimal.
  // NSGA-II should keep a diverse set of widths on its front, not collapse.
  const SearchSpace space;
  Nsga2Optimizer nsga(space, {.population = 16, .crossover_rate = 0.9,
                              .mutation_rate = 0.1, .use_latency = false});
  util::Rng rng(2);
  for (int ep = 0; ep < 300; ++ep) {
    const Design d = nsga.propose(rng);
    Observation obs;
    obs.design = d;
    const double w = d.rollout[0].channels;
    obs.accuracy = w / 128.0;
    obs.energy_pj = w * w;
    obs.valid = true;
    nsga.feedback(obs);
  }
  const auto front = nsga.pareto_designs();
  ASSERT_GE(front.size(), 3u);
  std::set<int> widths;
  for (const auto& d : front) widths.insert(d.rollout[0].channels);
  EXPECT_GE(widths.size(), 3u) << "front must stay spread across widths";
}

TEST(Nsga2, InvalidDesignsNeverOnFront) {
  const SearchSpace space;
  Nsga2Optimizer nsga(space, {.population = 8, .crossover_rate = 0.9,
                              .mutation_rate = 0.1, .use_latency = false});
  util::Rng rng(3);
  for (int ep = 0; ep < 30; ++ep) {
    const Design d = nsga.propose(rng);
    Observation obs;
    obs.design = d;
    obs.valid = ep % 2 == 0;
    obs.accuracy = 0.6;
    obs.energy_pj = 1e6;
    nsga.feedback(obs);
  }
  for (const auto& d : nsga.pareto_designs()) {
    EXPECT_TRUE(space.contains(d));
  }
  EXPECT_GE(nsga.pareto_designs().size(), 1u);
}

TEST(Nsga2, UsesLatencyWhenConfigured) {
  const SearchSpace space;
  Nsga2Optimizer nsga(space, {.population = 8, .crossover_rate = 0.9,
                              .mutation_rate = 0.1, .use_latency = true});
  util::Rng rng(4);
  // Two designs, same accuracy; only latency differs. The slower one must
  // not appear on the front once both are archived.
  const Design fast = space.sample(rng);
  Design slow = space.sample(rng);
  while (slow == fast) slow = space.sample(rng);

  Observation a;
  a.design = fast;
  a.accuracy = 0.5;
  a.latency_ns = 1e5;
  a.energy_pj = 9e9;  // would lose on energy; must be ignored
  a.valid = true;
  nsga.feedback(a);
  Observation b;
  b.design = slow;
  b.accuracy = 0.5;
  b.latency_ns = 2e5;
  b.energy_pj = 1.0;
  b.valid = true;
  nsga.feedback(b);

  const auto front = nsga.pareto_designs();
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], fast);
}

}  // namespace
}  // namespace lcda::search
