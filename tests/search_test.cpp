#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lcda/search/design.h"
#include "lcda/search/genetic_optimizer.h"
#include "lcda/search/random_optimizer.h"
#include "lcda/search/rl_optimizer.h"
#include "lcda/search/space.h"

namespace lcda::search {
namespace {

SearchSpace default_space() { return SearchSpace{}; }

Design vgg_design() {
  Design d;
  d.rollout = {{32, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}};
  return d;
}

// ---------------------------------------------------------------- Design

TEST(Design, RolloutTextMatchesPaperFormat) {
  EXPECT_EQ(vgg_design().rollout_text(),
            "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]");
}

TEST(Design, HashDistinguishesRolloutAndHardware) {
  Design a = vgg_design();
  Design b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.rollout[2].kernel = 5;
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.hw.adc_bits = 7;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Design, DescribeIncludesHardware) {
  const std::string s = vgg_design().describe();
  EXPECT_NE(s.find("RRAM"), std::string::npos);
  EXPECT_NE(s.find("[[32,3]"), std::string::npos);
}

// ----------------------------------------------------------------- Space

TEST(Space, DimensionsAndCardinalities) {
  const SearchSpace space = default_space();
  EXPECT_EQ(space.dimensions(), 17u);  // 6*2 software + 5 hardware
  EXPECT_EQ(space.cardinality(0), 7u);   // channels
  EXPECT_EQ(space.cardinality(1), 4u);   // kernels
  EXPECT_EQ(space.cardinality(12), 2u);  // devices
  EXPECT_EQ(space.cardinality(16), 2u);  // col_mux
  EXPECT_THROW((void)space.cardinality(17), std::out_of_range);
}

TEST(Space, TotalDesignsIsProduct) {
  const SearchSpace space = default_space();
  // (7*4)^6 * 2*3*5*3*2 = 28^6 * 180
  EXPECT_DOUBLE_EQ(space.total_designs(), std::pow(28.0, 6) * 180.0);
}

TEST(Space, EncodeDecodeRoundTrip) {
  const SearchSpace space = default_space();
  const Design d = vgg_design();
  EXPECT_EQ(space.decode(space.encode(d)), d);
}

class SpaceRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpaceRoundTrip, RandomSamplesRoundTrip) {
  const SearchSpace space = default_space();
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Design d = space.sample(rng);
    EXPECT_TRUE(space.contains(d));
    EXPECT_EQ(space.decode(space.encode(d)), d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpaceRoundTrip, ::testing::Values(1, 2, 3, 4));

TEST(Space, EncodeRejectsOutOfSpace) {
  const SearchSpace space = default_space();
  Design d = vgg_design();
  d.rollout[0].channels = 33;
  EXPECT_THROW((void)space.encode(d), std::invalid_argument);
  EXPECT_FALSE(space.contains(d));
}

TEST(Space, DecodeRejectsBadIndices) {
  const SearchSpace space = default_space();
  std::vector<int> idx(space.dimensions(), 0);
  idx[0] = 99;
  EXPECT_THROW((void)space.decode(idx), std::invalid_argument);
  idx.pop_back();
  EXPECT_THROW((void)space.decode(idx), std::invalid_argument);
}

TEST(Space, SnapRepairsArbitraryValues) {
  const SearchSpace space = default_space();
  Design d;
  d.rollout = {{30, 2}, {200, 9}, {0, 0}, {64, 3}, {64, 3}, {128, 3}};
  d.hw.adc_bits = 20;
  d.hw.xbar_size = 100;
  const Design snapped = space.snap(d);
  EXPECT_TRUE(space.contains(snapped));
  EXPECT_EQ(snapped.rollout[0].channels, 32);
  EXPECT_EQ(snapped.rollout[0].kernel, 1);     // 2 -> nearest of {1,3}
  EXPECT_EQ(snapped.rollout[1].channels, 128);  // clamped to largest
  EXPECT_EQ(snapped.hw.adc_bits, 8);
  EXPECT_EQ(snapped.hw.xbar_size, 128);
}

TEST(Space, SnapPadsShortRollouts) {
  const SearchSpace space = default_space();
  Design d;
  d.rollout = {{32, 3}};
  const Design snapped = space.snap(d);
  EXPECT_EQ(snapped.rollout.size(), 6u);
  EXPECT_TRUE(space.contains(snapped));
}

TEST(Space, TextsMentionEveryAxis) {
  const SearchSpace space = default_space();
  const std::string choices = space.choices_text();
  EXPECT_NE(choices.find("channels per layer"), std::string::npos);
  EXPECT_NE(choices.find("kernel sizes"), std::string::npos);
  EXPECT_NE(choices.find("RRAM"), std::string::npos);
  EXPECT_NE(choices.find("adc_bits"), std::string::npos);
  const std::string model = space.model_text();
  EXPECT_NE(model.find("6 convolution layers"), std::string::npos);
  EXPECT_NE(model.find("1024"), std::string::npos);
}

TEST(Space, RejectsDegenerateOptions) {
  SearchSpace::Options opts;
  opts.channel_choices.clear();
  EXPECT_THROW(SearchSpace{opts}, std::invalid_argument);
  opts = {};
  opts.conv_layers = 0;
  EXPECT_THROW(SearchSpace{opts}, std::invalid_argument);
  opts = {};
  opts.hw.adc_bits.clear();
  EXPECT_THROW(SearchSpace{opts}, std::invalid_argument);
}

// ------------------------------------------------------------------- RL

TEST(RlOptimizer, StartsUniform) {
  const SearchSpace space = default_space();
  RlOptimizer rl(space);
  for (std::size_t d = 0; d < space.dimensions(); ++d) {
    const auto p = rl.policy(d);
    for (double pi : p) {
      EXPECT_NEAR(pi, 1.0 / static_cast<double>(p.size()), 1e-12);
    }
  }
}

TEST(RlOptimizer, ProposalsAreInSpace) {
  const SearchSpace space = default_space();
  RlOptimizer rl(space);
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(space.contains(rl.propose(rng)));
  }
}

TEST(RlOptimizer, LearnsAPlantedPreference) {
  // Reward = 1 when the first layer picks 128 channels, else 0. The policy
  // for dimension 0 must concentrate on that choice.
  const SearchSpace space = default_space();
  RlOptimizer rl(space);
  util::Rng rng(2);
  for (int ep = 0; ep < 400; ++ep) {
    const Design d = rl.propose(rng);
    Observation obs;
    obs.design = d;
    obs.reward = d.rollout[0].channels == 128 ? 1.0 : 0.0;
    obs.valid = true;
    rl.feedback(obs);
  }
  const auto p = rl.policy(0);
  // Index 6 is channels=128 in the default choice list.
  EXPECT_GT(p[6], 0.5);
  EXPECT_EQ(rl.episodes(), 400u);
}

TEST(RlOptimizer, ColdStartIsRandom) {
  // Before any feedback, proposals are spread out — the cold start the
  // paper criticizes. Check channel diversity over the first proposals.
  const SearchSpace space = default_space();
  RlOptimizer rl(space);
  util::Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 30; ++i) seen.insert(rl.propose(rng).rollout[0].channels);
  EXPECT_GE(seen.size(), 4u);
}

TEST(RlOptimizer, FeedbackForForeignDesignsViaEncode) {
  const SearchSpace space = default_space();
  RlOptimizer rl(space);
  Observation obs;
  obs.design = vgg_design();
  obs.reward = 1.0;
  rl.feedback(obs);  // no matching proposal: must re-encode without throwing
  EXPECT_EQ(rl.episodes(), 1u);
  // Out-of-space designs are ignored.
  obs.design.rollout[0].channels = 33;
  rl.feedback(obs);
  EXPECT_EQ(rl.episodes(), 1u);
}

// -------------------------------------------------------------- Genetic

TEST(GeneticOptimizer, SeedsThenBreedsInSpace) {
  const SearchSpace space = default_space();
  GeneticOptimizer ga(space, {.population = 8, .tournament = 2,
                              .crossover_rate = 0.9, .mutation_rate = 0.1,
                              .elite = 2});
  util::Rng rng(4);
  for (int ep = 0; ep < 40; ++ep) {
    const Design d = ga.propose(rng);
    EXPECT_TRUE(space.contains(d));
    Observation obs;
    obs.design = d;
    obs.reward = static_cast<double>(d.rollout[0].channels);
    ga.feedback(obs);
  }
  EXPECT_GT(ga.population_size(), 0u);
}

TEST(GeneticOptimizer, ExploitsAPlantedReward) {
  const SearchSpace space = default_space();
  GeneticOptimizer ga(space, {.population = 12, .tournament = 3,
                              .crossover_rate = 0.9, .mutation_rate = 0.05,
                              .elite = 3});
  util::Rng rng(5);
  double late_sum = 0.0;
  int late_n = 0;
  for (int ep = 0; ep < 200; ++ep) {
    const Design d = ga.propose(rng);
    Observation obs;
    obs.design = d;
    obs.reward = d.rollout[0].channels / 128.0;
    ga.feedback(obs);
    if (ep >= 150) {
      late_sum += obs.reward;
      ++late_n;
    }
  }
  // Uniform sampling gives mean (16+24+32+48+64+96+128)/7/128 = 0.455.
  EXPECT_GT(late_sum / late_n, 0.6);
}

TEST(GeneticOptimizer, RejectsDegenerateOptions) {
  EXPECT_THROW(GeneticOptimizer(default_space(),
                                {.population = 1, .tournament = 2,
                                 .crossover_rate = 0.9, .mutation_rate = 0.1,
                                 .elite = 1}),
               std::invalid_argument);
}

// ------------------------------------------------------------ decodes_to

TEST(SearchSpace, DecodesToAgreesWithDecode) {
  const SearchSpace space = default_space();
  util::Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const Design d = space.sample(rng);
    const std::vector<int> idx = space.encode(d);
    EXPECT_TRUE(space.decodes_to(idx, d));
    EXPECT_EQ(space.decode(idx), d);

    // Any single perturbation must break the match.
    Design wrong_rollout = d;
    wrong_rollout.rollout[0].channels += 1;
    EXPECT_FALSE(space.decodes_to(idx, wrong_rollout));
    Design wrong_hw = d;
    wrong_hw.hw.adc_bits += 1;
    EXPECT_FALSE(space.decodes_to(idx, wrong_hw));
    Design wrong_budget = d;
    wrong_budget.hw.area_budget_mm2 += 1.0;
    EXPECT_FALSE(space.decodes_to(idx, wrong_budget));
  }
  // Malformed indices are false, not a throw.
  const Design d = space.sample(rng);
  EXPECT_FALSE(space.decodes_to({}, d));
  std::vector<int> bad = space.encode(d);
  bad[0] = 10000;
  EXPECT_FALSE(space.decodes_to(bad, d));
}

// --------------------------------------------------------------- Random

TEST(RandomOptimizer, AvoidsDuplicates) {
  const SearchSpace space = default_space();
  RandomOptimizer random(space);
  util::Rng rng(6);
  std::set<std::uint64_t> seen;
  int dups = 0;
  for (int i = 0; i < 100; ++i) {
    const Design d = random.propose(rng);
    if (!seen.insert(d.hash()).second) ++dups;
    Observation obs;
    obs.design = d;
    random.feedback(obs);
  }
  EXPECT_EQ(dups, 0) << "the space is astronomically large; no dups expected";
}

}  // namespace
}  // namespace lcda::search
