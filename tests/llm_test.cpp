#include <gtest/gtest.h>

#include <memory>

#include "lcda/llm/llm_optimizer.h"
#include "lcda/llm/parser.h"
#include "lcda/llm/prompt.h"
#include "lcda/llm/prompt_reader.h"
#include "lcda/llm/scripted_llm.h"
#include "lcda/llm/simulated_gpt4.h"

namespace lcda::llm {
namespace {

search::SearchSpace default_space() { return search::SearchSpace{}; }

search::Design vgg_design() {
  search::Design d;
  d.rollout = {{32, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}};
  return d;
}

// ---------------------------------------------------------------- Prompt

TEST(Prompt, ContainsAlgorithmOnePhrases) {
  PromptBuilder builder(default_space(), {});
  const ChatRequest req = builder.build({});
  ASSERT_EQ(req.messages.size(), 2u);
  EXPECT_EQ(req.messages[0].content,
            "You are an expert in the field of neural architecture search.");
  const std::string& u = req.messages[1].content;
  EXPECT_NE(u.find("selecting the best rollout numbers"), std::string::npos);
  EXPECT_NE(u.find("CIFAR10"), std::string::npos);
  EXPECT_NE(u.find("the performance I give you will be -1"), std::string::npos);
  EXPECT_NE(u.find("rollout list consisting of 6 number pairs"), std::string::npos);
  EXPECT_NE(u.find("do not include anything else"), std::string::npos);
}

TEST(Prompt, ObjectiveSentenceSwitches) {
  PromptBuilder::Options energy;
  energy.objective = Objective::kEnergy;
  PromptBuilder::Options latency;
  latency.objective = Objective::kLatency;
  const std::string e =
      PromptBuilder(default_space(), energy).build({}).full_text();
  const std::string l =
      PromptBuilder(default_space(), latency).build({}).full_text();
  EXPECT_NE(e.find("energy consumption"), std::string::npos);
  EXPECT_EQ(e.find("inference latency"), std::string::npos);
  EXPECT_NE(l.find("inference latency"), std::string::npos);
}

TEST(Prompt, NaiveVariantStripsDomainContext) {
  PromptBuilder::Options naive;
  naive.codesign_context = false;
  const std::string text =
      PromptBuilder(default_space(), naive).build({}).full_text();
  EXPECT_EQ(text.find("neural architecture"), std::string::npos);
  EXPECT_EQ(text.find("CIFAR"), std::string::npos);
  EXPECT_EQ(text.find("accelerator"), std::string::npos);
  EXPECT_EQ(text.find("model architecture"), std::string::npos);
  // The choices and scoring rule must still be there.
  EXPECT_NE(text.find("channels per layer"), std::string::npos);
  EXPECT_NE(text.find("score will be -1"), std::string::npos);
}

TEST(Prompt, HistoryLinesIncluded) {
  PromptBuilder builder(default_space(), {});
  HistoryEntry h;
  h.design = vgg_design();
  h.performance = 0.345;
  const std::string text = builder.build({h}).full_text();
  EXPECT_NE(text.find("rollout=[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]"),
            std::string::npos);
  EXPECT_NE(text.find("performance=0.345"), std::string::npos);
  EXPECT_NE(text.find("experimental results that you can use as a reference"),
            std::string::npos);
}

TEST(Prompt, HistoryIsCapped) {
  PromptBuilder::Options opts;
  opts.max_history = 3;
  PromptBuilder builder(default_space(), opts);
  std::vector<HistoryEntry> history;
  for (int i = 0; i < 10; ++i) {
    HistoryEntry h;
    h.design = vgg_design();
    h.performance = i * 0.1;
    history.push_back(h);
  }
  const std::string text = builder.build(history).full_text();
  // Only the 3 newest entries appear.
  EXPECT_EQ(text.find("performance=0.6"), std::string::npos);
  EXPECT_NE(text.find("performance=0.7"), std::string::npos);
  EXPECT_NE(text.find("performance=0.9"), std::string::npos);
}

TEST(Prompt, HardwareTextFormat) {
  cim::HardwareConfig hw;
  hw.device = cim::DeviceType::kFefet;
  hw.bits_per_cell = 4;
  hw.adc_bits = 5;
  hw.xbar_size = 256;
  hw.col_mux = 4;
  EXPECT_EQ(PromptBuilder::hardware_text(hw), "[FeFET,4,5,256,4]");
}

// ---------------------------------------------------------- PromptReader

TEST(PromptReader, RoundTripsEverythingThePromptCarries) {
  PromptBuilder::Options opts;
  opts.objective = Objective::kLatency;
  PromptBuilder builder(default_space(), opts);
  HistoryEntry h;
  h.design = vgg_design();
  h.design.hw.device = cim::DeviceType::kFefet;
  h.design.hw.adc_bits = 7;
  h.performance = -1.0;
  const PromptFacts facts = read_prompt(builder.build({h}).full_text());

  EXPECT_TRUE(facts.codesign_context);
  EXPECT_EQ(facts.objective, Objective::kLatency);
  EXPECT_EQ(facts.conv_layers, 6);
  EXPECT_EQ(facts.channel_choices, (std::vector<int>{16, 24, 32, 48, 64, 96, 128}));
  EXPECT_EQ(facts.kernel_choices, (std::vector<int>{1, 3, 5, 7}));
  EXPECT_EQ(facts.adc_bits_choices, (std::vector<int>{4, 5, 6, 7, 8}));
  EXPECT_EQ(facts.xbar_choices, (std::vector<int>{64, 128, 256}));
  ASSERT_EQ(facts.device_choices.size(), 2u);

  ASSERT_EQ(facts.history.size(), 1u);
  EXPECT_EQ(facts.history[0].design.rollout, h.design.rollout);
  EXPECT_EQ(facts.history[0].design.hw.device, cim::DeviceType::kFefet);
  EXPECT_EQ(facts.history[0].design.hw.adc_bits, 7);
  EXPECT_DOUBLE_EQ(facts.history[0].performance, -1.0);
}

TEST(PromptReader, DetectsNaivePrompt) {
  PromptBuilder::Options naive;
  naive.codesign_context = false;
  const PromptFacts facts =
      read_prompt(PromptBuilder(default_space(), naive).build({}).full_text());
  EXPECT_FALSE(facts.codesign_context);
  // Choices still flow through the naive prompt.
  EXPECT_FALSE(facts.channel_choices.empty());
}

TEST(PromptReader, ToleratesGarbage) {
  const PromptFacts facts = read_prompt("complete nonsense with no structure");
  EXPECT_FALSE(facts.codesign_context);
  EXPECT_TRUE(facts.history.empty());
  EXPECT_EQ(facts.conv_layers, 6);
}

// ---------------------------------------------------------------- Parser

struct ParseCase {
  const char* name;
  const char* text;
  bool ok;
  int first_channels = 0;
  int first_kernel = 0;
};

class ParserCases : public ::testing::TestWithParam<ParseCase> {};

TEST_P(ParserCases, Parses) {
  const auto& p = GetParam();
  const ParseResult r = parse_design_response(p.text, default_space());
  EXPECT_EQ(r.ok, p.ok) << p.name << ": " << r.error;
  if (p.ok) {
    EXPECT_EQ(r.design.rollout[0].channels, p.first_channels) << p.name;
    EXPECT_EQ(r.design.rollout[0].kernel, p.first_kernel) << p.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserCases,
    ::testing::Values(
        ParseCase{"clean", "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]",
                  true, 32, 3},
        ParseCase{"chatter",
                  "Sure! Based on the results I suggest:\n"
                  "[[48,5],[48,3],[64,3],[64,3],[96,3],[128,3]]\nGood luck!",
                  true, 48, 5},
        ParseCase{"spacing", "[ [ 16 , 7 ] , [24,3],[32,3],[48,3],[64,3],[96,3] ]",
                  true, 16, 7},
        ParseCase{"newlines", "[[32,3],\n[32,3],\n[64,3],\n[64,3],\n[128,3],\n[128,3]]",
                  true, 32, 3},
        ParseCase{"snapped-off-space",
                  "[[30,3],[32,3],[64,3],[64,3],[128,3],[128,3]]", true, 32, 3},
        ParseCase{"too-few-pairs", "[[32,3],[64,3]]", false},
        ParseCase{"no-design", "I cannot help with that.", false},
        ParseCase{"empty", "", false}));

TEST(Parser, ExtractsHardwareLine) {
  const ParseResult r = parse_design_response(
      "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]\nhardware=[FeFET,4,8,256,4]",
      default_space());
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.design.hw.device, cim::DeviceType::kFefet);
  EXPECT_EQ(r.design.hw.bits_per_cell, 4);
  EXPECT_EQ(r.design.hw.adc_bits, 8);
  EXPECT_EQ(r.design.hw.xbar_size, 256);
  EXPECT_EQ(r.design.hw.col_mux, 4);
}

TEST(Parser, MissingHardwareUsesDefaults) {
  const ParseResult r = parse_design_response(
      "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]", default_space());
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.design.hw, cim::HardwareConfig{});
  EXPECT_EQ(r.repairs, 0);
}

TEST(Parser, CountsRepairs) {
  const ParseResult r = parse_design_response(
      "[[31,3],[32,4],[64,3],[64,3],[128,3],[128,3]]", default_space());
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.design.rollout[0].channels, 32);  // snapped 31 -> 32
  EXPECT_GE(r.repairs, 2);
}

TEST(Parser, SnappedDesignIsAlwaysInSpace) {
  const search::SearchSpace space = default_space();
  const ParseResult r = parse_design_response(
      "[[999,9],[1,2],[64,3],[64,3],[500,6],[128,3]]\nhardware=[RRAM,3,9,100,5]",
      space);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(space.contains(r.design));
}

// ----------------------------------------------------------- ScriptedLlm

TEST(ScriptedLlm, ReplaysAndRecords) {
  ScriptedLlm llm({"one", "two"});
  ChatRequest req;
  req.messages.push_back({ChatMessage::Role::kUser, "hello"});
  EXPECT_EQ(llm.complete(req).content, "one");
  EXPECT_EQ(llm.complete(req).content, "two");
  EXPECT_EQ(llm.complete(req).content, "two");  // repeats the last
  EXPECT_EQ(llm.calls(), 3u);
  EXPECT_EQ(llm.requests()[0].messages[0].content, "hello");
}

// ---------------------------------------------------------- SimulatedGpt4

ChatRequest codesign_request(const std::vector<HistoryEntry>& history,
                             Objective objective = Objective::kEnergy) {
  PromptBuilder::Options opts;
  opts.objective = objective;
  return PromptBuilder(default_space(), opts).build(history);
}

TEST(SimulatedGpt4, FirstProposalIsExpertLegal) {
  // "No cold start": episode-0 proposals must already be sensible.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SimulatedGpt4::Options o;
    o.seed = seed;
    SimulatedGpt4 gpt(o);
    const ChatResponse resp = gpt.complete(codesign_request({}));
    const ParseResult r = parse_design_response(resp.content, default_space());
    ASSERT_TRUE(r.ok) << "seed " << seed << ": " << resp.content;
    int prev = 0;
    for (const auto& spec : r.design.rollout) {
      EXPECT_GE(spec.kernel, 3) << "expert avoids 1x1 backbones";
      if (prev > 0) {
        EXPECT_GE(spec.channels, prev) << "non-decreasing channels";
        EXPECT_LE(spec.channels, prev * 4) << "never grows by more than 4x";
      }
      prev = spec.channels;
    }
  }
}

TEST(SimulatedGpt4, ResponsesAlwaysParseable) {
  SimulatedGpt4 gpt;
  std::vector<HistoryEntry> history;
  for (int ep = 0; ep < 30; ++ep) {
    const ChatResponse resp = gpt.complete(codesign_request(history));
    const ParseResult r = parse_design_response(resp.content, default_space());
    ASSERT_TRUE(r.ok) << "episode " << ep << ": " << resp.content;
    HistoryEntry h;
    h.design = r.design;
    h.performance = 0.1 * (ep % 5);
    history.push_back(h);
  }
}

TEST(SimulatedGpt4, AvoidsRepeatingHistoryDesigns) {
  SimulatedGpt4 gpt;
  std::vector<HistoryEntry> history;
  int repeats = 0;
  for (int ep = 0; ep < 25; ++ep) {
    const ChatResponse resp = gpt.complete(codesign_request(history));
    const ParseResult r = parse_design_response(resp.content, default_space());
    ASSERT_TRUE(r.ok);
    for (const auto& h : history) {
      if (h.design == r.design) {
        ++repeats;
        break;
      }
    }
    HistoryEntry h;
    h.design = r.design;
    h.performance = 0.3;
    history.push_back(h);
  }
  EXPECT_LE(repeats, 2);
}

TEST(SimulatedGpt4, BacksOffAfterInvalidReward) {
  SimulatedGpt4 gpt;
  std::vector<HistoryEntry> history;
  HistoryEntry big;
  big.design.rollout = {{128, 7}, {128, 7}, {128, 7}, {128, 7}, {128, 7}, {128, 7}};
  big.performance = -1.0;  // invalid: area too large
  history.push_back(big);
  const ChatResponse resp = gpt.complete(codesign_request(history));
  const ParseResult r = parse_design_response(resp.content, default_space());
  ASSERT_TRUE(r.ok);
  long long before = 0, after = 0;
  for (const auto& s : big.design.rollout) before += s.channels;
  for (const auto& s : r.design.rollout) after += s.channels;
  EXPECT_LT(after, before) << "expert shrinks after an area violation";
}

TEST(SimulatedGpt4, LatencyObjectiveTriggersKernelFiddling) {
  // The wrong CiM priors (Sec. IV-B) show up as frequent kernel changes
  // under the latency objective — much more than under energy.
  auto kernel_changes = [](Objective obj) {
    SimulatedGpt4::Options o;
    o.seed = 42;
    SimulatedGpt4 gpt(o);
    std::vector<HistoryEntry> history;
    HistoryEntry base;
    base.design = vgg_design();
    base.design.rollout[0].kernel = 5;  // leave room to shrink and grow
    base.performance = 0.4;
    history.push_back(base);
    int changes = 0;
    for (int ep = 0; ep < 40; ++ep) {
      const ChatResponse resp = gpt.complete(codesign_request(history, obj));
      const ParseResult r = parse_design_response(resp.content, default_space());
      if (!r.ok) continue;
      for (std::size_t i = 0; i < r.design.rollout.size(); ++i) {
        if (r.design.rollout[i].kernel != base.design.rollout[i].kernel) {
          ++changes;
          break;
        }
      }
    }
    return changes;
  };
  EXPECT_GT(kernel_changes(Objective::kLatency),
            kernel_changes(Objective::kEnergy));
}

TEST(SimulatedGpt4, NaivePromptProducesUnconstrainedDesigns) {
  PromptBuilder::Options naive;
  naive.codesign_context = false;
  PromptBuilder builder(default_space(), naive);
  SimulatedGpt4 gpt;
  bool violated_expert_rules = false;
  std::vector<HistoryEntry> history;
  for (int ep = 0; ep < 30; ++ep) {
    const ChatResponse resp = gpt.complete(builder.build(history));
    const ParseResult r = parse_design_response(resp.content, default_space());
    ASSERT_TRUE(r.ok);
    int prev = 0;
    for (const auto& spec : r.design.rollout) {
      if (spec.kernel == 1 || (prev > 0 && spec.channels < prev)) {
        violated_expert_rules = true;
      }
      prev = spec.channels;
    }
    HistoryEntry h;
    h.design = r.design;
    h.performance = 0.1;
    history.push_back(h);
  }
  EXPECT_TRUE(violated_expert_rules)
      << "without co-design context the model ignores the expert heuristics";
}

TEST(SimulatedGpt4, DeterministicGivenSeed) {
  SimulatedGpt4::Options o;
  o.seed = 5;
  SimulatedGpt4 a(o), b(o);
  const ChatRequest req = codesign_request({});
  EXPECT_EQ(a.complete(req).content, b.complete(req).content);
}

// ---------------------------------------------------------- LlmOptimizer

TEST(LlmOptimizer, ProposesParseableDesignsAndKeepsHistory) {
  auto client = std::make_shared<SimulatedGpt4>();
  LlmOptimizer opt(default_space(), client);
  util::Rng rng(1);
  for (int ep = 0; ep < 5; ++ep) {
    const search::Design d = opt.propose(rng);
    EXPECT_TRUE(default_space().contains(d));
    search::Observation obs;
    obs.design = d;
    obs.reward = 0.2;
    opt.feedback(obs);
  }
  EXPECT_EQ(opt.history().size(), 5u);
  EXPECT_GE(opt.transcript().size(), 5u);
  EXPECT_TRUE(opt.transcript().front().parsed_ok);
}

TEST(LlmOptimizer, FallsBackOnGarbageResponses) {
  auto client = std::make_shared<ScriptedLlm>(
      std::vector<std::string>{"nope", "still nope", "nothing", "no"});
  LlmOptimizer opt(default_space(), client);
  util::Rng rng(2);
  const search::Design d = opt.propose(rng);  // all retries fail -> random
  EXPECT_TRUE(default_space().contains(d));
  EXPECT_GE(client->calls(), 4u);  // initial + retries
}

TEST(LlmOptimizer, NameReflectsVariant) {
  auto client = std::make_shared<SimulatedGpt4>();
  LlmOptimizer::Options naive;
  naive.prompt.codesign_context = false;
  EXPECT_EQ(LlmOptimizer(default_space(), client).name(), "LCDA(SimulatedGPT4)");
  EXPECT_EQ(LlmOptimizer(default_space(), client, naive).name(),
            "LCDA-naive(SimulatedGPT4)");
}

TEST(LlmOptimizer, HistoryFlowsIntoPrompt) {
  auto client = std::make_shared<ScriptedLlm>(std::vector<std::string>{
      "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]",
      "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]"});
  LlmOptimizer opt(default_space(), client);
  util::Rng rng(3);
  const search::Design d = opt.propose(rng);
  search::Observation obs;
  obs.design = d;
  obs.reward = 0.777;
  opt.feedback(obs);
  (void)opt.propose(rng);
  const std::string& second_prompt = client->requests().back().full_text();
  EXPECT_NE(second_prompt.find("performance=0.777"), std::string::npos);
}

}  // namespace
}  // namespace lcda::llm
