#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "lcda/tensor/ops.h"
#include "lcda/tensor/tensor.h"
#include "lcda/util/rng.h"

namespace lcda::tensor {
namespace {

using util::Rng;

Tensor random_tensor(std::vector<int> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& x : t.data()) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

// ---------------------------------------------------------------- Tensor

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.shape_str(), "[2, 3, 4]");
  for (float x : t.data()) EXPECT_EQ(x, 0.0f);
}

TEST(Tensor, RejectsBadShapes) {
  EXPECT_THROW(Tensor({0, 2}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1}), std::invalid_argument);
  EXPECT_THROW(Tensor({2}, {1.0f}), std::invalid_argument);
}

TEST(Tensor, At2dAnd4dIndexing) {
  Tensor m({2, 3});
  m.at(1, 2) = 5.0f;
  EXPECT_EQ(m[5], 5.0f);
  Tensor t({2, 3, 4, 4});
  t.at(1, 2, 3, 3) = 7.0f;
  EXPECT_EQ(t[t.size() - 1], 7.0f);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t({2, 6});
  t[7] = 3.0f;
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r[7], 3.0f);
  EXPECT_THROW((void)t.reshaped({5}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}), b({3});
  a.fill(2.0f);
  b.fill(3.0f);
  a += b;
  EXPECT_EQ(a[0], 5.0f);
  a -= b;
  EXPECT_EQ(a[1], 2.0f);
  a *= 2.0f;
  EXPECT_EQ(a[2], 4.0f);
  Tensor c({4});
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t({2, 2}, {1.0f, -2.0f, 3.0f, -4.0f});
  EXPECT_DOUBLE_EQ(t.sum(), -2.0);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(30.0), 1e-6);
  EXPECT_EQ(t.max_abs(), 4.0f);
}

TEST(Tensor, HeNormalStddev) {
  Rng rng(5);
  const Tensor t = Tensor::he_normal({64, 64}, 128, rng);
  double sum = 0.0, sq = 0.0;
  for (float x : t.data()) {
    sum += x;
    sq += static_cast<double>(x) * x;
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(sq / n), std::sqrt(2.0 / 128), 0.01);
}

// ------------------------------------------------------------------ GEMM

void naive_gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += a.at(i, kk) * b.at(kk, j);
      c.at(i, j) = acc;
    }
  }
}

class GemmSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Tensor c({m, n}), ref({m, n});
  gemm(a, b, c);
  naive_gemm(a, b, ref);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 32, 8), std::make_tuple(9, 1, 9)));

TEST(Gemm, TransposedVariantsAgree) {
  Rng rng(77);
  const Tensor a = random_tensor({6, 4}, rng);   // used as A^T: (4,6)
  const Tensor b = random_tensor({6, 5}, rng);
  Tensor c1({4, 5});
  gemm_at_b(a, b, c1);
  // Reference: transpose A explicitly.
  Tensor at({4, 6});
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 4; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor ref({4, 5});
  naive_gemm(at, b, ref);
  for (std::size_t i = 0; i < c1.size(); ++i) ASSERT_NEAR(c1[i], ref[i], 1e-4);
}

TEST(Gemm, ABTransposedAgrees) {
  Rng rng(78);
  const Tensor a = random_tensor({3, 7}, rng);
  const Tensor b = random_tensor({5, 7}, rng);  // used as B^T: (7,5)
  Tensor c({3, 5});
  gemm_a_bt(a, b, c);
  Tensor bt({7, 5});
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 7; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor ref({3, 5});
  naive_gemm(a, bt, ref);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_NEAR(c[i], ref[i], 1e-4);
}

TEST(Gemm, RejectsMismatchedShapes) {
  Tensor a({2, 3}), b({4, 5}), c({2, 5});
  EXPECT_THROW(gemm(a, b, c), std::invalid_argument);
}

// ------------------------------------------------------------------ Conv

/// Direct convolution reference (stride 1, square kernel, zero padding).
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor& bias,
                  const ConvGeom& g) {
  const int n = x.dim(0), cin = x.dim(1);
  const int cout = w.dim(0), k = g.kernel;
  const int oh = g.out_h(), ow = g.out_w();
  Tensor y({n, cout, oh, ow});
  for (int i = 0; i < n; ++i) {
    for (int co = 0; co < cout; ++co) {
      for (int yy = 0; yy < oh; ++yy) {
        for (int xx = 0; xx < ow; ++xx) {
          float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(co)];
          for (int ci = 0; ci < cin; ++ci) {
            for (int ky = 0; ky < k; ++ky) {
              for (int kx = 0; kx < k; ++kx) {
                const int iy = yy * g.stride + ky - g.pad;
                const int ix = xx * g.stride + kx - g.pad;
                if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) continue;
                acc += x.at(i, ci, iy, ix) * w.at(co, ci, ky, kx);
              }
            }
          }
          y.at(i, co, yy, xx) = acc;
        }
      }
    }
  }
  return y;
}

class ConvForward
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvForward, MatchesNaive) {
  const auto [cin, cout, kernel, size] = GetParam();
  Rng rng(static_cast<std::uint64_t>(cin * 1000 + cout * 100 + kernel * 10 + size));
  const ConvGeom g{size, size, kernel, 1, kernel / 2};
  const Tensor x = random_tensor({2, cin, size, size}, rng);
  const Tensor w = random_tensor({cout, cin, kernel, kernel}, rng);
  const Tensor bias = random_tensor({cout}, rng);
  Tensor y({2, cout, g.out_h(), g.out_w()});
  std::vector<float> scratch;
  conv2d_forward(x, w, bias, g, y, scratch);
  const Tensor ref = naive_conv(x, w, bias, g);
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], ref[i], 1e-4) << "at flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvForward,
    ::testing::Values(std::make_tuple(1, 1, 3, 6), std::make_tuple(3, 8, 3, 8),
                      std::make_tuple(2, 4, 5, 8), std::make_tuple(3, 2, 7, 8),
                      std::make_tuple(4, 4, 1, 5)));

TEST(ConvBackward, NumericalGradientCheck) {
  Rng rng(99);
  const ConvGeom g{5, 5, 3, 1, 1};
  Tensor x = random_tensor({1, 2, 5, 5}, rng);
  Tensor w = random_tensor({3, 2, 3, 3}, rng);
  Tensor bias = random_tensor({3}, rng);
  std::vector<float> scratch;

  // Loss = sum(y * m) for a fixed random mask m => dy = m.
  const Tensor mask = random_tensor({1, 3, 5, 5}, rng);
  auto loss = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    Tensor y({1, 3, g.out_h(), g.out_w()});
    conv2d_forward(xx, ww, bb, g, y, scratch);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) s += y[i] * mask[i];
    return s;
  };

  Tensor dx({1, 2, 5, 5}), dw({3, 2, 3, 3}), dbias({3});
  conv2d_backward(x, w, g, mask, &dx, &dw, &dbias, scratch);

  const float eps = 1e-3f;
  // Spot-check several coordinates of each gradient.
  for (std::size_t idx : {0u, 7u, 23u, 49u}) {
    Tensor xp = x;
    xp[idx] += eps;
    Tensor xm = x;
    xm[idx] -= eps;
    const double num = (loss(xp, w, bias) - loss(xm, w, bias)) / (2 * eps);
    EXPECT_NEAR(dx[idx], num, 2e-2) << "dx[" << idx << "]";
  }
  for (std::size_t idx : {0u, 11u, 35u, 53u}) {
    Tensor wp = w;
    wp[idx] += eps;
    Tensor wm = w;
    wm[idx] -= eps;
    const double num = (loss(x, wp, bias) - loss(x, wm, bias)) / (2 * eps);
    EXPECT_NEAR(dw[idx], num, 2e-2) << "dw[" << idx << "]";
  }
  for (std::size_t idx : {0u, 2u}) {
    Tensor bp = bias;
    bp[idx] += eps;
    Tensor bm = bias;
    bm[idx] -= eps;
    const double num = (loss(x, w, bp) - loss(x, w, bm)) / (2 * eps);
    EXPECT_NEAR(dbias[idx], num, 2e-2) << "dbias[" << idx << "]";
  }
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), c> == <x, col2im(c)> — the defining adjoint property that
  // makes the conv backward pass correct.
  Rng rng(123);
  const ConvGeom g{6, 6, 3, 1, 1};
  const int channels = 2;
  const Tensor x = random_tensor({channels, 6, 6}, rng);
  const std::size_t col_elems =
      static_cast<std::size_t>(channels) * 9 * g.out_h() * g.out_w();
  std::vector<float> cols(col_elems);
  im2col(x.raw(), channels, g, cols.data());

  Tensor c({static_cast<int>(col_elems)});
  for (auto& v : c.data()) v = static_cast<float>(rng.uniform(-1, 1));
  Tensor back({channels, 6, 6});
  back.fill(0.0f);
  col2im(c.raw(), channels, g, back.raw());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_elems; ++i) lhs += cols[i] * c[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// ------------------------------------------------------------------ Pool

TEST(MaxPool, ForwardPicksMax) {
  Tensor x({1, 1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  Tensor y({1, 1, 1, 1});
  std::vector<int> argmax;
  maxpool2x2_forward(x, y, argmax);
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(argmax[0], 1);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  Tensor x({1, 1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  Tensor y({1, 1, 1, 1});
  std::vector<int> argmax;
  maxpool2x2_forward(x, y, argmax);
  Tensor dy({1, 1, 1, 1}, {2.5f});
  Tensor dx({1, 1, 2, 2});
  maxpool2x2_backward(dy, argmax, dx);
  EXPECT_EQ(dx[1], 2.5f);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[2], 0.0f);
}

TEST(MaxPool, HalvesSpatialDims) {
  Rng rng(7);
  const Tensor x = random_tensor({2, 3, 8, 8}, rng);
  Tensor y({2, 3, 4, 4});
  std::vector<int> argmax;
  maxpool2x2_forward(x, y, argmax);
  // Every output must equal the max of its 2x2 window.
  for (int n = 0; n < 2; ++n) {
    for (int c = 0; c < 3; ++c) {
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          float mx = -1e9f;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              mx = std::max(mx, x.at(n, c, i * 2 + dy, j * 2 + dx));
            }
          }
          ASSERT_EQ(y.at(n, c, i, j), mx);
        }
      }
    }
  }
}

// ------------------------------------------------------- ReLU / softmax

TEST(Relu, ForwardAndBackward) {
  Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor y({4});
  relu_forward(x, y);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor dy({4}, {1.0f, 1.0f, 1.0f, 1.0f});
  Tensor dx({4});
  relu_backward(x, dy, dx);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[2], 1.0f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(11);
  const Tensor logits = random_tensor({5, 10}, rng);
  Tensor probs({5, 10});
  softmax_rows(logits, probs);
  for (int i = 0; i < 5; ++i) {
    double s = 0.0;
    for (int j = 0; j < 10; ++j) {
      const float p = probs.at(i, j);
      ASSERT_GE(p, 0.0f);
      s += p;
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  Tensor logits({1, 3}, {1000.0f, 1001.0f, 999.0f});
  Tensor probs({1, 3});
  softmax_rows(logits, probs);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_GT(probs[1], probs[0]);
}

TEST(CrossEntropy, LossAndGradient) {
  Tensor probs({2, 3}, {0.7f, 0.2f, 0.1f, 0.1f, 0.1f, 0.8f});
  const std::vector<int> labels = {0, 2};
  Tensor dlogits({2, 3});
  const double loss = cross_entropy_loss(probs, labels, dlogits);
  EXPECT_NEAR(loss, -(std::log(0.7) + std::log(0.8)) / 2.0, 1e-6);
  // dlogits = (p - onehot) / N
  EXPECT_NEAR(dlogits.at(0, 0), (0.7 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(dlogits.at(0, 1), 0.2 / 2.0, 1e-6);
  EXPECT_NEAR(dlogits.at(1, 2), (0.8 - 1.0) / 2.0, 1e-6);
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor probs({1, 3}, {0.3f, 0.3f, 0.4f});
  Tensor dlogits({1, 3});
  const std::vector<int> bad = {3};
  EXPECT_THROW((void)cross_entropy_loss(probs, bad, dlogits), std::invalid_argument);
}

TEST(ArgmaxRows, PicksLargest) {
  Tensor t({2, 3}, {0.1f, 0.9f, 0.0f, 0.5f, 0.2f, 0.6f});
  const auto am = argmax_rows(t);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 2);
}

// ----------------------------------------------------------------- Dense

TEST(Dense, ForwardWithBias) {
  Tensor x({1, 2}, {1.0f, 2.0f});
  Tensor w({2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});
  Tensor b({2}, {0.5f, -0.5f});
  Tensor y({1, 2});
  dense_forward(x, w, b, y);
  EXPECT_EQ(y[0], 1.5f);
  EXPECT_EQ(y[1], 1.5f);
}

TEST(Dense, BackwardGradientCheck) {
  Rng rng(31);
  Tensor x = random_tensor({3, 4}, rng);
  Tensor w = random_tensor({4, 5}, rng);
  Tensor b = random_tensor({5}, rng);
  const Tensor mask = random_tensor({3, 5}, rng);

  auto loss = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    Tensor y({3, 5});
    dense_forward(xx, ww, bb, y);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) s += y[i] * mask[i];
    return s;
  };

  Tensor dx({3, 4}), dw({4, 5}), db({5});
  dense_backward(x, w, mask, &dx, &dw, &db);

  const float eps = 1e-3f;
  for (std::size_t idx : {0u, 5u, 11u}) {
    Tensor xp = x;
    xp[idx] += eps;
    Tensor xm = x;
    xm[idx] -= eps;
    EXPECT_NEAR(dx[idx], (loss(xp, w, b) - loss(xm, w, b)) / (2 * eps), 2e-2);
  }
  for (std::size_t idx : {0u, 9u, 19u}) {
    Tensor wp = w;
    wp[idx] += eps;
    Tensor wm = w;
    wm[idx] -= eps;
    EXPECT_NEAR(dw[idx], (loss(x, wp, b) - loss(x, wm, b)) / (2 * eps), 2e-2);
  }
}

}  // namespace
}  // namespace lcda::tensor
