// The distributed study runner: shard planning, spec round trips, the
// subprocess helper, coordinator retries, and — the load-bearing contract —
// merged results byte-identical to single-process runs of the same study.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include <chrono>
#include <thread>

#include "lcda/core/report.h"
#include "lcda/core/stats_runner.h"
#include "lcda/dist/coordinator.h"
#include "lcda/dist/merge.h"
#include "lcda/dist/progress.h"
#include "lcda/dist/protocol.h"
#include "lcda/dist/shard.h"
#include "lcda/util/subprocess.h"

namespace {

using namespace lcda;

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("lcda_dist_test_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// A small but non-trivial study: two strategies' worth of signal is not
/// needed, one strategy over several seeds is the sharding axis.
core::Scenario small_scenario() {
  core::Scenario s = core::scenario_by_name("paper-energy");
  s.config.lcda_episodes = 6;
  s.config.nacim_episodes = 16;
  return s;
}

/// The lcda_run binary next to this test binary (both live in the build
/// root); empty when it is not there, so end-to-end tests skip instead of
/// failing in exotic build layouts.
std::string lcda_run_path() {
  const std::string self = util::self_executable_path(nullptr);
  if (self.empty()) return "";
  const std::filesystem::path candidate =
      std::filesystem::path(self).parent_path() / "lcda_run";
  std::error_code ec;
  return std::filesystem::exists(candidate, ec) ? candidate.string() : "";
}

/// Scoped setenv for the worker-injection variables: set for the tests
/// that spawn injected workers, guaranteed unset afterwards so later
/// tests' workers run clean.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

/// Runs every shard in-process (run_shard — the exact worker body) and
/// returns the manifests after a JSON dump/parse round trip, exactly the
/// path bytes take through a real worker's result file.
std::vector<util::Json> run_shards_in_process(
    const std::vector<dist::ShardSpec>& specs) {
  std::vector<util::Json> manifests;
  for (const dist::ShardSpec& spec : specs) {
    manifests.push_back(util::Json::parse(dist::run_shard(spec).dump(1)));
  }
  return manifests;
}

// ----------------------------------------------------------- subprocess

TEST(Subprocess, CapturesExitStatusAndStderr) {
  const auto result =
      util::Subprocess::run({"/bin/sh", "-c", "echo boom >&2; exit 3"});
  EXPECT_EQ(result.exit_code, 3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.stderr_output, "boom\n");
  EXPECT_EQ(result.describe(), "exit 3");
}

TEST(Subprocess, SuccessAndMissingProgram) {
  EXPECT_TRUE(util::Subprocess::run({"/bin/true"}).ok());
  // exec failure surfaces as the shell's 127, with a message.
  const auto result =
      util::Subprocess::run({"/definitely/not/a/program-xyz"});
  EXPECT_EQ(result.exit_code, 127);
  EXPECT_NE(result.stderr_output.find("exec failed"), std::string::npos);
}

TEST(Subprocess, SignalDeathIsReported) {
  const auto result =
      util::Subprocess::run({"/bin/sh", "-c", "kill -KILL $$"});
  EXPECT_EQ(result.exit_code, -1);
  EXPECT_EQ(result.term_signal, 9);
  EXPECT_EQ(result.describe(), "signal 9");
}

/// Polls `condition` with short sleeps until it holds or ~10s elapse.
template <typename F>
bool eventually(F condition) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return condition();
}

TEST(Subprocess, PipedStdinStdoutRoundTrip) {
  util::Subprocess::Options popts;
  popts.pipe_stdin = true;
  popts.pipe_stdout = true;
  util::Subprocess cat({"/bin/cat"}, popts);
  EXPECT_TRUE(cat.write_stdin("hello pipe\n"));
  std::string got;
  EXPECT_TRUE(eventually([&] {
    got += cat.read_stdout();
    return got == "hello pipe\n";
  })) << "got: " << got;
  // EOF on stdin ends cat; the exit is visible to the non-blocking poll.
  cat.close_stdin();
  std::optional<util::Subprocess::Result> result;
  EXPECT_TRUE(eventually([&] {
    result = cat.try_wait();
    return result.has_value();
  }));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
}

TEST(Subprocess, WriteToDeadReaderReturnsFalseNotSignal) {
  util::Subprocess::Options popts;
  popts.pipe_stdin = true;
  util::Subprocess child({"/bin/true"}, popts);  // never reads stdin
  // Once the child is gone the pipe breaks; the write must surface that
  // as `false` (SIGPIPE is ignored), not kill the test process.
  EXPECT_TRUE(eventually([&] { return !child.write_stdin("x"); }));
  EXPECT_FALSE(child.write_stdin("y"));  // stays broken
  std::optional<util::Subprocess::Result> result;
  EXPECT_TRUE(eventually([&] {
    result = child.try_wait();
    return result.has_value();
  }));
}

// ------------------------------------------------- worker pipe protocol

TEST(Protocol, CommandAndReplyRoundTrip) {
  dist::WorkerCommand run;
  run.kind = dist::WorkerCommand::Kind::kRun;
  run.spec_path = "/tmp/spec with spaces.json";
  const std::string line = dist::encode_worker_command(run);
  EXPECT_EQ(line.back(), '\n');
  const auto back = dist::parse_worker_command(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, dist::WorkerCommand::Kind::kRun);
  EXPECT_EQ(back->spec_path, run.spec_path);

  for (const auto kind : {dist::WorkerCommand::Kind::kPing,
                          dist::WorkerCommand::Kind::kShutdown}) {
    dist::WorkerCommand cmd;
    cmd.kind = kind;
    const auto parsed = dist::parse_worker_command(dist::encode_worker_command(cmd));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, kind);
  }

  dist::WorkerReply done;
  done.kind = dist::WorkerReply::Kind::kDone;
  done.manifest_path = "/tmp/manifest.json";
  const auto done_back = dist::parse_worker_reply(dist::encode_worker_reply(done));
  ASSERT_TRUE(done_back.has_value());
  EXPECT_EQ(done_back->kind, dist::WorkerReply::Kind::kDone);
  EXPECT_EQ(done_back->manifest_path, done.manifest_path);

  dist::WorkerReply failed;
  failed.kind = dist::WorkerReply::Kind::kFailed;
  failed.reason = "store exploded: \"quote\"";
  const auto failed_back =
      dist::parse_worker_reply(dist::encode_worker_reply(failed));
  ASSERT_TRUE(failed_back.has_value());
  EXPECT_EQ(failed_back->kind, dist::WorkerReply::Kind::kFailed);
  EXPECT_EQ(failed_back->reason, failed.reason);

  dist::WorkerReply pong;
  pong.kind = dist::WorkerReply::Kind::kPong;
  const auto pong_back = dist::parse_worker_reply(dist::encode_worker_reply(pong));
  ASSERT_TRUE(pong_back.has_value());
  EXPECT_EQ(pong_back->kind, dist::WorkerReply::Kind::kPong);
}

TEST(Protocol, MalformedLinesParseToNullopt) {
  EXPECT_FALSE(dist::parse_worker_command("").has_value());
  EXPECT_FALSE(dist::parse_worker_command("not json\n").has_value());
  EXPECT_FALSE(dist::parse_worker_command("[1,2,3]\n").has_value());
  EXPECT_FALSE(dist::parse_worker_command("{\"cmd\":\"run\"}\n").has_value());
  EXPECT_FALSE(
      dist::parse_worker_command(
          "{\"format\":\"other-v1\",\"cmd\":\"ping\"}\n")
          .has_value());
  // `run` without a spec_path is incomplete, not a default-empty run.
  EXPECT_FALSE(
      dist::parse_worker_command(
          "{\"format\":\"lcda-worker-cmd-v1\",\"cmd\":\"run\"}\n")
          .has_value());
  EXPECT_FALSE(dist::parse_worker_reply("{\"reply\":\"done\"}\n").has_value());
  // `done` without its manifest path is torn, not an empty success.
  EXPECT_FALSE(
      dist::parse_worker_reply(
          "{\"format\":\"lcda-worker-cmd-v1\",\"reply\":\"done\"}\n")
          .has_value());
}

TEST(Protocol, LineBufferReassemblesTornLines) {
  dist::LineBuffer lines;
  lines.feed("first li");
  EXPECT_FALSE(lines.next_line().has_value());  // incomplete: keep waiting
  lines.feed("ne\nsecond\nthi");
  auto line = lines.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "first line");
  line = lines.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "second");
  EXPECT_FALSE(lines.next_line().has_value());
  EXPECT_EQ(lines.pending(), "thi");
  lines.feed("rd\n");
  line = lines.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "third");
  EXPECT_TRUE(lines.pending().empty());
}

TEST(Protocol, WorkerLoopAnswersPingAndDrainsOnShutdown) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }
  util::Subprocess::Options popts;
  popts.pipe_stdin = true;
  popts.pipe_stdout = true;
  util::Subprocess worker({runner, "--worker-loop"}, popts);

  dist::LineBuffer lines;
  const auto next_reply = [&]() -> std::optional<dist::WorkerReply> {
    std::optional<std::string> line;
    if (!eventually([&] {
          lines.feed(worker.read_stdout());
          line = lines.next_line();
          return line.has_value();
        })) {
      return std::nullopt;
    }
    return dist::parse_worker_reply(*line);
  };

  // A command torn across two writes still parses once the newline lands.
  dist::WorkerCommand ping;
  ping.kind = dist::WorkerCommand::Kind::kPing;
  const std::string ping_line = dist::encode_worker_command(ping);
  ASSERT_TRUE(worker.write_stdin(ping_line.substr(0, 5)));
  ASSERT_TRUE(worker.write_stdin(ping_line.substr(5)));
  auto reply = next_reply();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->kind, dist::WorkerReply::Kind::kPong);

  // Garbage does not kill the loop; it reports and keeps serving.
  ASSERT_TRUE(worker.write_stdin("definitely not json\n"));
  reply = next_reply();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->kind, dist::WorkerReply::Kind::kFailed);

  // `shutdown` drains the loop: clean exit 0, no kill needed.
  dist::WorkerCommand shutdown;
  shutdown.kind = dist::WorkerCommand::Kind::kShutdown;
  ASSERT_TRUE(worker.write_stdin(dist::encode_worker_command(shutdown)));
  std::optional<util::Subprocess::Result> result;
  EXPECT_TRUE(eventually([&] {
    result = worker.try_wait();
    return result.has_value();
  }));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << result->describe();
}

// ------------------------------------------------------- specs and plans

TEST(ShardSpec, RoundTripsThroughJson) {
  dist::ShardSpec spec;
  spec.index = 2;
  spec.count = 4;
  spec.mode = dist::ShardMode::kAggregate;
  spec.scenario = small_scenario();
  spec.strategy = core::Strategy::kNacimRl;
  spec.episodes = 16;
  spec.total_seeds = 8;
  spec.seeds = {4, 5};
  spec.threshold = 0.25;
  spec.threshold_fraction = 0.9;
  spec.result_path = "/tmp/r.json";
  spec.fail_first_attempt = true;
  spec.attempt = 1;

  const dist::ShardSpec back =
      dist::shard_spec_from_json(dist::shard_spec_to_json(spec));
  EXPECT_EQ(back.index, spec.index);
  EXPECT_EQ(back.count, spec.count);
  EXPECT_EQ(back.mode, spec.mode);
  EXPECT_EQ(back.strategy, spec.strategy);
  EXPECT_EQ(back.episodes, spec.episodes);
  EXPECT_EQ(back.total_seeds, spec.total_seeds);
  EXPECT_EQ(back.seeds, spec.seeds);
  EXPECT_EQ(back.threshold, spec.threshold);
  EXPECT_EQ(back.threshold_fraction, spec.threshold_fraction);
  EXPECT_EQ(back.result_path, spec.result_path);
  EXPECT_EQ(back.fail_first_attempt, spec.fail_first_attempt);
  EXPECT_EQ(back.attempt, spec.attempt);
  EXPECT_EQ(dist::shard_spec_checksum(back), dist::shard_spec_checksum(spec));

  // A NaN threshold ("no threshold") round-trips through key absence.
  spec.threshold = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(
      dist::shard_spec_from_json(dist::shard_spec_to_json(spec)).threshold));
}

TEST(ShardSpec, TamperedSpecIsRejected) {
  dist::ShardSpec spec;
  spec.scenario = small_scenario();
  spec.seeds = {0};
  util::Json j = dist::shard_spec_to_json(spec);
  j["episodes"] = 999;  // body no longer matches the embedded checksum
  EXPECT_THROW((void)dist::shard_spec_from_json(j), std::invalid_argument);
  EXPECT_THROW((void)dist::shard_spec_from_json(util::Json::parse("{}")),
               std::invalid_argument);
}

TEST(ShardPlan, PartitionsSeedsExactlyOnce) {
  const core::Scenario scenario = small_scenario();
  const auto plan = dist::plan_shards(
      scenario, dist::ShardMode::kAggregate,
      {{core::Strategy::kLcda, 6}, {core::Strategy::kRandom, 16}},
      /*seeds=*/5, /*shards=*/3, /*threshold=*/NAN, 0.95);
  // Two strategies x min(3, 5) chunks each.
  ASSERT_EQ(plan.size(), 6u);
  for (const auto& spec : plan) EXPECT_EQ(spec.count, 6);
  std::vector<int> seen;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan[i].strategy, core::Strategy::kLcda);
    EXPECT_EQ(plan[i].episodes, 6);
    for (int s : plan[i].seeds) seen.push_back(s);
  }
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(plan[3].strategy, core::Strategy::kRandom);
  EXPECT_EQ(plan[3].episodes, 16);

  // Never more shards than seeds.
  const auto tight = dist::plan_shards(scenario, dist::ShardMode::kRuns,
                                       {{core::Strategy::kLcda, 6}},
                                       /*seeds=*/2, /*shards=*/8, NAN, 0.95);
  EXPECT_EQ(tight.size(), 2u);
}

// ------------------------------------------------- merge == single process

TEST(Merge, AggregateIsByteIdenticalToSingleProcess) {
  core::Scenario scenario = small_scenario();
  const int kSeeds = 5;
  const double kThreshold = 0.0;
  const core::AggregateResult reference =
      core::run_aggregate(core::Strategy::kLcda, scenario.config.lcda_episodes,
                          kSeeds, scenario.config, kThreshold);

  auto specs = dist::plan_shards(
      scenario, dist::ShardMode::kAggregate,
      {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, kSeeds,
      /*shards=*/2, kThreshold, 0.95);
  ASSERT_EQ(specs.size(), 2u);
  const core::AggregateResult merged =
      dist::merge_aggregate(specs, run_shards_in_process(specs));

  EXPECT_EQ(core::aggregate_to_json(merged).dump(2),
            core::aggregate_to_json(reference).dump(2));
}

TEST(Merge, AggregateWithoutThresholdMatchesToo) {
  core::Scenario scenario = small_scenario();
  const core::AggregateResult reference = core::run_aggregate(
      core::Strategy::kRandom, scenario.config.nacim_episodes, 4,
      scenario.config, NAN);
  auto specs = dist::plan_shards(
      scenario, dist::ShardMode::kAggregate,
      {{core::Strategy::kRandom, scenario.config.nacim_episodes}}, 4,
      /*shards=*/4, NAN, 0.95);
  const core::AggregateResult merged =
      dist::merge_aggregate(specs, run_shards_in_process(specs));
  EXPECT_EQ(core::aggregate_to_json(merged).dump(2),
            core::aggregate_to_json(reference).dump(2));
}

TEST(Merge, SpeedupIsByteIdenticalToSingleProcess) {
  core::Scenario scenario = small_scenario();
  const auto reference = core::speedup_study(scenario.config, 3, 0.95);
  auto specs = dist::plan_shards(scenario, dist::ShardMode::kSpeedup,
                                 {{core::Strategy::kLcda, 0}}, 3,
                                 /*shards=*/2, NAN, 0.95);
  const auto merged = dist::merge_speedup(specs, run_shards_in_process(specs));
  EXPECT_EQ(core::speedup_study_to_json(merged).dump(2),
            core::speedup_study_to_json(reference).dump(2));
}

TEST(Merge, RunsModeReassemblesTracesVerbatim) {
  core::Scenario scenario = small_scenario();
  // Reference: the CLI's plain path — seed offsets, labels, CSV.
  std::string reference_csv;
  std::string reference_runs_json;
  {
    util::Json arr = util::Json::array();
    std::ostringstream csv;
    for (int s = 0; s < 3; ++s) {
      core::ExperimentConfig cfg = scenario.config;
      cfg.seed = scenario.config.seed + static_cast<std::uint64_t>(s);
      const core::RunResult run = core::run_strategy(
          core::Strategy::kLcda, scenario.config.lcda_episodes, cfg);
      const std::string label = "LCDA/seed" + std::to_string(cfg.seed);
      core::write_run_csv(csv, run, label);
      arr.push_back(core::run_to_json(run, label));
    }
    reference_csv = csv.str();
    reference_runs_json = arr.dump(2);
  }

  auto specs = dist::plan_shards(
      scenario, dist::ShardMode::kRuns,
      {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, 3,
      /*shards=*/3, NAN, 0.95);
  const auto merged = dist::merge_runs(specs, run_shards_in_process(specs));
  ASSERT_EQ(merged.size(), 3u);
  std::string csv;
  util::Json arr = util::Json::array();
  for (const dist::MergedRun& run : merged) {
    csv += run.csv;
    arr.push_back(run.run_json);
  }
  EXPECT_EQ(csv, reference_csv);
  EXPECT_EQ(arr.dump(2), reference_runs_json);
}

TEST(Merge, IncompleteOrForeignManifestsAreRejected) {
  core::Scenario scenario = small_scenario();
  auto specs = dist::plan_shards(
      scenario, dist::ShardMode::kAggregate,
      {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, 4,
      /*shards=*/2, NAN, 0.95);
  auto manifests = run_shards_in_process(specs);

  // A lost shard: merging one manifest over a 4-seed study must throw.
  EXPECT_THROW((void)dist::merge_aggregate({specs[0]}, {manifests[0]}),
               std::runtime_error);
  // A duplicated shard: the same seeds twice must throw, not double-count.
  EXPECT_THROW(
      (void)dist::merge_aggregate({specs[0], specs[0]},
                                  {manifests[0], manifests[0]}),
      std::runtime_error);
}

// ------------------------------------------- end-to-end worker processes

TEST(Distributed, WorkersAndRetriesConvergeToReferenceBytes) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }

  // 2 workers x parallelism 2, shared persistent-cache directory — the
  // distributed acceptance configuration.
  core::Scenario scenario = small_scenario();
  scenario.config.parallelism = 2;
  scenario.config.persistent_cache_dir = temp_dir("shared_cache_ref");
  const int kSeeds = 4;
  const core::AggregateResult reference =
      core::run_aggregate(core::Strategy::kLcda, scenario.config.lcda_episodes,
                          kSeeds, scenario.config, NAN);

  // Fresh shared cache dir for the distributed run so both start cold and
  // the cache counters can match exactly.
  scenario.config.persistent_cache_dir = temp_dir("shared_cache_dist");
  auto specs = dist::plan_shards(
      scenario, dist::ShardMode::kAggregate,
      {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, kSeeds,
      /*shards=*/2, NAN, 0.95);
  ASSERT_EQ(specs.size(), 2u);
  // Crash injection: shard 0's first attempt aborts at entry; the
  // coordinator must retry it and the merged bytes must not change.
  specs[0].fail_first_attempt = true;

  dist::Coordinator::Options opts;
  opts.worker_command = {runner};
  opts.shard_dir = temp_dir("coord");
  opts.max_parallel = 2;
  opts.max_retries = 1;
  opts.verbose = false;
  // This test asserts the exact plan shape afterwards; stealing is free to
  // append/erase specs, so pin it off (it has its own tests below).
  opts.enable_steal = false;
  dist::Coordinator(opts).run(specs);
  EXPECT_EQ(specs[0].attempt, 1);  // the injected failure was retried
  EXPECT_EQ(specs[1].attempt, 0);

  std::vector<util::Json> manifests;
  for (const auto& spec : specs) {
    manifests.push_back(dist::load_shard_manifest(spec));
  }
  const core::AggregateResult merged =
      dist::merge_aggregate(specs, manifests);
  EXPECT_EQ(core::aggregate_to_json(merged).dump(2),
            core::aggregate_to_json(reference).dump(2));
  EXPECT_EQ(merged.persistent_hits, reference.persistent_hits);
}

// --------------------------------------------- progress sidecar protocol

TEST(Progress, RoundTripsRecordsAndToleratesTornTail) {
  const std::string dir = temp_dir("progress");
  const std::string path = dir + "/p.jsonl";
  {
    dist::ProgressWriter w(path);
    w.begin(0);
    w.seed_started(3);
    w.seed_done(3, 12.5);
    w.seed_started(4);
  }
  dist::ProgressSnapshot snap = dist::read_progress(path);
  EXPECT_EQ(snap.started, (std::set<int>{3, 4}));
  EXPECT_EQ(snap.done, (std::set<int>{3}));
  EXPECT_TRUE(snap.started_not_done(4));
  EXPECT_DOUBLE_EQ(snap.done_wall_ms, 12.5);

  // A torn final line (the worker died mid-append) is ignored; every
  // record before it still counts.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"e\":\"done\",\"se";
  }
  snap = dist::read_progress(path);
  EXPECT_EQ(snap.done, (std::set<int>{3}));
  EXPECT_EQ(snap.started, (std::set<int>{3, 4}));

  // A worker that has not started yet has no file — an empty snapshot,
  // not an error.
  EXPECT_EQ(dist::read_progress(dir + "/absent.jsonl").records, 0);

  // Revocations: atomic write, exact read-back, absent file = no steals.
  const std::string revoke = dir + "/revoke.json";
  dist::write_revocations(revoke, {1, 5});
  EXPECT_EQ(dist::read_revocations(revoke), (std::set<int>{1, 5}));
  EXPECT_TRUE(dist::read_revocations(dir + "/none.json").empty());
}

// ----------------------------------------- stealing and dead workers

TEST(Distributed, StragglerStealingKeepsBytesIdentical) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }

  // Reference: the CLI's plain per-seed path, same loop as the runs-mode
  // merge test above.
  core::Scenario scenario = small_scenario();
  const int kSeeds = 6;
  std::string reference_csv;
  std::string reference_runs_json;
  {
    util::Json arr = util::Json::array();
    std::ostringstream csv;
    for (int s = 0; s < kSeeds; ++s) {
      core::ExperimentConfig cfg = scenario.config;
      cfg.seed = scenario.config.seed + static_cast<std::uint64_t>(s);
      const core::RunResult run = core::run_strategy(
          core::Strategy::kLcda, scenario.config.lcda_episodes, cfg);
      const std::string label = "LCDA/seed" + std::to_string(cfg.seed);
      core::write_run_csv(csv, run, label);
      arr.push_back(core::run_to_json(run, label));
    }
    reference_csv = csv.str();
    reference_runs_json = arr.dump(2);
  }

  // Inject a straggler: shard 0 owns seeds {0,1} (6 seeds over 4 chunks)
  // and sleeps 400ms before each, while its peers finish in milliseconds.
  // The coordinator must steal/duplicate its pending work — and the
  // merged bytes must not move.
  auto specs = dist::plan_shards(
      scenario, dist::ShardMode::kRuns,
      {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, kSeeds,
      /*shards=*/4, NAN, 0.95);
  const ScopedEnv sleep_fault("LCDA_FAULT", "sleep=400@seed:0,1");

  dist::Coordinator::Options opts;
  opts.worker_command = {runner};
  opts.shard_dir = temp_dir("steal");
  opts.max_parallel = 4;
  opts.max_retries = 0;
  opts.verbose = false;
  opts.steal_threshold = 1.5;
  dist::Coordinator coordinator(opts);
  coordinator.run(specs);
  EXPECT_GE(coordinator.stats().steals, 1);
  EXPECT_GE(coordinator.stats().stolen_seeds, 1);

  std::vector<util::Json> manifests;
  for (const auto& spec : specs) {
    manifests.push_back(dist::load_shard_manifest(spec));
  }
  const std::vector<dist::MergedRun> merged =
      dist::merge_runs(specs, manifests);
  ASSERT_EQ(merged.size(), static_cast<std::size_t>(kSeeds));
  std::string csv;
  util::Json arr = util::Json::array();
  for (const dist::MergedRun& run : merged) {
    csv += run.csv;
    arr.push_back(run.run_json);
  }
  EXPECT_EQ(csv, reference_csv);
  EXPECT_EQ(arr.dump(2), reference_runs_json);
}

TEST(Distributed, DeadWorkerIsReapedThroughHeartbeatTimeout) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }

  core::Scenario scenario = small_scenario();
  const int kSeeds = 4;
  const core::AggregateResult reference =
      core::run_aggregate(core::Strategy::kLcda, scenario.config.lcda_episodes,
                          kSeeds, scenario.config, NAN);

  auto specs = dist::plan_shards(
      scenario, dist::ShardMode::kAggregate,
      {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, kSeeds,
      /*shards=*/2, NAN, 0.95);
  // Shard 1 owns seeds {2,3}; its attempt 0 stops heartbeating and hangs
  // at seed 2 — a live process doing nothing, invisible to try_wait().
  // Only the staleness reaper can recover it.
  const ScopedEnv wedge("LCDA_FAULT", "wedge@seed:2");

  dist::Coordinator::Options opts;
  opts.worker_command = {runner};
  opts.shard_dir = temp_dir("wedge");
  opts.max_parallel = 2;
  opts.max_retries = 1;
  opts.verbose = false;
  opts.enable_steal = false;  // isolate the heartbeat path
  opts.heartbeat_ms = 50;
  opts.heartbeat_timeout_ms = 1000;
  dist::Coordinator coordinator(opts);
  coordinator.run(specs);
  EXPECT_EQ(coordinator.stats().dead_workers, 1);
  EXPECT_EQ(coordinator.stats().retries, 1);

  std::vector<util::Json> manifests;
  for (const auto& spec : specs) {
    manifests.push_back(dist::load_shard_manifest(spec));
  }
  const core::AggregateResult merged = dist::merge_aggregate(specs, manifests);
  EXPECT_EQ(core::aggregate_to_json(merged).dump(2),
            core::aggregate_to_json(reference).dump(2));
}

// --------------------------------------------- persistent worker pool

/// Drives `specs` through a coordinator (pooled or spawn-per-attempt) and
/// returns the executed plan with its loaded manifests.
std::pair<std::vector<dist::ShardSpec>, std::vector<util::Json>>
run_through_coordinator(const std::string& runner,
                        std::vector<dist::ShardSpec> specs, bool pool,
                        const char* tag,
                        dist::Coordinator::Stats* stats = nullptr) {
  dist::Coordinator::Options opts;
  opts.worker_command = {runner};
  opts.shard_dir = temp_dir(tag);
  opts.max_parallel = 2;
  opts.max_retries = 0;
  opts.verbose = false;
  opts.enable_steal = false;
  opts.use_worker_pool = pool;
  dist::Coordinator coordinator(opts);
  coordinator.run(specs);
  if (pool) {
    EXPECT_GE(coordinator.stats().pool_workers, 1);
  } else {
    EXPECT_EQ(coordinator.stats().pool_workers, 0);
  }
  if (stats != nullptr) *stats = coordinator.stats();
  std::vector<util::Json> manifests;
  for (const dist::ShardSpec& spec : specs) {
    manifests.push_back(dist::load_shard_manifest(spec));
  }
  return {std::move(specs), std::move(manifests)};
}

TEST(Distributed, PooledMatchesNoPoolAndInProcessInAllModes) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }
  const core::Scenario scenario = small_scenario();

  // Aggregate mode: merged bytes must agree three ways — in-process
  // shards (the merge contract's reference), the resident pool, and
  // spawn-per-attempt.
  {
    auto specs = dist::plan_shards(
        scenario, dist::ShardMode::kAggregate,
        {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, /*seeds=*/4,
        /*shards=*/2, NAN, 0.95);
    const std::string reference =
        core::aggregate_to_json(
            dist::merge_aggregate(specs, run_shards_in_process(specs)))
            .dump(2);
    const auto [pool_specs, pool_manifests] =
        run_through_coordinator(runner, specs, /*pool=*/true, "pool_agg");
    EXPECT_EQ(core::aggregate_to_json(
                  dist::merge_aggregate(pool_specs, pool_manifests))
                  .dump(2),
              reference);
    const auto [spawn_specs, spawn_manifests] =
        run_through_coordinator(runner, specs, /*pool=*/false, "nopool_agg");
    EXPECT_EQ(core::aggregate_to_json(
                  dist::merge_aggregate(spawn_specs, spawn_manifests))
                  .dump(2),
              reference);
  }

  // Speedup mode.
  {
    auto specs = dist::plan_shards(scenario, dist::ShardMode::kSpeedup,
                                   {{core::Strategy::kLcda, 0}}, /*seeds=*/2,
                                   /*shards=*/2, NAN, 0.95);
    const std::string reference =
        core::speedup_study_to_json(
            dist::merge_speedup(specs, run_shards_in_process(specs)))
            .dump(2);
    const auto [pool_specs, pool_manifests] =
        run_through_coordinator(runner, specs, /*pool=*/true, "pool_speedup");
    EXPECT_EQ(core::speedup_study_to_json(
                  dist::merge_speedup(pool_specs, pool_manifests))
                  .dump(2),
              reference);
    const auto [spawn_specs, spawn_manifests] = run_through_coordinator(
        runner, specs, /*pool=*/false, "nopool_speedup");
    EXPECT_EQ(core::speedup_study_to_json(
                  dist::merge_speedup(spawn_specs, spawn_manifests))
                  .dump(2),
              reference);
  }

  // Runs mode (CSV text and run JSON verbatim). The pooled run hands both
  // shards to the same two resident workers, so this also pins that a
  // worker's second spec is byte-identical to a fresh process's first —
  // the warm-reuse contract.
  {
    auto specs = dist::plan_shards(
        scenario, dist::ShardMode::kRuns,
        {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, /*seeds=*/4,
        /*shards=*/4, NAN, 0.95);
    const auto render = [](const std::vector<dist::ShardSpec>& s,
                           const std::vector<util::Json>& m) {
      std::string csv;
      util::Json arr = util::Json::array();
      for (const dist::MergedRun& run : dist::merge_runs(s, m)) {
        csv += run.csv;
        arr.push_back(run.run_json);
      }
      return csv + "\n---\n" + arr.dump(2);
    };
    const std::string reference = render(specs, run_shards_in_process(specs));
    const auto [pool_specs, pool_manifests] =
        run_through_coordinator(runner, specs, /*pool=*/true, "pool_runs");
    EXPECT_EQ(render(pool_specs, pool_manifests), reference);
    const auto [spawn_specs, spawn_manifests] =
        run_through_coordinator(runner, specs, /*pool=*/false, "nopool_runs");
    EXPECT_EQ(render(spawn_specs, spawn_manifests), reference);
  }
}

TEST(Distributed, PoolWorkerKilledMidSpecIsRespawnedAndRetried) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }
  core::Scenario scenario = small_scenario();
  const int kSeeds = 4;
  const core::AggregateResult reference =
      core::run_aggregate(core::Strategy::kLcda, scenario.config.lcda_episodes,
                          kSeeds, scenario.config, NAN);

  auto specs = dist::plan_shards(
      scenario, dist::ShardMode::kAggregate,
      {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, kSeeds,
      /*shards=*/2, NAN, 0.95);
  // Shard 1 owns seeds {2,3}; the resident worker _exit()s mid-spec at
  // seed 2 on attempt 0 — the process dies with the spec in flight, which
  // is exactly the pool's crash-recovery path (no manifest, no reply).
  const ScopedEnv die("LCDA_FAULT", "kill@seed:2");

  dist::Coordinator::Options opts;
  opts.worker_command = {runner};
  opts.shard_dir = temp_dir("pool_die");
  opts.max_parallel = 1;  // one resident worker serves both shards
  opts.max_retries = 1;
  opts.verbose = false;
  opts.enable_steal = false;
  dist::Coordinator coordinator(opts);
  coordinator.run(specs);
  EXPECT_EQ(coordinator.stats().retries, 1);
  // The first resident worker died with the spec; its replacement ran the
  // retry. Launches: the original plus exactly one respawn.
  EXPECT_EQ(coordinator.stats().pool_workers, 2);

  std::vector<util::Json> manifests;
  for (const auto& spec : specs) {
    manifests.push_back(dist::load_shard_manifest(spec));
  }
  const core::AggregateResult merged = dist::merge_aggregate(specs, manifests);
  EXPECT_EQ(core::aggregate_to_json(merged).dump(2),
            core::aggregate_to_json(reference).dump(2));
}

TEST(Distributed, KilledWorkerResumesFromCheckpointByteIdentically) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }

  // Reference: the plain per-seed path with checkpointing OFF — the killed
  // and checkpoint-resumed distributed study below must reproduce these
  // bytes exactly (trace-invariance covers the checkpoint machinery too).
  // Genetic rather than LCDA: the LLM strategies run uncheckpointed (their
  // state lives in the simulated client), and per-episode rounds
  // (batch_size=1) put a snapshot boundary before the kill episode.
  core::Scenario scenario = small_scenario();
  scenario.config.batch_size = 1;
  const int kSeeds = 4;
  std::string reference_csv;
  std::string reference_runs_json;
  {
    util::Json arr = util::Json::array();
    std::ostringstream csv;
    for (int s = 0; s < kSeeds; ++s) {
      core::ExperimentConfig cfg = scenario.config;
      cfg.seed = scenario.config.seed + static_cast<std::uint64_t>(s);
      const core::RunResult run = core::run_strategy(
          core::Strategy::kGenetic, scenario.config.lcda_episodes, cfg);
      const std::string label = "Genetic/seed" + std::to_string(cfg.seed);
      core::write_run_csv(csv, run, label);
      arr.push_back(core::run_to_json(run, label));
    }
    reference_csv = csv.str();
    reference_runs_json = arr.dump(2);
  }

  // The distributed copy of the study checkpoints every 2 of its 6
  // episodes. Every attempt-0 worker _Exit(42)s mid-run once its first
  // seed reaches episode 4 — after the episode-4 snapshot landed — so the
  // retry (attempt 1, faults disarmed) restores that seed from its
  // checkpoint instead of re-running it from scratch.
  core::Scenario ckpt_scenario = scenario;
  ckpt_scenario.config.checkpoint_dir = temp_dir("ckpt_resume_store");
  ckpt_scenario.config.checkpoint_every = 2;
  auto specs = dist::plan_shards(
      ckpt_scenario, dist::ShardMode::kRuns,
      {{core::Strategy::kGenetic, scenario.config.lcda_episodes}}, kSeeds,
      /*shards=*/2, NAN, 0.95);
  const ScopedEnv kill_fault("LCDA_FAULT", "kill@episode:4");

  dist::Coordinator::Options opts;
  opts.worker_command = {runner};
  opts.shard_dir = temp_dir("ckpt_resume");
  opts.max_parallel = 2;
  opts.max_retries = 1;
  opts.verbose = false;
  opts.enable_steal = false;
  dist::Coordinator coordinator(opts);
  coordinator.run(specs);
  EXPECT_GE(coordinator.stats().retries, 1);

  std::vector<util::Json> manifests;
  long long resumed = 0;
  for (const auto& spec : specs) {
    manifests.push_back(dist::load_shard_manifest(spec));
    if (manifests.back().contains("resumed_episodes")) {
      resumed += manifests.back().at("resumed_episodes").as_int();
    }
  }
  // At least one retried seed actually restored episodes from disk — the
  // byte match below must not be explained by a silent cold re-run.
  EXPECT_GE(resumed, 1);

  const std::vector<dist::MergedRun> merged =
      dist::merge_runs(specs, manifests);
  ASSERT_EQ(merged.size(), static_cast<std::size_t>(kSeeds));
  std::string csv;
  util::Json arr = util::Json::array();
  for (const dist::MergedRun& run : merged) {
    csv += run.csv;
    arr.push_back(run.run_json);
  }
  EXPECT_EQ(csv, reference_csv);
  EXPECT_EQ(arr.dump(2), reference_runs_json);
}

TEST(Distributed, ExhaustedRetriesFailLoudly) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }
  core::Scenario scenario = small_scenario();
  auto specs = dist::plan_shards(
      scenario, dist::ShardMode::kAggregate,
      {{core::Strategy::kLcda, scenario.config.lcda_episodes}}, 2,
      /*shards=*/1, NAN, 0.95);
  specs[0].fail_first_attempt = true;

  dist::Coordinator::Options opts;
  opts.worker_command = {runner};
  opts.shard_dir = temp_dir("coord_fail");
  opts.max_parallel = 1;
  opts.max_retries = 0;  // no second attempt: the injected crash is fatal
  opts.verbose = false;
  try {
    dist::Coordinator(opts).run(specs);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exit 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("injected failure"),
              std::string::npos);
  }
}

}  // namespace
