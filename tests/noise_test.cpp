#include <gtest/gtest.h>

#include <cmath>

#include "lcda/data/synthetic_cifar.h"
#include "lcda/nn/layers.h"
#include "lcda/nn/sequential.h"
#include "lcda/noise/monte_carlo.h"
#include "lcda/noise/variation.h"
#include "lcda/util/stats.h"

namespace lcda::noise {
namespace {

TEST(VariationModel, RejectsNegativeSigma) {
  EXPECT_THROW(VariationModel(-0.1), std::invalid_argument);
}

TEST(VariationModel, FromHardwareConfigMatchesDeviceMath) {
  cim::HardwareConfig hw;
  const VariationModel vm(hw);
  EXPECT_DOUBLE_EQ(vm.weight_sigma(),
                   cim::effective_weight_sigma(cim::device_model(hw.device),
                                               hw.bits_per_cell,
                                               hw.cells_per_weight()));
}

TEST(VariationModel, PerturbationHasExpectedScale) {
  const double sigma = 0.1;
  const VariationModel vm(sigma);
  std::vector<float> weights(20000, 0.5f);
  util::Rng rng(1);
  vm.perturb_span(weights, /*range=*/2.0f, rng);
  util::OnlineStats stats;
  for (float w : weights) stats.add(w - 0.5);
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), sigma * 2.0, 0.01);
}

TEST(VariationModel, ZeroSigmaIsNoOp) {
  const VariationModel vm(0.0);
  std::vector<float> weights(100, 1.0f);
  util::Rng rng(2);
  vm.perturb_span(weights, 1.0f, rng);
  for (float w : weights) ASSERT_EQ(w, 1.0f);
}

TEST(VariationModel, ZeroRangeIsNoOp) {
  const VariationModel vm(0.5);
  std::vector<float> weights(10, 0.0f);
  util::Rng rng(3);
  vm.perturb_span(weights, 0.0f, rng);
  for (float w : weights) ASSERT_EQ(w, 0.0f);
}

TEST(VariationModel, PerturbParamsScalesWithTensorRange) {
  // A tensor with larger weights gets proportionally larger noise (range is
  // per-tensor max|w| — per-tensor quantization scaling).
  nn::Param small, large;
  small.value = nn::Tensor({1000});
  small.value.fill(0.1f);
  small.grad = nn::Tensor({1000});
  large.value = nn::Tensor({1000});
  large.value.fill(10.0f);
  large.grad = nn::Tensor({1000});
  std::vector<nn::Param*> params = {&small, &large};

  const VariationModel vm(0.05);
  util::Rng rng(4);
  vm.perturb_params(params, rng);

  util::OnlineStats ds, dl;
  for (std::size_t i = 0; i < 1000; ++i) {
    ds.add(small.value[i] - 0.1f);
    dl.add(large.value[i] - 10.0f);
  }
  EXPECT_NEAR(dl.stddev() / ds.stddev(), 100.0, 20.0);
}

TEST(VariationModel, AsPerturberIsSelfContained) {
  const nn::WeightPerturber perturber = [] {
    const VariationModel vm(0.2);
    return vm.as_perturber();  // vm dies here; the copy must survive
  }();
  nn::Param p;
  p.value = nn::Tensor({100});
  p.value.fill(1.0f);
  p.grad = nn::Tensor({100});
  std::vector<nn::Param*> params = {&p};
  util::Rng rng(5);
  perturber(params, rng);
  double moved = 0.0;
  for (std::size_t i = 0; i < 100; ++i) moved += std::abs(p.value[i] - 1.0f);
  EXPECT_GT(moved, 0.0);
}

// ------------------------------------------------------------ MonteCarlo

TEST(MonteCarlo, StatisticsOfKnownDistribution) {
  util::Rng rng(6);
  const auto result = monte_carlo(
      [](util::Rng& r) { return r.normal(10.0, 2.0); }, 4000, rng);
  EXPECT_EQ(result.samples(), 4000u);
  EXPECT_NEAR(result.mean(), 10.0, 0.15);
  EXPECT_NEAR(result.stddev(), 2.0, 0.15);
  EXPECT_LT(result.worst(), result.best());
}

TEST(MonteCarlo, RejectsBadArguments) {
  util::Rng rng(7);
  EXPECT_THROW((void)monte_carlo(nullptr, 10, rng), std::invalid_argument);
  EXPECT_THROW((void)monte_carlo([](util::Rng&) { return 0.0; }, 0, rng),
               std::invalid_argument);
}

TEST(MonteCarlo, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    util::Rng rng(seed);
    return monte_carlo([](util::Rng& r) { return r.uniform(); }, 64, rng).mean();
  };
  EXPECT_DOUBLE_EQ(run(8), run(8));
  EXPECT_NE(run(8), run(9));
}

TEST(MonteCarlo, SampleCountDoesNotPerturbParentStream) {
  // Forked sample RNGs mean the parent's post-MC state depends only on the
  // number of forks, not on what samples did with their generators.
  util::Rng a(10), b(10);
  (void)monte_carlo([](util::Rng& r) { return r.uniform(); }, 16, a);
  (void)monte_carlo(
      [](util::Rng& r) {
        double acc = 0;
        for (int i = 0; i < 100; ++i) acc += r.uniform();
        return acc;
      },
      16, b);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(McNoisyAccuracy, RestoresWeightsAndDegradesAccuracy) {
  data::SyntheticCifarOptions dopts;
  dopts.image_size = 16;
  dopts.num_classes = 4;
  dopts.train_per_class = 10;
  dopts.test_per_class = 8;
  const auto data = data::make_synthetic_cifar(dopts);

  util::Rng rng(11);
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2d>(3, 8, 3, 16, 16, rng));
  net.add(std::make_unique<nn::ReLU>());
  net.add(std::make_unique<nn::Flatten>());
  net.add(std::make_unique<nn::Dense>(8 * 16 * 16, 4, rng));

  const nn::Tensor before = net.params()[0]->value;
  const double clean = nn::evaluate(net, data.test);

  const VariationModel heavy(0.5);
  const auto mc = mc_noisy_accuracy(net, data.test, heavy, 8, rng);
  EXPECT_EQ(mc.samples(), 8u);

  // Weights untouched afterwards.
  const nn::Tensor after = net.params()[0]->value;
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before[i], after[i]);
  }
  // Massive variation cannot help an evaluated network on average (allow
  // noise slack for the untrained net).
  EXPECT_LE(mc.mean(), clean + 0.15);
  EXPECT_GE(mc.worst(), 0.0);
  EXPECT_LE(mc.best(), 1.0);
}

}  // namespace
}  // namespace lcda::noise
