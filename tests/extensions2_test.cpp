// Tests for the second extension batch: quantization, BatchNorm2d, the NoC
// and pipeline models, simulated annealing, and the multi-seed stats runner.
#include <gtest/gtest.h>

#include <cmath>

#include "lcda/cim/cost_model.h"
#include "lcda/cim/noc.h"
#include "lcda/cim/pipeline.h"
#include "lcda/core/stats_runner.h"
#include "lcda/data/synthetic_cifar.h"
#include "lcda/nn/model_builder.h"
#include "lcda/nn/quantize.h"
#include "lcda/nn/trainer.h"
#include "lcda/search/annealing_optimizer.h"

namespace lcda {
namespace {

// ------------------------------------------------------------ Quantize

TEST(Quantize, RoundsToGrid) {
  std::vector<float> w = {0.0f, 0.1f, -1.0f, 0.97f, -0.52f};
  nn::QuantSpec spec;
  spec.bits = 4;  // levels = 7, scale = 1/7
  const float scale = nn::quantize_span(w, spec);
  EXPECT_NEAR(scale, 1.0f / 7.0f, 1e-6);
  for (float v : w) {
    const float steps = v / scale;
    EXPECT_NEAR(steps, std::round(steps), 1e-4) << v;
  }
  EXPECT_EQ(w[0], 0.0f);
  EXPECT_NEAR(w[2], -1.0f, 1e-6);  // extreme value is representable exactly
}

TEST(Quantize, ErrorBoundedByHalfLsb) {
  util::Rng rng(1);
  std::vector<float> w(4096);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-0.8, 0.8));
  std::vector<float> orig = w;
  nn::QuantSpec spec;
  spec.bits = 8;
  const float scale = nn::quantize_span(w, spec);
  const float bound = nn::max_quant_error(0.8f, spec) * 1.01f;
  (void)scale;
  for (std::size_t i = 0; i < w.size(); ++i) {
    ASSERT_LE(std::abs(w[i] - orig[i]), bound);
  }
}

TEST(Quantize, MseDropsWithBits) {
  util::Rng rng(2);
  std::vector<float> w(4096);
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, 0.3));
  const double mse4 = nn::quant_mse(w, {.bits = 4});
  const double mse8 = nn::quant_mse(w, {.bits = 8});
  EXPECT_GT(mse4, mse8 * 50.0);  // ~4^(8-4)=256x in theory
}

TEST(Quantize, AllZeroAndBadSpecs) {
  std::vector<float> zeros(8, 0.0f);
  EXPECT_EQ(nn::quantize_span(zeros, {.bits = 8}), 0.0f);
  std::vector<float> w = {1.0f};
  nn::QuantSpec bad;
  bad.bits = 1;
  EXPECT_THROW((void)nn::quantize_span(w, bad), std::invalid_argument);
  EXPECT_EQ(nn::max_quant_error(0.0f, {.bits = 8}), 0.0f);
}

TEST(Quantize, EightBitPreservesTrainedAccuracy) {
  // The deployment assumption: 8-bit weights should cost almost nothing.
  data::SyntheticCifarOptions dopts;
  dopts.image_size = 16;
  dopts.num_classes = 4;
  dopts.train_per_class = 12;
  dopts.test_per_class = 8;
  dopts.seed = 3;
  const auto data = data::make_synthetic_cifar(dopts);
  util::Rng rng(3);
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2d>(3, 8, 3, 16, 16, rng));
  net.add(std::make_unique<nn::ReLU>());
  net.add(std::make_unique<nn::Flatten>());
  net.add(std::make_unique<nn::Dense>(8 * 16 * 16, 4, rng));
  nn::TrainOptions topts;
  topts.epochs = 3;
  (void)nn::train(net, data.train, data.test, topts, rng);
  const double before = nn::evaluate(net, data.test);
  auto params = net.params();
  (void)nn::quantize_params(params, {.bits = 8});
  const double after = nn::evaluate(net, data.test);
  EXPECT_NEAR(after, before, 0.05);
}

// ----------------------------------------------------------- BatchNorm2d

TEST(BatchNorm, NormalizesTrainingBatches) {
  nn::BatchNorm2d bn(2);
  util::Rng rng(4);
  nn::Tensor x({8, 2, 4, 4});
  for (auto& v : x.data()) v = static_cast<float>(rng.normal(3.0, 2.0));
  const nn::Tensor& y = bn.forward(x);
  // Per channel: mean ~0, var ~1 (gamma=1, beta=0 initially).
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    int count = 0;
    for (int n = 0; n < 8; ++n) {
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          mean += y.at(n, c, i, j);
          ++count;
        }
      }
    }
    mean /= count;
    for (int n = 0; n < 8; ++n) {
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          var += (y.at(n, c, i, j) - mean) * (y.at(n, c, i, j) - mean);
        }
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  nn::BatchNorm2d bn(1);
  util::Rng rng(5);
  // Feed several training batches so running stats adapt.
  for (int step = 0; step < 30; ++step) {
    nn::Tensor x({4, 1, 2, 2});
    for (auto& v : x.data()) v = static_cast<float>(rng.normal(5.0, 1.0));
    (void)bn.forward(x);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0, 0.5);
  bn.set_training(false);
  // A constant input at the running mean must map to ~0.
  nn::Tensor probe({1, 1, 2, 2});
  probe.fill(bn.running_mean()[0]);
  const nn::Tensor& y = bn.forward(probe);
  EXPECT_NEAR(y[0], 0.0, 1e-3);
}

TEST(BatchNorm, GradientCheck) {
  nn::BatchNorm2d bn(2);
  util::Rng rng(6);
  nn::Tensor x({3, 2, 2, 2});
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform(-1, 1));
  nn::Tensor mask(x.shape());
  for (auto& v : mask.data()) v = static_cast<float>(rng.uniform(-1, 1));

  auto loss = [&](const nn::Tensor& in) {
    const nn::Tensor& y = bn.forward(in);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) s += y[i] * mask[i];
    return s;
  };
  (void)bn.forward(x);
  const nn::Tensor& dx = bn.backward(mask);
  const nn::Tensor dx_copy = dx;

  const float eps = 1e-3f;
  for (std::size_t idx : {0u, 5u, 13u, 23u}) {
    nn::Tensor xp = x;
    xp[idx] += eps;
    nn::Tensor xm = x;
    xm[idx] -= eps;
    const double num = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(dx_copy[idx], num, 5e-2) << "dx[" << idx << "]";
  }
}

TEST(BatchNorm, BackboneWithBatchNormTrains) {
  data::SyntheticCifarOptions dopts;
  dopts.image_size = 16;
  dopts.num_classes = 4;
  dopts.train_per_class = 12;
  dopts.test_per_class = 8;
  dopts.seed = 7;
  const auto data = data::make_synthetic_cifar(dopts);
  nn::BackboneOptions bopts;
  bopts.input_size = 16;
  bopts.num_classes = 4;
  bopts.hidden = 32;
  bopts.pool_after = {0, 2};
  bopts.batch_norm = true;
  util::Rng rng(7);
  nn::Sequential net =
      nn::build_backbone({{8, 3}, {8, 3}, {12, 3}, {12, 3}}, bopts, rng);
  nn::TrainOptions topts;
  topts.epochs = 4;
  topts.sgd.lr = 0.02;
  const auto tr = nn::train(net, data.train, data.test, topts, rng);
  EXPECT_GT(tr.final_test_accuracy, 0.5);
}

TEST(BatchNorm, RejectsBadConfig) {
  EXPECT_THROW(nn::BatchNorm2d(0), std::invalid_argument);
  EXPECT_THROW(nn::BatchNorm2d(4, 1.0), std::invalid_argument);
  nn::BatchNorm2d bn(2);
  nn::Tensor wrong({1, 3, 4, 4});
  EXPECT_THROW((void)bn.forward(wrong), std::invalid_argument);
}

// ------------------------------------------------------------------- NoC

TEST(Noc, HtreeDepth) {
  EXPECT_EQ(cim::htree_depth(1), 0);
  EXPECT_EQ(cim::htree_depth(2), 1);
  EXPECT_EQ(cim::htree_depth(8), 3);
  EXPECT_EQ(cim::htree_depth(9), 4);
  EXPECT_THROW((void)cim::htree_depth(0), std::invalid_argument);
}

TEST(Noc, CostScalesWithBytesAndTiles) {
  const cim::NocModel noc = cim::make_noc();
  const auto small = cim::noc_layer_cost(noc, 1024.0, 4);
  const auto more_bytes = cim::noc_layer_cost(noc, 4096.0, 4);
  const auto more_tiles = cim::noc_layer_cost(noc, 1024.0, 64);
  EXPECT_GT(more_bytes.energy_pj, small.energy_pj * 3.9);
  EXPECT_GT(more_tiles.hops, small.hops);
  EXPECT_GT(more_tiles.energy_pj, small.energy_pj);
  EXPECT_THROW((void)cim::noc_layer_cost(noc, -1.0, 4), std::invalid_argument);
}

TEST(Noc, ContributesToButDoesNotDominateChipEnergy) {
  const cim::CostEvaluator eval{cim::HardwareConfig{}};
  const auto rep = eval.evaluate({{32, 3}, {32, 3}, {64, 3}, {64, 3},
                                  {128, 3}, {128, 3}},
                                 nn::BackboneOptions{});
  EXPECT_GT(rep.energy_noc_pj, 0.0);
  EXPECT_LT(rep.energy_noc_pj, 0.2 * rep.energy_total_pj);
  EXPECT_GT(rep.area_noc_mm2, 0.0);
}

// -------------------------------------------------------------- Pipeline

TEST(Pipeline, BottleneckAndThroughput) {
  const cim::CostEvaluator eval{cim::HardwareConfig{}};
  const auto rep = eval.evaluate({{32, 3}, {32, 3}, {64, 3}, {64, 3},
                                  {128, 3}, {128, 3}},
                                 nn::BackboneOptions{});
  const cim::PipelineReport pr = cim::analyze_pipeline(rep);
  ASSERT_EQ(pr.stage_latency_ns.size(), rep.layers.size());
  EXPECT_DOUBLE_EQ(pr.frame_latency_ns, rep.latency_ns);
  EXPECT_GE(pr.bottleneck_layer, 0);
  // Pipelined throughput can never be worse than single-frame throughput.
  EXPECT_GE(pr.pipelined_fps(), pr.frame_fps());
  EXPECT_GE(pr.imbalance(), 1.0);
  // The bottleneck really is the max stage.
  for (double l : pr.stage_latency_ns) EXPECT_LE(l, pr.bottleneck_latency_ns);
}

TEST(Pipeline, RejectsEmptyReport) {
  cim::CostReport empty;
  EXPECT_THROW((void)cim::analyze_pipeline(empty), std::invalid_argument);
}

// ------------------------------------------------------------- Annealing

TEST(Annealing, ProposalsInSpaceAndCooling) {
  const search::SearchSpace space;
  search::AnnealingOptimizer sa(space);
  const double t0 = sa.temperature();
  util::Rng rng(8);
  for (int ep = 0; ep < 50; ++ep) {
    const search::Design d = sa.propose(rng);
    ASSERT_TRUE(space.contains(d));
    search::Observation obs;
    obs.design = d;
    obs.reward = 0.1;
    sa.feedback(obs);
  }
  EXPECT_LT(sa.temperature(), t0);
  EXPECT_TRUE(sa.has_state());
}

TEST(Annealing, ClimbsAPlantedHill) {
  const search::SearchSpace space;
  search::AnnealingOptimizer sa(space);
  util::Rng rng(9);
  double best = -1.0;
  for (int ep = 0; ep < 300; ++ep) {
    const search::Design d = sa.propose(rng);
    search::Observation obs;
    obs.design = d;
    obs.reward = d.rollout[0].channels / 128.0 + d.rollout[1].channels / 256.0;
    best = std::max(best, obs.reward);
    sa.feedback(obs);
  }
  EXPECT_GT(best, 1.2);  // max is 1.5; uniform-random expectation ~0.68
}

TEST(Annealing, RejectsBadOptions) {
  search::AnnealingOptimizer::Options bad;
  bad.cooling_rate = 1.5;
  EXPECT_THROW(search::AnnealingOptimizer(search::SearchSpace{}, bad),
               std::invalid_argument);
}

TEST(Annealing, WiredIntoExperiment) {
  EXPECT_EQ(core::strategy_name(core::Strategy::kAnnealing), "Annealing");
  core::ExperimentConfig cfg;
  EXPECT_EQ(core::make_optimizer(core::Strategy::kAnnealing, cfg)->name(),
            "Annealing");
  const core::RunResult run =
      core::run_strategy(core::Strategy::kAnnealing, 10, cfg);
  EXPECT_EQ(run.episodes.size(), 10u);
}

// ----------------------------------------------------------- StatsRunner

TEST(StatsRunner, AggregatesAcrossSeeds) {
  core::ExperimentConfig cfg;
  cfg.seed = 50;
  const auto agg = core::run_aggregate(core::Strategy::kRandom, 8, 3, cfg, 0.0);
  EXPECT_EQ(agg.seeds, 3);
  EXPECT_EQ(agg.running_best.size(), 8u);
  EXPECT_EQ(agg.final_best.count(), 3u);
  // Running best is monotone in expectation too.
  for (int e = 1; e < 8; ++e) {
    EXPECT_GE(agg.mean_running_best(e), agg.mean_running_best(e - 1) - 1e-12);
  }
  // Threshold 0.0 should be reached by random search on this space.
  EXPECT_GT(agg.reached, 0);
  EXPECT_THROW((void)core::run_aggregate(core::Strategy::kRandom, 0, 3, cfg, 0.0),
               std::invalid_argument);
}

TEST(StatsRunner, LcdaDominatesRandomOnAggregate) {
  core::ExperimentConfig cfg;
  cfg.seed = 51;
  const double nan = std::nan("");
  const auto lcda = core::run_aggregate(core::Strategy::kLcda, 10, 3, cfg, nan);
  const auto random = core::run_aggregate(core::Strategy::kRandom, 10, 3, cfg, nan);
  EXPECT_GT(lcda.final_best.mean(), random.final_best.mean());
}

TEST(StatsRunner, SpeedupStudyProducesPerSeedReports) {
  core::ExperimentConfig cfg;
  cfg.seed = 52;
  cfg.lcda_episodes = 8;
  cfg.nacim_episodes = 80;
  const auto reports = core::speedup_study(cfg, 3);
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& r : reports) {
    EXPECT_GT(r.lcda_best, -1.0);
    EXPECT_GT(r.nacim_best, -1.0);
  }
}

}  // namespace
}  // namespace lcda
