#include <gtest/gtest.h>

#include <cmath>

#include "lcda/cim/circuits.h"
#include "lcda/cim/config.h"
#include "lcda/cim/cost_model.h"
#include "lcda/cim/device.h"
#include "lcda/cim/mapper.h"

namespace lcda::cim {
namespace {

const std::vector<nn::ConvSpec> kVggRollout = {{32, 3}, {32, 3}, {64, 3},
                                               {64, 3}, {128, 3}, {128, 3}};

// ---------------------------------------------------------------- Device

TEST(Device, PresetsAreOrderedSensibly) {
  const DeviceModel rram = device_model(DeviceType::kRram);
  const DeviceModel fefet = device_model(DeviceType::kFefet);
  const DeviceModel sram = device_model(DeviceType::kSram);
  // FeFET programs tighter than RRAM; SRAM has no analog variation.
  EXPECT_LT(fefet.programming_sigma, rram.programming_sigma);
  EXPECT_EQ(sram.programming_sigma, 0.0);
  // SRAM cells are far larger and leak.
  EXPECT_GT(sram.cell_area_f2, rram.cell_area_f2 * 10);
  EXPECT_GT(sram.leakage_nw, 0.0);
  // FeFET writes are cheaper than RRAM writes.
  EXPECT_LT(fefet.write_energy_pj, rram.write_energy_pj);
}

TEST(Device, NamesRoundTrip) {
  EXPECT_EQ(device_name(DeviceType::kRram), "RRAM");
  EXPECT_EQ(device_name(DeviceType::kFefet), "FeFET");
  EXPECT_EQ(device_name(DeviceType::kSram), "SRAM");
}

TEST(EffectiveWeightSigma, MoreBitsPerCellIsNoisier) {
  const DeviceModel dev = device_model(DeviceType::kRram);
  const double s1 = effective_weight_sigma(dev, 1, 8);
  const double s2 = effective_weight_sigma(dev, 2, 4);
  const double s4 = effective_weight_sigma(dev, 4, 2);
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s4);
}

TEST(EffectiveWeightSigma, SramIsNoiseless) {
  const DeviceModel dev = device_model(DeviceType::kSram);
  EXPECT_EQ(effective_weight_sigma(dev, 1, 8), 0.0);
}

TEST(EffectiveWeightSigma, RejectsOverpackedCells) {
  const DeviceModel dev = device_model(DeviceType::kSram);  // max 1 bit
  EXPECT_THROW((void)effective_weight_sigma(dev, 2, 4), std::invalid_argument);
}

TEST(EffectiveWeightSigma, MsbDominates) {
  // Adding more (less significant) cells barely changes the composed sigma.
  const DeviceModel dev = device_model(DeviceType::kRram);
  const double few = effective_weight_sigma(dev, 2, 1);
  const double many = effective_weight_sigma(dev, 2, 8);
  EXPECT_LT(many / few, 1.05);
  EXPECT_GE(many, few);
}

// ---------------------------------------------------------------- Config

TEST(HardwareConfig, DefaultIsValid) {
  HardwareConfig hw;
  EXPECT_EQ(hw.validate(), "");
  EXPECT_EQ(hw.cells_per_weight(), 4);  // 8 bits / 2 per cell
}

struct InvalidCase {
  const char* what;
  HardwareConfig hw;
};

HardwareConfig broken(void (*mutate)(HardwareConfig&)) {
  HardwareConfig hw;
  mutate(hw);
  return hw;
}

class ConfigValidation : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(ConfigValidation, Rejects) {
  EXPECT_NE(GetParam().hw.validate(), "") << GetParam().what;
}

INSTANTIATE_TEST_SUITE_P(
    Invalid, ConfigValidation,
    ::testing::Values(
        InvalidCase{"bits>device", broken([](HardwareConfig& h) {
                      h.device = DeviceType::kSram;
                      h.bits_per_cell = 2;
                    })},
        InvalidCase{"zero bits", broken([](HardwareConfig& h) { h.bits_per_cell = 0; })},
        InvalidCase{"weight<cell", broken([](HardwareConfig& h) {
                      h.weight_bits = 1;
                      h.bits_per_cell = 2;
                    })},
        InvalidCase{"adc 0", broken([](HardwareConfig& h) { h.adc_bits = 0; })},
        InvalidCase{"xbar small", broken([](HardwareConfig& h) { h.xbar_size = 8; })},
        InvalidCase{"xbar not pow2",
                    broken([](HardwareConfig& h) { h.xbar_size = 100; })},
        InvalidCase{"mux>xbar", broken([](HardwareConfig& h) {
                      h.xbar_size = 64;
                      h.col_mux = 128;
                    })},
        InvalidCase{"neg budget",
                    broken([](HardwareConfig& h) { h.area_budget_mm2 = -1; })}));

TEST(HardwareConfig, DescribeMentionsEveryKnob) {
  HardwareConfig hw;
  const std::string s = hw.describe();
  EXPECT_NE(s.find("RRAM"), std::string::npos);
  EXPECT_NE(s.find("xbar128"), std::string::npos);
  EXPECT_NE(s.find("adc6"), std::string::npos);
}

// -------------------------------------------------------------- Circuits

TEST(Adc, CostsGrowWithResolution) {
  const AdcModel a4 = make_adc(4);
  const AdcModel a8 = make_adc(8);
  EXPECT_LT(a4.area_mm2, a8.area_mm2);
  EXPECT_LT(a4.energy_per_conversion_pj, a8.energy_per_conversion_pj);
  EXPECT_LT(a4.latency_per_conversion_ns, a8.latency_per_conversion_ns);
}

TEST(Adc, EightBitNearOnePicojoule) {
  // Calibration anchor: ~1 pJ/conversion at 8 bits (ISAAC operating point).
  const AdcModel a8 = make_adc(8);
  EXPECT_GT(a8.energy_per_conversion_pj, 0.5);
  EXPECT_LT(a8.energy_per_conversion_pj, 2.5);
}

TEST(Xbar, BiggerArraysSettleSlower) {
  const DeviceModel dev = device_model(DeviceType::kRram);
  EXPECT_LT(make_xbar(64, dev).read_settle_ns, make_xbar(256, dev).read_settle_ns);
  EXPECT_LT(make_xbar(64, dev).area_mm2, make_xbar(256, dev).area_mm2);
}

TEST(RequiredAdcBits, IsaacAnchor) {
  // 128 rows of 2-bit cells with bit-serial inputs -> 8-bit ADC (ISAAC).
  EXPECT_EQ(required_adc_bits(128, 2), 8);
  EXPECT_EQ(required_adc_bits(64, 2), 7);
  EXPECT_EQ(required_adc_bits(128, 1), 7);
  EXPECT_EQ(required_adc_bits(1, 2), 2);
}

TEST(CircuitLibrary, ArrayAreaDominatedByAdcs) {
  HardwareConfig hw;
  const CircuitLibrary lib = make_circuits(hw);
  const int n_adc = lib.adcs_per_array(hw.xbar_size, hw.col_mux);
  EXPECT_EQ(n_adc, 16);
  EXPECT_GT(lib.adc.area_mm2 * n_adc, lib.xbar.area_mm2);
}

TEST(CircuitLibrary, MoreMuxingFewerAdcsSmallerArea) {
  HardwareConfig hw8;
  hw8.col_mux = 8;
  HardwareConfig hw4 = hw8;
  hw4.col_mux = 4;
  const CircuitLibrary lib8 = make_circuits(hw8);
  const CircuitLibrary lib4 = make_circuits(hw4);
  EXPECT_LT(lib8.array_area_mm2(hw8), lib4.array_area_mm2(hw4));
  // ...but each read serializes more conversions.
  EXPECT_GT(lib8.array_read_latency_ns(hw8), lib4.array_read_latency_ns(hw4));
}

TEST(CircuitLibrary, RejectsInvalidConfig) {
  HardwareConfig hw;
  hw.adc_bits = 0;
  EXPECT_THROW((void)make_circuits(hw), std::invalid_argument);
}

// ---------------------------------------------------------------- Mapper

TEST(Mapper, TileMathIsExact) {
  HardwareConfig hw;  // xbar 128, 4 cells/weight
  const CircuitLibrary lib = make_circuits(hw);
  nn::BackboneOptions bb;
  const auto shapes = nn::backbone_shapes(kVggRollout, bb);
  const MappingResult mapping = map_network(shapes, hw, lib);
  ASSERT_EQ(mapping.layers.size(), shapes.size());

  // Layer 1 (conv2): rows = 3*3*32 = 288 -> 3 tiles of 128.
  const LayerMapping& conv2 = mapping.layers[1];
  EXPECT_EQ(conv2.rows_needed, 288);
  EXPECT_EQ(conv2.row_tiles, 3);
  // cols = 32 out channels * 4 cells = 128 -> 1 tile.
  EXPECT_EQ(conv2.cols_needed, 128);
  EXPECT_EQ(conv2.col_tiles, 1);
  EXPECT_NEAR(conv2.row_utilization, 288.0 / 384.0, 1e-12);
  EXPECT_DOUBLE_EQ(conv2.col_utilization, 1.0);

  // reads = 32*32 pixels * 8 input bits.
  EXPECT_EQ(conv2.reads_per_inference, 1024LL * 8);
}

TEST(Mapper, UtilizationNeverExceedsOne) {
  HardwareConfig hw;
  const CircuitLibrary lib = make_circuits(hw);
  nn::BackboneOptions bb;
  for (int xbar : {64, 128, 256}) {
    hw.xbar_size = xbar;
    const CircuitLibrary lib2 = make_circuits(hw);
    const auto mapping = map_network(nn::backbone_shapes(kVggRollout, bb), hw, lib2);
    for (const auto& lm : mapping.layers) {
      ASSERT_GT(lm.utilization(), 0.0);
      ASSERT_LE(lm.utilization(), 1.0);
      ASSERT_GE(lm.replication, 1);
    }
  }
}

TEST(Mapper, ReplicationRespectsAreaEnvelopeAndCap) {
  HardwareConfig hw;
  const CircuitLibrary lib = make_circuits(hw);
  nn::BackboneOptions bb;
  MapperOptions opts;
  opts.max_replication = 4;
  const auto mapping = map_network(nn::backbone_shapes(kVggRollout, bb), hw, lib, opts);
  for (const auto& lm : mapping.layers) {
    ASSERT_LE(lm.replication, 4);
  }
  const double array_area = lib.array_area_mm2(hw);
  EXPECT_LE(static_cast<double>(mapping.total_arrays) * array_area,
            hw.area_budget_mm2 * opts.replication_area_fraction + array_area);
}

TEST(Mapper, ReplicationTargetsBottleneckLayers) {
  // The pixel-heavy early conv layers should get at least as much
  // replication as the single-shot FC layers.
  HardwareConfig hw;
  const CircuitLibrary lib = make_circuits(hw);
  nn::BackboneOptions bb;
  const auto mapping = map_network(nn::backbone_shapes(kVggRollout, bb), hw, lib);
  const int conv1_rep = mapping.layers.front().replication;
  const int fc2_rep = mapping.layers.back().replication;
  EXPECT_GE(conv1_rep, fc2_rep);
  EXPECT_EQ(fc2_rep, 1) << "a 1-pixel FC layer cannot benefit from replication";
}

TEST(Mapper, SequentialReadsShrinkWithReplication) {
  LayerMapping lm;
  lm.reads_per_inference = 1000;
  lm.replication = 1;
  EXPECT_EQ(lm.sequential_reads(), 1000);
  lm.replication = 4;
  EXPECT_EQ(lm.sequential_reads(), 250);
  lm.replication = 3;
  EXPECT_EQ(lm.sequential_reads(), 334);  // ceil
}

// ------------------------------------------------- two-phase cost model

namespace {

/// Every scalar field of a CostReport must match bit for bit between the
/// detailed and the lean (span) evaluation paths — golden traces depend on
/// it.
void expect_scalars_identical(const CostReport& a, const CostReport& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.invalid_reason, b.invalid_reason);
  EXPECT_EQ(a.area_arrays_mm2, b.area_arrays_mm2);
  EXPECT_EQ(a.area_buffer_mm2, b.area_buffer_mm2);
  EXPECT_EQ(a.area_digital_mm2, b.area_digital_mm2);
  EXPECT_EQ(a.area_noc_mm2, b.area_noc_mm2);
  EXPECT_EQ(a.area_total_mm2, b.area_total_mm2);
  EXPECT_EQ(a.energy_adc_pj, b.energy_adc_pj);
  EXPECT_EQ(a.energy_xbar_pj, b.energy_xbar_pj);
  EXPECT_EQ(a.energy_dac_pj, b.energy_dac_pj);
  EXPECT_EQ(a.energy_digital_pj, b.energy_digital_pj);
  EXPECT_EQ(a.energy_buffer_pj, b.energy_buffer_pj);
  EXPECT_EQ(a.energy_noc_pj, b.energy_noc_pj);
  EXPECT_EQ(a.energy_total_pj, b.energy_total_pj);
  EXPECT_EQ(a.latency_ns, b.latency_ns);
  EXPECT_EQ(a.leakage_mw, b.leakage_mw);
  EXPECT_EQ(a.total_weights, b.total_weights);
  EXPECT_EQ(a.total_cells, b.total_cells);
  EXPECT_EQ(a.programming_energy_pj, b.programming_energy_pj);
  EXPECT_EQ(a.weight_sigma, b.weight_sigma);
  EXPECT_EQ(a.max_adc_deficit_bits, b.max_adc_deficit_bits);
}

}  // namespace

TEST(TwoPhaseCostModel, SpanPassMatchesDetailedEvaluationBitForBit) {
  nn::BackboneOptions bb;
  const auto shapes = nn::backbone_shapes(kVggRollout, bb);
  const LayerShapeSpan span = LayerShapeSpan::from(shapes);
  for (HardwareConfig hw :
       {HardwareConfig{}, isaac_reference(),
        HardwareConfig{.device = DeviceType::kFefet, .bits_per_cell = 1,
                       .adc_bits = 4, .xbar_size = 64, .col_mux = 4},
        HardwareConfig{.adc_bits = 8, .xbar_size = 256},
        // Tiny budget: the invalid path must match too.
        HardwareConfig{.area_budget_mm2 = 1.0}}) {
    SCOPED_TRACE(hw.describe());
    const CostEvaluator eval{hw};
    const CostReport detailed = eval.evaluate(shapes);
    CostReport lean;
    eval.evaluate_span(span, lean);
    expect_scalars_identical(detailed, lean);
    // Lean mode carries no per-layer detail; the detailed mode does.
    EXPECT_TRUE(lean.layers.empty());
    EXPECT_TRUE(lean.mapping.layers.empty());
    EXPECT_EQ(detailed.layers.size(), shapes.size());
  }
}

TEST(TwoPhaseCostModel, FusedMappingMatchesMapNetwork) {
  // The fused pass reimplements map_network's greedy balancing; the two
  // must never drift apart.
  nn::BackboneOptions bb;
  const auto shapes = nn::backbone_shapes(kVggRollout, bb);
  const HardwareConfig hw;
  const CostEvaluator eval{hw};
  const CostReport rep = eval.evaluate(shapes);
  const MappingResult direct =
      map_network(shapes, hw, eval.circuits(), CostModelOptions{}.mapper);
  ASSERT_EQ(rep.mapping.layers.size(), direct.layers.size());
  EXPECT_EQ(rep.mapping.total_arrays, direct.total_arrays);
  for (std::size_t i = 0; i < direct.layers.size(); ++i) {
    SCOPED_TRACE(i);
    const LayerMapping& a = rep.mapping.layers[i];
    const LayerMapping& b = direct.layers[i];
    EXPECT_EQ(a.rows_needed, b.rows_needed);
    EXPECT_EQ(a.cols_needed, b.cols_needed);
    EXPECT_EQ(a.row_tiles, b.row_tiles);
    EXPECT_EQ(a.col_tiles, b.col_tiles);
    EXPECT_EQ(a.replication, b.replication);
    EXPECT_EQ(a.is_fc, b.is_fc);
    EXPECT_EQ(a.row_utilization, b.row_utilization);
    EXPECT_EQ(a.col_utilization, b.col_utilization);
    EXPECT_EQ(a.reads_per_inference, b.reads_per_inference);
    EXPECT_EQ(a.rows_in_fullest_tile, b.rows_in_fullest_tile);
    EXPECT_EQ(a.adc_bits_required, b.adc_bits_required);
  }
}

TEST(TwoPhaseCostModel, ReusedReportIsResetCompletely) {
  nn::BackboneOptions bb;
  const CostEvaluator eval{HardwareConfig{}};
  const LayerShapeSpan big =
      LayerShapeSpan::from(nn::backbone_shapes(kVggRollout, bb));
  const std::vector<nn::ConvSpec> small_rollout = {{16, 1}, {16, 1}, {16, 1},
                                                   {16, 1}, {16, 1}, {16, 1}};
  const LayerShapeSpan small =
      LayerShapeSpan::from(nn::backbone_shapes(small_rollout, bb));

  CostReport reused;
  eval.evaluate_span(big, reused);
  eval.evaluate_span(small, reused);  // must not inherit anything
  CostReport fresh;
  eval.evaluate_span(small, fresh);
  expect_scalars_identical(fresh, reused);

  // An invalid report reused for a valid design must lose its reason.
  const CostEvaluator tight{HardwareConfig{.area_budget_mm2 = 1.0}};
  CostReport flip;
  tight.evaluate_span(big, flip);
  ASSERT_FALSE(flip.valid);
  ASSERT_FALSE(flip.invalid_reason.empty());
  eval.evaluate_span(big, flip);
  EXPECT_TRUE(flip.valid);
  EXPECT_TRUE(flip.invalid_reason.empty());
}

TEST(TwoPhaseCostModel, SpanFlatteningKeepsGeometry) {
  nn::BackboneOptions bb;
  const auto shapes = nn::backbone_shapes(kVggRollout, bb);
  const LayerShapeSpan span = LayerShapeSpan::from(shapes);
  ASSERT_EQ(span.size(), shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    EXPECT_EQ(span.rows[i], shapes[i].weight_rows());
    EXPECT_EQ(span.cols[i], shapes[i].weight_cols());
    EXPECT_EQ(span.fc[i] != 0, shapes[i].is_fc);
    const long long pixels =
        shapes[i].is_fc
            ? 1
            : static_cast<long long>(shapes[i].out_hw) * shapes[i].out_hw;
    EXPECT_EQ(span.pixels[i], pixels);
  }
}

// ------------------------------------------------------------ CostModel

TEST(CostModel, EnergyBreakdownSumsToTotal) {
  const CostEvaluator eval{HardwareConfig{}};
  const CostReport rep = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  EXPECT_NEAR(rep.energy_total_pj,
              rep.energy_adc_pj + rep.energy_xbar_pj + rep.energy_dac_pj +
                  rep.energy_digital_pj + rep.energy_buffer_pj +
                  rep.energy_noc_pj,
              rep.energy_total_pj * 1e-9);
  EXPECT_NEAR(rep.area_total_mm2,
              rep.area_arrays_mm2 + rep.area_buffer_mm2 + rep.area_digital_mm2 +
                  rep.area_noc_mm2,
              1e-9);
}

TEST(CostModel, AdcEnergyDominates) {
  // The defining property of CiM accelerators: ADCs are the energy hog.
  const CostEvaluator eval{HardwareConfig{}};
  const CostReport rep = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  EXPECT_GT(rep.energy_adc_pj, 0.4 * rep.energy_total_pj);
}

TEST(CostModel, WiderNetworksCostMoreEnergy) {
  const CostEvaluator eval{HardwareConfig{}};
  nn::BackboneOptions bb;
  const std::vector<nn::ConvSpec> narrow = {{16, 3}, {16, 3}, {16, 3},
                                            {16, 3}, {16, 3}, {16, 3}};
  const std::vector<nn::ConvSpec> wide = {{128, 3}, {128, 3}, {128, 3},
                                          {128, 3}, {128, 3}, {128, 3}};
  EXPECT_LT(eval.evaluate(narrow, bb).energy_total_pj,
            eval.evaluate(wide, bb).energy_total_pj);
}

TEST(CostModel, BiggerKernelsCostMoreEnergy) {
  const CostEvaluator eval{HardwareConfig{}};
  nn::BackboneOptions bb;
  std::vector<nn::ConvSpec> k3 = kVggRollout;
  std::vector<nn::ConvSpec> k7 = kVggRollout;
  for (auto& s : k7) s.kernel = 7;
  EXPECT_LT(eval.evaluate(k3, bb).energy_total_pj,
            eval.evaluate(k7, bb).energy_total_pj);
}

TEST(CostModel, HigherAdcResolutionCostsMoreEnergy) {
  HardwareConfig lo;
  lo.adc_bits = 4;
  HardwareConfig hi;
  hi.adc_bits = 8;
  nn::BackboneOptions bb;
  EXPECT_LT(CostEvaluator(lo).evaluate(kVggRollout, bb).energy_total_pj,
            CostEvaluator(hi).evaluate(kVggRollout, bb).energy_total_pj);
  // ...but provides exact partial sums where 4 bits fall short.
  EXPECT_GT(CostEvaluator(lo).evaluate(kVggRollout, bb).max_adc_deficit_bits,
            CostEvaluator(hi).evaluate(kVggRollout, bb).max_adc_deficit_bits);
}

TEST(CostModel, EnergyInPaperRange) {
  // Paper Fig. 2 plots candidate energies between ~0.5e7 and 4e7 pJ; the
  // VGG-style mid design must land inside (order-of-magnitude calibration).
  const CostEvaluator eval{HardwareConfig{}};
  const CostReport rep = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  EXPECT_GT(rep.energy_total_pj, 1e6);
  EXPECT_LT(rep.energy_total_pj, 4e7);
}

TEST(CostModel, LatencyInPaperRange) {
  // Paper Fig. 4 plots latencies between ~0.5e6 and 3e6 ns (we land a bit
  // wider; assert the order of magnitude).
  const CostEvaluator eval{HardwareConfig{}};
  const CostReport rep = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  EXPECT_GT(rep.latency_ns, 5e4);
  EXPECT_LT(rep.latency_ns, 5e6);
  EXPECT_NEAR(rep.fps(), 1e9 / rep.latency_ns, 1e-9);
}

TEST(CostModel, AreaBudgetFlagsInvalidDesigns) {
  HardwareConfig hw;
  hw.area_budget_mm2 = 1.0;  // absurdly small budget
  const CostEvaluator eval{hw};
  const CostReport rep = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  EXPECT_FALSE(rep.valid);
  EXPECT_NE(rep.invalid_reason.find("exceeds budget"), std::string::npos);
}

TEST(CostModel, LeakageAndAreaGrowWithArrayCount) {
  const CostEvaluator eval{HardwareConfig{}};
  nn::BackboneOptions bb;
  const std::vector<nn::ConvSpec> narrow = {{16, 3}, {16, 3}, {16, 3},
                                            {16, 3}, {16, 3}, {16, 3}};
  const CostReport small = eval.evaluate(narrow, bb);
  const CostReport big = eval.evaluate(kVggRollout, bb);
  EXPECT_LT(small.mapping.total_arrays, big.mapping.total_arrays);
  EXPECT_LT(small.area_total_mm2, big.area_total_mm2);
  EXPECT_LT(small.leakage_mw, big.leakage_mw);
}

TEST(CostModel, DeterministicAcrossCalls) {
  const CostEvaluator eval{HardwareConfig{}};
  const CostReport a = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  const CostReport b = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  EXPECT_EQ(a.energy_total_pj, b.energy_total_pj);
  EXPECT_EQ(a.latency_ns, b.latency_ns);
  EXPECT_EQ(a.area_total_mm2, b.area_total_mm2);
}

TEST(CostModel, WeightSigmaMatchesDeviceMath) {
  HardwareConfig hw;
  const CostEvaluator eval{hw};
  const CostReport rep = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  EXPECT_DOUBLE_EQ(rep.weight_sigma,
                   effective_weight_sigma(device_model(hw.device), hw.bits_per_cell,
                                          hw.cells_per_weight()));
}

TEST(CostModel, PerLayerCostsSumToTotals) {
  const CostEvaluator eval{HardwareConfig{}};
  const CostReport rep = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  double e = 0.0, l = 0.0;
  for (const auto& lc : rep.layers) {
    e += lc.energy_pj;
    l += lc.latency_ns;
  }
  EXPECT_NEAR(e, rep.energy_total_pj, rep.energy_total_pj * 1e-9);
  EXPECT_NEAR(l, rep.latency_ns, rep.latency_ns * 1e-9);
}

TEST(CostModel, FefetCheaperReadsThanRram) {
  HardwareConfig rram;
  HardwareConfig fefet;
  fefet.device = DeviceType::kFefet;
  nn::BackboneOptions bb;
  const CostReport r = CostEvaluator(rram).evaluate(kVggRollout, bb);
  const CostReport f = CostEvaluator(fefet).evaluate(kVggRollout, bb);
  EXPECT_LT(f.energy_xbar_pj, r.energy_xbar_pj);
  EXPECT_LT(f.weight_sigma, r.weight_sigma);
}

class CostAcrossHw : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CostAcrossHw, AllConfigsProduceFiniteCosts) {
  const auto [xbar, adc] = GetParam();
  HardwareConfig hw;
  hw.xbar_size = xbar;
  hw.adc_bits = adc;
  const CostEvaluator eval{hw};
  const CostReport rep = eval.evaluate(kVggRollout, nn::BackboneOptions{});
  EXPECT_TRUE(std::isfinite(rep.energy_total_pj));
  EXPECT_GT(rep.energy_total_pj, 0.0);
  EXPECT_TRUE(std::isfinite(rep.latency_ns));
  EXPECT_GT(rep.latency_ns, 0.0);
  EXPECT_TRUE(std::isfinite(rep.area_total_mm2));
  EXPECT_GT(rep.area_total_mm2, 0.0);
  EXPECT_GE(rep.leakage_mw, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CostAcrossHw,
                         ::testing::Combine(::testing::Values(64, 128, 256),
                                            ::testing::Values(4, 6, 8)));

}  // namespace
}  // namespace lcda::cim
