#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "lcda/core/evaluator.h"
#include "lcda/core/experiment.h"
#include "lcda/core/loop.h"
#include "lcda/core/pareto.h"
#include "lcda/core/reward.h"

namespace lcda::core {
namespace {

search::Design vgg_design() {
  search::Design d;
  d.rollout = {{32, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}};
  return d;
}

// ---------------------------------------------------------------- Reward

TEST(Reward, EnergyFormulaEq1) {
  // reward_ae = acc - sqrt(E / 8e7)
  EXPECT_DOUBLE_EQ(reward_accuracy_energy(0.7, 8e7), 0.7 - 1.0);
  EXPECT_DOUBLE_EQ(reward_accuracy_energy(0.7, 2e7), 0.7 - 0.5);
  EXPECT_DOUBLE_EQ(reward_accuracy_energy(0.5, 0.0), 0.5);
  EXPECT_THROW((void)reward_accuracy_energy(0.5, -1.0), std::invalid_argument);
}

TEST(Reward, LatencyFormulaEq2) {
  // reward_al = acc + fps/1600, fps = 1e9 / latency_ns.
  // At the ISAAC normalization point (1600 FPS = 625000 ns) the term is 1.
  EXPECT_DOUBLE_EQ(reward_accuracy_latency(0.7, 1e9 / 1600.0), 0.7 + 1.0);
  EXPECT_DOUBLE_EQ(reward_accuracy_latency(0.6, 1e9 / 800.0), 0.6 + 0.5);
  EXPECT_THROW((void)reward_accuracy_latency(0.5, 0.0), std::invalid_argument);
}

TEST(Reward, InvalidHardwareGetsMinusOne) {
  cim::CostReport cost;
  cost.valid = false;
  const RewardFunction f(llm::Objective::kEnergy);
  EXPECT_DOUBLE_EQ(f(0.9, cost), kInvalidReward);
}

TEST(Reward, DispatchesOnObjective) {
  cim::CostReport cost;
  cost.valid = true;
  cost.energy_total_pj = 2e7;
  cost.latency_ns = 1e9 / 1600.0;
  const RewardFunction fe(llm::Objective::kEnergy);
  const RewardFunction fl(llm::Objective::kLatency);
  EXPECT_DOUBLE_EQ(fe(0.7, cost), 0.2);
  EXPECT_DOUBLE_EQ(fl(0.7, cost), 1.7);
  EXPECT_DOUBLE_EQ(fe.hw_metric(cost), 2e7);
  EXPECT_DOUBLE_EQ(fl.hw_metric(cost), 1e9 / 1600.0);
}

// ---------------------------------------------------------------- Pareto

TEST(Pareto, DominanceDefinition) {
  const TradeoffPoint a{1.0, 0.8};
  const TradeoffPoint b{2.0, 0.7};
  const TradeoffPoint c{1.0, 0.8};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, c)) << "equal points do not dominate each other";
}

TEST(Pareto, FrontExtraction) {
  const std::vector<TradeoffPoint> pts = {
      {1.0, 0.5}, {2.0, 0.7}, {3.0, 0.6}, {4.0, 0.9}, {2.5, 0.2}};
  const auto front = pareto_front(pts);
  // {3.0,0.6} dominated by {2.0,0.7}; {2.5,0.2} dominated by several.
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 1u);
  EXPECT_EQ(front[2], 3u);
}

TEST(Pareto, FrontOfEmptyIsEmpty) {
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(Pareto, DominatedAreaPrefersBetterFronts) {
  const std::vector<TradeoffPoint> good = {{1.0, 0.8}, {2.0, 0.9}};
  const std::vector<TradeoffPoint> bad = {{2.0, 0.5}, {3.0, 0.6}};
  EXPECT_GT(dominated_area(good, 5.0), dominated_area(bad, 5.0));
  EXPECT_EQ(dominated_area({}, 5.0), 0.0);
}

TEST(Pareto, TradeoffPointsSkipInvalidEpisodes) {
  RunResult run;
  EpisodeRecord ok;
  ok.valid = true;
  ok.energy_pj = 1e7;
  ok.latency_ns = 1e6;
  ok.accuracy = 0.7;
  ok.episode = 0;
  EpisodeRecord bad = ok;
  bad.valid = false;
  bad.episode = 1;
  run.episodes = {ok, bad};
  const auto pts_e = tradeoff_points(run, llm::Objective::kEnergy);
  ASSERT_EQ(pts_e.points.size(), 1u);
  EXPECT_DOUBLE_EQ(pts_e.points[0].cost, 1e7);
  const auto pts_l = tradeoff_points(run, llm::Objective::kLatency);
  EXPECT_DOUBLE_EQ(pts_l.points[0].cost, 1e6);
}

// ------------------------------------------------------------ Evaluators

TEST(SurrogateEvaluator, DeterministicGivenSeed) {
  SurrogateEvaluator eval;
  auto run = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    return eval.evaluate(vgg_design(), rng);
  };
  const Evaluation a = run(1), b = run(1), c = run(2);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.cost.energy_total_pj, b.cost.energy_total_pj);
  EXPECT_NE(a.accuracy, c.accuracy);  // different MC draws
  EXPECT_EQ(a.cost.energy_total_pj, c.cost.energy_total_pj);  // cost is exact
}

TEST(SurrogateEvaluator, AccuracyWithinBounds) {
  SurrogateEvaluator eval;
  util::Rng rng(3);
  const Evaluation ev = eval.evaluate(vgg_design(), rng);
  EXPECT_GT(ev.accuracy, 0.1);
  EXPECT_LT(ev.accuracy, 0.99);
  EXPECT_GE(ev.accuracy_stddev, 0.0);
  EXPECT_TRUE(ev.cost.valid);
}

TEST(SurrogateEvaluator, NoisierHardwareLowersAccuracy) {
  SurrogateEvaluator::Options opts;
  opts.monte_carlo_samples = 64;
  SurrogateEvaluator eval(opts);
  search::Design rram = vgg_design();   // RRAM b2
  search::Design fefet = vgg_design();
  fefet.hw.device = cim::DeviceType::kFefet;
  util::Rng r1(4), r2(4);
  EXPECT_LT(eval.evaluate(rram, r1).accuracy, eval.evaluate(fefet, r2).accuracy);
}

// ------------------------------------------------------------------ Loop

class CountingOptimizer final : public search::Optimizer {
 public:
  explicit CountingOptimizer(search::SearchSpace space) : space_(std::move(space)) {}
  search::Design propose(util::Rng& rng) override {
    ++proposals;
    return space_.sample(rng);
  }
  void feedback(const search::Observation& obs) override {
    ++feedbacks;
    last_reward = obs.reward;
  }
  std::string name() const override { return "Counting"; }
  int proposals = 0;
  int feedbacks = 0;
  double last_reward = 0.0;

 private:
  search::SearchSpace space_;
};

TEST(CodesignLoop, RunsEpisodesAndRecords) {
  CountingOptimizer opt{search::SearchSpace{}};
  SurrogateEvaluator eval;
  CodesignLoop::Options lopts;
  lopts.episodes = 7;
  int callbacks = 0;
  lopts.on_episode = [&](const EpisodeRecord&) { ++callbacks; };
  CodesignLoop loop(opt, eval, RewardFunction(llm::Objective::kEnergy), lopts);
  util::Rng rng(5);
  const RunResult run = loop.run(rng);
  EXPECT_EQ(run.episodes.size(), 7u);
  EXPECT_EQ(opt.proposals, 7);
  EXPECT_EQ(opt.feedbacks, 7);
  EXPECT_EQ(callbacks, 7);
  EXPECT_GE(run.best_episode, 0);
  // best() really is the max reward.
  for (const auto& ep : run.episodes) {
    EXPECT_LE(ep.reward, run.best_reward());
  }
}

TEST(CodesignLoop, RunningMaxIsMonotone) {
  CountingOptimizer opt{search::SearchSpace{}};
  SurrogateEvaluator eval;
  CodesignLoop::Options lopts;
  lopts.episodes = 20;
  CodesignLoop loop(opt, eval, RewardFunction(llm::Objective::kEnergy), lopts);
  util::Rng rng(6);
  const RunResult run = loop.run(rng);
  const auto rmax = run.reward_running_max();
  ASSERT_EQ(rmax.size(), 20u);
  for (std::size_t i = 1; i < rmax.size(); ++i) {
    EXPECT_GE(rmax[i], rmax[i - 1]);
  }
  EXPECT_DOUBLE_EQ(rmax.back(), run.best_reward());
}

TEST(CodesignLoop, EpisodesToReach) {
  RunResult run;
  for (int i = 0; i < 5; ++i) {
    EpisodeRecord ep;
    ep.episode = i;
    ep.reward = 0.1 * i;
    run.episodes.push_back(ep);
  }
  EXPECT_EQ(run.episodes_to_reach(0.25), 3);
  EXPECT_EQ(run.episodes_to_reach(0.0), 0);
  EXPECT_EQ(run.episodes_to_reach(9.9), -1);
}

TEST(CodesignLoop, RejectsZeroEpisodes) {
  CountingOptimizer opt{search::SearchSpace{}};
  SurrogateEvaluator eval;
  CodesignLoop::Options lopts;
  lopts.episodes = 0;
  EXPECT_THROW(
      CodesignLoop(opt, eval, RewardFunction(llm::Objective::kEnergy), lopts),
      std::invalid_argument);
}

TEST(CodesignLoop, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    CountingOptimizer opt{search::SearchSpace{}};
    SurrogateEvaluator eval;
    CodesignLoop::Options lopts;
    lopts.episodes = 5;
    CodesignLoop loop(opt, eval, RewardFunction(llm::Objective::kEnergy), lopts);
    util::Rng rng(seed);
    return loop.run(rng);
  };
  const RunResult a = run_once(7), b = run_once(7);
  for (std::size_t i = 0; i < a.episodes.size(); ++i) {
    EXPECT_EQ(a.episodes[i].design, b.episodes[i].design);
    EXPECT_DOUBLE_EQ(a.episodes[i].reward, b.episodes[i].reward);
  }
}

// ------------------------------------------------------------ Experiment

TEST(Experiment, StrategyNames) {
  EXPECT_EQ(strategy_name(Strategy::kLcda), "LCDA");
  EXPECT_EQ(strategy_name(Strategy::kLcdaNaive), "LCDA-naive");
  EXPECT_EQ(strategy_name(Strategy::kNacimRl), "NACIM");
}

TEST(Experiment, MakeOptimizerProducesCorrectTypes) {
  ExperimentConfig cfg;
  EXPECT_EQ(make_optimizer(Strategy::kLcda, cfg)->name(), "LCDA(SimulatedGPT4)");
  EXPECT_EQ(make_optimizer(Strategy::kLcdaNaive, cfg)->name(),
            "LCDA-naive(SimulatedGPT4)");
  EXPECT_EQ(make_optimizer(Strategy::kNacimRl, cfg)->name(), "NACIM-RL");
  EXPECT_EQ(make_optimizer(Strategy::kGenetic, cfg)->name(), "Genetic");
  EXPECT_EQ(make_optimizer(Strategy::kRandom, cfg)->name(), "Random");
}

TEST(Experiment, RunStrategySmoke) {
  ExperimentConfig cfg;
  cfg.seed = 11;
  const RunResult run = run_strategy(Strategy::kRandom, 10, cfg);
  EXPECT_EQ(run.episodes.size(), 10u);
}

TEST(Experiment, LcdaBeatsColdStart) {
  // The paper's Fig. 3a: LCDA's early rewards are far above NACIM's.
  ExperimentConfig cfg;
  cfg.seed = 12;
  const RunResult lcda = run_strategy(Strategy::kLcda, 5, cfg);
  const RunResult nacim = run_strategy(Strategy::kNacimRl, 5, cfg);
  double lcda_mean = 0, nacim_mean = 0;
  for (int i = 0; i < 5; ++i) {
    lcda_mean += lcda.episodes[static_cast<std::size_t>(i)].reward / 5;
    nacim_mean += nacim.episodes[static_cast<std::size_t>(i)].reward / 5;
  }
  EXPECT_GT(lcda_mean, nacim_mean + 0.1);
}

TEST(Experiment, MeasureSpeedupReportsConsistentNumbers) {
  ExperimentConfig cfg;
  cfg.seed = 13;
  cfg.lcda_episodes = 10;
  cfg.nacim_episodes = 120;
  const SpeedupReport rep = measure_speedup(cfg);
  EXPECT_GT(rep.lcda_best, 0.0);
  EXPECT_GT(rep.nacim_best, -1.0);
  EXPECT_DOUBLE_EQ(rep.threshold, 0.95 * rep.nacim_best);
  if (rep.lcda_episodes > 0 && rep.nacim_episodes > 0) {
    EXPECT_DOUBLE_EQ(rep.speedup(),
                     static_cast<double>(rep.nacim_episodes) / rep.lcda_episodes);
    EXPECT_GE(rep.speedup(), 1.0) << "LCDA must not be slower than NACIM";
  }
  EXPECT_THROW((void)measure_speedup(cfg, 0.0), std::invalid_argument);
}

TEST(Experiment, WriteRunCsvEmitsOneRowPerEpisode) {
  ExperimentConfig cfg;
  cfg.seed = 14;
  const RunResult run = run_strategy(Strategy::kRandom, 4, cfg);
  std::ostringstream os;
  write_run_csv(os, run, "test");
  int lines = 0;
  for (char c : os.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4);
  EXPECT_NE(os.str().find("test,0,"), std::string::npos);
}

}  // namespace
}  // namespace lcda::core
