#include <gtest/gtest.h>

#include <set>

#include "lcda/data/loader.h"
#include "lcda/data/synthetic_cifar.h"

namespace lcda::data {
namespace {

SyntheticCifarOptions tiny_opts() {
  SyntheticCifarOptions opts;
  opts.num_classes = 5;
  opts.image_size = 16;
  opts.train_per_class = 8;
  opts.test_per_class = 4;
  opts.seed = 77;
  return opts;
}

TEST(SyntheticCifar, ShapesAndCounts) {
  const auto tt = make_synthetic_cifar(tiny_opts());
  EXPECT_EQ(tt.train.size(), 40);
  EXPECT_EQ(tt.test.size(), 20);
  EXPECT_EQ(tt.train.images.shape(), (std::vector<int>{40, 3, 16, 16}));
  EXPECT_EQ(tt.train.labels.size(), 40u);
}

TEST(SyntheticCifar, LabelsBalancedAndInRange) {
  const auto tt = make_synthetic_cifar(tiny_opts());
  std::vector<int> counts(5, 0);
  for (int label : tt.train.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 5);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_EQ(c, 8);
}

TEST(SyntheticCifar, DeterministicForSeed) {
  const auto a = make_synthetic_cifar(tiny_opts());
  const auto b = make_synthetic_cifar(tiny_opts());
  ASSERT_EQ(a.train.images.size(), b.train.images.size());
  for (std::size_t i = 0; i < a.train.images.size(); ++i) {
    ASSERT_EQ(a.train.images[i], b.train.images[i]);
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(SyntheticCifar, DifferentSeedsDiffer) {
  auto opts = tiny_opts();
  const auto a = make_synthetic_cifar(opts);
  opts.seed = 78;
  const auto b = make_synthetic_cifar(opts);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.train.images.size(); ++i) {
    diff += std::abs(a.train.images[i] - b.train.images[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticCifar, PixelsWithinClampRange) {
  const auto tt = make_synthetic_cifar(tiny_opts());
  for (float v : tt.train.images.data()) {
    ASSERT_GE(v, -1.5f);
    ASSERT_LE(v, 1.5f);
  }
}

TEST(SyntheticCifar, TrainAndTestShareClassStructure) {
  // Same class should be more similar across splits than different classes:
  // compare class-mean images.
  const auto tt = make_synthetic_cifar(tiny_opts());
  const int classes = 5;
  const std::size_t img = 3u * 16 * 16;
  auto class_mean = [&](const Dataset& ds, int k) {
    std::vector<double> mean(img, 0.0);
    int n = 0;
    for (int i = 0; i < ds.size(); ++i) {
      if (ds.labels[static_cast<std::size_t>(i)] != k) continue;
      for (std::size_t j = 0; j < img; ++j) mean[j] += ds.images[i * img + j];
      ++n;
    }
    for (auto& v : mean) v /= n;
    return mean;
  };
  auto dist = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0.0;
    for (std::size_t j = 0; j < img; ++j) d += (a[j] - b[j]) * (a[j] - b[j]);
    return d;
  };
  for (int k = 0; k < classes; ++k) {
    const auto train_mean = class_mean(tt.train, k);
    const auto test_same = class_mean(tt.test, k);
    const auto test_other = class_mean(tt.test, (k + 1) % classes);
    EXPECT_LT(dist(train_mean, test_same), dist(train_mean, test_other))
        << "class " << k;
  }
}

TEST(SyntheticCifar, RejectsBadOptions) {
  SyntheticCifarOptions opts;
  opts.num_classes = 1;
  EXPECT_THROW((void)make_synthetic_cifar(opts), std::invalid_argument);
  opts = SyntheticCifarOptions{};
  opts.image_size = 4;
  EXPECT_THROW((void)make_synthetic_cifar(opts), std::invalid_argument);
}

// ---------------------------------------------------------------- Loader

TEST(DataLoader, CoversAllSamplesOncePerEpoch) {
  const auto tt = make_synthetic_cifar(tiny_opts());
  DataLoader loader(tt.train, 7);
  util::Rng rng(1);
  loader.start_epoch(rng);
  int total = 0, batches = 0;
  std::vector<int> label_counts(5, 0);
  while (true) {
    const Batch b = loader.next();
    if (b.size() == 0) break;
    total += b.size();
    ++batches;
    for (int label : b.labels) ++label_counts[static_cast<std::size_t>(label)];
  }
  EXPECT_EQ(total, 40);
  EXPECT_EQ(batches, loader.batches_per_epoch());
  for (int c : label_counts) EXPECT_EQ(c, 8);
}

TEST(DataLoader, LastBatchMayBeShort) {
  const auto tt = make_synthetic_cifar(tiny_opts());
  DataLoader loader(tt.train, 16);
  util::Rng rng(2);
  loader.start_epoch(rng);
  std::vector<int> sizes;
  while (true) {
    const Batch b = loader.next();
    if (b.size() == 0) break;
    sizes.push_back(b.size());
  }
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[2], 8);
}

TEST(DataLoader, ShuffleChangesOrderButDeterministically) {
  const auto tt = make_synthetic_cifar(tiny_opts());
  auto first_labels = [&](std::uint64_t seed) {
    DataLoader loader(tt.train, 40);
    util::Rng rng(seed);
    loader.start_epoch(rng);
    return loader.next().labels;
  };
  EXPECT_EQ(first_labels(3), first_labels(3));
  EXPECT_NE(first_labels(3), first_labels(4));
}

TEST(DataLoader, NoShufflePreservesOrder) {
  const auto tt = make_synthetic_cifar(tiny_opts());
  DataLoader loader(tt.train, 40, /*shuffle=*/false);
  util::Rng rng(5);
  loader.start_epoch(rng);
  const Batch b = loader.next();
  EXPECT_EQ(b.labels, tt.train.labels);
}

TEST(DataLoader, RejectsBadArguments) {
  const auto tt = make_synthetic_cifar(tiny_opts());
  EXPECT_THROW(DataLoader(tt.train, 0), std::invalid_argument);
  Dataset empty;
  EXPECT_THROW(DataLoader(empty, 4), std::invalid_argument);
}

TEST(DataLoader, BatchImagesMatchSource) {
  const auto tt = make_synthetic_cifar(tiny_opts());
  DataLoader loader(tt.train, 4, /*shuffle=*/false);
  util::Rng rng(6);
  loader.start_epoch(rng);
  const Batch b = loader.next();
  const std::size_t img = 3u * 16 * 16;
  for (int i = 0; i < b.size(); ++i) {
    for (std::size_t j = 0; j < img; ++j) {
      ASSERT_EQ(b.images[i * img + j], tt.train.images[i * img + j]);
    }
  }
}

}  // namespace
}  // namespace lcda::data
