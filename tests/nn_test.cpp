#include <gtest/gtest.h>

#include <cmath>

#include "lcda/data/synthetic_cifar.h"
#include "lcda/nn/layers.h"
#include "lcda/nn/model_builder.h"
#include "lcda/nn/sequential.h"
#include "lcda/nn/sgd.h"
#include "lcda/nn/trainer.h"
#include "lcda/util/rng.h"

namespace lcda::nn {
namespace {

using util::Rng;

// ---------------------------------------------------------------- Layers

TEST(Conv2dLayer, ShapesAndMacs) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 16, 16, rng);
  Tensor x({2, 3, 16, 16});
  const Tensor& y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 16, 16}));
  EXPECT_EQ(conv.macs_per_sample(), 8LL * 16 * 16 * 3 * 3 * 3);
  EXPECT_EQ(conv.params().size(), 2u);
  EXPECT_EQ(conv.describe(), "Conv2d(3->8, k3, 16x16)");
}

TEST(Conv2dLayer, RejectsEvenKernel) {
  Rng rng(1);
  EXPECT_THROW(Conv2d(3, 8, 4, 16, 16, rng), std::invalid_argument);
}

TEST(Conv2dLayer, RejectsWrongInput) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 16, 16, rng);
  Tensor bad({2, 4, 16, 16});
  EXPECT_THROW((void)conv.forward(bad), std::invalid_argument);
}

TEST(DenseLayer, ShapesAndMacs) {
  Rng rng(2);
  Dense dense(10, 4, rng);
  Tensor x({3, 10});
  const Tensor& y = dense.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{3, 4}));
  EXPECT_EQ(dense.macs_per_sample(), 40);
}

TEST(FlattenLayer, RoundTrips) {
  Flatten flat;
  Tensor x({2, 3, 4, 4});
  x[10] = 9.0f;
  const Tensor& y = flat.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 48}));
  const Tensor& dx = flat.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_EQ(dx[10], 9.0f);
}

TEST(MaxPoolLayer, RejectsOddDims) {
  MaxPool2x2 pool;
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW((void)pool.forward(x), std::invalid_argument);
}

// ------------------------------------------------------------ Sequential

Sequential tiny_mlp(Rng& rng, int in = 8, int hidden = 16, int classes = 3) {
  Sequential net;
  net.add(std::make_unique<Dense>(in, hidden, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Dense>(hidden, classes, rng));
  return net;
}

TEST(Sequential, ParamAccounting) {
  Rng rng(3);
  Sequential net = tiny_mlp(rng);
  EXPECT_EQ(net.layer_count(), 3u);
  EXPECT_EQ(net.params().size(), 4u);
  EXPECT_EQ(net.param_count(), 8u * 16 + 16 + 16 * 3 + 3);
}

TEST(Sequential, TrainStepReducesLossOnFixedBatch) {
  Rng rng(4);
  Sequential net = tiny_mlp(rng);
  Sgd opt(net.params(), {.lr = 0.1, .momentum = 0.9, .weight_decay = 0.0});

  Tensor x({6, 8});
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform(-1, 1));
  const std::vector<int> labels = {0, 1, 2, 0, 1, 2};

  const double first = net.train_step_loss(x, labels);
  opt.step();
  double last = first;
  for (int i = 0; i < 60; ++i) {
    last = net.train_step_loss(x, labels);
    opt.step();
  }
  EXPECT_LT(last, first * 0.5) << "overfitting a fixed batch must reduce loss";
  EXPECT_GT(net.accuracy(x, labels), 0.99);
}

TEST(Sequential, EndToEndGradientCheck) {
  Rng rng(5);
  Sequential net = tiny_mlp(rng, 4, 6, 2);
  Tensor x({2, 4});
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform(-1, 1));
  const std::vector<int> labels = {0, 1};

  // Analytic gradients.
  (void)net.train_step_loss(x, labels);
  auto params = net.params();
  const Tensor analytic = params[0]->grad;

  // Numerical check on a few coordinates of the first weight matrix.
  auto loss_at = [&]() {
    const Tensor& logits = net.forward(x);
    Tensor probs(logits.shape()), d(logits.shape());
    tensor::softmax_rows(logits, probs);
    return tensor::cross_entropy_loss(probs, labels, d);
  };
  const float eps = 1e-3f;
  for (std::size_t idx : {0u, 5u, 11u, 23u}) {
    const float saved = params[0]->value[idx];
    params[0]->value[idx] = saved + eps;
    const double lp = loss_at();
    params[0]->value[idx] = saved - eps;
    const double lm = loss_at();
    params[0]->value[idx] = saved;
    EXPECT_NEAR(analytic[idx], (lp - lm) / (2 * eps), 5e-3) << "idx " << idx;
  }
}

// ------------------------------------------------------------------- SGD

TEST(Sgd, PlainStepMatchesFormula) {
  Param p;
  p.value = Tensor({1}, {1.0f});
  p.grad = Tensor({1}, {0.5f});
  std::vector<Param*> params = {&p};
  Sgd opt(params, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  Param p;
  p.value = Tensor({1}, {0.0f});
  p.grad = Tensor({1}, {1.0f});
  std::vector<Param*> params = {&p};
  Sgd opt(params, {.lr = 0.1, .momentum = 0.5, .weight_decay = 0.0});
  opt.step();  // v = -0.1,  w = -0.1
  opt.step();  // v = -0.15, w = -0.25
  EXPECT_NEAR(p.value[0], -0.25f, 1e-6);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Param p;
  p.value = Tensor({1}, {10.0f});
  p.grad = Tensor({1}, {0.0f});
  std::vector<Param*> params = {&p};
  Sgd opt(params, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.1});
  opt.step();
  EXPECT_LT(p.value[0], 10.0f);
}

// --------------------------------------------------------- ModelBuilder

TEST(ModelBuilder, BackboneShapesFollowPooling) {
  const std::vector<ConvSpec> rollout = {{16, 3}, {16, 3}, {32, 3},
                                         {32, 3}, {64, 3}, {64, 3}};
  BackboneOptions opts;
  const auto shapes = backbone_shapes(rollout, opts);
  ASSERT_EQ(shapes.size(), 8u);  // 6 conv + 2 fc
  EXPECT_EQ(shapes[0].in_channels, 3);
  EXPECT_EQ(shapes[0].in_hw, 32);
  EXPECT_EQ(shapes[2].in_hw, 16);  // after pool at conv index 1
  EXPECT_EQ(shapes[4].in_hw, 8);   // after pool at conv index 3
  EXPECT_TRUE(shapes[6].is_fc);
  EXPECT_EQ(shapes[6].in_channels, 64 * 4 * 4);  // 8 -> pool -> 4
  EXPECT_EQ(shapes[6].out_channels, 1024);
  EXPECT_EQ(shapes[7].in_channels, 1024);
  EXPECT_EQ(shapes[7].out_channels, 10);
}

TEST(ModelBuilder, WeightRowsMatchKernelFanIn) {
  const std::vector<ConvSpec> rollout = {{32, 5}, {64, 7}};
  BackboneOptions opts;
  opts.pool_after = {0};
  const auto shapes = backbone_shapes(rollout, opts);
  EXPECT_EQ(shapes[0].weight_rows(), 5LL * 5 * 3);
  EXPECT_EQ(shapes[1].weight_rows(), 7LL * 7 * 32);
  EXPECT_EQ(shapes[1].weight_cols(), 64);
}

TEST(ModelBuilder, BuildMatchesShapes) {
  Rng rng(6);
  const std::vector<ConvSpec> rollout = {{8, 3}, {8, 3}, {12, 3},
                                         {12, 3}, {16, 3}, {16, 3}};
  BackboneOptions opts;
  opts.hidden = 64;
  Sequential net = build_backbone(rollout, opts, rng);
  Tensor x({1, 3, 32, 32});
  const Tensor& logits = net.forward(x);
  EXPECT_EQ(logits.shape(), (std::vector<int>{1, 10}));

  // MACs of the instantiated network match the analytic shapes.
  const auto shapes = backbone_shapes(rollout, opts);
  long long macs = 0;
  for (const auto& s : shapes) macs += s.macs();
  EXPECT_EQ(net.macs_per_sample(), macs);
}

TEST(ModelBuilder, RejectsBadRollouts) {
  Rng rng(7);
  BackboneOptions opts;
  EXPECT_THROW((void)build_backbone({}, opts, rng), std::invalid_argument);
  EXPECT_THROW((void)build_backbone({{0, 3}}, opts, rng), std::invalid_argument);
  EXPECT_THROW((void)build_backbone({{8, 2}}, opts, rng), std::invalid_argument);
}

TEST(ModelBuilder, RejectsOverPooling) {
  Rng rng(8);
  BackboneOptions opts;
  opts.input_size = 4;
  opts.pool_after = {0, 1, 2};
  const std::vector<ConvSpec> rollout = {{8, 3}, {8, 3}, {8, 3}, {8, 3}};
  EXPECT_THROW((void)build_backbone(rollout, opts, rng), std::invalid_argument);
}

// --------------------------------------------------------------- Trainer

data::TrainTest small_data() {
  data::SyntheticCifarOptions opts;
  opts.image_size = 16;
  opts.num_classes = 4;
  opts.train_per_class = 12;
  opts.test_per_class = 6;
  opts.seed = 5;
  return data::make_synthetic_cifar(opts);
}

Sequential small_net(Rng& rng) {
  Sequential net;
  net.add(std::make_unique<Conv2d>(3, 8, 3, 16, 16, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2x2>());
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Dense>(8 * 8 * 8, 4, rng));
  return net;
}

TEST(Trainer, LearnsAboveChance) {
  const auto data = small_data();
  Rng rng(9);
  Sequential net = small_net(rng);
  TrainOptions opts;
  opts.epochs = 4;
  const TrainResult result = train(net, data.train, data.test, opts, rng);
  EXPECT_EQ(result.epoch_loss.size(), 4u);
  // 4 classes => chance is 0.25; the tiny net should clearly beat it.
  EXPECT_GT(result.final_test_accuracy, 0.5);
  // Loss should drop from the first epoch to the last.
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
}

TEST(Trainer, DeterministicGivenSeed) {
  const auto data = small_data();
  auto run = [&]() {
    Rng rng(10);
    Sequential net = small_net(rng);
    TrainOptions opts;
    opts.epochs = 2;
    return train(net, data.train, data.test, opts, rng).final_test_accuracy;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Trainer, NoiseInjectionKeepsCleanWeightsFinite) {
  const auto data = small_data();
  Rng rng(11);
  Sequential net = small_net(rng);
  TrainOptions opts;
  opts.epochs = 2;
  opts.perturber = [](std::vector<Param*>& params, util::Rng& r) {
    for (Param* p : params) {
      for (auto& w : p->value.data()) {
        w += static_cast<float>(r.normal(0.0, 0.05));
      }
    }
  };
  const TrainResult result = train(net, data.train, data.test, opts, rng);
  EXPECT_GT(result.final_test_accuracy, 0.3);
  for (Param* p : net.params()) {
    for (float w : p->value.data()) ASSERT_TRUE(std::isfinite(w));
  }
}

TEST(Trainer, EvaluateNoisyRestoresWeights) {
  const auto data = small_data();
  Rng rng(12);
  Sequential net = small_net(rng);
  const Tensor before = net.params()[0]->value;

  WeightPerturber big_noise = [](std::vector<Param*>& params, util::Rng& r) {
    for (Param* p : params) {
      for (auto& w : p->value.data()) {
        w += static_cast<float>(r.normal(0.0, 1.0));
      }
    }
  };
  (void)evaluate_noisy(net, data.test, big_noise, rng);
  const Tensor after = net.params()[0]->value;
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before[i], after[i]) << "weights must be restored";
  }
}

TEST(Trainer, OnEpochCallbackFires) {
  const auto data = small_data();
  Rng rng(13);
  Sequential net = small_net(rng);
  TrainOptions opts;
  opts.epochs = 3;
  int calls = 0;
  opts.on_epoch = [&](int, double, double) { ++calls; };
  (void)train(net, data.train, data.test, opts, rng);
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace lcda::nn
