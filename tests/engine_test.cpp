// Tests of the batched parallel evaluation engine: the thread pool, the
// seed-derivation scheme, the optimizer batch contract, the evaluation
// cache, and the bit-for-bit determinism guarantee (same seed => same
// trace, for every parallelism setting).
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <span>
#include <stdexcept>
#include <thread>

#include "lcda/core/experiment.h"
#include "lcda/core/loop.h"
#include "lcda/core/stats_runner.h"
#include "lcda/llm/llm_optimizer.h"
#include "lcda/llm/simulated_gpt4.h"
#include "lcda/search/genetic_optimizer.h"
#include "lcda/search/nsga2_optimizer.h"
#include "lcda/search/random_optimizer.h"
#include "lcda/util/rng.h"
#include "lcda/util/striped_cache.h"
#include "lcda/util/thread_pool.h"

namespace lcda {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdleRunsAllJobs) {
  util::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SubmitBatchRunsEveryJobOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(200);
  std::vector<std::function<void()>> jobs;
  jobs.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    jobs.push_back([&counts, i] { ++counts[i]; });
  }
  pool.submit_batch(std::move(jobs));
  pool.wait_idle();
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveParallelism) {
  EXPECT_EQ(util::ThreadPool::resolve_parallelism(3), 3);
  EXPECT_EQ(util::ThreadPool::resolve_parallelism(1), 1);
  EXPECT_GE(util::ThreadPool::resolve_parallelism(0), 1);  // auto
}

TEST(ThreadPool, NullPoolHelperRunsInline) {
  std::vector<int> counts(10, 0);
  util::parallel_for_each_index(nullptr, counts.size(),
                                [&](std::size_t i) { ++counts[i]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

// ------------------------------------------------------- seed derivation

TEST(DeriveSeed, OrderIndependentAndDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) {
    seeds.insert(util::derive_seed(42, i));
  }
  EXPECT_EQ(seeds.size(), 100u) << "streams must be distinct";
  // Same (base, index) in any order gives the same seed.
  EXPECT_EQ(util::derive_seed(42, 7), util::derive_seed(42, 7));
  EXPECT_NE(util::derive_seed(42, 7), util::derive_seed(43, 7));
  // Derived streams behave like independent Rngs.
  util::Rng a(util::derive_seed(1, 0)), b(util::derive_seed(1, 1));
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ------------------------------------------------------- chunked dispatch

TEST(ThreadPool, ChunksForSizesToThePool) {
  EXPECT_EQ(util::ThreadPool::chunks_for(0, 4), 0u);
  EXPECT_EQ(util::ThreadPool::chunks_for(1, 4), 1u);
  EXPECT_EQ(util::ThreadPool::chunks_for(3, 4), 3u);
  EXPECT_EQ(util::ThreadPool::chunks_for(16, 4), 4u);
  EXPECT_EQ(util::ThreadPool::chunks_for(16, 0), 1u);  // clamped workers
}

TEST(ThreadPool, ChunkRangesPartitionExactly) {
  for (std::size_t n : {1u, 5u, 16u, 17u, 100u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 7u}) {
      if (chunks > n) continue;
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = util::chunk_range(n, chunks, c);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_GT(end, begin) << "empty chunk";
        covered += end - begin;
        expected_begin = end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

// --------------------------------------------------------- striped cache

TEST(StripedCache, BuildsOncePerKeyAndSharesTheValue) {
  util::StripedCache<int> cache;
  std::atomic<int> builds{0};
  auto build = [&] {
    ++builds;
    return std::make_shared<const int>(42);
  };
  const auto a = cache.get_or_build(7, build);
  const auto b = cache.get_or_build(7, build);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(*a, 42);
  (void)cache.get_or_build(8, build);
  EXPECT_EQ(builds.load(), 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(StripedCache, StripeOverflowResetsOnlyThatStripe) {
  // Tiny capacity: per-stripe cap of 1 entry. Keys that land on the same
  // stripe evict each other; entries already handed out stay valid.
  util::StripedCache<std::uint64_t> cache(util::StripedCache<std::uint64_t>::kStripes);
  auto value_of = [&](std::uint64_t key) {
    return cache.get_or_build(key,
                              [&] { return std::make_shared<const std::uint64_t>(key); });
  };
  // Two keys on stripe 0 (stripe = top 16 bits & 15).
  const auto first = value_of(1);
  const auto second = value_of(2);
  EXPECT_EQ(*first, 1u);   // still usable after its stripe was reset
  EXPECT_EQ(*second, 2u);
}

TEST(StripedCache, ConcurrentHammeringIsRaceFreeAndConsistent) {
  // The TSan-exercised stress test of the evaluator-memo design: many
  // threads resolving a small key set through one cache must always see
  // the key's own value, whatever interleaving of builds/hits/evictions
  // happens. Small capacity keeps stripe resets in play.
  util::StripedCache<std::uint64_t> cache(64);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t key = util::hash_mix(rng.next_u64() % 97);
        const auto value = cache.get_or_build(key, [&] {
          return std::make_shared<const std::uint64_t>(key);
        });
        if (*value != key) failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

// ------------------------------------------------ evaluator batch contract

TEST(EvaluateBatch, MatchesScalarEvaluationBitForBit) {
  // One evaluator driven through evaluate(), another through
  // evaluate_batch() with identically forked streams: every field of every
  // Evaluation must match exactly, for any chunk split.
  core::ExperimentConfig cfg;
  core::SurrogateEvaluator scalar(cfg.evaluator);
  core::SurrogateEvaluator batched(cfg.evaluator);

  const search::SearchSpace space{cfg.space};
  util::Rng design_rng(21);
  constexpr std::size_t kN = 12;
  std::vector<search::Design> designs;
  designs.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) designs.push_back(space.sample(design_rng));

  util::Rng stream_a(5), stream_b(5);
  std::vector<core::Evaluation> want;
  want.reserve(kN);
  for (const search::Design& d : designs) {
    util::Rng r = stream_a.fork();
    want.push_back(scalar.evaluate(d, r));
  }

  std::vector<util::Rng> rngs;
  rngs.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) rngs.push_back(stream_b.fork());
  std::vector<core::Evaluation> got(kN);
  std::vector<core::EvalRequest> requests(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    requests[i] = core::EvalRequest{&designs[i], &rngs[i], &got[i]};
  }
  // Split into uneven chunks, like the loop's pool-sized dispatch does.
  batched.evaluate_batch(std::span<core::EvalRequest>(requests.data(), 5));
  batched.evaluate_batch(std::span<core::EvalRequest>(requests.data() + 5, 1));
  batched.evaluate_batch(
      std::span<core::EvalRequest>(requests.data() + 6, kN - 6));

  for (std::size_t i = 0; i < kN; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(want[i].accuracy, got[i].accuracy);
    EXPECT_EQ(want[i].accuracy_stddev, got[i].accuracy_stddev);
    EXPECT_EQ(want[i].cost.energy_total_pj, got[i].cost.energy_total_pj);
    EXPECT_EQ(want[i].cost.latency_ns, got[i].cost.latency_ns);
    EXPECT_EQ(want[i].cost.area_total_mm2, got[i].cost.area_total_mm2);
    EXPECT_EQ(want[i].cost.programming_energy_pj,
              got[i].cost.programming_energy_pj);
    EXPECT_EQ(want[i].cost.weight_sigma, got[i].cost.weight_sigma);
    EXPECT_EQ(want[i].cost.max_adc_deficit_bits,
              got[i].cost.max_adc_deficit_bits);
    EXPECT_EQ(want[i].cost.valid, got[i].cost.valid);
  }
}

TEST(EvaluateBatch, SharedEvaluatorUnderManyThreadsMatchesReference) {
  // The contention-free core's end-to-end stress: one SurrogateEvaluator
  // (striped cost-plan + span memos) hammered concurrently from many
  // threads over a small design set. Under TSan this is the data-race
  // sentinel; everywhere it pins that concurrency never changes a value.
  core::ExperimentConfig cfg;
  core::SurrogateEvaluator shared(cfg.evaluator);

  const search::SearchSpace space{cfg.space};
  util::Rng design_rng(33);
  constexpr std::size_t kDesigns = 24;
  std::vector<search::Design> designs;
  designs.reserve(kDesigns);
  for (std::size_t i = 0; i < kDesigns; ++i) {
    designs.push_back(space.sample(design_rng));
  }

  // Reference evaluations from a fresh evaluator, sequentially.
  std::vector<core::Evaluation> want;
  want.reserve(kDesigns);
  {
    core::SurrogateEvaluator reference(cfg.evaluator);
    for (std::size_t i = 0; i < kDesigns; ++i) {
      util::Rng r(util::derive_seed(99, i));
      want.push_back(reference.evaluate(designs[i], r));
    }
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng order(static_cast<std::uint64_t>(t) + 7);
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t i = order.index(kDesigns);
        util::Rng r(util::derive_seed(99, i));
        const core::Evaluation got = shared.evaluate(designs[i], r);
        if (got.accuracy != want[i].accuracy ||
            got.cost.energy_total_pj != want[i].cost.energy_total_pj ||
            got.cost.latency_ns != want[i].cost.latency_ns) {
          mismatch = true;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
}

// ------------------------------------------------- optimizer batch contract

TEST(BatchContract, DefaultsDelegateToScalar) {
  // Two identically seeded LLM optimizers: one driven through the scalar
  // API, one through the (inherited default) batch API. Streams must match.
  core::ExperimentConfig cfg;
  cfg.seed = 5;
  auto scalar = core::make_optimizer(core::Strategy::kLcda, cfg);
  auto batched = core::make_optimizer(core::Strategy::kLcda, cfg);
  ASSERT_EQ(scalar->preferred_batch(), 1u);

  util::Rng r1(9), r2(9);
  for (int round = 0; round < 4; ++round) {
    const search::Design ds = scalar->propose(r1);
    const std::vector<search::Design> db = batched->propose_batch(1, r2);
    ASSERT_EQ(db.size(), 1u);
    EXPECT_EQ(ds, db[0]);

    search::Observation obs;
    obs.design = ds;
    obs.reward = 0.1 * round;
    obs.accuracy = 0.5;
    obs.valid = true;
    scalar->feedback(obs);
    batched->feedback_batch(std::span<const search::Observation>(&obs, 1));
  }
}

TEST(BatchContract, GeneticBatchIsGenerational) {
  search::GeneticOptimizer::Options gopts;
  gopts.population = 8;
  search::GeneticOptimizer ga{search::SearchSpace{}, gopts};
  EXPECT_EQ(ga.preferred_batch(), 8u);

  util::Rng rng(3);
  const auto seedlings = ga.propose_batch(8, rng);
  ASSERT_EQ(seedlings.size(), 8u);
  std::vector<search::Observation> obs(8);
  for (std::size_t i = 0; i < 8; ++i) {
    obs[i].design = seedlings[i];
    obs[i].reward = 0.01 * static_cast<double>(i);
    obs[i].valid = true;
  }
  ga.feedback_batch(obs);
  EXPECT_EQ(ga.population_size(), 8u);

  // Next generation breeds from the filled pool.
  const auto children = ga.propose_batch(8, rng);
  EXPECT_EQ(children.size(), 8u);
}

TEST(BatchContract, Nsga2BatchSortsOncePerGeneration) {
  search::Nsga2Optimizer::Options nopts;
  nopts.population = 8;
  search::Nsga2Optimizer nsga{search::SearchSpace{}, nopts};
  EXPECT_EQ(nsga.preferred_batch(), 8u);

  util::Rng rng(4);
  for (int gen = 0; gen < 3; ++gen) {
    const auto designs = nsga.propose_batch(8, rng);
    ASSERT_EQ(designs.size(), 8u);
    std::vector<search::Observation> obs(8);
    for (std::size_t i = 0; i < 8; ++i) {
      obs[i].design = designs[i];
      obs[i].accuracy = 0.5 + 0.01 * static_cast<double>(i);
      obs[i].energy_pj = 1e7;
      obs[i].reward = obs[i].accuracy;
      obs[i].valid = true;
    }
    nsga.feedback_batch(obs);
  }
  EXPECT_LE(nsga.archive_size(), 2u * 8u);
  EXPECT_GE(nsga.archive_size(), 8u);
}

TEST(BatchContract, RandomBatchMatchesScalarStream) {
  search::RandomOptimizer scalar{search::SearchSpace{}};
  search::RandomOptimizer batched{search::SearchSpace{}};
  util::Rng r1(11), r2(11);
  std::vector<search::Design> via_scalar;
  for (int i = 0; i < 12; ++i) {
    search::Design d = scalar.propose(r1);
    search::Observation obs;
    obs.design = d;
    scalar.feedback(obs);
    via_scalar.push_back(std::move(d));
  }
  const auto via_batch = batched.propose_batch(12, r2);
  ASSERT_EQ(via_batch.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(via_scalar[static_cast<std::size_t>(i)],
              via_batch[static_cast<std::size_t>(i)]);
  }
}

// -------------------------------------------------- engine determinism

void expect_identical_traces(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_EQ(a.episodes.size(), b.episodes.size());
  EXPECT_EQ(a.best_episode, b.best_episode);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.persistent_hits, b.persistent_hits);
  for (std::size_t i = 0; i < a.episodes.size(); ++i) {
    EXPECT_EQ(a.episodes[i].design, b.episodes[i].design) << "episode " << i;
    // Bit-for-bit: no tolerance.
    EXPECT_EQ(a.episodes[i].reward, b.episodes[i].reward) << "episode " << i;
    EXPECT_EQ(a.episodes[i].accuracy, b.episodes[i].accuracy) << "episode " << i;
    EXPECT_EQ(a.episodes[i].energy_pj, b.episodes[i].energy_pj) << "episode " << i;
  }
}

TEST(EngineDeterminism, ParallelTraceIsBitIdenticalToSequential) {
  for (const auto strategy :
       {core::Strategy::kLcda, core::Strategy::kNacimRl, core::Strategy::kRandom,
        core::Strategy::kGenetic, core::Strategy::kNsga2,
        core::Strategy::kAnnealing}) {
    core::ExperimentConfig sequential;
    sequential.seed = 77;
    sequential.parallelism = 1;
    core::ExperimentConfig parallel = sequential;
    parallel.parallelism = 4;
    const core::RunResult a = core::run_strategy(strategy, 30, sequential);
    const core::RunResult b = core::run_strategy(strategy, 30, parallel);
    SCOPED_TRACE(std::string(core::strategy_name(strategy)));
    expect_identical_traces(a, b);
  }
}

TEST(EngineDeterminism, ExplicitBatchingIsParallelismIndependent) {
  core::ExperimentConfig sequential;
  sequential.seed = 31;
  sequential.batch_size = 6;
  sequential.parallelism = 1;
  core::ExperimentConfig parallel = sequential;
  parallel.parallelism = 3;
  for (const auto strategy : {core::Strategy::kRandom, core::Strategy::kAnnealing}) {
    const core::RunResult a = core::run_strategy(strategy, 24, sequential);
    const core::RunResult b = core::run_strategy(strategy, 24, parallel);
    SCOPED_TRACE(std::string(core::strategy_name(strategy)));
    expect_identical_traces(a, b);
  }
}

TEST(EngineDeterminism, LlmOptimizerStaysScalarUnderForcedBatch) {
  // preferred_batch() == 1 caps any requested batch, so LCDA's history
  // semantics survive aggressive engine settings.
  core::ExperimentConfig scalar_cfg;
  scalar_cfg.seed = 19;
  core::ExperimentConfig forced = scalar_cfg;
  forced.parallelism = 4;
  forced.batch_size = 8;
  const core::RunResult a = core::run_strategy(core::Strategy::kLcda, 12, scalar_cfg);
  const core::RunResult b = core::run_strategy(core::Strategy::kLcda, 12, forced);
  expect_identical_traces(a, b);
}

TEST(EngineDeterminism, AggregateParallelMatchesSequential) {
  core::ExperimentConfig sequential;
  sequential.seed = 3;
  sequential.parallelism = 1;
  core::ExperimentConfig parallel = sequential;
  parallel.parallelism = 8;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto a = core::run_aggregate(core::Strategy::kRandom, 12, 8, sequential, nan);
  const auto b = core::run_aggregate(core::Strategy::kRandom, 12, 8, parallel, nan);
  ASSERT_EQ(a.running_best.size(), b.running_best.size());
  for (std::size_t e = 0; e < a.running_best.size(); ++e) {
    EXPECT_EQ(a.running_best[e].mean(), b.running_best[e].mean());
    EXPECT_EQ(a.running_best[e].stddev(), b.running_best[e].stddev());
  }
  EXPECT_EQ(a.final_best.mean(), b.final_best.mean());
  EXPECT_EQ(a.final_best.min(), b.final_best.min());
  EXPECT_EQ(a.final_best.max(), b.final_best.max());
}

TEST(EngineDeterminism, AggregateHandsLeftoverParallelismToInnerRuns) {
  // With fewer seeds than workers the spare parallelism flows into the
  // inner loops; it must not change the aggregate.
  core::ExperimentConfig sequential;
  sequential.seed = 6;
  sequential.parallelism = 1;
  core::ExperimentConfig parallel = sequential;
  parallel.parallelism = 8;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto a = core::run_aggregate(core::Strategy::kGenetic, 48, 2, sequential, nan);
  const auto b = core::run_aggregate(core::Strategy::kGenetic, 48, 2, parallel, nan);
  for (std::size_t e = 0; e < a.running_best.size(); ++e) {
    EXPECT_EQ(a.running_best[e].mean(), b.running_best[e].mean());
  }
  EXPECT_EQ(a.final_best.mean(), b.final_best.mean());
}

TEST(EngineDeterminism, SpeedupStudyParallelMatchesSequential) {
  core::ExperimentConfig sequential;
  sequential.seed = 8;
  sequential.lcda_episodes = 8;
  sequential.nacim_episodes = 60;
  sequential.parallelism = 1;
  core::ExperimentConfig parallel = sequential;
  parallel.parallelism = 4;
  const auto a = core::speedup_study(sequential, 4);
  const auto b = core::speedup_study(parallel, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].lcda_best, b[s].lcda_best);
    EXPECT_EQ(a[s].nacim_best, b[s].nacim_best);
    EXPECT_EQ(a[s].lcda_episodes, b[s].lcda_episodes);
    EXPECT_EQ(a[s].nacim_episodes, b[s].nacim_episodes);
  }
}

// ------------------------------------------- pipelined propose/evaluate

TEST(EnginePipelining, SequentialPipelinedAndParallelTracesAreBitIdentical) {
  // The three engine modes for every strategy: strictly sequential (no
  // pool, no pipelining), parallel with pipelining disabled, and parallel
  // with a deep pipeline. Traces AND cache counters must match bit for
  // bit — learning optimizers refuse lookahead and degrade to the strict
  // cadence; Random genuinely overlaps rounds and must still not drift.
  for (const auto strategy :
       {core::Strategy::kLcda, core::Strategy::kNacimRl, core::Strategy::kRandom,
        core::Strategy::kGenetic, core::Strategy::kNsga2,
        core::Strategy::kAnnealing}) {
    core::ExperimentConfig sequential;
    sequential.seed = 21;
    sequential.parallelism = 1;
    sequential.pipeline_depth = 0;
    core::ExperimentConfig strict_parallel = sequential;
    strict_parallel.parallelism = 4;
    core::ExperimentConfig pipelined = sequential;
    pipelined.parallelism = 4;
    pipelined.pipeline_depth = 8;

    const core::RunResult a = core::run_strategy(strategy, 30, sequential);
    const core::RunResult b = core::run_strategy(strategy, 30, strict_parallel);
    const core::RunResult c = core::run_strategy(strategy, 30, pipelined);
    SCOPED_TRACE(std::string(core::strategy_name(strategy)));
    expect_identical_traces(a, b);
    expect_identical_traces(a, c);
  }
}

TEST(EnginePipelining, CrossRoundDuplicatesCountAsCacheHits) {
  // A space so tiny that random search repeats designs constantly: in
  // pipelined mode a repeat of a design that is still being evaluated in
  // an earlier in-flight round must alias to that pending evaluation —
  // same values, same hit/miss counters as the strict schedule, where the
  // repeat would have been a plain cache hit.
  core::ExperimentConfig tiny;
  tiny.seed = 13;
  tiny.space.conv_layers = 2;
  tiny.space.channel_choices = {16, 32};
  tiny.space.kernel_choices = {3};
  tiny.space.hw.devices = {cim::DeviceType::kRram};
  tiny.space.hw.bits_per_cell = {2};
  tiny.space.hw.adc_bits = {6};
  tiny.space.hw.xbar_sizes = {128};
  tiny.space.hw.col_mux = {8};
  tiny.parallelism = 1;
  tiny.pipeline_depth = 0;
  core::ExperimentConfig pipelined = tiny;
  pipelined.parallelism = 4;
  pipelined.pipeline_depth = 8;

  const core::RunResult a = core::run_strategy(core::Strategy::kRandom, 40, tiny);
  const core::RunResult b =
      core::run_strategy(core::Strategy::kRandom, 40, pipelined);
  expect_identical_traces(a, b);
  EXPECT_GT(a.cache_hits, 0) << "space too large: no duplicates exercised";
  EXPECT_LT(a.cache_misses, 40);
}

TEST(EnginePipelining, GoldenPaperEnergyTraceSurvivesPipelinedEngine) {
  // The checked-in golden trace is LCDA (strictly sequential optimizer);
  // the pipelined engine must leave it untouched even at full depth.
  core::ExperimentConfig paper;
  paper.seed = 1;
  core::ExperimentConfig pipelined = paper;
  pipelined.parallelism = 4;
  pipelined.pipeline_depth = 8;
  const core::RunResult a = core::run_strategy(core::Strategy::kLcda, 20, paper);
  const core::RunResult b =
      core::run_strategy(core::Strategy::kLcda, 20, pipelined);
  expect_identical_traces(a, b);
}

// ------------------------------------------------------ evaluation cache

class FixedOptimizer final : public search::Optimizer {
 public:
  explicit FixedOptimizer(search::Design design) : design_(std::move(design)) {}
  search::Design propose(util::Rng&) override { return design_; }
  void feedback(const search::Observation&) override {}
  std::string name() const override { return "Fixed"; }

 private:
  search::Design design_;
};

search::Design fixed_design() {
  search::Design d;
  d.rollout = {{32, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}};
  return d;
}

TEST(EvalCache, HitsReturnIdenticalEvaluations) {
  FixedOptimizer opt(fixed_design());
  core::SurrogateEvaluator eval;
  core::CodesignLoop::Options lopts;
  lopts.episodes = 10;
  lopts.cache_evaluations = true;
  core::CodesignLoop loop(opt, eval, core::RewardFunction(llm::Objective::kEnergy),
                          lopts);
  util::Rng rng(55);
  const core::RunResult run = loop.run(rng);
  EXPECT_EQ(run.cache_misses, 1);
  EXPECT_EQ(run.cache_hits, 9);
  for (const auto& ep : run.episodes) {
    EXPECT_EQ(ep.accuracy, run.episodes[0].accuracy);
    EXPECT_EQ(ep.reward, run.episodes[0].reward);
  }
}

TEST(EvalCache, DisabledCacheReEvaluatesWithFreshNoise) {
  FixedOptimizer opt(fixed_design());
  core::SurrogateEvaluator eval;
  core::CodesignLoop::Options lopts;
  lopts.episodes = 6;
  lopts.cache_evaluations = false;
  core::CodesignLoop loop(opt, eval, core::RewardFunction(llm::Objective::kEnergy),
                          lopts);
  util::Rng rng(55);
  const core::RunResult run = loop.run(rng);
  EXPECT_EQ(run.cache_misses, 6);
  EXPECT_EQ(run.cache_hits, 0);
  // Monte-Carlo accuracy differs across episodes when re-evaluated.
  bool any_differs = false;
  for (const auto& ep : run.episodes) {
    if (ep.accuracy != run.episodes[0].accuracy) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(EvalCache, InBatchDuplicatesHitWithoutRacing) {
  FixedOptimizer opt(fixed_design());
  core::SurrogateEvaluator eval;
  core::CodesignLoop::Options lopts;
  lopts.episodes = 12;
  lopts.batch_size = 4;
  lopts.parallelism = 4;
  core::CodesignLoop loop(opt, eval, core::RewardFunction(llm::Objective::kEnergy),
                          lopts);
  util::Rng rng(56);
  const core::RunResult run = loop.run(rng);
  EXPECT_EQ(run.cache_misses, 1);
  EXPECT_EQ(run.cache_hits, 11);
  for (const auto& ep : run.episodes) {
    EXPECT_EQ(ep.accuracy, run.episodes[0].accuracy);
  }
}

class PipelineableFixedOptimizer final : public search::Optimizer {
 public:
  explicit PipelineableFixedOptimizer(search::Design design)
      : design_(std::move(design)) {}
  search::Design propose(util::Rng&) override { return design_; }
  void feedback(const search::Observation&) override {}
  std::size_t pipeline_lookahead() const override {
    return static_cast<std::size_t>(-1);
  }
  std::string name() const override { return "PipelineableFixed"; }

 private:
  search::Design design_;
};

TEST(EvalCache, PipelinedPendingDuplicatesResolveToOneEvaluation) {
  // With unlimited lookahead and scalar rounds the loop floods the pool
  // with in-flight rounds of the SAME design; all but the first must
  // alias the pending evaluation — one miss, identical values, exactly
  // like the strict schedule's cache hits.
  PipelineableFixedOptimizer opt(fixed_design());
  core::SurrogateEvaluator eval;
  core::CodesignLoop::Options lopts;
  lopts.episodes = 12;
  lopts.parallelism = 4;
  lopts.pipeline_depth = 8;
  core::CodesignLoop loop(opt, eval, core::RewardFunction(llm::Objective::kEnergy),
                          lopts);
  util::Rng rng(57);
  const core::RunResult run = loop.run(rng);
  EXPECT_EQ(run.cache_misses, 1);
  EXPECT_EQ(run.cache_hits, 11);
  for (const auto& ep : run.episodes) {
    EXPECT_EQ(ep.accuracy, run.episodes[0].accuracy);
    EXPECT_EQ(ep.reward, run.episodes[0].reward);
  }
}

// ------------------------------------------------------- RunResult guards

TEST(RunResult, EmptyRunYieldsSentinelBest) {
  core::RunResult empty;
  EXPECT_NO_THROW((void)empty.best());
  EXPECT_EQ(empty.best().episode, -1);
  EXPECT_EQ(empty.best_reward(), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(empty.reward_running_max().empty());
  EXPECT_EQ(empty.episodes_to_reach(0.0), -1);
}

TEST(RunResult, OutOfRangeBestEpisodeYieldsSentinel) {
  core::RunResult run;
  core::EpisodeRecord ep;
  ep.reward = 0.5;
  run.episodes.push_back(ep);
  run.best_episode = 7;  // corrupted index must not be UB
  EXPECT_EQ(run.best().episode, -1);
}

}  // namespace
}  // namespace lcda
