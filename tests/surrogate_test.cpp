#include <gtest/gtest.h>

#include "lcda/surrogate/accuracy_model.h"
#include "lcda/util/rng.h"
#include "lcda/util/stats.h"

namespace lcda::surrogate {
namespace {

using nn::ConvSpec;

std::vector<ConvSpec> uniform_rollout(int channels, int kernel) {
  return std::vector<ConvSpec>(6, ConvSpec{channels, kernel});
}

const std::vector<ConvSpec> kVgg = {{32, 3}, {32, 3}, {64, 3},
                                    {64, 3}, {128, 3}, {128, 3}};

TEST(AccuracyModel, CleanAccuracyInPlausibleBand) {
  const AccuracyModel model;
  for (int ch : {16, 32, 64, 128}) {
    const double acc = model.clean_accuracy(uniform_rollout(ch, 3));
    EXPECT_GT(acc, 0.3) << ch;
    EXPECT_LT(acc, 0.9) << ch;
  }
}

class WidthMonotonicity : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WidthMonotonicity, WiderIsCleanerUpToLuck) {
  const auto [narrow, wide] = GetParam();
  const AccuracyModel model;
  EXPECT_LT(model.clean_accuracy(uniform_rollout(narrow, 3)),
            model.clean_accuracy(uniform_rollout(wide, 3)) + 0.02)
      << narrow << " vs " << wide;
}

INSTANTIATE_TEST_SUITE_P(Pairs, WidthMonotonicity,
                         ::testing::Values(std::make_pair(16, 32),
                                           std::make_pair(32, 64),
                                           std::make_pair(64, 128),
                                           std::make_pair(16, 128)));

TEST(AccuracyModel, OneByOneKernelsCollapse) {
  const AccuracyModel model;
  // All-1x1 networks cannot extract spatial features: clean accuracy far
  // below the same widths with 3x3 kernels.
  EXPECT_LT(model.clean_accuracy(uniform_rollout(64, 1)),
            model.clean_accuracy(uniform_rollout(64, 3)) - 0.15);
}

TEST(AccuracyModel, LargerKernelsHelpCleanAccuracySlightly) {
  // GPT-4's prior is *correct on clean hardware*: larger kernels add a bit.
  const AccuracyModel model;
  EXPECT_GE(model.clean_accuracy(uniform_rollout(64, 7)),
            model.clean_accuracy(uniform_rollout(64, 3)));
}

TEST(AccuracyModel, ShrinkingChannelsHurts) {
  const AccuracyModel model;
  const std::vector<ConvSpec> growing = {{16, 3}, {24, 3}, {32, 3},
                                         {48, 3}, {64, 3}, {96, 3}};
  const std::vector<ConvSpec> shrinking = {{96, 3}, {64, 3}, {48, 3},
                                           {32, 3}, {24, 3}, {16, 3}};
  EXPECT_GT(model.clean_accuracy(growing),
            model.clean_accuracy(shrinking) + 0.03);
}

TEST(AccuracyModel, SensitivityGrowsWithKernel) {
  const AccuracyModel model;
  EXPECT_LT(model.sensitivity(uniform_rollout(64, 3)),
            model.sensitivity(uniform_rollout(64, 5)));
  EXPECT_LT(model.sensitivity(uniform_rollout(64, 5)),
            model.sensitivity(uniform_rollout(64, 7)));
}

TEST(AccuracyModel, SensitivityGrowsWithWidth) {
  const AccuracyModel model;
  EXPECT_LT(model.sensitivity(uniform_rollout(16, 3)),
            model.sensitivity(uniform_rollout(128, 3)));
}

TEST(AccuracyModel, NoisyNeverExceedsClean) {
  const AccuracyModel model;
  for (double sigma : {0.0, 0.05, 0.1, 0.2}) {
    EXPECT_LE(model.noisy_accuracy(kVgg, sigma, 0),
              model.clean_accuracy(kVgg) + 1e-12)
        << sigma;
  }
}

TEST(AccuracyModel, ZeroSigmaZeroDeficitEqualsClean) {
  const AccuracyModel model;
  EXPECT_DOUBLE_EQ(model.noisy_accuracy(kVgg, 0.0, 0), model.clean_accuracy(kVgg));
}

TEST(AccuracyModel, MoreVariationMoreDrop) {
  const AccuracyModel model;
  EXPECT_GT(model.noisy_accuracy(kVgg, 0.05, 0),
            model.noisy_accuracy(kVgg, 0.15, 0));
}

TEST(AccuracyModel, LargeKernelsLoseMoreUnderVariation) {
  // The paper's central CiM fact (Sec. IV-B): bigger kernels amplify device
  // variation, so the clean-accuracy kernel bonus inverts on noisy hardware.
  const AccuracyModel model;
  const double sigma = 0.14;  // RRAM-ish
  const double drop3 = model.clean_accuracy(uniform_rollout(64, 3)) -
                       model.noisy_accuracy(uniform_rollout(64, 3), sigma, 0);
  const double drop7 = model.clean_accuracy(uniform_rollout(64, 7)) -
                       model.noisy_accuracy(uniform_rollout(64, 7), sigma, 0);
  EXPECT_GT(drop7, drop3 * 1.5);
  EXPECT_GT(model.noisy_accuracy(uniform_rollout(64, 3), sigma, 0),
            model.noisy_accuracy(uniform_rollout(64, 7), sigma, 0));
}

TEST(AccuracyModel, AdcDeficitCostsAccuracy) {
  const AccuracyModel model;
  EXPECT_GT(model.noisy_accuracy(kVgg, 0.1, 0), model.noisy_accuracy(kVgg, 0.1, 3));
}

TEST(AccuracyModel, FloorHolds) {
  const AccuracyModel model;
  EXPECT_GE(model.noisy_accuracy(uniform_rollout(16, 7), 1.0, 10),
            model.options().floor);
}

TEST(AccuracyModel, DeterministicPerDesign) {
  const AccuracyModel model;
  EXPECT_DOUBLE_EQ(model.clean_accuracy(kVgg), model.clean_accuracy(kVgg));
  // Per-design luck differs between designs but is stable per design.
  const auto other = uniform_rollout(64, 3);
  EXPECT_DOUBLE_EQ(model.clean_accuracy(other), model.clean_accuracy(other));
}

TEST(AccuracyModel, SampleSpreadGrowsWithVariation) {
  const AccuracyModel model;
  auto spread = [&](double sigma) {
    util::Rng rng(3);
    util::OnlineStats stats;
    for (int i = 0; i < 400; ++i) {
      stats.add(model.noisy_accuracy_sample(kVgg, sigma, 0, rng));
    }
    return stats.stddev();
  };
  EXPECT_LT(spread(0.02), spread(0.2));
}

TEST(AccuracyModel, SampleMeanMatchesNoisyAccuracy) {
  const AccuracyModel model;
  util::Rng rng(4);
  util::OnlineStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.add(model.noisy_accuracy_sample(kVgg, 0.1, 0, rng));
  }
  EXPECT_NEAR(stats.mean(), model.noisy_accuracy(kVgg, 0.1, 0), 0.01);
}

TEST(AccuracyModel, RejectsBadInputs) {
  const AccuracyModel model;
  EXPECT_THROW((void)model.clean_accuracy({}), std::invalid_argument);
  EXPECT_THROW((void)model.clean_accuracy({{0, 3}}), std::invalid_argument);
  EXPECT_THROW((void)model.noisy_accuracy(kVgg, -0.1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lcda::surrogate
