// End-to-end integration tests: the full LCDA pipeline (prompt -> simulated
// GPT-4 -> parser -> evaluators -> reward -> feedback) and the paper's
// qualitative claims, exercised at reduced scale.
#include <gtest/gtest.h>

#include "lcda/core/evaluator.h"
#include "lcda/core/experiment.h"
#include "lcda/core/pareto.h"
#include "lcda/llm/llm_optimizer.h"
#include "lcda/llm/simulated_gpt4.h"
#include "lcda/noise/monte_carlo.h"
#include "lcda/noise/variation.h"

namespace lcda {
namespace {

using core::ExperimentConfig;
using core::RunResult;
using core::Strategy;

// ----------------------------------------------------- paper-claim checks

TEST(Integration, Fig3ColdStart_LcdaStartsHighNacimStartsLow) {
  ExperimentConfig cfg;
  cfg.seed = 21;
  const RunResult lcda = core::run_strategy(Strategy::kLcda, 20, cfg);
  const RunResult nacim = core::run_strategy(Strategy::kNacimRl, 20, cfg);
  // Paper Fig. 3a: LCDA's very first design is already strong.
  EXPECT_GT(lcda.episodes[0].reward, 0.2);
  // Over the first 20 episodes LCDA's best clearly beats NACIM's.
  EXPECT_GT(lcda.best_reward(), nacim.best_reward() + 0.05);
}

TEST(Integration, Fig3Convergence_NacimApproachesLcdaLate) {
  ExperimentConfig cfg;
  cfg.seed = 22;
  const RunResult lcda = core::run_strategy(Strategy::kLcda, 20, cfg);
  const RunResult nacim = core::run_strategy(Strategy::kNacimRl, 500, cfg);
  const auto nacim_max = nacim.reward_running_max();
  // NACIM learns: the policy's average reward late in the run clearly beats
  // its cold-start average ...
  auto mean_rewards = [&](int from, int to) {
    double s = 0.0;
    for (int i = from; i < to; ++i) {
      s += nacim.episodes[static_cast<std::size_t>(i)].reward;
    }
    return s / (to - from);
  };
  EXPECT_GT(mean_rewards(450, 500), mean_rewards(0, 50) + 0.1);
  // ... and ends within reach of LCDA's 20-episode best (paper: "gradually
  // approaches LCDA's reward values").
  EXPECT_GT(nacim_max[499], 0.8 * lcda.best_reward());
}

TEST(Integration, Fig2Shape_NacimExploresLowAccuracyCorner) {
  // Paper Sec. IV-A: "NACIM prioritizes candidates with lower energy
  // consumption, leading to designs with somewhat diminished accuracy.
  // Conversely, LCDA presents ... all yielding a reasonably high level of
  // accuracy." Check the minimum accuracy over valid candidates.
  ExperimentConfig cfg;
  cfg.seed = 23;
  const RunResult lcda = core::run_strategy(Strategy::kLcda, 20, cfg);
  const RunResult nacim = core::run_strategy(Strategy::kNacimRl, 500, cfg);
  double lcda_min_acc = 1.0, nacim_min_acc = 1.0;
  for (const auto& ep : lcda.episodes) {
    if (ep.valid) lcda_min_acc = std::min(lcda_min_acc, ep.accuracy);
  }
  for (const auto& ep : nacim.episodes) {
    if (ep.valid) nacim_min_acc = std::min(nacim_min_acc, ep.accuracy);
  }
  EXPECT_GT(lcda_min_acc, nacim_min_acc + 0.05);
  EXPECT_GT(lcda_min_acc, 0.4) << "every LCDA design keeps reasonable accuracy";
}

TEST(Integration, Fig5Ablation_NaiveLosesToLcda) {
  ExperimentConfig cfg;
  cfg.seed = 24;
  const RunResult lcda = core::run_strategy(Strategy::kLcda, 20, cfg);
  const RunResult naive = core::run_strategy(Strategy::kLcdaNaive, 20, cfg);
  EXPECT_GT(lcda.best_reward(), naive.best_reward());
  // Front quality: LCDA's dominated area beats the naive variant's.
  const auto lp = core::tradeoff_points(lcda, llm::Objective::kEnergy);
  const auto np = core::tradeoff_points(naive, llm::Objective::kEnergy);
  const double ref = 4e7;
  EXPECT_GT(core::dominated_area(lp.points, ref),
            core::dominated_area(np.points, ref));
}

TEST(Integration, Fig4_LatencyObjectiveHumblesLcda) {
  // Paper Sec. IV-B: under the latency objective LCDA "falls short in
  // providing designs that surpass those provided by NACIM" because of the
  // wrong kernel priors. NACIM with its full budget must reach a best
  // reward at least on par with LCDA's.
  ExperimentConfig cfg;
  cfg.seed = 25;
  cfg.objective = llm::Objective::kLatency;
  const RunResult lcda = core::run_strategy(Strategy::kLcda, 20, cfg);
  const RunResult nacim = core::run_strategy(Strategy::kNacimRl, 500, cfg);
  EXPECT_GE(nacim.best_reward(), lcda.best_reward() - 0.05);
}

TEST(Integration, SpeedupIsAtLeastPaperScale) {
  // The headline: comparable quality at >= an order of magnitude fewer
  // episodes. (The paper reports 25x from 500/20; our simulated expert
  // reaches the threshold even faster, which only strengthens the claim.)
  ExperimentConfig cfg;
  cfg.seed = 26;
  const core::SpeedupReport rep = core::measure_speedup(cfg);
  ASSERT_GT(rep.lcda_episodes, 0) << "LCDA must reach the threshold";
  ASSERT_GT(rep.nacim_episodes, 0);
  EXPECT_GE(rep.speedup(), 10.0);
  EXPECT_LE(rep.lcda_episodes, 20) << "within the paper's LCDA budget";
}

TEST(Integration, InvalidDesignsGetMinusOneAndExpertRecovers) {
  // Force tiny area budget so everything big is invalid; the loop must keep
  // running and the expert must steer toward valid designs.
  ExperimentConfig cfg;
  cfg.seed = 27;
  cfg.evaluator.cost.mapper.max_replication = 1;
  cfg.space.backbone.hidden = 1024;
  auto optimizer = core::make_optimizer(Strategy::kLcda, cfg);
  core::SurrogateEvaluator::Options eopts = cfg.evaluator;
  core::SurrogateEvaluator evaluator(eopts);
  core::RewardFunction reward(llm::Objective::kEnergy);
  core::CodesignLoop::Options lopts;
  lopts.episodes = 12;
  core::CodesignLoop loop(*optimizer, evaluator, reward, lopts);
  util::Rng rng(27);
  const RunResult run = loop.run(rng);
  for (const auto& ep : run.episodes) {
    if (!ep.valid) EXPECT_DOUBLE_EQ(ep.reward, -1.0);
  }
}

// ----------------------------------------------- real-training pipeline

TEST(Integration, TrainedEvaluatorEndToEnd) {
  // The faithful pipeline at miniature scale: noise-injection training on
  // the synthetic dataset + Monte-Carlo variation evaluation.
  core::TrainedEvaluator::Options opts;
  opts.dataset.image_size = 16;
  opts.dataset.num_classes = 4;
  opts.dataset.train_per_class = 12;
  opts.dataset.test_per_class = 6;
  opts.dataset.seed = 99;
  opts.backbone.hidden = 32;
  opts.backbone.pool_after = {0, 2};  // 16 -> 8 -> 4
  opts.epochs = 4;
  opts.monte_carlo_samples = 4;
  core::TrainedEvaluator evaluator(opts);

  search::Design d;
  d.rollout = {{16, 3}, {16, 3}, {24, 3}, {24, 3}};
  d.hw.device = cim::DeviceType::kFefet;  // low-variation operating point
  d.hw.bits_per_cell = 1;
  util::Rng rng(31);
  const core::Evaluation ev = evaluator.evaluate(d, rng);

  EXPECT_GT(ev.accuracy, 0.3) << "4 classes, chance = 0.25";
  EXPECT_LE(ev.accuracy, 1.0);
  EXPECT_TRUE(ev.cost.valid);
  EXPECT_GT(ev.cost.energy_total_pj, 0.0);
}

TEST(Integration, TrainedAndSurrogateAgreeOnVariationOrdering) {
  // Both evaluators must agree that high-variation hardware is worse for
  // the same topology (RRAM b4 vs FeFET b1).
  core::TrainedEvaluator::Options opts;
  opts.dataset.image_size = 16;
  opts.dataset.num_classes = 4;
  opts.dataset.train_per_class = 12;
  opts.dataset.test_per_class = 8;
  opts.dataset.seed = 100;
  opts.backbone.hidden = 32;
  opts.backbone.pool_after = {0, 2};
  opts.epochs = 3;
  opts.monte_carlo_samples = 6;
  core::TrainedEvaluator trained(opts);

  search::Design noisy;
  noisy.rollout = {{16, 3}, {16, 3}, {24, 3}, {24, 3}};
  noisy.hw.device = cim::DeviceType::kRram;
  noisy.hw.bits_per_cell = 4;
  search::Design quiet = noisy;
  quiet.hw.device = cim::DeviceType::kFefet;
  quiet.hw.bits_per_cell = 1;

  util::Rng r1(32), r2(32);
  const double acc_noisy = trained.evaluate(noisy, r1).accuracy;
  const double acc_quiet = trained.evaluate(quiet, r2).accuracy;
  EXPECT_GT(acc_quiet, acc_noisy - 0.05)
      << "low-variation hardware should not be clearly worse";
}

TEST(Integration, TranscriptIsExplainable) {
  // The paper's future-work claim: the LLM dialogue is human-readable.
  // Verify the transcript carries real prompts and responses.
  ExperimentConfig cfg;
  cfg.seed = 33;
  search::SearchSpace space(cfg.space);
  auto client = std::make_shared<llm::SimulatedGpt4>();
  llm::LlmOptimizer optimizer(space, client);
  core::SurrogateEvaluator evaluator(cfg.evaluator);
  core::RewardFunction reward(llm::Objective::kEnergy);
  core::CodesignLoop::Options lopts;
  lopts.episodes = 3;
  core::CodesignLoop loop(optimizer, evaluator, reward, lopts);
  util::Rng rng(33);
  (void)loop.run(rng);

  ASSERT_GE(optimizer.transcript().size(), 3u);
  const auto& first = optimizer.transcript().front();
  EXPECT_NE(first.prompt.find("neural architecture search"), std::string::npos);
  EXPECT_FALSE(first.response.empty());
  // Episode >= 1 prompts must carry the episode-0 result.
  const auto& second = optimizer.transcript()[1];
  EXPECT_NE(second.prompt.find("performance="), std::string::npos);
}

}  // namespace
}  // namespace lcda
