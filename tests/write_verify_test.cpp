#include <gtest/gtest.h>

#include <cmath>

#include "lcda/noise/write_verify.h"
#include "lcda/util/stats.h"

namespace lcda::noise {
namespace {

nn::Param make_param(std::vector<float> values) {
  const int n = static_cast<int>(values.size());
  nn::Param p;
  p.value = nn::Tensor({n}, std::move(values));
  p.grad = nn::Tensor(p.value.shape());
  return p;
}

TEST(VerifyThreshold, QuantileSemantics) {
  const std::vector<float> w = {0.1f, -0.2f, 0.3f, -0.4f, 0.5f,
                                -0.6f, 0.7f, -0.8f, 0.9f, -1.0f};
  // fraction 0.2 -> verify the top-2 magnitudes (0.9, 1.0).
  const float thr = verify_threshold(w, 0.2);
  int verified = 0;
  for (float x : w) verified += std::abs(x) >= thr ? 1 : 0;
  EXPECT_EQ(verified, 2);
}

TEST(VerifyThreshold, EdgeFractions) {
  const std::vector<float> w = {1.0f, 2.0f, 3.0f};
  EXPECT_TRUE(std::isinf(verify_threshold(w, 0.0)));  // nothing verified
  EXPECT_LT(verify_threshold(w, 1.0), 0.0f);          // everything verified
  EXPECT_TRUE(std::isinf(verify_threshold({}, 0.5)));
}

TEST(SelectiveWriteVerify, RejectsBadOptions) {
  const VariationModel vm(0.1);
  SelectiveWriteVerify::Options bad;
  bad.fraction = 1.5;
  EXPECT_THROW(SelectiveWriteVerify(vm, bad), std::invalid_argument);
  bad = {};
  bad.verified_sigma_scale = -0.1;
  EXPECT_THROW(SelectiveWriteVerify(vm, bad), std::invalid_argument);
  bad = {};
  bad.pulses_per_verified_device = 0.5;
  EXPECT_THROW(SelectiveWriteVerify(vm, bad), std::invalid_argument);
}

TEST(SelectiveWriteVerify, ProtectsLargeWeights) {
  // Large weights get the reduced sigma; small ones the raw sigma.
  std::vector<float> values(4000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = i % 2 == 0 ? 1.0f : 0.01f;  // half large, half small
  }
  nn::Param p = make_param(values);
  std::vector<nn::Param*> params = {&p};

  const VariationModel vm(0.1);
  SelectiveWriteVerify::Options opts;
  opts.fraction = 0.5;  // exactly the large half
  opts.verified_sigma_scale = 0.1;
  const SelectiveWriteVerify swv(vm, opts);
  util::Rng rng(1);
  swv.perturb_params(params, rng);

  util::OnlineStats large_err, small_err;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double err = p.value[i] - values[i];
    (i % 2 == 0 ? large_err : small_err).add(err);
  }
  // Raw sigma (range 1.0): 0.1; verified: 0.01.
  EXPECT_NEAR(large_err.stddev(), 0.01, 0.003);
  EXPECT_NEAR(small_err.stddev(), 0.1, 0.01);
}

TEST(SelectiveWriteVerify, FractionZeroMatchesPlainVariation) {
  std::vector<float> values(2000);
  util::Rng init(2);
  for (auto& v : values) v = static_cast<float>(init.uniform(-1, 1));

  nn::Param a = make_param(values);
  nn::Param b = make_param(values);
  std::vector<nn::Param*> pa = {&a}, pb = {&b};

  const VariationModel vm(0.08);
  SelectiveWriteVerify::Options opts;
  opts.fraction = 0.0;
  const SelectiveWriteVerify swv(vm, opts);
  util::Rng r1(3), r2(3);
  swv.perturb_params(pa, r1);
  vm.perturb_params(pb, r2);
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_FLOAT_EQ(a.value[i], b.value[i]);
  }
}

TEST(SelectiveWriteVerify, HigherFractionLowerTotalError) {
  std::vector<float> values(3000);
  util::Rng init(4);
  for (auto& v : values) v = static_cast<float>(init.normal(0.0, 0.3));

  auto total_error = [&](double fraction) {
    nn::Param p = make_param(values);
    std::vector<nn::Param*> params = {&p};
    SelectiveWriteVerify::Options opts;
    opts.fraction = fraction;
    const SelectiveWriteVerify swv(VariationModel(0.1), opts);
    util::Rng rng(5);
    swv.perturb_params(params, rng);
    double err = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      err += (p.value[i] - values[i]) * (p.value[i] - values[i]);
    }
    return err;
  };
  EXPECT_LT(total_error(0.5), total_error(0.1));
  EXPECT_LT(total_error(1.0), total_error(0.5));
}

TEST(SelectiveWriteVerify, ProgrammingCostAccounting) {
  const SelectiveWriteVerify swv(VariationModel(0.1),
                                 {.fraction = 0.25,
                                  .verified_sigma_scale = 0.1,
                                  .pulses_per_verified_device = 8.0});
  const cim::DeviceModel dev = cim::device_model(cim::DeviceType::kRram);
  const auto cost = swv.programming_cost(/*total_weights=*/1000,
                                         /*cells_per_weight=*/4, dev);
  EXPECT_EQ(cost.total_devices, 4000);
  EXPECT_EQ(cost.verified_devices, 1000);
  EXPECT_DOUBLE_EQ(cost.write_pulses, 3000.0 + 1000.0 * 8.0);
  EXPECT_DOUBLE_EQ(cost.energy_pj, cost.write_pulses * dev.write_energy_pj);
  EXPECT_THROW((void)swv.programming_cost(-1, 4, dev), std::invalid_argument);
}

TEST(SelectiveWriteVerify, SwimClaim_SmallFractionMostOfTheBenefit) {
  // SWIM's headline: verifying a small fraction of (magnitude-selected)
  // weights recovers a large share of the full-verification benefit, at a
  // fraction of the pulses. Check on the weight-error energy metric for a
  // realistic (normal) weight distribution.
  std::vector<float> values(8000);
  util::Rng init(6);
  for (auto& v : values) v = static_cast<float>(init.normal(0.0, 0.25));

  auto error_energy = [&](double fraction) {
    nn::Param p = make_param(values);
    std::vector<nn::Param*> params = {&p};
    SelectiveWriteVerify::Options opts;
    opts.fraction = fraction;
    const SelectiveWriteVerify swv(VariationModel(0.1), opts);
    util::Rng rng(7);
    swv.perturb_params(params, rng);
    // Output-referred error: weight error weighted by activation reach is
    // approximated by plain squared error here.
    double err = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      err += (p.value[i] - values[i]) * (p.value[i] - values[i]);
    }
    return err;
  };
  const double none = error_energy(0.0);
  const double some = error_energy(0.25);
  const double all = error_energy(1.0);
  const double recovered = (none - some) / (none - all);
  EXPECT_GT(recovered, 0.20) << "25% verification must recover >20% of the "
                                "full benefit";
  // ...while costing only ~(0.75 + 0.25*8)/8 = 34% of full-verify pulses.
}

}  // namespace
}  // namespace lcda::noise
