// Randomized property sweeps across the whole co-design space: invariants
// that must hold for EVERY design the optimizers can propose, checked on
// hundreds of uniformly sampled points. Plus tests for the transcript
// writer and data augmentation added in the extension batches.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "lcda/core/evaluator.h"
#include "lcda/core/reward.h"
#include "lcda/data/loader.h"
#include "lcda/llm/llm_optimizer.h"
#include "lcda/llm/simulated_gpt4.h"
#include "lcda/llm/transcript.h"
#include "lcda/surrogate/accuracy_model.h"

namespace lcda {
namespace {

class DesignSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesignSweep, CostModelInvariantsHoldEverywhere) {
  const search::SearchSpace space;
  const nn::BackboneOptions bb;
  util::Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const search::Design d = space.sample(rng);
    const cim::CostEvaluator eval(d.hw);
    const cim::CostReport rep = eval.evaluate(d.rollout, bb);

    // Finiteness and positivity.
    ASSERT_TRUE(std::isfinite(rep.energy_total_pj)) << d.describe();
    ASSERT_GT(rep.energy_total_pj, 0.0) << d.describe();
    ASSERT_GT(rep.latency_ns, 0.0);
    ASSERT_GT(rep.area_total_mm2, 0.0);
    ASSERT_GE(rep.leakage_mw, 0.0);
    ASSERT_GT(rep.total_cells, 0);

    // Breakdown additivity.
    ASSERT_NEAR(rep.energy_total_pj,
                rep.energy_adc_pj + rep.energy_xbar_pj + rep.energy_dac_pj +
                    rep.energy_digital_pj + rep.energy_buffer_pj +
                    rep.energy_noc_pj,
                rep.energy_total_pj * 1e-9);

    // Validity flag consistent with the budget.
    ASSERT_EQ(rep.valid, rep.area_total_mm2 <= d.hw.area_budget_mm2);

    // Mapping sanity for every layer.
    for (const auto& lm : rep.mapping.layers) {
      ASSERT_GE(lm.replication, 1);
      ASSERT_GT(lm.utilization(), 0.0);
      ASSERT_LE(lm.utilization(), 1.0 + 1e-12);
      ASSERT_GE(lm.adc_bits_required, 1);
    }
  }
}

TEST_P(DesignSweep, SurrogateInvariantsHoldEverywhere) {
  const search::SearchSpace space;
  const surrogate::AccuracyModel model;
  const nn::BackboneOptions bb;
  util::Rng rng(GetParam() + 100);
  for (int i = 0; i < 60; ++i) {
    const search::Design d = space.sample(rng);
    const cim::CostEvaluator eval(d.hw);
    const cim::CostReport rep = eval.evaluate(d.rollout, bb);

    const double clean = model.clean_accuracy(d.rollout);
    const double noisy =
        model.noisy_accuracy(d.rollout, rep.weight_sigma, rep.max_adc_deficit_bits);
    ASSERT_GE(clean, model.options().floor);
    ASSERT_LE(clean, 0.99);
    ASSERT_LE(noisy, clean + 1e-12) << d.describe();
    ASSERT_GE(noisy, model.options().floor);

    // Monte-Carlo samples stay within bounds.
    util::Rng sample_rng = rng.fork();
    for (int s = 0; s < 4; ++s) {
      const double sample = model.noisy_accuracy_sample(
          d.rollout, rep.weight_sigma, rep.max_adc_deficit_bits, sample_rng);
      ASSERT_GE(sample, model.options().floor);
      ASSERT_LE(sample, 0.99);
    }
  }
}

TEST_P(DesignSweep, RewardInvariantsHoldEverywhere) {
  const search::SearchSpace space;
  core::SurrogateEvaluator evaluator;
  const core::RewardFunction r_ae(llm::Objective::kEnergy);
  const core::RewardFunction r_al(llm::Objective::kLatency);
  util::Rng rng(GetParam() + 200);
  for (int i = 0; i < 40; ++i) {
    const search::Design d = space.sample(rng);
    util::Rng eval_rng = rng.fork();
    const core::Evaluation ev = evaluator.evaluate(d, eval_rng);
    const double ae = r_ae(ev.accuracy, ev.cost);
    const double al = r_al(ev.accuracy, ev.cost);
    if (!ev.cost.valid) {
      ASSERT_EQ(ae, core::kInvalidReward);
      ASSERT_EQ(al, core::kInvalidReward);
      continue;
    }
    // Eq. (1): bounded above by accuracy, below by accuracy - sqrt(Emax/8e7)
    ASSERT_LT(ae, ev.accuracy);
    ASSERT_TRUE(std::isfinite(ae));
    // Eq. (2): strictly above accuracy (FPS term is positive).
    ASSERT_GT(al, ev.accuracy);
    ASSERT_TRUE(std::isfinite(al));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesignSweep, ::testing::Values(11, 22, 33));

// ------------------------------------------------------------ Transcript

TEST(Transcript, MarkdownCarriesPromptAndResponse) {
  const search::SearchSpace space;
  auto client = std::make_shared<llm::SimulatedGpt4>();
  llm::LlmOptimizer optimizer(space, client);
  util::Rng rng(1);
  for (int ep = 0; ep < 3; ++ep) {
    const search::Design d = optimizer.propose(rng);
    search::Observation obs;
    obs.design = d;
    obs.reward = 0.3 + 0.01 * ep;
    optimizer.feedback(obs);
  }
  std::ostringstream os;
  llm::write_transcript_markdown(os, optimizer, "test transcript");
  const std::string md = os.str();
  EXPECT_NE(md.find("# test transcript"), std::string::npos);
  EXPECT_NE(md.find("## Exchange 0"), std::string::npos);
  EXPECT_NE(md.find("## Exchange 2"), std::string::npos);
  EXPECT_NE(md.find("> You are an expert"), std::string::npos);
  EXPECT_NE(md.find("```"), std::string::npos);
  EXPECT_NE(md.find("*parsed: ok"), std::string::npos);
  EXPECT_NE(md.find("3 evaluated design(s)"), std::string::npos);
}

// ---------------------------------------------------------- Augmentation

TEST(Augmentation, MirrorsAboutVerticalAxis) {
  data::SyntheticCifarOptions dopts;
  dopts.image_size = 8;
  dopts.num_classes = 2;
  dopts.train_per_class = 8;
  dopts.test_per_class = 2;
  dopts.seed = 5;
  const auto data = data::make_synthetic_cifar(dopts);

  // With augmentation, across many epochs some batches must contain the
  // mirrored version of a source image; every image must be either the
  // original or its exact mirror.
  data::DataLoader loader(data.train, 16, /*shuffle=*/false, /*augment=*/true);
  util::Rng rng(6);
  const std::size_t img = 3u * 8 * 8;
  int mirrored = 0, plain = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    loader.start_epoch(rng);
    data::Batch b = loader.next();
    for (int i = 0; i < b.size(); ++i) {
      const float* got = b.images.raw() + i * img;
      const float* src = data.train.images.raw() + i * img;
      bool is_plain = true, is_mirror = true;
      for (int c = 0; c < 3 && (is_plain || is_mirror); ++c) {
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            const float v = got[(c * 8 + y) * 8 + x];
            if (v != src[(c * 8 + y) * 8 + x]) is_plain = false;
            if (v != src[(c * 8 + y) * 8 + (7 - x)]) is_mirror = false;
          }
        }
      }
      ASSERT_TRUE(is_plain || is_mirror) << "image must be original or mirror";
      // Symmetric images count as both; prefer plain.
      if (is_plain) {
        ++plain;
      } else {
        ++mirrored;
      }
    }
  }
  EXPECT_GT(mirrored, 0);
  EXPECT_GT(plain, 0);
}

TEST(Augmentation, OffByDefaultPreservesImages) {
  data::SyntheticCifarOptions dopts;
  dopts.image_size = 8;
  dopts.num_classes = 2;
  dopts.train_per_class = 4;
  dopts.test_per_class = 2;
  dopts.seed = 7;
  const auto data = data::make_synthetic_cifar(dopts);
  data::DataLoader loader(data.train, 8, /*shuffle=*/false);
  util::Rng rng(8);
  loader.start_epoch(rng);
  const data::Batch b = loader.next();
  for (std::size_t i = 0; i < b.images.size(); ++i) {
    ASSERT_EQ(b.images[i], data.train.images[i]);
  }
}

}  // namespace
}  // namespace lcda
