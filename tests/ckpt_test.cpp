// The checkpoint subsystem: fault-spec parsing, value codecs, snapshot
// atomicity and generation fallback, changelog torn-tail tolerance, and —
// the load-bearing contract — checkpointed, killed-and-resumed runs
// byte-identical to uninterrupted ones for every serializable strategy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lcda/ckpt/checkpoint.h"
#include "lcda/core/report.h"
#include "lcda/core/scenario.h"
#include "lcda/util/fault.h"
#include "lcda/util/logging.h"
#include "lcda/util/subprocess.h"

namespace {

using namespace lcda;

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("lcda_ckpt_test_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// A small config with per-episode rounds, so checkpoint boundaries land
/// exactly on the cadence and every strategy produces several generations
/// within a handful of episodes.
core::ExperimentConfig small_config() {
  core::ExperimentConfig config = core::scenario_by_name("paper-energy").config;
  config.batch_size = 1;
  return config;
}

/// Serializable strategies — every optimizer except the LLM-driven ones
/// (whose state lives inside the simulated client).
const std::vector<core::Strategy>& serializable_strategies() {
  static const std::vector<core::Strategy> kAll = {
      core::Strategy::kRandom,    core::Strategy::kGenetic,
      core::Strategy::kNsga2,     core::Strategy::kAnnealing,
      core::Strategy::kNacimRl,
  };
  return kAll;
}

/// Everything a run's byte contract covers: the full JSON document plus
/// the trace CSV.
std::string render(const core::RunResult& run, std::string_view label) {
  std::ostringstream csv;
  core::write_run_csv(csv, run, label);
  return core::run_to_json(run, label).dump(2) + "\n---\n" + csv.str();
}

/// The snapshot files of a study directory, as (episode, path) sorted by
/// episode ascending.
std::vector<std::pair<int, std::filesystem::path>> list_snapshots(
    const std::filesystem::path& study_dir) {
  std::vector<std::pair<int, std::filesystem::path>> snaps;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(study_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 10 && name.rfind("snap-", 0) == 0 &&
        name.substr(name.size() - 5) == ".ckpt") {
      snaps.emplace_back(std::atoi(name.c_str() + 5), entry.path());
    }
  }
  std::sort(snaps.begin(), snaps.end());
  return snaps;
}

void remove_generation(const std::filesystem::path& ckpt_path) {
  std::filesystem::path log = ckpt_path;
  log.replace_extension(".log");
  std::filesystem::remove(ckpt_path);
  std::filesystem::remove(log);
}

// ------------------------------------------------------------- LCDA_FAULT

TEST(Fault, GrammarParsesEveryKindAndScope) {
  std::string error;
  const auto f = util::FaultInjector::parse(
      "kill@seed:2; sleep=400@seed:0,1; wedge@seed:3; kill@episode:9; "
      "torn-snapshot@episode:4; torn-log@episode:5",
      &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(f.specs().size(), 6u);

  EXPECT_TRUE(f.kill_at_seed(2, /*attempt=*/0));
  EXPECT_FALSE(f.kill_at_seed(2, /*attempt=*/1));  // attempt-0 only
  EXPECT_FALSE(f.kill_at_seed(1, 0));
  EXPECT_TRUE(f.wedge_at_seed(3, 0));
  EXPECT_FALSE(f.wedge_at_seed(3, 1));
  EXPECT_EQ(f.sleep_ms_at_seed(0), 400);
  EXPECT_EQ(f.sleep_ms_at_seed(1), 400);
  EXPECT_EQ(f.sleep_ms_at_seed(2), 0);

  util::FaultInjector::set_attempt(0);
  EXPECT_EQ(f.kill_episode(), 9);
  EXPECT_EQ(f.torn_snapshot_episode(), 4);
  EXPECT_EQ(f.torn_log_episode(), 5);
  // Episode faults disarm on retries through the process-wide attempt.
  util::FaultInjector::set_attempt(1);
  EXPECT_EQ(f.kill_episode(), -1);
  EXPECT_EQ(f.torn_snapshot_episode(), -1);
  util::FaultInjector::set_attempt(0);
}

TEST(Fault, MalformedClausesAreDroppedNotFatal) {
  const char* kBad[] = {
      "explode@seed:1",        // unknown kind
      "kill-seed:1",           // missing '@'
      "kill@turn:1",           // unknown scope
      "kill@seed",             // missing ':'
      "kill@seed:",            // empty target list
      "kill@seed:x",           // non-numeric
      "sleep@seed:1",          // sleep without '=<ms>'
      "kill=5@seed:1",         // kill does not take a value
      "wedge@episode:1",       // wedge is seed-scoped
      "torn-log@seed:1",       // torn-log is episode-scoped
      "kill@episode:1,2",      // episode scope takes a single episode
  };
  for (const char* text : kBad) {
    std::string error;
    const auto f = util::FaultInjector::parse(text, &error);
    EXPECT_TRUE(f.specs().empty()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  // A good clause next to a bad one still arms.
  std::string error;
  const auto f = util::FaultInjector::parse("bogus@seed:1;kill@seed:7", &error);
  EXPECT_FALSE(error.empty());
  ASSERT_EQ(f.specs().size(), 1u);
  EXPECT_TRUE(f.kill_at_seed(7, 0));
}

// ----------------------------------------------------------------- codecs

TEST(Codec, SnapshotPayloadRoundTripsBitExactly) {
  // A real run supplies designs, evaluations, and counters with realistic
  // value ranges (NaN-free doubles, full design structs).
  core::ExperimentConfig config = small_config();
  const core::RunResult run =
      core::run_strategy(core::Strategy::kGenetic, 6, config);
  ASSERT_EQ(run.episodes.size(), 6u);

  util::Rng rng(1234);
  (void)rng.normal();  // leave a spare normal in flight
  core::LoopSnapshot snap;
  snap.next_episode = 6;
  snap.rng_state = rng.state();
  const std::string blob = "opaque optimizer bytes \x01\x02\x00 tail";
  snap.optimizer_state = &blob;
  snap.result = &run;
  std::vector<core::CacheLogEntry> cache_log;
  for (const core::EpisodeRecord& ep : run.episodes) {
    core::Evaluation ev;
    ev.cost.valid = ep.valid;
    ev.accuracy = ep.accuracy;
    cache_log.push_back({ep.design.hash(), ev, true});
  }
  cache_log.front().published = false;
  snap.cache_log = &cache_log;

  const std::string payload = ckpt::encode_snapshot(snap);
  core::LoopResume out;
  ASSERT_TRUE(ckpt::decode_snapshot(payload, out));
  EXPECT_EQ(out.next_episode, 6);
  EXPECT_EQ(out.optimizer_state, blob);
  EXPECT_EQ(out.cache_log.size(), cache_log.size());
  EXPECT_FALSE(out.cache_log.front().published);
  EXPECT_TRUE(out.cache_log.back().published);
  // Decoded RNG continues exactly where the original left off (spare
  // normal included).
  util::Rng reference(1234);
  (void)reference.normal();
  util::Rng restored(1);
  restored.set_state(out.rng_state);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(reference.normal(), restored.normal());
    EXPECT_EQ(reference.next_u64(), restored.next_u64());
  }

  // Re-encoding the decoded state reproduces the payload bit for bit —
  // the codec loses nothing (designs and evaluations included).
  core::LoopSnapshot again;
  again.next_episode = out.next_episode;
  again.rng_state = out.rng_state;
  again.optimizer_state = &out.optimizer_state;
  again.result = &out.result;
  again.cache_log = &out.cache_log;
  EXPECT_EQ(ckpt::encode_snapshot(again), payload);

  // Truncation at any aligned prefix fails cleanly instead of returning a
  // half-filled state.
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, payload.size() / 2,
                          payload.size() - 1}) {
    core::LoopResume trash;
    EXPECT_FALSE(ckpt::decode_snapshot(payload.substr(0, cut), trash));
  }
}

TEST(Codec, RoundDeltaRoundTripsAndRejectsTruncation) {
  core::RoundDelta delta;
  delta.first_episode = 42;
  delta.job_hashes = {0x1111, 0xdeadbeefcafe, 0};
  delta.job_evals.resize(3);
  delta.job_evals[0].cost.valid = true;
  delta.job_evals[0].accuracy = 0.875;
  delta.job_evals[2].cost.invalid_reason = "adc deficit";

  const std::string payload = ckpt::encode_round(delta);
  core::RoundDelta out;
  ASSERT_TRUE(ckpt::decode_round(payload, out));
  EXPECT_EQ(out.first_episode, 42);
  EXPECT_EQ(out.job_hashes, delta.job_hashes);
  ASSERT_EQ(out.job_evals.size(), 3u);
  EXPECT_TRUE(out.job_evals[0].cost.valid);
  EXPECT_EQ(out.job_evals[0].accuracy, 0.875);
  EXPECT_EQ(out.job_evals[2].cost.invalid_reason, "adc deficit");
  EXPECT_EQ(ckpt::encode_round(out), payload);

  core::RoundDelta trash;
  EXPECT_FALSE(ckpt::decode_round(payload.substr(0, payload.size() / 2), trash));
  EXPECT_FALSE(ckpt::decode_round("", trash));
}

// --------------------------------------------- snapshot store on disk

/// A tiny synthetic snapshot (no engine needed) for store-level tests.
core::LoopSnapshot make_snapshot(int next_episode, const std::string& blob,
                                 const core::RunResult& result,
                                 const std::vector<core::CacheLogEntry>& log) {
  core::LoopSnapshot snap;
  snap.next_episode = next_episode;
  snap.rng_state = util::Rng(7).state();
  snap.optimizer_state = &blob;
  snap.result = &result;
  snap.cache_log = &log;
  return snap;
}

TEST(Store, WritesLoadsAndRotatesGenerations) {
  const std::string root = temp_dir("rotate");
  const std::uint64_t identity = 0xabcdef12;
  ckpt::RunCheckpointer::Options opts;
  opts.directory = root;
  opts.identity = identity;
  ckpt::RunCheckpointer cp(opts);

  const std::string blob = "state";
  core::RunResult result;
  std::vector<core::CacheLogEntry> log;
  cp.on_snapshot(make_snapshot(2, blob, result, log));
  cp.on_snapshot(make_snapshot(4, blob, result, log));
  cp.on_snapshot(make_snapshot(6, blob, result, log));
  EXPECT_EQ(cp.snapshots_written(), 3);

  // keep=2: only the newest two generations survive.
  const auto snaps = list_snapshots(ckpt::study_checkpoint_dir(root, identity));
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].first, 4);
  EXPECT_EQ(snaps[1].first, 6);

  const auto resume = ckpt::load_resume(root, identity);
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->next_episode, 6);
  EXPECT_EQ(resume->optimizer_state, "state");
  EXPECT_TRUE(resume->deltas.empty());

  // A different study identity sees nothing.
  EXPECT_FALSE(ckpt::load_resume(root, identity + 1).has_value());
  // An absent root is a cold start, not an error.
  EXPECT_FALSE(ckpt::load_resume(root + "/nope", identity).has_value());
}

TEST(Store, ChangelogReplaysAndToleratesTornTail) {
  const std::string root = temp_dir("torn_log");
  const std::uint64_t identity = 0x77;
  ckpt::RunCheckpointer::Options opts;
  opts.directory = root;
  opts.identity = identity;
  ckpt::RunCheckpointer cp(opts);

  const std::string blob = "state";
  core::RunResult result;
  std::vector<core::CacheLogEntry> log;
  cp.on_snapshot(make_snapshot(2, blob, result, log));
  core::RoundDelta d1;
  d1.first_episode = 2;
  d1.job_hashes = {11};
  d1.job_evals.resize(1);
  core::RoundDelta d2 = d1;
  d2.first_episode = 3;
  d2.job_hashes = {22};
  cp.on_round(d1);
  cp.on_round(d2);

  {
    const auto resume = ckpt::load_resume(root, identity);
    ASSERT_TRUE(resume.has_value());
    ASSERT_EQ(resume->deltas.size(), 2u);
    EXPECT_EQ(resume->deltas[0].first_episode, 2);
    EXPECT_EQ(resume->deltas[1].first_episode, 3);
  }

  // Tear the last record: the reader keeps everything before the tear and
  // warns (counted), instead of failing the whole resume.
  const auto study_dir = ckpt::study_checkpoint_dir(root, identity);
  const auto log_path = study_dir / "snap-2.log";
  const auto size = std::filesystem::file_size(log_path);
  std::filesystem::resize_file(log_path, size - 5);
  const long long warned_before =
      util::warn_once_count("ckpt-torn-log:" + log_path.string());
  const auto resume = ckpt::load_resume(root, identity);
  ASSERT_TRUE(resume.has_value());
  ASSERT_EQ(resume->deltas.size(), 1u);
  EXPECT_EQ(resume->deltas[0].first_episode, 2);
  EXPECT_GT(util::warn_once_count("ckpt-torn-log:" + log_path.string()),
            warned_before);
}

TEST(Store, CorruptSnapshotFallsBackToPreviousGeneration) {
  const std::string root = temp_dir("fallback");
  const std::uint64_t identity = 0x99;
  ckpt::RunCheckpointer::Options opts;
  opts.directory = root;
  opts.identity = identity;
  ckpt::RunCheckpointer cp(opts);

  const std::string blob_a = "generation A";
  const std::string blob_b = "generation B";
  core::RunResult result;
  std::vector<core::CacheLogEntry> log;
  cp.on_snapshot(make_snapshot(2, blob_a, result, log));
  cp.on_snapshot(make_snapshot(4, blob_b, result, log));

  // Flip a payload byte in the newest snapshot: checksum fails, the
  // previous generation answers, with a counted warning.
  const auto study_dir = ckpt::study_checkpoint_dir(root, identity);
  const auto newest = study_dir / "snap-4.ckpt";
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('!');
  }
  const long long warned_before =
      util::warn_once_count("ckpt-bad-snapshot:" + newest.string());
  auto resume = ckpt::load_resume(root, identity);
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->next_episode, 2);
  EXPECT_EQ(resume->optimizer_state, "generation A");
  EXPECT_GT(util::warn_once_count("ckpt-bad-snapshot:" + newest.string()),
            warned_before);

  // Corrupt every generation: cold start (nullopt), never a throw.
  std::filesystem::resize_file(study_dir / "snap-2.ckpt", 3);
  EXPECT_FALSE(ckpt::load_resume(root, identity).has_value());

  // Garbage and empty files are tolerated the same way.
  std::ofstream(study_dir / "snap-8.ckpt") << "not a checkpoint at all";
  std::ofstream(study_dir / "snap-9.ckpt");
  EXPECT_FALSE(ckpt::load_resume(root, identity).has_value());
}

// ------------------------------------------------ engine-level contracts

TEST(Engine, CheckpointingNeverChangesRunBytes) {
  // For every serializable strategy: a checkpointed run renders the exact
  // bytes of an uncheckpointed one, and actually wrote snapshots.
  for (core::Strategy strategy : serializable_strategies()) {
    const int episodes = 6;
    core::ExperimentConfig config = small_config();
    const core::RunResult reference =
        core::run_strategy(strategy, episodes, config);

    core::ExperimentConfig ckpt_config = config;
    ckpt_config.checkpoint_dir =
        temp_dir(("bytes_" + std::string(core::strategy_name(strategy)))
                     .c_str());
    ckpt_config.checkpoint_every = 2;
    const core::RunResult checkpointed =
        core::run_strategy(strategy, episodes, ckpt_config);

    EXPECT_EQ(render(checkpointed, "run"), render(reference, "run"))
        << core::strategy_name(strategy);
    EXPECT_EQ(checkpointed.resumed_episodes, 0);
    const auto study_dir = ckpt::study_checkpoint_dir(
        ckpt_config.checkpoint_dir,
        core::study_fingerprint(ckpt_config, strategy, episodes));
    EXPECT_FALSE(list_snapshots(study_dir).empty())
        << core::strategy_name(strategy);
  }
}

TEST(Engine, ResumeReplaysAndContinuesByteIdentically) {
  // For every serializable strategy, exercise both resume paths against
  // the same reference:
  //  1. newest generation lost -> restore the previous snapshot and REPLAY
  //     its changelog to the end of the run;
  //  2. changelog lost too -> restore the previous snapshot and CONTINUE
  //     LIVE (restored optimizer + RNG must reproduce the tail).
  for (core::Strategy strategy : serializable_strategies()) {
    SCOPED_TRACE(std::string(core::strategy_name(strategy)));
    const int episodes = 8;
    core::ExperimentConfig config = small_config();
    config.checkpoint_dir =
        temp_dir(("resume_" + std::string(core::strategy_name(strategy)))
                     .c_str());
    config.checkpoint_every = 2;
    const core::RunResult reference =
        core::run_strategy(strategy, episodes, config);
    const std::string reference_bytes = render(reference, "run");

    const auto study_dir = ckpt::study_checkpoint_dir(
        config.checkpoint_dir,
        core::study_fingerprint(config, strategy, episodes));

    // 1. Replay: drop snap-8, resume from snap-6 + its changelog.
    {
      auto snaps = list_snapshots(study_dir);
      ASSERT_EQ(snaps.size(), 2u);
      EXPECT_EQ(snaps.back().first, episodes);
      remove_generation(snaps.back().second);
      core::ExperimentConfig resume_config = config;
      resume_config.resume = true;
      const core::RunResult resumed =
          core::run_strategy(strategy, episodes, resume_config);
      EXPECT_EQ(render(resumed, "run"), reference_bytes);
      EXPECT_EQ(resumed.resumed_episodes, episodes);  // nothing re-evaluated
    }

    // 2. Live continuation: drop snap-8 again AND the surviving
    //    generation's changelog.
    {
      auto snaps = list_snapshots(study_dir);
      remove_generation(snaps.back().second);
      snaps = list_snapshots(study_dir);
      ASSERT_EQ(snaps.size(), 1u);
      const int base = snaps.front().first;
      ASSERT_LT(base, episodes);
      std::filesystem::path log = snaps.front().second;
      log.replace_extension(".log");
      std::filesystem::remove(log);
      core::ExperimentConfig resume_config = config;
      resume_config.resume = true;
      const core::RunResult resumed =
          core::run_strategy(strategy, episodes, resume_config);
      EXPECT_EQ(render(resumed, "run"), reference_bytes);
      EXPECT_EQ(resumed.resumed_episodes, base);  // tail ran live
    }

    // 3. Resuming a completed run restores the final snapshot and runs
    //    nothing at all.
    {
      core::ExperimentConfig resume_config = config;
      resume_config.resume = true;
      const core::RunResult resumed =
          core::run_strategy(strategy, episodes, resume_config);
      EXPECT_EQ(render(resumed, "run"), reference_bytes);
      EXPECT_EQ(resumed.resumed_episodes, episodes);
    }
  }
}

TEST(Engine, LlmStrategiesWarnAndRunUncheckpointed) {
  const int episodes = 4;
  core::ExperimentConfig config = small_config();
  const core::RunResult reference =
      core::run_strategy(core::Strategy::kLcda, episodes, config);

  core::ExperimentConfig ckpt_config = config;
  ckpt_config.checkpoint_dir = temp_dir("llm_unsupported");
  ckpt_config.checkpoint_every = 2;
  ckpt_config.resume = true;  // must be a no-op without state on disk
  const long long warned_before = util::warn_once_count("ckpt-unsupported:LCDA");
  const core::RunResult run =
      core::run_strategy(core::Strategy::kLcda, episodes, ckpt_config);
  EXPECT_GT(util::warn_once_count("ckpt-unsupported:LCDA"), warned_before);
  EXPECT_EQ(render(run, "run"), render(reference, "run"));
  // No study directory was created for it.
  EXPECT_TRUE(std::filesystem::is_empty(ckpt_config.checkpoint_dir));
}

// --------------------------------------- killed-and-resumed subprocesses

std::string lcda_run_path() {
  const std::string self = util::self_executable_path(nullptr);
  if (self.empty()) return "";
  const std::filesystem::path candidate =
      std::filesystem::path(self).parent_path() / "lcda_run";
  std::error_code ec;
  return std::filesystem::exists(candidate, ec) ? candidate.string() : "";
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// The byte-contract slice of a CLI JSON document: the runs array. The
/// scenario echo necessarily differs between a reference run and a
/// checkpoint-flagged run (it reproduces the config verbatim, checkpoint
/// knobs included), so whole-file comparison would test the wrong thing.
std::string runs_slice(const std::string& json_path) {
  return util::Json::parse(slurp(json_path)).at("runs").dump(2);
}

struct CliCase {
  const char* cli_name;  ///< --strategy= spelling
};

TEST(Crash, KillAtEveryBoundaryThenResumeIsByteIdentical) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }
  const std::string out_dir = temp_dir("crash_sweep");
  const int kEpisodes = 6;
  long long resumed_total = 0;

  for (const char* strategy :
       {"random", "genetic", "nsga2", "annealing", "rl"}) {
    // Uninterrupted, checkpoint-free reference (so the sweep also
    // re-proves checkpoint-on == checkpoint-off byte invariance).
    const std::string ref_json = out_dir + "/" + strategy + "_ref.json";
    const std::string ref_csv = out_dir + "/" + strategy + "_ref.csv";
    const std::vector<std::string> base = {
        runner,
        "--scenario=paper-energy",
        std::string("--strategy=") + strategy,
        "--episodes=" + std::to_string(kEpisodes),
        "--seeds=1",
        "--set=batch_size=1",
        "--quiet",
    };
    {
      auto argv = base;
      argv.push_back("--json=" + ref_json);
      argv.push_back("--trace=" + ref_csv);
      const auto r = util::Subprocess::run(argv);
      ASSERT_EQ(r.exit_code, 0) << r.stderr_output;
    }
    const std::string reference =
        runs_slice(ref_json) + "\n---\n" + slurp(ref_csv);

    for (int k : {1, 3, 5}) {
      SCOPED_TRACE(std::string(strategy) + " kill@" + std::to_string(k));
      const std::string tag =
          out_dir + "/" + strategy + "_k" + std::to_string(k);
      const std::string ckpt_dir = tag + "_ckpt";
      auto argv = base;
      argv.push_back("--checkpoint-dir=" + ckpt_dir);
      argv.push_back("--checkpoint-every=2");
      argv.push_back("--json=" + tag + ".json");
      argv.push_back("--trace=" + tag + ".csv");

      // Crash the run at episode k (the injected _Exit(42)).
      ::setenv("LCDA_FAULT", ("kill@episode:" + std::to_string(k)).c_str(), 1);
      const auto killed = util::Subprocess::run(argv);
      ::unsetenv("LCDA_FAULT");
      ASSERT_EQ(killed.exit_code, 42) << killed.stderr_output;

      // Resume and finish; the document and trace must match the
      // uninterrupted reference byte for byte.
      argv.push_back("--resume");
      const auto resumed = util::Subprocess::run(argv);
      ASSERT_EQ(resumed.exit_code, 0) << resumed.stderr_output;
      EXPECT_EQ(runs_slice(tag + ".json") + "\n---\n" + slurp(tag + ".csv"),
                reference);

      // The CLI narrates how much the resume restored.
      const auto pos = resumed.stderr_output.find("resumed_episodes=");
      ASSERT_NE(pos, std::string::npos) << resumed.stderr_output;
      resumed_total +=
          std::atoll(resumed.stderr_output.c_str() + pos +
                     std::string("resumed_episodes=").size());
    }
  }
  // Across the sweep, at least one resume genuinely restored state (kills
  // before the first boundary legitimately cold-start).
  EXPECT_GT(resumed_total, 0);
}

TEST(Crash, TornCheckpointWritesDegradeToEarlierState) {
  const std::string runner = lcda_run_path();
  if (runner.empty()) {
    GTEST_SKIP() << "lcda_run binary not next to the test binary";
  }
  const std::string out_dir = temp_dir("crash_torn");
  const int kEpisodes = 6;
  const std::vector<std::string> base = {
      runner,
      "--scenario=paper-energy",
      "--strategy=genetic",
      "--episodes=" + std::to_string(kEpisodes),
      "--seeds=1",
      "--set=batch_size=1",
      "--quiet",
  };
  const std::string ref_json = out_dir + "/ref.json";
  const std::string ref_csv = out_dir + "/ref.csv";
  {
    auto argv = base;
    argv.push_back("--json=" + ref_json);
    argv.push_back("--trace=" + ref_csv);
    const auto r = util::Subprocess::run(argv);
    ASSERT_EQ(r.exit_code, 0) << r.stderr_output;
  }
  const std::string reference =
      runs_slice(ref_json) + "\n---\n" + slurp(ref_csv);

  for (const char* fault : {"torn-snapshot@episode:4", "torn-log@episode:3"}) {
    SCOPED_TRACE(fault);
    const std::string tag = out_dir + "/" + std::string(fault).substr(0, 8);
    const std::string ckpt_dir = tag + "_ckpt";
    auto argv = base;
    argv.push_back("--checkpoint-dir=" + ckpt_dir);
    argv.push_back("--checkpoint-every=2");
    argv.push_back("--json=" + tag + ".json");
    argv.push_back("--trace=" + tag + ".csv");

    // The writer truncates the targeted file mid-write, then dies.
    ::setenv("LCDA_FAULT", fault, 1);
    const auto torn = util::Subprocess::run(argv);
    ::unsetenv("LCDA_FAULT");
    ASSERT_EQ(torn.exit_code, 42) << torn.stderr_output;

    // Resume: fsck-on-load skips the torn file (counted warning on
    // stderr), falls back to the previous state, and the finished run is
    // still byte-identical to the uninterrupted reference.
    argv.push_back("--resume");
    const auto resumed = util::Subprocess::run(argv);
    ASSERT_EQ(resumed.exit_code, 0) << resumed.stderr_output;
    EXPECT_NE(resumed.stderr_output.find("ckpt"), std::string::npos)
        << resumed.stderr_output;
    EXPECT_EQ(runs_slice(tag + ".json") + "\n---\n" + slurp(tag + ".csv"),
              reference);
  }
}

}  // namespace
