// The content-addressed evaluation store: record/segment format, budgets,
// corruption recovery, v1 migration, multi-process safety, and the
// cross-study shared namespace (lookup_shared + Monte-Carlo replay).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "lcda/core/experiment.h"
#include "lcda/core/report.h"
#include "lcda/core/scenario.h"
#include "lcda/store/eval_store.h"
#include "lcda/store/legacy_json.h"
#include "lcda/store/segment.h"

namespace {

using namespace lcda;
namespace fs = std::filesystem;

/// A unique fresh temp directory per test.
std::string temp_dir(const char* tag) {
  const auto dir = fs::temp_directory_path() /
                   (std::string("lcda_store_test_") + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// An Evaluation whose every numeric field is a recognizable function of
/// `marker`, with deliberately non-representable decimals so byte-exact
/// round trips are actually exercised.
core::Evaluation make_eval(std::uint64_t marker) {
  const double m = static_cast<double>(marker);
  core::Evaluation ev;
  ev.accuracy = m / 3.0;
  ev.accuracy_stddev = m / 7.0 + 1e-17;
  ev.replay_mean = m / 11.0;
  ev.replay_spread = m / 13.0;
  ev.has_replay_params = true;
  ev.cost.valid = true;
  ev.cost.area_arrays_mm2 = m / 17.0;
  ev.cost.area_buffer_mm2 = m / 19.0;
  ev.cost.area_digital_mm2 = m / 23.0;
  ev.cost.area_noc_mm2 = m / 29.0;
  ev.cost.area_total_mm2 = m / 31.0;
  ev.cost.energy_adc_pj = m / 37.0;
  ev.cost.energy_xbar_pj = m / 41.0;
  ev.cost.energy_dac_pj = m / 43.0;
  ev.cost.energy_digital_pj = m / 47.0;
  ev.cost.energy_buffer_pj = m / 53.0;
  ev.cost.energy_noc_pj = m / 59.0;
  ev.cost.energy_total_pj = m * 6.02e7 / 61.0;
  ev.cost.latency_ns = m * 1e9 / 67.0;
  ev.cost.leakage_mw = m / 71.0;
  ev.cost.programming_energy_pj = m / 73.0;
  ev.cost.weight_sigma = m / 79.0 + 1e-18;
  ev.cost.total_weights = static_cast<long long>(marker * 1001);
  ev.cost.total_cells = static_cast<long long>(marker * 2003);
  ev.cost.max_adc_deficit_bits = static_cast<int>(marker % 5);
  return ev;
}

/// Field-by-field byte equality via the legacy JSON codec (which dumps the
/// full v1 field set with shortest-round-trip doubles) plus the replay
/// fields the v1 format predates.
void expect_same_eval(const core::Evaluation& a, const core::Evaluation& b) {
  EXPECT_EQ(store::evaluation_to_json(a).dump(),
            store::evaluation_to_json(b).dump());
  EXPECT_EQ(a.replay_mean, b.replay_mean);
  EXPECT_EQ(a.replay_spread, b.replay_spread);
  EXPECT_EQ(a.has_replay_params, b.has_replay_params);
}

store::EvalStore::Options opts(const std::string& dir,
                               std::uint64_t eval_fp = 0x11,
                               std::uint64_t stream_fp = 0x22) {
  store::EvalStore::Options o;
  o.directory = dir;
  o.eval_fingerprint = eval_fp;
  o.stream_fingerprint = stream_fp;
  return o;
}

std::uintmax_t total_store_bytes(const std::string& dir) {
  std::uintmax_t bytes = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) bytes += entry.file_size();
  }
  return bytes;
}

std::vector<std::string> segment_files(const std::string& dir) {
  return store::list_segment_files(dir + "/segments");
}

/// Episode trace only — cache counters legitimately differ between runs.
std::string trace_text(const core::RunResult& run) {
  return core::run_to_json(run, "run").at("trace").dump();
}

// ------------------------------------------------------- record format

TEST(StoreRecord, RoundTripsBitForBit) {
  store::StoreRecord record;
  record.eval_fingerprint = 0xdeadbeefcafef00dULL;
  record.design_hash = 0x0123456789abcdefULL;
  record.stream_fingerprint = 0xfedcba9876543210ULL;
  record.seq = 42;
  record.evaluation = make_eval(9);
  record.evaluation.cost.valid = false;
  record.evaluation.cost.invalid_reason = "area 80.1 mm^2 over budget";

  ASSERT_TRUE(store::record_encodable(record));
  std::uint8_t bytes[store::kRecordSize];
  store::encode_record(record, bytes);
  ASSERT_TRUE(store::record_checksum_ok(bytes));
  const store::StoreRecord back = store::decode_record(bytes);
  EXPECT_EQ(back.eval_fingerprint, record.eval_fingerprint);
  EXPECT_EQ(back.design_hash, record.design_hash);
  EXPECT_EQ(back.stream_fingerprint, record.stream_fingerprint);
  EXPECT_EQ(back.seq, record.seq);
  expect_same_eval(back.evaluation, record.evaluation);

  // Any flipped payload byte fails the checksum.
  bytes[100] ^= 0x01;
  EXPECT_FALSE(store::record_checksum_ok(bytes));
}

TEST(StoreRecord, OverlongInvalidReasonIsNotEncodable) {
  store::StoreRecord record;
  record.evaluation.cost.invalid_reason.assign(store::kMaxReason + 1, 'x');
  EXPECT_FALSE(store::record_encodable(record));
  record.evaluation.cost.invalid_reason.assign(store::kMaxReason, 'x');
  EXPECT_TRUE(store::record_encodable(record));
}

TEST(Segment, BucketNamesParseBackToShardCoordinates) {
  std::size_t index = 99, count = 0;
  EXPECT_TRUE(store::parse_bucket_name("bucket-3-of-16.seg", &index, &count));
  EXPECT_EQ(index, 3u);
  EXPECT_EQ(count, 16u);
  EXPECT_FALSE(store::parse_bucket_name("seg-123-0-abc.seg", &index, &count));
  EXPECT_FALSE(store::parse_bucket_name("bucket-3-of-.seg", &index, &count));
  EXPECT_FALSE(store::parse_bucket_name("bucket-3-of-16.seg.tmp", &index, &count));
}

// --------------------------------------------------------- basic store

TEST(EvalStore, InsertSaveReopenServesByteIdenticalEvaluations) {
  const std::string dir = temp_dir("roundtrip");
  {
    store::EvalStore store(opts(dir));
    for (std::uint64_t h = 1; h <= 5; ++h) store.insert(h, make_eval(h));
    EXPECT_TRUE(store.save());
    EXPECT_EQ(store.save_failures(), 0u);
  }
  ASSERT_EQ(segment_files(dir).size(), 1u);

  store::EvalStore back(opts(dir));
  EXPECT_EQ(back.size(), 0u);  // everything lives on disk now
  for (std::uint64_t h = 1; h <= 5; ++h) {
    const auto hit = back.lookup(h);
    ASSERT_TRUE(hit.has_value()) << "hash " << h;
    expect_same_eval(*hit, make_eval(h));
  }
  EXPECT_FALSE(back.lookup(6).has_value());

  // A different stream must not see these as full-key hits.
  store::EvalStore foreign(opts(dir, 0x11, 0x9999));
  EXPECT_FALSE(foreign.lookup(1).has_value());
}

TEST(EvalStore, SaveWithNothingNewPublishesNothing) {
  const std::string dir = temp_dir("idempotent");
  store::EvalStore store(opts(dir));
  store.insert(1, make_eval(1));
  EXPECT_TRUE(store.save());
  EXPECT_TRUE(store.save());  // no fresh entries: no second segment
  EXPECT_EQ(segment_files(dir).size(), 1u);
  store.insert(2, make_eval(2));
  EXPECT_TRUE(store.save());  // O(new): only the fresh entry is written
  const auto files = segment_files(dir);
  ASSERT_EQ(files.size(), 2u);
}

// ------------------------------------------------------------- budgets

TEST(EvalStore, EntryBudgetEvictsOldestFirstAcrossReopen) {
  const std::string dir = temp_dir("evict_entries");
  store::EvalStore::Options o = opts(dir);
  o.budget = store::Budget{3, 0};
  {
    store::EvalStore store(o);
    for (std::uint64_t h = 1; h <= 5; ++h) store.insert(h, make_eval(h));
    EXPECT_TRUE(store.save());
    EXPECT_EQ(store.evictions(), 2u);
  }
  store::EvalStore back(o);
  EXPECT_FALSE(back.lookup(1).has_value());  // oldest went first
  EXPECT_FALSE(back.lookup(2).has_value());
  EXPECT_TRUE(back.lookup(3).has_value());
  expect_same_eval(*back.lookup(5), make_eval(5));

  // Ages survive compaction: a tightened budget trims the oldest
  // SURVIVORS, even on a warm save with zero inserts.
  o.budget = store::Budget{2, 0};
  store::EvalStore tight(o);
  EXPECT_TRUE(tight.save());
  EXPECT_EQ(tight.evictions(), 1u);
  store::EvalStore after(o);
  EXPECT_FALSE(after.lookup(3).has_value());
  EXPECT_TRUE(after.lookup(4).has_value());
  EXPECT_TRUE(after.lookup(5).has_value());
}

TEST(EvalStore, ByteBudgetBoundsTheStoreSize) {
  const std::string dir = temp_dir("evict_bytes");
  constexpr std::size_t kMaxBytes = 4096;
  store::EvalStore::Options o = opts(dir);
  o.budget = store::Budget{0, kMaxBytes};
  o.buckets = 2;
  {
    store::EvalStore store(o);
    for (std::uint64_t h = 1; h <= 200; ++h) store.insert(h, make_eval(h));
    EXPECT_TRUE(store.save());
    EXPECT_GT(store.evictions(), 0u);
  }
  EXPECT_LE(total_store_bytes(dir), kMaxBytes);
  // Newest entries are the survivors.
  store::EvalStore back(o);
  EXPECT_TRUE(back.lookup(200).has_value());
  EXPECT_FALSE(back.lookup(1).has_value());
}

// ----------------------------------------------- corruption & recovery

TEST(EvalStore, UnusableFilesAreSkippedCountedAndWarnedOncePerProcess) {
  // A bad store file must not abort the run (a distributed shard retry
  // would then fail on it forever): the store starts cold on that file,
  // counts the skip, and the next --store-compact drops the file.
  const std::string dir = temp_dir("corrupt_file");
  {
    store::EvalStore fresh(opts(dir));
    fresh.insert(1, make_eval(1));
    EXPECT_TRUE(fresh.save());
  }
  const std::string segment = segment_files(dir).at(0);
  std::ofstream(segment, std::ios::trunc) << "{ not a segment";

  testing::internal::CaptureStderr();
  store::EvalStore cold(opts(dir));
  EXPECT_EQ(cold.skipped_files(), 1u);
  EXPECT_FALSE(cold.lookup(1).has_value());
  cold.insert(2, make_eval(2));
  EXPECT_TRUE(cold.save());
  // A second instance (aggregate seed fan-out maps the same files many
  // times per run) counts the skip again but does NOT warn again.
  store::EvalStore again(opts(dir));
  EXPECT_EQ(again.skipped_files(), 1u);
  EXPECT_TRUE(again.lookup(2).has_value());
  const std::string err = testing::internal::GetCapturedStderr();
  std::size_t warnings = 0;
  for (std::size_t pos = 0; (pos = err.find(segment, pos)) != std::string::npos;
       ++pos) {
    ++warnings;
  }
  EXPECT_EQ(warnings, 1u) << err;

  // Compaction is the repair pass: it drops the damaged file for good.
  const store::CompactionReport report = store::compact_store(dir, {}, 4);
  EXPECT_EQ(report.skipped_files, 1u);
  EXPECT_FALSE(fs::exists(segment));
  store::EvalStore healthy(opts(dir));
  EXPECT_EQ(healthy.skipped_files(), 0u);
  EXPECT_TRUE(healthy.lookup(2).has_value());
}

TEST(EvalStore, TornRecordInsideHealthySegmentIsSkippedAndCounted) {
  const std::string dir = temp_dir("torn_record");
  {
    store::EvalStore fresh(opts(dir));
    for (std::uint64_t h = 1; h <= 3; ++h) fresh.insert(h, make_eval(h));
    EXPECT_TRUE(fresh.save());
  }
  // Flip one payload byte of the middle record (hashes 1..3 sort in order).
  const std::string segment = segment_files(dir).at(0);
  {
    std::fstream f(segment, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(store::kHeaderSize +
                                        store::kRecordSize + 100));
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x01;
    f.seekp(static_cast<std::streamoff>(store::kHeaderSize +
                                        store::kRecordSize + 100));
    f.write(&byte, 1);
  }

  store::EvalStore store(opts(dir));
  EXPECT_EQ(store.skipped_files(), 0u);  // the file itself is healthy
  EXPECT_TRUE(store.lookup(1).has_value());
  EXPECT_FALSE(store.lookup(2).has_value());  // checksum-guarded skip
  EXPECT_TRUE(store.lookup(3).has_value());
  EXPECT_EQ(store.corrupt_records(), 1u);

  const store::FsckReport before = store::fsck(dir);
  EXPECT_EQ(before.bad_records, 1u);
  EXPECT_EQ(before.records, 2u);
  EXPECT_FALSE(before.clean());

  const store::CompactionReport report = store::compact_store(dir, {}, 2);
  EXPECT_EQ(report.corrupt_dropped, 1u);
  EXPECT_EQ(report.records_kept, 2u);
  EXPECT_TRUE(store::fsck(dir).clean());
}

TEST(EvalStore, TruncatedSegmentIsSkippedNotFatal) {
  const std::string dir = temp_dir("truncated");
  {
    store::EvalStore fresh(opts(dir));
    for (std::uint64_t h = 1; h <= 5; ++h) fresh.insert(h, make_eval(h));
    EXPECT_TRUE(fresh.save());
  }
  const std::string segment = segment_files(dir).at(0);
  fs::resize_file(segment,
                  store::kHeaderSize + 2 * store::kRecordSize + 37);

  store::EvalStore store(opts(dir));
  EXPECT_EQ(store.skipped_files(), 1u);  // count no longer matches the size
  EXPECT_FALSE(store.lookup(1).has_value());

  const store::FsckReport report = store::fsck(dir);
  EXPECT_EQ(report.bad_files, 1u);
  EXPECT_FALSE(report.clean());
  (void)store::compact_store(dir, {}, 2);
  EXPECT_FALSE(fs::exists(segment));
  EXPECT_TRUE(store::fsck(dir).clean());
}

TEST(EvalStore, SaveFailureDegradesToCountedWarningAndRetries) {
  const std::string dir = temp_dir("save_failure");
  // A regular file squatting on segments/ makes every publish fail.
  std::ofstream(dir + "/segments") << "squatter";
  store::EvalStore store(opts(dir));
  store.insert(1, make_eval(1));
  EXPECT_FALSE(store.save());
  EXPECT_EQ(store.save_failures(), 1u);
  // The entry stayed unpublished, so clearing the obstruction lets a later
  // save persist it after all.
  fs::remove(dir + "/segments");
  EXPECT_TRUE(store.save());
  store::EvalStore back(opts(dir));
  EXPECT_TRUE(back.lookup(1).has_value());
}

// ------------------------------------------------------- v1 migration

TEST(LegacyJson, EvaluationRoundTripsBitForBit) {
  core::Evaluation ev = make_eval(3);
  ev.cost.valid = false;
  ev.cost.invalid_reason = "area 80.1 mm^2 over budget";
  const core::Evaluation back = store::evaluation_from_json(
      util::Json::parse(store::evaluation_to_json(ev).dump()));
  EXPECT_EQ(back.accuracy, ev.accuracy);
  EXPECT_EQ(back.accuracy_stddev, ev.accuracy_stddev);
  EXPECT_EQ(back.cost.valid, ev.cost.valid);
  EXPECT_EQ(back.cost.invalid_reason, ev.cost.invalid_reason);
  EXPECT_EQ(back.cost.energy_total_pj, ev.cost.energy_total_pj);
  EXPECT_EQ(back.cost.weight_sigma, ev.cost.weight_sigma);
  EXPECT_EQ(back.cost.total_weights, ev.cost.total_weights);
  // v1 predates the replay fields; imports never claim to be replayable.
  EXPECT_FALSE(back.has_replay_params);
}

TEST(EvalStore, LegacyV1FilesMigrateOnFirstSave) {
  const std::string dir = temp_dir("migrate");
  constexpr std::uint64_t kLegacyFp = 0xabc;
  std::vector<store::LegacyEntry> legacy;
  for (std::uint64_t h = 1; h <= 4; ++h) {
    core::Evaluation ev = make_eval(h);
    ev.has_replay_params = false;  // v1 has no replay fields
    ev.replay_mean = 0.0;
    ev.replay_spread = 0.0;
    legacy.push_back({h, h - 1, ev});
  }
  const std::string v1_path = store::legacy_cache_path(dir, kLegacyFp);
  store::write_legacy_cache_file(v1_path, kLegacyFp, legacy);

  store::EvalStore::Options o = opts(dir);
  o.legacy_fingerprint = kLegacyFp;
  {
    store::EvalStore store(o);
    EXPECT_EQ(store.size(), 4u);  // imported, pending republication
    expect_same_eval(*store.lookup(2), legacy[1].evaluation);
    EXPECT_TRUE(store.save());
    // The migration completes in one warm run: the flat-JSON file is gone
    // and its entries live in a binary segment.
    EXPECT_FALSE(fs::exists(v1_path));
    EXPECT_EQ(segment_files(dir).size(), 1u);
  }
  store::EvalStore back(o);
  EXPECT_EQ(back.size(), 0u);
  for (std::uint64_t h = 1; h <= 4; ++h) {
    expect_same_eval(*back.lookup(h), legacy[h - 1].evaluation);
  }
}

TEST(EvalStore, ForeignLegacyFingerprintIsSkippedNotFatal) {
  const std::string dir = temp_dir("migrate_foreign");
  std::vector<store::LegacyEntry> legacy = {{1, 0, make_eval(1)}};
  // A v1 file renamed across studies: its embedded fingerprint disagrees
  // with its name. Must degrade to a counted cold start, never abort.
  store::write_legacy_cache_file(store::legacy_cache_path(dir, 0xbbb), 0xaaa,
                                 legacy);
  store::EvalStore::Options o = opts(dir);
  o.legacy_fingerprint = 0xbbb;
  store::EvalStore store(o);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.skipped_files(), 1u);
}

// ------------------------------------------- compaction & liveness

TEST(EvalStore, CompactionDedupesRepublishedKeysKeepingTheOldestAge) {
  const std::string dir = temp_dir("dedupe");
  {
    store::EvalStore a(opts(dir));
    a.insert(7, make_eval(7));
    EXPECT_TRUE(a.save());
  }
  // Two workers racing on the same study republish the same full key;
  // simulate the race by copying the segment under a second name.
  const std::string original = segment_files(dir).at(0);
  fs::copy_file(original, dir + "/segments/seg-999-0-copy.seg");

  const store::CompactionReport report = store::compact_store(dir, {}, 2);
  EXPECT_EQ(report.duplicates_dropped, 1u);
  EXPECT_EQ(report.records_kept, 1u);
  // Compacting again is a fixed point.
  const store::CompactionReport again = store::compact_store(dir, {}, 2);
  EXPECT_EQ(again.duplicates_dropped, 0u);
  EXPECT_EQ(again.records_kept, 1u);
  store::EvalStore back(opts(dir));
  EXPECT_TRUE(back.lookup(7).has_value());
}

TEST(EvalStore, LiveReadersSurviveACompactionPass) {
  const std::string dir = temp_dir("live_readers");
  {
    store::EvalStore writer(opts(dir));
    for (std::uint64_t h = 1; h <= 10; ++h) writer.insert(h, make_eval(h));
    EXPECT_TRUE(writer.save());
  }
  store::EvalStore reader(opts(dir));  // maps the segment now...
  (void)store::compact_store(dir, {}, 4);
  EXPECT_TRUE(segment_files(dir).empty());  // ...which is unlinked now
  for (std::uint64_t h = 1; h <= 10; ++h) {
    // The mmap'd view outlives the unlink: every record stays reachable.
    expect_same_eval(*reader.lookup(h), make_eval(h));
  }
  store::EvalStore fresh(opts(dir));  // and the buckets serve newcomers
  EXPECT_TRUE(fresh.lookup(10).has_value());
}

TEST(EvalStore, SharedLookupsConsultOnlyCompactedBuckets) {
  const std::string dir = temp_dir("shared_buckets");
  {
    store::EvalStore producer(opts(dir, 0x11, /*stream=*/0x1));
    producer.insert(5, make_eval(5));
    EXPECT_TRUE(producer.save());
  }
  // Before compaction the record only lives in a segment: full-key lookups
  // under another stream miss, and — deliberately — so do shared lookups;
  // otherwise shared-hit counters would depend on which sibling process
  // happened to publish first.
  {
    store::EvalStore consumer(opts(dir, 0x11, /*stream=*/0x2));
    EXPECT_FALSE(consumer.lookup(5).has_value());
    EXPECT_FALSE(consumer.lookup_shared(5).has_value());
  }
  (void)store::compact_store(dir, {}, 4);
  store::EvalStore consumer(opts(dir, 0x11, /*stream=*/0x2));
  EXPECT_FALSE(consumer.lookup(5).has_value());  // still not its own key
  const auto shared = consumer.lookup_shared(5);
  ASSERT_TRUE(shared.has_value());
  EXPECT_TRUE(shared->has_replay_params);
  expect_same_eval(*shared, make_eval(5));
  // A different evaluation identity shares nothing.
  store::EvalStore other_eval(opts(dir, 0x9999, 0x2));
  EXPECT_FALSE(other_eval.lookup_shared(5).has_value());
}

// ----------------------------------------------------- store metrics

TEST(EvalStore, MetricsCountLookupsAndBytes) {
  const std::string dir = temp_dir("metrics");
  {
    store::EvalStore producer(opts(dir, 0x11, 0x1));
    producer.insert(5, make_eval(5));
    EXPECT_EQ(producer.metrics().bytes_published, 0u);  // nothing saved yet
    EXPECT_TRUE(producer.save());
    // One published segment: header plus the single record.
    EXPECT_GE(producer.metrics().bytes_published, store::kRecordSize);
  }
  store::EvalStore reader(opts(dir, 0x11, 0x1));
  EXPECT_FALSE(reader.lookup(6).has_value());
  ASSERT_TRUE(reader.lookup(5).has_value());  // from the published segment
  reader.insert(7, make_eval(7));
  ASSERT_TRUE(reader.lookup(7).has_value());  // from the session map
  const store::EvalStore::Metrics& m = reader.metrics();
  EXPECT_EQ(m.hits, 2u);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_GE(m.bytes_read, store::kRecordSize);  // disk probes, hit or miss
  EXPECT_EQ(m.bytes_published, 0u);             // this instance saved nothing

  // Shared lookups count in their own namespace: a miss before compaction
  // publishes buckets, a hit after.
  store::EvalStore consumer(opts(dir, 0x11, 0x2));
  EXPECT_FALSE(consumer.lookup_shared(5).has_value());
  EXPECT_EQ(consumer.metrics().shared_misses, 1u);
  (void)store::compact_store(dir, {}, 4);
  store::EvalStore warm(opts(dir, 0x11, 0x2));
  ASSERT_TRUE(warm.lookup_shared(5).has_value());
  EXPECT_EQ(warm.metrics().shared_hits, 1u);
  EXPECT_EQ(warm.metrics().shared_misses, 0u);
}

// ------------------------------------------------- multi-process hammer

TEST(EvalStore, EightConcurrentWritersAndReadersStayConsistent) {
  // 8 writer threads sharing one directory (distinct streams of one
  // evaluation identity — the distributed seed fan-out shape), each
  // publishing several segments and re-reading its own records, while a
  // 9th thread repeatedly compacts. Every record must survive, fsck must
  // come back clean, and the whole dance must be TSan-clean.
  const std::string dir = temp_dir("hammer");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 40;
  constexpr std::uint64_t kEvalFp = 0x5eed;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dir, t] {
      store::EvalStore store(
          opts(dir, kEvalFp, 100 + static_cast<std::uint64_t>(t)));
      for (std::uint64_t j = 0; j < kPerThread; ++j) {
        const std::uint64_t h = static_cast<std::uint64_t>(t) * 1000 + j;
        store.insert(h, make_eval(h + 1));
        if (j % 10 == 9) ASSERT_TRUE(store.save());
      }
      ASSERT_TRUE(store.save());
      // Reader pass under concurrent compaction: a fresh instance must see
      // every record this thread just published.
      store::EvalStore back(
          opts(dir, kEvalFp, 100 + static_cast<std::uint64_t>(t)));
      for (std::uint64_t j = 0; j < kPerThread; ++j) {
        const std::uint64_t h = static_cast<std::uint64_t>(t) * 1000 + j;
        const auto hit = back.lookup(h);
        ASSERT_TRUE(hit.has_value()) << "thread " << t << " hash " << h;
        expect_same_eval(*hit, make_eval(h + 1));
      }
    });
  }
  threads.emplace_back([&dir] {
    for (int i = 0; i < 5; ++i) {
      (void)store::compact_store(dir, {}, 8);
    }
  });
  for (std::thread& thread : threads) thread.join();

  (void)store::compact_store(dir, {}, 8);
  const store::FsckReport report = store::fsck(dir);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    store::EvalStore final_check(
        opts(dir, kEvalFp, 100 + static_cast<std::uint64_t>(t)));
    for (std::uint64_t j = 0; j < kPerThread; ++j) {
      EXPECT_TRUE(
          final_check.lookup(static_cast<std::uint64_t>(t) * 1000 + j)
              .has_value());
    }
  }
}

// -------------------------------------------------- cross-study reuse

TEST(CrossStudyReuse, SecondSeedReplaysSharedRecordsBitExact) {
  // The two-scenario sweep: study A (seed 1) fills the store and a
  // compaction publishes the index; study B (seed 2, same evaluation
  // identity, tiny space so the seeds propose overlapping designs) must
  // reuse A's deterministic work through the shared namespace — and still
  // produce EXACTLY the trace its own cold run produces, because the
  // Monte-Carlo accuracy draws are replayed with B's own RNG stream.
  const std::string dir = temp_dir("sweep");
  core::ExperimentConfig config;
  config.space.conv_layers = 2;
  config.space.channel_choices = {16, 32};
  config.space.kernel_choices = {3};
  config.space.hw.devices = {cim::DeviceType::kFefet};
  config.space.hw.bits_per_cell = {2};
  config.space.hw.adc_bits = {6};
  config.space.hw.xbar_sizes = {128};
  config.space.hw.col_mux = {8};
  config.persistent_cache_dir = dir;
  config.seed = 1;
  (void)core::run_strategy(core::Strategy::kRandom, 8, config);
  (void)store::compact_store(dir, {}, 4);

  core::ExperimentConfig b = config;
  b.seed = 2;
  core::ExperimentConfig b_cold = b;
  b_cold.persistent_cache_dir.clear();
  const core::RunResult cold = core::run_strategy(core::Strategy::kRandom, 8, b_cold);
  const core::RunResult warm = core::run_strategy(core::Strategy::kRandom, 8, b);
  EXPECT_GT(warm.persistent_shared_hits, 0);
  EXPECT_EQ(warm.persistent_hits, 0);  // nothing under B's own stream yet
  EXPECT_EQ(trace_text(warm), trace_text(cold));

  // And B's own warm rerun now prefers its full keys over shared replay.
  const core::RunResult rerun = core::run_strategy(core::Strategy::kRandom, 8, b);
  EXPECT_GT(rerun.persistent_hits, 0);
  EXPECT_EQ(rerun.cache_misses, 0);
  EXPECT_EQ(trace_text(rerun), trace_text(cold));
}

}  // namespace
