// lcda::obs — the metrics registry, span tracer and snapshot algebra.
// The load-bearing test is the first one: engine output must be
// byte-identical with observability fully on and fully off, at every
// parallelism. It runs first because the registry/tracer singletons can
// be enabled but never disabled — the obs-off baseline must be captured
// before any other test arms them.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lcda/core/experiment.h"
#include "lcda/core/scenario.h"
#include "lcda/obs/metrics.h"
#include "lcda/obs/trace.h"
#include "lcda/util/json_lite.h"

namespace {

using namespace lcda;

/// One small engine run rendered as the golden-trace CSV format.
std::string run_csv(int parallelism) {
  core::Scenario s = core::scenario_by_name("paper-energy");
  s.config.lcda_episodes = 6;
  s.config.parallelism = parallelism;
  const core::RunResult run =
      core::run_strategy(core::Strategy::kLcda, 6, s.config);
  std::ostringstream os;
  core::write_run_csv(os, run, "lcda/p" + std::to_string(parallelism));
  return os.str();
}

// ---------------------------------------------------------------------
// Byte invariance: the whole point of the obs contract. Must run before
// any test that enables the singletons (gtest runs tests in definition
// order within a file; each *_test.cpp is its own binary).
// ---------------------------------------------------------------------

TEST(ObsByteInvariance, EngineBytesIdenticalWithObsOnAndOff) {
  ASSERT_FALSE(obs::Registry::instance().enabled())
      << "another test armed the registry first; this test must run first";
  ASSERT_FALSE(obs::SpanTracer::instance().enabled());

  const std::string off_p1 = run_csv(1);
  const std::string off_p4 = run_csv(4);

  obs::Registry::instance().enable();
  obs::SpanTracer::instance().enable();

  EXPECT_EQ(off_p1, run_csv(1));
  EXPECT_EQ(off_p4, run_csv(4));

  // The instrumented runs actually metered: the engine mirrored its
  // counters and the round spans landed in the ring.
  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  EXPECT_GE(snap.counter("engine.runs"), 2);
  EXPECT_GE(snap.counter("engine.episodes"), 12);
  EXPECT_GT(obs::SpanTracer::instance().size(), 0u);
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(ObsMetrics, StripedCounterSurvivesThreadHammer) {
  obs::Registry::instance().enable();
  obs::Counter counter = obs::Registry::instance().counter("test.hammer");
  ASSERT_TRUE(counter.live());

  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(obs::Registry::instance().snapshot().counter("test.hammer"),
            static_cast<long long>(kThreads) * kAddsPerThread);
}

TEST(ObsMetrics, InertHandlesAreSafeNoOps) {
  obs::Counter counter;  // default-constructed: inert
  obs::Gauge gauge;
  obs::Histogram histogram;
  EXPECT_FALSE(counter.live());
  EXPECT_FALSE(gauge.live());
  EXPECT_FALSE(histogram.live());
  counter.add(7);  // must not crash
  gauge.set(7);
  histogram.observe(7);
}

TEST(ObsMetrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::Registry::instance().enable();
  obs::Histogram h =
      obs::Registry::instance().histogram("test.edges", {10, 20});
  ASSERT_TRUE(h.live());
  h.observe(0);    // bucket 0: v <= 10
  h.observe(10);   // bucket 0: edge is inclusive
  h.observe(11);   // bucket 1: 10 < v <= 20
  h.observe(20);   // bucket 1: edge is inclusive
  h.observe(21);   // overflow bucket
  h.observe(1000); // overflow bucket

  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  const auto it = snap.histograms.find("test.edges");
  ASSERT_NE(it, snap.histograms.end());
  ASSERT_EQ(it->second.counts.size(), 3u);  // bounds.size() + 1, overflow last
  EXPECT_EQ(it->second.counts[0], 2);
  EXPECT_EQ(it->second.counts[1], 2);
  EXPECT_EQ(it->second.counts[2], 2);
  EXPECT_EQ(it->second.sum, 0 + 10 + 11 + 20 + 21 + 1000);
  EXPECT_EQ(it->second.total_count(), 6);
}

obs::MetricsSnapshot make_snapshot(long long a, long long g,
                                   std::vector<long long> counts,
                                   long long sum) {
  obs::MetricsSnapshot s;
  s.counters["c"] = a;
  s.gauges["g"] = g;
  obs::HistogramData h;
  h.bounds = {10, 20};
  h.counts = std::move(counts);
  h.sum = sum;
  s.histograms["h"] = h;
  return s;
}

TEST(ObsMetrics, SnapshotMergeIsAssociative) {
  const obs::MetricsSnapshot a = make_snapshot(1, 5, {1, 0, 0}, 3);
  const obs::MetricsSnapshot b = make_snapshot(2, 9, {0, 2, 0}, 30);
  const obs::MetricsSnapshot c = make_snapshot(4, 7, {0, 0, 3}, 300);

  obs::MetricsSnapshot left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  obs::MetricsSnapshot bc = b;     // a + (b + c)
  bc.merge(c);
  obs::MetricsSnapshot right = a;
  right.merge(bc);

  EXPECT_EQ(left.to_json().dump(), right.to_json().dump());
  EXPECT_EQ(left.counter("c"), 7);
  EXPECT_EQ(left.gauges.at("g"), 9);  // gauges take the max
  EXPECT_EQ(left.histograms.at("h").sum, 333);
  EXPECT_EQ(left.histograms.at("h").total_count(), 6);
}

TEST(ObsMetrics, DeltaSinceIsolatesTheChange) {
  obs::Registry::instance().enable();
  obs::Counter counter = obs::Registry::instance().counter("test.delta");
  counter.add(5);
  const obs::MetricsSnapshot base = obs::Registry::instance().snapshot();
  counter.add(11);
  const obs::MetricsSnapshot delta =
      obs::Registry::instance().snapshot().delta_since(base);
  EXPECT_EQ(delta.counter("test.delta"), 11);
}

TEST(ObsMetrics, SnapshotJsonRoundTrips) {
  const obs::MetricsSnapshot s = make_snapshot(42, 3, {1, 2, 3}, 99);
  const obs::MetricsSnapshot back =
      obs::MetricsSnapshot::from_json(s.to_json());
  EXPECT_EQ(s.to_json().dump(), back.to_json().dump());
}

// ---------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------

TEST(ObsTrace, RingOverflowDropsOldestAndCounts) {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.enable();  // idempotent; first capacity (the default) wins
  tracer.clear();
  ASSERT_EQ(tracer.dropped(), 0u);

  tracer.begin("the-very-first-span");
  const std::size_t kRecorded = obs::SpanTracer::kDefaultCapacity + 10;
  for (std::size_t i = 1; i < kRecorded; ++i) tracer.begin("filler");

  EXPECT_EQ(tracer.size(), obs::SpanTracer::kDefaultCapacity);
  EXPECT_EQ(tracer.dropped(), kRecorded - obs::SpanTracer::kDefaultCapacity);

  // Oldest-first eviction: the first span was overwritten.
  const util::Json doc = tracer.export_chrome(0, "test");
  const util::Json& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::Json& e = events.at(i);
    if (e.contains("name")) {
      EXPECT_NE(e.at("name").as_string(), "the-very-first-span");
    }
  }
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTrace, ExportBalancesPairsAndClampsTimestamps) {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.enable();
  tracer.clear();

  tracer.end("orphan");  // no matching begin: export must drop it
  {
    obs::Span outer("outer");
    obs::Span inner("inner");
  }
  tracer.begin("dangling");  // never ended: export must close it

  const util::Json doc = tracer.export_chrome(7, "test-process");
  const util::Json& events = doc.at("traceEvents");

  std::map<long long, int> open_per_tid;       // running B/E balance
  std::map<long long, long long> last_ts;      // per-tid monotonicity
  std::set<std::string> names;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::Json& e = events.at(i);
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") continue;
    EXPECT_EQ(e.at("pid").as_int(), 7);
    const long long tid = e.at("tid").as_int();
    const long long ts = e.at("ts").as_int();
    const auto prev = last_ts.find(tid);
    if (prev != last_ts.end()) EXPECT_GE(ts, prev->second);
    last_ts[tid] = ts;
    if (ph == "B") ++open_per_tid[tid];
    if (ph == "E") --open_per_tid[tid];
    EXPECT_GE(open_per_tid[tid], 0) << "end before begin on tid " << tid;
    if (e.contains("name")) names.insert(e.at("name").as_string());
  }
  for (const auto& [tid, open] : open_per_tid) {
    EXPECT_EQ(open, 0) << "unbalanced spans on tid " << tid;
  }
  EXPECT_EQ(names.count("orphan"), 0u);
  EXPECT_EQ(names.count("outer"), 1u);
  EXPECT_EQ(names.count("inner"), 1u);
  EXPECT_EQ(names.count("dangling"), 1u);
  tracer.clear();
}

TEST(ObsTrace, AppendChromeEventsRewritesPidAndSkipsMetadata) {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.enable();
  tracer.clear();
  { obs::Span s("worker-span"); }
  const util::Json worker_doc = tracer.export_chrome(12345, "original");
  tracer.clear();
  { obs::Span s("coordinator-span"); }
  util::Json merged = tracer.export_chrome(0, "coordinator");

  obs::append_chrome_events(merged["traceEvents"], worker_doc, 101,
                            "worker shard 1");
  const util::Json& events = merged.at("traceEvents");
  bool saw_worker_span = false, saw_lane_name = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::Json& e = events.at(i);
    const std::string ph = e.at("ph").as_string();
    if (ph != "M" && e.contains("name") &&
        e.at("name").as_string() == "worker-span") {
      saw_worker_span = true;
      EXPECT_EQ(e.at("pid").as_int(), 101);  // re-pinned to the shard lane
    }
    if (ph == "M" && e.at("pid").as_int() == 101) saw_lane_name = true;
  }
  EXPECT_TRUE(saw_worker_span);
  EXPECT_TRUE(saw_lane_name);
  tracer.clear();
}

}  // namespace
