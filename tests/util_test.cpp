#include <gtest/gtest.h>

#include <csignal>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "lcda/util/csv.h"
#include "lcda/util/json_lite.h"
#include "lcda/util/logging.h"
#include "lcda/util/rng.h"
#include "lcda/util/stats.h"
#include "lcda/util/strings.h"
#include "lcda/util/subprocess.h"

namespace lcda::util {
namespace {

// ------------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    saw_lo |= v == -2;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, ChanceProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, IndexThrowsOnEmpty) {
  Rng rng(1);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(23);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.25);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(29);
  const std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(w)];
  for (int c : counts) EXPECT_GT(c, 1000);
}

TEST(Rng, WeightedIndexRejectsNegative) {
  Rng rng(1);
  const std::vector<double> w = {1.0, -0.5};
  EXPECT_THROW((void)rng.weighted_index(w), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(37);
  Rng child = parent.fork();
  // Consuming the child must not change the parent's future draws relative
  // to a reference parent that forked but never used the child.
  Rng parent2(37);
  (void)parent2.fork();
  for (int i = 0; i < 100; ++i) (void)child.next_u64();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(parent.next_u64(), parent2.next_u64());
  }
}

TEST(Hash, MixIsDeterministicAndSpreads) {
  EXPECT_EQ(hash_mix(42), hash_mix(42));
  EXPECT_NE(hash_mix(42), hash_mix(43));
}

TEST(Hash, IntsOrderSensitive) {
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> b = {3, 2, 1};
  EXPECT_NE(hash_ints(a), hash_ints(b));
  EXPECT_EQ(hash_ints(a), hash_ints(a));
  EXPECT_NE(hash_ints(a, 1), hash_ints(a, 2));
}

// ----------------------------------------------------------------- Stats

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), mean(xs));
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(41);
  OnlineStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i < 250 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Percentile, KnownValues) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101), std::invalid_argument);
}

TEST(Ema, ConvergesToConstant) {
  Ema ema(0.9);
  for (int i = 0; i < 200; ++i) ema.update(5.0);
  EXPECT_NEAR(ema.value(), 5.0, 1e-6);
}

TEST(Ema, FirstValueInitializes) {
  Ema ema(0.9);
  ema.update(3.0);
  EXPECT_DOUBLE_EQ(ema.value(), 3.0);
}

// --------------------------------------------------------------- Strings

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, ContainsIcase) {
  EXPECT_TRUE(contains_icase("Neural Architecture Search", "ARCHITECTURE"));
  EXPECT_FALSE(contains_icase("abc", "abd"));
  EXPECT_TRUE(contains_icase("anything", ""));
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int(" -7 ").value(), -7);
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -0.25 ").value(), -0.25);
  EXPECT_FALSE(parse_double("1.2.3").has_value());
}

struct ExtractCase {
  const char* input;
  std::vector<long long> expected;
};

class ExtractIntsTest : public ::testing::TestWithParam<ExtractCase> {};

TEST_P(ExtractIntsTest, Extracts) {
  const auto& p = GetParam();
  EXPECT_EQ(extract_ints(p.input), p.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExtractIntsTest,
    ::testing::Values(
        ExtractCase{"[[32,3],[64,3]]", {32, 3, 64, 3}},
        ExtractCase{"no numbers", {}},
        ExtractCase{"x-5y", {-5}},
        ExtractCase{"a-b", {}},
        ExtractCase{"perf=-1", {-1}},
        ExtractCase{"[ [ 16 , 7 ] ]", {16, 7}},
        ExtractCase{"1,2,3", {1, 2, 3}}));

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

// ------------------------------------------------------------------- CSV

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.header({"name", "value"});
  csv.field("x").field(1.5).endrow();
  csv.field("y,z").field(42LL).endrow();
  EXPECT_EQ(os.str(), "name,value\nx,1.5\n\"y,z\",42\n");
  EXPECT_EQ(csv.rows_written(), 3u);
}

TEST(Csv, DoubleRoundTrips) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.field(0.1).endrow();
  EXPECT_EQ(os.str().substr(0, 3), "0.1");
}

// ------------------------------------------------------------------ JSON

TEST(Json, Escaping) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Json, ObjectAndArray) {
  Json j = Json::object();
  j["name"] = "lcda";
  j["count"] = 3;
  j["ok"] = true;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2.5);
  j["xs"] = arr;
  EXPECT_EQ(j.dump(), R"({"name":"lcda","count":3,"ok":true,"xs":[1,2.5]})");
}

TEST(Json, NullAndNested) {
  Json j;
  j["a"]["b"] = 1;  // auto-creates nested objects
  EXPECT_EQ(j.dump(), R"({"a":{"b":1}})");
}

TEST(Json, PrettyPrintIndents) {
  Json j = Json::object();
  j["k"] = 1;
  EXPECT_EQ(j.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, TypeErrors) {
  Json j = 5;
  EXPECT_THROW(j["k"] = 1, std::logic_error);
  EXPECT_THROW(j.push_back(1), std::logic_error);
}

TEST(Json, InsertionOrderPreserved) {
  Json j = Json::object();
  j["z"] = 1;
  j["a"] = 2;
  EXPECT_EQ(j.dump(), R"({"z":1,"a":2})");
}

TEST(JsonParse, ScalarsAndNesting) {
  const Json j = Json::parse(
      R"({"s":"hi","n":-2.5,"i":42,"b":true,"nil":null,"a":[1,[2,3],{"k":"v"}]})");
  EXPECT_EQ(j.at("s").as_string(), "hi");
  EXPECT_EQ(j.at("n").as_double(), -2.5);
  EXPECT_EQ(j.at("i").as_int(), 42);
  EXPECT_TRUE(j.at("b").as_bool());
  EXPECT_TRUE(j.at("nil").is_null());
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_EQ(j.at("a").at(1).at(0).as_int(), 2);
  EXPECT_EQ(j.at("a").at(2).at("k").as_string(), "v");
}

TEST(JsonParse, DumpParseRoundTripIsExactForDoubles) {
  // Shortest-round-trip number formatting: every double survives a
  // dump/parse cycle bit-for-bit — the persistent cache's guarantee.
  for (double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1e-300, -0.0625,
                   123456789.123456789, 2.5e-17}) {
    Json j = Json::array();
    j.push_back(v);
    const Json back = Json::parse(j.dump());
    EXPECT_EQ(back.at(0).as_double(), v);
  }
}

TEST(JsonParse, StringEscapesRoundTrip) {
  Json j = Json::object();
  j["k"] = std::string("a\"b\\c\nd\te\x01f");
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.at("k").as_string(), "a\"b\\c\nd\te\x01f");
}

TEST(JsonParse, EqualityFollowsStructure) {
  const Json a = Json::parse(R"({"x":[1,2],"y":{"z":true}})");
  const Json b = Json::parse(R"({ "x" : [1, 2], "y": {"z": true} })");
  const Json c = Json::parse(R"({"x":[1,3],"y":{"z":true}})");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":1} extra"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":1,\"a\":2}"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("truthy"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("1.2.3"), std::runtime_error);
}

TEST(JsonParse, TypedAccessorsValidate) {
  const Json j = Json::parse(R"({"d":1.5,"s":"x"})");
  EXPECT_THROW((void)j.at("d").as_int(), std::logic_error);     // non-integral
  EXPECT_THROW((void)j.at("s").as_double(), std::logic_error);  // wrong type
  EXPECT_THROW((void)j.at("missing"), std::logic_error);
  EXPECT_FALSE(j.contains("missing"));
  EXPECT_TRUE(j.contains("d"));
}

// --------------------------------------------------------------- Logging

TEST(Logging, LevelFilters) {
  set_log_level(LogLevel::kError);
  // Nothing observable to assert without capturing stderr; this exercises
  // the code path and the level round-trip.
  EXPECT_EQ(log_level(), LogLevel::kError);
  Logger("test").info() << "filtered";
  Logger("test").error() << "emitted";
  set_log_level(LogLevel::kWarn);
}

// ------------------------------------------------------------ Subprocess

TEST(Subprocess, TryWaitPollsWithoutBlocking) {
  Subprocess child({"/bin/sh", "-c", "sleep 0.2; echo late >&2; exit 7"});
  // The child is still sleeping: try_wait must return nothing, instantly.
  EXPECT_FALSE(child.try_wait().has_value());
  // Poll to completion — the loop is the coordinator's reap pattern.
  std::optional<Subprocess::Result> result;
  for (int i = 0; i < 200 && !result; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    result = child.try_wait();
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->exit_code, 7);
  EXPECT_EQ(result->stderr_output, "late\n");
  // After completion, try_wait keeps returning the same result.
  const auto again = child.try_wait();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->exit_code, 7);
}

TEST(Subprocess, StopTerminatesGracefully) {
  // A child that dies to SIGTERM: stop() never needs the KILL escalation.
  Subprocess child({"/bin/sleep", "30"});
  const auto t0 = std::chrono::steady_clock::now();
  const Subprocess::Result result = child.stop(/*grace_ms=*/2000);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(result.term_signal, SIGTERM);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST(Subprocess, StopEscalatesToKillAfterGrace) {
  // A child that ignores SIGTERM must be SIGKILLed once the grace runs
  // out. The trailing exit keeps sh from exec-replacing itself with sleep
  // (which would drop the trap).
  Subprocess child({"/bin/sh", "-c", "trap '' TERM; sleep 30; exit 0"});
  // Give the shell a moment to install the trap, or the TERM wins the race.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const Subprocess::Result result = child.stop(/*grace_ms=*/300);
  EXPECT_EQ(result.term_signal, SIGKILL);
}

TEST(Subprocess, DestructorReapsRunningChild) {
  // Leaving scope with a live child must not hang (graceful stop with a
  // short grace) and must not leak a zombie — nothing to assert beyond
  // "this returns quickly", which the test timeout enforces.
  const auto t0 = std::chrono::steady_clock::now();
  { Subprocess child({"/bin/sleep", "30"}); }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

}  // namespace
}  // namespace lcda::util
