// google-benchmark microbenchmarks of the framework's hot components:
// throughput numbers that justify using the surrogate evaluator for
// 500-episode baseline runs and bound the cost of each pipeline stage.
#include <benchmark/benchmark.h>

#include "lcda/cim/cost_model.h"
#include "lcda/core/scenario.h"
#include "lcda/llm/parser.h"
#include "lcda/llm/prompt.h"
#include "lcda/llm/simulated_gpt4.h"
#include "lcda/noise/monte_carlo.h"
#include "lcda/search/rl_optimizer.h"
#include "lcda/surrogate/accuracy_model.h"
#include "lcda/tensor/ops.h"

namespace {

using namespace lcda;

const std::vector<nn::ConvSpec> kRollout = {{32, 3}, {32, 3}, {64, 3},
                                            {64, 3}, {128, 3}, {128, 3}};

// Every harness below reads its options from the paper-energy scenario, so
// the microbenchmarks measure exactly what the scenario-driven engine runs.
const core::ExperimentConfig& paper_config() {
  static const core::ExperimentConfig cfg =
      core::scenario_by_name("paper-energy").config;
  return cfg;
}

// The engine's per-rollout cost pass exactly as the evaluator runs it:
// phase one (CostPlan) and the flattened layer span are memoized, the pass
// writes into a reused report. Before the two-phase split this measured
// CostEvaluator::evaluate over memoized shapes — the same semantic point
// of the pipeline (BENCH_engine.json tracks it as cost_evaluator_ns).
void BM_CostEvaluator(benchmark::State& state) {
  const cim::CostEvaluator eval{cim::HardwareConfig{}, paper_config().evaluator.cost};
  const cim::LayerShapeSpan span = cim::LayerShapeSpan::from(
      nn::backbone_shapes(kRollout, paper_config().evaluator.backbone));
  cim::CostReport report;
  for (auto _ : state) {
    eval.evaluate_span(span, report);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CostEvaluator);

// Full-detail evaluation (per-layer costs + mapping), shape flattening
// included — what examples and offline analyses pay per call.
void BM_CostEvaluatorDetail(benchmark::State& state) {
  const cim::CostEvaluator eval{cim::HardwareConfig{}, paper_config().evaluator.cost};
  const nn::BackboneOptions bopts = paper_config().evaluator.backbone;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(kRollout, bopts));
  }
}
BENCHMARK(BM_CostEvaluatorDetail);

void BM_SurrogateAccuracy(benchmark::State& state) {
  const surrogate::AccuracyModel model(paper_config().evaluator.accuracy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.noisy_accuracy(kRollout, 0.1, 1));
  }
}
BENCHMARK(BM_SurrogateAccuracy);

void BM_FullSurrogateEvaluation(benchmark::State& state) {
  core::SurrogateEvaluator eval(paper_config().evaluator);
  search::Design d;
  d.rollout = kRollout;
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(d, rng));
  }
}
BENCHMARK(BM_FullSurrogateEvaluation);

// One engine round through the batch contract: distinct designs, each with
// its own pre-forked RNG stream, costed in one evaluate_batch pass — the
// work a pool worker does per chunk wakeup.
void BM_EvaluateBatch(benchmark::State& state) {
  core::SurrogateEvaluator eval(paper_config().evaluator);
  const search::SearchSpace space{paper_config().space};
  util::Rng design_rng(11);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<search::Design> designs;
  designs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) designs.push_back(space.sample(design_rng));
  std::vector<util::Rng> rngs(n, util::Rng(0));
  std::vector<core::Evaluation> evals(n);
  std::vector<core::EvalRequest> requests(n);
  util::Rng stream(12);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < n; ++i) {
      rngs[i] = stream.fork();
      requests[i] = core::EvalRequest{&designs[i], &rngs[i], &evals[i]};
    }
    state.ResumeTiming();
    eval.evaluate_batch(std::span<core::EvalRequest>(requests));
    benchmark::DoNotOptimize(evals);
  }
}
BENCHMARK(BM_EvaluateBatch)->Arg(8);

void BM_PromptBuild(benchmark::State& state) {
  llm::PromptBuilder builder{search::SearchSpace{paper_config().space}, {}};
  std::vector<llm::HistoryEntry> history(static_cast<std::size_t>(state.range(0)));
  for (auto& h : history) {
    h.design.rollout = kRollout;
    h.performance = 0.4;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(history));
  }
}
BENCHMARK(BM_PromptBuild)->Arg(0)->Arg(20)->Arg(64);

void BM_ResponseParse(benchmark::State& state) {
  const search::SearchSpace space(paper_config().space);
  const std::string response =
      "Based on the results, I suggest:\n"
      "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]\n"
      "hardware=[FeFET,2,6,128,8]";
  for (auto _ : state) {
    benchmark::DoNotOptimize(llm::parse_design_response(response, space));
  }
}
BENCHMARK(BM_ResponseParse);

void BM_SimulatedGpt4Turn(benchmark::State& state) {
  llm::SimulatedGpt4 gpt;
  llm::PromptBuilder builder{search::SearchSpace{paper_config().space}, {}};
  std::vector<llm::HistoryEntry> history(20);
  for (auto& h : history) {
    h.design.rollout = kRollout;
    h.performance = 0.4;
  }
  const llm::ChatRequest req = builder.build(history);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpt.complete(req));
  }
}
BENCHMARK(BM_SimulatedGpt4Turn);

void BM_RlProposeFeedback(benchmark::State& state) {
  search::RlOptimizer rl{search::SearchSpace{paper_config().space}};
  util::Rng rng(2);
  for (auto _ : state) {
    const search::Design d = rl.propose(rng);
    search::Observation obs;
    obs.design = d;
    obs.reward = 0.3;
    rl.feedback(obs);
  }
}
BENCHMARK(BM_RlProposeFeedback);

void BM_MonteCarloSurrogate(benchmark::State& state) {
  const surrogate::AccuracyModel model(paper_config().evaluator.accuracy);
  util::Rng rng(3);
  const int samples = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(noise::monte_carlo(
        [&](util::Rng& r) {
          return model.noisy_accuracy_sample(kRollout, 0.1, 1, r);
        },
        samples, rng));
  }
}
BENCHMARK(BM_MonteCarloSurrogate)->Arg(16)->Arg(64);

void BM_Conv2dForward(benchmark::State& state) {
  util::Rng rng(4);
  const int c = static_cast<int>(state.range(0));
  const tensor::ConvGeom g{16, 16, 3, 1, 1};
  const tensor::Tensor x = tensor::Tensor::uniform({4, c, 16, 16}, -1, 1, rng);
  const tensor::Tensor w = tensor::Tensor::uniform({c, c, 3, 3}, -1, 1, rng);
  const tensor::Tensor b = tensor::Tensor::uniform({c}, -1, 1, rng);
  tensor::Tensor y({4, c, 16, 16});
  std::vector<float> scratch;
  for (auto _ : state) {
    tensor::conv2d_forward(x, w, b, g, y, scratch);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
