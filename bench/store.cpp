// Micro-benchmarks of the content-addressed evaluation store: cold lookup
// (miss over mapped segments), warm mmap lookup (hit via compacted index
// buckets), insert, save (segment publication) and compaction throughput.
// These are the numbers behind the store-v2 claim that warm saves cost
// O(new entries) and warm lookups are zero-copy probes.
//
// Usage: bench_store [records] [reps]
//   records: store population size (default 20000)
//   reps:    timing repetitions, min is reported (default 5)
//   `--json=` (or LCDA_BENCH_JSON) archives the measurements.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lcda/core/report.h"
#include "lcda/store/eval_store.h"
#include "lcda/util/json_lite.h"

int main(int argc, char** argv) {
  using namespace lcda;
  using clock = std::chrono::steady_clock;
  namespace fs = std::filesystem;
  const auto args = core::positional_args(argc, argv);
  const std::uint64_t records = args.size() > 0
                                    ? std::strtoull(args[0].c_str(), nullptr, 10)
                                    : 20000;
  const int reps = args.size() > 1 ? std::atoi(args[1].c_str()) : 5;

  const std::string dir =
      (fs::temp_directory_path() / "lcda_bench_store").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  store::EvalStore::Options opts;
  opts.directory = dir;
  opts.eval_fingerprint = 0xbe7c;
  opts.stream_fingerprint = 0x1;

  core::Evaluation ev;
  ev.accuracy = 0.875;
  ev.accuracy_stddev = 0.01;
  ev.replay_mean = 0.9;
  ev.replay_spread = 0.02;
  ev.has_replay_params = true;
  ev.cost.valid = true;
  ev.cost.energy_total_pj = 6.02e7;
  ev.cost.latency_ns = 5.5e5;
  ev.cost.area_total_mm2 = 42.0;

  const auto min_over_reps = [&](auto&& body) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = clock::now();
      body();
      const auto t1 = clock::now();
      const double ms =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count() /
          1e6;
      if (ms < best) best = ms;
    }
    return best;
  };

  // Populate once: inserts + one save (the O(new) warm-save path).
  double insert_ms = 0.0;
  double save_ms = 0.0;
  {
    store::EvalStore store(opts);
    const auto t0 = clock::now();
    for (std::uint64_t h = 1; h <= records; ++h) store.insert(h, ev);
    const auto t1 = clock::now();
    if (!store.save()) {
      std::fprintf(stderr, "bench_store: save failed\n");
      return 1;
    }
    const auto t2 = clock::now();
    insert_ms =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() /
        1e6;
    save_ms =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count() /
        1e6;
  }

  // Lookups against live segments (what a warm rerun probes before any
  // compaction has happened).
  double segment_lookup_ms = 0.0;
  {
    store::EvalStore store(opts);
    segment_lookup_ms = min_over_reps([&] {
      for (std::uint64_t h = 1; h <= records; ++h) {
        if (!store.lookup(h)) {
          std::fprintf(stderr, "bench_store: unexpected miss\n");
          std::exit(1);
        }
      }
    });
  }

  // Compaction throughput, then lookups against the mmap'd index buckets.
  const auto t0 = clock::now();
  const store::CompactionReport report = store::compact_store(dir, {}, 16);
  const auto t1 = clock::now();
  const double compact_ms =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() /
      1e6;
  if (report.records_kept != records) {
    std::fprintf(stderr, "bench_store: compaction lost records\n");
    return 1;
  }

  double bucket_lookup_ms = 0.0;
  double miss_ms = 0.0;
  {
    store::EvalStore store(opts);
    bucket_lookup_ms = min_over_reps([&] {
      for (std::uint64_t h = 1; h <= records; ++h) {
        if (!store.lookup(h)) {
          std::fprintf(stderr, "bench_store: unexpected miss\n");
          std::exit(1);
        }
      }
    });
    miss_ms = min_over_reps([&] {
      for (std::uint64_t h = 1; h <= records; ++h) {
        if (store.lookup(records + h)) {
          std::fprintf(stderr, "bench_store: unexpected hit\n");
          std::exit(1);
        }
      }
    });
  }

  const double per = static_cast<double>(records) / 1000.0;  // -> us/k
  std::printf("# Evaluation store micro-benchmarks (%llu records, min of %d)\n",
              static_cast<unsigned long long>(records), reps);
  std::printf("%-28s %12s %14s\n", "operation", "total(ms)", "per-record(us)");
  std::printf("%-28s %12.2f %14.3f\n", "insert", insert_ms,
              insert_ms / per);
  std::printf("%-28s %12.2f %14.3f\n", "save (publish segment)", save_ms,
              save_ms / per);
  std::printf("%-28s %12.2f %14.3f\n", "lookup (live segments)",
              segment_lookup_ms, segment_lookup_ms / per);
  std::printf("%-28s %12.2f %14.3f\n", "compact", compact_ms,
              compact_ms / per);
  std::printf("%-28s %12.2f %14.3f\n", "lookup (index buckets)",
              bucket_lookup_ms, bucket_lookup_ms / per);
  std::printf("%-28s %12.2f %14.3f\n", "lookup miss", miss_ms, miss_ms / per);

  if (const std::string json_path = core::json_output_path(argc, argv);
      !json_path.empty()) {
    util::Json doc = util::Json::object();
    doc["experiment"] = "store_micro";
    doc["records"] = records;
    doc["reps"] = reps;
    doc["insert_ms"] = insert_ms;
    doc["save_ms"] = save_ms;
    doc["segment_lookup_ms"] = segment_lookup_ms;
    doc["compact_ms"] = compact_ms;
    doc["bucket_lookup_ms"] = bucket_lookup_ms;
    doc["miss_ms"] = miss_ms;
    core::write_json_file(doc, json_path);
  }

  fs::remove_all(dir);
  return 0;
}
