// Design-choice ablations beyond the paper's figures (DESIGN.md "ours"):
//  1. hardware-knob sweeps on the fixed VGG-style topology — how each NACIM
//     knob moves energy/latency/area/accuracy (the gradients the optimizers
//     must discover);
//  2. optimizer ablation — LCDA vs NACIM-RL vs Genetic vs Random at equal
//     episode budgets (20 and 100) on the energy objective.
// A thin driver over the "paper-energy" scenario: the sweep reads its
// backbone and accuracy calibration from the scenario config, and the
// strategy ablation runs each strategy through the scenario's engine.
#include <cstdio>

#include "lcda/cim/cost_model.h"
#include "lcda/core/scenario.h"
#include "lcda/surrogate/accuracy_model.h"

int main() {
  using namespace lcda;
  const core::ExperimentConfig base = core::scenario_by_name("paper-energy").config;
  const std::vector<nn::ConvSpec> rollout = {{32, 3}, {32, 3}, {64, 3},
                                             {64, 3}, {128, 3}, {128, 3}};
  const nn::BackboneOptions& bopts = base.evaluator.backbone;
  const surrogate::AccuracyModel accuracy(base.evaluator.accuracy);

  std::printf("# Ablation 1: one-knob-at-a-time hardware sweeps "
              "(baseline RRAM b2 adc6 xbar128 mux8)\n");
  std::printf("%-26s %10s %10s %9s %7s\n", "config", "energy(pJ)", "lat(ns)",
              "area(mm2)", "acc");
  auto report = [&](const cim::HardwareConfig& hw) {
    const cim::CostEvaluator eval(hw);
    const cim::CostReport rep = eval.evaluate(rollout, bopts);
    const double acc = accuracy.noisy_accuracy(rollout, rep.weight_sigma,
                                               rep.max_adc_deficit_bits);
    std::printf("%-26s %10.3g %10.3g %9.1f %7.3f\n", hw.describe().c_str(),
                rep.energy_total_pj, rep.latency_ns, rep.area_total_mm2, acc);
  };

  report(cim::HardwareConfig{});  // baseline
  for (auto device : {cim::DeviceType::kFefet}) {
    cim::HardwareConfig hw;
    hw.device = device;
    report(hw);
  }
  for (int bits : {1, 4}) {
    cim::HardwareConfig hw;
    hw.bits_per_cell = bits;
    report(hw);
  }
  for (int adc : {4, 8}) {
    cim::HardwareConfig hw;
    hw.adc_bits = adc;
    report(hw);
  }
  for (int xbar : {64, 256}) {
    cim::HardwareConfig hw;
    hw.xbar_size = xbar;
    report(hw);
  }
  for (int mux : {4}) {
    cim::HardwareConfig hw;
    hw.col_mux = mux;
    report(hw);
  }

  std::printf("\n# Ablation 2: optimizer strategies on reward_ae "
              "(mean over 3 seeds)\n");
  std::printf("%-12s %14s %14s\n", "strategy", "best @20 eps", "best @100 eps");
  for (core::Strategy s : {core::Strategy::kLcda, core::Strategy::kNacimRl,
                           core::Strategy::kGenetic, core::Strategy::kNsga2,
                           core::Strategy::kRandom, core::Strategy::kLcdaNaive}) {
    double best20 = 0.0, best100 = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      core::ExperimentConfig cfg = base;
      cfg.seed = seed;
      const core::RunResult run = core::run_strategy(s, 100, cfg);
      best100 += run.best_reward() / 3.0;
      const auto rmax = run.reward_running_max();
      best20 += rmax[19] / 3.0;
    }
    std::printf("%-12s %14.3f %14.3f\n",
                std::string(core::strategy_name(s)).c_str(), best20, best100);
  }
  return 0;
}
