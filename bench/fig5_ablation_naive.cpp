// Regenerates Figure 5 (ablation, paper Sec. IV-C): LCDA vs LCDA-naive on
// the accuracy-energy objective. LCDA-naive runs the *same* simulated LLM
// through the *same* loop, but the prompt is stripped of every hint that
// the task is SW/HW co-design — exactly the paper's ablation. Without the
// domain framing the model falls back to generic numeric priors and fails
// to deliver efficient designs.
// A thin driver over the "naive" scenario (the paper-energy config whose
// default strategy is LCDA-naive): the same study is
// `lcda_run --scenario=naive --strategy=lcda,naive`. `--json=` (or
// LCDA_BENCH_JSON) archives both runs with cache counters as JSON.
#include <cstdio>
#include <iostream>

#include "lcda/core/report.h"
#include "lcda/core/scenario.h"
#include "lcda/core/pareto.h"
#include "lcda/util/csv.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const auto args = core::positional_args(argc, argv);
  const core::Scenario scenario = core::scenario_by_name("naive");
  core::ExperimentConfig cfg = scenario.config;
  cfg.seed = !args.empty() ? static_cast<std::uint64_t>(std::atoll(args[0].c_str())) : 1;
  cfg.parallelism = core::env_parallelism();

  const core::RunResult lcda =
      core::run_strategy(core::Strategy::kLcda, cfg.lcda_episodes, cfg);
  const core::RunResult naive =
      core::run_strategy(scenario.default_strategy, cfg.lcda_episodes, cfg);

  if (const std::string json_path = core::json_output_path(argc, argv);
      !json_path.empty()) {
    core::write_json_file(
        core::experiment_to_json("fig5_ablation_naive", cfg.seed,
                                 {{"LCDA", &lcda}, {"LCDA-naive", &naive}}),
        json_path);
  }

  std::printf("# Figure 5: accuracy-energy trade-offs, LCDA vs LCDA-naive\n");
  util::CsvWriter csv(std::cout);
  csv.header({"method", "episode", "energy_pj", "accuracy_pct", "reward",
              "valid", "design"});
  auto dump = [&](const core::RunResult& run, const char* label) {
    for (const auto& ep : run.episodes) {
      csv.field(label)
          .field(ep.episode)
          .field(ep.energy_pj)
          .field(100.0 * ep.accuracy)
          .field(ep.reward)
          .field(static_cast<long long>(ep.valid))
          .field(ep.design.rollout_text())
          .endrow();
    }
  };
  dump(lcda, "LCDA");
  dump(naive, "LCDA-naive");

  const auto lp = core::tradeoff_points(lcda, cfg.objective);
  const auto np = core::tradeoff_points(naive, cfg.objective);
  int naive_invalid = 0;
  for (const auto& ep : naive.episodes) naive_invalid += ep.valid ? 0 : 1;

  std::printf("\n# Summary (paper expectations in brackets)\n");
  std::printf("best reward: LCDA %.3f vs LCDA-naive %.3f  [naive fails to "
              "provide efficient designs]\n",
              lcda.best_reward(), naive.best_reward());
  std::printf("dominated area (<=4e7 pJ): LCDA %.3g vs LCDA-naive %.3g  "
              "[prior knowledge matters]\n",
              core::dominated_area(lp.points, 4e7),
              core::dominated_area(np.points, 4e7));
  std::printf("invalid (area-over-budget) proposals: LCDA %d vs LCDA-naive "
              "%d of %d\n",
              static_cast<int>(lcda.episodes.size()) -
                  static_cast<int>(lp.points.size()),
              naive_invalid, cfg.lcda_episodes);
  return 0;
}
