// Scaling study of the batched parallel evaluation engine: wall-clock of
// run_aggregate (8 seeds x NACIM-length runs) at increasing parallelism,
// with a bit-identity check against the sequential baseline. This is the
// acceptance harness for the engine refactor: speedup must come with
// byte-for-byte identical science.
//
// Usage: bench_engine_scaling [seeds] [episodes]
//   LCDA_PARALLELISM caps the sweep's largest setting (0 = all hardware
//   threads, the default). `--json=` (or LCDA_BENCH_JSON) archives the
//   sweep — wall-clocks plus aggregate cache_hits/cache_misses — as JSON.
//
// A thin driver over the "paper-energy" scenario.
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

#include "lcda/core/report.h"
#include "lcda/core/scenario.h"
#include "lcda/core/stats_runner.h"
#include "lcda/util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace lcda;
  using clock = std::chrono::steady_clock;
  const auto args = core::positional_args(argc, argv);
  const int seeds = args.size() > 0 ? std::atoi(args[0].c_str()) : 8;
  const int episodes = args.size() > 1 ? std::atoi(args[1].c_str()) : 300;
  const int max_par = core::env_parallelism(/*fallback=*/0);

  core::ExperimentConfig cfg = core::scenario_by_name("paper-energy").config;
  cfg.seed = 1;

  auto timed_aggregate = [&](int parallelism) {
    core::ExperimentConfig run_cfg = cfg;
    run_cfg.parallelism = parallelism;
    const auto t0 = clock::now();
    const auto agg = core::run_aggregate(core::Strategy::kNacimRl, episodes,
                                         seeds, run_cfg,
                                         std::numeric_limits<double>::quiet_NaN());
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
        1000.0;
    return std::pair<double, core::AggregateResult>(ms, agg);
  };

  std::printf("# Engine scaling: run_aggregate(NACIM, %d episodes, %d seeds)\n",
              episodes, seeds);
  std::printf("%-12s %12s %10s %14s %12s\n", "parallelism", "wall(ms)",
              "speedup", "final best", "identical");

  const auto [base_ms, base_agg] = timed_aggregate(1);
  std::printf("%-12d %12.1f %9.2fx %14.4f %12s\n", 1, base_ms, 1.0,
              base_agg.final_best.mean(), "baseline");

  util::Json sweep = util::Json::array();
  const auto sweep_row = [](int parallelism, double ms,
                            const core::AggregateResult& agg) {
    util::Json row = util::Json::object();
    row["parallelism"] = parallelism;
    row["wall_ms"] = ms;
    row["final_best_mean"] = agg.final_best.mean();
    row["cache_hits"] = static_cast<long long>(agg.cache_hits);
    row["cache_misses"] = static_cast<long long>(agg.cache_misses);
    row["persistent_hits"] = static_cast<long long>(agg.persistent_hits);
    return row;
  };
  sweep.push_back(sweep_row(1, base_ms, base_agg));

  for (int par = 2; par <= max_par; par *= 2) {
    const auto [ms, agg] = timed_aggregate(par);
    bool identical = agg.final_best.mean() == base_agg.final_best.mean() &&
                     agg.final_best.min() == base_agg.final_best.min() &&
                     agg.final_best.max() == base_agg.final_best.max();
    for (std::size_t e = 0; identical && e < agg.running_best.size(); ++e) {
      identical = agg.running_best[e].mean() == base_agg.running_best[e].mean();
    }
    std::printf("%-12d %12.1f %9.2fx %14.4f %12s\n", par, ms, base_ms / ms,
                agg.final_best.mean(), identical ? "yes" : "NO");
    if (!identical) {
      std::printf("\nFATAL: parallel trace diverged from sequential trace\n");
      return 1;
    }
    sweep.push_back(sweep_row(par, ms, agg));
  }

  if (const std::string json_path = core::json_output_path(argc, argv);
      !json_path.empty()) {
    util::Json doc = util::Json::object();
    doc["experiment"] = "engine_scaling";
    doc["seeds"] = seeds;
    doc["episodes"] = episodes;
    doc["sweep"] = sweep;
    core::write_json_file(doc, json_path);
  }
  return 0;
}
