// Scaling study of the batched parallel evaluation engine: wall-clock of
// run_aggregate (8 seeds x NACIM-length runs) at increasing parallelism,
// with a bit-identity check against the sequential baseline. This is the
// acceptance harness for the engine refactor: speedup must come with
// byte-for-byte identical science.
//
// Usage: bench_engine_scaling [seeds] [episodes]
//   LCDA_PARALLELISM caps the sweep's largest setting (0 = all hardware
//   threads, the default).
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

#include "lcda/core/experiment.h"
#include "lcda/core/stats_runner.h"
#include "lcda/util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace lcda;
  using clock = std::chrono::steady_clock;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 8;
  const int episodes = argc > 2 ? std::atoi(argv[2]) : 300;
  const int max_par = core::env_parallelism(/*fallback=*/0);

  core::ExperimentConfig cfg;
  cfg.seed = 1;

  auto timed_aggregate = [&](int parallelism) {
    core::ExperimentConfig run_cfg = cfg;
    run_cfg.parallelism = parallelism;
    const auto t0 = clock::now();
    const auto agg = core::run_aggregate(core::Strategy::kNacimRl, episodes,
                                         seeds, run_cfg,
                                         std::numeric_limits<double>::quiet_NaN());
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
        1000.0;
    return std::pair<double, core::AggregateResult>(ms, agg);
  };

  std::printf("# Engine scaling: run_aggregate(NACIM, %d episodes, %d seeds)\n",
              episodes, seeds);
  std::printf("%-12s %12s %10s %14s %12s\n", "parallelism", "wall(ms)",
              "speedup", "final best", "identical");

  const auto [base_ms, base_agg] = timed_aggregate(1);
  std::printf("%-12d %12.1f %9.2fx %14.4f %12s\n", 1, base_ms, 1.0,
              base_agg.final_best.mean(), "baseline");

  for (int par = 2; par <= max_par; par *= 2) {
    const auto [ms, agg] = timed_aggregate(par);
    bool identical = agg.final_best.mean() == base_agg.final_best.mean() &&
                     agg.final_best.min() == base_agg.final_best.min() &&
                     agg.final_best.max() == base_agg.final_best.max();
    for (std::size_t e = 0; identical && e < agg.running_best.size(); ++e) {
      identical = agg.running_best[e].mean() == base_agg.running_best[e].mean();
    }
    std::printf("%-12d %12.1f %9.2fx %14.4f %12s\n", par, ms, base_ms / ms,
                agg.final_best.mean(), identical ? "yes" : "NO");
    if (!identical) {
      std::printf("\nFATAL: parallel trace diverged from sequential trace\n");
      return 1;
    }
  }
  return 0;
}
