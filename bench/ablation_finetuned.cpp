// The ablation the paper could not run (Sec. IV-B: "we don't have the
// privilege to fine-tune the GPT-4 model, hence we are unable to present
// results for a fine-tuned optimizer"): LCDA with a simulated LLM whose
// incorrect CiM kernel priors are corrected, on the latency objective
// where those priors caused Fig. 4's failure.
//
// Expectation: LCDA-finetuned closes (most of) the gap to NACIM that plain
// LCDA shows in Fig. 4, at LCDA's 20-episode budget.
// A thin driver over the "finetuned" scenario (the paper-latency config
// whose default strategy is LCDA-finetuned): the same study is
// `lcda_run --scenario=finetuned --strategy=lcda,finetuned,nacim --seeds=N`.
#include <cstdio>
#include <memory>
#include <vector>

#include "lcda/core/scenario.h"
#include "lcda/core/report.h"
#include "lcda/core/pareto.h"
#include "lcda/util/stats.h"
#include "lcda/util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const auto args = core::positional_args(argc, argv);
  const int seeds = !args.empty() ? std::atoi(args[0].c_str()) : 5;
  if (seeds <= 0) {
    std::fprintf(stderr, "usage: %s [seeds >= 1]\n", argv[0]);
    return 1;
  }
  const int parallelism = core::env_parallelism();
  const core::Scenario scenario = core::scenario_by_name("finetuned");

  std::printf("# Fine-tuned-LLM ablation on the latency objective "
              "(reward_al, %d seeds, parallelism %d)\n", seeds, parallelism);
  std::printf("%-5s %12s %14s %12s | %14s %18s %14s\n", "seed", "LCDA best",
              "LCDA-FT best", "NACIM best", "LCDA min-lat", "LCDA-FT min-lat",
              "NACIM min-lat");

  // Fan the seeds out; each seed's three runs are independent of worker
  // scheduling, and the table below prints them in seed order.
  struct SeedRuns {
    core::RunResult lcda, ft, nacim;
  };
  std::vector<SeedRuns> runs(static_cast<std::size_t>(seeds));
  std::unique_ptr<util::ThreadPool> pool;
  if (parallelism > 1) pool = std::make_unique<util::ThreadPool>(parallelism);
  util::parallel_for_each_index(
      pool.get(), runs.size(), [&](std::size_t s) {
        core::ExperimentConfig cfg = scenario.config;
        cfg.seed = static_cast<std::uint64_t>(s) + 1;
        runs[s].lcda = core::run_strategy(core::Strategy::kLcda,
                                          cfg.lcda_episodes, cfg);
        runs[s].ft = core::run_strategy(scenario.default_strategy,
                                        cfg.lcda_episodes, cfg);
        runs[s].nacim = core::run_strategy(core::Strategy::kNacimRl,
                                           cfg.nacim_episodes, cfg);
      });

  util::OnlineStats lcda_best, ft_best, nacim_best;
  for (int s = 0; s < seeds; ++s) {
    const auto& [lcda, ft, nacim] = runs[static_cast<std::size_t>(s)];
    auto min_lat = [&](const core::RunResult& run) {
      double m = 1e18;
      for (const auto& ep : run.episodes) {
        if (ep.valid) m = std::min(m, ep.latency_ns);
      }
      return m;
    };
    std::printf("%-5d %12.3f %14.3f %12.3f | %14.3g %18.3g %14.3g\n", s + 1,
                lcda.best_reward(), ft.best_reward(), nacim.best_reward(),
                min_lat(lcda), min_lat(ft), min_lat(nacim));
    lcda_best.add(lcda.best_reward());
    ft_best.add(ft.best_reward());
    nacim_best.add(nacim.best_reward());
  }

  std::printf("\n# Summary\n");
  std::printf("mean best reward: LCDA %.3f, LCDA-finetuned %.3f, NACIM(500) "
              "%.3f\n", lcda_best.mean(), ft_best.mean(), nacim_best.mean());
  std::printf("gap to NACIM closed by fine-tuning: %.0f%%\n",
              100.0 * (ft_best.mean() - lcda_best.mean()) /
                  std::max(1e-9, nacim_best.mean() - lcda_best.mean()));
  return 0;
}
