// Regenerates the paper's headline claim (Sec. IV-A, abstract): "while
// NACIM necessitates a minimum of 500 episodes ... LCDA can unearth
// comparable solutions within just 20 episodes. This ... translates into a
// speedup of 25 times."
//
// Two metrics, over multiple seeds:
//  * budget ratio — the paper's accounting: NACIM's required budget (500)
//    over LCDA's (20) = 25x, validated by checking LCDA's 20-episode best
//    is comparable to (>= 95% of) NACIM's 500-episode best;
//  * episodes-to-threshold — stricter: first episode at which each method
//    reaches 95% of NACIM's final best.
//
// Seeds fan out over LCDA_PARALLELISM worker threads (0 = all hardware
// threads); the table is bit-identical for every setting.
// A thin driver over the "paper-energy" scenario.
#include <cstdio>
#include <memory>
#include <vector>

#include "lcda/core/report.h"
#include "lcda/core/scenario.h"
#include "lcda/util/stats.h"
#include "lcda/util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const auto args = core::positional_args(argc, argv);
  const int seeds = !args.empty() ? std::atoi(args[0].c_str()) : 5;
  if (seeds <= 0) {
    std::fprintf(stderr, "usage: %s [seeds >= 1]\n", argv[0]);
    return 1;
  }
  const int parallelism = core::env_parallelism();
  const core::ExperimentConfig base = core::scenario_by_name("paper-energy").config;

  // Seeds 1..N directly (the historical table seeding), fanned out over
  // the pool; the table below prints them in seed order.
  std::vector<core::SpeedupReport> reports(static_cast<std::size_t>(seeds));
  std::unique_ptr<util::ThreadPool> pool;
  if (parallelism > 1) pool = std::make_unique<util::ThreadPool>(parallelism);
  util::parallel_for_each_index(
      pool.get(), reports.size(), [&](std::size_t s) {
        core::ExperimentConfig cfg = base;
        cfg.seed = static_cast<std::uint64_t>(s) + 1;
        reports[s] = core::measure_speedup(cfg, 0.95);
      });

  std::printf("# Table: episodes to a comparable solution (%d seeds, "
              "parallelism %d)\n", seeds, parallelism);
  std::printf("%-5s %12s %12s %14s %14s %10s\n", "seed", "LCDA best",
              "NACIM best", "LCDA eps->thr", "NACIM eps->thr", "speedup");

  util::OnlineStats speedups;
  int comparable = 0;
  for (int s = 0; s < seeds; ++s) {
    const core::SpeedupReport& rep = reports[static_cast<std::size_t>(s)];
    if (rep.lcda_best >= 0.95 * rep.nacim_best) ++comparable;
    std::printf("%-5d %12.3f %12.3f %14d %14d %9.1fx\n", s + 1, rep.lcda_best,
                rep.nacim_best, rep.lcda_episodes, rep.nacim_episodes,
                rep.speedup());
    if (rep.speedup() > 0) speedups.add(rep.speedup());
  }

  std::printf("\n# Summary (paper expectations in brackets)\n");
  std::printf("LCDA(20) comparable to NACIM(500) in %d/%d seeds  "
              "[comparable solutions]\n", comparable, seeds);
  std::printf("budget-ratio speedup: 500/20 = 25.0x  [the paper's 25x]\n");
  std::printf("episodes-to-threshold speedup: geometric-scale mean %.1fx "
              "(min %.1fx, max %.1fx)  [>= 25x]\n",
              speedups.mean(), speedups.min(), speedups.max());
  return 0;
}
