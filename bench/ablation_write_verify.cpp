// SWIM-style selective write-verify ablation (paper ref [5]) on the *real*
// training pipeline: train one candidate with noise injection, then sweep
// the fraction of magnitude-selected weights that get write-verified and
// measure Monte-Carlo accuracy vs. programming cost.
//
// Expected shape (SWIM's claim): accuracy rises steeply for small verified
// fractions and saturates — verifying ~10-25% of weights captures most of
// the benefit at a small multiple of the single-pulse programming cost.
// Dataset, backbone and hardware cost options come from the
// "trained-small" scenario — the registry entry for the faithful training
// pipeline at laptop scale — so this bench and `lcda_run
// --scenario=trained-small` exercise the same reduced setting.
#include <cstdio>

#include "lcda/cim/cost_model.h"
#include "lcda/core/scenario.h"
#include "lcda/data/synthetic_cifar.h"
#include "lcda/nn/model_builder.h"
#include "lcda/nn/trainer.h"
#include "lcda/noise/monte_carlo.h"
#include "lcda/noise/write_verify.h"
#include "lcda/search/design.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const int mc_samples = argc > 1 ? std::atoi(argv[1]) : 8;

  const core::TrainedEvaluator::Options topts_scenario =
      core::scenario_by_name("trained-small").config.trained;
  const data::TrainTest data = data::make_synthetic_cifar(topts_scenario.dataset);

  const std::vector<nn::ConvSpec> rollout = {{16, 3}, {24, 3}, {32, 3}, {48, 3}};
  nn::BackboneOptions bopts = topts_scenario.backbone;
  bopts.input_size = topts_scenario.dataset.image_size;
  bopts.num_classes = topts_scenario.dataset.num_classes;

  cim::HardwareConfig hw;  // RRAM b2: a deliberately noisy operating point
  const cim::CostEvaluator cost_eval(hw);
  const cim::CostReport cost = cost_eval.evaluate(rollout, bopts);
  const noise::VariationModel variation(cost.weight_sigma);
  const cim::DeviceModel dev = cim::device_model(hw.device);

  util::Rng rng(11);
  nn::Sequential net = nn::build_backbone(rollout, bopts, rng);
  nn::TrainOptions topts;
  topts.epochs = 8;
  topts.sgd.lr = 0.01;  // the 4-stage net needs a gentler rate than default
  // Standard practice: inject at a reduced sigma so training stays stable,
  // then evaluate at the full deployment sigma.
  topts.perturber = noise::VariationModel(0.3 * cost.weight_sigma).as_perturber();
  const auto tr = nn::train(net, data.train, data.test, topts, rng);
  long long weights = 0;
  for (auto* p : net.params()) weights += static_cast<long long>(p->value.size());

  std::printf("topology %s on %s, weight sigma %.3f, clean accuracy %.3f\n\n",
              search::Design{rollout, hw}.rollout_text().c_str(),
              hw.describe().c_str(), variation.weight_sigma(),
              tr.final_test_accuracy);
  std::printf("%-10s %12s %12s %16s %14s\n", "fraction", "mc accuracy",
              "mc stddev", "write pulses", "prog energy(pJ)");

  for (double fraction : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    noise::SelectiveWriteVerify::Options wopts;
    wopts.fraction = fraction;
    const noise::SelectiveWriteVerify swv(variation, wopts);
    util::Rng mc_rng(12);
    const auto mc = noise::monte_carlo(
        [&](util::Rng& r) {
          return nn::evaluate_noisy(net, data.test, swv.as_perturber(), r);
        },
        mc_samples, mc_rng);
    const auto prog = swv.programming_cost(weights, hw.cells_per_weight(), dev);
    std::printf("%-10.2f %12.3f %12.3f %16.3g %14.3g\n", fraction, mc.mean(),
                mc.stddev(), prog.write_pulses, prog.energy_pj);
  }

  std::printf("\n[expected: Monte-Carlo accuracy climbs monotonically toward "
              "the clean accuracy as the verified fraction grows, while "
              "programming cost grows ~8x from none to full verification; "
              "where the knee sits depends on how concentrated the trained "
              "weight magnitudes are]\n");
  return 0;
}
