// Regenerates Figure 3: reward of design candidates per search episode.
//   (a) episodes 0..19  — LCDA vs NACIM (the cold-start contrast);
//   (b) episodes 20..499 — NACIM's slow convergence vs LCDA's projected
//       best-of-first-20 (the paper performs only 20 LCDA episodes and
//       projects its maximum forward).
//
// Output: CSV series for both panels plus a cold-start summary. `--json=`
// (or LCDA_BENCH_JSON) archives both runs with cache counters as JSON.
//
// A thin driver over the "paper-energy" scenario: the same study is
// `lcda_run --scenario=paper-energy --strategy=lcda,nacim`.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "lcda/core/report.h"
#include "lcda/core/scenario.h"
#include "lcda/util/csv.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const auto args = core::positional_args(argc, argv);
  core::ExperimentConfig cfg = core::scenario_by_name("paper-energy").config;
  cfg.seed = !args.empty() ? static_cast<std::uint64_t>(std::atoll(args[0].c_str())) : 1;
  cfg.parallelism = core::env_parallelism();

  const core::RunResult lcda =
      core::run_strategy(core::Strategy::kLcda, cfg.lcda_episodes, cfg);
  const core::RunResult nacim =
      core::run_strategy(core::Strategy::kNacimRl, cfg.nacim_episodes, cfg);
  const double lcda_projected = lcda.best_reward();

  if (const std::string json_path = core::json_output_path(argc, argv);
      !json_path.empty()) {
    core::write_json_file(
        core::experiment_to_json("fig3_reward_episodes", cfg.seed,
                                 {{"LCDA", &lcda}, {"NACIM", &nacim}}),
        json_path);
  }

  std::printf("# Figure 3(a): rewards in early episodes (0..19)\n");
  util::CsvWriter csv_a(std::cout);
  csv_a.header({"episode", "lcda_reward", "nacim_reward"});
  for (int i = 0; i < cfg.lcda_episodes; ++i) {
    csv_a.field(i)
        .field(lcda.episodes[static_cast<std::size_t>(i)].reward)
        .field(nacim.episodes[static_cast<std::size_t>(i)].reward)
        .endrow();
  }

  std::printf("\n# Figure 3(b): rewards in later episodes (20..499); LCDA "
              "projected as max of its first 20\n");
  util::CsvWriter csv_b(std::cout);
  csv_b.header({"episode", "lcda_projected", "nacim_reward"});
  for (int i = cfg.lcda_episodes; i < cfg.nacim_episodes; ++i) {
    if (i % 10 != 0) continue;  // decimate for readability
    csv_b.field(i)
        .field(lcda_projected)
        .field(nacim.episodes[static_cast<std::size_t>(i)].reward)
        .endrow();
  }

  // --- Summary --------------------------------------------------------
  auto mean_first = [](const core::RunResult& run, int n) {
    double s = 0.0;
    for (int i = 0; i < n; ++i) s += run.episodes[static_cast<std::size_t>(i)].reward;
    return s / n;
  };
  const auto nacim_max = nacim.reward_running_max();
  std::printf("\n# Summary (paper expectations in brackets)\n");
  std::printf("mean reward, first 20 episodes: LCDA %+.3f vs NACIM %+.3f  "
              "[LCDA high from the start]\n",
              mean_first(lcda, 20), mean_first(nacim, 20));
  std::printf("LCDA projected best: %+.3f; NACIM running best @100/@300/@500: "
              "%+.3f / %+.3f / %+.3f  [NACIM approaches late]\n",
              lcda_projected, nacim_max[99], nacim_max[299], nacim_max[499]);
  const int catchup = nacim.episodes_to_reach(0.95 * lcda_projected);
  if (catchup >= 0) {
    std::printf("NACIM first reaches 95%% of LCDA's projection at episode %d "
                "[cold start costs hundreds of episodes]\n", catchup);
  } else {
    std::printf("NACIM never reaches 95%% of LCDA's projection within %d "
                "episodes\n", cfg.nacim_episodes);
  }
  return 0;
}
