// Regenerates Figure 4: accuracy-latency trade-offs of candidates from
// LCDA (20 episodes) and NACIM (500 episodes).
//
// Paper claims checked:
//  * LCDA falls short of NACIM here (except possibly one upper-left
//    outlier) — GPT-4's generic kernel-size priors ("smaller kernel =
//    faster", "larger kernel = more accurate") do not hold on CiM hardware;
//  * LCDA struggles to reach sufficiently low latencies.
// A thin driver over the "paper-latency" scenario: the same study is
// `lcda_run --scenario=paper-latency --strategy=lcda,nacim`. `--json=`
// (or LCDA_BENCH_JSON) archives both runs with cache counters as JSON.
#include <cstdio>
#include <iostream>

#include "lcda/core/report.h"
#include "lcda/core/scenario.h"
#include "lcda/core/pareto.h"
#include "lcda/util/csv.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const auto args = core::positional_args(argc, argv);
  core::ExperimentConfig cfg = core::scenario_by_name("paper-latency").config;
  cfg.seed = !args.empty() ? static_cast<std::uint64_t>(std::atoll(args[0].c_str())) : 1;
  cfg.parallelism = core::env_parallelism();

  const core::RunResult lcda =
      core::run_strategy(core::Strategy::kLcda, cfg.lcda_episodes, cfg);
  const core::RunResult nacim =
      core::run_strategy(core::Strategy::kNacimRl, cfg.nacim_episodes, cfg);

  if (const std::string json_path = core::json_output_path(argc, argv);
      !json_path.empty()) {
    core::write_json_file(
        core::experiment_to_json("fig4_accuracy_latency", cfg.seed,
                                 {{"LCDA", &lcda}, {"NACIM", &nacim}}),
        json_path);
  }

  std::printf("# Figure 4: accuracy-latency trade-offs (latency ns on X, "
              "accuracy %% on Y)\n");
  util::CsvWriter csv(std::cout);
  csv.header({"method", "episode", "latency_ns", "accuracy_pct", "reward",
              "design"});
  auto dump = [&](const core::RunResult& run, const char* label) {
    for (const auto& ep : run.episodes) {
      if (!ep.valid) continue;
      csv.field(label)
          .field(ep.episode)
          .field(ep.latency_ns)
          .field(100.0 * ep.accuracy)
          .field(ep.reward)
          .field(ep.design.rollout_text())
          .endrow();
    }
  };
  dump(lcda, "LCDA");
  dump(nacim, "NACIM");

  const auto lp = core::tradeoff_points(lcda, cfg.objective);
  const auto np = core::tradeoff_points(nacim, cfg.objective);
  double lcda_min = 1e18, nacim_min = 1e18;
  for (const auto& p : lp.points) lcda_min = std::min(lcda_min, p.cost);
  for (const auto& p : np.points) nacim_min = std::min(nacim_min, p.cost);

  // Kernel-size statistics: the wrong-prior fingerprint.
  double lcda_kernel_changes = 0;
  for (std::size_t i = 1; i < lcda.episodes.size(); ++i) {
    const auto& prev = lcda.episodes[i - 1].design.rollout;
    const auto& cur = lcda.episodes[i].design.rollout;
    for (std::size_t l = 0; l < cur.size() && l < prev.size(); ++l) {
      if (cur[l].kernel != prev[l].kernel) {
        lcda_kernel_changes += 1;
        break;
      }
    }
  }

  std::printf("\n# Summary (paper expectations in brackets)\n");
  std::printf("fastest valid design: LCDA %.3g ns vs NACIM %.3g ns  "
              "[LCDA struggles to reach low latency]\n", lcda_min, nacim_min);
  std::printf("best reward: LCDA %.3f vs NACIM %.3f  [NACIM >= LCDA on this "
              "objective]\n", lcda.best_reward(), nacim.best_reward());
  std::printf("LCDA episodes that changed a kernel size: %.0f of %zu  "
              "[kernel fiddling driven by wrong CiM priors]\n",
              lcda_kernel_changes, lcda.episodes.size() - 1);
  return 0;
}
