// Regenerates Figure 2: accuracy-energy trade-offs of design candidates
// from LCDA (20 episodes) and NACIM (500 episodes).
//
// Paper claims checked:
//  * both methods reach similar optimal results / similar Pareto fronts in
//    the upper-left region;
//  * NACIM drifts to low-energy candidates with diminished accuracy;
//  * LCDA spans a spectrum of energies, all with reasonably high accuracy.
//
// Output: one CSV row per candidate (the figure's scatter points), then the
// Pareto fronts and a summary validating the claims. `--json=PATH` (or
// LCDA_BENCH_JSON) additionally archives both runs — traces plus
// cache_hits/cache_misses/persistent_hits — as JSON.
//
// A thin driver over the "paper-energy" scenario: the same study is
// `lcda_run --scenario=paper-energy --strategy=lcda,nacim`.
#include <cstdio>
#include <iostream>

#include "lcda/core/report.h"
#include "lcda/core/scenario.h"
#include "lcda/core/pareto.h"
#include "lcda/util/csv.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const auto args = core::positional_args(argc, argv);
  core::ExperimentConfig cfg = core::scenario_by_name("paper-energy").config;
  cfg.seed = !args.empty() ? static_cast<std::uint64_t>(std::atoll(args[0].c_str())) : 1;
  cfg.parallelism = core::env_parallelism();

  const core::RunResult lcda =
      core::run_strategy(core::Strategy::kLcda, cfg.lcda_episodes, cfg);
  const core::RunResult nacim =
      core::run_strategy(core::Strategy::kNacimRl, cfg.nacim_episodes, cfg);

  if (const std::string json_path = core::json_output_path(argc, argv);
      !json_path.empty()) {
    core::write_json_file(
        core::experiment_to_json("fig2_accuracy_energy", cfg.seed,
                                 {{"LCDA", &lcda}, {"NACIM", &nacim}}),
        json_path);
  }

  std::printf("# Figure 2: accuracy-energy trade-offs (energy pJ on X, "
              "accuracy %% on Y)\n");
  util::CsvWriter csv(std::cout);
  csv.header({"method", "episode", "energy_pj", "accuracy_pct", "reward",
              "design"});
  auto dump = [&](const core::RunResult& run, const char* label) {
    for (const auto& ep : run.episodes) {
      if (!ep.valid) continue;
      csv.field(label)
          .field(ep.episode)
          .field(ep.energy_pj)
          .field(100.0 * ep.accuracy)
          .field(ep.reward)
          .field(ep.design.rollout_text())
          .endrow();
    }
  };
  dump(lcda, "LCDA");
  dump(nacim, "NACIM");

  // --- Pareto fronts ------------------------------------------------------
  const auto lp = core::tradeoff_points(lcda, cfg.objective);
  const auto np = core::tradeoff_points(nacim, cfg.objective);
  const auto lf = core::pareto_front(lp.points);
  const auto nf = core::pareto_front(np.points);
  std::printf("\n# Pareto fronts (energy pJ, accuracy %%)\n");
  std::printf("LCDA  front:");
  for (auto i : lf) {
    std::printf(" (%.3g, %.1f)", lp.points[i].cost, 100 * lp.points[i].accuracy);
  }
  std::printf("\nNACIM front:");
  for (auto i : nf) {
    std::printf(" (%.3g, %.1f)", np.points[i].cost, 100 * np.points[i].accuracy);
  }

  // --- Claims -------------------------------------------------------------
  double lcda_best_acc = 0, nacim_best_acc = 0;
  double lcda_min_acc = 1, nacim_min_acc = 1;
  for (const auto& p : lp.points) {
    lcda_best_acc = std::max(lcda_best_acc, p.accuracy);
    lcda_min_acc = std::min(lcda_min_acc, p.accuracy);
  }
  for (const auto& p : np.points) {
    nacim_best_acc = std::max(nacim_best_acc, p.accuracy);
    nacim_min_acc = std::min(nacim_min_acc, p.accuracy);
  }
  const double area_ref = 4e7;  // figure's right edge
  std::printf("\n\n# Summary (paper expectations in brackets)\n");
  std::printf("best accuracy: LCDA %.1f%% vs NACIM %.1f%%  [similar optima]\n",
              100 * lcda_best_acc, 100 * nacim_best_acc);
  std::printf("min accuracy among candidates: LCDA %.1f%% vs NACIM %.1f%%  "
              "[LCDA stays high; NACIM drifts low]\n",
              100 * lcda_min_acc, 100 * nacim_min_acc);
  std::printf("dominated area (<=4e7 pJ): LCDA %.3g vs NACIM %.3g with %dx "
              "fewer episodes  [fronts alike]\n",
              core::dominated_area(lp.points, area_ref),
              core::dominated_area(np.points, area_ref),
              cfg.nacim_episodes / cfg.lcda_episodes);
  return 0;
}
