// Co-design on the accuracy-latency objective (paper Sec. IV-B) — the
// experiment where LCDA's pretrained priors mislead it: GPT-4 believes
// smaller kernels always mean lower latency and larger kernels always mean
// higher accuracy, neither of which holds on variation-prone CiM hardware.
//
// Usage: ./build/example_codesign_latency [lcda_episodes] [nacim_episodes] [seed]
//
// Runs the "paper-latency" scenario from the registry (equivalently:
// `lcda_run --scenario=paper-latency --strategy=lcda,nacim`). The
// LCDA_PARALLELISM environment variable sets the evaluation-engine worker
// count (0 = one per hardware thread); episode traces are bit-identical
// for every setting.
#include <cstdio>
#include <cstdlib>

#include "lcda/core/scenario.h"
#include "lcda/core/pareto.h"

int main(int argc, char** argv) {
  using namespace lcda;
  core::ExperimentConfig cfg = core::scenario_by_name("paper-latency").config;
  cfg.lcda_episodes = argc > 1 ? std::atoi(argv[1]) : 20;
  cfg.nacim_episodes = argc > 2 ? std::atoi(argv[2]) : 500;
  cfg.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  cfg.parallelism = core::env_parallelism();

  const core::RunResult lcda =
      core::run_strategy(core::Strategy::kLcda, cfg.lcda_episodes, cfg);
  const core::RunResult nacim =
      core::run_strategy(core::Strategy::kNacimRl, cfg.nacim_episodes, cfg);

  std::printf("== LCDA candidates (latency ns, accuracy) ==\n");
  for (const auto& ep : lcda.episodes) {
    std::printf("  ep %2d  L %.3g ns  acc %.3f  reward %+.3f  %s\n", ep.episode,
                ep.latency_ns, ep.accuracy, ep.reward,
                ep.design.rollout_text().c_str());
  }

  const auto lp = core::tradeoff_points(lcda, llm::Objective::kLatency);
  const auto np = core::tradeoff_points(nacim, llm::Objective::kLatency);
  double lcda_min = 1e18, nacim_min = 1e18;
  for (const auto& p : lp.points) lcda_min = std::min(lcda_min, p.cost);
  for (const auto& p : np.points) nacim_min = std::min(nacim_min, p.cost);

  std::printf("\nfastest valid design: LCDA %.3g ns vs NACIM %.3g ns\n",
              lcda_min, nacim_min);
  std::printf("best reward: LCDA %.3f vs NACIM %.3f\n", lcda.best_reward(),
              nacim.best_reward());
  if (nacim.best_reward() >= lcda.best_reward()) {
    std::printf("-> as in the paper, LCDA falls short on the latency "
                "objective: its kernel-size priors do not transfer to CiM.\n");
  } else {
    std::printf("-> with this seed LCDA edged out NACIM (the paper's outlier "
                "in the upper-left corner).\n");
  }
  return 0;
}
