// Full SW/HW co-design run on the accuracy-energy objective (paper
// Sec. IV-A): LCDA's simulated-GPT-4 optimizer versus the NACIM
// reinforcement-learning baseline, on identical evaluators.
//
// Usage: ./build/example_codesign_energy [lcda_episodes] [nacim_episodes] [seed]
//
// Runs the "paper-energy" scenario from the registry (equivalently:
// `lcda_run --scenario=paper-energy --strategy=lcda,nacim`). The
// LCDA_PARALLELISM environment variable sets the evaluation-engine worker
// count (0 = one per hardware thread); episode traces are bit-identical
// for every setting.
#include <cstdio>
#include <cstdlib>

#include "lcda/core/scenario.h"
#include "lcda/core/pareto.h"

int main(int argc, char** argv) {
  using namespace lcda;
  core::ExperimentConfig cfg = core::scenario_by_name("paper-energy").config;
  cfg.lcda_episodes = argc > 1 ? std::atoi(argv[1]) : 20;
  cfg.nacim_episodes = argc > 2 ? std::atoi(argv[2]) : 500;
  cfg.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  cfg.parallelism = core::env_parallelism();

  std::printf("== LCDA (LLM-driven, %d episodes) ==\n", cfg.lcda_episodes);
  const core::RunResult lcda =
      core::run_strategy(core::Strategy::kLcda, cfg.lcda_episodes, cfg);
  for (const auto& ep : lcda.episodes) {
    std::printf("  ep %2d  reward %+.3f  acc %.3f  E %.3g pJ  %s\n", ep.episode,
                ep.reward, ep.accuracy, ep.energy_pj,
                ep.design.rollout_text().c_str());
  }

  std::printf("\n== NACIM (RL baseline, %d episodes; printing every 50th) ==\n",
              cfg.nacim_episodes);
  const core::RunResult nacim =
      core::run_strategy(core::Strategy::kNacimRl, cfg.nacim_episodes, cfg);
  for (const auto& ep : nacim.episodes) {
    if (ep.episode % 50 == 0 || ep.episode == cfg.nacim_episodes - 1) {
      std::printf("  ep %3d  reward %+.3f  acc %.3f  E %.3g pJ\n", ep.episode,
                  ep.reward, ep.accuracy, ep.energy_pj);
    }
  }

  std::printf("\n== Pareto fronts (energy pJ, accuracy) ==\n");
  for (const auto* run : {&lcda, &nacim}) {
    const auto pts = core::tradeoff_points(*run, llm::Objective::kEnergy);
    const auto front = core::pareto_front(pts.points);
    std::printf("%s:", run == &lcda ? "LCDA " : "NACIM");
    for (auto i : front) {
      std::printf(" (%.2g, %.2f)", pts.points[i].cost, pts.points[i].accuracy);
    }
    std::printf("\n");
  }

  std::printf("\nbest reward: LCDA %.3f in %d episodes, NACIM %.3f in %d\n",
              lcda.best_reward(), cfg.lcda_episodes, nacim.best_reward(),
              cfg.nacim_episodes);
  std::printf("best LCDA design: %s\n", lcda.best().design.describe().c_str());
  return 0;
}
