// Explainable NAS demo (paper Sec. V, future work #1): run a short LCDA
// search and, after each episode, ask the LLM to explain the change it made
// relative to the previous design — "transparency that breaks the black box
// nature of RL-based NAS".
//
// Usage: ./build/example_explain_search [episodes] [seed]
//
// Search space, evaluator and reward come from the "paper-energy" scenario
// in the registry. LCDA_PARALLELISM sets the evaluation-engine worker
// count (0 = one per hardware thread) — the LLM proposes sequentially, but
// evaluations inside a batch still fan out; traces are bit-identical for
// every setting.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "lcda/core/scenario.h"
#include "lcda/llm/explain.h"
#include "lcda/llm/llm_optimizer.h"
#include "lcda/llm/simulated_gpt4.h"
#include "lcda/util/strings.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 3;

  const core::ExperimentConfig cfg = core::scenario_by_name("paper-energy").config;
  const search::SearchSpace space(cfg.space);
  llm::SimulatedGpt4::Options gopts;
  gopts.seed = seed;
  auto client = std::make_shared<llm::SimulatedGpt4>(gopts);
  llm::LlmOptimizer optimizer(space, client);
  core::SurrogateEvaluator evaluator(cfg.evaluator);
  const core::RewardFunction reward = core::make_reward(cfg);

  core::CodesignLoop::Options lopts;
  lopts.episodes = episodes;
  lopts.parallelism = core::env_parallelism();
  core::CodesignLoop loop(optimizer, evaluator, reward, lopts);
  util::Rng rng(seed);
  const core::RunResult run = loop.run(rng);

  // A separate Explainer session against the same (simulated) model.
  llm::Explainer explainer(client);
  for (std::size_t i = 0; i < run.episodes.size(); ++i) {
    const auto& ep = run.episodes[i];
    std::printf("episode %zu: %s  -> reward %+.3f\n", i,
                ep.design.rollout_text().c_str(), ep.reward);
    if (i == 0) {
      std::printf("  (first proposal: drawn from the model's pretrained "
                  "design knowledge — no cold start)\n\n");
      continue;
    }
    llm::HistoryEntry prev;
    prev.design = run.episodes[i - 1].design;
    prev.performance = run.episodes[i - 1].reward;
    llm::HistoryEntry cur;
    cur.design = ep.design;
    cur.performance = ep.reward;
    const std::string why =
        explainer.explain(prev, cur, llm::Objective::kEnergy);
    std::printf("  LLM explanation:\n");
    for (const auto& line : util::split(why, '\n')) {
      std::printf("    %s\n", line.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
