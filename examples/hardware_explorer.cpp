// Hardware design-space explorer: sweep every knob of the NACIM hardware
// space for a fixed DNN topology and print the resulting chip costs — a
// handy way to see the tradeoffs the co-design loop navigates.
//
// Usage: ./build/examples/hardware_explorer
#include <cstdio>

#include "lcda/cim/cost_model.h"
#include "lcda/nn/model_builder.h"
#include "lcda/surrogate/accuracy_model.h"

int main() {
  using namespace lcda;
  const std::vector<nn::ConvSpec> rollout = {{32, 3}, {32, 3}, {64, 3},
                                             {64, 3}, {128, 3}, {128, 3}};
  const nn::BackboneOptions bopts;
  const surrogate::AccuracyModel accuracy;
  const cim::HardwareChoices choices;

  std::printf("topology: [[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]] "
              "(CIFAR backbone)\n\n");
  std::printf("%-28s %10s %10s %9s %8s %7s %6s\n", "hardware", "energy(pJ)",
              "lat(ns)", "area(mm2)", "leak(mW)", "acc", "valid");

  for (cim::DeviceType device : choices.devices) {
    for (int bits : choices.bits_per_cell) {
      for (int adc : choices.adc_bits) {
        for (int xbar : choices.xbar_sizes) {
          for (int mux : choices.col_mux) {
            cim::HardwareConfig hw;
            hw.device = device;
            hw.bits_per_cell = bits;
            hw.adc_bits = adc;
            hw.xbar_size = xbar;
            hw.col_mux = mux;
            if (!hw.validate().empty()) continue;
            const cim::CostEvaluator eval(hw);
            const cim::CostReport rep = eval.evaluate(rollout, bopts);
            const double acc = accuracy.noisy_accuracy(
                rollout, rep.weight_sigma, rep.max_adc_deficit_bits);
            std::printf("%-28s %10.3g %10.3g %9.1f %8.1f %7.3f %6s\n",
                        hw.describe().c_str(), rep.energy_total_pj,
                        rep.latency_ns, rep.area_total_mm2, rep.leakage_mw,
                        acc, rep.valid ? "yes" : "NO");
          }
        }
      }
    }
  }
  return 0;
}
