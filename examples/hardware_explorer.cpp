// Hardware design-space explorer: sweep every knob of the NACIM hardware
// space for a fixed DNN topology and print the resulting chip costs — a
// handy way to see the tradeoffs the co-design loop navigates.
//
// Usage: ./build/example_hardware_explorer [scenario]
//
// The hardware choices, backbone and accuracy calibration come from a
// registry scenario (default "paper-energy"). LCDA_PARALLELISM fans the
// sweep out over worker threads (0 = one per hardware thread); rows print
// in the same deterministic order for every setting.
#include <cstdio>
#include <memory>
#include <vector>

#include "lcda/cim/cost_model.h"
#include "lcda/core/scenario.h"
#include "lcda/surrogate/accuracy_model.h"
#include "lcda/util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const core::Scenario scenario =
      core::scenario_by_name(argc > 1 ? argv[1] : "paper-energy");
  const core::ExperimentConfig& cfg = scenario.config;
  const std::vector<nn::ConvSpec> rollout = {{32, 3}, {32, 3}, {64, 3},
                                             {64, 3}, {128, 3}, {128, 3}};
  const nn::BackboneOptions& bopts = cfg.evaluator.backbone;
  const surrogate::AccuracyModel accuracy(cfg.evaluator.accuracy);
  const cim::HardwareChoices& choices = cfg.space.hw;

  std::printf("scenario: %s\n", scenario.name.c_str());
  std::printf("topology: [[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]] "
              "(CIFAR backbone)\n\n");
  std::printf("%-28s %10s %10s %9s %8s %7s %6s\n", "hardware", "energy(pJ)",
              "lat(ns)", "area(mm2)", "leak(mW)", "acc", "valid");

  // Enumerate the grid first, then fan the (independent) cost evaluations
  // out over the pool and print in grid order.
  std::vector<cim::HardwareConfig> grid;
  for (cim::DeviceType device : choices.devices) {
    for (int bits : choices.bits_per_cell) {
      for (int adc : choices.adc_bits) {
        for (int xbar : choices.xbar_sizes) {
          for (int mux : choices.col_mux) {
            cim::HardwareConfig hw;
            hw.device = device;
            hw.bits_per_cell = bits;
            hw.adc_bits = adc;
            hw.xbar_size = xbar;
            hw.col_mux = mux;
            hw.area_budget_mm2 = cfg.space.area_budget_mm2;
            if (hw.validate().empty()) grid.push_back(hw);
          }
        }
      }
    }
  }

  struct Row {
    cim::CostReport report;
    double accuracy = 0.0;
  };
  std::vector<Row> rows(grid.size());
  const int parallelism = core::env_parallelism();
  std::unique_ptr<util::ThreadPool> pool;
  if (parallelism > 1) pool = std::make_unique<util::ThreadPool>(parallelism);
  util::parallel_for_each_index(pool.get(), grid.size(), [&](std::size_t i) {
    const cim::CostEvaluator eval(grid[i], cfg.evaluator.cost);
    rows[i].report = eval.evaluate(rollout, bopts);
    rows[i].accuracy = accuracy.noisy_accuracy(
        rollout, rows[i].report.weight_sigma, rows[i].report.max_adc_deficit_bits);
  });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const cim::CostReport& rep = rows[i].report;
    std::printf("%-28s %10.3g %10.3g %9.1f %8.1f %7.3f %6s\n",
                grid[i].describe().c_str(), rep.energy_total_pj, rep.latency_ns,
                rep.area_total_mm2, rep.leakage_mw, rows[i].accuracy,
                rep.valid ? "yes" : "NO");
  }
  return 0;
}
