// The faithful DNN performance-evaluator pipeline (paper Sec. III-C) at
// laptop scale: build a candidate topology, train it with noise injection
// on the synthetic CIFAR-10 stand-in, then Monte-Carlo evaluate it under
// the hardware's device-variation model.
//
// Usage: ./build/example_train_with_noise [epochs] [mc_samples] [seed]
//
// Dataset and backbone geometry come from the "trained-small" scenario in
// the registry (the reduced setting the TrainedEvaluator runs there).
// LCDA_PARALLELISM (the evaluation-engine worker knob of the loop-driving
// examples and benches) has nothing to fan out here — this example trains
// one candidate on the calling thread.
#include <cstdio>
#include <cstdlib>

#include "lcda/cim/cost_model.h"
#include "lcda/core/scenario.h"
#include "lcda/data/synthetic_cifar.h"
#include "lcda/nn/model_builder.h"
#include "lcda/nn/trainer.h"
#include "lcda/noise/monte_carlo.h"
#include "lcda/noise/variation.h"

int main(int argc, char** argv) {
  using namespace lcda;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 6;
  const int mc_samples = argc > 2 ? std::atoi(argv[2]) : 10;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  // Reduced-scale dataset from the trained-small scenario (full CIFAR
  // geometry is 3x32x32 / 10 classes; the scenario shrinks to keep the
  // trained pipeline to seconds on one core), at this example's
  // historical sample counts.
  const core::TrainedEvaluator::Options scenario_opts =
      core::scenario_by_name("trained-small").config.trained;
  data::SyntheticCifarOptions dopts = scenario_opts.dataset;
  dopts.train_per_class = 24;
  dopts.test_per_class = 12;
  dopts.seed = seed;
  const data::TrainTest data = data::make_synthetic_cifar(dopts);
  std::printf("dataset: %d train / %d test, %dx%d, %d classes\n",
              data.train.size(), data.test.size(), dopts.image_size,
              dopts.image_size, dopts.num_classes);

  // Candidate topology (4 conv stages here; the paper backbone has 6).
  const std::vector<nn::ConvSpec> rollout = {{16, 3}, {24, 3}, {32, 3}, {48, 3}};
  nn::BackboneOptions bopts = scenario_opts.backbone;
  bopts.input_size = dopts.image_size;
  bopts.num_classes = dopts.num_classes;

  // Hardware instance decides the variation level the training must absorb.
  cim::HardwareConfig hw;
  hw.device = cim::DeviceType::kRram;
  hw.bits_per_cell = 2;
  const cim::CostEvaluator cost_eval(hw);
  const cim::CostReport cost = cost_eval.evaluate(rollout, bopts);
  const noise::VariationModel variation(cost.weight_sigma);
  std::printf("hardware: %s -> weight sigma %.3f\n\n", hw.describe().c_str(),
              variation.weight_sigma());

  // Noise-injection training: every forward/backward pass sees a fresh
  // weight perturbation; updates apply to the clean weights [NACIM].
  util::Rng rng(seed);
  nn::Sequential net = nn::build_backbone(rollout, bopts, rng);
  std::printf("model (%lld MACs/sample, %zu params):\n%s\n",
              net.macs_per_sample(), net.param_count(), net.describe().c_str());

  nn::TrainOptions topts;
  topts.epochs = epochs;
  topts.perturber = variation.as_perturber();
  topts.on_epoch = [](int epoch, double loss, double acc) {
    std::printf("  epoch %2d  loss %.3f  clean test acc %.3f\n", epoch, loss, acc);
  };
  const nn::TrainResult tr = nn::train(net, data.train, data.test, topts, rng);

  // Monte-Carlo robustness: each sample programs one simulated chip.
  const noise::MonteCarloResult mc =
      noise::mc_noisy_accuracy(net, data.test, variation, mc_samples, rng);
  std::printf("\nclean accuracy:          %.3f\n", tr.final_test_accuracy);
  std::printf("noisy accuracy (n=%d):   %.3f +/- %.3f  [worst %.3f, best %.3f]\n",
              mc_samples, mc.mean(), mc.stddev(), mc.worst(), mc.best());
  std::printf("hardware: E %.3g pJ, L %.3g ns, area %.1f mm^2\n",
              cost.energy_total_pj, cost.latency_ns, cost.area_total_mm2);
  return 0;
}
