// Quickstart: evaluate one co-design candidate end to end.
//
// Shows the three core objects of the LCDA library:
//   * search::Design       — a DNN rollout + CiM hardware instance
//   * core::SurrogateEvaluator — DNN accuracy under device variation +
//                                NeuroSim-style chip costs
//   * core::RewardFunction — the paper's Eq. (1) accuracy-energy reward
//
// Build & run:  ./build/example_quickstart
//
// Evaluator options come from the "paper-energy" scenario in the registry.
// LCDA_PARALLELISM (the evaluation-engine worker knob used by the
// loop-driving examples and benches) has nothing to fan out here — this
// example evaluates a single candidate on the calling thread.
#include <cstdio>

#include "lcda/core/scenario.h"
#include "lcda/search/design.h"

int main() {
  using namespace lcda;
  const core::ExperimentConfig cfg = core::scenario_by_name("paper-energy").config;

  // The paper's running example rollout: six conv layers as
  // [[out_channels, kernel], ...], VGG-style progression, all 3x3.
  search::Design design;
  design.rollout = {{32, 3}, {32, 3}, {64, 3}, {64, 3}, {128, 3}, {128, 3}};

  // ISAAC-style hardware instance: RRAM cells storing 2 bits each, 6-bit
  // ADCs, 128x128 crossbars, 8:1 column muxing.
  design.hw.device = cim::DeviceType::kRram;
  design.hw.bits_per_cell = 2;
  design.hw.adc_bits = 6;
  design.hw.xbar_size = 128;
  design.hw.col_mux = 8;

  std::printf("Design: %s\n\n", design.describe().c_str());

  // Evaluate: Monte-Carlo accuracy under this hardware's device variation
  // plus the full circuit-level cost report.
  core::SurrogateEvaluator evaluator(cfg.evaluator);
  util::Rng rng(/*seed=*/42);
  const core::Evaluation ev = evaluator.evaluate(design, rng);

  std::printf("Accuracy under variation: %.1f%% (+/- %.1f%% chip-to-chip)\n",
              100.0 * ev.accuracy, 100.0 * ev.accuracy_stddev);
  std::printf("Chip area:    %.1f mm^2 (%s)\n", ev.cost.area_total_mm2,
              ev.cost.valid ? "within budget" : ev.cost.invalid_reason.c_str());
  std::printf("Energy/frame: %.3g pJ  (ADC %.0f%%, crossbar %.0f%%)\n",
              ev.cost.energy_total_pj,
              100.0 * ev.cost.energy_adc_pj / ev.cost.energy_total_pj,
              100.0 * ev.cost.energy_xbar_pj / ev.cost.energy_total_pj);
  std::printf("Latency:      %.3g ns  (%.0f FPS)\n", ev.cost.latency_ns,
              ev.cost.fps());
  std::printf("Leakage:      %.1f mW\n", ev.cost.leakage_mw);
  std::printf("Weight sigma: %.3f, worst ADC deficit: %d bits\n\n",
              ev.cost.weight_sigma, ev.cost.max_adc_deficit_bits);

  // The paper's two reward functions.
  const core::RewardFunction reward_ae(llm::Objective::kEnergy);
  const core::RewardFunction reward_al(llm::Objective::kLatency);
  std::printf("reward_ae (Eq. 1) = %.3f\n", reward_ae(ev.accuracy, ev.cost));
  std::printf("reward_al (Eq. 2) = %.3f\n", reward_al(ev.accuracy, ev.cost));
  return 0;
}
