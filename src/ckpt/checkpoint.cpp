#include "lcda/ckpt/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <system_error>
#include <utility>
#include <vector>

#include "lcda/obs/metrics.h"
#include "lcda/obs/trace.h"
#include "lcda/util/fault.h"
#include "lcda/util/logging.h"
#include "lcda/util/rng.h"
#include "lcda/util/strings.h"

namespace lcda::ckpt {

namespace {

constexpr std::uint32_t kSnapshotVersion = 1;
constexpr std::uint32_t kRoundVersion = 1;

void encode_rng(util::BinaryWriter& w, const util::Rng::State& st) {
  for (std::uint64_t word : st.s) w.u64(word);
  w.f64(st.spare_normal);
  w.u8(st.has_spare ? 1 : 0);
}

bool decode_rng(util::BinaryReader& r, util::Rng::State& st) {
  for (std::uint64_t& word : st.s) {
    if (!r.u64(word)) return false;
  }
  std::uint8_t has_spare = 0;
  if (!r.f64(st.spare_normal) || !r.u8(has_spare)) return false;
  st.has_spare = has_spare != 0;
  return true;
}

void encode_episode(util::BinaryWriter& w, const core::EpisodeRecord& ep) {
  w.i64(ep.episode);
  encode_design(w, ep.design);
  w.f64(ep.accuracy);
  w.f64(ep.energy_pj);
  w.f64(ep.latency_ns);
  w.f64(ep.area_mm2);
  w.f64(ep.reward);
  w.u8(ep.valid ? 1 : 0);
}

bool decode_episode(util::BinaryReader& r, core::EpisodeRecord& ep) {
  std::int64_t episode = 0;
  std::uint8_t valid = 0;
  if (!r.i64(episode) || !decode_design(r, ep.design) || !r.f64(ep.accuracy) ||
      !r.f64(ep.energy_pj) || !r.f64(ep.latency_ns) || !r.f64(ep.area_mm2) ||
      !r.f64(ep.reward) || !r.u8(valid)) {
    return false;
  }
  ep.episode = static_cast<int>(episode);
  ep.valid = valid != 0;
  return true;
}

/// A corrupt element count must not drive a huge reserve before the
/// element decodes fail; every element is at least `min_bytes` long.
std::size_t bounded_reserve(std::uint64_t n, std::size_t remaining,
                            std::size_t min_bytes) {
  return std::min<std::size_t>(n, remaining / std::max<std::size_t>(min_bytes, 1));
}

struct SnapshotFile {
  long long episode = 0;
  std::filesystem::path path;
};

/// `snap-<E>.ckpt` -> E, or nullopt for any other name.
std::optional<long long> snapshot_episode(const std::string& name) {
  constexpr std::string_view prefix = "snap-";
  constexpr std::string_view suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size() ||
      !name.starts_with(prefix) || !name.ends_with(suffix)) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  long long value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}

/// Newest-first list of snapshot generations in a study directory.
std::vector<SnapshotFile> list_snapshots(const std::filesystem::path& dir) {
  std::vector<SnapshotFile> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const auto ep = snapshot_episode(entry.path().filename().string());
    if (ep) out.push_back({*ep, entry.path()});
  }
  std::sort(out.begin(), out.end(), [](const SnapshotFile& a, const SnapshotFile& b) {
    return a.episode > b.episode;
  });
  return out;
}

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return data;
}

/// Validates a snapshot file's envelope; returns the payload view or
/// nullopt (magic, identity, size and checksum must all agree).
std::optional<std::string_view> snapshot_payload(std::string_view file,
                                                 std::uint64_t identity) {
  std::uint64_t file_identity = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  if (file.size() < kSnapshotMagic.size() ||
      file.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return std::nullopt;
  }
  util::BinaryReader header(file.substr(kSnapshotMagic.size()));
  if (!header.u64(file_identity) || !header.u64(size) || !header.u64(checksum)) {
    return std::nullopt;
  }
  if (file_identity != identity) return std::nullopt;
  if (header.remaining() != size) return std::nullopt;
  const std::string_view payload =
      file.substr(file.size() - header.remaining());
  if (util::fnv1a64(payload) != checksum) return std::nullopt;
  return payload;
}

/// Parses a changelog, tolerating a torn tail: records after the first
/// short or corrupt one are dropped (the loop re-evaluates them live).
std::vector<core::RoundDelta> read_changelog(const std::filesystem::path& path,
                                             std::uint64_t identity,
                                             long long base_episode) {
  std::vector<core::RoundDelta> deltas;
  const auto data = read_file(path);
  if (!data) return deltas;
  std::string_view view = *data;
  if (view.size() < kChangelogMagic.size() ||
      view.substr(0, kChangelogMagic.size()) != kChangelogMagic) {
    util::warn_once("ckpt-bad-log:" + path.string(), "ckpt",
                    "changelog has a foreign header; ignoring it");
    return deltas;
  }
  util::BinaryReader header(view.substr(kChangelogMagic.size()));
  std::uint64_t file_identity = 0;
  std::int64_t file_base = 0;
  if (!header.u64(file_identity) || !header.i64(file_base) ||
      file_identity != identity || file_base != base_episode) {
    util::warn_once("ckpt-bad-log:" + path.string(), "ckpt",
                    "changelog identity/base mismatch; ignoring it");
    return deltas;
  }
  std::string_view rest = view.substr(view.size() - header.remaining());
  while (!rest.empty()) {
    util::BinaryReader rec(rest);
    std::uint64_t len = 0;
    std::uint64_t checksum = 0;
    if (!rec.u64(len) || !rec.u64(checksum) || rec.remaining() < len) break;
    const std::string_view payload =
        rest.substr(rest.size() - rec.remaining(), len);
    if (util::fnv1a64(payload) != checksum) break;
    core::RoundDelta delta;
    if (!decode_round(payload, delta)) break;
    deltas.push_back(std::move(delta));
    rest = rest.substr(16 + len);
  }
  if (!rest.empty()) {
    util::warn_once("ckpt-torn-log:" + path.string(), "ckpt",
                    "changelog tail is torn; rounds after it will be "
                    "re-evaluated on resume");
  }
  return deltas;
}

}  // namespace

void encode_design(util::BinaryWriter& w, const search::Design& d) {
  w.u32(static_cast<std::uint32_t>(d.rollout.size()));
  for (const nn::ConvSpec& spec : d.rollout) {
    w.i64(spec.channels);
    w.i64(spec.kernel);
  }
  w.i64(static_cast<std::int64_t>(d.hw.device));
  w.i64(d.hw.bits_per_cell);
  w.i64(d.hw.weight_bits);
  w.i64(d.hw.input_bits);
  w.i64(d.hw.adc_bits);
  w.i64(d.hw.xbar_size);
  w.i64(d.hw.col_mux);
  w.f64(d.hw.area_budget_mm2);
}

bool decode_design(util::BinaryReader& r, search::Design& d) {
  std::uint32_t layers = 0;
  if (!r.u32(layers)) return false;
  d.rollout.clear();
  d.rollout.reserve(bounded_reserve(layers, r.remaining(), 16));
  for (std::uint32_t i = 0; i < layers; ++i) {
    std::int64_t channels = 0;
    std::int64_t kernel = 0;
    if (!r.i64(channels) || !r.i64(kernel)) return false;
    d.rollout.push_back({static_cast<int>(channels), static_cast<int>(kernel)});
  }
  std::int64_t device = 0;
  std::int64_t bits_per_cell = 0, weight_bits = 0, input_bits = 0;
  std::int64_t adc_bits = 0, xbar_size = 0, col_mux = 0;
  if (!r.i64(device) || !r.i64(bits_per_cell) || !r.i64(weight_bits) ||
      !r.i64(input_bits) || !r.i64(adc_bits) || !r.i64(xbar_size) ||
      !r.i64(col_mux) || !r.f64(d.hw.area_budget_mm2)) {
    return false;
  }
  d.hw.device = static_cast<cim::DeviceType>(device);
  d.hw.bits_per_cell = static_cast<int>(bits_per_cell);
  d.hw.weight_bits = static_cast<int>(weight_bits);
  d.hw.input_bits = static_cast<int>(input_bits);
  d.hw.adc_bits = static_cast<int>(adc_bits);
  d.hw.xbar_size = static_cast<int>(xbar_size);
  d.hw.col_mux = static_cast<int>(col_mux);
  return true;
}

void encode_evaluation(util::BinaryWriter& w, const core::Evaluation& ev) {
  std::uint8_t flags = 0;
  if (ev.cost.valid) flags |= 1;
  if (ev.has_replay_params) flags |= 2;
  w.u8(flags);
  w.f64(ev.accuracy);
  w.f64(ev.accuracy_stddev);
  w.f64(ev.replay_mean);
  w.f64(ev.replay_spread);
  const cim::CostReport& c = ev.cost;
  w.f64(c.area_arrays_mm2);
  w.f64(c.area_buffer_mm2);
  w.f64(c.area_digital_mm2);
  w.f64(c.area_noc_mm2);
  w.f64(c.area_total_mm2);
  w.f64(c.energy_adc_pj);
  w.f64(c.energy_xbar_pj);
  w.f64(c.energy_dac_pj);
  w.f64(c.energy_digital_pj);
  w.f64(c.energy_buffer_pj);
  w.f64(c.energy_noc_pj);
  w.f64(c.energy_total_pj);
  w.f64(c.latency_ns);
  w.f64(c.leakage_mw);
  w.f64(c.programming_energy_pj);
  w.f64(c.weight_sigma);
  w.i64(c.total_weights);
  w.i64(c.total_cells);
  w.i64(c.max_adc_deficit_bits);
  // The invalid reason is kept whole (unlike the store's fixed-width
  // record, which truncates it): a resumed trace must not differ from the
  // uninterrupted one in any byte, reasons included. Per-layer costs and
  // the mapping are deliberately absent — the lean engine path never
  // populates them, matching the store's record shape.
  w.str(c.invalid_reason);
}

bool decode_evaluation(util::BinaryReader& r, core::Evaluation& ev) {
  std::uint8_t flags = 0;
  if (!r.u8(flags) || !r.f64(ev.accuracy) || !r.f64(ev.accuracy_stddev) ||
      !r.f64(ev.replay_mean) || !r.f64(ev.replay_spread)) {
    return false;
  }
  cim::CostReport& c = ev.cost;
  std::int64_t total_weights = 0, total_cells = 0, deficit = 0;
  if (!r.f64(c.area_arrays_mm2) || !r.f64(c.area_buffer_mm2) ||
      !r.f64(c.area_digital_mm2) || !r.f64(c.area_noc_mm2) ||
      !r.f64(c.area_total_mm2) || !r.f64(c.energy_adc_pj) ||
      !r.f64(c.energy_xbar_pj) || !r.f64(c.energy_dac_pj) ||
      !r.f64(c.energy_digital_pj) || !r.f64(c.energy_buffer_pj) ||
      !r.f64(c.energy_noc_pj) || !r.f64(c.energy_total_pj) ||
      !r.f64(c.latency_ns) || !r.f64(c.leakage_mw) ||
      !r.f64(c.programming_energy_pj) || !r.f64(c.weight_sigma) ||
      !r.i64(total_weights) || !r.i64(total_cells) || !r.i64(deficit) ||
      !r.str(c.invalid_reason)) {
    return false;
  }
  c.valid = (flags & 1) != 0;
  ev.has_replay_params = (flags & 2) != 0;
  c.total_weights = total_weights;
  c.total_cells = total_cells;
  c.max_adc_deficit_bits = static_cast<int>(deficit);
  c.layers.clear();
  c.mapping = {};
  return true;
}

namespace {

/// Appends the snapshot payload to `out` (which may already hold an
/// envelope prefix). Split from encode_snapshot so the checkpoint writer
/// can assemble envelope + payload in one reused buffer, without an
/// intermediate per-snapshot string.
void encode_snapshot_append(std::string& out, const core::LoopSnapshot& snap) {
  util::BinaryWriter w(out);
  w.u32(kSnapshotVersion);
  w.i64(snap.next_episode);
  encode_rng(w, snap.rng_state);
  w.str(*snap.optimizer_state);
  const core::RunResult& res = *snap.result;
  w.i64(res.best_episode);
  w.i64(res.cache_hits);
  w.i64(res.cache_misses);
  w.i64(res.persistent_hits);
  w.i64(res.persistent_shared_hits);
  w.i64(res.persistent_evictions);
  w.i64(res.persistent_skipped);
  w.i64(res.persistent_save_failures);
  w.u64(res.episodes.size());
  for (const core::EpisodeRecord& ep : res.episodes) encode_episode(w, ep);
  const auto& cache_log = *snap.cache_log;
  w.u64(cache_log.size());
  for (const core::CacheLogEntry& entry : cache_log) {
    w.u64(entry.hash);
    encode_evaluation(w, entry.eval);
    w.u8(entry.published ? 1 : 0);
  }
}

}  // namespace

std::string encode_snapshot(const core::LoopSnapshot& snap) {
  std::string out;
  encode_snapshot_append(out, snap);
  return out;
}

bool decode_snapshot(std::string_view payload, core::LoopResume& out) {
  util::BinaryReader r(payload);
  std::uint32_t version = 0;
  std::int64_t next_episode = 0;
  if (!r.u32(version) || version != kSnapshotVersion || !r.i64(next_episode) ||
      !decode_rng(r, out.rng_state) || !r.str(out.optimizer_state)) {
    return false;
  }
  out.next_episode = static_cast<int>(next_episode);
  core::RunResult& res = out.result;
  std::int64_t best_episode = 0;
  std::uint64_t n_records = 0;
  if (!r.i64(best_episode) || !r.i64(res.cache_hits) ||
      !r.i64(res.cache_misses) || !r.i64(res.persistent_hits) ||
      !r.i64(res.persistent_shared_hits) || !r.i64(res.persistent_evictions) ||
      !r.i64(res.persistent_skipped) || !r.i64(res.persistent_save_failures) ||
      !r.u64(n_records)) {
    return false;
  }
  res.best_episode = static_cast<int>(best_episode);
  res.episodes.clear();
  res.episodes.reserve(bounded_reserve(n_records, r.remaining(), 64));
  for (std::uint64_t i = 0; i < n_records; ++i) {
    core::EpisodeRecord ep;
    if (!decode_episode(r, ep)) return false;
    res.episodes.push_back(std::move(ep));
  }
  std::uint64_t n_cache = 0;
  if (!r.u64(n_cache)) return false;
  out.cache_log.clear();
  out.cache_log.reserve(bounded_reserve(n_cache, r.remaining(), 64));
  for (std::uint64_t i = 0; i < n_cache; ++i) {
    core::CacheLogEntry entry;
    std::uint8_t published = 0;
    if (!r.u64(entry.hash) || !decode_evaluation(r, entry.eval) ||
        !r.u8(published)) {
      return false;
    }
    entry.published = published != 0;
    out.cache_log.push_back(std::move(entry));
  }
  return r.done();
}

namespace {

/// Appends the round payload to `out`; same envelope-assembly split as
/// encode_snapshot_append.
void encode_round_append(std::string& out, const core::RoundDelta& delta) {
  util::BinaryWriter w(out);
  w.u32(kRoundVersion);
  w.i64(delta.first_episode);
  w.u64(delta.job_hashes.size());
  for (std::uint64_t h : delta.job_hashes) w.u64(h);
  w.u64(delta.job_evals.size());
  for (const core::Evaluation& ev : delta.job_evals) encode_evaluation(w, ev);
}

/// Overwrites 8 bytes at `pos` with the little-endian encoding of `v` —
/// the back-patch for length/checksum fields whose values are only known
/// after the payload behind them is encoded in place.
void patch_u64(std::string& buf, std::size_t pos, std::uint64_t v) {
  std::memcpy(buf.data() + pos, &v, sizeof(v));
}

}  // namespace

std::string encode_round(const core::RoundDelta& delta) {
  std::string out;
  encode_round_append(out, delta);
  return out;
}

bool decode_round(std::string_view payload, core::RoundDelta& out) {
  util::BinaryReader r(payload);
  std::uint32_t version = 0;
  std::int64_t first_episode = 0;
  std::uint64_t n_hashes = 0;
  if (!r.u32(version) || version != kRoundVersion || !r.i64(first_episode) ||
      !r.u64(n_hashes)) {
    return false;
  }
  out.first_episode = static_cast<int>(first_episode);
  out.job_hashes.clear();
  out.job_hashes.reserve(bounded_reserve(n_hashes, r.remaining(), 8));
  for (std::uint64_t i = 0; i < n_hashes; ++i) {
    std::uint64_t h = 0;
    if (!r.u64(h)) return false;
    out.job_hashes.push_back(h);
  }
  std::uint64_t n_evals = 0;
  if (!r.u64(n_evals)) return false;
  out.job_evals.clear();
  out.job_evals.reserve(bounded_reserve(n_evals, r.remaining(), 64));
  for (std::uint64_t i = 0; i < n_evals; ++i) {
    core::Evaluation ev;
    if (!decode_evaluation(r, ev)) return false;
    out.job_evals.push_back(std::move(ev));
  }
  return r.done();
}

std::filesystem::path study_checkpoint_dir(const std::string& root,
                                           std::uint64_t identity) {
  return std::filesystem::path(root) / util::hex_u64(identity);
}

std::optional<core::LoopResume> load_resume(const std::string& root,
                                            std::uint64_t identity) {
  const std::filesystem::path dir = study_checkpoint_dir(root, identity);
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return std::nullopt;
  obs::Span span("ckpt.replay");
  for (const SnapshotFile& snap : list_snapshots(dir)) {
    const auto data = read_file(snap.path);
    if (!data) continue;
    const auto payload = snapshot_payload(*data, identity);
    core::LoopResume resume;
    if (!payload || !decode_snapshot(*payload, resume)) {
      util::warn_once("ckpt-bad-snapshot:" + snap.path.string(), "ckpt",
                      "snapshot failed validation; falling back to the "
                      "previous generation");
      continue;
    }
    std::filesystem::path log_path = snap.path;
    log_path.replace_extension(".log");
    resume.deltas = read_changelog(log_path, identity, snap.episode);
    if (obs::Registry::instance().enabled()) {
      obs::add_counter("ckpt.resumes", 1);
    }
    return resume;
  }
  return std::nullopt;
}

RunCheckpointer::RunCheckpointer(Options opts)
    : opts_(std::move(opts)),
      dir_(study_checkpoint_dir(opts_.directory, opts_.identity)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    util::warn_once("ckpt-dir-failed:" + dir_.string(), "ckpt",
                    "cannot create checkpoint directory; checkpointing "
                    "disabled for this run");
  }
}

void RunCheckpointer::on_snapshot(const core::LoopSnapshot& snap) {
  obs::Span span("ckpt.snapshot");
  // Envelope and payload are assembled in one buffer that is reused
  // across snapshots (its capacity sticks at the largest snapshot seen),
  // with the size/checksum fields back-patched once the payload length is
  // known — a snapshot costs one encoding pass plus the checksum, not
  // intermediate copies.
  std::string& file = file_buf_;
  file.clear();
  file.append(kSnapshotMagic);
  util::BinaryWriter header(file);
  header.u64(opts_.identity);
  const std::size_t size_pos = file.size();
  header.u64(0);
  header.u64(0);
  const std::size_t payload_pos = file.size();
  encode_snapshot_append(file, snap);
  const std::size_t payload_size = file.size() - payload_pos;
  patch_u64(file, size_pos, payload_size);
  patch_u64(file, size_pos + 8,
            util::fnv1a64(std::string_view(file).substr(payload_pos)));

  // Fires on the first snapshot at-or-after the armed episode (drained
  // boundaries rarely land exactly on one).
  const long long torn_at =
      util::FaultInjector::instance().torn_snapshot_episode();
  const bool torn =
      torn_at >= 0 && static_cast<long long>(snap.next_episode) >= torn_at;
  if (torn) file.resize(file.size() - payload_size / 2 - 1);

  const std::filesystem::path final_path =
      dir_ / ("snap-" + std::to_string(snap.next_episode) + ".ckpt");
  const std::filesystem::path tmp_path =
      dir_ / ("snap-" + std::to_string(snap.next_episode) + ".ckpt.tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    if (!out.flush()) {
      util::warn_once("ckpt-write-failed:" + dir_.string(), "ckpt",
                      "snapshot write failed; run continues uncheckpointed");
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    util::warn_once("ckpt-write-failed:" + dir_.string(), "ckpt",
                    "snapshot rename failed; run continues uncheckpointed");
    return;
  }
  if (torn) {
    // Simulated crash immediately after tearing the snapshot file.
    std::_Exit(42);
  }

  if (log_.is_open()) log_.close();
  rotate_generations();

  std::filesystem::path log_path = final_path;
  log_path.replace_extension(".log");
  log_.open(log_path, std::ios::binary | std::ios::trunc);
  if (log_.is_open()) {
    std::string header_bytes;
    header_bytes.append(kChangelogMagic);
    util::BinaryWriter w(header_bytes);
    w.u64(opts_.identity);
    w.i64(snap.next_episode);
    log_.write(header_bytes.data(),
               static_cast<std::streamsize>(header_bytes.size()));
    log_.flush();
  }
  ++snapshots_written_;
  if (obs::Registry::instance().enabled()) {
    obs::add_counter("ckpt.snapshots", 1);
  }
}

void RunCheckpointer::on_round(const core::RoundDelta& delta) {
  // No generation of our own open yet (fresh run before the first
  // snapshot, or resumed run still replaying toward one): the previous
  // process's changelog is not ours to extend, so the round is simply not
  // logged — a crash here resumes from the last snapshot again.
  if (!log_.is_open()) return;
  std::string& record = record_buf_;
  record.clear();
  util::BinaryWriter w(record);
  const std::size_t len_pos = record.size();
  w.u64(0);
  w.u64(0);
  const std::size_t payload_pos = record.size();
  encode_round_append(record, delta);
  const std::size_t payload_size = record.size() - payload_pos;
  patch_u64(record, len_pos, payload_size);
  patch_u64(record, len_pos + 8,
            util::fnv1a64(std::string_view(record).substr(payload_pos)));

  const long long torn_at = util::FaultInjector::instance().torn_log_episode();
  const bool torn =
      torn_at >= 0 && static_cast<long long>(delta.first_episode) >= torn_at;
  if (torn) record.resize(record.size() - payload_size / 2 - 1);
  log_.write(record.data(), static_cast<std::streamsize>(record.size()));
  log_.flush();
  if (torn) {
    // Simulated crash mid-append: the tail record is torn.
    std::_Exit(42);
  }
  if (!log_) {
    util::warn_once("ckpt-log-write-failed:" + dir_.string(), "ckpt",
                    "changelog append failed; later rounds will be "
                    "re-evaluated on resume");
  }
}

void RunCheckpointer::rotate_generations() {
  const std::vector<SnapshotFile> snaps = list_snapshots(dir_);
  for (std::size_t i = static_cast<std::size_t>(std::max(opts_.keep, 1));
       i < snaps.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(snaps[i].path, ec);
    std::filesystem::path log_path = snaps[i].path;
    log_path.replace_extension(".log");
    std::filesystem::remove(log_path, ec);
  }
}

}  // namespace lcda::ckpt
