#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "lcda/core/loop.h"
#include "lcda/util/bytes.h"

/// lcda::ckpt — periodic, atomic, crash-resumable checkpoints of a
/// CodesignLoop run.
///
/// A study's checkpoint state lives in `<root>/<hex identity>/` where
/// `identity` is the study fingerprint (config + strategy + episodes), so
/// different studies sharing one --checkpoint-dir never collide and a
/// stale checkpoint from an edited scenario is simply never found.
///
/// Two file kinds per generation, named by the snapshot's next_episode E:
///
///   snap-<E>.ckpt   full engine state at the drained boundary E:
///                   magic "LCDACKP1" | u64 identity | u64 payload size |
///                   u64 fnv1a64(payload) | payload. Written to a temp
///                   name and renamed into place, so a crash mid-write
///                   can never shadow the previous good generation.
///
///   snap-<E>.log    per-round changelog since that snapshot:
///                   magic "LCDALOG1" | u64 identity | i64 base episode,
///                   then records of [u64 len | u64 fnv1a64 | payload],
///                   appended and flushed after every finalized round.
///                   The reader stops at the first short or corrupt
///                   record, so a tail torn by a crash costs at most the
///                   rounds after it — they are re-evaluated live.
///
/// The newest `keep` generations are retained (default 2): if the newest
/// snapshot itself fails validation (torn rename, bit rot), load_resume
/// falls back to the previous one, and failing that to a cold start —
/// with a counted warning each time, never an abort.
namespace lcda::ckpt {

inline constexpr std::string_view kSnapshotMagic = "LCDACKP1";
inline constexpr std::string_view kChangelogMagic = "LCDALOG1";

/// Value codecs, exposed for tests. Each decode returns false (leaving
/// the output unspecified) on a truncated or malformed reader.
void encode_evaluation(util::BinaryWriter& w, const core::Evaluation& ev);
[[nodiscard]] bool decode_evaluation(util::BinaryReader& r, core::Evaluation& ev);
void encode_design(util::BinaryWriter& w, const search::Design& d);
[[nodiscard]] bool decode_design(util::BinaryReader& r, search::Design& d);

/// Snapshot payload (version 1): next_episode, RNG cursor, optimizer
/// blob, the RunResult so far (records + counters), and the evaluation
/// cache's insertion log. decode fills every LoopResume field except
/// `deltas` (the changelog's job).
[[nodiscard]] std::string encode_snapshot(const core::LoopSnapshot& snap);
[[nodiscard]] bool decode_snapshot(std::string_view payload, core::LoopResume& out);

/// Changelog record payload for one finalized round.
[[nodiscard]] std::string encode_round(const core::RoundDelta& delta);
[[nodiscard]] bool decode_round(std::string_view payload, core::RoundDelta& out);

/// `<root>/<16-hex-digit identity>` — the per-study checkpoint directory.
[[nodiscard]] std::filesystem::path study_checkpoint_dir(
    const std::string& root, std::uint64_t identity);

/// Loads the newest valid snapshot (+ its changelog tail) for a study, or
/// nullopt when none exists or every generation fails validation. All
/// failure modes degrade with a counted warning; this never throws on bad
/// file contents.
[[nodiscard]] std::optional<core::LoopResume> load_resume(
    const std::string& root, std::uint64_t identity);

/// The CodesignLoop checkpoint sink: wire `on_snapshot`/`on_round` into
/// CodesignLoop::Options. Single-threaded (the loop invokes both hooks on
/// the driving thread only).
///
/// Changelog records are only appended while a generation opened by THIS
/// process is live — after a resume, rounds finalized before the first
/// fresh snapshot are not logged (the old generation's log is not ours to
/// extend). A crash in that gap simply resumes from the old snapshot
/// again, replaying the same deltas deterministically.
///
/// Honors the torn-snapshot / torn-log fault injections (util/fault.h):
/// each truncates the write it targets, then exits the process with
/// status 42 — simulating a crash that tore the file.
class RunCheckpointer {
 public:
  struct Options {
    std::string directory;        ///< checkpoint root (--checkpoint-dir)
    std::uint64_t identity = 0;   ///< study fingerprint
    int keep = 2;                 ///< snapshot generations to retain
  };

  explicit RunCheckpointer(Options opts);

  void on_snapshot(const core::LoopSnapshot& snap);
  void on_round(const core::RoundDelta& delta);

  /// Snapshots successfully written by this instance.
  [[nodiscard]] int snapshots_written() const { return snapshots_written_; }

 private:
  void rotate_generations();

  Options opts_;
  std::filesystem::path dir_;
  std::ofstream log_;           ///< open changelog of the live generation
  std::string file_buf_;        ///< reused snapshot envelope+payload buffer
  std::string record_buf_;      ///< reused changelog record buffer
  int snapshots_written_ = 0;
};

}  // namespace lcda::ckpt
