#include "lcda/core/loop.h"

#include "lcda/core/eval_cache.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "lcda/util/thread_pool.h"

namespace lcda::core {

const EpisodeRecord& RunResult::best() const {
  static const EpisodeRecord kEmpty = [] {
    EpisodeRecord ep;
    ep.episode = -1;
    ep.reward = -std::numeric_limits<double>::infinity();
    return ep;
  }();
  if (best_episode < 0 || best_episode >= static_cast<int>(episodes.size())) {
    return kEmpty;
  }
  return episodes[static_cast<std::size_t>(best_episode)];
}

double RunResult::best_reward() const { return best().reward; }

std::vector<double> RunResult::reward_running_max() const {
  std::vector<double> out;
  out.reserve(episodes.size());
  double mx = -std::numeric_limits<double>::infinity();
  for (const auto& ep : episodes) {
    mx = std::max(mx, ep.reward);
    out.push_back(mx);
  }
  return out;
}

int RunResult::episodes_to_reach(double threshold) const {
  for (const auto& ep : episodes) {
    if (ep.reward >= threshold) return ep.episode;
  }
  return -1;
}

CodesignLoop::CodesignLoop(search::Optimizer& optimizer,
                           PerformanceEvaluator& evaluator, RewardFunction reward,
                           Options opts)
    : optimizer_(&optimizer),
      evaluator_(&evaluator),
      reward_(reward),
      opts_(std::move(opts)) {
  if (opts_.episodes <= 0) throw std::invalid_argument("CodesignLoop: episodes");
}

std::size_t CodesignLoop::effective_batch(std::size_t remaining) const {
  // The batch composition must never depend on `parallelism`, or parallel
  // and sequential runs would fork their evaluation RNGs at different
  // points of the proposal stream and the traces would diverge.
  const std::size_t pref = optimizer_->preferred_batch();
  std::size_t batch;
  if (opts_.batch_size > 0) {
    batch = pref > 0 ? std::min(opts_.batch_size, pref) : opts_.batch_size;
  } else {
    batch = pref > 0 ? pref : 1;
  }
  return std::min(std::max<std::size_t>(batch, 1), remaining);
}

namespace {

/// One evaluation job of a round: the slot it fills, the design hash (only
/// meaningful when caching is on) and the RNG stream pre-forked on the
/// driving thread in episode order.
struct Job {
  std::size_t slot;
  std::uint64_t hash;
  util::Rng rng;
};

/// One propose->evaluate round in flight. Planned entirely on the driving
/// thread (proposals, RNG forks, cache decisions), evaluated by the pool,
/// finalized (aliases, cache commits, records, feedback) on the driving
/// thread again — in round order, so pipelining rounds never reorders
/// anything observable.
struct Round {
  int first_episode = 0;
  std::vector<search::Design> designs;
  std::vector<Evaluation> evals;
  std::vector<std::ptrdiff_t> alias;  ///< >= 0: copy that slot of this round
  std::vector<std::uint64_t> cross;   ///< committed-cache hash to copy from
  std::vector<char> cross_set;
  std::vector<Job> jobs;

  // Completion tracking for asynchronously dispatched jobs.
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t jobs_left = 0;
  std::exception_ptr error;

  void await() {
    std::unique_lock lock(mutex);
    done_cv.wait(lock, [this] { return jobs_left == 0; });
  }
};

}  // namespace

RunResult CodesignLoop::run(util::Rng& rng) {
  RunResult result;
  result.episodes.reserve(static_cast<std::size_t>(opts_.episodes));

  const int parallelism = util::ThreadPool::resolve_parallelism(opts_.parallelism);
  std::unique_ptr<util::ThreadPool> pool;
  if (parallelism > 1) pool = std::make_unique<util::ThreadPool>(parallelism);

  // Content-addressed evaluation cache: Design::hash -> Evaluation of the
  // first episode that proposed it.
  std::unordered_map<std::uint64_t, Evaluation> cache;

  // Designs proposed but whose round has not been finalized yet, mapping
  // hash -> first proposer. Without pipelining this only ever covers the
  // round being planned (the in-batch duplicate map); with rounds in
  // flight it also lets a later round alias a design an earlier round is
  // still evaluating — the value lands in `cache` before that later round
  // finalizes, so the alias resolves to exactly what a non-pipelined run
  // would have found as a cache hit.
  struct PendingSlot {
    Round* round;
    std::size_t slot;
  };
  std::unordered_map<std::uint64_t, PendingSlot> pending;

  // Plans one round on the driving thread, in episode order: propose the
  // batch, fork one eval RNG per episode (hit or miss, so the stream
  // layout is independent of cache contents), resolve cache hits and
  // duplicates, and collect the unique misses as jobs.
  auto plan_round = [&](int ep) {
    const std::size_t batch =
        effective_batch(static_cast<std::size_t>(opts_.episodes - ep));
    auto round = std::make_unique<Round>();
    Round& r = *round;
    r.first_episode = ep;

    // des_i = parse(LLM(prompt)) / controller sample / breed / ...
    r.designs = optimizer_->propose_batch(batch, rng);
    if (r.designs.size() != batch) {
      throw std::logic_error("CodesignLoop: propose_batch returned " +
                             std::to_string(r.designs.size()) +
                             " designs, want " + std::to_string(batch));
    }

    r.evals.resize(batch);
    r.alias.assign(batch, -1);
    r.cross.assign(batch, 0);
    r.cross_set.assign(batch, 0);
    for (std::size_t i = 0; i < batch; ++i) {
      util::Rng eval_rng = rng.fork();
      std::uint64_t h = 0;
      if (opts_.cache_evaluations) {
        h = r.designs[i].hash();
        if (auto hit = cache.find(h); hit != cache.end()) {
          r.evals[i] = hit->second;
          ++result.cache_hits;
          continue;
        }
        if (auto inflight = pending.find(h); inflight != pending.end()) {
          if (inflight->second.round == &r) {
            r.alias[i] = static_cast<std::ptrdiff_t>(inflight->second.slot);
          } else {
            r.cross[i] = h;
            r.cross_set[i] = 1;
          }
          ++result.cache_hits;
          continue;
        }
        if (opts_.persistent_cache) {
          if (auto disk = opts_.persistent_cache->lookup(h)) {
            r.evals[i] = *disk;
            cache.emplace(h, *disk);
            ++result.persistent_hits;
            continue;
          }
        }
        pending.emplace(h, PendingSlot{&r, i});
      }
      ++result.cache_misses;
      r.jobs.push_back(Job{i, h, eval_rng});
    }
    return round;
  };

  // acc_i, hw_i = evaluators. With a pool the whole round is enqueued as
  // one bulk submit; without one it runs inline here.
  auto dispatch = [&](Round& r) {
    r.jobs_left = r.jobs.size();
    if (r.jobs.empty()) return;
    if (!pool) {
      for (const Job& job : r.jobs) {
        util::Rng job_rng = job.rng;
        r.evals[job.slot] = evaluator_->evaluate(r.designs[job.slot], job_rng);
      }
      r.jobs_left = 0;
      return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(r.jobs.size());
    for (const Job& job : r.jobs) {
      tasks.push_back([this, &r, &job] {
        try {
          util::Rng job_rng = job.rng;
          r.evals[job.slot] = evaluator_->evaluate(r.designs[job.slot], job_rng);
        } catch (...) {
          std::lock_guard lock(r.mutex);
          if (!r.error) r.error = std::current_exception();
        }
        std::lock_guard lock(r.mutex);
        if (--r.jobs_left == 0) r.done_cv.notify_all();
      });
    }
    pool->submit_batch(std::move(tasks));
  };

  // Waits the round out, commits it to the caches, resolves duplicates,
  // and delivers records + feedback — always called in round order.
  auto finalize = [&](Round& r) {
    if (pool) r.await();
    if (r.error) std::rethrow_exception(r.error);

    // Commit fresh evaluations first so same-round aliases, cross-round
    // aliases and future rounds all resolve against them.
    if (opts_.cache_evaluations) {
      for (const Job& job : r.jobs) {
        cache.emplace(job.hash, r.evals[job.slot]);
        if (opts_.persistent_cache) {
          opts_.persistent_cache->insert(job.hash, r.evals[job.slot]);
        }
        pending.erase(job.hash);
      }
    }
    const std::size_t batch = r.designs.size();
    for (std::size_t i = 0; i < batch; ++i) {
      if (r.alias[i] >= 0) {
        r.evals[i] = r.evals[static_cast<std::size_t>(r.alias[i])];
      } else if (r.cross_set[i]) {
        r.evals[i] = cache.at(r.cross[i]);
      }
    }

    // perf_i = f(acc_i, hw_i); add des_i and perf_i to l_des / l_perf.
    std::vector<search::Observation> observations(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const Evaluation& ev = r.evals[i];
      const double reward = reward_(ev.accuracy, ev.cost);

      EpisodeRecord record;
      record.episode = r.first_episode + static_cast<int>(i);
      record.design = r.designs[i];
      record.accuracy = ev.accuracy;
      record.energy_pj = ev.cost.energy_total_pj;
      record.latency_ns = ev.cost.latency_ns;
      record.area_mm2 = ev.cost.area_total_mm2;
      record.reward = reward;
      record.valid = ev.cost.valid;

      search::Observation& obs = observations[i];
      obs.design = r.designs[i];
      obs.reward = reward;
      obs.accuracy = ev.accuracy;
      obs.energy_pj = ev.cost.energy_total_pj;
      obs.latency_ns = ev.cost.latency_ns;
      obs.valid = ev.cost.valid;

      if (result.best_episode < 0 || reward > result.best_reward()) {
        result.best_episode = record.episode;
      }
      if (opts_.on_episode) opts_.on_episode(record);
      result.episodes.push_back(std::move(record));
    }
    optimizer_->feedback_batch(observations);
  };

  // Window of rounds in flight. 1 = the classic plan -> evaluate ->
  // feedback cadence; pipelining admits more only when the optimizer's
  // proposal stream is declared feedback-free, so the proposals an
  // eager driving thread draws are the ones a strict schedule would have
  // drawn — which is what keeps sequential, pipelined and parallel traces
  // bit-identical.
  std::size_t max_window = 1;
  if (pool && opts_.pipeline_depth > 0) {
    const std::size_t lookahead = optimizer_->pipeline_lookahead();
    if (lookahead > 0) {
      max_window = 1 + std::min(opts_.pipeline_depth, lookahead);
    }
  }

  std::deque<std::unique_ptr<Round>> window;
  int ep = 0;
  try {
    while (ep < opts_.episodes || !window.empty()) {
      while (ep < opts_.episodes && window.size() < max_window) {
        auto round = plan_round(ep);
        ep += static_cast<int>(round->designs.size());
        dispatch(*round);
        window.push_back(std::move(round));
      }
      finalize(*window.front());
      window.pop_front();
    }
  } catch (...) {
    // In-flight workers still reference round memory; wait them out
    // before the window (and its rounds) unwinds.
    if (pool) {
      for (auto& round : window) round->await();
    }
    throw;
  }
  return result;
}

}  // namespace lcda::core
