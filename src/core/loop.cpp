#include "lcda/core/loop.h"

#include "lcda/store/eval_store.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "lcda/obs/metrics.h"
#include "lcda/obs/trace.h"
#include "lcda/util/fault.h"
#include "lcda/util/logging.h"
#include "lcda/util/thread_pool.h"

namespace lcda::core {

const EpisodeRecord& RunResult::best() const {
  static const EpisodeRecord kEmpty = [] {
    EpisodeRecord ep;
    ep.episode = -1;
    ep.reward = -std::numeric_limits<double>::infinity();
    return ep;
  }();
  if (best_episode < 0 || best_episode >= static_cast<int>(episodes.size())) {
    return kEmpty;
  }
  return episodes[static_cast<std::size_t>(best_episode)];
}

double RunResult::best_reward() const { return best().reward; }

std::vector<double> RunResult::reward_running_max() const {
  std::vector<double> out;
  out.reserve(episodes.size());
  double mx = -std::numeric_limits<double>::infinity();
  for (const auto& ep : episodes) {
    mx = std::max(mx, ep.reward);
    out.push_back(mx);
  }
  return out;
}

int RunResult::episodes_to_reach(double threshold) const {
  for (const auto& ep : episodes) {
    if (ep.reward >= threshold) return ep.episode;
  }
  return -1;
}

CodesignLoop::CodesignLoop(search::Optimizer& optimizer,
                           PerformanceEvaluator& evaluator, RewardFunction reward,
                           Options opts)
    : optimizer_(&optimizer),
      evaluator_(&evaluator),
      reward_(reward),
      opts_(std::move(opts)) {
  if (opts_.episodes <= 0) throw std::invalid_argument("CodesignLoop: episodes");
}

std::size_t CodesignLoop::effective_batch(std::size_t remaining) const {
  // The batch composition must never depend on `parallelism`, or parallel
  // and sequential runs would fork their evaluation RNGs at different
  // points of the proposal stream and the traces would diverge.
  const std::size_t pref = optimizer_->preferred_batch();
  std::size_t batch;
  if (opts_.batch_size > 0) {
    batch = pref > 0 ? std::min(opts_.batch_size, pref) : opts_.batch_size;
  } else {
    batch = pref > 0 ? pref : 1;
  }
  return std::min(std::max<std::size_t>(batch, 1), remaining);
}

namespace {

/// One propose->evaluate round in flight. Planned entirely on the driving
/// thread (proposals, RNG forks, cache decisions), evaluated by the pool,
/// finalized (aliases, cache commits, records, feedback) on the driving
/// thread again — in round order, so pipelining rounds never reorders
/// anything observable.
///
/// Rounds are pooled and their storage reused (reset() keeps every
/// buffer's capacity), so the steady-state engine allocates nothing per
/// episode.
struct Round {
  int first_episode = 0;
  std::vector<search::Design> designs;
  std::vector<Evaluation> evals;
  std::vector<std::ptrdiff_t> alias;  ///< >= 0: copy that slot of this round
  std::vector<std::uint64_t> cross;   ///< committed-cache hash to copy from
  std::vector<char> cross_set;

  /// The round's unique cache misses, in episode order: slot/hash for the
  /// finalize-time cache commit, the RNG stream pre-forked on the driving
  /// thread, and the request list handed to the evaluator in pool-sized
  /// chunks (pointers into this round's storage — stable because planning
  /// finishes before dispatch).
  std::vector<std::size_t> job_slots;
  std::vector<std::uint64_t> job_hashes;
  std::vector<util::Rng> job_rngs;
  std::vector<EvalRequest> requests;

  // Completion tracking for asynchronously dispatched chunks: one mutex
  // acquisition per chunk (at most pool-size per round) instead of the
  // historical two per episode. The counter must only change under the
  // mutex: the driver recycles the round the moment await() returns, so
  // the last worker's decrement, its notify and the driver's wakeup have
  // to be one critical-section handshake (a lock-free count would let a
  // spurious wakeup observe zero while the worker still holds the cv).
  std::size_t chunks_left = 0;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;

  /// Plan-time stamp for the engine.round_us histogram; 0 while metrics
  /// are off (the clock is only read when the histogram is live).
  std::int64_t obs_begin_us = 0;

  void reset(int episode) {
    first_episode = episode;
    obs_begin_us = 0;
    designs.clear();
    evals.clear();
    alias.clear();
    cross.clear();
    cross_set.clear();
    job_slots.clear();
    job_hashes.clear();
    job_rngs.clear();
    requests.clear();
    chunks_left = 0;
    error = nullptr;
  }

  void await() {
    std::unique_lock lock(mutex);
    done_cv.wait(lock, [this] { return chunks_left == 0; });
  }
};

}  // namespace

RunResult CodesignLoop::run(util::Rng& rng) {
  RunResult result;
  result.episodes.reserve(static_cast<std::size_t>(opts_.episodes));

  const int parallelism = util::ThreadPool::resolve_parallelism(opts_.parallelism);
  std::unique_ptr<util::ThreadPool> pool;
  if (parallelism > 1) pool = std::make_unique<util::ThreadPool>(parallelism);

  // Round-latency histogram, acquired once per run (inert when metrics are
  // off — observe() and the clock reads behind it cost a branch).
  obs::Histogram round_us =
      obs::Registry::instance().histogram("engine.round_us");
  const auto steady_now_us = [] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  // Content-addressed evaluation cache: Design::hash -> Evaluation of the
  // first episode that proposed it. Bucket count reserved up front: a run
  // inserts at most one entry per episode, and incremental rehashing of a
  // growing map was measurable in the per-episode budget.
  std::unordered_map<std::uint64_t, Evaluation> cache;
  if (opts_.cache_evaluations) {
    cache.reserve(static_cast<std::size_t>(opts_.episodes));
  }

  // Checkpointing needs the cache's insertion history (the map itself
  // loses order) so a snapshot can rebuild it — and with it every future
  // hit/miss/alias decision and counter — on resume.
  const bool ckpt_on = opts_.checkpoint_every > 0 && opts_.on_snapshot != nullptr;
  std::vector<CacheLogEntry> cache_log;

  // Designs proposed but whose round has not been finalized yet, mapping
  // hash -> first proposer. Without pipelining this only ever covers the
  // round being planned (the in-batch duplicate map); with rounds in
  // flight it also lets a later round alias a design an earlier round is
  // still evaluating — the value lands in `cache` before that later round
  // finalizes, so the alias resolves to exactly what a non-pipelined run
  // would have found as a cache hit.
  struct PendingSlot {
    Round* round;
    std::size_t slot;
  };
  std::unordered_map<std::uint64_t, PendingSlot> pending;

  // Retired rounds parked for reuse (their buffers keep their capacity).
  std::vector<std::unique_ptr<Round>> spare_rounds;

  // Window of rounds in flight. 1 = the classic plan -> evaluate ->
  // feedback cadence; pipelining admits more only when the optimizer's
  // proposal stream is declared feedback-free, so the proposals an
  // eager driving thread draws are the ones a strict schedule would have
  // drawn — which is what keeps sequential, pipelined and parallel traces
  // bit-identical.
  std::size_t max_window = 1;
  if (pool && opts_.pipeline_depth > 0) {
    const std::size_t lookahead = optimizer_->pipeline_lookahead();
    if (lookahead > 0) {
      max_window = 1 + std::min(opts_.pipeline_depth, lookahead);
    }
  }

  // Plans one round on the driving thread, in episode order: propose the
  // batch, fork one eval RNG per episode (hit or miss, so the stream
  // layout is independent of cache contents), resolve cache hits and
  // duplicates, and collect the unique misses as jobs.
  auto plan_round = [&](int ep) {
    obs::Span span("round.plan");
    const std::size_t batch =
        effective_batch(static_cast<std::size_t>(opts_.episodes - ep));
    std::unique_ptr<Round> round;
    if (!spare_rounds.empty()) {
      round = std::move(spare_rounds.back());
      spare_rounds.pop_back();
    } else {
      round = std::make_unique<Round>();
    }
    Round& r = *round;
    r.reset(ep);
    if (round_us.live()) r.obs_begin_us = steady_now_us();

    // des_i = parse(LLM(prompt)) / controller sample / breed / ...
    optimizer_->propose_batch_into(batch, rng, r.designs);
    if (r.designs.size() != batch) {
      throw std::logic_error("CodesignLoop: propose_batch returned " +
                             std::to_string(r.designs.size()) +
                             " designs, want " + std::to_string(batch));
    }

    r.evals.resize(batch);
    r.alias.assign(batch, -1);
    r.cross.assign(batch, 0);
    r.cross_set.assign(batch, 0);
    for (std::size_t i = 0; i < batch; ++i) {
      util::Rng eval_rng = rng.fork();
      std::uint64_t h = 0;
      if (opts_.cache_evaluations) {
        h = r.designs[i].hash();
        if (auto hit = cache.find(h); hit != cache.end()) {
          r.evals[i] = hit->second;
          ++result.cache_hits;
          continue;
        }
        if (!pending.empty()) {
          if (auto inflight = pending.find(h); inflight != pending.end()) {
            if (inflight->second.round == &r) {
              r.alias[i] = static_cast<std::ptrdiff_t>(inflight->second.slot);
            } else {
              r.cross[i] = h;
              r.cross_set[i] = 1;
            }
            ++result.cache_hits;
            continue;
          }
        }
        if (opts_.persistent_store) {
          if (auto disk = opts_.persistent_store->lookup(h)) {
            r.evals[i] = *disk;
            cache.emplace(h, *disk);
            if (ckpt_on) cache_log.push_back({h, *disk, false});
            ++result.persistent_hits;
            continue;
          }
          // Cross-study reuse: a sibling study's record for this design in
          // the same evaluation-identity namespace carries the
          // deterministic part (cost + accuracy-model params); replaying
          // the Monte-Carlo draws with THIS slot's pre-forked stream
          // yields the exact Evaluation a cold run would compute, so the
          // hit is trace-invisible. Replayed here on the driving thread
          // (it is a handful of normal draws), and inserted under this
          // study's own key so the next warm rerun full-hits.
          if (auto shared = opts_.persistent_store->lookup_shared(h)) {
            Evaluation replayed;
            if (evaluator_->replay_evaluation(*shared, eval_rng, replayed)) {
              r.evals[i] = replayed;
              cache.emplace(h, replayed);
              if (ckpt_on) cache_log.push_back({h, replayed, true});
              opts_.persistent_store->insert(h, replayed);
              ++result.persistent_shared_hits;
              continue;
            }
          }
        }
        // A pending entry can only ever be consulted by a later proposal
        // of the same planning horizon: another slot of this batch, or a
        // round planned while this one is still in flight. Scalar rounds
        // with no pipeline window have neither, so skip the bookkeeping.
        if (batch > 1 || max_window > 1) {
          pending.emplace(h, PendingSlot{&r, i});
        }
      } else if (ckpt_on) {
        // Changelog replay validates rounds by job hash even when the
        // in-memory cache is off.
        h = r.designs[i].hash();
      }
      ++result.cache_misses;
      r.job_slots.push_back(i);
      r.job_hashes.push_back(h);
      r.job_rngs.push_back(eval_rng);
    }
    return round;
  };

  // acc_i, hw_i = evaluators. The round's unique misses are split into at
  // most pool-size contiguous chunks and each chunk is one work item —
  // submitted in one bulk enqueue — so a worker costs a whole sub-batch
  // per wakeup (PerformanceEvaluator::evaluate_batch) and completion is
  // one atomic decrement per chunk. Without a pool the whole round runs
  // inline as a single batch.
  auto dispatch = [&](Round& r) {
    obs::Span span("round.dispatch");
    const std::size_t jobs = r.job_slots.size();
    if (jobs == 0) return;
    r.requests.reserve(jobs);
    for (std::size_t k = 0; k < jobs; ++k) {
      r.requests.push_back(EvalRequest{&r.designs[r.job_slots[k]],
                                       &r.job_rngs[k],
                                       &r.evals[r.job_slots[k]]});
    }
    if (!pool) {
      evaluator_->evaluate_batch(std::span<EvalRequest>(r.requests));
      return;
    }
    const std::size_t chunks =
        util::ThreadPool::chunks_for(jobs, pool->size());
    r.chunks_left = chunks;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = util::chunk_range(jobs, chunks, c);
      tasks.push_back([this, &r, begin = begin, end = end] {
        obs::Span span("eval.chunk");
        try {
          evaluator_->evaluate_batch(
              std::span<EvalRequest>(r.requests.data() + begin, end - begin));
        } catch (...) {
          std::lock_guard lock(r.mutex);
          if (!r.error) r.error = std::current_exception();
        }
        std::lock_guard lock(r.mutex);
        if (--r.chunks_left == 0) r.done_cv.notify_all();
      });
    }
    pool->submit_batch(std::move(tasks));
  };

  // Waits the round out, commits it to the caches, resolves duplicates,
  // and delivers records + feedback — always called in round order.
  std::vector<search::Observation> observations;
  auto finalize = [&](Round& r) {
    obs::Span span("round.drain");
    if (pool) r.await();
    if (r.error) std::rethrow_exception(r.error);

    // Commit fresh evaluations first so same-round aliases, cross-round
    // aliases and future rounds all resolve against them.
    if (opts_.cache_evaluations) {
      for (std::size_t k = 0; k < r.job_slots.size(); ++k) {
        const std::uint64_t h = r.job_hashes[k];
        const Evaluation& ev = r.evals[r.job_slots[k]];
        cache.emplace(h, ev);
        if (ckpt_on) cache_log.push_back({h, ev, true});
        if (opts_.persistent_store) opts_.persistent_store->insert(h, ev);
        if (!pending.empty()) pending.erase(h);
      }
    }
    const std::size_t batch = r.designs.size();
    for (std::size_t i = 0; i < batch; ++i) {
      if (r.alias[i] >= 0) {
        r.evals[i] = r.evals[static_cast<std::size_t>(r.alias[i])];
      } else if (r.cross_set[i]) {
        r.evals[i] = cache.at(r.cross[i]);
      }
    }

    // perf_i = f(acc_i, hw_i); add des_i and perf_i to l_des / l_perf.
    observations.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const Evaluation& ev = r.evals[i];
      const double reward = reward_(ev.accuracy, ev.cost);

      EpisodeRecord record;
      record.episode = r.first_episode + static_cast<int>(i);
      record.design = r.designs[i];
      record.accuracy = ev.accuracy;
      record.energy_pj = ev.cost.energy_total_pj;
      record.latency_ns = ev.cost.latency_ns;
      record.area_mm2 = ev.cost.area_total_mm2;
      record.reward = reward;
      record.valid = ev.cost.valid;

      search::Observation& obs = observations[i];
      obs.design = std::move(r.designs[i]);
      obs.reward = reward;
      obs.accuracy = ev.accuracy;
      obs.energy_pj = ev.cost.energy_total_pj;
      obs.latency_ns = ev.cost.latency_ns;
      obs.valid = ev.cost.valid;

      if (result.best_episode < 0 || reward > result.best_reward()) {
        result.best_episode = record.episode;
      }
      if (opts_.on_episode) opts_.on_episode(record);
      result.episodes.push_back(std::move(record));
    }
    optimizer_->feedback_batch(observations);
    if (r.obs_begin_us != 0) {
      round_us.observe(steady_now_us() - r.obs_begin_us);
    }
  };

  // Snapshot and changelog emission. The optimizer blob buffer is reused
  // across snapshots; a strategy that cannot serialize (serialize_state
  // returning false) silently skips snapshots — the caller already warned.
  std::string optimizer_blob;
  auto emit_snapshot = [&](int next_episode) {
    if (!optimizer_->serialize_state(optimizer_blob)) return;
    LoopSnapshot snap;
    snap.next_episode = next_episode;
    snap.rng_state = rng.state();
    snap.optimizer_state = &optimizer_blob;
    snap.result = &result;
    snap.cache_log = &cache_log;
    opts_.on_snapshot(snap);
  };
  RoundDelta delta_scratch;
  auto emit_round = [&](const Round& r) {
    if (!ckpt_on || !opts_.on_round) return;
    delta_scratch.first_episode = r.first_episode;
    delta_scratch.job_hashes = r.job_hashes;
    delta_scratch.job_evals.clear();
    delta_scratch.job_evals.reserve(r.job_slots.size());
    for (std::size_t k = 0; k < r.job_slots.size(); ++k) {
      delta_scratch.job_evals.push_back(r.evals[r.job_slots[k]]);
    }
    opts_.on_round(delta_scratch);
  };

  std::deque<std::unique_ptr<Round>> window;
  int ep = 0;

  // Restore phase: adopt the snapshot's engine state wholesale, then
  // replay the changelog's deltas through the NORMAL planning path with
  // the recorded evaluations injected. Replay reproduces optimizer
  // mutations, the RNG stream, every cache/alias decision and counter —
  // so the continuation is bit-identical to the uninterrupted run. Any
  // divergence (a changelog from different code or a torn record slipping
  // validation) degrades that round to a live evaluation, never an abort.
  bool restored = false;
  if (opts_.resume != nullptr) {
    const LoopResume& res = *opts_.resume;
    if (!optimizer_->restore_state(res.optimizer_state)) {
      util::warn_once("ckpt-restore-rejected", "core",
                      "optimizer rejected checkpointed state; cold-starting");
    } else {
      restored = true;
      rng.set_state(res.rng_state);
      result = res.result;
      ep = res.next_episode;
      result.resumed_episodes = ep;
      for (const CacheLogEntry& entry : res.cache_log) {
        if (opts_.cache_evaluations) cache.emplace(entry.hash, entry.eval);
        if (ckpt_on) cache_log.push_back(entry);
        // Re-publish exactly what the crashed attempt had inserted into
        // its (never-saved) store session, so the post-run save writes
        // the same records an uninterrupted run would have.
        if (entry.published && opts_.persistent_store) {
          opts_.persistent_store->insert(entry.hash, entry.eval);
        }
      }
      for (const RoundDelta& delta : res.deltas) {
        if (ep >= opts_.episodes) break;
        auto round = plan_round(ep);
        Round& r = *round;
        ep += static_cast<int>(r.designs.size());
        const bool match = r.first_episode == delta.first_episode &&
                           r.job_hashes == delta.job_hashes &&
                           delta.job_evals.size() == delta.job_hashes.size();
        if (!match) {
          util::warn_once("ckpt-replay-diverged", "core",
                          "changelog round does not match replanned round; "
                          "evaluating live from here");
          dispatch(r);
          window.push_back(std::move(round));
          break;
        }
        for (std::size_t k = 0; k < r.job_slots.size(); ++k) {
          r.evals[r.job_slots[k]] = delta.job_evals[k];
        }
        finalize(r);
        result.resumed_episodes += static_cast<int>(r.designs.size());
        spare_rounds.push_back(std::move(round));
      }
    }
  }

  // Soft checkpoint boundaries: stop planning once the next boundary is
  // reached, drain the window, snapshot at the actual drained episode.
  // Batch sizes are never clamped to a boundary — that would change
  // feedback grouping and fork the trace from an uncheckpointed run.
  // After a restore the first boundary is "now": the checkpointer opens a
  // fresh changelog generation only at a snapshot, so emit one as soon as
  // the (possibly diverged) replay window drains.
  long long next_ckpt = std::numeric_limits<long long>::max();
  if (ckpt_on) {
    next_ckpt = restored ? static_cast<long long>(ep)
                         : static_cast<long long>(opts_.checkpoint_every);
  }
  const long long kill_episode = util::FaultInjector::instance().kill_episode();

  try {
    while (ep < opts_.episodes || !window.empty()) {
      while (ep < opts_.episodes && window.size() < max_window &&
             static_cast<long long>(ep) < next_ckpt) {
        // Fault injection: die before planning this episode. Sits after
        // the boundary drain above, so "kill at boundary k" always has
        // snap-k safely on disk first.
        if (kill_episode >= 0 && ep >= kill_episode) std::_Exit(42);
        auto round = plan_round(ep);
        ep += static_cast<int>(round->designs.size());
        dispatch(*round);
        window.push_back(std::move(round));
      }
      if (!window.empty()) {
        Round& r = *window.front();
        finalize(r);
        emit_round(r);
        spare_rounds.push_back(std::move(window.front()));
        window.pop_front();
      }
      if (ckpt_on && window.empty() &&
          (static_cast<long long>(ep) >= next_ckpt || ep >= opts_.episodes)) {
        emit_snapshot(ep);
        // Geometric back-off: a snapshot costs O(episodes so far) to
        // encode, so a fixed cadence makes total snapshot work quadratic
        // in run length. Spacing boundaries at least a quarter of the
        // completed run apart keeps it linear; for runs shorter than
        // 4 * checkpoint_every the cadence is exactly the configured one.
        next_ckpt = static_cast<long long>(ep) +
                    std::max(static_cast<long long>(opts_.checkpoint_every),
                             static_cast<long long>(ep) / 4);
      }
    }
  } catch (...) {
    // In-flight workers still reference round memory; wait them out
    // before the window (and its rounds) unwinds.
    if (pool) {
      for (auto& round : window) round->await();
    }
    throw;
  }
  // A replay that carried the run to completion never enters the main
  // loop; it still owes the final snapshot (which makes a later resume of
  // a finished study instant).
  if (ckpt_on && window.empty() && ep >= opts_.episodes &&
      static_cast<long long>(ep) >= next_ckpt) {
    emit_snapshot(ep);
  }
  return result;
}

}  // namespace lcda::core
