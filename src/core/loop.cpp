#include "lcda/core/loop.h"

#include "lcda/core/eval_cache.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "lcda/util/thread_pool.h"

namespace lcda::core {

const EpisodeRecord& RunResult::best() const {
  static const EpisodeRecord kEmpty = [] {
    EpisodeRecord ep;
    ep.episode = -1;
    ep.reward = -std::numeric_limits<double>::infinity();
    return ep;
  }();
  if (best_episode < 0 || best_episode >= static_cast<int>(episodes.size())) {
    return kEmpty;
  }
  return episodes[static_cast<std::size_t>(best_episode)];
}

double RunResult::best_reward() const { return best().reward; }

std::vector<double> RunResult::reward_running_max() const {
  std::vector<double> out;
  out.reserve(episodes.size());
  double mx = -std::numeric_limits<double>::infinity();
  for (const auto& ep : episodes) {
    mx = std::max(mx, ep.reward);
    out.push_back(mx);
  }
  return out;
}

int RunResult::episodes_to_reach(double threshold) const {
  for (const auto& ep : episodes) {
    if (ep.reward >= threshold) return ep.episode;
  }
  return -1;
}

CodesignLoop::CodesignLoop(search::Optimizer& optimizer,
                           PerformanceEvaluator& evaluator, RewardFunction reward,
                           Options opts)
    : optimizer_(&optimizer),
      evaluator_(&evaluator),
      reward_(reward),
      opts_(std::move(opts)) {
  if (opts_.episodes <= 0) throw std::invalid_argument("CodesignLoop: episodes");
}

std::size_t CodesignLoop::effective_batch(std::size_t remaining) const {
  // The batch composition must never depend on `parallelism`, or parallel
  // and sequential runs would fork their evaluation RNGs at different
  // points of the proposal stream and the traces would diverge.
  const std::size_t pref = optimizer_->preferred_batch();
  std::size_t batch;
  if (opts_.batch_size > 0) {
    batch = pref > 0 ? std::min(opts_.batch_size, pref) : opts_.batch_size;
  } else {
    batch = pref > 0 ? pref : 1;
  }
  return std::min(std::max<std::size_t>(batch, 1), remaining);
}

RunResult CodesignLoop::run(util::Rng& rng) {
  RunResult result;
  result.episodes.reserve(static_cast<std::size_t>(opts_.episodes));

  const int parallelism = util::ThreadPool::resolve_parallelism(opts_.parallelism);
  std::unique_ptr<util::ThreadPool> pool;
  if (parallelism > 1) pool = std::make_unique<util::ThreadPool>(parallelism);

  // Content-addressed evaluation cache: Design::hash -> Evaluation of the
  // first episode that proposed it.
  std::unordered_map<std::uint64_t, Evaluation> cache;

  int ep = 0;
  while (ep < opts_.episodes) {
    const std::size_t batch =
        effective_batch(static_cast<std::size_t>(opts_.episodes - ep));

    // des_i = parse(LLM(prompt)) / controller sample / breed / ...
    std::vector<search::Design> designs = optimizer_->propose_batch(batch, rng);
    if (designs.size() != batch) {
      throw std::logic_error("CodesignLoop: propose_batch returned " +
                             std::to_string(designs.size()) + " designs, want " +
                             std::to_string(batch));
    }

    // Plan the round on the driving thread, in episode order: fork one eval
    // RNG per episode (hit or miss, so the stream layout is independent of
    // cache contents), resolve cache hits and in-batch duplicates, and
    // collect the unique misses as jobs.
    struct Job {
      std::size_t slot;
      util::Rng rng;
    };
    std::vector<Evaluation> evals(batch);
    std::vector<std::ptrdiff_t> alias(batch, -1);  ///< >= 0: copy that slot
    std::vector<bool> planned(batch, false);
    std::vector<Job> jobs;
    std::unordered_map<std::uint64_t, std::size_t> first_in_batch;
    for (std::size_t i = 0; i < batch; ++i) {
      util::Rng eval_rng = rng.fork();
      if (opts_.cache_evaluations) {
        const std::uint64_t h = designs[i].hash();
        if (auto hit = cache.find(h); hit != cache.end()) {
          evals[i] = hit->second;
          planned[i] = true;
          ++result.cache_hits;
          continue;
        }
        if (auto prev = first_in_batch.find(h); prev != first_in_batch.end()) {
          alias[i] = static_cast<std::ptrdiff_t>(prev->second);
          planned[i] = true;
          ++result.cache_hits;
          continue;
        }
        if (opts_.persistent_cache) {
          if (auto disk = opts_.persistent_cache->lookup(h)) {
            evals[i] = *disk;
            cache.emplace(h, *disk);
            planned[i] = true;
            ++result.persistent_hits;
            continue;
          }
        }
        first_in_batch.emplace(h, i);
      }
      ++result.cache_misses;
      jobs.push_back(Job{i, eval_rng});
    }

    // acc_i, hw_i = evaluators, fanned out over the pool.
    util::parallel_for_each_index(
        pool.get(), jobs.size(), [&](std::size_t j) {
          util::Rng job_rng = jobs[j].rng;
          evals[jobs[j].slot] = evaluator_->evaluate(designs[jobs[j].slot], job_rng);
        });

    for (std::size_t i = 0; i < batch; ++i) {
      if (alias[i] >= 0) evals[i] = evals[static_cast<std::size_t>(alias[i])];
      if (opts_.cache_evaluations && !planned[i]) {
        cache.emplace(designs[i].hash(), evals[i]);
        if (opts_.persistent_cache) {
          opts_.persistent_cache->insert(designs[i].hash(), evals[i]);
        }
      }
    }

    // perf_i = f(acc_i, hw_i); add des_i and perf_i to l_des / l_perf.
    std::vector<search::Observation> observations(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const Evaluation& ev = evals[i];
      const double reward = reward_(ev.accuracy, ev.cost);

      EpisodeRecord record;
      record.episode = ep + static_cast<int>(i);
      record.design = designs[i];
      record.accuracy = ev.accuracy;
      record.energy_pj = ev.cost.energy_total_pj;
      record.latency_ns = ev.cost.latency_ns;
      record.area_mm2 = ev.cost.area_total_mm2;
      record.reward = reward;
      record.valid = ev.cost.valid;

      search::Observation& obs = observations[i];
      obs.design = designs[i];
      obs.reward = reward;
      obs.accuracy = ev.accuracy;
      obs.energy_pj = ev.cost.energy_total_pj;
      obs.latency_ns = ev.cost.latency_ns;
      obs.valid = ev.cost.valid;

      if (result.best_episode < 0 || reward > result.best_reward()) {
        result.best_episode = record.episode;
      }
      if (opts_.on_episode) opts_.on_episode(record);
      result.episodes.push_back(std::move(record));
    }
    optimizer_->feedback_batch(observations);
    ep += static_cast<int>(batch);
  }
  return result;
}

}  // namespace lcda::core
