#include "lcda/core/loop.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lcda::core {

const EpisodeRecord& RunResult::best() const {
  if (best_episode < 0 || best_episode >= static_cast<int>(episodes.size())) {
    throw std::logic_error("RunResult::best: no episodes recorded");
  }
  return episodes[static_cast<std::size_t>(best_episode)];
}

double RunResult::best_reward() const { return best().reward; }

std::vector<double> RunResult::reward_running_max() const {
  std::vector<double> out;
  out.reserve(episodes.size());
  double mx = -std::numeric_limits<double>::infinity();
  for (const auto& ep : episodes) {
    mx = std::max(mx, ep.reward);
    out.push_back(mx);
  }
  return out;
}

int RunResult::episodes_to_reach(double threshold) const {
  for (const auto& ep : episodes) {
    if (ep.reward >= threshold) return ep.episode;
  }
  return -1;
}

CodesignLoop::CodesignLoop(search::Optimizer& optimizer,
                           PerformanceEvaluator& evaluator, RewardFunction reward,
                           Options opts)
    : optimizer_(&optimizer),
      evaluator_(&evaluator),
      reward_(reward),
      opts_(std::move(opts)) {
  if (opts_.episodes <= 0) throw std::invalid_argument("CodesignLoop: episodes");
}

RunResult CodesignLoop::run(util::Rng& rng) {
  RunResult result;
  result.episodes.reserve(static_cast<std::size_t>(opts_.episodes));
  for (int ep = 0; ep < opts_.episodes; ++ep) {
    // des_i = parse(LLM(prompt)) / controller sample / ...
    const search::Design design = optimizer_->propose(rng);

    // acc_i, hw_i = evaluators; perf_i = f(acc_i, hw_i).
    util::Rng eval_rng = rng.fork();
    const Evaluation ev = evaluator_->evaluate(design, eval_rng);
    const double reward = reward_(ev.accuracy, ev.cost);

    EpisodeRecord record;
    record.episode = ep;
    record.design = design;
    record.accuracy = ev.accuracy;
    record.energy_pj = ev.cost.energy_total_pj;
    record.latency_ns = ev.cost.latency_ns;
    record.area_mm2 = ev.cost.area_total_mm2;
    record.reward = reward;
    record.valid = ev.cost.valid;

    // Add des_i and perf_i to l_des / l_perf.
    search::Observation obs;
    obs.design = design;
    obs.reward = reward;
    obs.accuracy = ev.accuracy;
    obs.energy_pj = ev.cost.energy_total_pj;
    obs.latency_ns = ev.cost.latency_ns;
    obs.valid = ev.cost.valid;
    optimizer_->feedback(obs);

    if (result.best_episode < 0 || reward > result.best_reward()) {
      result.best_episode = ep;
    }
    if (opts_.on_episode) opts_.on_episode(record);
    result.episodes.push_back(std::move(record));
  }
  return result;
}

}  // namespace lcda::core
