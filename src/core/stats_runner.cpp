#include "lcda/core/stats_runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "lcda/util/thread_pool.h"

namespace lcda::core {

// The seed stream is derived by key (order-independent), and the worker
// budget is split between seed-level fan-out and the inner loop — seeds
// get the pool, and only the parallelism the fan-out cannot use
// (seeds < workers) is passed down, so the machine is never
// oversubscribed. Inner parallelism does not affect traces.
ExperimentConfig aggregate_seed_config(const ExperimentConfig& config, int s,
                                       int seeds) {
  ExperimentConfig cfg = config;
  cfg.seed = util::derive_seed(config.seed, static_cast<std::uint64_t>(s));
  const int par = util::ThreadPool::resolve_parallelism(config.parallelism);
  cfg.parallelism = std::max(1, par / std::max(seeds, 1));
  return cfg;
}

namespace {

std::unique_ptr<util::ThreadPool> make_pool(const ExperimentConfig& config) {
  const int par = util::ThreadPool::resolve_parallelism(config.parallelism);
  return par > 1 ? std::make_unique<util::ThreadPool>(par) : nullptr;
}

}  // namespace

AggregateResult run_aggregate(Strategy strategy, int episodes, int seeds,
                              const ExperimentConfig& config, double threshold) {
  if (episodes <= 0 || seeds <= 0) {
    throw std::invalid_argument("run_aggregate: episodes/seeds must be positive");
  }
  AggregateResult agg;
  agg.strategy = strategy;
  agg.episodes = episodes;
  agg.seeds = seeds;
  agg.threshold = threshold;
  agg.running_best.resize(static_cast<std::size_t>(episodes));

  // Fan the seeds out over the pool; every run's result is independent of
  // worker scheduling, and the fold below walks them in seed order, so the
  // aggregate is bit-identical to a sequential run. All seeds share one
  // evaluator: its memos are content-keyed and hash-striped, so each
  // hardware config's cost plan is built once for the whole study instead
  // of once per seed, and concurrent seed-runs don't serialize on a lock.
  std::vector<RunResult> runs(static_cast<std::size_t>(seeds));
  const auto evaluator = make_evaluator(config);
  const auto pool = make_pool(config);
  util::parallel_for_each_index(
      pool.get(), static_cast<std::size_t>(seeds), [&](std::size_t s) {
        runs[s] = run_strategy(
            strategy, episodes,
            aggregate_seed_config(config, static_cast<int>(s), seeds),
            evaluator.get());
      });

  for (const RunResult& run : runs) {
    const auto rmax = run.reward_running_max();
    for (int e = 0; e < episodes; ++e) {
      agg.running_best[static_cast<std::size_t>(e)].add(
          rmax[static_cast<std::size_t>(e)]);
    }
    agg.final_best.add(run.best_reward());
    agg.cache_hits += run.cache_hits;
    agg.cache_misses += run.cache_misses;
    agg.persistent_hits += run.persistent_hits;
    agg.persistent_shared_hits += run.persistent_shared_hits;
    agg.persistent_skipped += run.persistent_skipped;
    agg.persistent_save_failures += run.persistent_save_failures;
    agg.resumed_episodes += run.resumed_episodes;
    if (!std::isnan(threshold)) {
      const int hit = run.episodes_to_reach(threshold);
      if (hit >= 0) {
        agg.episodes_to_threshold.add(static_cast<double>(hit) + 1.0);
        ++agg.reached;
      }
    }
  }
  return agg;
}

std::vector<SpeedupReport> speedup_study(const ExperimentConfig& config,
                                         int seeds, double threshold_fraction) {
  if (seeds <= 0) throw std::invalid_argument("speedup_study: seeds");
  std::vector<SpeedupReport> out(static_cast<std::size_t>(seeds));
  const auto evaluator = make_evaluator(config);
  const auto pool = make_pool(config);
  util::parallel_for_each_index(
      pool.get(), static_cast<std::size_t>(seeds), [&](std::size_t s) {
        out[s] = measure_speedup(
            aggregate_seed_config(config, static_cast<int>(s), seeds),
            threshold_fraction, evaluator.get());
      });
  return out;
}

}  // namespace lcda::core
