#include "lcda/core/stats_runner.h"

#include <cmath>
#include <stdexcept>

namespace lcda::core {

AggregateResult run_aggregate(Strategy strategy, int episodes, int seeds,
                              const ExperimentConfig& config, double threshold) {
  if (episodes <= 0 || seeds <= 0) {
    throw std::invalid_argument("run_aggregate: episodes/seeds must be positive");
  }
  AggregateResult agg;
  agg.strategy = strategy;
  agg.episodes = episodes;
  agg.seeds = seeds;
  agg.running_best.resize(static_cast<std::size_t>(episodes));

  for (int s = 0; s < seeds; ++s) {
    ExperimentConfig cfg = config;
    cfg.seed = util::hash_combine(config.seed, static_cast<std::uint64_t>(s) + 1);
    const RunResult run = run_strategy(strategy, episodes, cfg);
    const auto rmax = run.reward_running_max();
    for (int e = 0; e < episodes; ++e) {
      agg.running_best[static_cast<std::size_t>(e)].add(
          rmax[static_cast<std::size_t>(e)]);
    }
    agg.final_best.add(run.best_reward());
    if (!std::isnan(threshold)) {
      const int hit = run.episodes_to_reach(threshold);
      if (hit >= 0) {
        agg.episodes_to_threshold.add(static_cast<double>(hit) + 1.0);
        ++agg.reached;
      }
    }
  }
  return agg;
}

std::vector<SpeedupReport> speedup_study(const ExperimentConfig& config,
                                         int seeds, double threshold_fraction) {
  if (seeds <= 0) throw std::invalid_argument("speedup_study: seeds");
  std::vector<SpeedupReport> out;
  out.reserve(static_cast<std::size_t>(seeds));
  for (int s = 0; s < seeds; ++s) {
    ExperimentConfig cfg = config;
    cfg.seed = util::hash_combine(config.seed, static_cast<std::uint64_t>(s) + 1);
    out.push_back(measure_speedup(cfg, threshold_fraction));
  }
  return out;
}

}  // namespace lcda::core
