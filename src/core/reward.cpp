#include "lcda/core/reward.h"

#include <cmath>
#include <stdexcept>

namespace lcda::core {

double reward_accuracy_energy(double accuracy, double energy_pj) {
  if (energy_pj < 0.0) throw std::invalid_argument("reward_ae: negative energy");
  return accuracy - std::sqrt(energy_pj / 8e7);
}

double reward_accuracy_latency(double accuracy, double latency_ns) {
  if (latency_ns <= 0.0) throw std::invalid_argument("reward_al: non-positive latency");
  const double fps = 1e9 / latency_ns;
  return accuracy + fps / 1600.0;
}

RewardFunction RewardFunction::combined(double energy_weight,
                                        double latency_weight,
                                        llm::Objective objective) {
  if (energy_weight < 0.0 || latency_weight < 0.0) {
    throw std::invalid_argument("RewardFunction::combined: negative weight");
  }
  RewardFunction f(objective);
  f.combined_ = true;
  f.energy_weight_ = energy_weight;
  f.latency_weight_ = latency_weight;
  return f;
}

double RewardFunction::operator()(double accuracy,
                                  const cim::CostReport& cost) const {
  if (!cost.valid) return kInvalidReward;
  if (combined_) {
    // Accuracy vs both hardware metrics, on the paper's normalization
    // scales: the energy term of Eq. (1) plus the FPS term of Eq. (2).
    return accuracy -
           energy_weight_ * std::sqrt(cost.energy_total_pj / 8e7) +
           latency_weight_ * (1e9 / cost.latency_ns) / 1600.0;
  }
  switch (objective_) {
    case llm::Objective::kEnergy:
      return reward_accuracy_energy(accuracy, cost.energy_total_pj);
    case llm::Objective::kLatency:
      return reward_accuracy_latency(accuracy, cost.latency_ns);
  }
  return kInvalidReward;
}

double RewardFunction::hw_metric(const cim::CostReport& cost) const {
  return objective_ == llm::Objective::kEnergy ? cost.energy_total_pj
                                               : cost.latency_ns;
}

}  // namespace lcda::core
