#include "lcda/core/reward.h"

#include <cmath>
#include <stdexcept>

namespace lcda::core {

double reward_accuracy_energy(double accuracy, double energy_pj) {
  if (energy_pj < 0.0) throw std::invalid_argument("reward_ae: negative energy");
  return accuracy - std::sqrt(energy_pj / 8e7);
}

double reward_accuracy_latency(double accuracy, double latency_ns) {
  if (latency_ns <= 0.0) throw std::invalid_argument("reward_al: non-positive latency");
  const double fps = 1e9 / latency_ns;
  return accuracy + fps / 1600.0;
}

double RewardFunction::operator()(double accuracy,
                                  const cim::CostReport& cost) const {
  if (!cost.valid) return kInvalidReward;
  switch (objective_) {
    case llm::Objective::kEnergy:
      return reward_accuracy_energy(accuracy, cost.energy_total_pj);
    case llm::Objective::kLatency:
      return reward_accuracy_latency(accuracy, cost.latency_ns);
  }
  return kInvalidReward;
}

double RewardFunction::hw_metric(const cim::CostReport& cost) const {
  return objective_ == llm::Objective::kEnergy ? cost.energy_total_pj
                                               : cost.latency_ns;
}

}  // namespace lcda::core
