#include "lcda/core/evaluator.h"

#include <cmath>

#include "lcda/nn/quantize.h"
#include "lcda/nn/trainer.h"
#include "lcda/noise/monte_carlo.h"
#include "lcda/noise/variation.h"
#include "lcda/noise/write_verify.h"
#include "lcda/util/stats.h"

namespace lcda::core {

// ------------------------------------------------------ SurrogateEvaluator

SurrogateEvaluator::SurrogateEvaluator(Options opts)
    : opts_(opts), accuracy_(opts.accuracy) {}

Evaluation SurrogateEvaluator::evaluate(const search::Design& design,
                                        util::Rng& rng) {
  Evaluation ev;
  const cim::CostEvaluator cost_eval(design.hw, opts_.cost);
  ev.cost = cost_eval.evaluate(design.rollout, opts_.backbone);

  // Scenarios with selective write-verify deploy at a reduced effective
  // sigma and pay for it in one-time programming energy (the verified
  // fraction needs iterative write pulses instead of one); the gate keeps
  // the paper setting (fraction 0) bit-identical.
  double sigma = ev.cost.weight_sigma;
  if (opts_.write_verify_fraction > 0.0) {
    sigma *= noise::effective_sigma_scale(opts_.write_verify_fraction,
                                          opts_.write_verify_sigma_scale);
    ev.cost.programming_energy_pj *=
        (1.0 - opts_.write_verify_fraction) +
        opts_.write_verify_fraction * opts_.write_verify_pulses;
  }

  util::OnlineStats stats;
  for (int i = 0; i < opts_.monte_carlo_samples; ++i) {
    util::Rng sample_rng = rng.fork();
    stats.add(accuracy_.noisy_accuracy_sample(design.rollout, sigma,
                                              ev.cost.max_adc_deficit_bits,
                                              sample_rng));
  }
  ev.accuracy = stats.mean();
  ev.accuracy_stddev = stats.stddev();
  return ev;
}

// -------------------------------------------------------- TrainedEvaluator

TrainedEvaluator::TrainedEvaluator(Options opts)
    : opts_(opts), data_(data::make_synthetic_cifar(opts.dataset)) {
  // Backbone geometry must match the generated dataset.
  opts_.backbone.input_size = opts_.dataset.image_size;
  opts_.backbone.num_classes = opts_.dataset.num_classes;
}

Evaluation TrainedEvaluator::evaluate(const search::Design& design,
                                      util::Rng& rng) {
  Evaluation ev;
  const cim::CostEvaluator cost_eval(design.hw, opts_.cost);
  ev.cost = cost_eval.evaluate(design.rollout, opts_.backbone);

  // Noise-injection training at the hardware's variation level ([10]).
  const noise::VariationModel variation(ev.cost.weight_sigma);
  util::Rng train_rng = rng.fork();
  nn::Sequential net = nn::build_backbone(design.rollout, opts_.backbone, train_rng);
  nn::TrainOptions topts;
  topts.epochs = opts_.epochs;
  topts.perturber = variation.as_perturber();
  (void)nn::train(net, data_.train, data_.test, topts, train_rng);

  // Deployment: weights are quantized to the hardware's fixed-point format
  // before being programmed into the crossbars.
  auto params = net.params();
  (void)nn::quantize_params(params, {.bits = design.hw.weight_bits});

  // Monte-Carlo accuracy across simulated chip instances ([16]).
  util::Rng mc_rng = rng.fork();
  const noise::MonteCarloResult mc = noise::mc_noisy_accuracy(
      net, data_.test, variation, opts_.monte_carlo_samples, mc_rng);
  ev.accuracy = mc.mean();
  ev.accuracy_stddev = mc.stddev();
  return ev;
}

}  // namespace lcda::core
