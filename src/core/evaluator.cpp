#include "lcda/core/evaluator.h"

#include <bit>
#include <cmath>

#include "lcda/nn/quantize.h"
#include "lcda/nn/trainer.h"
#include "lcda/noise/monte_carlo.h"
#include "lcda/noise/variation.h"
#include "lcda/noise/write_verify.h"
#include "lcda/util/rng.h"
#include "lcda/util/stats.h"

namespace lcda::core {

namespace {

/// Content hash of every HardwareConfig field (unlike Design::hash, which
/// covers only the searched knobs — the memo must also distinguish fixed
/// fields like input_bits and the area budget).
std::uint64_t hardware_key(const cim::HardwareConfig& hw) {
  const int ints[] = {static_cast<int>(hw.device), hw.bits_per_cell,
                      hw.weight_bits, hw.input_bits, hw.adc_bits,
                      hw.xbar_size,   hw.col_mux};
  return util::hash_combine(util::hash_ints(ints, 0xc057ULL),
                            std::bit_cast<std::uint64_t>(hw.area_budget_mm2));
}

}  // namespace

void PerformanceEvaluator::evaluate_batch(std::span<EvalRequest> batch) {
  for (EvalRequest& req : batch) {
    *req.out = evaluate(*req.design, *req.rng);
  }
}

// ------------------------------------------------------ SurrogateEvaluator

SurrogateEvaluator::SurrogateEvaluator(Options opts)
    : opts_(opts), accuracy_(opts.accuracy) {}

std::shared_ptr<const cim::CostEvaluator> SurrogateEvaluator::cost_evaluator_for(
    const cim::HardwareConfig& hw) {
  // Built outside the stripe lock: make_circuits is the expensive part, and
  // a concurrent duplicate build is harmless (first insert wins, both
  // values are identical by construction).
  return cost_memo_.get_or_build(hardware_key(hw), [&] {
    return std::make_shared<const cim::CostEvaluator>(hw, opts_.cost);
  });
}

std::shared_ptr<const cim::LayerShapeSpan> SurrogateEvaluator::span_for(
    const std::vector<nn::ConvSpec>& rollout) {
  return span_memo_.get_or_build(nn::rollout_hash(rollout, 0x5ca1ab1eULL), [&] {
    return std::make_shared<const cim::LayerShapeSpan>(cim::LayerShapeSpan::from(
        nn::backbone_shapes(rollout, opts_.backbone)));
  });
}

void SurrogateEvaluator::evaluate_into(const search::Design& design,
                                       util::Rng& rng, Evaluation& out) {
  const std::shared_ptr<const cim::CostEvaluator> cost_eval =
      cost_evaluator_for(design.hw);
  const std::shared_ptr<const cim::LayerShapeSpan> span = span_for(design.rollout);
  cost_eval->evaluate_span(*span, out.cost);

  // Scenarios with selective write-verify deploy at a reduced effective
  // sigma and pay for it in one-time programming energy (the verified
  // fraction needs iterative write pulses instead of one); the gate keeps
  // the paper setting (fraction 0) bit-identical.
  double sigma = out.cost.weight_sigma;
  if (opts_.write_verify_fraction > 0.0) {
    sigma *= noise::effective_sigma_scale(opts_.write_verify_fraction,
                                          opts_.write_verify_sigma_scale);
    out.cost.programming_energy_pj *=
        (1.0 - opts_.write_verify_fraction) +
        opts_.write_verify_fraction * opts_.write_verify_pulses;
  }

  // The deterministic part of the accuracy model (clean accuracy, mean
  // under variation, chip-to-chip spread) is folded once; the Monte-Carlo
  // loop is then one fork + one normal draw + clamp per sample. The fork
  // per sample is load-bearing: it keeps the RNG stream layout — and hence
  // every trace — bit-identical to the historical per-sample evaluation.
  const surrogate::AccuracyModel::SampleParams params = accuracy_.precompute(
      design.rollout, sigma, out.cost.max_adc_deficit_bits);
  util::OnlineStats stats;
  for (int i = 0; i < opts_.monte_carlo_samples; ++i) {
    util::Rng sample_rng = rng.fork();
    stats.add(accuracy_.sample(params, sample_rng));
  }
  out.accuracy = stats.mean();
  out.accuracy_stddev = stats.stddev();
  // The deterministic part travels with the Evaluation so the persistent
  // store can share it across studies (replay_evaluation re-runs only the
  // Monte-Carlo loop above from these two numbers).
  out.replay_mean = params.mean;
  out.replay_spread = params.spread;
  out.has_replay_params = true;
}

bool SurrogateEvaluator::replay_evaluation(const Evaluation& cached,
                                           util::Rng& rng, Evaluation& out) {
  if (!cached.has_replay_params) return false;
  out.cost = cached.cost;
  out.replay_mean = cached.replay_mean;
  out.replay_spread = cached.replay_spread;
  out.has_replay_params = true;
  // The exact Monte-Carlo loop of evaluate_into — same fork layout, same
  // draw count (monte_carlo_samples is part of the store's
  // evaluation-identity fingerprint, so producer and consumer agree) —
  // seeded by the consumer's own stream: the result is bit-identical to
  // the cold evaluation this study would have computed itself.
  surrogate::AccuracyModel::SampleParams params{};
  params.mean = cached.replay_mean;
  params.spread = cached.replay_spread;
  util::OnlineStats stats;
  for (int i = 0; i < opts_.monte_carlo_samples; ++i) {
    util::Rng sample_rng = rng.fork();
    stats.add(accuracy_.sample(params, sample_rng));
  }
  out.accuracy = stats.mean();
  out.accuracy_stddev = stats.stddev();
  return true;
}

Evaluation SurrogateEvaluator::evaluate(const search::Design& design,
                                        util::Rng& rng) {
  Evaluation ev;
  evaluate_into(design, rng, ev);
  return ev;
}

void SurrogateEvaluator::evaluate_batch(std::span<EvalRequest> batch) {
  // One pass per worker chunk: every evaluation writes straight into its
  // request's Evaluation (the cost pass reuses the report's buffers), so
  // the steady-state loop allocates nothing per episode.
  for (EvalRequest& req : batch) {
    evaluate_into(*req.design, *req.rng, *req.out);
  }
}

// -------------------------------------------------------- TrainedEvaluator

TrainedEvaluator::TrainedEvaluator(Options opts)
    : opts_(opts), data_(data::make_synthetic_cifar(opts.dataset)) {
  // Backbone geometry must match the generated dataset.
  opts_.backbone.input_size = opts_.dataset.image_size;
  opts_.backbone.num_classes = opts_.dataset.num_classes;
}

Evaluation TrainedEvaluator::evaluate(const search::Design& design,
                                      util::Rng& rng) {
  Evaluation ev;
  const cim::CostEvaluator cost_eval(design.hw, opts_.cost);
  ev.cost = cost_eval.evaluate(design.rollout, opts_.backbone);

  // Noise-injection training at the hardware's variation level ([10]).
  const noise::VariationModel variation(ev.cost.weight_sigma);
  util::Rng train_rng = rng.fork();
  nn::Sequential net = nn::build_backbone(design.rollout, opts_.backbone, train_rng);
  nn::TrainOptions topts;
  topts.epochs = opts_.epochs;
  topts.perturber = variation.as_perturber();
  (void)nn::train(net, data_.train, data_.test, topts, train_rng);

  // Deployment: weights are quantized to the hardware's fixed-point format
  // before being programmed into the crossbars.
  auto params = net.params();
  (void)nn::quantize_params(params, {.bits = design.hw.weight_bits});

  // Monte-Carlo accuracy across simulated chip instances ([16]).
  util::Rng mc_rng = rng.fork();
  const noise::MonteCarloResult mc = noise::mc_noisy_accuracy(
      net, data_.test, variation, opts_.monte_carlo_samples, mc_rng);
  ev.accuracy = mc.mean();
  ev.accuracy_stddev = mc.stddev();
  return ev;
}

}  // namespace lcda::core
