#include "lcda/core/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "lcda/ckpt/checkpoint.h"
#include "lcda/core/scenario.h"
#include "lcda/obs/metrics.h"
#include "lcda/store/eval_store.h"
#include "lcda/util/csv.h"
#include "lcda/util/logging.h"
#include "lcda/util/strings.h"
#include "lcda/util/thread_pool.h"

namespace lcda::core {

std::string_view evaluator_kind_name(EvaluatorKind k) {
  switch (k) {
    case EvaluatorKind::kSurrogate: return "surrogate";
    case EvaluatorKind::kTrained: return "trained";
  }
  return "?";
}

EvaluatorKind evaluator_kind_from_name(std::string_view name) {
  if (name == "surrogate") return EvaluatorKind::kSurrogate;
  if (name == "trained") return EvaluatorKind::kTrained;
  throw std::invalid_argument("evaluator_kind_from_name: unknown kind \"" +
                              std::string(name) + "\"");
}

std::string_view strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kLcda: return "LCDA";
    case Strategy::kLcdaNaive: return "LCDA-naive";
    case Strategy::kLcdaFinetuned: return "LCDA-finetuned";
    case Strategy::kNacimRl: return "NACIM";
    case Strategy::kGenetic: return "Genetic";
    case Strategy::kNsga2: return "NSGA-II";
    case Strategy::kAnnealing: return "Annealing";
    case Strategy::kRandom: return "Random";
  }
  return "?";
}

const std::vector<Strategy>& all_strategies() {
  static const std::vector<Strategy> kAll = {
      Strategy::kLcda,      Strategy::kLcdaNaive, Strategy::kLcdaFinetuned,
      Strategy::kNacimRl,   Strategy::kGenetic,   Strategy::kNsga2,
      Strategy::kAnnealing, Strategy::kRandom,
  };
  return kAll;
}

Strategy strategy_from_name(std::string_view name) {
  const std::string lower = util::to_lower(name);
  for (Strategy s : all_strategies()) {
    if (lower == util::to_lower(strategy_name(s))) return s;
  }
  // CLI spellings.
  if (lower == "naive") return Strategy::kLcdaNaive;
  if (lower == "finetuned" || lower == "lcda-ft") return Strategy::kLcdaFinetuned;
  if (lower == "nacim-rl" || lower == "rl") return Strategy::kNacimRl;
  if (lower == "nsga2") return Strategy::kNsga2;
  throw std::invalid_argument("strategy_from_name: unknown strategy \"" +
                              std::string(name) + "\"");
}

int env_parallelism(int fallback) {
  constexpr long kMaxParallelism = 4096;
  // The fallback goes through resolve_parallelism too, so a fallback of 0
  // means "all hardware threads" exactly like an explicit "0" in the env.
  const char* value = std::getenv("LCDA_PARALLELISM");
  if (value == nullptr || *value == '\0') {
    return util::ThreadPool::resolve_parallelism(fallback);
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0 || parsed > kMaxParallelism) {
    return util::ThreadPool::resolve_parallelism(fallback);
  }
  return util::ThreadPool::resolve_parallelism(static_cast<int>(parsed));
}

std::unique_ptr<search::Optimizer> make_optimizer(Strategy strategy,
                                                  const ExperimentConfig& config) {
  search::SearchSpace space(config.space);
  switch (strategy) {
    case Strategy::kLcda:
    case Strategy::kLcdaNaive:
    case Strategy::kLcdaFinetuned: {
      llm::SimulatedGpt4::Options gpt;
      gpt.seed = util::hash_combine(config.seed, 0x69f7);
      gpt.wrong_cim_kernel_priors = strategy != Strategy::kLcdaFinetuned;
      auto client = std::make_shared<llm::SimulatedGpt4>(gpt);
      llm::LlmOptimizer::Options opts;
      opts.prompt.objective = config.objective;
      opts.prompt.codesign_context = strategy != Strategy::kLcdaNaive;
      return std::make_unique<llm::LlmOptimizer>(std::move(space),
                                                 std::move(client), opts);
    }
    case Strategy::kNacimRl:
      return std::make_unique<search::RlOptimizer>(std::move(space));
    case Strategy::kGenetic:
      return std::make_unique<search::GeneticOptimizer>(std::move(space));
    case Strategy::kNsga2: {
      search::Nsga2Optimizer::Options opts;
      opts.use_latency = config.objective == llm::Objective::kLatency;
      return std::make_unique<search::Nsga2Optimizer>(std::move(space), opts);
    }
    case Strategy::kAnnealing:
      return std::make_unique<search::AnnealingOptimizer>(std::move(space));
    case Strategy::kRandom:
      return std::make_unique<search::RandomOptimizer>(std::move(space));
  }
  throw std::invalid_argument("make_optimizer: unknown strategy");
}

std::unique_ptr<PerformanceEvaluator> make_evaluator(
    const ExperimentConfig& config) {
  switch (config.evaluator_kind) {
    case EvaluatorKind::kSurrogate:
      return std::make_unique<SurrogateEvaluator>(config.evaluator);
    case EvaluatorKind::kTrained:
      return std::make_unique<TrainedEvaluator>(config.trained);
  }
  throw std::invalid_argument("make_evaluator: unknown evaluator kind");
}

RewardFunction make_reward(const ExperimentConfig& config) {
  if (config.combined_reward) {
    return RewardFunction::combined(config.energy_weight, config.latency_weight,
                                    config.objective);
  }
  return RewardFunction(config.objective);
}

int default_episodes(Strategy strategy, const ExperimentConfig& config) {
  switch (strategy) {
    case Strategy::kLcda:
    case Strategy::kLcdaNaive:
    case Strategy::kLcdaFinetuned:
      return config.lcda_episodes;
    default:
      return config.nacim_episodes;
  }
}

RunResult run_strategy(Strategy strategy, int episodes,
                       const ExperimentConfig& config,
                       PerformanceEvaluator* evaluator) {
  auto optimizer = make_optimizer(strategy, config);
  std::unique_ptr<PerformanceEvaluator> own_evaluator;
  if (evaluator == nullptr) {
    own_evaluator = make_evaluator(config);
    evaluator = own_evaluator.get();
  }
  RewardFunction reward = make_reward(config);
  CodesignLoop::Options opts;
  opts.episodes = episodes;
  opts.parallelism = config.parallelism;
  opts.batch_size = config.batch_size;
  opts.pipeline_depth = config.pipeline_depth;
  opts.cache_evaluations = config.cache_evaluations;

  std::unique_ptr<store::EvalStore> pstore;
  if (!config.persistent_cache_dir.empty()) {
    store::EvalStore::Options store_opts;
    store_opts.directory = config.persistent_cache_dir;
    store_opts.eval_fingerprint = evaluation_fingerprint(config);
    store_opts.stream_fingerprint = stream_fingerprint(config, strategy, episodes);
    // The unchanged v1 fingerprint formula still names any flat-JSON file a
    // pre-store run left behind; the store migrates it on open.
    store_opts.legacy_fingerprint = study_fingerprint(config, strategy, episodes);
    store_opts.budget = store::Budget{config.persistent_cache_max_entries,
                                      config.persistent_cache_max_bytes};
    pstore = std::make_unique<store::EvalStore>(std::move(store_opts));
    opts.persistent_store = pstore.get();
  }

  // Checkpointing: probe the optimizer up front — a strategy that cannot
  // serialize its learned state (the LLM-driven ones hold conversation
  // history inside the client) warns once and runs uncheckpointed rather
  // than failing the study.
  std::unique_ptr<ckpt::RunCheckpointer> checkpointer;
  std::optional<LoopResume> resume_state;
  if (!config.checkpoint_dir.empty() && config.checkpoint_every > 0) {
    std::string probe;
    if (!optimizer->serialize_state(probe)) {
      util::warn_once("ckpt-unsupported:" + std::string(strategy_name(strategy)),
                      "core",
                      "strategy does not support checkpointing; running "
                      "without it");
    } else {
      const std::uint64_t identity =
          study_fingerprint(config, strategy, episodes);
      ckpt::RunCheckpointer::Options copts;
      copts.directory = config.checkpoint_dir;
      copts.identity = identity;
      checkpointer = std::make_unique<ckpt::RunCheckpointer>(copts);
      opts.checkpoint_every = config.checkpoint_every;
      opts.on_snapshot = [cp = checkpointer.get()](const LoopSnapshot& snap) {
        cp->on_snapshot(snap);
      };
      opts.on_round = [cp = checkpointer.get()](const RoundDelta& delta) {
        cp->on_round(delta);
      };
      if (config.resume) {
        resume_state = ckpt::load_resume(config.checkpoint_dir, identity);
        if (resume_state) opts.resume = &*resume_state;
      }
    }
  }

  CodesignLoop loop(*optimizer, *evaluator, reward, opts);
  util::Rng rng(util::hash_combine(config.seed,
                                   static_cast<std::uint64_t>(strategy) + 101));
  RunResult result = loop.run(rng);
  if (pstore) {
    pstore->save();  // non-throwing: failures degrade to the counter below
    result.persistent_evictions =
        static_cast<std::int64_t>(pstore->evictions());
    result.persistent_skipped =
        static_cast<std::int64_t>(pstore->skipped_files());
    result.persistent_save_failures =
        static_cast<std::int64_t>(pstore->save_failures());
    const store::EvalStore::Metrics& m = pstore->metrics();
    result.store.hits = static_cast<std::int64_t>(m.hits);
    result.store.misses = static_cast<std::int64_t>(m.misses);
    result.store.shared_hits = static_cast<std::int64_t>(m.shared_hits);
    result.store.shared_misses = static_cast<std::int64_t>(m.shared_misses);
    result.store.bytes_read = static_cast<std::int64_t>(m.bytes_read);
    result.store.bytes_published = static_cast<std::int64_t>(m.bytes_published);
  }
  // Single mirror point into the metrics registry: every run — in-process
  // study, pool thread, shard worker — passes through here exactly once,
  // so registry totals always equal the sum of RunResult counters and
  // nothing double-counts. Thread-safe (striped relaxed adds).
  if (obs::Registry::instance().enabled()) {
    obs::add_counter("engine.runs", 1);
    obs::add_counter("engine.episodes",
                     static_cast<long long>(result.episodes.size()));
    obs::add_counter("engine.cache_hits", result.cache_hits);
    obs::add_counter("engine.cache_misses", result.cache_misses);
    obs::add_counter("engine.persistent_hits", result.persistent_hits);
    obs::add_counter("engine.persistent_shared_hits",
                     result.persistent_shared_hits);
    obs::add_counter("engine.resumed_episodes", result.resumed_episodes);
    obs::add_counter("store.hits", result.store.hits);
    obs::add_counter("store.misses", result.store.misses);
    obs::add_counter("store.shared_hits", result.store.shared_hits);
    obs::add_counter("store.shared_misses", result.store.shared_misses);
    obs::add_counter("store.bytes_read", result.store.bytes_read);
    obs::add_counter("store.bytes_published", result.store.bytes_published);
  }
  return result;
}

SpeedupReport measure_speedup(const ExperimentConfig& config,
                              double threshold_fraction,
                              PerformanceEvaluator* evaluator) {
  if (threshold_fraction <= 0.0 || threshold_fraction > 1.0) {
    throw std::invalid_argument("measure_speedup: bad threshold fraction");
  }
  const RunResult lcda =
      run_strategy(Strategy::kLcda, config.lcda_episodes, config, evaluator);
  const RunResult nacim =
      run_strategy(Strategy::kNacimRl, config.nacim_episodes, config, evaluator);

  SpeedupReport report;
  report.lcda_best = lcda.best_reward();
  report.nacim_best = nacim.best_reward();
  report.threshold = threshold_fraction * report.nacim_best;
  // Episodes are 0-based indices; report 1-based counts.
  const int l = lcda.episodes_to_reach(report.threshold);
  const int n = nacim.episodes_to_reach(report.threshold);
  report.lcda_episodes = l < 0 ? -1 : l + 1;
  report.nacim_episodes = n < 0 ? -1 : n + 1;
  report.store += lcda.store;
  report.store += nacim.store;
  report.resumed_episodes = lcda.resumed_episodes + nacim.resumed_episodes;
  return report;
}

void write_run_csv(std::ostream& os, const RunResult& run,
                   std::string_view label) {
  util::CsvWriter csv(os);
  for (const auto& ep : run.episodes) {
    csv.field(label)
        .field(ep.episode)
        .field(ep.accuracy)
        .field(ep.energy_pj)
        .field(ep.latency_ns)
        .field(ep.area_mm2)
        .field(ep.reward)
        .field(static_cast<long long>(ep.valid))
        .field(ep.design.describe())
        .endrow();
  }
}

}  // namespace lcda::core
