#include "lcda/core/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "lcda/util/csv.h"
#include "lcda/util/thread_pool.h"

namespace lcda::core {

std::string_view strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kLcda: return "LCDA";
    case Strategy::kLcdaNaive: return "LCDA-naive";
    case Strategy::kLcdaFinetuned: return "LCDA-finetuned";
    case Strategy::kNacimRl: return "NACIM";
    case Strategy::kGenetic: return "Genetic";
    case Strategy::kNsga2: return "NSGA-II";
    case Strategy::kAnnealing: return "Annealing";
    case Strategy::kRandom: return "Random";
  }
  return "?";
}

int env_parallelism(int fallback) {
  constexpr long kMaxParallelism = 4096;
  const char* value = std::getenv("LCDA_PARALLELISM");
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0 || parsed > kMaxParallelism) {
    return fallback;
  }
  return util::ThreadPool::resolve_parallelism(static_cast<int>(parsed));
}

std::unique_ptr<search::Optimizer> make_optimizer(Strategy strategy,
                                                  const ExperimentConfig& config) {
  search::SearchSpace space(config.space);
  switch (strategy) {
    case Strategy::kLcda:
    case Strategy::kLcdaNaive:
    case Strategy::kLcdaFinetuned: {
      llm::SimulatedGpt4::Options gpt;
      gpt.seed = util::hash_combine(config.seed, 0x69f7);
      gpt.wrong_cim_kernel_priors = strategy != Strategy::kLcdaFinetuned;
      auto client = std::make_shared<llm::SimulatedGpt4>(gpt);
      llm::LlmOptimizer::Options opts;
      opts.prompt.objective = config.objective;
      opts.prompt.codesign_context = strategy != Strategy::kLcdaNaive;
      return std::make_unique<llm::LlmOptimizer>(std::move(space),
                                                 std::move(client), opts);
    }
    case Strategy::kNacimRl:
      return std::make_unique<search::RlOptimizer>(std::move(space));
    case Strategy::kGenetic:
      return std::make_unique<search::GeneticOptimizer>(std::move(space));
    case Strategy::kNsga2: {
      search::Nsga2Optimizer::Options opts;
      opts.use_latency = config.objective == llm::Objective::kLatency;
      return std::make_unique<search::Nsga2Optimizer>(std::move(space), opts);
    }
    case Strategy::kAnnealing:
      return std::make_unique<search::AnnealingOptimizer>(std::move(space));
    case Strategy::kRandom:
      return std::make_unique<search::RandomOptimizer>(std::move(space));
  }
  throw std::invalid_argument("make_optimizer: unknown strategy");
}

RunResult run_strategy(Strategy strategy, int episodes,
                       const ExperimentConfig& config) {
  auto optimizer = make_optimizer(strategy, config);
  SurrogateEvaluator evaluator(config.evaluator);
  RewardFunction reward(config.objective);
  CodesignLoop::Options opts;
  opts.episodes = episodes;
  opts.parallelism = config.parallelism;
  opts.batch_size = config.batch_size;
  opts.cache_evaluations = config.cache_evaluations;
  CodesignLoop loop(*optimizer, evaluator, reward, opts);
  util::Rng rng(util::hash_combine(config.seed,
                                   static_cast<std::uint64_t>(strategy) + 101));
  return loop.run(rng);
}

SpeedupReport measure_speedup(const ExperimentConfig& config,
                              double threshold_fraction) {
  if (threshold_fraction <= 0.0 || threshold_fraction > 1.0) {
    throw std::invalid_argument("measure_speedup: bad threshold fraction");
  }
  const RunResult lcda = run_strategy(Strategy::kLcda, config.lcda_episodes, config);
  const RunResult nacim =
      run_strategy(Strategy::kNacimRl, config.nacim_episodes, config);

  SpeedupReport report;
  report.lcda_best = lcda.best_reward();
  report.nacim_best = nacim.best_reward();
  report.threshold = threshold_fraction * report.nacim_best;
  // Episodes are 0-based indices; report 1-based counts.
  const int l = lcda.episodes_to_reach(report.threshold);
  const int n = nacim.episodes_to_reach(report.threshold);
  report.lcda_episodes = l < 0 ? -1 : l + 1;
  report.nacim_episodes = n < 0 ? -1 : n + 1;
  return report;
}

void write_run_csv(std::ostream& os, const RunResult& run,
                   std::string_view label) {
  util::CsvWriter csv(os);
  for (const auto& ep : run.episodes) {
    csv.field(label)
        .field(ep.episode)
        .field(ep.accuracy)
        .field(ep.energy_pj)
        .field(ep.latency_ns)
        .field(ep.area_mm2)
        .field(ep.reward)
        .field(static_cast<long long>(ep.valid))
        .field(ep.design.describe())
        .endrow();
  }
}

}  // namespace lcda::core
