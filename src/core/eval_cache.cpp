#include "lcda/core/eval_cache.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "lcda/util/strings.h"

namespace lcda::core {

namespace {

constexpr std::string_view kFormat = "lcda-eval-cache-v1";

std::uint64_t parse_hex64(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc() || ptr != s.data() + s.size() || s.empty()) {
    throw std::runtime_error("PersistentEvalCache: bad hex id \"" + s + "\"");
  }
  return v;
}

}  // namespace

util::Json evaluation_to_json(const Evaluation& ev) {
  util::Json j = util::Json::object();
  j["accuracy"] = ev.accuracy;
  j["accuracy_stddev"] = ev.accuracy_stddev;

  util::Json c = util::Json::object();
  c["valid"] = ev.cost.valid;
  if (!ev.cost.invalid_reason.empty()) c["invalid_reason"] = ev.cost.invalid_reason;
  c["area_arrays_mm2"] = ev.cost.area_arrays_mm2;
  c["area_buffer_mm2"] = ev.cost.area_buffer_mm2;
  c["area_digital_mm2"] = ev.cost.area_digital_mm2;
  c["area_noc_mm2"] = ev.cost.area_noc_mm2;
  c["area_total_mm2"] = ev.cost.area_total_mm2;
  c["energy_adc_pj"] = ev.cost.energy_adc_pj;
  c["energy_xbar_pj"] = ev.cost.energy_xbar_pj;
  c["energy_dac_pj"] = ev.cost.energy_dac_pj;
  c["energy_digital_pj"] = ev.cost.energy_digital_pj;
  c["energy_buffer_pj"] = ev.cost.energy_buffer_pj;
  c["energy_noc_pj"] = ev.cost.energy_noc_pj;
  c["energy_total_pj"] = ev.cost.energy_total_pj;
  c["latency_ns"] = ev.cost.latency_ns;
  c["leakage_mw"] = ev.cost.leakage_mw;
  c["total_weights"] = ev.cost.total_weights;
  c["total_cells"] = ev.cost.total_cells;
  c["programming_energy_pj"] = ev.cost.programming_energy_pj;
  c["weight_sigma"] = ev.cost.weight_sigma;
  c["max_adc_deficit_bits"] = ev.cost.max_adc_deficit_bits;
  j["cost"] = c;
  return j;
}

Evaluation evaluation_from_json(const util::Json& j) {
  Evaluation ev;
  ev.accuracy = j.at("accuracy").as_double();
  ev.accuracy_stddev = j.at("accuracy_stddev").as_double();
  const util::Json& c = j.at("cost");
  ev.cost.valid = c.at("valid").as_bool();
  if (c.contains("invalid_reason")) {
    ev.cost.invalid_reason = c.at("invalid_reason").as_string();
  }
  ev.cost.area_arrays_mm2 = c.at("area_arrays_mm2").as_double();
  ev.cost.area_buffer_mm2 = c.at("area_buffer_mm2").as_double();
  ev.cost.area_digital_mm2 = c.at("area_digital_mm2").as_double();
  ev.cost.area_noc_mm2 = c.at("area_noc_mm2").as_double();
  ev.cost.area_total_mm2 = c.at("area_total_mm2").as_double();
  ev.cost.energy_adc_pj = c.at("energy_adc_pj").as_double();
  ev.cost.energy_xbar_pj = c.at("energy_xbar_pj").as_double();
  ev.cost.energy_dac_pj = c.at("energy_dac_pj").as_double();
  ev.cost.energy_digital_pj = c.at("energy_digital_pj").as_double();
  ev.cost.energy_buffer_pj = c.at("energy_buffer_pj").as_double();
  ev.cost.energy_noc_pj = c.at("energy_noc_pj").as_double();
  ev.cost.energy_total_pj = c.at("energy_total_pj").as_double();
  ev.cost.latency_ns = c.at("latency_ns").as_double();
  ev.cost.leakage_mw = c.at("leakage_mw").as_double();
  ev.cost.total_weights = c.at("total_weights").as_int();
  ev.cost.total_cells = c.at("total_cells").as_int();
  ev.cost.programming_energy_pj = c.at("programming_energy_pj").as_double();
  ev.cost.weight_sigma = c.at("weight_sigma").as_double();
  ev.cost.max_adc_deficit_bits =
      static_cast<int>(c.at("max_adc_deficit_bits").as_int());
  return ev;
}

PersistentEvalCache::PersistentEvalCache(std::string directory,
                                         std::uint64_t fingerprint)
    : PersistentEvalCache(std::move(directory), fingerprint, Budget{}) {}

PersistentEvalCache::PersistentEvalCache(std::string directory,
                                         std::uint64_t fingerprint,
                                         Budget budget)
    : directory_(std::move(directory)),
      fingerprint_(fingerprint),
      budget_(budget) {
  if (directory_.empty()) {
    throw std::invalid_argument("PersistentEvalCache: empty directory");
  }
  path_ = directory_ + "/" + util::hex_u64(fingerprint_) + ".json";

  std::ifstream in(path_);
  if (!in) return;  // no cache yet
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string body = buffer.str();
  try {
    load_body(body);
  } catch (const std::exception& e) {
    // Unusable file: skip it (counted, reported) and run cold instead of
    // aborting. Writes are atomic (temp + rename), so this cannot be a
    // torn save from a concurrent worker — it is a genuinely bad file,
    // and a distributed shard retry must be able to get past it; the next
    // save simply replaces it. Partially parsed contents must not leak
    // into the run, so the load is all-or-nothing.
    std::fprintf(stderr,
                 "PersistentEvalCache: skipping unusable cache file %s: %s\n",
                 path_.c_str(), e.what());
    entries_.clear();
    next_seq_ = 0;
    ++skipped_files_;
    return;
  }
  // A budget tightened between runs trims the file on the next save, even
  // when that run inserts nothing: over-budget contents mark the cache
  // dirty here so save() cannot early-return past the eviction pass.
  const std::size_t before = entries_.size();
  evict_to_entry_budget();
  if (entries_.size() != before) dirty_ = true;
  if (budget_.max_bytes > 0 && body.size() > budget_.max_bytes) {
    dirty_ = true;
  }
}

void PersistentEvalCache::load_body(const std::string& body) {
  util::Json doc;
  try {
    doc = util::Json::parse(body);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string("corrupt JSON: ") + e.what());
  }
  if (!doc.contains("format") || doc.at("format").as_string() != kFormat) {
    throw std::runtime_error("not a " + std::string(kFormat) + " file");
  }
  if (parse_hex64(doc.at("fingerprint").as_string()) != fingerprint_) {
    throw std::runtime_error("fingerprint mismatch (file moved between studies?)");
  }
  for (const util::Json& entry : doc.at("entries").elements()) {
    Entry e;
    e.evaluation = evaluation_from_json(entry.at("evaluation"));
    // Age survives round trips via a per-entry sequence number; files from
    // before eviction existed carry none and age by file order.
    e.seq = entry.contains("seq")
                ? static_cast<std::uint64_t>(entry.at("seq").as_int())
                : next_seq_;
    next_seq_ = std::max(next_seq_, e.seq + 1);
    entries_.emplace(parse_hex64(entry.at("design").as_string()), std::move(e));
  }
}

std::optional<Evaluation> PersistentEvalCache::lookup(
    std::uint64_t design_hash) const {
  const auto it = entries_.find(design_hash);
  if (it == entries_.end()) return std::nullopt;
  return it->second.evaluation;
}

void PersistentEvalCache::insert(std::uint64_t design_hash,
                                 const Evaluation& ev) {
  if (entries_.emplace(design_hash, Entry{ev, next_seq_}).second) {
    ++next_seq_;
    dirty_ = true;
  }
}

void PersistentEvalCache::evict_oldest(std::size_t drop) {
  drop = std::min(drop, entries_.size());
  if (drop == 0) return;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_age;  // (seq, hash)
  by_age.reserve(entries_.size());
  for (const auto& [hash, entry] : entries_) by_age.emplace_back(entry.seq, hash);
  std::sort(by_age.begin(), by_age.end());
  for (std::size_t i = 0; i < drop; ++i) entries_.erase(by_age[i].second);
  evictions_ += drop;
}

void PersistentEvalCache::evict_to_entry_budget() {
  if (budget_.max_entries == 0 || entries_.size() <= budget_.max_entries) {
    return;
  }
  evict_oldest(entries_.size() - budget_.max_entries);
}

void PersistentEvalCache::save() {
  if (!dirty_) return;
  evict_to_entry_budget();

  // Stable files: entries sorted by design hash regardless of insertion
  // or rehash order.
  auto serialize = [this] {
    std::vector<std::uint64_t> keys;
    keys.reserve(entries_.size());
    for (const auto& [hash, entry] : entries_) keys.push_back(hash);
    std::sort(keys.begin(), keys.end());

    util::Json doc = util::Json::object();
    doc["format"] = kFormat;
    doc["fingerprint"] = util::hex_u64(fingerprint_);
    util::Json arr = util::Json::array();
    for (std::uint64_t key : keys) {
      const Entry& e = entries_.at(key);
      util::Json entry = util::Json::object();
      entry["design"] = util::hex_u64(key);
      entry["seq"] = static_cast<long long>(e.seq);
      entry["evaluation"] = evaluation_to_json(e.evaluation);
      arr.push_back(entry);
    }
    doc["entries"] = arr;
    return doc.dump(1) + '\n';
  };

  std::string body = serialize();
  // Approximate byte budget: evict oldest-first, re-estimating from the
  // measured bytes-per-entry, until the serialized file fits.
  while (budget_.max_bytes > 0 && body.size() > budget_.max_bytes &&
         !entries_.empty()) {
    const std::size_t per_entry =
        std::max<std::size_t>(1, body.size() / entries_.size());
    const std::size_t over = body.size() - budget_.max_bytes;
    evict_oldest(std::max<std::size_t>(1, (over + per_entry - 1) / per_entry));
    body = serialize();
  }

  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  // Unique temp name per process AND per save: concurrent saves of the
  // same study (other processes, or threads in this one) must never
  // interleave writes into one temp file (rename publishes atomically).
  static std::atomic<unsigned long> save_counter{0};
  const std::string tmp = path_ + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(save_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("PersistentEvalCache: cannot write " + tmp);
    out << body;
    if (!out.flush()) {
      throw std::runtime_error("PersistentEvalCache: write failed for " + tmp);
    }
  }
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    throw std::runtime_error("PersistentEvalCache: rename to " + path_ +
                             " failed: " + ec.message());
  }
  dirty_ = false;
}

}  // namespace lcda::core
