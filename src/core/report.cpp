#include "lcda/core/report.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "lcda/util/strings.h"

namespace lcda::core {

util::Json design_to_json(const search::Design& design) {
  util::Json j = util::Json::object();
  util::Json rollout = util::Json::array();
  for (const auto& spec : design.rollout) {
    util::Json pair = util::Json::array();
    pair.push_back(spec.channels);
    pair.push_back(spec.kernel);
    rollout.push_back(pair);
  }
  j["rollout"] = rollout;
  util::Json hw = util::Json::object();
  hw["device"] = std::string(cim::device_name(design.hw.device));
  hw["bits_per_cell"] = design.hw.bits_per_cell;
  hw["weight_bits"] = design.hw.weight_bits;
  hw["adc_bits"] = design.hw.adc_bits;
  hw["xbar_size"] = design.hw.xbar_size;
  hw["col_mux"] = design.hw.col_mux;
  j["hardware"] = hw;
  return j;
}

util::Json episode_to_json(const EpisodeRecord& episode) {
  util::Json j = util::Json::object();
  j["episode"] = episode.episode;
  j["accuracy"] = episode.accuracy;
  j["energy_pj"] = episode.energy_pj;
  j["latency_ns"] = episode.latency_ns;
  j["area_mm2"] = episode.area_mm2;
  j["reward"] = episode.reward;
  j["valid"] = episode.valid;
  j["design"] = design_to_json(episode.design);
  return j;
}

util::Json run_to_json(const RunResult& run, std::string_view label) {
  util::Json j = util::Json::object();
  j["label"] = label;
  j["episodes"] = static_cast<long long>(run.episodes.size());
  if (!run.episodes.empty()) {
    j["best_episode"] = run.best_episode;
    j["best_reward"] = run.best_reward();
  }
  j["cache_hits"] = static_cast<long long>(run.cache_hits);
  j["cache_misses"] = static_cast<long long>(run.cache_misses);
  j["persistent_hits"] = static_cast<long long>(run.persistent_hits);
  util::Json eps = util::Json::array();
  for (const auto& ep : run.episodes) eps.push_back(episode_to_json(ep));
  j["trace"] = eps;
  return j;
}

util::Json experiment_to_json(std::string_view name, std::uint64_t seed,
                              const std::vector<LabelledRun>& runs) {
  util::Json j = util::Json::object();
  j["experiment"] = name;
  j["seed"] = static_cast<long long>(seed);
  util::Json arr = util::Json::array();
  for (const auto& lr : runs) {
    if (!lr.run) throw std::invalid_argument("experiment_to_json: null run");
    arr.push_back(run_to_json(*lr.run, lr.label));
  }
  j["runs"] = arr;
  return j;
}

void write_json_file(const util::Json& j, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_json_file: cannot write " + path);
  out << j.dump(2) << '\n';
  if (!out.flush()) throw std::runtime_error("write_json_file: write failed");
}

std::string json_output_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (util::starts_with(arg, "--json=")) {
      return std::string(arg.substr(std::string_view("--json=").size()));
    }
  }
  const char* env = std::getenv("LCDA_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string();
}

std::vector<std::string> positional_args(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    if (!util::starts_with(argv[i], "--")) out.emplace_back(argv[i]);
  }
  return out;
}

}  // namespace lcda::core
