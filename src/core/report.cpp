#include "lcda/core/report.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "lcda/util/csv.h"
#include "lcda/util/strings.h"

namespace lcda::core {

util::Json design_to_json(const search::Design& design) {
  util::Json j = util::Json::object();
  util::Json rollout = util::Json::array();
  for (const auto& spec : design.rollout) {
    util::Json pair = util::Json::array();
    pair.push_back(spec.channels);
    pair.push_back(spec.kernel);
    rollout.push_back(pair);
  }
  j["rollout"] = rollout;
  util::Json hw = util::Json::object();
  hw["device"] = std::string(cim::device_name(design.hw.device));
  hw["bits_per_cell"] = design.hw.bits_per_cell;
  hw["weight_bits"] = design.hw.weight_bits;
  hw["adc_bits"] = design.hw.adc_bits;
  hw["xbar_size"] = design.hw.xbar_size;
  hw["col_mux"] = design.hw.col_mux;
  j["hardware"] = hw;
  return j;
}

util::Json episode_to_json(const EpisodeRecord& episode) {
  util::Json j = util::Json::object();
  j["episode"] = episode.episode;
  j["accuracy"] = episode.accuracy;
  j["energy_pj"] = episode.energy_pj;
  j["latency_ns"] = episode.latency_ns;
  j["area_mm2"] = episode.area_mm2;
  j["reward"] = episode.reward;
  j["valid"] = episode.valid;
  j["design"] = design_to_json(episode.design);
  return j;
}

util::Json run_to_json(const RunResult& run, std::string_view label) {
  util::Json j = util::Json::object();
  j["label"] = label;
  j["episodes"] = static_cast<long long>(run.episodes.size());
  if (!run.episodes.empty()) {
    j["best_episode"] = run.best_episode;
    j["best_reward"] = run.best_reward();
  }
  j["cache_hits"] = static_cast<long long>(run.cache_hits);
  j["cache_misses"] = static_cast<long long>(run.cache_misses);
  j["persistent_hits"] = static_cast<long long>(run.persistent_hits);
  j["persistent_shared_hits"] =
      static_cast<long long>(run.persistent_shared_hits);
  j["persistent_skipped"] = static_cast<long long>(run.persistent_skipped);
  j["persistent_save_failures"] =
      static_cast<long long>(run.persistent_save_failures);
  util::Json eps = util::Json::array();
  for (const auto& ep : run.episodes) eps.push_back(episode_to_json(ep));
  j["trace"] = eps;
  return j;
}

util::Json experiment_to_json(std::string_view name, std::uint64_t seed,
                              const std::vector<LabelledRun>& runs) {
  util::Json j = util::Json::object();
  j["experiment"] = name;
  j["seed"] = static_cast<long long>(seed);
  util::Json arr = util::Json::array();
  for (const auto& lr : runs) {
    if (!lr.run) throw std::invalid_argument("experiment_to_json: null run");
    arr.push_back(run_to_json(*lr.run, lr.label));
  }
  j["runs"] = arr;
  return j;
}

util::Json aggregate_to_json(const AggregateResult& agg) {
  util::Json j = util::Json::object();
  j["strategy"] = std::string(strategy_name(agg.strategy));
  j["episodes"] = agg.episodes;
  j["seeds"] = agg.seeds;
  util::Json final_best = util::Json::object();
  final_best["mean"] = agg.final_best.mean();
  final_best["stddev"] = agg.final_best.stddev();
  final_best["min"] = agg.final_best.min();
  final_best["max"] = agg.final_best.max();
  j["final_best"] = final_best;
  // Emitted whenever a threshold was requested — "reached: 0" must stay
  // distinguishable from "no threshold study" for JSON consumers.
  if (!std::isnan(agg.threshold)) {
    util::Json thresh = util::Json::object();
    thresh["threshold"] = agg.threshold;
    thresh["reached"] = agg.reached;
    if (agg.reached > 0) {
      thresh["mean_episodes"] = agg.episodes_to_threshold.mean();
    }
    j["episodes_to_threshold"] = thresh;
  }
  j["cache_hits"] = static_cast<long long>(agg.cache_hits);
  j["cache_misses"] = static_cast<long long>(agg.cache_misses);
  j["persistent_hits"] = static_cast<long long>(agg.persistent_hits);
  j["persistent_shared_hits"] =
      static_cast<long long>(agg.persistent_shared_hits);
  j["persistent_skipped"] = static_cast<long long>(agg.persistent_skipped);
  j["persistent_save_failures"] =
      static_cast<long long>(agg.persistent_save_failures);
  util::Json mean = util::Json::array();
  util::Json stddev = util::Json::array();
  for (const util::OnlineStats& s : agg.running_best) {
    mean.push_back(s.mean());
    stddev.push_back(s.stddev());
  }
  j["running_best_mean"] = mean;
  j["running_best_stddev"] = stddev;
  return j;
}

util::Json speedup_study_to_json(const std::vector<SpeedupReport>& reports) {
  util::Json j = util::Json::object();
  util::Json arr = util::Json::array();
  util::OnlineStats speedups;
  for (const SpeedupReport& r : reports) {
    util::Json entry = util::Json::object();
    entry["threshold"] = r.threshold;
    entry["lcda_episodes"] = r.lcda_episodes;
    entry["nacim_episodes"] = r.nacim_episodes;
    entry["lcda_best"] = r.lcda_best;
    entry["nacim_best"] = r.nacim_best;
    entry["speedup"] = r.speedup();
    arr.push_back(entry);
    if (r.speedup() > 0.0) speedups.add(r.speedup());
  }
  j["seeds"] = static_cast<long long>(reports.size());
  j["reached_both"] = static_cast<long long>(speedups.count());
  if (speedups.count() > 0) j["mean_speedup"] = speedups.mean();
  j["per_seed"] = arr;
  return j;
}

void write_aggregate_csv(std::ostream& os, const AggregateResult& agg,
                         std::string_view label) {
  util::CsvWriter csv(os);
  for (std::size_t e = 0; e < agg.running_best.size(); ++e) {
    const util::OnlineStats& s = agg.running_best[e];
    csv.field(label)
        .field(static_cast<long long>(e))
        .field(s.mean())
        .field(s.stddev())
        .field(s.min())
        .field(s.max())
        .endrow();
  }
}

void write_speedup_csv(std::ostream& os,
                       const std::vector<SpeedupReport>& reports,
                       std::string_view label) {
  util::CsvWriter csv(os);
  for (std::size_t s = 0; s < reports.size(); ++s) {
    const SpeedupReport& r = reports[s];
    csv.field(label)
        .field(static_cast<long long>(s))
        .field(r.threshold)
        .field(r.lcda_episodes)
        .field(r.nacim_episodes)
        .field(r.lcda_best)
        .field(r.nacim_best)
        .field(r.speedup())
        .endrow();
  }
}

void write_json_file(const util::Json& j, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_json_file: cannot write " + path);
  out << j.dump(2) << '\n';
  if (!out.flush()) throw std::runtime_error("write_json_file: write failed");
}

std::string json_output_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (util::starts_with(arg, "--json=")) {
      return std::string(arg.substr(std::string_view("--json=").size()));
    }
  }
  const char* env = std::getenv("LCDA_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string();
}

std::vector<std::string> positional_args(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    if (!util::starts_with(argv[i], "--")) out.emplace_back(argv[i]);
  }
  return out;
}

}  // namespace lcda::core
