#include "lcda/core/report.h"

#include <stdexcept>

namespace lcda::core {

util::Json design_to_json(const search::Design& design) {
  util::Json j = util::Json::object();
  util::Json rollout = util::Json::array();
  for (const auto& spec : design.rollout) {
    util::Json pair = util::Json::array();
    pair.push_back(spec.channels);
    pair.push_back(spec.kernel);
    rollout.push_back(pair);
  }
  j["rollout"] = rollout;
  util::Json hw = util::Json::object();
  hw["device"] = std::string(cim::device_name(design.hw.device));
  hw["bits_per_cell"] = design.hw.bits_per_cell;
  hw["weight_bits"] = design.hw.weight_bits;
  hw["adc_bits"] = design.hw.adc_bits;
  hw["xbar_size"] = design.hw.xbar_size;
  hw["col_mux"] = design.hw.col_mux;
  j["hardware"] = hw;
  return j;
}

util::Json episode_to_json(const EpisodeRecord& episode) {
  util::Json j = util::Json::object();
  j["episode"] = episode.episode;
  j["accuracy"] = episode.accuracy;
  j["energy_pj"] = episode.energy_pj;
  j["latency_ns"] = episode.latency_ns;
  j["area_mm2"] = episode.area_mm2;
  j["reward"] = episode.reward;
  j["valid"] = episode.valid;
  j["design"] = design_to_json(episode.design);
  return j;
}

util::Json run_to_json(const RunResult& run, std::string_view label) {
  util::Json j = util::Json::object();
  j["label"] = label;
  j["episodes"] = static_cast<long long>(run.episodes.size());
  if (!run.episodes.empty()) {
    j["best_episode"] = run.best_episode;
    j["best_reward"] = run.best_reward();
  }
  util::Json eps = util::Json::array();
  for (const auto& ep : run.episodes) eps.push_back(episode_to_json(ep));
  j["trace"] = eps;
  return j;
}

util::Json experiment_to_json(std::string_view name, std::uint64_t seed,
                              const std::vector<LabelledRun>& runs) {
  util::Json j = util::Json::object();
  j["experiment"] = name;
  j["seed"] = static_cast<long long>(seed);
  util::Json arr = util::Json::array();
  for (const auto& lr : runs) {
    if (!lr.run) throw std::invalid_argument("experiment_to_json: null run");
    arr.push_back(run_to_json(*lr.run, lr.label));
  }
  j["runs"] = arr;
  return j;
}

}  // namespace lcda::core
