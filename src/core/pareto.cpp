#include "lcda/core/pareto.h"

#include <algorithm>

namespace lcda::core {

bool dominates(const TradeoffPoint& a, const TradeoffPoint& b) {
  const bool no_worse = a.cost <= b.cost && a.accuracy >= b.accuracy;
  const bool better = a.cost < b.cost || a.accuracy > b.accuracy;
  return no_worse && better;
}

std::vector<std::size_t> pareto_front(const std::vector<TradeoffPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool is_dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j != i && dominates(points[j], points[i])) {
        is_dominated = true;
        break;
      }
    }
    if (!is_dominated) front.push_back(i);
  }
  std::sort(front.begin(), front.end(), [&points](std::size_t a, std::size_t b) {
    if (points[a].cost != points[b].cost) return points[a].cost < points[b].cost;
    return points[a].accuracy > points[b].accuracy;
  });
  return front;
}

RunPoints tradeoff_points(const RunResult& run, llm::Objective objective) {
  RunPoints out;
  for (const auto& ep : run.episodes) {
    if (!ep.valid) continue;
    TradeoffPoint p;
    p.cost = objective == llm::Objective::kEnergy ? ep.energy_pj : ep.latency_ns;
    p.accuracy = ep.accuracy;
    out.points.push_back(p);
    out.episode_of_point.push_back(ep.episode);
  }
  return out;
}

double dominated_area(const std::vector<TradeoffPoint>& front, double cost_ref) {
  // Sort a copy of the non-dominated subset by cost and integrate the
  // step function accuracy(cost) from each point to the reference.
  const auto idx = pareto_front(front);
  double area = 0.0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const TradeoffPoint& p = front[idx[i]];
    if (p.cost >= cost_ref) continue;
    const double next_cost =
        i + 1 < idx.size() ? std::min(front[idx[i + 1]].cost, cost_ref) : cost_ref;
    area += (next_cost - p.cost) * p.accuracy;
  }
  return area;
}

}  // namespace lcda::core
