#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lcda/core/experiment.h"
#include "lcda/util/json_lite.h"

namespace lcda::core {

/// A named, self-describing experiment definition: everything a study needs
/// — search space, evaluator, objective/reward, noise/write-verify setting,
/// episode budgets — bundled as data. Scenarios make every bench, example
/// and CLI sweep a thin driver: `lcda_run --scenario=X --strategy=Y`
/// reproduces any figure without writing a new binary.
struct Scenario {
  std::string name;     ///< registry key, e.g. "paper-energy"
  std::string summary;  ///< one line: what this scenario stresses
  /// A sentence or two of detail beyond the summary — what the study
  /// measures and which knobs it turns. Shown by `lcda_run --list` and
  /// carried in shard specs, so a scenario name appearing in distributed
  /// logs is self-explanatory. Optional ("" is omitted when serialized).
  std::string description;
  /// Strategy a bare `lcda_run --scenario=X` runs; benches override it.
  Strategy default_strategy = Strategy::kLcda;
  ExperimentConfig config;
};

// ----------------------------------------------------------- serialization
//
// ExperimentConfig and Scenario round-trip through util::json_lite. Saving
// omits fields that still hold their default value (pass include_defaults
// to dump everything); loading starts from defaults, applies what is
// present, and REJECTS unknown keys with std::invalid_argument naming the
// offending key — a typo in a scenario file fails loudly, not silently.

[[nodiscard]] util::Json config_to_json(const ExperimentConfig& config,
                                        bool include_defaults = false);
[[nodiscard]] ExperimentConfig config_from_json(const util::Json& j);

[[nodiscard]] util::Json scenario_to_json(const Scenario& scenario,
                                          bool include_defaults = false);
[[nodiscard]] Scenario scenario_from_json(const util::Json& j);

/// Scenario file I/O (the scenario_to_json document, pretty-printed).
[[nodiscard]] Scenario load_scenario(const std::string& path);
void save_scenario(const Scenario& scenario, const std::string& path);

/// Applies one "dotted.path=value" override to a config, e.g.
/// "space.conv_layers=4", "objective=latency",
/// "space.channel_choices=[16,32,64]". The value is parsed as JSON when it
/// looks like it (numbers, bools, arrays), else taken as a string. Unknown
/// paths throw std::invalid_argument.
void apply_override(ExperimentConfig& config, std::string_view key_value);

// ----------------------------------------------------------------- registry
//
// Process-wide scenario registry, pre-seeded with the paper's studies and
// the extended catalog (see scenario.cpp / README "Scenario catalog").
// Thread-safe; registration of a duplicate name throws.

void register_scenario(Scenario scenario);
[[nodiscard]] Scenario scenario_by_name(std::string_view name);
[[nodiscard]] std::vector<std::string> list_scenarios();

/// Registers every "*.json" scenario file in `directory` (sorted by file
/// name, so registration order is deterministic) and returns the names
/// registered. Throws std::runtime_error when the directory cannot be
/// read and std::invalid_argument on a malformed file or a name collision
/// — a broken scenario drop-in fails loudly, not silently.
///
/// The same loading runs automatically at registry initialization for the
/// directory named by the LCDA_SCENARIO_DIR environment variable, so
/// `lcda_run --list`, every bench_* and every example sees dropped-in
/// scenarios without code changes.
std::vector<std::string> register_scenarios_from(const std::string& directory);

/// Fingerprint of everything that determines a study's evaluation stream:
/// the config minus the engine knobs that provably cannot change a trace
/// (parallelism, in-memory/persistent cache settings), combined with the
/// strategy and the actual episode count. Episodes are part of the key
/// because batched optimizers truncate their final batch at the budget,
/// which shifts RNG consumption — streams are NOT prefix-stable across
/// budgets. Keys the persistent evaluation cache.
[[nodiscard]] std::uint64_t study_fingerprint(const ExperimentConfig& config,
                                              Strategy strategy, int episodes);
/// The study fingerprint split into the store-v2 namespaces (see
/// lcda::store::EvalStore). evaluation_fingerprint covers what legally
/// determines an Evaluation's content: search space, evaluator kind and
/// options, noise/write-verify settings, reward shape — everything in the
/// config EXCEPT the stream-shaping knobs. Two studies with equal
/// evaluation fingerprints compute byte-identical deterministic parts
/// (cost report, accuracy-model parameters) for the same design, no matter
/// how their seeds, strategies or batch schedules differ — which is
/// exactly what the store shares across a sweep's sibling studies.
[[nodiscard]] std::uint64_t evaluation_fingerprint(const ExperimentConfig& config);
/// stream_fingerprint covers the rest: strategy, episode budget, seed and
/// batch size — what shapes the RNG stream and therefore the Monte-Carlo
/// accuracy draws. (evaluation, stream) together key exactly what
/// study_fingerprint keys; the split just lets the store match the two
/// halves independently.
[[nodiscard]] std::uint64_t stream_fingerprint(const ExperimentConfig& config,
                                               Strategy strategy, int episodes);

}  // namespace lcda::core
