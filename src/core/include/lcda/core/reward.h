#pragma once

#include "lcda/cim/cost_model.h"
#include "lcda/llm/prompt.h"

namespace lcda::core {

/// Reward assigned to designs whose hardware is invalid (area over budget):
/// "If the hardware is invalid (e.g., too large in area), the performance I
/// give you will be -1" (paper Algorithm 1).
inline constexpr double kInvalidReward = -1.0;

/// Eq. (1): reward_ae = Accuracy - sqrt(Energy / 8e7).
/// Energy in pJ; 8e7 pJ normalizes to the original ISAAC design.
[[nodiscard]] double reward_accuracy_energy(double accuracy, double energy_pj);

/// Eq. (2): reward_al = Accuracy + FPS / 1600.
/// Latency in ns; 1600 FPS normalizes to the original ISAAC design.
[[nodiscard]] double reward_accuracy_latency(double accuracy, double latency_ns);

/// Reward function f(acc, hw) of Algorithm 2, dispatching on the objective.
/// Invalid cost reports yield kInvalidReward.
class RewardFunction {
 public:
  explicit RewardFunction(llm::Objective objective) : objective_(objective) {}

  [[nodiscard]] double operator()(double accuracy,
                                  const cim::CostReport& cost) const;

  [[nodiscard]] llm::Objective objective() const { return objective_; }

  /// The hardware metric value this reward reads from a report
  /// (energy in pJ or latency in ns).
  [[nodiscard]] double hw_metric(const cim::CostReport& cost) const;

 private:
  llm::Objective objective_;
};

}  // namespace lcda::core
