#pragma once

#include "lcda/cim/cost_model.h"
#include "lcda/llm/prompt.h"

namespace lcda::core {

/// Reward assigned to designs whose hardware is invalid (area over budget):
/// "If the hardware is invalid (e.g., too large in area), the performance I
/// give you will be -1" (paper Algorithm 1).
inline constexpr double kInvalidReward = -1.0;

/// Eq. (1): reward_ae = Accuracy - sqrt(Energy / 8e7).
/// Energy in pJ; 8e7 pJ normalizes to the original ISAAC design.
[[nodiscard]] double reward_accuracy_energy(double accuracy, double energy_pj);

/// Eq. (2): reward_al = Accuracy + FPS / 1600.
/// Latency in ns; 1600 FPS normalizes to the original ISAAC design.
[[nodiscard]] double reward_accuracy_latency(double accuracy, double latency_ns);

/// Reward function f(acc, hw) of Algorithm 2, dispatching on the objective.
/// Invalid cost reports yield kInvalidReward.
///
/// Two modes:
///  * single-objective (the paper's): Eq. (1) on energy or Eq. (2) on
///    latency, selected by the llm::Objective;
///  * combined (scenario extension): accuracy is traded against BOTH
///    hardware metrics at once — accuracy - we*sqrt(E/8e7) + wl*FPS/1600 —
///    the scalarization the multi-objective scenarios optimize.
class RewardFunction {
 public:
  explicit RewardFunction(llm::Objective objective) : objective_(objective) {}

  /// Combined accuracy/energy/latency reward. `objective` only names the
  /// metric surfaced to the LLM prompt; both weights enter the scalar.
  static RewardFunction combined(double energy_weight, double latency_weight,
                                 llm::Objective objective = llm::Objective::kEnergy);

  [[nodiscard]] double operator()(double accuracy,
                                  const cim::CostReport& cost) const;

  [[nodiscard]] llm::Objective objective() const { return objective_; }
  [[nodiscard]] bool is_combined() const { return combined_; }

  /// The hardware metric value this reward reads from a report
  /// (energy in pJ or latency in ns; the objective's metric when combined).
  [[nodiscard]] double hw_metric(const cim::CostReport& cost) const;

 private:
  llm::Objective objective_;
  bool combined_ = false;
  double energy_weight_ = 1.0;
  double latency_weight_ = 1.0;
};

}  // namespace lcda::core
