#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "lcda/cim/cost_model.h"
#include "lcda/data/synthetic_cifar.h"
#include "lcda/search/design.h"
#include "lcda/surrogate/accuracy_model.h"
#include "lcda/util/rng.h"
#include "lcda/util/striped_cache.h"

namespace lcda::core {

/// Joint result of the DNN performance evaluator and the hardware cost
/// evaluator for one candidate (paper Sec. III-C/D).
struct Evaluation {
  double accuracy = 0.0;        ///< mean Monte-Carlo accuracy under variation
  double accuracy_stddev = 0.0; ///< chip-to-chip spread
  cim::CostReport cost;

  /// Deterministic accuracy-model parameters behind the Monte-Carlo loop
  /// (surrogate::AccuracyModel::SampleParams mean/spread). Unlike
  /// `accuracy`, which folds in the producing study's RNG draws, these are
  /// a pure content function of (design, evaluator options) — they are
  /// what the evaluation store may legally share across studies. A
  /// consumer re-derives its own bit-exact accuracy from them by replaying
  /// the Monte-Carlo draws with its own stream
  /// (PerformanceEvaluator::replay_evaluation). has_replay_params is false
  /// for evaluators without a replayable accuracy model and for entries
  /// migrated from v1 cache files.
  double replay_mean = 0.0;
  double replay_spread = 0.0;
  bool has_replay_params = false;
};

/// One evaluation of a batch: the design to cost, the pre-forked private
/// RNG stream that makes the result independent of scheduling, and where
/// the Evaluation lands. All three point into storage the caller keeps
/// alive (and no two requests alias), so a worker owns its request
/// exclusively and a whole round can be evaluated with zero per-episode
/// allocation.
struct EvalRequest {
  const search::Design* design = nullptr;
  util::Rng* rng = nullptr;
  Evaluation* out = nullptr;
};

/// Evaluates a design candidate end to end: builds the hardware cost report
/// and measures DNN accuracy under that hardware's device variation.
class PerformanceEvaluator {
 public:
  virtual ~PerformanceEvaluator() = default;
  [[nodiscard]] virtual Evaluation evaluate(const search::Design& design,
                                            util::Rng& rng) = 0;

  /// Batch contract: evaluates every request in order. The default
  /// delegates to scalar evaluate(); evaluators with per-evaluation setup
  /// cost override it to amortize that work across the batch. Requests are
  /// independent (each has its own RNG stream), so results are identical
  /// to scalar evaluation no matter how the caller splits a round into
  /// batches — the co-design loop sends one contiguous chunk per worker.
  virtual void evaluate_batch(std::span<EvalRequest> batch);

  /// Cross-study reuse hook: re-derives the Evaluation this evaluator
  /// would have computed for the design behind `cached`, consuming `rng`
  /// exactly as a fresh evaluate() would, but skipping all deterministic
  /// work by starting from cached.replay_mean/replay_spread and
  /// cached.cost. Returns false (leaving `out` untouched, `rng`
  /// unconsumed) when `cached` carries no replay parameters or this
  /// evaluator cannot replay — the caller then evaluates cold. When it
  /// returns true, `out` is bit-identical to a cold evaluation with the
  /// same `rng` state, so a replayed hit can never change a trace.
  [[nodiscard]] virtual bool replay_evaluation(const Evaluation& cached,
                                               util::Rng& rng,
                                               Evaluation& out) {
    (void)cached;
    (void)rng;
    (void)out;
    return false;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Fast evaluator: surrogate accuracy model + analytical cost model, with a
/// Monte-Carlo loop over the surrogate's chip-instance draws (DESIGN.md
/// substitution #2). This is what the benchmark harnesses use — a
/// 500-episode NACIM run completes in seconds.
///
/// Thread-safe: evaluate()/evaluate_batch() may be called concurrently from
/// pool workers (the co-design loop does, and run_aggregate shares one
/// instance across every seed's run). The two-phase cost model keeps the
/// hot path allocation-free: per-hardware CostPlans and per-rollout
/// LayerShapeSpans come from hash-striped content-keyed caches, and the
/// per-rollout pass writes straight into the caller's Evaluation.
class SurrogateEvaluator final : public PerformanceEvaluator {
 public:
  struct Options {
    surrogate::AccuracyModel::Options accuracy;
    cim::CostModelOptions cost;
    nn::BackboneOptions backbone;
    int monte_carlo_samples = 16;

    /// SWIM-style selective write-verify at deployment: the fraction of
    /// weights programmed with iterative verification (at
    /// write_verify_sigma_scale times the raw device sigma), shrinking the
    /// effective weight error the accuracy model sees
    /// (noise::effective_sigma_scale). The accuracy benefit is not free:
    /// each verified device costs write_verify_pulses write pulses instead
    /// of one, and the cost report's one-time programming energy is scaled
    /// accordingly. 0 = plain single-pulse programming, the paper's
    /// setting.
    double write_verify_fraction = 0.0;
    double write_verify_sigma_scale = 0.1;
    double write_verify_pulses = 8.0;
  };

  SurrogateEvaluator() : SurrogateEvaluator(Options{}) {}
  explicit SurrogateEvaluator(Options opts);

  [[nodiscard]] Evaluation evaluate(const search::Design& design,
                                    util::Rng& rng) override;
  void evaluate_batch(std::span<EvalRequest> batch) override;
  [[nodiscard]] bool replay_evaluation(const Evaluation& cached,
                                       util::Rng& rng,
                                       Evaluation& out) override;
  [[nodiscard]] std::string name() const override { return "Surrogate"; }

 private:
  void evaluate_into(const search::Design& design, util::Rng& rng,
                     Evaluation& out);
  [[nodiscard]] std::shared_ptr<const cim::CostEvaluator> cost_evaluator_for(
      const cim::HardwareConfig& hw);
  [[nodiscard]] std::shared_ptr<const cim::LayerShapeSpan> span_for(
      const std::vector<nn::ConvSpec>& rollout);

  Options opts_;
  surrogate::AccuracyModel accuracy_;

  /// Search loops revisit the same hardware configs (≤ a few hundred combos
  /// in the NACIM space) and rollouts constantly; rebuilding the circuit
  /// library / CostEvaluator (phase one of the cost model) and re-deriving
  /// the flattened layer geometry per evaluation dominated the
  /// non-Monte-Carlo half of the hot path. Both memos are content-keyed, so
  /// they never change a result — and they are hash-striped
  /// (util::StripedCache) because the loop calls evaluate() concurrently
  /// from pool workers and run_aggregate fans whole seed-runs over one
  /// shared instance: a single memo mutex was the engine's last
  /// serialization point.
  util::StripedCache<cim::CostEvaluator> cost_memo_;
  util::StripedCache<cim::LayerShapeSpan> span_memo_;
};

/// Faithful evaluator: trains the candidate topology with noise injection
/// on the synthetic CIFAR set, then Monte-Carlo evaluates it under the
/// hardware's variation model (the paper's actual pipeline, Sec. III-C).
/// Costs seconds-to-minutes per candidate — used by examples and
/// integration tests on reduced datasets.
class TrainedEvaluator final : public PerformanceEvaluator {
 public:
  struct Options {
    data::SyntheticCifarOptions dataset;
    nn::BackboneOptions backbone;
    cim::CostModelOptions cost;
    int epochs = 6;
    int monte_carlo_samples = 8;
  };

  explicit TrainedEvaluator(Options opts);

  [[nodiscard]] Evaluation evaluate(const search::Design& design,
                                    util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Trained"; }

  [[nodiscard]] const data::TrainTest& dataset() const { return data_; }

 private:
  Options opts_;
  data::TrainTest data_;
};

}  // namespace lcda::core
