#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "lcda/cim/cost_model.h"
#include "lcda/data/synthetic_cifar.h"
#include "lcda/search/design.h"
#include "lcda/surrogate/accuracy_model.h"
#include "lcda/util/rng.h"

namespace lcda::core {

/// Joint result of the DNN performance evaluator and the hardware cost
/// evaluator for one candidate (paper Sec. III-C/D).
struct Evaluation {
  double accuracy = 0.0;        ///< mean Monte-Carlo accuracy under variation
  double accuracy_stddev = 0.0; ///< chip-to-chip spread
  cim::CostReport cost;
};

/// Evaluates a design candidate end to end: builds the hardware cost report
/// and measures DNN accuracy under that hardware's device variation.
class PerformanceEvaluator {
 public:
  virtual ~PerformanceEvaluator() = default;
  [[nodiscard]] virtual Evaluation evaluate(const search::Design& design,
                                            util::Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Fast evaluator: surrogate accuracy model + analytical cost model, with a
/// Monte-Carlo loop over the surrogate's chip-instance draws (DESIGN.md
/// substitution #2). This is what the benchmark harnesses use — a
/// 500-episode NACIM run completes in seconds.
class SurrogateEvaluator final : public PerformanceEvaluator {
 public:
  struct Options {
    surrogate::AccuracyModel::Options accuracy;
    cim::CostModelOptions cost;
    nn::BackboneOptions backbone;
    int monte_carlo_samples = 16;

    /// SWIM-style selective write-verify at deployment: the fraction of
    /// weights programmed with iterative verification (at
    /// write_verify_sigma_scale times the raw device sigma), shrinking the
    /// effective weight error the accuracy model sees
    /// (noise::effective_sigma_scale). The accuracy benefit is not free:
    /// each verified device costs write_verify_pulses write pulses instead
    /// of one, and the cost report's one-time programming energy is scaled
    /// accordingly. 0 = plain single-pulse programming, the paper's
    /// setting.
    double write_verify_fraction = 0.0;
    double write_verify_sigma_scale = 0.1;
    double write_verify_pulses = 8.0;
  };

  SurrogateEvaluator() : SurrogateEvaluator(Options{}) {}
  explicit SurrogateEvaluator(Options opts);

  [[nodiscard]] Evaluation evaluate(const search::Design& design,
                                    util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Surrogate"; }

 private:
  [[nodiscard]] std::shared_ptr<const cim::CostEvaluator> cost_evaluator_for(
      const cim::HardwareConfig& hw);
  [[nodiscard]] std::shared_ptr<const std::vector<nn::LayerShape>> shapes_for(
      const std::vector<nn::ConvSpec>& rollout);

  Options opts_;
  surrogate::AccuracyModel accuracy_;

  /// Search loops revisit the same hardware configs (≤ a few hundred combos
  /// in the NACIM space) and rollouts constantly; rebuilding the circuit
  /// library / CostEvaluator and re-deriving backbone layer shapes per
  /// evaluation dominated the non-Monte-Carlo half of the hot path. Both
  /// memos are content-keyed, so they never change a result — and they are
  /// mutex-guarded because the loop calls evaluate() concurrently from pool
  /// workers. Values are shared_ptr so a rehash (or the size-cap reset)
  /// never invalidates an entry another worker is still using.
  std::mutex memo_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const cim::CostEvaluator>>
      cost_memo_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const std::vector<nn::LayerShape>>>
      shapes_memo_;
};

/// Faithful evaluator: trains the candidate topology with noise injection
/// on the synthetic CIFAR set, then Monte-Carlo evaluates it under the
/// hardware's variation model (the paper's actual pipeline, Sec. III-C).
/// Costs seconds-to-minutes per candidate — used by examples and
/// integration tests on reduced datasets.
class TrainedEvaluator final : public PerformanceEvaluator {
 public:
  struct Options {
    data::SyntheticCifarOptions dataset;
    nn::BackboneOptions backbone;
    cim::CostModelOptions cost;
    int epochs = 6;
    int monte_carlo_samples = 8;
  };

  explicit TrainedEvaluator(Options opts);

  [[nodiscard]] Evaluation evaluate(const search::Design& design,
                                    util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Trained"; }

  [[nodiscard]] const data::TrainTest& dataset() const { return data_; }

 private:
  Options opts_;
  data::TrainTest data_;
};

}  // namespace lcda::core
