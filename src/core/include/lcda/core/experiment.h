#pragma once

#include <memory>
#include <ostream>
#include <string>

#include "lcda/core/loop.h"
#include "lcda/llm/llm_optimizer.h"
#include "lcda/llm/simulated_gpt4.h"
#include "lcda/search/annealing_optimizer.h"
#include "lcda/search/genetic_optimizer.h"
#include "lcda/search/nsga2_optimizer.h"
#include "lcda/search/random_optimizer.h"
#include "lcda/search/rl_optimizer.h"

namespace lcda::core {

/// Shared configuration of the paper's experiments (Sec. IV): the NACIM
/// search space, the surrogate evaluator, the reward for one objective,
/// and the standard episode counts (LCDA 20, NACIM 500).
struct ExperimentConfig {
  llm::Objective objective = llm::Objective::kEnergy;
  int lcda_episodes = 20;
  int nacim_episodes = 500;
  std::uint64_t seed = 1;
  search::SearchSpace::Options space;
  SurrogateEvaluator::Options evaluator;

  /// Evaluation-engine knobs. `parallelism` fans out both the episode
  /// batches inside one run and the seeds of run_aggregate/speedup_study
  /// (1 = sequential, 0 = one worker per hardware thread); results are
  /// bit-identical for every setting. `batch_size` caps the loop's
  /// per-round proposal batch (0 = the optimizer's natural batch).
  int parallelism = 1;
  std::size_t batch_size = 0;
  bool cache_evaluations = true;
};

/// Which optimization strategy drives a run.
///
/// kLcdaFinetuned is the paper's unfulfilled future-work point (Sec. IV-B:
/// "A specific fine-tuning tailored to this task is necessary.
/// Unfortunately ... we are unable to present results"): the same LCDA
/// loop with a simulated LLM whose incorrect CiM kernel priors have been
/// corrected — what a task-fine-tuned model would know.
enum class Strategy {
  kLcda,
  kLcdaNaive,
  kLcdaFinetuned,
  kNacimRl,
  kGenetic,
  kNsga2,
  kAnnealing,
  kRandom,
};

[[nodiscard]] std::string_view strategy_name(Strategy s);

/// Parallelism knob for bench/example binaries: the LCDA_PARALLELISM
/// environment variable ("0" = auto = one worker per hardware thread),
/// falling back to `fallback` when unset or unparsable.
[[nodiscard]] int env_parallelism(int fallback = 1);

/// Builds the optimizer for a strategy over the config's space. LCDA
/// variants are wired to a fresh SimulatedGpt4 seeded from `config.seed`.
[[nodiscard]] std::unique_ptr<search::Optimizer> make_optimizer(
    Strategy strategy, const ExperimentConfig& config);

/// Runs one strategy for `episodes` episodes and returns the trace.
[[nodiscard]] RunResult run_strategy(Strategy strategy, int episodes,
                                     const ExperimentConfig& config);

/// Speedup analysis behind the paper's headline claim (Sec. IV-A):
/// episodes each method needs to reach a comparable solution.
struct SpeedupReport {
  double threshold = 0.0;      ///< target reward (fraction of NACIM's best)
  int lcda_episodes = -1;      ///< episodes LCDA needed (-1 = never)
  int nacim_episodes = -1;     ///< episodes NACIM needed (-1 = never)
  double lcda_best = 0.0;
  double nacim_best = 0.0;
  [[nodiscard]] double speedup() const {
    if (lcda_episodes <= 0 || nacim_episodes <= 0) return 0.0;
    return static_cast<double>(nacim_episodes) / lcda_episodes;
  }
};

/// Runs LCDA and NACIM with the config's episode budgets and measures the
/// episodes-to-threshold speedup. `threshold_fraction` defines "comparable
/// solution" as that fraction of NACIM's final best reward.
[[nodiscard]] SpeedupReport measure_speedup(const ExperimentConfig& config,
                                            double threshold_fraction = 0.95);

/// Writes a run as CSV rows (episode, accuracy, energy, latency, reward,
/// valid, design) — the exact series behind the paper's scatter plots.
void write_run_csv(std::ostream& os, const RunResult& run,
                   std::string_view label);

}  // namespace lcda::core
