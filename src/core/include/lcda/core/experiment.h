#pragma once

#include <memory>
#include <ostream>
#include <string>

#include "lcda/core/loop.h"
#include "lcda/llm/llm_optimizer.h"
#include "lcda/llm/simulated_gpt4.h"
#include "lcda/search/annealing_optimizer.h"
#include "lcda/search/genetic_optimizer.h"
#include "lcda/search/nsga2_optimizer.h"
#include "lcda/search/random_optimizer.h"
#include "lcda/search/rl_optimizer.h"

namespace lcda::core {

/// Which performance evaluator a configuration runs: the calibrated
/// surrogate (seconds per 500-episode run) or the faithful train-then-
/// Monte-Carlo pipeline (seconds-to-minutes per candidate).
enum class EvaluatorKind { kSurrogate, kTrained };

[[nodiscard]] std::string_view evaluator_kind_name(EvaluatorKind k);
[[nodiscard]] EvaluatorKind evaluator_kind_from_name(std::string_view name);

/// Complete, serializable definition of one experiment: search space,
/// evaluator, objective/reward, episode budgets and engine knobs. The
/// defaults are the paper's setting (Sec. IV: NACIM space, surrogate
/// evaluator, LCDA 20 / NACIM 500 episodes). Round-trips through
/// util::json_lite via config_to_json / config_from_json (scenario.h).
struct ExperimentConfig {
  llm::Objective objective = llm::Objective::kEnergy;

  /// Combined accuracy/energy/latency reward (RewardFunction::combined)
  /// instead of the paper's single-objective Eq. (1)/(2). `objective`
  /// still selects the metric surfaced in LLM prompts and Pareto plots.
  bool combined_reward = false;
  double energy_weight = 1.0;
  double latency_weight = 1.0;

  int lcda_episodes = 20;
  int nacim_episodes = 500;
  std::uint64_t seed = 1;
  search::SearchSpace::Options space;

  /// Evaluator choice plus the options of both kinds (only the selected
  /// kind's options are consulted at run time).
  EvaluatorKind evaluator_kind = EvaluatorKind::kSurrogate;
  SurrogateEvaluator::Options evaluator;
  TrainedEvaluator::Options trained;

  /// Evaluation-engine knobs. `parallelism` fans out both the episode
  /// batches inside one run and the seeds of run_aggregate/speedup_study
  /// (1 = sequential, 0 = one worker per hardware thread); results are
  /// bit-identical for every setting. `batch_size` caps the loop's
  /// per-round proposal batch (0 = the optimizer's natural batch).
  /// `pipeline_depth` lets the loop propose up to that many rounds ahead
  /// of in-flight evaluations when the optimizer permits (see
  /// CodesignLoop::Options::pipeline_depth; trace-invariant, 0 = off).
  int parallelism = 1;
  std::size_t batch_size = 0;
  std::size_t pipeline_depth = 8;
  bool cache_evaluations = true;

  /// Directory of the on-disk evaluation cache ("" = disabled). Entries
  /// are keyed by (study fingerprint, Design::hash), where the study
  /// fingerprint covers everything that shapes the evaluation stream
  /// (scenario.h: study_fingerprint), so repeated runs of the same study
  /// skip re-evaluation while traces stay bit-identical to a cold run.
  std::string persistent_cache_dir;

  /// On-disk cache budget (0 = unlimited): entry and approximate byte caps
  /// per cache file, enforced oldest-first at save time
  /// (PersistentEvalCache::Budget). Evicted entries are simply
  /// re-evaluated — deterministically, to the identical value — so the
  /// caps are trace-invariant.
  std::size_t persistent_cache_max_entries = 0;
  std::size_t persistent_cache_max_bytes = 0;

  /// Checkpoint root directory ("" = checkpointing off). Each study
  /// snapshots its full engine state under `<dir>/<study fingerprint>`
  /// every `checkpoint_every` episodes (at the nearest drained round
  /// boundary — cadence only affects when snapshots land, never a trace
  /// byte). With `resume`, a run first restores the newest valid snapshot
  /// and replays its changelog, producing output byte-identical to an
  /// uninterrupted run; without a usable checkpoint it cold-starts.
  /// All three are engine knobs like `parallelism`: normalized away by
  /// the study/evaluation fingerprints.
  std::string checkpoint_dir;
  int checkpoint_every = 64;
  bool resume = false;
};

/// Which optimization strategy drives a run.
///
/// kLcdaFinetuned is the paper's unfulfilled future-work point (Sec. IV-B:
/// "A specific fine-tuning tailored to this task is necessary.
/// Unfortunately ... we are unable to present results"): the same LCDA
/// loop with a simulated LLM whose incorrect CiM kernel priors have been
/// corrected — what a task-fine-tuned model would know.
enum class Strategy {
  kLcda,
  kLcdaNaive,
  kLcdaFinetuned,
  kNacimRl,
  kGenetic,
  kNsga2,
  kAnnealing,
  kRandom,
};

[[nodiscard]] std::string_view strategy_name(Strategy s);

/// Parses a strategy from either its display name ("LCDA-naive", "NSGA-II")
/// or the CLI spelling ("naive", "nsga2"), case-insensitively; throws
/// std::invalid_argument on anything else.
[[nodiscard]] Strategy strategy_from_name(std::string_view name);

/// Every strategy, in enum order (CLI listings, sweeps).
[[nodiscard]] const std::vector<Strategy>& all_strategies();

/// Parallelism knob for bench/example binaries: the LCDA_PARALLELISM
/// environment variable ("0" = auto = one worker per hardware thread),
/// falling back to `fallback` when unset or unparsable.
[[nodiscard]] int env_parallelism(int fallback = 1);

/// Builds the optimizer for a strategy over the config's space. LCDA
/// variants are wired to a fresh SimulatedGpt4 seeded from `config.seed`.
[[nodiscard]] std::unique_ptr<search::Optimizer> make_optimizer(
    Strategy strategy, const ExperimentConfig& config);

/// Builds the evaluator the config selects (surrogate or trained).
[[nodiscard]] std::unique_ptr<PerformanceEvaluator> make_evaluator(
    const ExperimentConfig& config);

/// Builds the reward function the config selects (single or combined).
[[nodiscard]] RewardFunction make_reward(const ExperimentConfig& config);

/// Default episode budget of a strategy under this config: the LCDA budget
/// for LLM-driven strategies, the NACIM budget for everything else.
[[nodiscard]] int default_episodes(Strategy strategy,
                                   const ExperimentConfig& config);

/// Runs one strategy for `episodes` episodes and returns the trace.
///
/// `evaluator` optionally supplies a shared PerformanceEvaluator instead of
/// constructing a fresh one: both shipped evaluators are thread-safe and
/// content-keyed, so multi-seed drivers (run_aggregate / speedup_study)
/// reuse one instance across every seed — the striped cost-plan and
/// layer-span memos then warm up once instead of once per seed. Results
/// are bit-identical either way. The evaluator must match the config's
/// evaluator settings; nullptr keeps the self-contained behavior.
[[nodiscard]] RunResult run_strategy(Strategy strategy, int episodes,
                                     const ExperimentConfig& config,
                                     PerformanceEvaluator* evaluator = nullptr);

/// Speedup analysis behind the paper's headline claim (Sec. IV-A):
/// episodes each method needs to reach a comparable solution.
struct SpeedupReport {
  double threshold = 0.0;      ///< target reward (fraction of NACIM's best)
  int lcda_episodes = -1;      ///< episodes LCDA needed (-1 = never)
  int nacim_episodes = -1;     ///< episodes NACIM needed (-1 = never)
  double lcda_best = 0.0;
  double nacim_best = 0.0;
  /// Store-level traffic summed over both runs (observability only; never
  /// serialized into the deterministic speedup document).
  StoreMetrics store;
  /// Checkpoint-restored episodes summed over both runs (observability
  /// only, like `store`).
  std::int64_t resumed_episodes = 0;
  [[nodiscard]] double speedup() const {
    if (lcda_episodes <= 0 || nacim_episodes <= 0) return 0.0;
    return static_cast<double>(nacim_episodes) / lcda_episodes;
  }
};

/// Runs LCDA and NACIM with the config's episode budgets and measures the
/// episodes-to-threshold speedup. `threshold_fraction` defines "comparable
/// solution" as that fraction of NACIM's final best reward. `evaluator`
/// optionally shares one evaluator across both runs (see run_strategy).
[[nodiscard]] SpeedupReport measure_speedup(const ExperimentConfig& config,
                                            double threshold_fraction = 0.95,
                                            PerformanceEvaluator* evaluator = nullptr);

/// Writes a run as CSV rows (episode, accuracy, energy, latency, reward,
/// valid, design) — the exact series behind the paper's scatter plots.
void write_run_csv(std::ostream& os, const RunResult& run,
                   std::string_view label);

}  // namespace lcda::core
