#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "lcda/core/evaluator.h"
#include "lcda/util/json_lite.h"

namespace lcda::core {

/// JSON round-trip of an Evaluation's scalar payload: accuracy, spread and
/// every flat CostReport field the co-design loop and rewards consume.
/// Per-layer breakdowns and the mapping are deliberately NOT persisted —
/// nothing downstream of the loop reads them, and dropping them keeps cache
/// files compact. Doubles survive bit-for-bit (shortest-round-trip JSON
/// numbers), which is what keeps warm reruns trace-identical to cold ones.
[[nodiscard]] util::Json evaluation_to_json(const Evaluation& ev);
[[nodiscard]] Evaluation evaluation_from_json(const util::Json& j);

/// On-disk evaluation cache for one study: a JSON file under `directory`
/// named by the study fingerprint (scenario.h: study_fingerprint), mapping
/// Design::hash to the Evaluation of the first episode that produced it.
///
/// The fingerprint covers everything that shapes the evaluation stream
/// (space, evaluator, reward, seed, batch size, strategy), so a lookup hit
/// always returns the byte-identical Evaluation a cold run would have
/// computed — repeated studies skip the work without changing a trace.
///
/// Not thread-safe: the CodesignLoop consults it only from the driving
/// thread, and each loop owns its own instance (distinct seeds/strategies
/// map to distinct files, so parallel seed fan-out never shares one).
class PersistentEvalCache {
 public:
  /// Loads `directory`/<fingerprint hex>.json when it exists; a missing
  /// file starts empty. Throws std::runtime_error on a corrupt file or a
  /// fingerprint mismatch (a file renamed across studies).
  PersistentEvalCache(std::string directory, std::uint64_t fingerprint);

  [[nodiscard]] std::optional<Evaluation> lookup(std::uint64_t design_hash) const;
  void insert(std::uint64_t design_hash, const Evaluation& ev);

  /// Writes the cache file if any insert happened since load/save
  /// (write-to-temp + rename; creates the directory). Throws
  /// std::runtime_error on I/O failure.
  void save();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  std::string directory_;
  std::string path_;
  std::uint64_t fingerprint_ = 0;
  bool dirty_ = false;
  std::unordered_map<std::uint64_t, Evaluation> entries_;
};

}  // namespace lcda::core
