#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "lcda/core/evaluator.h"
#include "lcda/util/json_lite.h"

namespace lcda::core {

/// JSON round-trip of an Evaluation's scalar payload: accuracy, spread and
/// every flat CostReport field the co-design loop and rewards consume.
/// Per-layer breakdowns and the mapping are deliberately NOT persisted —
/// nothing downstream of the loop reads them, and dropping them keeps cache
/// files compact. Doubles survive bit-for-bit (shortest-round-trip JSON
/// numbers), which is what keeps warm reruns trace-identical to cold ones.
[[nodiscard]] util::Json evaluation_to_json(const Evaluation& ev);
[[nodiscard]] Evaluation evaluation_from_json(const util::Json& j);

/// On-disk evaluation cache for one study: a JSON file under `directory`
/// named by the study fingerprint (scenario.h: study_fingerprint), mapping
/// Design::hash to the Evaluation of the first episode that produced it.
///
/// The fingerprint covers everything that shapes the evaluation stream
/// (space, evaluator, reward, seed, batch size, strategy), so a lookup hit
/// always returns the byte-identical Evaluation a cold run would have
/// computed — repeated studies skip the work without changing a trace.
///
/// Not thread-safe: the CodesignLoop consults it only from the driving
/// thread, and each loop owns its own instance (distinct seeds/strategies
/// map to distinct files, so parallel seed fan-out never shares one).
///
/// Multi-process safe: save() publishes through a uniquely named temp file
/// and an atomic rename, so concurrent worker processes sharing one cache
/// directory can never observe a torn file — a reader sees either the old
/// complete file or the new complete file. An unusable file (corrupt JSON,
/// foreign format, fingerprint mismatch) does NOT abort the run: the cache
/// starts cold, the problem is reported on stderr, and skipped_files()
/// counts it so RunResult::persistent_skipped makes it machine-visible —
/// a distributed shard retry must be able to get past a bad file instead
/// of failing on it forever.
class PersistentEvalCache {
 public:
  /// On-disk budget. Both caps are 0 = unlimited; set either to keep cache
  /// directories from growing without bound. Enforced at save() time with
  /// oldest-first eviction (insertion order, which save/load round-trips
  /// through a per-entry sequence number): the entries least likely to be
  /// re-requested — those from the oldest episodes — go first. Eviction
  /// never changes a trace: a evicted entry is simply re-evaluated on the
  /// next run, deterministically, to the identical value.
  struct Budget {
    std::size_t max_entries = 0;  ///< cap on stored evaluations
    std::size_t max_bytes = 0;    ///< approximate cap on the file size
  };

  /// Loads `directory`/<fingerprint hex>.json when it exists; a missing
  /// file starts empty. An unusable file (corrupt, foreign format, or a
  /// fingerprint mismatch from a file renamed across studies) also starts
  /// empty, with a stderr warning and skipped_files() incremented.
  PersistentEvalCache(std::string directory, std::uint64_t fingerprint);
  PersistentEvalCache(std::string directory, std::uint64_t fingerprint,
                      Budget budget);

  [[nodiscard]] std::optional<Evaluation> lookup(std::uint64_t design_hash) const;
  void insert(std::uint64_t design_hash, const Evaluation& ev);

  /// Writes the cache file if any insert happened since load/save
  /// (write-to-temp + rename; creates the directory), evicting
  /// oldest-first down to the budget beforehand. Throws
  /// std::runtime_error on I/O failure.
  void save();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
  [[nodiscard]] const Budget& budget() const { return budget_; }

  /// Entries evicted over this instance's lifetime (load-time trims of an
  /// over-budget file plus save-time evictions).
  [[nodiscard]] std::size_t evictions() const { return evictions_; }

  /// Unusable cache files skipped at load (0 or 1 for one instance):
  /// corrupt JSON, a foreign format tag, or a fingerprint mismatch. The
  /// run proceeds cold; RunResult::persistent_skipped surfaces the count.
  [[nodiscard]] std::size_t skipped_files() const { return skipped_files_; }

 private:
  struct Entry {
    Evaluation evaluation;
    std::uint64_t seq = 0;  ///< insertion order; smaller = older
  };

  /// Parses `body` into entries_; throws std::runtime_error on anything
  /// unusable (the constructor converts that into a counted skip).
  void load_body(const std::string& body);

  /// Drops the `drop` oldest entries (by insertion sequence).
  void evict_oldest(std::size_t drop);

  /// Drops the oldest entries until `max_entries` holds (max_bytes is
  /// enforced in save(), where the serialized size is known).
  void evict_to_entry_budget();

  std::string directory_;
  std::string path_;
  std::uint64_t fingerprint_ = 0;
  Budget budget_;
  bool dirty_ = false;
  std::uint64_t next_seq_ = 0;
  std::size_t evictions_ = 0;
  std::size_t skipped_files_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace lcda::core
