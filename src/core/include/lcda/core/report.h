#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "lcda/core/loop.h"
#include "lcda/core/stats_runner.h"
#include "lcda/util/json_lite.h"

namespace lcda::core {

/// JSON serialization of searches — the machine-readable output format of
/// the benchmark harnesses (one object per run, one array entry per
/// episode), for downstream plotting and archival.
[[nodiscard]] util::Json design_to_json(const search::Design& design);
[[nodiscard]] util::Json episode_to_json(const EpisodeRecord& episode);
[[nodiscard]] util::Json run_to_json(const RunResult& run, std::string_view label);

/// A whole experiment: several labelled runs plus shared metadata.
struct LabelledRun {
  std::string label;
  const RunResult* run = nullptr;
};
[[nodiscard]] util::Json experiment_to_json(std::string_view name,
                                            std::uint64_t seed,
                                            const std::vector<LabelledRun>& runs);

/// Multi-seed aggregate of one strategy (core::run_aggregate) as JSON:
/// final-best statistics, per-episode running-best mean/stddev, cache
/// traffic, and episodes-to-threshold when one was supplied.
[[nodiscard]] util::Json aggregate_to_json(const AggregateResult& agg);

/// Per-seed LCDA-vs-NACIM speedup reports (core::speedup_study) as JSON:
/// one entry per seed plus the aggregate mean speedup over seeds where
/// both strategies reached the threshold.
[[nodiscard]] util::Json speedup_study_to_json(
    const std::vector<SpeedupReport>& reports);

/// CSV forms of the same results. Aggregate rows are one per episode
/// (label, episode, running-best mean/stddev/min/max across seeds);
/// speedup rows are one per seed.
void write_aggregate_csv(std::ostream& os, const AggregateResult& agg,
                         std::string_view label);
void write_speedup_csv(std::ostream& os,
                       const std::vector<SpeedupReport>& reports,
                       std::string_view label);

/// Writes a pretty-printed JSON document to `path` (throws on I/O failure).
void write_json_file(const util::Json& j, const std::string& path);

/// The JSON output path of a bench/CLI invocation: the first `--json=PATH`
/// argument, else the LCDA_BENCH_JSON environment variable, else "" (no
/// JSON output). Lets every bench_* binary archive its runs — including
/// cache_hits / cache_misses / persistent_hits — with one call.
[[nodiscard]] std::string json_output_path(int argc, char** argv);

/// Non-flag command-line arguments in order (everything not starting with
/// "--"), so benches keep their positional seed/count arguments alongside
/// `--json=`.
[[nodiscard]] std::vector<std::string> positional_args(int argc, char** argv);

}  // namespace lcda::core
