#pragma once

#include <vector>

#include "lcda/core/loop.h"

namespace lcda::core {

/// A point in the accuracy-vs-hardware-cost plane (accuracy maximized,
/// cost minimized) — the axes of the paper's Figs. 2, 4 and 5.
struct TradeoffPoint {
  double cost = 0.0;      ///< energy (pJ) or latency (ns); lower is better
  double accuracy = 0.0;  ///< higher is better
};

/// True when `a` dominates `b` (no worse in both axes, better in one).
[[nodiscard]] bool dominates(const TradeoffPoint& a, const TradeoffPoint& b);

/// Indices of the non-dominated points, sorted by ascending cost.
[[nodiscard]] std::vector<std::size_t> pareto_front(
    const std::vector<TradeoffPoint>& points);

/// Extracts the tradeoff points of a run's *valid* episodes, along with the
/// episode index of each point.
struct RunPoints {
  std::vector<TradeoffPoint> points;
  std::vector<int> episode_of_point;
};
[[nodiscard]] RunPoints tradeoff_points(const RunResult& run,
                                        llm::Objective objective);

/// Hypervolume-style scalar summary of a front: the area dominated with
/// respect to a reference (cost_ref, 0) corner, for front-vs-front
/// comparisons in tests and the speedup bench. Points are clipped to the
/// reference cost.
[[nodiscard]] double dominated_area(const std::vector<TradeoffPoint>& front,
                                    double cost_ref);

}  // namespace lcda::core
