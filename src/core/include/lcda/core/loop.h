#pragma once

#include <functional>
#include <vector>

#include "lcda/core/evaluator.h"
#include "lcda/core/reward.h"
#include "lcda/search/optimizer.h"

namespace lcda::core {

/// One completed episode of the co-design loop.
struct EpisodeRecord {
  int episode = 0;
  search::Design design;
  double accuracy = 0.0;
  double energy_pj = 0.0;
  double latency_ns = 0.0;
  double area_mm2 = 0.0;
  double reward = 0.0;
  bool valid = false;
};

/// Result of a full co-design run.
struct RunResult {
  std::vector<EpisodeRecord> episodes;
  int best_episode = -1;

  [[nodiscard]] const EpisodeRecord& best() const;
  [[nodiscard]] double best_reward() const;

  /// Running maximum of the reward (what Fig. 3 projects).
  [[nodiscard]] std::vector<double> reward_running_max() const;

  /// First episode whose reward reaches `threshold`, or -1 if never.
  [[nodiscard]] int episodes_to_reach(double threshold) const;
};

/// Algorithm 2: LCDA(Model, Choices, EP, f).
///
/// Drives `optimizer` for `episodes` episodes: propose -> generate ->
/// evaluate DNN performance and hardware cost -> combine via the reward
/// function -> feed the observation back and record it.
class CodesignLoop {
 public:
  struct Options {
    int episodes = 20;  ///< the paper's EP
    /// Called after each episode (progress reporting in benches/examples).
    std::function<void(const EpisodeRecord&)> on_episode;
  };

  CodesignLoop(search::Optimizer& optimizer, PerformanceEvaluator& evaluator,
               RewardFunction reward, Options opts);

  /// Runs the loop to completion. Deterministic given `rng`'s seed.
  [[nodiscard]] RunResult run(util::Rng& rng);

 private:
  search::Optimizer* optimizer_;
  PerformanceEvaluator* evaluator_;
  RewardFunction reward_;
  Options opts_;
};

}  // namespace lcda::core
