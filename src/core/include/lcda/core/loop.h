#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include <string>

#include "lcda/core/evaluator.h"
#include "lcda/core/reward.h"
#include "lcda/search/optimizer.h"
#include "lcda/util/rng.h"

namespace lcda::store {
class EvalStore;
}  // namespace lcda::store

namespace lcda::core {

/// One completed episode of the co-design loop.
struct EpisodeRecord {
  int episode = 0;
  search::Design design;
  double accuracy = 0.0;
  double energy_pj = 0.0;
  double latency_ns = 0.0;
  double area_mm2 = 0.0;
  double reward = 0.0;
  bool valid = false;
};

/// Store-level traffic counters mirrored out of store::EvalStore after a
/// run (core cannot depend on the store layer, so the shape is duplicated
/// here): full-key and shared-namespace lookup outcomes plus bytes moved.
/// Real measurements of where answers came from, NOT part of a run's
/// deterministic result — a warm store turns misses into hits without
/// changing a single trace byte, which is exactly what these counters
/// exist to make observable.
struct StoreMetrics {
  std::int64_t hits = 0;            ///< full-key (own-stream) lookup hits
  std::int64_t misses = 0;          ///< full-key lookup misses
  std::int64_t shared_hits = 0;     ///< shared-namespace (bucket) hits
  std::int64_t shared_misses = 0;   ///< shared-namespace misses
  std::int64_t bytes_read = 0;      ///< record bytes decoded by probes
  std::int64_t bytes_published = 0; ///< segment bytes written by saves

  StoreMetrics& operator+=(const StoreMetrics& o) {
    hits += o.hits;
    misses += o.misses;
    shared_hits += o.shared_hits;
    shared_misses += o.shared_misses;
    bytes_read += o.bytes_read;
    bytes_published += o.bytes_published;
    return *this;
  }
};

/// Result of a full co-design run.
struct RunResult {
  std::vector<EpisodeRecord> episodes;
  int best_episode = -1;

  /// Evaluation-cache traffic: hits are episodes whose design was already
  /// evaluated (earlier episode or same batch) and reused its Evaluation;
  /// persistent_hits are episodes served byte-identically from the on-disk
  /// store under this study's own key (counted separately from both hits
  /// and misses). persistent_shared_hits are episodes served from ANOTHER
  /// study's record in the same evaluation-identity namespace: the
  /// deterministic part came from disk and the Monte-Carlo accuracy was
  /// replayed with this run's own RNG stream, so the trace still matches a
  /// cold run bit for bit. persistent_evictions counts records budget
  /// compactions dropped (filled in after the post-run save);
  /// persistent_skipped counts unusable store files (corrupt, foreign
  /// format, truncated) the run skipped, and persistent_save_failures
  /// counts saves that failed and were degraded to a warning — loudly
  /// visible here instead of either aborting a whole distributed worker or
  /// being silently treated as a cold start.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t persistent_hits = 0;
  std::int64_t persistent_shared_hits = 0;
  std::int64_t persistent_evictions = 0;
  std::int64_t persistent_skipped = 0;
  std::int64_t persistent_save_failures = 0;

  /// Store-level lookup/byte traffic for this run's EvalStore session
  /// (all zero when no persistent store was configured).
  StoreMetrics store;

  /// Episodes this run restored from a checkpoint (snapshot restore plus
  /// changelog replay) instead of re-evaluating. Observability only, like
  /// `store`: NOT part of run_to_json's byte contract, because a resumed
  /// run must serialize byte-identically to an uninterrupted one.
  std::int64_t resumed_episodes = 0;

  /// Best episode, or a sentinel record (episode == -1, reward == -inf)
  /// when the run recorded no episodes.
  [[nodiscard]] const EpisodeRecord& best() const;

  /// Reward of best(); -inf when the run recorded no episodes.
  [[nodiscard]] double best_reward() const;

  /// Running maximum of the reward (what Fig. 3 projects).
  [[nodiscard]] std::vector<double> reward_running_max() const;

  /// First episode whose reward reaches `threshold`, or -1 if never.
  [[nodiscard]] int episodes_to_reach(double threshold) const;
};

/// One finalized round's replay record — the changelog unit of the
/// checkpoint subsystem. It carries exactly what the round's evaluator
/// produced (the unique cache misses, in job order); everything else a
/// round did (optimizer mutations, RNG evolution, cache/alias decisions,
/// counters, records, feedback) is recomputed by replaying the round
/// through the normal planning path with these evaluations injected, so a
/// replayed round is bit-identical to the live one by construction.
struct RoundDelta {
  int first_episode = 0;
  std::vector<std::uint64_t> job_hashes;  ///< unique misses, job order
  std::vector<Evaluation> job_evals;      ///< their results, same order
};

/// One in-memory evaluation-cache insertion, in insertion order.
/// `published` marks entries this run also inserted into its persistent
/// store session (fresh evaluations and shared-namespace replays); a
/// resumed run re-inserts exactly those, so the post-run save publishes
/// the same records an uninterrupted run would have. Full-key disk hits
/// are cached but never re-published (published == false).
struct CacheLogEntry {
  std::uint64_t hash = 0;
  Evaluation eval;
  bool published = false;
};

/// Read-only view of the engine state handed to Options::on_snapshot at a
/// drained checkpoint boundary: the round window and pending-duplicate map
/// are empty by construction at that point (the loop never snapshots with
/// rounds in flight), so next_episode + the RNG cursor + the optimizer
/// blob + the result-so-far + the cache log ARE the full engine state.
struct LoopSnapshot {
  int next_episode = 0;
  util::Rng::State rng_state;
  const std::string* optimizer_state = nullptr;
  const RunResult* result = nullptr;
  const std::vector<CacheLogEntry>* cache_log = nullptr;
};

/// Everything CodesignLoop::run needs to continue a checkpointed run:
/// the snapshot fields plus the changelog's per-round deltas since it.
struct LoopResume {
  int next_episode = 0;
  util::Rng::State rng_state;
  std::string optimizer_state;
  RunResult result;
  std::vector<CacheLogEntry> cache_log;
  std::vector<RoundDelta> deltas;
};

/// Algorithm 2: LCDA(Model, Choices, EP, f).
///
/// Drives `optimizer` for `episodes` episodes in propose -> evaluate ->
/// feedback rounds. Each round asks the optimizer for a batch of proposals
/// (see Optimizer::propose_batch), fans their evaluations out over a thread
/// pool, and feeds the observations back in proposal order.
///
/// Determinism: identical results for every `parallelism` setting and for
/// every `pipeline_depth`. All random streams (proposals, per-episode
/// evaluation RNGs) are drawn on the driving thread in episode order before
/// any evaluation starts, and cache decisions are made at the same point,
/// so worker scheduling can never reorder a draw. Pipelined operation only
/// proposes ahead of in-flight evaluations when the optimizer declares its
/// proposal stream feedback-free (Optimizer::pipeline_lookahead), and
/// duplicates of still-evaluating designs alias to the pending result, so
/// traces and cache counters match the strict schedule bit for bit.
/// `evaluator.evaluate` must tolerate concurrent calls with distinct RNGs
/// (both shipped evaluators do: they only touch local or internally
/// synchronized state).
class CodesignLoop {
 public:
  struct Options {
    int episodes = 20;  ///< the paper's EP

    /// Worker threads for evaluations. 1 = sequential (no pool); 0 = one
    /// per hardware thread. Does not change results, only wall-clock.
    int parallelism = 1;

    /// Proposals per round. 0 = auto: the optimizer's preferred_batch(),
    /// falling back to scalar rounds for optimizers with no preference
    /// (never to `parallelism` — batch composition must stay independent
    /// of the thread count or traces would diverge). Explicit values are
    /// still capped by the optimizer's preference, so a strictly
    /// sequential optimizer (LlmOptimizer) always runs scalar.
    std::size_t batch_size = 0;

    /// Reuse the Evaluation of a previously seen design (keyed on
    /// Design::hash) instead of re-evaluating. Population-based searches
    /// revisit designs constantly; hits surface in RunResult::cache_hits.
    bool cache_evaluations = true;

    /// Pipelined propose/evaluate overlap: how many rounds beyond the one
    /// currently evaluating the driving thread may propose and plan ahead,
    /// keeping the pool fed across round boundaries. Engages only when the
    /// optimizer grants lookahead (Optimizer::pipeline_lookahead() > 0 —
    /// i.e. its proposal stream provably ignores feedback) and a pool
    /// exists, so it can NEVER change a trace: RNG streams are still drawn
    /// on the driving thread in episode order, feedback is still delivered
    /// in round order, and duplicates of still-in-flight designs alias to
    /// the pending evaluation exactly as same-batch duplicates do. 0
    /// disables pipelining.
    std::size_t pipeline_depth = 8;

    /// Optional on-disk evaluation store consulted after the in-memory
    /// cache (only when cache_evaluations is on) and filled with every
    /// fresh evaluation. Full-key hits are reused as-is; shared-namespace
    /// hits (another study's record for the same evaluation identity) are
    /// replayed through the evaluator with this run's own RNG stream, so
    /// either way the trace matches a cold run bit for bit. Not owned; the
    /// owner saves it after the run. The loop touches it only from the
    /// driving thread.
    store::EvalStore* persistent_store = nullptr;

    /// Called after each episode (progress reporting in benches/examples).
    /// Invoked on the driving thread, in episode order, after the episode's
    /// batch has been evaluated.
    std::function<void(const EpisodeRecord&)> on_episode;

    /// Checkpoint cadence in episodes; 0 disables checkpointing. With a
    /// cadence and an on_snapshot hook, the loop stops planning new rounds
    /// once the next boundary is reached, drains the window, and emits a
    /// snapshot at the first drained episode at-or-after the boundary
    /// (plus one final snapshot at completion). Draining only stalls the
    /// pipeline overlap — the plan/finalize sequence, and therefore every
    /// trace byte, is identical to an uncheckpointed run.
    int checkpoint_every = 0;

    /// Snapshot sink (the ckpt module's RunCheckpointer). Driving thread.
    std::function<void(const LoopSnapshot&)> on_snapshot;

    /// Changelog sink: one finalized round's delta, in round order.
    /// Not invoked for rounds replayed from a checkpoint. Driving thread.
    std::function<void(const RoundDelta&)> on_round;

    /// Resume state loaded by the checkpoint layer; nullptr = cold start.
    /// Not owned. On restore failure (e.g. an optimizer-state blob for a
    /// different study shape) the loop warns and cold-starts — it never
    /// aborts on checkpoint problems.
    const LoopResume* resume = nullptr;
  };

  CodesignLoop(search::Optimizer& optimizer, PerformanceEvaluator& evaluator,
               RewardFunction reward, Options opts);

  /// Runs the loop to completion. Deterministic given `rng`'s seed.
  [[nodiscard]] RunResult run(util::Rng& rng);

 private:
  [[nodiscard]] std::size_t effective_batch(std::size_t remaining) const;

  search::Optimizer* optimizer_;
  PerformanceEvaluator* evaluator_;
  RewardFunction reward_;
  Options opts_;
};

}  // namespace lcda::core
