#pragma once

#include <limits>
#include <vector>

#include "lcda/core/experiment.h"
#include "lcda/util/stats.h"

namespace lcda::core {

/// Aggregated multi-seed results of one strategy: mean/stddev of the
/// best-reward trajectory and scalar end-of-run statistics. This is what
/// credible benchmark tables should report instead of single-seed runs.
struct AggregateResult {
  Strategy strategy{};
  int episodes = 0;
  int seeds = 0;

  /// Per-episode statistics of the running-best reward across seeds.
  std::vector<util::OnlineStats> running_best;

  /// Final best reward across seeds.
  util::OnlineStats final_best;

  /// The reward threshold this aggregate was asked to time (NaN = none
  /// requested), so "asked but never reached" stays distinguishable from
  /// "not asked" in serialized output.
  double threshold = std::numeric_limits<double>::quiet_NaN();

  /// Episodes to reach the threshold (only seeds that reached it
  /// contribute); `reached` counts how many did.
  util::OnlineStats episodes_to_threshold;
  int reached = 0;

  /// Evaluation-cache traffic summed over all seeds (see RunResult).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t persistent_hits = 0;
  std::int64_t persistent_shared_hits = 0;
  std::int64_t persistent_skipped = 0;
  std::int64_t persistent_save_failures = 0;

  /// Checkpoint-restored episodes summed over all seeds (observability
  /// only — never serialized into the deterministic aggregate document).
  std::int64_t resumed_episodes = 0;

  [[nodiscard]] double mean_running_best(int episode) const {
    return running_best[static_cast<std::size_t>(episode)].mean();
  }
};

/// The per-seed config of global seed index `s` in a `seeds`-seed
/// aggregate/speedup study: the seed stream is derived by key
/// (util::derive_seed, order-independent), and the worker budget is split
/// between seed-level fan-out and the inner loop. Exposed so distributed
/// workers (lcda::dist) reproduce exactly the runs a single process would
/// have produced — any partition of the seed-index set is bit-compatible.
[[nodiscard]] ExperimentConfig aggregate_seed_config(
    const ExperimentConfig& config, int s, int seeds);

/// Runs `strategy` for `episodes` episodes with seeds 1..seeds (offset by
/// config.seed) and aggregates. `threshold` feeds episodes_to_threshold;
/// pass NaN to skip.
[[nodiscard]] AggregateResult run_aggregate(Strategy strategy, int episodes,
                                            int seeds,
                                            const ExperimentConfig& config,
                                            double threshold);

/// Paired multi-seed speedup study: for each seed, LCDA episodes-to-thresh
/// vs NACIM episodes-to-thresh (threshold = fraction of that seed's NACIM
/// best). Returns per-seed speedups.
[[nodiscard]] std::vector<SpeedupReport> speedup_study(
    const ExperimentConfig& config, int seeds, double threshold_fraction = 0.95);

}  // namespace lcda::core
