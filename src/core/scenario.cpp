#include "lcda/core/scenario.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "lcda/core/report.h"
#include "lcda/util/rng.h"
#include "lcda/util/strings.h"

namespace lcda::core {

namespace {

// ------------------------------------------------------------- primitives

/// Writes one struct as a JSON object, emitting a field only when it
/// differs from its default (or always, with include_defaults) — so saved
/// scenarios read as "what this study changes about the paper setting".
class Writer {
 public:
  explicit Writer(bool include_defaults)
      : all_(include_defaults), j_(util::Json::object()) {}

  template <typename T>
  void field(const char* key, const T& value, const T& def) {
    if (all_ || value != def) j_[key] = util::Json(value);
  }

  void field_u64(const char* key, std::uint64_t value, std::uint64_t def) {
    if (!all_ && value == def) return;
    // Doubles hold integers exactly only up to 2^53; larger seeds (e.g.
    // derive_seed outputs) go through a hex string.
    if (value <= (1ULL << 53)) {
      j_[key] = static_cast<long long>(value);
    } else {
      char buf[19];
      std::snprintf(buf, sizeof(buf), "%llx",
                    static_cast<unsigned long long>(value));
      j_[key] = "0x" + std::string(buf);
    }
  }

  void field_ints(const char* key, const std::vector<int>& value,
                  const std::vector<int>& def) {
    if (!all_ && value == def) return;
    util::Json arr = util::Json::array();
    for (int v : value) arr.push_back(v);
    j_[key] = arr;
  }

  void field_devices(const char* key, const std::vector<cim::DeviceType>& value,
                     const std::vector<cim::DeviceType>& def) {
    if (!all_ && value == def) return;
    util::Json arr = util::Json::array();
    for (cim::DeviceType d : value) arr.push_back(cim::device_name(d));
    j_[key] = arr;
  }

  /// Nested struct; an all-defaults child (empty object) is omitted.
  void child(const char* key, util::Json sub) {
    if (all_ || sub.size() > 0) j_[key] = std::move(sub);
  }

  [[nodiscard]] util::Json take() { return std::move(j_); }

 private:
  bool all_;
  util::Json j_;
};

/// Reads one struct from a JSON object: each getter consumes its key,
/// finish() rejects whatever was not consumed — the unknown-key guarantee.
class Reader {
 public:
  Reader(const util::Json& j, std::string context)
      : context_(std::move(context)) {
    if (!j.is_object()) {
      throw std::invalid_argument(context_ + ": expected a JSON object");
    }
    items_ = j.items();
    consumed_.assign(items_.size(), false);
  }

  void number(const char* key, double& out) {
    if (const util::Json* v = consume(key)) out = v->as_double();
  }

  void integer(const char* key, int& out) {
    if (const util::Json* v = consume(key)) out = static_cast<int>(v->as_int());
  }

  void size(const char* key, std::size_t& out) {
    if (const util::Json* v = consume(key)) {
      const long long raw = v->as_int();
      if (raw < 0) throw std::invalid_argument(context_ + "." + key + ": negative");
      out = static_cast<std::size_t>(raw);
    }
  }

  void boolean(const char* key, bool& out) {
    if (const util::Json* v = consume(key)) out = v->as_bool();
  }

  void str(const char* key, std::string& out) {
    if (const util::Json* v = consume(key)) out = v->as_string();
  }

  void u64(const char* key, std::uint64_t& out) {
    const util::Json* v = consume(key);
    if (!v) return;
    if (v->is_string()) {
      // Strings are hex only with an explicit "0x" prefix (what the writer
      // emits); a quoted decimal like "42" must not silently parse as 0x42.
      const std::string& s = v->as_string();
      std::string_view digits = s;
      int base = 10;
      if (digits.size() > 2 && digits.substr(0, 2) == "0x") {
        digits.remove_prefix(2);
        base = 16;
      }
      std::uint64_t value = 0;
      const auto [ptr, ec] = std::from_chars(
          digits.data(), digits.data() + digits.size(), value, base);
      if (ec != std::errc() || ptr != digits.data() + digits.size() ||
          digits.empty()) {
        throw std::invalid_argument(context_ + "." + key + ": bad seed \"" +
                                    s + "\"");
      }
      out = value;
    } else {
      const long long raw = v->as_int();
      if (raw < 0) throw std::invalid_argument(context_ + "." + key + ": negative");
      out = static_cast<std::uint64_t>(raw);
    }
  }

  void ints(const char* key, std::vector<int>& out) {
    if (const util::Json* v = consume(key)) {
      if (!v->is_array()) {
        throw std::invalid_argument(context_ + "." + key + ": expected array");
      }
      out.clear();
      for (const util::Json& e : v->elements()) {
        out.push_back(static_cast<int>(e.as_int()));
      }
    }
  }

  void devices(const char* key, std::vector<cim::DeviceType>& out) {
    if (const util::Json* v = consume(key)) {
      if (!v->is_array()) {
        throw std::invalid_argument(context_ + "." + key + ": expected array");
      }
      out.clear();
      for (const util::Json& e : v->elements()) {
        out.push_back(cim::device_from_name(e.as_string()));
      }
    }
  }

  /// Consumes and returns a nested object for a sub-struct parser.
  [[nodiscard]] const util::Json* child(const char* key) { return consume(key); }

  void finish() const {
    std::string keys;
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (consumed_[i]) continue;
      if (!keys.empty()) keys += ", ";
      keys += '"' + items_[i].first + '"';
    }
    if (!keys.empty()) {
      throw std::invalid_argument(context_ + ": unknown key(s) " + keys);
    }
  }

 private:
  const util::Json* consume(const char* key) {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (!consumed_[i] && items_[i].first == key) {
        consumed_[i] = true;
        return &items_[i].second;
      }
    }
    return nullptr;
  }

  std::string context_;
  std::vector<std::pair<std::string, util::Json>> items_;
  std::vector<bool> consumed_;
};

// --------------------------------------------------- per-struct round-trip

util::Json backbone_to_json(const nn::BackboneOptions& b, bool all) {
  const nn::BackboneOptions def;
  Writer w(all);
  w.field("input_channels", b.input_channels, def.input_channels);
  w.field("input_size", b.input_size, def.input_size);
  w.field("num_classes", b.num_classes, def.num_classes);
  w.field("hidden", b.hidden, def.hidden);
  w.field_ints("pool_after", b.pool_after, def.pool_after);
  w.field("batch_norm", b.batch_norm, def.batch_norm);
  return w.take();
}

void backbone_from_json(const util::Json& j, nn::BackboneOptions& b,
                        const std::string& ctx) {
  Reader r(j, ctx);
  r.integer("input_channels", b.input_channels);
  r.integer("input_size", b.input_size);
  r.integer("num_classes", b.num_classes);
  r.integer("hidden", b.hidden);
  r.ints("pool_after", b.pool_after);
  r.boolean("batch_norm", b.batch_norm);
  r.finish();
}

util::Json hw_choices_to_json(const cim::HardwareChoices& h, bool all) {
  const cim::HardwareChoices def;
  Writer w(all);
  w.field_devices("devices", h.devices, def.devices);
  w.field_ints("bits_per_cell", h.bits_per_cell, def.bits_per_cell);
  w.field_ints("adc_bits", h.adc_bits, def.adc_bits);
  w.field_ints("xbar_sizes", h.xbar_sizes, def.xbar_sizes);
  w.field_ints("col_mux", h.col_mux, def.col_mux);
  return w.take();
}

void hw_choices_from_json(const util::Json& j, cim::HardwareChoices& h,
                          const std::string& ctx) {
  Reader r(j, ctx);
  r.devices("devices", h.devices);
  r.ints("bits_per_cell", h.bits_per_cell);
  r.ints("adc_bits", h.adc_bits);
  r.ints("xbar_sizes", h.xbar_sizes);
  r.ints("col_mux", h.col_mux);
  r.finish();
}

util::Json space_to_json(const search::SearchSpace::Options& s, bool all) {
  const search::SearchSpace::Options def;
  Writer w(all);
  w.field("conv_layers", s.conv_layers, def.conv_layers);
  w.field_ints("channel_choices", s.channel_choices, def.channel_choices);
  w.field_ints("kernel_choices", s.kernel_choices, def.kernel_choices);
  w.child("hardware", hw_choices_to_json(s.hw, all));
  w.child("backbone", backbone_to_json(s.backbone, all));
  w.field("area_budget_mm2", s.area_budget_mm2, def.area_budget_mm2);
  return w.take();
}

void space_from_json(const util::Json& j, search::SearchSpace::Options& s,
                     const std::string& ctx) {
  Reader r(j, ctx);
  r.integer("conv_layers", s.conv_layers);
  r.ints("channel_choices", s.channel_choices);
  r.ints("kernel_choices", s.kernel_choices);
  if (const util::Json* c = r.child("hardware")) {
    hw_choices_from_json(*c, s.hw, ctx + ".hardware");
  }
  if (const util::Json* c = r.child("backbone")) {
    backbone_from_json(*c, s.backbone, ctx + ".backbone");
  }
  r.number("area_budget_mm2", s.area_budget_mm2);
  r.finish();
}

util::Json accuracy_to_json(const surrogate::AccuracyModel::Options& a, bool all) {
  const surrogate::AccuracyModel::Options def;
  Writer w(all);
  w.field("base", a.base, def.base);
  w.field("amplitude", a.amplitude, def.amplitude);
  w.field("width_coeff", a.width_coeff, def.width_coeff);
  w.field("kernel1_penalty", a.kernel1_penalty, def.kernel1_penalty);
  w.field("kernel5_bonus", a.kernel5_bonus, def.kernel5_bonus);
  w.field("kernel7_bonus", a.kernel7_bonus, def.kernel7_bonus);
  w.field("shrink_penalty", a.shrink_penalty, def.shrink_penalty);
  w.field("jump_penalty", a.jump_penalty, def.jump_penalty);
  w.field("saturation_scale", a.saturation_scale, def.saturation_scale);
  w.field("variation_coeff", a.variation_coeff, def.variation_coeff);
  w.field("injection_recovery", a.injection_recovery, def.injection_recovery);
  w.field("adc_deficit_penalty", a.adc_deficit_penalty, def.adc_deficit_penalty);
  w.field("luck_sigma", a.luck_sigma, def.luck_sigma);
  w.field("floor", a.floor, def.floor);
  w.field_u64("calibration_seed", a.calibration_seed, def.calibration_seed);
  return w.take();
}

void accuracy_from_json(const util::Json& j, surrogate::AccuracyModel::Options& a,
                        const std::string& ctx) {
  Reader r(j, ctx);
  r.number("base", a.base);
  r.number("amplitude", a.amplitude);
  r.number("width_coeff", a.width_coeff);
  r.number("kernel1_penalty", a.kernel1_penalty);
  r.number("kernel5_bonus", a.kernel5_bonus);
  r.number("kernel7_bonus", a.kernel7_bonus);
  r.number("shrink_penalty", a.shrink_penalty);
  r.number("jump_penalty", a.jump_penalty);
  r.number("saturation_scale", a.saturation_scale);
  r.number("variation_coeff", a.variation_coeff);
  r.number("injection_recovery", a.injection_recovery);
  r.number("adc_deficit_penalty", a.adc_deficit_penalty);
  r.number("luck_sigma", a.luck_sigma);
  r.number("floor", a.floor);
  r.u64("calibration_seed", a.calibration_seed);
  r.finish();
}

util::Json cost_model_to_json(const cim::CostModelOptions& c, bool all) {
  const cim::CostModelOptions def;
  Writer w(all);
  w.field("arrays_per_tile", c.arrays_per_tile, def.arrays_per_tile);
  w.field("buffer_kb_per_tile", c.buffer_kb_per_tile, def.buffer_kb_per_tile);
  Writer m(all);
  m.field("input_bits", c.mapper.input_bits, def.mapper.input_bits);
  m.field("max_replication", c.mapper.max_replication, def.mapper.max_replication);
  m.field("replication_area_fraction", c.mapper.replication_area_fraction,
          def.mapper.replication_area_fraction);
  w.child("mapper", m.take());
  return w.take();
}

void cost_model_from_json(const util::Json& j, cim::CostModelOptions& c,
                          const std::string& ctx) {
  Reader r(j, ctx);
  r.integer("arrays_per_tile", c.arrays_per_tile);
  r.integer("buffer_kb_per_tile", c.buffer_kb_per_tile);
  if (const util::Json* m = r.child("mapper")) {
    Reader rm(*m, ctx + ".mapper");
    rm.integer("input_bits", c.mapper.input_bits);
    rm.integer("max_replication", c.mapper.max_replication);
    rm.number("replication_area_fraction", c.mapper.replication_area_fraction);
    rm.finish();
  }
  r.finish();
}

util::Json surrogate_to_json(const SurrogateEvaluator::Options& e, bool all) {
  const SurrogateEvaluator::Options def;
  Writer w(all);
  w.child("accuracy", accuracy_to_json(e.accuracy, all));
  w.child("cost", cost_model_to_json(e.cost, all));
  w.child("backbone", backbone_to_json(e.backbone, all));
  w.field("monte_carlo_samples", e.monte_carlo_samples, def.monte_carlo_samples);
  w.field("write_verify_fraction", e.write_verify_fraction,
          def.write_verify_fraction);
  w.field("write_verify_sigma_scale", e.write_verify_sigma_scale,
          def.write_verify_sigma_scale);
  w.field("write_verify_pulses", e.write_verify_pulses, def.write_verify_pulses);
  return w.take();
}

void surrogate_from_json(const util::Json& j, SurrogateEvaluator::Options& e,
                         const std::string& ctx) {
  Reader r(j, ctx);
  if (const util::Json* c = r.child("accuracy")) {
    accuracy_from_json(*c, e.accuracy, ctx + ".accuracy");
  }
  if (const util::Json* c = r.child("cost")) {
    cost_model_from_json(*c, e.cost, ctx + ".cost");
  }
  if (const util::Json* c = r.child("backbone")) {
    backbone_from_json(*c, e.backbone, ctx + ".backbone");
  }
  r.integer("monte_carlo_samples", e.monte_carlo_samples);
  r.number("write_verify_fraction", e.write_verify_fraction);
  r.number("write_verify_sigma_scale", e.write_verify_sigma_scale);
  r.number("write_verify_pulses", e.write_verify_pulses);
  r.finish();
}

util::Json dataset_to_json(const data::SyntheticCifarOptions& d, bool all) {
  const data::SyntheticCifarOptions def;
  Writer w(all);
  w.field("num_classes", d.num_classes, def.num_classes);
  w.field("image_size", d.image_size, def.image_size);
  w.field("train_per_class", d.train_per_class, def.train_per_class);
  w.field("test_per_class", d.test_per_class, def.test_per_class);
  w.field("noise", d.noise, def.noise);
  w.field("max_shift", d.max_shift, def.max_shift);
  w.field_u64("seed", d.seed, def.seed);
  return w.take();
}

void dataset_from_json(const util::Json& j, data::SyntheticCifarOptions& d,
                       const std::string& ctx) {
  Reader r(j, ctx);
  r.integer("num_classes", d.num_classes);
  r.integer("image_size", d.image_size);
  r.integer("train_per_class", d.train_per_class);
  r.integer("test_per_class", d.test_per_class);
  r.number("noise", d.noise);
  r.integer("max_shift", d.max_shift);
  r.u64("seed", d.seed);
  r.finish();
}

util::Json trained_to_json(const TrainedEvaluator::Options& t, bool all) {
  const TrainedEvaluator::Options def;
  Writer w(all);
  w.child("dataset", dataset_to_json(t.dataset, all));
  w.child("backbone", backbone_to_json(t.backbone, all));
  w.child("cost", cost_model_to_json(t.cost, all));
  w.field("epochs", t.epochs, def.epochs);
  w.field("monte_carlo_samples", t.monte_carlo_samples, def.monte_carlo_samples);
  return w.take();
}

void trained_from_json(const util::Json& j, TrainedEvaluator::Options& t,
                       const std::string& ctx) {
  Reader r(j, ctx);
  if (const util::Json* c = r.child("dataset")) {
    dataset_from_json(*c, t.dataset, ctx + ".dataset");
  }
  if (const util::Json* c = r.child("backbone")) {
    backbone_from_json(*c, t.backbone, ctx + ".backbone");
  }
  if (const util::Json* c = r.child("cost")) {
    cost_model_from_json(*c, t.cost, ctx + ".cost");
  }
  r.integer("epochs", t.epochs);
  r.integer("monte_carlo_samples", t.monte_carlo_samples);
  r.finish();
}

}  // namespace

util::Json config_to_json(const ExperimentConfig& config, bool include_defaults) {
  const ExperimentConfig def;
  Writer w(include_defaults);
  w.field("objective", std::string(llm::objective_name(config.objective)),
          std::string(llm::objective_name(def.objective)));
  w.field("combined_reward", config.combined_reward, def.combined_reward);
  w.field("energy_weight", config.energy_weight, def.energy_weight);
  w.field("latency_weight", config.latency_weight, def.latency_weight);
  w.field("lcda_episodes", config.lcda_episodes, def.lcda_episodes);
  w.field("nacim_episodes", config.nacim_episodes, def.nacim_episodes);
  w.field_u64("seed", config.seed, def.seed);
  w.child("space", space_to_json(config.space, include_defaults));
  w.field("evaluator_kind",
          std::string(evaluator_kind_name(config.evaluator_kind)),
          std::string(evaluator_kind_name(def.evaluator_kind)));
  w.child("evaluator", surrogate_to_json(config.evaluator, include_defaults));
  w.child("trained", trained_to_json(config.trained, include_defaults));
  w.field("parallelism", config.parallelism, def.parallelism);
  w.field("batch_size", config.batch_size, def.batch_size);
  w.field("pipeline_depth", config.pipeline_depth, def.pipeline_depth);
  w.field("cache_evaluations", config.cache_evaluations, def.cache_evaluations);
  w.field("persistent_cache_dir", config.persistent_cache_dir,
          def.persistent_cache_dir);
  w.field("persistent_cache_max_entries", config.persistent_cache_max_entries,
          def.persistent_cache_max_entries);
  w.field("persistent_cache_max_bytes", config.persistent_cache_max_bytes,
          def.persistent_cache_max_bytes);
  w.field("checkpoint_dir", config.checkpoint_dir, def.checkpoint_dir);
  w.field("checkpoint_every", config.checkpoint_every, def.checkpoint_every);
  w.field("resume", config.resume, def.resume);
  return w.take();
}

ExperimentConfig config_from_json(const util::Json& j) {
  ExperimentConfig config;
  Reader r(j, "config");
  std::string objective(llm::objective_name(config.objective));
  r.str("objective", objective);
  config.objective = llm::objective_from_name(objective);
  r.boolean("combined_reward", config.combined_reward);
  r.number("energy_weight", config.energy_weight);
  r.number("latency_weight", config.latency_weight);
  r.integer("lcda_episodes", config.lcda_episodes);
  r.integer("nacim_episodes", config.nacim_episodes);
  r.u64("seed", config.seed);
  if (const util::Json* c = r.child("space")) {
    space_from_json(*c, config.space, "config.space");
  }
  std::string kind(evaluator_kind_name(config.evaluator_kind));
  r.str("evaluator_kind", kind);
  config.evaluator_kind = evaluator_kind_from_name(kind);
  if (const util::Json* c = r.child("evaluator")) {
    surrogate_from_json(*c, config.evaluator, "config.evaluator");
  }
  if (const util::Json* c = r.child("trained")) {
    trained_from_json(*c, config.trained, "config.trained");
  }
  r.integer("parallelism", config.parallelism);
  r.size("batch_size", config.batch_size);
  r.size("pipeline_depth", config.pipeline_depth);
  r.boolean("cache_evaluations", config.cache_evaluations);
  r.str("persistent_cache_dir", config.persistent_cache_dir);
  r.size("persistent_cache_max_entries", config.persistent_cache_max_entries);
  r.size("persistent_cache_max_bytes", config.persistent_cache_max_bytes);
  r.str("checkpoint_dir", config.checkpoint_dir);
  r.integer("checkpoint_every", config.checkpoint_every);
  r.boolean("resume", config.resume);
  r.finish();
  return config;
}

util::Json scenario_to_json(const Scenario& scenario, bool include_defaults) {
  util::Json j = util::Json::object();
  j["name"] = scenario.name;
  j["summary"] = scenario.summary;
  if (include_defaults || !scenario.description.empty()) {
    j["description"] = scenario.description;
  }
  j["default_strategy"] = std::string(strategy_name(scenario.default_strategy));
  j["config"] = config_to_json(scenario.config, include_defaults);
  return j;
}

Scenario scenario_from_json(const util::Json& j) {
  Scenario s;
  Reader r(j, "scenario");
  r.str("name", s.name);
  r.str("summary", s.summary);
  r.str("description", s.description);
  std::string strategy(strategy_name(s.default_strategy));
  r.str("default_strategy", strategy);
  s.default_strategy = strategy_from_name(strategy);
  if (const util::Json* c = r.child("config")) s.config = config_from_json(*c);
  r.finish();
  if (s.name.empty()) {
    throw std::invalid_argument("scenario_from_json: missing \"name\"");
  }
  return s;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_scenario: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scenario_from_json(util::Json::parse(buffer.str()));
}

void save_scenario(const Scenario& scenario, const std::string& path) {
  write_json_file(scenario_to_json(scenario), path);
}

void apply_override(ExperimentConfig& config, std::string_view key_value) {
  const std::size_t eq = key_value.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw std::invalid_argument("apply_override: expected key=value, got \"" +
                                std::string(key_value) + "\"");
  }
  const std::string path(util::trim(key_value.substr(0, eq)));
  const std::string value(util::trim(key_value.substr(eq + 1)));

  // Edit the full (defaults included) dump, then reload: every legal path
  // exists in the dump, and the reload re-applies all validation.
  util::Json full = config_to_json(config, /*include_defaults=*/true);
  util::Json* cursor = &full;
  const std::vector<std::string> segments = util::split(path, '.');
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (!cursor->contains(segments[i])) {
      throw std::invalid_argument("apply_override: unknown key \"" + path +
                                  "\" (no \"" + segments[i] + "\")");
    }
    cursor = &(*cursor)[segments[i]];
    if (i + 1 < segments.size() && !cursor->is_object()) {
      throw std::invalid_argument("apply_override: \"" + segments[i] +
                                  "\" in \"" + path + "\" is not an object");
    }
  }

  util::Json parsed;
  try {
    parsed = util::Json::parse(value);
  } catch (const std::runtime_error&) {
    parsed = util::Json(value);  // bare strings: objective=latency
  }
  *cursor = std::move(parsed);
  config = config_from_json(full);
}

// ------------------------------------------------------------------ registry

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Scenario>& registry() {
  static std::map<std::string, Scenario> r;
  return r;
}

void register_locked(Scenario s) {
  if (s.name.empty()) {
    throw std::invalid_argument("register_scenario: empty name");
  }
  if (!registry().emplace(s.name, s).second) {
    throw std::invalid_argument("register_scenario: duplicate scenario \"" +
                                s.name + "\"");
  }
}

/// Loads and registers every *.json in `directory`, in file-name order.
/// Used by both the public register_scenarios_from and the
/// LCDA_SCENARIO_DIR autoload inside registry initialization (which must
/// not re-enter ensure_builtins, hence the separate entry point).
///
/// All-or-nothing: every file is loaded and every name checked for
/// collisions BEFORE anything is registered, so a failure (malformed
/// third file, duplicate name) leaves the registry untouched and a retry
/// reports the same real error instead of colliding with a half-registered
/// batch.
std::vector<std::string> register_directory(const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(directory, ec);
  if (ec) {
    throw std::runtime_error("register_scenarios_from: cannot read \"" +
                             directory + "\": " + ec.message());
  }
  std::vector<fs::path> files;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<Scenario> loaded;
  loaded.reserve(files.size());
  for (const fs::path& file : files) {
    loaded.push_back(load_scenario(file.string()));
  }

  // Re-registering a byte-identical definition is a no-op (so an
  // LCDA_SCENARIO_DIR autoload followed by an explicit --scenario-dir of
  // the same directory is harmless); only a CONFLICTING definition under
  // a taken name is an error.
  const auto same_definition = [](const Scenario& a, const Scenario& b) {
    return scenario_to_json(a, /*include_defaults=*/true).dump() ==
           scenario_to_json(b, /*include_defaults=*/true).dump();
  };

  std::vector<std::string> names;
  names.reserve(loaded.size());
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<bool> skip(loaded.size(), false);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const std::string& name = loaded[i].name;
    if (auto it = registry().find(name); it != registry().end()) {
      if (!same_definition(loaded[i], it->second)) {
        throw std::invalid_argument("register_scenarios_from: " +
                                    files[i].string() +
                                    " conflicts with registered scenario \"" +
                                    name + "\"");
      }
      skip[i] = true;
      continue;
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (!skip[j] && loaded[j].name == name) {
        throw std::invalid_argument("register_scenarios_from: " +
                                    files[i].string() + " and " +
                                    files[j].string() +
                                    " both define scenario \"" + name + "\"");
      }
    }
  }
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    if (skip[i]) continue;
    names.push_back(loaded[i].name);
    register_locked(std::move(loaded[i]));
  }
  return names;
}

/// The built-in catalog. The four paper scenarios reproduce Sec. IV
/// bit-for-bit; the rest open new workloads on the same engine (README
/// "Scenario catalog" documents each).
void register_builtins();

void ensure_builtins() {
  // Two separate once-flags: register_builtins cannot fail, but the
  // LCDA_SCENARIO_DIR autoload can (malformed file, unreadable dir). A
  // failed call_once leaves its flag unset, so the autoload is retried on
  // the next registry access — and because register_directory is
  // all-or-nothing, the retry reports the same real error instead of
  // colliding with a half-registered batch or re-running the builtins.
  static std::once_flag builtins_once;
  std::call_once(builtins_once, register_builtins);

  // Drop-in scenario files: a directory named by LCDA_SCENARIO_DIR is
  // loaded right after the built-ins, so every registry consumer (CLI,
  // benches, examples) sees its scenarios without code changes. Errors
  // propagate: a broken scenario file fails the registry access loudly
  // instead of silently vanishing from --list.
  static std::once_flag autoload_once;
  std::call_once(autoload_once, [] {
    if (const char* dir = std::getenv("LCDA_SCENARIO_DIR");
        dir != nullptr && *dir != '\0') {
      (void)register_directory(dir);
    }
  });
}

void register_builtins() {
  std::lock_guard<std::mutex> lock(registry_mutex());

  {
    Scenario s;
    s.name = "paper-energy";
    s.summary = "the paper's Sec. IV-A accuracy-energy study (Figs. 2-3, "
                "Table 1): NACIM space, surrogate evaluator, reward Eq. (1)";
    s.description =
        "Reproduces the headline result: GPT-4-guided co-design search over "
        "the NACIM network/hardware space, maximizing accuracy with an "
        "inference-energy term, 20 LCDA vs 500 NACIM-RL episodes.";
    s.default_strategy = Strategy::kLcda;
    register_locked(s);
  }
  {
    Scenario s;
    s.name = "paper-latency";
    s.summary = "the paper's Sec. IV-B accuracy-latency study (Fig. 4), "
                "where GPT-4's kernel priors mislead it: reward Eq. (2)";
    s.description =
        "Same space and engine as paper-energy but rewarding frames per "
        "second; the simulated LLM's GPU-shaped kernel intuitions hurt "
        "here, which is the paper's motivation for fine-tuning.";
    s.default_strategy = Strategy::kLcda;
    s.config.objective = llm::Objective::kLatency;
    register_locked(s);
  }
  {
    Scenario s;
    s.name = "naive";
    s.summary = "the paper's Sec. IV-C prompt ablation (Fig. 5): the same "
                "energy study driven without any co-design context";
    s.description =
        "Ablates the prompt: the LLM is asked for designs without being "
        "told it is co-designing CiM hardware, isolating how much of the "
        "speedup comes from domain framing.";
    s.default_strategy = Strategy::kLcdaNaive;
    register_locked(s);
  }
  {
    Scenario s;
    s.name = "finetuned";
    s.summary = "the paper's unfulfilled future-work point: the latency "
                "study with corrected CiM kernel priors";
    s.description =
        "What Sec. IV-B's fine-tuning would buy: the latency study rerun "
        "with a simulated LLM whose kernel-size priors match CiM crossbar "
        "economics instead of GPU folklore.";
    s.default_strategy = Strategy::kLcdaFinetuned;
    s.config.objective = llm::Objective::kLatency;
    register_locked(s);
  }
  {
    Scenario s;
    s.name = "tight-area";
    s.summary = "edge-class 20 mm^2 area budget: most of the space is "
                "invalid, stressing validity handling and -1 rewards";
    s.description =
        "Shrinks the silicon budget until most candidate chips are "
        "infeasible, so the search spends its episodes learning the "
        "validity boundary rather than polishing a reward.";
    s.default_strategy = Strategy::kLcda;
    s.config.space.area_budget_mm2 = 20.0;
    register_locked(s);
  }
  {
    Scenario s;
    s.name = "high-variation";
    s.summary = "RRAM-only devices at 2x variation sensitivity, rescued by "
                "SWIM-style selective write-verify on 25% of weights";
    s.description =
        "Doubles device-variation sensitivity on an RRAM-only space and "
        "turns on selective write-verify for the most sensitive quarter of "
        "the weights — the noise-robustness workload.";
    s.default_strategy = Strategy::kLcda;
    s.config.space.hw.devices = {cim::DeviceType::kRram};
    s.config.evaluator.accuracy.variation_coeff = 2.0;
    s.config.evaluator.write_verify_fraction = 0.25;
    register_locked(s);
  }
  {
    Scenario s;
    s.name = "deep-backbone";
    s.summary = "an 8-conv-layer backbone (pool after stages 2/4/6/8): a "
                "larger space where channel scheduling matters more";
    s.description =
        "Doubles the network depth (and the LCDA budget to 30 episodes): "
        "the design space grows combinatorially and per-stage channel "
        "scheduling dominates the reward.";
    s.default_strategy = Strategy::kLcda;
    s.config.space.conv_layers = 8;
    s.config.space.backbone.pool_after = {1, 3, 5, 7};
    s.config.evaluator.backbone.pool_after = {1, 3, 5, 7};
    s.config.lcda_episodes = 30;
    register_locked(s);
  }
  {
    Scenario s;
    s.name = "multi-objective";
    s.summary = "accuracy/energy/latency combined reward (Eq. 1's energy "
                "term plus Eq. 2's FPS term); NSGA-II by default";
    s.description =
        "Optimizes accuracy, energy and latency at once through the "
        "combined reward; NSGA-II drives it by default so the result is a "
        "Pareto front rather than a single champion.";
    s.default_strategy = Strategy::kNsga2;
    s.config.combined_reward = true;
    register_locked(s);
  }
  {
    Scenario s;
    s.name = "trained-small";
    s.summary = "the faithful train-then-Monte-Carlo evaluator on a "
                "reduced 16x16/6-class dataset and a 4-layer space";
    s.description =
        "Swaps the calibrated surrogate for the real pipeline — train each "
        "candidate, then Monte-Carlo its accuracy under device noise — on "
        "a dataset small enough to keep a study interactive.";
    s.default_strategy = Strategy::kLcda;
    s.config.evaluator_kind = EvaluatorKind::kTrained;
    s.config.lcda_episodes = 5;
    s.config.nacim_episodes = 10;
    s.config.space.conv_layers = 4;
    s.config.space.channel_choices = {16, 24, 32, 48, 64};
    s.config.space.kernel_choices = {1, 3, 5};
    nn::BackboneOptions backbone;
    backbone.input_size = 16;
    backbone.num_classes = 6;
    backbone.hidden = 64;
    backbone.pool_after = {0, 2};
    s.config.space.backbone = backbone;
    s.config.trained.backbone = backbone;
    s.config.trained.dataset.image_size = 16;
    s.config.trained.dataset.num_classes = 6;
    s.config.trained.dataset.train_per_class = 40;
    s.config.trained.dataset.test_per_class = 16;
    s.config.trained.dataset.seed = 11;
    s.config.trained.epochs = 3;
    s.config.trained.monte_carlo_samples = 4;
    register_locked(s);
  }
}

}  // namespace

void register_scenario(Scenario scenario) {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(registry_mutex());
  register_locked(std::move(scenario));
}

std::vector<std::string> register_scenarios_from(const std::string& directory) {
  ensure_builtins();
  return register_directory(directory);
}

Scenario scenario_by_name(std::string_view name) {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(std::string(name));
  if (it == registry().end()) {
    std::string known;
    for (const auto& [key, value] : registry()) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw std::invalid_argument("scenario_by_name: unknown scenario \"" +
                                std::string(name) + "\" (known: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> list_scenarios() {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [key, value] : registry()) names.push_back(key);
  return names;
}

std::uint64_t study_fingerprint(const ExperimentConfig& config,
                                Strategy strategy, int episodes) {
  // Engine knobs that provably never change a trace, and the *default*
  // budgets (run_strategy takes the real count as a parameter), are
  // normalized out so equivalent studies share cache files. The actual
  // episode count stays in: a batched optimizer's final batch truncates
  // at the budget, so a shorter run's RNG stream is not a prefix of a
  // longer one's and the entries must not be shared.
  ExperimentConfig canon = config;
  const ExperimentConfig def;
  canon.parallelism = def.parallelism;
  canon.pipeline_depth = def.pipeline_depth;
  canon.cache_evaluations = def.cache_evaluations;
  canon.persistent_cache_dir = def.persistent_cache_dir;
  canon.persistent_cache_max_entries = def.persistent_cache_max_entries;
  canon.persistent_cache_max_bytes = def.persistent_cache_max_bytes;
  canon.lcda_episodes = def.lcda_episodes;
  canon.nacim_episodes = def.nacim_episodes;
  canon.checkpoint_dir = def.checkpoint_dir;
  canon.checkpoint_every = def.checkpoint_every;
  canon.resume = def.resume;
  const std::string text = std::string(strategy_name(strategy)) + '/' +
                           std::to_string(episodes) + '\n' +
                           config_to_json(canon, /*include_defaults=*/true).dump();
  return util::fnv1a64(text);
}

std::uint64_t evaluation_fingerprint(const ExperimentConfig& config) {
  // The study fingerprint's canonicalization, additionally normalizing the
  // stream-shaping knobs (seed, batch size) and dropping strategy/episodes
  // entirely: what remains — space, evaluator kind and options, noise and
  // write-verify settings, reward shape — is exactly what determines an
  // Evaluation's deterministic part, so sibling studies of a sweep land in
  // one shared namespace. The tag keeps this hash disjoint from
  // study_fingerprint's for identical configs.
  ExperimentConfig canon = config;
  const ExperimentConfig def;
  canon.parallelism = def.parallelism;
  canon.pipeline_depth = def.pipeline_depth;
  canon.cache_evaluations = def.cache_evaluations;
  canon.persistent_cache_dir = def.persistent_cache_dir;
  canon.persistent_cache_max_entries = def.persistent_cache_max_entries;
  canon.persistent_cache_max_bytes = def.persistent_cache_max_bytes;
  canon.lcda_episodes = def.lcda_episodes;
  canon.nacim_episodes = def.nacim_episodes;
  canon.checkpoint_dir = def.checkpoint_dir;
  canon.checkpoint_every = def.checkpoint_every;
  canon.resume = def.resume;
  canon.seed = def.seed;
  canon.batch_size = def.batch_size;
  const std::string text =
      "lcda-eval-identity-v1\n" +
      config_to_json(canon, /*include_defaults=*/true).dump();
  return util::fnv1a64(text);
}

std::uint64_t stream_fingerprint(const ExperimentConfig& config,
                                 Strategy strategy, int episodes) {
  // Everything evaluation_fingerprint normalized away: together the two
  // halves key what study_fingerprint keys, so (eval, stream) equality is
  // the v1 full-hit condition and eval-only equality is the legal sharing
  // condition.
  const std::string text = "lcda-stream-identity-v1\n" +
                           std::string(strategy_name(strategy)) + '/' +
                           std::to_string(episodes) + '/' +
                           std::to_string(config.seed) + '/' +
                           std::to_string(config.batch_size);
  return util::fnv1a64(text);
}

}  // namespace lcda::core
