#pragma once

#include <vector>

#include "lcda/nn/model_builder.h"
#include "lcda/util/rng.h"

namespace lcda::surrogate {

/// Calibrated analytical stand-in for "train this topology on CIFAR-10 with
/// noise injection, then Monte-Carlo evaluate it under device variation".
///
/// The paper's evaluator costs GPU-hours per candidate; a 500-episode NACIM
/// baseline therefore cannot run on real training in this reproduction (see
/// DESIGN.md substitution #2). This model reproduces the *trends* that
/// drive the search:
///
///  * clean accuracy rises with channel width, saturating (log-capacity);
///  * larger kernels help clean accuracy slightly (more context);
///  * shrinking channel counts mid-network and >4x channel jumps hurt
///    trainability (the heuristics the paper says LCDA exploits);
///  * device variation costs accuracy in proportion to the dot-product
///    fan-in sqrt(K^2 * Cin) — so large kernels lose more accuracy on noisy
///    hardware than they gain cleanly (paper Sec. IV-B's first GPT-4
///    misconception);
///  * insufficient ADC resolution clips partial sums and costs accuracy.
///
/// All outputs are deterministic given the rollout + hardware descriptors:
/// per-design "training luck" comes from a hash of the rollout, not a global
/// RNG, so a design's accuracy is stable no matter when it is evaluated.
class AccuracyModel {
 public:
  struct Options {
    double base = 0.30;       ///< accuracy floor contribution of the backbone
    double amplitude = 0.55;  ///< saturating headroom above the base
    double width_coeff = 0.9;    ///< mean-over-layers log2(channels/8) weight
    double kernel1_penalty = -0.35;
    double kernel5_bonus = 0.012;
    double kernel7_bonus = 0.020;
    double shrink_penalty = -0.10;   ///< per layer with fewer out than in channels
    double jump_penalty = -0.05;     ///< per layer growing channels by > 4x
    double saturation_scale = 1.3;   ///< softness of the capacity saturation
    double variation_coeff = 1.0;    ///< accuracy loss per unit sigma*sqrt(fan-in)
    double injection_recovery = 0.45;  ///< fraction of the drop surviving
                                       ///< noise-injection training
    double adc_deficit_penalty = 0.04;  ///< per missing ADC bit
    double luck_sigma = 0.008;  ///< deterministic per-design training jitter
    double floor = 0.10;        ///< random-guess accuracy (10 classes)
    std::uint64_t calibration_seed = 0x5ca1e0ULL;
  };

  AccuracyModel() : AccuracyModel(Options{}) {}
  explicit AccuracyModel(Options opts) : opts_(opts) {}

  /// Everything about (rollout, sigma, adc deficit) that is deterministic:
  /// the ideal-hardware accuracy, the mean under variation, and the
  /// chip-to-chip spread. Computing these once per evaluation turns the
  /// Monte-Carlo loop into one normal draw + clamp per sample instead of
  /// re-deriving the clean accuracy (twice), the sensitivity and the
  /// rollout-hash "luck" every iteration — sample(precompute(...), rng) is
  /// bit-identical to noisy_accuracy_sample(...).
  struct SampleParams {
    double clean = 0.0;   ///< clean_accuracy(rollout)
    double mean = 0.0;    ///< noisy_accuracy(rollout, sigma, deficit)
    double spread = 0.0;  ///< stddev of the per-chip accuracy draw
  };

  /// Folds the deterministic part of a Monte-Carlo evaluation.
  [[nodiscard]] SampleParams precompute(const std::vector<nn::ConvSpec>& rollout,
                                        double weight_sigma,
                                        int adc_deficit_bits) const;

  /// One Monte-Carlo draw from precomputed params (the per-sample hot path).
  [[nodiscard]] double sample(const SampleParams& params, util::Rng& rng) const;

  /// Accuracy after noise-injection training, evaluated on ideal hardware.
  [[nodiscard]] double clean_accuracy(const std::vector<nn::ConvSpec>& rollout) const;

  /// Variation-sensitivity factor: mean over layers of sigma-amplification
  /// sqrt(K^2 * Cin), normalized by the 3x3/64-channel reference.
  [[nodiscard]] double sensitivity(const std::vector<nn::ConvSpec>& rollout) const;

  /// Mean accuracy under device variation `weight_sigma` with an ADC
  /// resolution shortfall of `adc_deficit_bits`.
  [[nodiscard]] double noisy_accuracy(const std::vector<nn::ConvSpec>& rollout,
                                      double weight_sigma,
                                      int adc_deficit_bits) const;

  /// One Monte-Carlo draw: chip-to-chip spread around noisy_accuracy().
  [[nodiscard]] double noisy_accuracy_sample(const std::vector<nn::ConvSpec>& rollout,
                                             double weight_sigma,
                                             int adc_deficit_bits,
                                             util::Rng& rng) const;

  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  [[nodiscard]] double luck(const std::vector<nn::ConvSpec>& rollout) const;
  Options opts_;
};

}  // namespace lcda::surrogate
