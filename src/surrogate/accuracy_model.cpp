#include "lcda/surrogate/accuracy_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lcda/util/rng.h"

namespace lcda::surrogate {

namespace {
constexpr int kInputChannels = 3;
}

double AccuracyModel::luck(const std::vector<nn::ConvSpec>& rollout) const {
  const std::uint64_t h = nn::rollout_hash(rollout, opts_.calibration_seed);
  // Map the hash to an approximately normal deviate via 4-fold sum of
  // uniforms (deterministic per design).
  util::Rng rng(h);
  double z = 0.0;
  for (int i = 0; i < 4; ++i) z += rng.uniform() - 0.5;
  return z * opts_.luck_sigma * 2.0;  // variance of sum of 4 U(-.5,.5) is 1/3
}

double AccuracyModel::clean_accuracy(const std::vector<nn::ConvSpec>& rollout) const {
  if (rollout.empty()) throw std::invalid_argument("clean_accuracy: empty rollout");
  double score = 0.0;
  int prev_channels = kInputChannels;
  const double denom = static_cast<double>(rollout.size());
  for (const auto& spec : rollout) {
    if (spec.channels <= 0 || spec.kernel <= 0) {
      throw std::invalid_argument("clean_accuracy: bad conv spec");
    }
    // Width: log-capacity, averaged over layers so depth does not inflate it.
    score += opts_.width_coeff * std::log2(std::max(1.0, spec.channels / 8.0)) / denom;
    switch (spec.kernel) {
      case 1: score += opts_.kernel1_penalty; break;
      case 3: break;
      case 5: score += opts_.kernel5_bonus; break;
      case 7: score += opts_.kernel7_bonus; break;
      default: score += opts_.kernel7_bonus; break;  // exotic large kernels
    }
    // Structural penalties apply between conv layers only; the step from
    // the 3-channel RGB input is conventional at any width.
    if (prev_channels != kInputChannels) {
      if (spec.channels < prev_channels) score += opts_.shrink_penalty;
      if (spec.channels > 4 * prev_channels) score += opts_.jump_penalty;
    }
    prev_channels = spec.channels;
  }
  // Saturating capacity curve + deterministic training luck.
  const double acc = opts_.base +
                     opts_.amplitude *
                         (1.0 - std::exp(-score / opts_.saturation_scale)) +
                     luck(rollout);
  return std::clamp(acc, opts_.floor, 0.99);
}

double AccuracyModel::sensitivity(const std::vector<nn::ConvSpec>& rollout) const {
  if (rollout.empty()) throw std::invalid_argument("sensitivity: empty rollout");
  // Dot-product fan-in amplifies weight error: a column sums K^2*Cin noisy
  // terms, so its output error scales with sqrt(K^2 * Cin). Reference point
  // is a 3x3 kernel over 64 channels (sqrt(9 * 64) = 24).
  constexpr double kReference = 24.0;
  double total = 0.0;
  int cin = kInputChannels;
  for (const auto& spec : rollout) {
    const double fan_in = static_cast<double>(spec.kernel) * spec.kernel * cin;
    total += std::sqrt(fan_in) / kReference;
    cin = spec.channels;
  }
  return total / static_cast<double>(rollout.size());
}

AccuracyModel::SampleParams AccuracyModel::precompute(
    const std::vector<nn::ConvSpec>& rollout, double weight_sigma,
    int adc_deficit_bits) const {
  if (weight_sigma < 0.0) {
    throw std::invalid_argument("noisy_accuracy: negative sigma");
  }
  SampleParams params;
  params.clean = clean_accuracy(rollout);
  const double drop = opts_.variation_coeff * opts_.injection_recovery *
                      weight_sigma * sensitivity(rollout);
  const double adc_drop = opts_.adc_deficit_penalty * std::max(0, adc_deficit_bits);
  params.mean = std::clamp(params.clean - drop - adc_drop, opts_.floor, 0.99);
  // Chip-to-chip spread grows with how much accuracy variation is eating.
  params.spread = 0.25 * (params.clean - params.mean) + 0.004;
  return params;
}

double AccuracyModel::sample(const SampleParams& params, util::Rng& rng) const {
  // normal_once: every caller hands a fresh per-sample fork (the engine's
  // trace layout), so a Box-Muller spare would die unconsumed — skipping
  // it drops a sine per Monte-Carlo sample while drawing the same value.
  return std::clamp(params.mean + rng.normal_once(0.0, params.spread),
                    opts_.floor, 0.99);
}

double AccuracyModel::noisy_accuracy(const std::vector<nn::ConvSpec>& rollout,
                                     double weight_sigma,
                                     int adc_deficit_bits) const {
  return precompute(rollout, weight_sigma, adc_deficit_bits).mean;
}

double AccuracyModel::noisy_accuracy_sample(const std::vector<nn::ConvSpec>& rollout,
                                            double weight_sigma,
                                            int adc_deficit_bits,
                                            util::Rng& rng) const {
  return sample(precompute(rollout, weight_sigma, adc_deficit_bits), rng);
}

}  // namespace lcda::surrogate
