#include "lcda/util/fault.h"

#include <atomic>
#include <cstdlib>

#include "lcda/util/logging.h"
#include "lcda/util/strings.h"

namespace lcda::util {

namespace {

std::atomic<int> g_attempt{0};

bool parse_ll(std::string_view text, long long& out) {
  if (text.empty()) return false;
  long long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  out = value;
  return true;
}

/// Parses one `<kind>[=<value>]@<scope>:<args>` clause; returns false with
/// a description when it does not fit the grammar.
bool parse_clause(std::string_view clause, FaultInjector::Spec& spec,
                  std::string& problem) {
  const auto at = clause.find('@');
  if (at == std::string_view::npos) {
    problem = "missing '@'";
    return false;
  }
  std::string_view head = clause.substr(0, at);
  std::string_view tail = clause.substr(at + 1);

  std::string_view kind = head;
  std::string_view value;
  if (const auto eq = head.find('='); eq != std::string_view::npos) {
    kind = head.substr(0, eq);
    value = head.substr(eq + 1);
  }

  const auto colon = tail.find(':');
  if (colon == std::string_view::npos) {
    problem = "missing ':' after scope";
    return false;
  }
  const std::string_view scope = tail.substr(0, colon);
  const std::string_view args = tail.substr(colon + 1);

  if (kind == "kill") {
    spec.kind = FaultInjector::Spec::Kind::kKill;
  } else if (kind == "wedge") {
    spec.kind = FaultInjector::Spec::Kind::kWedge;
  } else if (kind == "sleep") {
    spec.kind = FaultInjector::Spec::Kind::kSleep;
  } else if (kind == "torn-snapshot") {
    spec.kind = FaultInjector::Spec::Kind::kTornSnapshot;
  } else if (kind == "torn-log") {
    spec.kind = FaultInjector::Spec::Kind::kTornLog;
  } else {
    problem = "unknown kind '" + std::string(kind) + "'";
    return false;
  }

  if (scope == "seed") {
    spec.scope = FaultInjector::Spec::Scope::kSeed;
  } else if (scope == "episode") {
    spec.scope = FaultInjector::Spec::Scope::kEpisode;
  } else {
    problem = "unknown scope '" + std::string(scope) + "'";
    return false;
  }

  const bool wants_seed = spec.kind == FaultInjector::Spec::Kind::kWedge ||
                          spec.kind == FaultInjector::Spec::Kind::kSleep;
  const bool wants_episode =
      spec.kind == FaultInjector::Spec::Kind::kTornSnapshot ||
      spec.kind == FaultInjector::Spec::Kind::kTornLog;
  if ((wants_seed && spec.scope != FaultInjector::Spec::Scope::kSeed) ||
      (wants_episode && spec.scope != FaultInjector::Spec::Scope::kEpisode)) {
    problem = "kind '" + std::string(kind) + "' does not take scope '" +
              std::string(scope) + "'";
    return false;
  }

  if (spec.kind == FaultInjector::Spec::Kind::kSleep) {
    long long ms = 0;
    if (!parse_ll(value, ms)) {
      problem = "sleep needs '=<ms>'";
      return false;
    }
    spec.sleep_ms = static_cast<int>(ms);
  } else if (!value.empty()) {
    problem = "kind '" + std::string(kind) + "' does not take '=<value>'";
    return false;
  }

  spec.at.clear();
  for (std::string_view part : split(args, ',')) {
    long long n = 0;
    if (!parse_ll(trim(part), n)) {
      problem = "bad number '" + std::string(part) + "'";
      return false;
    }
    spec.at.push_back(n);
  }
  if (spec.at.empty()) {
    problem = "empty target list";
    return false;
  }
  if (spec.scope == FaultInjector::Spec::Scope::kEpisode &&
      spec.at.size() != 1) {
    problem = "episode scope takes a single episode";
    return false;
  }
  return true;
}

bool contains(const std::vector<long long>& xs, long long x) {
  for (long long v : xs) {
    if (v == x) return true;
  }
  return false;
}

}  // namespace

const FaultInjector& FaultInjector::instance() {
  static const FaultInjector injector = [] {
    const char* env = std::getenv("LCDA_FAULT");
    return env ? parse(env) : FaultInjector{};
  }();
  return injector;
}

FaultInjector FaultInjector::parse(std::string_view text, std::string* error) {
  FaultInjector injector;
  for (std::string_view clause : split(text, ';')) {
    clause = trim(clause);
    if (clause.empty()) continue;
    Spec spec;
    std::string problem;
    if (parse_clause(clause, spec, problem)) {
      injector.specs_.push_back(std::move(spec));
    } else {
      const std::string message =
          "ignoring LCDA_FAULT clause '" + std::string(clause) + "': " +
          problem;
      warn_once("fault-bad-clause:" + std::string(clause), "fault", message);
      if (error != nullptr && error->empty()) *error = message;
    }
  }
  return injector;
}

void FaultInjector::set_attempt(int attempt) { g_attempt.store(attempt); }
int FaultInjector::attempt() { return g_attempt.load(); }

bool FaultInjector::kill_at_seed(long long seed, int attempt) const {
  if (attempt > 0) return false;
  for (const Spec& s : specs_) {
    if (s.kind == Spec::Kind::kKill && s.scope == Spec::Scope::kSeed &&
        contains(s.at, seed)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::wedge_at_seed(long long seed, int attempt) const {
  if (attempt > 0) return false;
  for (const Spec& s : specs_) {
    if (s.kind == Spec::Kind::kWedge && contains(s.at, seed)) return true;
  }
  return false;
}

int FaultInjector::sleep_ms_at_seed(long long seed) const {
  for (const Spec& s : specs_) {
    if (s.kind == Spec::Kind::kSleep && contains(s.at, seed)) {
      return s.sleep_ms;
    }
  }
  return 0;
}

long long FaultInjector::episode_of(Spec::Kind kind) const {
  if (attempt() > 0) return -1;
  for (const Spec& s : specs_) {
    if (s.kind == kind && s.scope == Spec::Scope::kEpisode) return s.at[0];
  }
  return -1;
}

long long FaultInjector::kill_episode() const {
  return episode_of(Spec::Kind::kKill);
}

long long FaultInjector::torn_snapshot_episode() const {
  return episode_of(Spec::Kind::kTornSnapshot);
}

long long FaultInjector::torn_log_episode() const {
  return episode_of(Spec::Kind::kTornLog);
}

}  // namespace lcda::util
