#include "lcda/util/csv.h"

#include <charconv>

namespace lcda::util {

std::string csv_escape(std::string_view value) {
  const bool needs_quotes =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(value);
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter& CsvWriter::header(const std::vector<std::string>& names) {
  for (const auto& n : names) field(n);
  return endrow();
}

void CsvWriter::sep() {
  if (row_started_) *out_ << ',';
  row_started_ = true;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  sep();
  *out_ << csv_escape(value);
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  sep();
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value,
                                 std::chars_format::general, 10);
  (void)ec;
  out_->write(buf, ptr - buf);
  return *this;
}

CsvWriter& CsvWriter::field(long long value) {
  sep();
  *out_ << value;
  return *this;
}

CsvWriter& CsvWriter::endrow() {
  *out_ << '\n';
  row_started_ = false;
  ++rows_;
  return *this;
}

}  // namespace lcda::util
