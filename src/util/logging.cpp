#include "lcda/util/logging.h"

#include <atomic>
#include <functional>
#include <iostream>
#include <map>
#include <mutex>
#include <string>

namespace lcda::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << component << ": " << message
            << '\n';
}

Logger::Line::~Line() { log(level_, component_, stream_.str()); }

namespace {
std::mutex g_warn_once_mutex;
std::map<std::string, long long, std::less<>>& warn_once_counts() {
  static std::map<std::string, long long, std::less<>> counts;
  return counts;
}
}  // namespace

void warn_once(std::string_view key, std::string_view component,
               std::string_view message) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(g_warn_once_mutex);
    first = ++warn_once_counts()[std::string(key)] == 1;
  }
  if (first) log(LogLevel::kWarn, component, message);
}

long long warn_once_count(std::string_view key) {
  std::lock_guard<std::mutex> lock(g_warn_once_mutex);
  const auto& counts = warn_once_counts();
  const auto it = counts.find(key);
  return it == counts.end() ? 0 : it->second;
}

}  // namespace lcda::util
