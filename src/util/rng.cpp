#include "lcda/util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace lcda::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t key) {
  std::uint64_t s = key;
  return splitmix64(s);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash_mix(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  return hash_combine(base, index + 1);
}

std::uint64_t hash_ints(std::span<const int> values, std::uint64_t seed) {
  std::uint64_t h = hash_mix(seed + 0x51ed2701u);
  for (int v : values) {
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> [0,1) double.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::normal_once() {
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal_once(double mean, double stddev) {
  return mean + stddev * normal_once();
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::weighted_index: empty");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  return weighted_index(weights, total);
}

std::size_t Rng::weighted_index(std::span<const double> weights, double total) {
  if (weights.empty()) throw std::invalid_argument("Rng::weighted_index: empty");
  if (total <= 0.0) return index(weights.size());
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace lcda::util
