#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lcda::util {

/// Append-only little-endian byte encoder for checkpoint blobs. The
/// counterpart BinaryReader refuses to read past the end instead of
/// throwing, so a truncated (torn) blob surfaces as `!ok()` at the first
/// missing byte — the property the checkpoint fsck leans on.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  void ints(std::span<const int> values) {
    u32(static_cast<std::uint32_t>(values.size()));
    for (int v : values) i64(v);
  }

 private:
  void raw(const void* data, std::size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }

  std::string& out_;
};

/// Bounds-checked decoder over a byte view. Every accessor returns false
/// (and latches `!ok()`) once the view is exhausted or a length prefix
/// overruns it; values read after a failure are zero/empty. `done()` is
/// true only when the whole view was consumed cleanly — trailing garbage
/// is as suspicious as truncation for a checksummed blob.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    v = 0;
    if (!take(1)) return false;
    v = static_cast<std::uint8_t>(data_[pos_ - 1]);
    return true;
  }

  bool u32(std::uint32_t& v) { return fixed(v); }
  bool u64(std::uint64_t& v) { return fixed(v); }

  bool i64(std::int64_t& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) {
      v = 0;
      return false;
    }
    v = static_cast<std::int64_t>(bits);
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) {
      v = 0.0;
      return false;
    }
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }

  bool str(std::string& s) {
    s.clear();
    std::uint32_t n = 0;
    if (!u32(n) || !take(n)) return false;
    s.assign(data_.data() + pos_ - n, n);
    return true;
  }

  bool ints(std::vector<int>& values) {
    values.clear();
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    // A corrupt length prefix must not drive a huge allocation before the
    // element reads fail: each element takes 8 bytes, so cap the reserve.
    values.reserve(std::min<std::size_t>(n, remaining() / 8));
    for (std::uint32_t i = 0; i < n; ++i) {
      std::int64_t v = 0;
      if (!i64(v)) return false;
      values.push_back(static_cast<int>(v));
    }
    return true;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  bool fixed(T& v) {
    v = T{};
    if (!take(sizeof(T))) return false;
    std::memcpy(&v, data_.data() + pos_ - sizeof(T), sizeof(T));
    return true;
  }

  bool take(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace lcda::util
