#pragma once

#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace lcda::util {

/// Fork/exec helper for spawning worker processes: runs an argv vector,
/// captures the child's stderr through a pipe, and reports how it ended
/// (exit status or terminating signal). stdout is inherited, so a child
/// that legitimately talks to the terminal still can; protocol output
/// should go through files the parent names, not through this class.
///
/// The distributed study runner (lcda::dist) is the primary user: the
/// coordinator spawns one `lcda_run --worker=<spec>` per shard, polls them
/// with try_wait() so finished workers are reaped in completion order, and
/// stops superseded or wedged workers with stop() — SIGTERM first, so a
/// worker can die mid-sleep cleanly, escalating to SIGKILL after a grace
/// window for one that ignores it.
class Subprocess {
 public:
  /// How a child ended. `exit_code` is the process exit status when it
  /// exited normally and -1 when a signal killed it (`term_signal` then
  /// holds the signal number). A child that could not exec its program
  /// exits with code 127, like a shell.
  struct Result {
    int exit_code = -1;
    int term_signal = 0;
    std::string stderr_output;

    [[nodiscard]] bool ok() const { return exit_code == 0; }

    /// "exit 3" / "signal 6" — for error messages.
    [[nodiscard]] std::string describe() const;
  };

  /// Spawns argv[0] with the given argument vector (argv[0] is both the
  /// program and its zeroth argument; PATH is searched). Throws
  /// std::runtime_error when the process cannot be created. `argv` must
  /// be non-empty.
  explicit Subprocess(std::vector<std::string> argv);

  /// Stops (stop() with kDestructGraceMs) and reaps a child that was never
  /// waited on, so an exception unwinding past a live Subprocess cannot
  /// leak a zombie — and a child that handles SIGTERM gets a moment to die
  /// cleanly before the SIGKILL backstop.
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Drains the child's stderr to EOF, then reaps it. Call at most once
  /// (not after try_wait() returned a Result or stop() was called).
  [[nodiscard]] Result wait();

  /// Non-blocking poll: drains whatever stderr is currently available and
  /// reaps the child iff it already exited. Returns std::nullopt while the
  /// child is still running; once it has exited, this and every later call
  /// return the (cached) final Result — idempotent, so a poll loop can
  /// check a child it already saw finish.
  [[nodiscard]] std::optional<Result> try_wait();

  /// Graceful stop: SIGTERM, then up to `grace_ms` for the child to exit
  /// on its own, then SIGKILL, then reap. Returns how it actually ended
  /// (exit code if it honoured the TERM, signal otherwise).
  [[nodiscard]] Result stop(int grace_ms = kDefaultStopGraceMs);

  [[nodiscard]] pid_t pid() const { return pid_; }
  [[nodiscard]] bool waited() const { return waited_; }

  /// Convenience: spawn + wait.
  [[nodiscard]] static Result run(std::vector<std::string> argv);

  static constexpr int kDefaultStopGraceMs = 1000;
  static constexpr int kDestructGraceMs = 200;

 private:
  /// Reads available stderr into buffer_; returns false once EOF is seen.
  bool drain_available();
  Result reap();

  pid_t pid_ = -1;
  int stderr_fd_ = -1;
  bool waited_ = false;
  bool stderr_eof_ = false;
  std::string buffer_;
  std::optional<Result> result_;  ///< cached once reaped (try_wait idempotence)
};

/// Absolute path of the running executable (/proc/self/exe), falling back
/// to `argv0` when the link cannot be read — how a CLI re-invokes itself
/// in worker mode.
[[nodiscard]] std::string self_executable_path(const char* argv0);

}  // namespace lcda::util
