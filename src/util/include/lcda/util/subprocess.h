#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

namespace lcda::util {

/// Fork/exec helper for spawning worker processes: runs an argv vector,
/// captures the child's stderr through a pipe, and reports how it ended
/// (exit status or terminating signal). By default stdout is inherited,
/// so a child that legitimately talks to the terminal still can; a parent
/// that speaks a pipe protocol with the child opts into `Options` pipes
/// for stdin/stdout instead.
///
/// The distributed study runner (lcda::dist) is the primary user: the
/// coordinator keeps one resident `lcda_run --worker-loop` per slot,
/// streams commands down its stdin with write_stdin(), reads line replies
/// with read_stdout(), polls exits with try_wait() so finished workers are
/// reaped in completion order, and stops superseded or wedged workers with
/// stop() — SIGTERM first, so a worker can die mid-sleep cleanly,
/// escalating to SIGKILL after a grace window for one that ignores it.
///
/// Deadlock-freedom contract: every parent-side descriptor is
/// non-blocking. write_stdin() buffers bytes the pipe will not take yet in
/// parent memory and retries on later calls, and read_stdout()/
/// take_stderr() only ever return what has already arrived — no call on
/// this class blocks on a full or empty pipe.
class Subprocess {
 public:
  /// Which standard streams the parent holds pipes to. stderr is always
  /// captured; stdin/stdout pipes are opt-in so plain spawn-and-wait users
  /// keep terminal inheritance.
  struct Options {
    bool pipe_stdin = false;   ///< parent writes child stdin (write_stdin)
    bool pipe_stdout = false;  ///< parent reads child stdout (read_stdout)
  };

  /// How a child ended. `exit_code` is the process exit status when it
  /// exited normally and -1 when a signal killed it (`term_signal` then
  /// holds the signal number). A child that could not exec its program
  /// exits with code 127, like a shell.
  struct Result {
    int exit_code = -1;
    int term_signal = 0;
    std::string stderr_output;

    [[nodiscard]] bool ok() const { return exit_code == 0; }

    /// "exit 3" / "signal 6" — for error messages.
    [[nodiscard]] std::string describe() const;
  };

  /// Spawns argv[0] with the given argument vector (argv[0] is both the
  /// program and its zeroth argument; PATH is searched). Throws
  /// std::runtime_error when the process cannot be created. `argv` must
  /// be non-empty.
  explicit Subprocess(std::vector<std::string> argv);
  Subprocess(std::vector<std::string> argv, const Options& options);

  /// Stops (stop() with kDestructGraceMs) and reaps a child that was never
  /// waited on, so an exception unwinding past a live Subprocess cannot
  /// leak a zombie — and a child that handles SIGTERM gets a moment to die
  /// cleanly before the SIGKILL backstop.
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Drains the child's stderr (and piped stdout) to EOF, then reaps it.
  /// Call at most once (not after try_wait() returned a Result or stop()
  /// was called).
  [[nodiscard]] Result wait();

  /// Non-blocking poll: drains whatever stderr/stdout is currently
  /// available and reaps the child iff it already exited. Returns
  /// std::nullopt while the child is still running; once it has exited,
  /// this and every later call return the (cached) final Result —
  /// idempotent, so a poll loop can check a child it already saw finish.
  [[nodiscard]] std::optional<Result> try_wait();

  /// Graceful stop: SIGTERM, then up to `grace_ms` for the child to exit
  /// on its own, then SIGKILL, then reap. Returns how it actually ended
  /// (exit code if it honoured the TERM, signal otherwise).
  [[nodiscard]] Result stop(int grace_ms = kDefaultStopGraceMs);

  /// Queues `data` for the child's stdin and flushes as much as the pipe
  /// accepts right now; the rest is buffered in parent memory and flushed
  /// opportunistically by later write_stdin()/read_stdout()/try_wait()
  /// calls, so the caller can never deadlock against a full pipe. Returns
  /// false once the pipe is broken (child dead or closed its stdin) —
  /// SIGPIPE is ignored process-wide on first pipe use so a dead reader
  /// surfaces as this return value, not a signal. Requires
  /// Options::pipe_stdin.
  bool write_stdin(std::string_view data);

  /// Closes the child's stdin (after flushing what the pipe will take),
  /// delivering EOF — how a line-protocol child is told "no more
  /// commands". Unsent buffered bytes are dropped; callers that need a
  /// clean shutdown line should check write_stdin()'s return first.
  void close_stdin();

  /// Returns (and consumes) whatever child stdout has arrived since the
  /// last call. Empty string means "nothing yet", not EOF — pair with
  /// try_wait() to detect a dead child. Requires Options::pipe_stdout.
  [[nodiscard]] std::string read_stdout();

  /// Returns (and consumes) whatever child stderr has arrived since the
  /// last call, so a long-lived worker's stderr can be attributed to the
  /// command that produced it instead of accumulating until reap time.
  [[nodiscard]] std::string take_stderr();

  [[nodiscard]] pid_t pid() const { return pid_; }
  [[nodiscard]] bool waited() const { return waited_; }

  /// Parent-side read descriptors still open (the stderr capture plus the
  /// piped stdout when enabled, excluding any already at EOF) — what an
  /// event loop should watch before sleeping. Empty once nothing further
  /// can arrive (both pipes at EOF, or the child already reaped).
  [[nodiscard]] std::vector<int> poll_fds() const;

  /// Blocks until any of `fds` is readable (data arrived, or EOF/hangup —
  /// how a child's exit surfaces on its pipes) or `timeout_ms` elapses.
  /// Returns true when a descriptor woke it, false on timeout. An empty
  /// `fds` degrades to a plain sleep, so a caller's backoff still paces
  /// its time-based scans.
  [[nodiscard]] static bool wait_any_readable(const std::vector<int>& fds,
                                              int timeout_ms);

  /// Convenience: spawn + wait.
  [[nodiscard]] static Result run(std::vector<std::string> argv);

  static constexpr int kDefaultStopGraceMs = 1000;
  static constexpr int kDestructGraceMs = 200;

 private:
  /// Reads available stderr into buffer_; returns false once EOF is seen.
  bool drain_available();
  /// Reads available piped stdout into stdout_buffer_; false once EOF.
  bool drain_stdout_available();
  /// Writes as much of stdin_pending_ as the pipe takes; false on EPIPE.
  bool flush_stdin();
  void close_parent_fds();
  Result reap();

  pid_t pid_ = -1;
  int stderr_fd_ = -1;
  int stdout_fd_ = -1;
  int stdin_fd_ = -1;
  bool waited_ = false;
  bool stderr_eof_ = false;
  bool stdout_eof_ = false;
  bool stdin_broken_ = false;
  std::string buffer_;
  std::string stdout_buffer_;
  std::string stdin_pending_;  ///< bytes the pipe has not accepted yet
  std::optional<Result> result_;  ///< cached once reaped (try_wait idempotence)
};

/// Absolute path of the running executable (/proc/self/exe), falling back
/// to `argv0` when the link cannot be read — how a CLI re-invokes itself
/// in worker mode.
[[nodiscard]] std::string self_executable_path(const char* argv0);

}  // namespace lcda::util
