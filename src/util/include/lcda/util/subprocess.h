#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

namespace lcda::util {

/// Fork/exec helper for spawning worker processes: runs an argv vector,
/// captures the child's stderr through a pipe, and reports how it ended
/// (exit status or terminating signal). stdout is inherited, so a child
/// that legitimately talks to the terminal still can; protocol output
/// should go through files the parent names, not through this class.
///
/// The distributed study runner (lcda::dist) is the primary user: the
/// coordinator spawns one `lcda_run --worker=<spec>` per shard, waits on
/// each, and surfaces the captured stderr when a shard has to be retried
/// or given up on.
class Subprocess {
 public:
  /// How a child ended. `exit_code` is the process exit status when it
  /// exited normally and -1 when a signal killed it (`term_signal` then
  /// holds the signal number). A child that could not exec its program
  /// exits with code 127, like a shell.
  struct Result {
    int exit_code = -1;
    int term_signal = 0;
    std::string stderr_output;

    [[nodiscard]] bool ok() const { return exit_code == 0; }

    /// "exit 3" / "signal 6" — for error messages.
    [[nodiscard]] std::string describe() const;
  };

  /// Spawns argv[0] with the given argument vector (argv[0] is both the
  /// program and its zeroth argument; PATH is searched). Throws
  /// std::runtime_error when the process cannot be created. `argv` must
  /// be non-empty.
  explicit Subprocess(std::vector<std::string> argv);

  /// Kills (SIGKILL) and reaps a child that was never waited on, so an
  /// exception unwinding past a live Subprocess cannot leak a zombie.
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Drains the child's stderr to EOF, then reaps it. Call at most once.
  [[nodiscard]] Result wait();

  [[nodiscard]] pid_t pid() const { return pid_; }
  [[nodiscard]] bool waited() const { return waited_; }

  /// Convenience: spawn + wait.
  [[nodiscard]] static Result run(std::vector<std::string> argv);

 private:
  pid_t pid_ = -1;
  int stderr_fd_ = -1;
  bool waited_ = false;
};

/// Absolute path of the running executable (/proc/self/exe), falling back
/// to `argv0` when the link cannot be read — how a CLI re-invokes itself
/// in worker mode.
[[nodiscard]] std::string self_executable_path(const char* argv0);

}  // namespace lcda::util
