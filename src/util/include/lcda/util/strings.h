#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lcda::util {

/// Removes ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on a single character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Case-insensitive substring search.
[[nodiscard]] bool contains_icase(std::string_view haystack, std::string_view needle);

/// Lower-cases ASCII.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Parses a decimal integer; nullopt on any trailing garbage.
[[nodiscard]] std::optional<long long> parse_int(std::string_view s);

/// Parses a double; nullopt on any trailing garbage.
[[nodiscard]] std::optional<double> parse_double(std::string_view s);

/// Extracts every decimal integer appearing in `s`, in order.
/// "[ [32, 3], [64,3] ]" -> {32, 3, 64, 3}. Minus signs directly before a
/// digit are honoured.
[[nodiscard]] std::vector<long long> extract_ints(std::string_view s);

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

/// 16-digit zero-padded lowercase hex of a 64-bit value (no "0x" prefix)
/// — the one formatter behind cache file names and shard checksums, so a
/// writer and an independent verifier can never disagree on the shape.
[[nodiscard]] std::string hex_u64(std::uint64_t value);

}  // namespace lcda::util
