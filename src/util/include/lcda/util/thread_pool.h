#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lcda::util {

/// Fixed-size worker pool used to fan out independent evaluations (episode
/// batches, multi-seed studies) without touching determinism: callers
/// pre-derive every task's RNG stream on the submitting thread, so worker
/// scheduling can never reorder random draws.
///
/// A pool of size 1 (or a null pool pointer in the helpers below) degrades
/// to inline execution on the calling thread.
class ThreadPool {
 public:
  /// Spawns `threads` workers. Values < 1 are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a job. Jobs must not submit to the same pool recursively.
  void submit(std::function<void()> job);

  /// Enqueues a whole batch under one lock acquisition and one
  /// notify_all, instead of a lock + notify per job — the bulk-dispatch
  /// fast path used by the co-design loop's evaluation rounds and by
  /// parallel_for. Jobs run in submission order (FIFO queue) but complete
  /// in any order.
  void submit_batch(std::vector<std::function<void()>> jobs);

  /// Blocks until every submitted job has finished. Rethrows the first
  /// exception raised by a job (first in submission order of completion).
  void wait_idle();

  /// Runs body(0..n-1), distributing iterations over the workers and the
  /// calling thread; returns when all are done. Iteration order across
  /// threads is unspecified, so bodies must be independent. Rethrows the
  /// first exception raised by an iteration.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Resolves a user-facing parallelism knob: values >= 1 are taken as-is,
  /// anything else (0 = "auto") maps to the hardware concurrency.
  [[nodiscard]] static int resolve_parallelism(int requested);

  /// How many contiguous chunks `items` work items should be split into
  /// for a pool of `workers` threads: one chunk per worker, never more
  /// chunks than items, at least one chunk for a non-empty batch. This is
  /// the round fan-out policy of the co-design loop — a worker costs a
  /// whole chunk per wakeup instead of paying queue traffic per item.
  [[nodiscard]] static std::size_t chunks_for(std::size_t items, int workers);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// parallel_for over `pool`, or inline on the calling thread when `pool` is
/// null — the two paths produce identical results for independent bodies.
void parallel_for_each_index(ThreadPool* pool, std::size_t n,
                             const std::function<void(std::size_t)>& body);

/// Half-open range of work items chunk `chunk` (of `chunks`) owns when `n`
/// items are split into balanced contiguous ranges: the first n % chunks
/// chunks take one extra item. Requires chunk < chunks and chunks >= 1.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};
[[nodiscard]] ChunkRange chunk_range(std::size_t n, std::size_t chunks,
                                     std::size_t chunk);

}  // namespace lcda::util
