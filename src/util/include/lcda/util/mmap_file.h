#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lcda::util {

/// Read-only memory-mapped file. The mapping is immutable for the object's
/// lifetime and survives the underlying file being renamed over or unlinked
/// (POSIX keeps the pages alive until munmap), which is what lets store
/// compaction replace segment files while readers hold mappings into them.
///
/// Move-only; the moved-from object is empty. An empty MmapFile (default
/// constructed, failed open, or zero-length file) has data() == nullptr and
/// size() == 0.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Returns an empty mapping on any failure and, if
  /// `error` is non-null, stores a one-line description there ("" on
  /// success). A zero-length file maps successfully to an empty mapping.
  [[nodiscard]] static MmapFile open(const std::string& path,
                                     std::string* error = nullptr);

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lcda::util
