#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <vector>

namespace lcda::util {

/// Deterministic, seedable PRNG (xoshiro256**).
///
/// All randomness in the project flows through explicitly-passed Rng
/// instances; there is no global generator. Two Rng objects constructed with
/// the same seed produce identical streams on every platform, which makes
/// experiments, tests and benchmarks reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give uncorrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached spare).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// One standard-normal draw without Box-Muller spare caching: consumes
  /// the same two uniforms and returns the same value as normal() does on
  /// a spare-free generator, but skips computing the sine half of the
  /// pair. For fork-per-sample Monte-Carlo streams, where each generator
  /// dies after a single draw and the spare would never be consumed.
  double normal_once();
  double normal_once(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Uniformly chosen index into a non-empty container of size n.
  std::size_t index(std::size_t n);

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Samples an index according to non-negative weights (need not sum to 1).
  /// Falls back to uniform if all weights are zero.
  std::size_t weighted_index(std::span<const double> weights);

  /// Same draw, with the caller supplying `total` = the left-to-right sum
  /// of `weights` (e.g. cached alongside a softmax). Produces bit-identical
  /// indices to the self-summing overload for the same stream — the RL
  /// controller's per-dimension sampling uses this to skip re-summing an
  /// unchanged policy every episode.
  std::size_t weighted_index(std::span<const double> weights, double total);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Derives an independent child generator; useful to hand sub-components
  /// their own stream without coupling their consumption order.
  Rng fork();

  /// Complete generator state — the four xoshiro words plus the Box-Muller
  /// spare — so a checkpoint can freeze a stream mid-flight and a resumed
  /// run continues it bit-for-bit (including an unconsumed normal() spare).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double spare_normal = 0.0;
    bool has_spare = false;
  };

  [[nodiscard]] State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.spare_normal = spare_normal_;
    st.has_spare = has_spare_;
    return st;
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    spare_normal_ = st.spare_normal;
    has_spare_ = st.has_spare;
  }

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// splitmix64 step — exposed for seeding schemes and hashing small keys.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a key (useful for per-design deterministic
/// "noise" that does not depend on evaluation order).
std::uint64_t hash_mix(std::uint64_t key);

/// Combines two hashes.
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// FNV-1a over bytes — the stable content hash behind study fingerprints
/// and shard-spec checksums (one definition, so a writer and an
/// independent verifier can never drift apart).
std::uint64_t fnv1a64(std::string_view s);

/// Seed of the `index`-th derived RNG stream of `base`. Unlike Rng::fork()
/// this consumes no generator state, so streams can be handed out in any
/// order (worker threads, shards) and stay bit-identical to a sequential
/// hand-out — the parallel engine's seed-derivation scheme.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

/// Hash of a list of integers (order-sensitive).
std::uint64_t hash_ints(std::span<const int> values, std::uint64_t seed = 0);

}  // namespace lcda::util
