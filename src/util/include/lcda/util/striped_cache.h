#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace lcda::util {

/// Hash-striped content-addressed memo: 64-bit content key ->
/// shared_ptr<const V>, sharded over independently locked stripes so
/// concurrent readers on different keys never serialize on one mutex (the
/// PR 3 evaluator memos shared a single lock; under a worker pool every
/// evaluation funnelled through it).
///
/// Semantics match the memos this replaces:
///  * content-keyed, so a hit and a rebuild are interchangeable — the cache
///    can never change a result, only save work;
///  * values are shared_ptr so a rehash or stripe reset never invalidates
///    an entry another thread still uses;
///  * concurrent duplicate builds are allowed (the builder runs outside the
///    lock; the first insert wins and the loser adopts it);
///  * each stripe is capped; on overflow the stripe is reset, not the
///    world (correctness does not depend on memo contents).
template <typename V>
class StripedCache {
 public:
  /// `capacity` bounds the total entry count across stripes (rounded up to
  /// a per-stripe cap); 0 keeps the default of 1<<16.
  explicit StripedCache(std::size_t capacity = 0) {
    const std::size_t total = capacity > 0 ? capacity : (1u << 16);
    per_stripe_cap_ = (total + kStripes - 1) / kStripes;
    if (per_stripe_cap_ == 0) per_stripe_cap_ = 1;
  }

  StripedCache(const StripedCache&) = delete;
  StripedCache& operator=(const StripedCache&) = delete;

  /// Returns the value for `key`, building it via `build()` (which must
  /// return something convertible to std::shared_ptr<const V>) on a miss.
  /// `build` runs without any lock held.
  template <typename Build>
  [[nodiscard]] std::shared_ptr<const V> get_or_build(std::uint64_t key,
                                                      Build&& build) {
    Stripe& stripe = stripe_for(key);
    {
      std::lock_guard lock(stripe.mutex);
      if (auto it = stripe.map.find(key); it != stripe.map.end()) {
        return it->second;
      }
    }
    std::shared_ptr<const V> built = std::forward<Build>(build)();
    std::lock_guard lock(stripe.mutex);
    if (stripe.map.size() >= per_stripe_cap_) stripe.map.clear();
    return stripe.map.emplace(key, std::move(built)).first->second;
  }

  /// Entry count across all stripes (approximate under concurrency).
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : stripes_) {
      std::lock_guard lock(stripe.mutex);
      total += stripe.map.size();
    }
    return total;
  }

  static constexpr std::size_t kStripes = 16;

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<const V>> map;
  };

  Stripe& stripe_for(std::uint64_t key) {
    // The low bits feed unordered_map's bucket index; mix the high bits
    // into the stripe choice so both selectors stay independent.
    return stripes_[(key >> 48) & (kStripes - 1)];
  }

  Stripe stripes_[kStripes];
  std::size_t per_stripe_cap_ = 0;
};

}  // namespace lcda::util
