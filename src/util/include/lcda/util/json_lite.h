#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace lcda::util {

/// Minimal JSON value for serializing and loading designs, scenarios and
/// experiment results.
///
/// Builds a tree and renders it (keys emitted in insertion order), and
/// parses the same subset back: objects, arrays, strings, numbers, bools,
/// null. Numbers render with shortest-round-trip formatting, so a
/// dump/parse cycle reproduces every double bit-for-bit — the property the
/// persistent evaluation cache and the scenario golden traces rely on.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<double>(v)) {}
  Json(long long v) : value_(static_cast<double>(v)) {}
  Json(std::size_t v) : value_(static_cast<double>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}

  /// Creates an empty object / array.
  static Json object();
  static Json array();

  /// Parses a JSON document. Throws std::runtime_error with a position on
  /// malformed input or trailing garbage.
  static Json parse(std::string_view text);

  /// Object access; converts a null value into an object on first use.
  Json& operator[](const std::string& key);

  /// Array append; converts a null value into an array on first use.
  void push_back(Json v);

  [[nodiscard]] bool is_null() const;
  [[nodiscard]] bool is_bool() const;
  [[nodiscard]] bool is_number() const;
  [[nodiscard]] bool is_string() const;
  [[nodiscard]] bool is_object() const;
  [[nodiscard]] bool is_array() const;

  /// Typed reads; throw std::logic_error when the value holds another type.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] long long as_int() const;  ///< throws if not integral
  [[nodiscard]] const std::string& as_string() const;

  /// Object lookup. contains() is false for non-objects; at() throws on a
  /// missing key or non-object.
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;

  /// Array element access; throws on non-arrays or out-of-range indices.
  [[nodiscard]] const Json& at(std::size_t index) const;

  /// Number of object keys / array elements; 0 for scalars.
  [[nodiscard]] std::size_t size() const;

  /// Object key/value pairs in insertion order (empty for non-objects) —
  /// the iteration primitive for deserializers and unknown-key detection.
  [[nodiscard]] std::vector<std::pair<std::string, Json>> items() const;

  /// Array elements (empty for non-arrays).
  [[nodiscard]] std::vector<Json> elements() const;

  /// Serializes; `indent` < 0 means compact single-line output.
  [[nodiscard]] std::string dump(int indent = -1) const;

  [[nodiscard]] bool operator==(const Json& other) const;

 private:
  struct ObjectRep {
    std::vector<std::pair<std::string, Json>> items;
  };
  struct ArrayRep {
    std::vector<Json> items;
  };
  using Value = std::variant<std::nullptr_t, bool, double, std::string,
                             std::shared_ptr<ObjectRep>, std::shared_ptr<ArrayRep>>;

  void dump_to(std::string& out, int indent, int depth) const;
  Value value_;
};

/// Escapes a string for embedding in JSON (exposed for tests).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace lcda::util
