#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace lcda::util {

/// Minimal JSON value for serializing designs and experiment results.
///
/// Write-oriented: builds a tree and renders it; no parser is provided (the
/// project never consumes JSON). Keys are emitted in insertion order.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<double>(v)) {}
  Json(long long v) : value_(static_cast<double>(v)) {}
  Json(std::size_t v) : value_(static_cast<double>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}

  /// Creates an empty object / array.
  static Json object();
  static Json array();

  /// Object access; converts a null value into an object on first use.
  Json& operator[](const std::string& key);

  /// Array append; converts a null value into an array on first use.
  void push_back(Json v);

  [[nodiscard]] bool is_object() const;
  [[nodiscard]] bool is_array() const;

  /// Serializes; `indent` < 0 means compact single-line output.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  struct ObjectRep {
    std::vector<std::pair<std::string, Json>> items;
  };
  struct ArrayRep {
    std::vector<Json> items;
  };
  using Value = std::variant<std::nullptr_t, bool, double, std::string,
                             std::shared_ptr<ObjectRep>, std::shared_ptr<ArrayRep>>;

  void dump_to(std::string& out, int indent, int depth) const;
  Value value_;
};

/// Escapes a string for embedding in JSON (exposed for tests).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace lcda::util
