#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lcda::util {

/// Unified deterministic fault-injection harness, configured once per
/// process from the LCDA_FAULT environment variable. The grammar is a
/// ';'-separated list of clauses, each `<kind>[=<value>]@<scope>:<args>`:
///
///   kill@seed:2            worker _exit(42)s before evaluating seed 2
///   wedge@seed:2           worker stops heartbeating and hangs at seed 2
///   sleep=400@seed:0,1     worker sleeps 400ms before each listed seed
///   kill@episode:9         engine _exit(42)s when the next round to plan
///                          starts at episode >= 9
///   torn-snapshot@episode:9  checkpoint writer truncates the snapshot it
///                          writes at episode >= 9, then _exit(42)s
///   torn-log@episode:9     checkpoint writer truncates the changelog
///                          record for the round starting at episode >= 9,
///                          then _exit(42)s
///
/// Everything except `sleep` arms on attempt 0 only — a retried or
/// resumed shard runs clean, exactly like the legacy LCDA_TEST_DIE_SEED /
/// LCDA_TEST_WEDGE_SEED hooks this harness subsumes. `sleep` fires on
/// every attempt (the straggler-mitigation tests depend on stolen copies
/// being just as slow), matching LCDA_TEST_SEED_SLEEP_MS. Malformed
/// clauses are warned about once and skipped; they never abort a run.
class FaultInjector {
 public:
  struct Spec {
    enum class Kind { kKill, kWedge, kSleep, kTornSnapshot, kTornLog };
    enum class Scope { kSeed, kEpisode };
    Kind kind = Kind::kKill;
    Scope scope = Scope::kSeed;
    std::vector<long long> at;  ///< seed list, or a single episode
    int sleep_ms = 0;
  };

  /// The process-wide injector, parsed from LCDA_FAULT on first use and
  /// cached (so a test that mutates the environment mid-process cannot
  /// perturb runs that already started).
  static const FaultInjector& instance();

  /// Parses a spec string; malformed clauses are dropped and described in
  /// `*error` (first problem wins) when non-null.
  static FaultInjector parse(std::string_view text,
                             std::string* error = nullptr);

  /// Attempt the current shard/run is on. Workers set this from their
  /// spec before executing seeds; attempt-0-only faults consult it (and
  /// the explicit argument of the seed-scoped checks). Defaults to 0.
  static void set_attempt(int attempt);
  static int attempt();

  [[nodiscard]] bool empty() const { return specs_.empty(); }

  // Seed-scoped checks (worker paths). kill/wedge arm on attempt 0 only.
  [[nodiscard]] bool kill_at_seed(long long seed, int attempt) const;
  [[nodiscard]] bool wedge_at_seed(long long seed, int attempt) const;
  [[nodiscard]] int sleep_ms_at_seed(long long seed) const;

  // Episode-scoped checks (engine and checkpoint writer); -1 = not armed.
  // Armed on attempt 0 only, via the process-wide attempt().
  [[nodiscard]] long long kill_episode() const;
  [[nodiscard]] long long torn_snapshot_episode() const;
  [[nodiscard]] long long torn_log_episode() const;

  [[nodiscard]] const std::vector<Spec>& specs() const { return specs_; }

 private:
  [[nodiscard]] long long episode_of(Spec::Kind kind) const;

  std::vector<Spec> specs_;
};

}  // namespace lcda::util
