#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lcda::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used by the Monte-Carlo evaluator
/// and the benchmark harnesses.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100]. Copies + sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double p);
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// Exponential moving average, used by the RL baseline.
class Ema {
 public:
  explicit Ema(double decay) : decay_(decay) {}
  double update(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool initialized() const { return initialized_; }

  /// Reinstates a checkpointed average (decay stays whatever the
  /// constructor set — it is configuration, not state).
  void restore(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double decay_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace lcda::util
