#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace lcda::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line to stderr: "[LEVEL] component: message".
void log(LogLevel level, std::string_view component, std::string_view message);

/// Counted one-shot warning: the first occurrence of `key` logs `message`
/// at warn level, repeats only bump a process-wide counter (queryable via
/// warn_once_count, e.g. by tests asserting a degraded path fired). Keys
/// are free-form; use a stable slug per condition, not per message.
void warn_once(std::string_view key, std::string_view component,
               std::string_view message);
[[nodiscard]] long long warn_once_count(std::string_view key);

/// Stream-style helper:  Logger("cim").info() << "x=" << x;
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  class Line {
   public:
    Line(LogLevel level, std::string_view component)
        : level_(level), component_(component) {}
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    ~Line();

    template <typename T>
    Line& operator<<(const T& value) {
      stream_ << value;
      return *this;
    }

   private:
    LogLevel level_;
    std::string component_;
    std::ostringstream stream_;
  };

  [[nodiscard]] Line debug() const { return Line(LogLevel::kDebug, component_); }
  [[nodiscard]] Line info() const { return Line(LogLevel::kInfo, component_); }
  [[nodiscard]] Line warn() const { return Line(LogLevel::kWarn, component_); }
  [[nodiscard]] Line error() const { return Line(LogLevel::kError, component_); }

 private:
  std::string component_;
};

}  // namespace lcda::util
