#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lcda::util {

/// Tiny CSV emitter used by the benchmark harnesses to dump figure series.
///
/// Quotes fields that contain separators/quotes/newlines; numbers are
/// formatted with enough precision to round-trip.
class CsvWriter {
 public:
  /// Writes to an external stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  CsvWriter& header(const std::vector<std::string>& names);

  CsvWriter& field(std::string_view value);
  CsvWriter& field(double value);
  CsvWriter& field(long long value);
  CsvWriter& field(int value) { return field(static_cast<long long>(value)); }
  CsvWriter& field(std::size_t value) { return field(static_cast<long long>(value)); }

  /// Terminates the current row.
  CsvWriter& endrow();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void sep();
  std::ostream* out_;
  bool row_started_ = false;
  std::size_t rows_ = 0;
};

/// Escapes a single CSV field (exposed for tests).
[[nodiscard]] std::string csv_escape(std::string_view value);

}  // namespace lcda::util
