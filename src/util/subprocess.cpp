#include "lcda/util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace lcda::util {

namespace {

/// Read to EOF, retrying on EINTR.
std::string drain_fd(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return out;
  }
}

int waitpid_retry(pid_t pid, int* status) {
  for (;;) {
    const pid_t r = ::waitpid(pid, status, 0);
    if (r >= 0 || errno != EINTR) return static_cast<int>(r);
  }
}

}  // namespace

std::string Subprocess::Result::describe() const {
  char buf[64];
  if (term_signal != 0) {
    std::snprintf(buf, sizeof(buf), "signal %d", term_signal);
  } else {
    std::snprintf(buf, sizeof(buf), "exit %d", exit_code);
  }
  return buf;
}

Subprocess::Subprocess(std::vector<std::string> argv) {
  if (argv.empty()) throw std::invalid_argument("Subprocess: empty argv");

  int fds[2];
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("Subprocess: pipe: ") +
                             ::strerror(errno));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error(std::string("Subprocess: fork: ") +
                             ::strerror(errno));
  }

  if (pid == 0) {
    // Child: stderr goes to the pipe; the read end closes so EOF tracks
    // child exit. Only async-signal-safe calls between fork and exec.
    ::close(fds[0]);
    ::dup2(fds[1], STDERR_FILENO);
    if (fds[1] != STDERR_FILENO) ::close(fds[1]);

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& arg : argv) cargv.push_back(arg.data());
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());

    // Exec failed: report through the (now redirected) stderr and use the
    // shell's 127 so the parent can tell "no such program" from a crash.
    const char* msg = "Subprocess: exec failed: ";
    (void)!::write(STDERR_FILENO, msg, ::strlen(msg));
    (void)!::write(STDERR_FILENO, cargv[0], ::strlen(cargv[0]));
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  // Parent.
  ::close(fds[1]);
  pid_ = pid;
  stderr_fd_ = fds[0];
}

Subprocess::~Subprocess() {
  if (waited_ || pid_ < 0) return;
  ::kill(pid_, SIGKILL);
  if (stderr_fd_ >= 0) ::close(stderr_fd_);
  int status = 0;
  (void)waitpid_retry(pid_, &status);
}

Subprocess::Result Subprocess::wait() {
  if (waited_) throw std::logic_error("Subprocess: wait() called twice");
  waited_ = true;

  Result result;
  result.stderr_output = drain_fd(stderr_fd_);
  ::close(stderr_fd_);
  stderr_fd_ = -1;

  int status = 0;
  if (waitpid_retry(pid_, &status) < 0) {
    throw std::runtime_error(std::string("Subprocess: waitpid: ") +
                             ::strerror(errno));
  }
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = -1;
    result.term_signal = WTERMSIG(status);
  }
  return result;
}

Subprocess::Result Subprocess::run(std::vector<std::string> argv) {
  Subprocess child(std::move(argv));
  return child.wait();
}

std::string self_executable_path(const char* argv0) {
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !exe.empty()) return exe.string();
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

}  // namespace lcda::util
