#include "lcda/util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace lcda::util {

namespace {

int waitpid_retry(pid_t pid, int* status, int flags) {
  for (;;) {
    const pid_t r = ::waitpid(pid, status, flags);
    if (r >= 0 || errno != EINTR) return static_cast<int>(r);
  }
}

void set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL);
  (void)::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

// A write into a pipe whose reader died raises SIGPIPE, which would kill
// the coordinator; with the signal ignored the write returns EPIPE and
// write_stdin() reports the dead worker as `false`. Process-wide and
// sticky, installed once on first stdin-pipe use.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

std::string Subprocess::Result::describe() const {
  char buf[64];
  if (term_signal != 0) {
    std::snprintf(buf, sizeof(buf), "signal %d", term_signal);
  } else {
    std::snprintf(buf, sizeof(buf), "exit %d", exit_code);
  }
  return buf;
}

Subprocess::Subprocess(std::vector<std::string> argv)
    : Subprocess(std::move(argv), Options{}) {}

Subprocess::Subprocess(std::vector<std::string> argv, const Options& options) {
  if (argv.empty()) throw std::invalid_argument("Subprocess: empty argv");
  if (options.pipe_stdin) ignore_sigpipe_once();

  int err_fds[2] = {-1, -1};
  int out_fds[2] = {-1, -1};
  int in_fds[2] = {-1, -1};
  auto fail = [&](const char* what) {
    const int saved = errno;
    for (int* p : {err_fds, out_fds, in_fds}) {
      if (p[0] >= 0) ::close(p[0]);
      if (p[1] >= 0) ::close(p[1]);
    }
    throw std::runtime_error(std::string("Subprocess: ") + what + ": " +
                             ::strerror(saved));
  };
  if (::pipe(err_fds) != 0) fail("pipe");
  if (options.pipe_stdout && ::pipe(out_fds) != 0) fail("pipe");
  if (options.pipe_stdin && ::pipe(in_fds) != 0) fail("pipe");

  const pid_t pid = ::fork();
  if (pid < 0) fail("fork");

  if (pid == 0) {
    // Child: wire up its ends and close the parent's. Only
    // async-signal-safe calls between fork and exec.
    ::close(err_fds[0]);
    ::dup2(err_fds[1], STDERR_FILENO);
    if (err_fds[1] != STDERR_FILENO) ::close(err_fds[1]);
    if (out_fds[1] >= 0) {
      ::close(out_fds[0]);
      ::dup2(out_fds[1], STDOUT_FILENO);
      if (out_fds[1] != STDOUT_FILENO) ::close(out_fds[1]);
    }
    if (in_fds[0] >= 0) {
      ::close(in_fds[1]);
      ::dup2(in_fds[0], STDIN_FILENO);
      if (in_fds[0] != STDIN_FILENO) ::close(in_fds[0]);
    }

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& arg : argv) cargv.push_back(arg.data());
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());

    // Exec failed: report through the (now redirected) stderr and use the
    // shell's 127 so the parent can tell "no such program" from a crash.
    const char* msg = "Subprocess: exec failed: ";
    (void)!::write(STDERR_FILENO, msg, ::strlen(msg));
    (void)!::write(STDERR_FILENO, cargv[0], ::strlen(cargv[0]));
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  // Parent. Every retained end is non-blocking: reads drain what is
  // available without stalling the coordinator's poll loop (wait() blocks
  // in poll() instead of in read()) and stdin writes spill to
  // stdin_pending_ instead of blocking on a full pipe.
  ::close(err_fds[1]);
  set_nonblocking(err_fds[0]);
  pid_ = pid;
  stderr_fd_ = err_fds[0];
  if (options.pipe_stdout) {
    ::close(out_fds[1]);
    set_nonblocking(out_fds[0]);
    stdout_fd_ = out_fds[0];
  }
  if (options.pipe_stdin) {
    ::close(in_fds[0]);
    set_nonblocking(in_fds[1]);
    stdin_fd_ = in_fds[1];
  }
}

Subprocess::~Subprocess() {
  if (waited_ || pid_ < 0) return;
  (void)stop(kDestructGraceMs);
}

bool Subprocess::drain_available() {
  if (stderr_eof_ || stderr_fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(stderr_fd_, buf, sizeof(buf));
    if (n > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    // EOF (or an unrecoverable error): no more stderr will arrive.
    stderr_eof_ = true;
    close_if_open(stderr_fd_);
    return false;
  }
}

bool Subprocess::drain_stdout_available() {
  if (stdout_eof_ || stdout_fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(stdout_fd_, buf, sizeof(buf));
    if (n > 0) {
      stdout_buffer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    stdout_eof_ = true;
    close_if_open(stdout_fd_);
    return false;
  }
}

bool Subprocess::flush_stdin() {
  if (stdin_broken_) return false;
  if (stdin_fd_ < 0) return stdin_pending_.empty();
  std::size_t off = 0;
  while (off < stdin_pending_.size()) {
    const ssize_t n = ::write(stdin_fd_, stdin_pending_.data() + off,
                              stdin_pending_.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EPIPE (reader gone) or an unrecoverable error: the channel is dead.
    stdin_broken_ = true;
    close_if_open(stdin_fd_);
    stdin_pending_.clear();
    return false;
  }
  stdin_pending_.erase(0, off);
  return true;
}

bool Subprocess::write_stdin(std::string_view data) {
  if (stdin_broken_) return false;
  if (stdin_fd_ < 0) {
    throw std::logic_error("Subprocess: write_stdin without pipe_stdin");
  }
  stdin_pending_.append(data.data(), data.size());
  return flush_stdin();
}

void Subprocess::close_stdin() {
  (void)flush_stdin();
  stdin_pending_.clear();
  close_if_open(stdin_fd_);
}

std::string Subprocess::read_stdout() {
  if (stdout_fd_ < 0 && !stdout_eof_ && stdout_buffer_.empty()) {
    throw std::logic_error("Subprocess: read_stdout without pipe_stdout");
  }
  (void)flush_stdin();
  (void)drain_stdout_available();
  std::string out = std::move(stdout_buffer_);
  stdout_buffer_.clear();
  return out;
}

std::string Subprocess::take_stderr() {
  (void)drain_available();
  std::string out = std::move(buffer_);
  buffer_.clear();
  return out;
}

void Subprocess::close_parent_fds() {
  close_if_open(stderr_fd_);
  close_if_open(stdout_fd_);
  close_if_open(stdin_fd_);
  stderr_eof_ = true;
  stdout_eof_ = true;
}

Subprocess::Result Subprocess::reap() {
  waited_ = true;
  Result result;
  result.stderr_output = std::move(buffer_);
  buffer_.clear();

  int status = 0;
  if (waitpid_retry(pid_, &status, 0) < 0) {
    throw std::runtime_error(std::string("Subprocess: waitpid: ") +
                             ::strerror(errno));
  }
  close_parent_fds();
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = -1;
    result.term_signal = WTERMSIG(status);
  }
  result_ = result;
  return result;
}

Subprocess::Result Subprocess::wait() {
  if (waited_) throw std::logic_error("Subprocess: wait() called twice");

  // Block until both capture pipes report EOF — the child (and any
  // inheritors of its streams) are gone — then reap.
  for (;;) {
    const bool err_open = drain_available();
    const bool out_open = drain_stdout_available();
    if (!err_open && !out_open) break;
    struct pollfd pfds[2];
    nfds_t n = 0;
    if (err_open) pfds[n++] = {stderr_fd_, POLLIN, 0};
    if (out_open) pfds[n++] = {stdout_fd_, POLLIN, 0};
    (void)::poll(pfds, n, -1);
  }
  return reap();
}

std::optional<Subprocess::Result> Subprocess::try_wait() {
  if (waited_) return result_;  // already reaped: idempotent
  (void)flush_stdin();
  (void)drain_available();
  (void)drain_stdout_available();
  int status = 0;
  const int r = waitpid_retry(pid_, &status, WNOHANG);
  if (r == 0) return std::nullopt;  // still running
  if (r < 0) {
    throw std::runtime_error(std::string("Subprocess: waitpid: ") +
                             ::strerror(errno));
  }
  // Exited: the pipes can only hold already-buffered bytes now; drain to
  // EOF (a still-open descendant holding a write end would report
  // EAGAIN — accept what we have rather than block a poll loop).
  (void)drain_available();
  (void)drain_stdout_available();
  waited_ = true;
  Result result;
  result.stderr_output = std::move(buffer_);
  buffer_.clear();
  close_parent_fds();
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = -1;
    result.term_signal = WTERMSIG(status);
  }
  result_ = result;
  return result;
}

Subprocess::Result Subprocess::stop(int grace_ms) {
  if (waited_) return *result_;  // already reaped: nothing left to stop
  ::kill(pid_, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms < 0 ? 0 : grace_ms);
  for (;;) {
    if (auto result = try_wait()) return *result;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // The grace window expired: the child ignored (or blocked) SIGTERM.
  ::kill(pid_, SIGKILL);
  (void)drain_available();
  (void)drain_stdout_available();
  return reap();
}

std::vector<int> Subprocess::poll_fds() const {
  std::vector<int> fds;
  if (!stderr_eof_ && stderr_fd_ >= 0) fds.push_back(stderr_fd_);
  if (!stdout_eof_ && stdout_fd_ >= 0) fds.push_back(stdout_fd_);
  return fds;
}

bool Subprocess::wait_any_readable(const std::vector<int>& fds,
                                   int timeout_ms) {
  if (timeout_ms < 0) timeout_ms = 0;
  if (fds.empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
    return false;
  }
  std::vector<struct pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
  }
  for (;;) {
    const int r =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    return r > 0;
  }
}

Subprocess::Result Subprocess::run(std::vector<std::string> argv) {
  Subprocess child(std::move(argv));
  return child.wait();
}

std::string self_executable_path(const char* argv0) {
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !exe.empty()) return exe.string();
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

}  // namespace lcda::util
