#include "lcda/util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <thread>

namespace lcda::util {

namespace {

int waitpid_retry(pid_t pid, int* status, int flags) {
  for (;;) {
    const pid_t r = ::waitpid(pid, status, flags);
    if (r >= 0 || errno != EINTR) return static_cast<int>(r);
  }
}

}  // namespace

std::string Subprocess::Result::describe() const {
  char buf[64];
  if (term_signal != 0) {
    std::snprintf(buf, sizeof(buf), "signal %d", term_signal);
  } else {
    std::snprintf(buf, sizeof(buf), "exit %d", exit_code);
  }
  return buf;
}

Subprocess::Subprocess(std::vector<std::string> argv) {
  if (argv.empty()) throw std::invalid_argument("Subprocess: empty argv");

  int fds[2];
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("Subprocess: pipe: ") +
                             ::strerror(errno));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error(std::string("Subprocess: fork: ") +
                             ::strerror(errno));
  }

  if (pid == 0) {
    // Child: stderr goes to the pipe; the read end closes so EOF tracks
    // child exit. Only async-signal-safe calls between fork and exec.
    ::close(fds[0]);
    ::dup2(fds[1], STDERR_FILENO);
    if (fds[1] != STDERR_FILENO) ::close(fds[1]);

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& arg : argv) cargv.push_back(arg.data());
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());

    // Exec failed: report through the (now redirected) stderr and use the
    // shell's 127 so the parent can tell "no such program" from a crash.
    const char* msg = "Subprocess: exec failed: ";
    (void)!::write(STDERR_FILENO, msg, ::strlen(msg));
    (void)!::write(STDERR_FILENO, cargv[0], ::strlen(cargv[0]));
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  // Parent. The read end is non-blocking so try_wait() can drain whatever
  // is available without stalling the coordinator's poll loop; wait()
  // blocks in poll() instead of in read().
  ::close(fds[1]);
  const int fl = ::fcntl(fds[0], F_GETFL);
  (void)::fcntl(fds[0], F_SETFL, fl | O_NONBLOCK);
  pid_ = pid;
  stderr_fd_ = fds[0];
}

Subprocess::~Subprocess() {
  if (waited_ || pid_ < 0) return;
  (void)stop(kDestructGraceMs);
}

bool Subprocess::drain_available() {
  if (stderr_eof_ || stderr_fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(stderr_fd_, buf, sizeof(buf));
    if (n > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    // EOF (or an unrecoverable error): no more stderr will arrive.
    stderr_eof_ = true;
    ::close(stderr_fd_);
    stderr_fd_ = -1;
    return false;
  }
}

Subprocess::Result Subprocess::reap() {
  waited_ = true;
  Result result;
  result.stderr_output = std::move(buffer_);
  buffer_.clear();

  int status = 0;
  if (waitpid_retry(pid_, &status, 0) < 0) {
    throw std::runtime_error(std::string("Subprocess: waitpid: ") +
                             ::strerror(errno));
  }
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = -1;
    result.term_signal = WTERMSIG(status);
  }
  result_ = result;
  return result;
}

Subprocess::Result Subprocess::wait() {
  if (waited_) throw std::logic_error("Subprocess: wait() called twice");

  // Block until the pipe reports EOF — the child (and any inheritors of
  // its stderr) are gone — then reap.
  while (!stderr_eof_) {
    if (!drain_available()) break;
    struct pollfd pfd{stderr_fd_, POLLIN, 0};
    (void)::poll(&pfd, 1, -1);
  }
  return reap();
}

std::optional<Subprocess::Result> Subprocess::try_wait() {
  if (waited_) return result_;  // already reaped: idempotent
  (void)drain_available();
  int status = 0;
  const int r = waitpid_retry(pid_, &status, WNOHANG);
  if (r == 0) return std::nullopt;  // still running
  if (r < 0) {
    throw std::runtime_error(std::string("Subprocess: waitpid: ") +
                             ::strerror(errno));
  }
  // Exited: the pipe can only hold already-buffered bytes now; drain to
  // EOF (a still-open descendant holding the write end would report
  // EAGAIN — accept what we have rather than block a poll loop).
  (void)drain_available();
  waited_ = true;
  Result result;
  result.stderr_output = std::move(buffer_);
  buffer_.clear();
  if (stderr_fd_ >= 0) {
    ::close(stderr_fd_);
    stderr_fd_ = -1;
    stderr_eof_ = true;
  }
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = -1;
    result.term_signal = WTERMSIG(status);
  }
  result_ = result;
  return result;
}

Subprocess::Result Subprocess::stop(int grace_ms) {
  if (waited_) return *result_;  // already reaped: nothing left to stop
  ::kill(pid_, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms < 0 ? 0 : grace_ms);
  for (;;) {
    if (auto result = try_wait()) return *result;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // The grace window expired: the child ignored (or blocked) SIGTERM.
  ::kill(pid_, SIGKILL);
  (void)drain_available();
  return reap();
}

Subprocess::Result Subprocess::run(std::vector<std::string> argv) {
  Subprocess child(std::move(argv));
  return child.wait();
}

std::string self_executable_path(const char* argv0) {
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !exe.empty()) return exe.string();
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

}  // namespace lcda::util
