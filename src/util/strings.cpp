#include "lcda/util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace lcda::util {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool contains_icase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return lower(c); });
  return out;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::vector<long long> extract_ints(std::string_view s) {
  std::vector<long long> out;
  std::size_t i = 0;
  while (i < s.size()) {
    const bool neg = s[i] == '-' && i + 1 < s.size() &&
                     std::isdigit(static_cast<unsigned char>(s[i + 1]));
    if (neg || std::isdigit(static_cast<unsigned char>(s[i]))) {
      std::size_t j = i + (neg ? 1 : 0);
      long long value = 0;
      while (j < s.size() && std::isdigit(static_cast<unsigned char>(s[j]))) {
        value = value * 10 + (s[j] - '0');
        ++j;
      }
      out.push_back(neg ? -value : value);
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      return out;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
}

std::string hex_u64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace lcda::util
