#include "lcda/util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace lcda::util {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error) *error = what;
}

}  // namespace

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile MmapFile::open(const std::string& path, std::string* error) {
  set_error(error, "");
  MmapFile file;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    set_error(error, path + ": " + std::strerror(errno));
    return file;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    set_error(error, path + ": fstat: " + std::strerror(errno));
    ::close(fd);
    return file;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return file;  // empty mapping, no error
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file contents alive
  if (addr == MAP_FAILED) {
    set_error(error, path + ": mmap: " + std::strerror(errno));
    return file;
  }
  file.data_ = static_cast<const std::uint8_t*>(addr);
  file.size_ = size;
  return file;
}

}  // namespace lcda::util
