#include "lcda/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lcda::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::sem() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double Ema::update(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = decay_ * value_ + (1.0 - decay_) * x;
  }
  return value_;
}

}  // namespace lcda::util
