#include "lcda/util/json_lite.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lcda::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<ObjectRep>();
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<ArrayRep>();
  return j;
}

bool Json::is_object() const {
  return std::holds_alternative<std::shared_ptr<ObjectRep>>(value_);
}

bool Json::is_array() const {
  return std::holds_alternative<std::shared_ptr<ArrayRep>>(value_);
}

Json& Json::operator[](const std::string& key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    value_ = std::make_shared<ObjectRep>();
  }
  auto* rep = std::get_if<std::shared_ptr<ObjectRep>>(&value_);
  if (!rep) throw std::logic_error("Json::operator[]: not an object");
  for (auto& [k, v] : (*rep)->items) {
    if (k == key) return v;
  }
  (*rep)->items.emplace_back(key, Json());
  return (*rep)->items.back().second;
}

void Json::push_back(Json v) {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    value_ = std::make_shared<ArrayRep>();
  }
  auto* rep = std::get_if<std::shared_ptr<ArrayRep>>(&value_);
  if (!rep) throw std::logic_error("Json::push_back: not an array");
  (*rep)->items.push_back(std::move(v));
}

namespace {
void append_number(std::string& out, double d) {
  if (std::isfinite(d)) {
    // Integers print without a decimal point.
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      char buf[32];
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                     static_cast<long long>(d));
      (void)ec;
      out.append(buf, ptr);
    } else {
      char buf[64];
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d,
                                     std::chars_format::general, 12);
      (void)ec;
      out.append(buf, ptr);
    }
  } else {
    out += "null";  // JSON has no NaN/Inf
  }
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent >= 0 ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ') : "";
  const std::string pad_close = indent >= 0 ? std::string(static_cast<std::size_t>(indent) * depth, ' ') : "";
  const char* nl = indent >= 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (auto* d = std::get_if<double>(&value_)) {
    append_number(out, *d);
  } else if (auto* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += json_escape(*s);
    out += '"';
  } else if (auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_)) {
    if ((*obj)->items.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    bool first = true;
    for (const auto& [k, v] : (*obj)->items) {
      if (!first) {
        out += ',';
        out += nl;
      }
      first = false;
      out += pad;
      out += '"';
      out += json_escape(k);
      out += indent >= 0 ? "\": " : "\":";
      v.dump_to(out, indent, depth + 1);
    }
    out += nl;
    out += pad_close;
    out += '}';
  } else if (auto* arr = std::get_if<std::shared_ptr<ArrayRep>>(&value_)) {
    if ((*arr)->items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    bool first = true;
    for (const auto& v : (*arr)->items) {
      if (!first) {
        out += ',';
        out += nl;
      }
      first = false;
      out += pad;
      v.dump_to(out, indent, depth + 1);
    }
    out += nl;
    out += pad_close;
    out += ']';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace lcda::util
