#include "lcda/util/json_lite.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lcda::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<ObjectRep>();
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<ArrayRep>();
  return j;
}

bool Json::is_null() const {
  return std::holds_alternative<std::nullptr_t>(value_);
}

bool Json::is_bool() const { return std::holds_alternative<bool>(value_); }

bool Json::is_number() const { return std::holds_alternative<double>(value_); }

bool Json::is_string() const {
  return std::holds_alternative<std::string>(value_);
}

bool Json::is_object() const {
  return std::holds_alternative<std::shared_ptr<ObjectRep>>(value_);
}

bool Json::is_array() const {
  return std::holds_alternative<std::shared_ptr<ArrayRep>>(value_);
}

bool Json::as_bool() const {
  if (auto* b = std::get_if<bool>(&value_)) return *b;
  throw std::logic_error("Json::as_bool: not a bool");
}

double Json::as_double() const {
  if (auto* d = std::get_if<double>(&value_)) return *d;
  throw std::logic_error("Json::as_double: not a number");
}

long long Json::as_int() const {
  const double d = as_double();
  if (d != std::floor(d) || std::abs(d) >= 9.2e18) {
    throw std::logic_error("Json::as_int: not an integral number");
  }
  return static_cast<long long>(d);
}

const std::string& Json::as_string() const {
  if (auto* s = std::get_if<std::string>(&value_)) return *s;
  throw std::logic_error("Json::as_string: not a string");
}

bool Json::contains(const std::string& key) const {
  auto* rep = std::get_if<std::shared_ptr<ObjectRep>>(&value_);
  if (!rep) return false;
  for (const auto& [k, v] : (*rep)->items) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  auto* rep = std::get_if<std::shared_ptr<ObjectRep>>(&value_);
  if (!rep) throw std::logic_error("Json::at: not an object");
  for (const auto& [k, v] : (*rep)->items) {
    if (k == key) return v;
  }
  throw std::logic_error("Json::at: missing key \"" + key + "\"");
}

const Json& Json::at(std::size_t index) const {
  auto* rep = std::get_if<std::shared_ptr<ArrayRep>>(&value_);
  if (!rep) throw std::logic_error("Json::at: not an array");
  if (index >= (*rep)->items.size()) throw std::logic_error("Json::at: index");
  return (*rep)->items[index];
}

std::size_t Json::size() const {
  if (auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_)) {
    return (*obj)->items.size();
  }
  if (auto* arr = std::get_if<std::shared_ptr<ArrayRep>>(&value_)) {
    return (*arr)->items.size();
  }
  return 0;
}

std::vector<std::pair<std::string, Json>> Json::items() const {
  if (auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_)) {
    return (*obj)->items;
  }
  return {};
}

std::vector<Json> Json::elements() const {
  if (auto* arr = std::get_if<std::shared_ptr<ArrayRep>>(&value_)) {
    return (*arr)->items;
  }
  return {};
}

bool Json::operator==(const Json& other) const {
  if (value_.index() != other.value_.index()) return false;
  if (auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_)) {
    return (*obj)->items ==
           (*std::get_if<std::shared_ptr<ObjectRep>>(&other.value_))->items;
  }
  if (auto* arr = std::get_if<std::shared_ptr<ArrayRep>>(&value_)) {
    return (*arr)->items ==
           (*std::get_if<std::shared_ptr<ArrayRep>>(&other.value_))->items;
  }
  return value_ == other.value_;
}

Json& Json::operator[](const std::string& key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    value_ = std::make_shared<ObjectRep>();
  }
  auto* rep = std::get_if<std::shared_ptr<ObjectRep>>(&value_);
  if (!rep) throw std::logic_error("Json::operator[]: not an object");
  for (auto& [k, v] : (*rep)->items) {
    if (k == key) return v;
  }
  (*rep)->items.emplace_back(key, Json());
  return (*rep)->items.back().second;
}

void Json::push_back(Json v) {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    value_ = std::make_shared<ArrayRep>();
  }
  auto* rep = std::get_if<std::shared_ptr<ArrayRep>>(&value_);
  if (!rep) throw std::logic_error("Json::push_back: not an array");
  (*rep)->items.push_back(std::move(v));
}

namespace {
void append_number(std::string& out, double d) {
  if (std::isfinite(d)) {
    // Integers print without a decimal point.
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      char buf[32];
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                     static_cast<long long>(d));
      (void)ec;
      out.append(buf, ptr);
    } else {
      // Shortest representation that parses back to the same double — the
      // exactness the persistent cache and golden traces depend on.
      char buf[64];
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
      (void)ec;
      out.append(buf, ptr);
    }
  } else {
    out += "null";  // JSON has no NaN/Inf
  }
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent >= 0 ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ') : "";
  const std::string pad_close = indent >= 0 ? std::string(static_cast<std::size_t>(indent) * depth, ' ') : "";
  const char* nl = indent >= 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (auto* d = std::get_if<double>(&value_)) {
    append_number(out, *d);
  } else if (auto* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += json_escape(*s);
    out += '"';
  } else if (auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_)) {
    if ((*obj)->items.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    bool first = true;
    for (const auto& [k, v] : (*obj)->items) {
      if (!first) {
        out += ',';
        out += nl;
      }
      first = false;
      out += pad;
      out += '"';
      out += json_escape(k);
      out += indent >= 0 ? "\": " : "\":";
      v.dump_to(out, indent, depth + 1);
    }
    out += nl;
    out += pad_close;
    out += '}';
  } else if (auto* arr = std::get_if<std::shared_ptr<ArrayRep>>(&value_)) {
    if ((*arr)->items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    bool first = true;
    for (const auto& v : (*arr)->items) {
      if (!first) {
        out += ',';
        out += nl;
      }
      first = false;
      out += pad;
      v.dump_to(out, indent, depth + 1);
    }
    out += nl;
    out += pad_close;
    out += ']';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json(nullptr);
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      if (obj.contains(key)) fail("duplicate key \"" + key + "\"");
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u for control characters; decode the
          // Latin-1 range and reject the rest rather than mis-encode.
          if (code > 0xff) fail("unsupported \\u escape > 0xff");
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace lcda::util
