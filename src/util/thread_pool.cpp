#include "lcda/util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace lcda::util {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  {
    std::unique_lock lock(mutex_);
    for (auto& job : jobs) queue_.push_back(std::move(job));
    in_flight_ += jobs.size();
  }
  if (jobs.size() == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  // The calling thread drains the same counter as the workers, so a busy
  // pool can never deadlock a nested-free caller. Only size()-1 drain
  // tasks are submitted: driver + workers == size(), keeping the
  // concurrency at exactly the configured parallelism.
  auto drain = [next, n, &body] {
    for (std::size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
      body(i);
    }
  };
  const std::size_t tasks =
      std::min(n, static_cast<std::size_t>(size() > 0 ? size() - 1 : 0));
  submit_batch(std::vector<std::function<void()>>(tasks, drain));
  try {
    drain();
  } catch (...) {
    wait_idle();  // let workers finish before unwinding `body`
    throw;
  }
  wait_idle();
}

std::size_t ThreadPool::chunks_for(std::size_t items, int workers) {
  if (items == 0) return 0;
  const auto cap = static_cast<std::size_t>(std::max(workers, 1));
  return std::min(items, cap);
}

ChunkRange chunk_range(std::size_t n, std::size_t chunks, std::size_t chunk) {
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  ChunkRange range;
  range.begin = chunk * base + std::min(chunk, extra);
  range.end = range.begin + base + (chunk < extra ? 1 : 0);
  return range;
}

int ThreadPool::resolve_parallelism(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for_each_index(ThreadPool* pool, std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->parallel_for(n, body);
}

}  // namespace lcda::util
