#include "lcda/noise/variation.h"

#include <stdexcept>

namespace lcda::noise {

VariationModel::VariationModel(double weight_sigma) : sigma_(weight_sigma) {
  if (weight_sigma < 0.0) {
    throw std::invalid_argument("VariationModel: sigma must be non-negative");
  }
}

VariationModel::VariationModel(const cim::HardwareConfig& hw)
    : VariationModel(cim::effective_weight_sigma(cim::device_model(hw.device),
                                                 hw.bits_per_cell,
                                                 hw.cells_per_weight())) {}

void VariationModel::perturb_span(std::span<float> weights, float range,
                                  util::Rng& rng) const {
  if (sigma_ == 0.0 || range == 0.0f) return;
  const double scale = sigma_ * range;
  for (float& w : weights) {
    w += static_cast<float>(rng.normal(0.0, scale));
  }
}

void VariationModel::perturb_params(std::vector<nn::Param*>& params,
                                    util::Rng& rng) const {
  if (sigma_ == 0.0) return;
  for (nn::Param* p : params) {
    const float range = p->value.max_abs();
    perturb_span(p->value.data(), range, rng);
  }
}

nn::WeightPerturber VariationModel::as_perturber() const {
  const VariationModel copy = *this;
  return [copy](std::vector<nn::Param*>& params, util::Rng& rng) {
    copy.perturb_params(params, rng);
  };
}

}  // namespace lcda::noise
