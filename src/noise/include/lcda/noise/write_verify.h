#pragma once

#include <span>
#include <vector>

#include "lcda/cim/device.h"
#include "lcda/nn/trainer.h"
#include "lcda/noise/variation.h"

namespace lcda::noise {

/// Selective write-verify (SWIM, paper ref [5]: Yan, Hu, Shi, DAC'22).
///
/// Programming an NVM cell with write-verify — iteratively write, read
/// back, correct — shrinks its conductance error by an order of magnitude
/// but costs many write pulses. Verifying *every* device is prohibitively
/// slow; SWIM's observation is that verifying only the most sensitive
/// fraction of the weights captures most of the accuracy benefit.
///
/// This module implements that scheme on top of VariationModel:
///  * pick the `fraction` most sensitive weights per tensor (sensitivity =
///    |w|, the first-order proxy: large weights move outputs most);
///  * verified weights are programmed at `verified_sigma_scale` * sigma,
///    the rest at the raw device sigma;
///  * programming_cost() accounts the extra write pulses.
class SelectiveWriteVerify {
 public:
  struct Options {
    /// Fraction of weights (per tensor) that get write-verified, in [0,1].
    double fraction = 0.1;
    /// Residual error of a verified cell relative to the raw sigma.
    double verified_sigma_scale = 0.1;
    /// Mean write pulses needed per verified device (iterative correction).
    double pulses_per_verified_device = 8.0;
  };

  SelectiveWriteVerify(VariationModel variation, Options opts);

  [[nodiscard]] const Options& options() const { return opts_; }

  /// Perturbs parameters like VariationModel::perturb_params, but with the
  /// per-tensor top-`fraction` weights (by |w|) drawn at the verified
  /// (reduced) sigma.
  void perturb_params(std::vector<nn::Param*>& params, util::Rng& rng) const;

  /// Adapter for noise-injection training / Monte-Carlo evaluation.
  [[nodiscard]] nn::WeightPerturber as_perturber() const;

  /// Programming cost of one chip write for `total_weights` weights stored
  /// on `cells_per_weight` cells each.
  struct ProgrammingCost {
    long long total_devices = 0;
    long long verified_devices = 0;
    double write_pulses = 0.0;
    double energy_pj = 0.0;
  };
  [[nodiscard]] ProgrammingCost programming_cost(long long total_weights,
                                                 int cells_per_weight,
                                                 const cim::DeviceModel& dev) const;

 private:
  VariationModel variation_;
  Options opts_;
};

/// Magnitude threshold below which a weight is NOT verified, given the
/// desired fraction (exposed for tests): the (1-fraction) quantile of |w|.
[[nodiscard]] float verify_threshold(std::span<const float> weights,
                                     double fraction);

/// Population-level sigma scale of selective write-verify: a `fraction` of
/// weights programmed at `verified_sigma_scale` * sigma and the rest at the
/// raw sigma compose (as a variance mixture across the weight population)
/// to sqrt((1 - f) + f * s^2) times the raw sigma. This is the analytical
/// reduction the surrogate evaluator applies when a scenario enables
/// write-verify; fraction 0 returns exactly 1.0.
[[nodiscard]] double effective_sigma_scale(double fraction,
                                           double verified_sigma_scale);

}  // namespace lcda::noise
