#pragma once

#include <functional>

#include "lcda/data/synthetic_cifar.h"
#include "lcda/nn/sequential.h"
#include "lcda/noise/variation.h"
#include "lcda/util/rng.h"
#include "lcda/util/stats.h"

namespace lcda::noise {

/// Result of a Monte-Carlo robustness evaluation (paper Sec. III-C, [16]).
struct MonteCarloResult {
  util::OnlineStats stats;
  [[nodiscard]] double mean() const { return stats.mean(); }
  [[nodiscard]] double stddev() const { return stats.stddev(); }
  [[nodiscard]] double worst() const { return stats.min(); }
  [[nodiscard]] double best() const { return stats.max(); }
  [[nodiscard]] std::size_t samples() const { return stats.count(); }
};

/// Generic Monte-Carlo driver: draws `samples` evaluations of `sample_fn`,
/// each receiving a forked RNG so sample count does not perturb other
/// consumers of the parent stream.
[[nodiscard]] MonteCarloResult monte_carlo(
    const std::function<double(util::Rng&)>& sample_fn, int samples,
    util::Rng& rng);

/// Monte-Carlo accuracy of a trained network under device variation: each
/// sample programs one "chip instance" (fresh weight perturbation draw) and
/// measures test accuracy; weights are restored between samples.
[[nodiscard]] MonteCarloResult mc_noisy_accuracy(nn::Sequential& net,
                                                 const data::Dataset& test,
                                                 const VariationModel& variation,
                                                 int samples, util::Rng& rng);

}  // namespace lcda::noise
