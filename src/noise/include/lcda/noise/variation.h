#pragma once

#include <span>
#include <vector>

#include "lcda/cim/config.h"
#include "lcda/nn/layers.h"
#include "lcda/nn/trainer.h"
#include "lcda/util/rng.h"

namespace lcda::noise {

/// NVM conductance-variation model (paper Sec. II-B, refs [13], [16]).
///
/// When a DNN weight is programmed into NVM cells, the realized conductance
/// deviates from the target; we model the composed per-weight error as
/// additive Gaussian noise relative to the layer's weight range:
///     w' = w + sigma * range(layer) * N(0, 1)
/// with sigma the effective per-weight relative error of the hardware
/// (device programming + temporal variation across the cells of one weight,
/// see cim::effective_weight_sigma). Errors are independent across devices,
/// matching the paper's "non-idealities ... uncorrelated amongst the NVM
/// devices" assumption.
class VariationModel {
 public:
  /// Directly from an effective weight sigma.
  explicit VariationModel(double weight_sigma);

  /// From a hardware configuration (derives the sigma from its device model
  /// and cell split).
  explicit VariationModel(const cim::HardwareConfig& hw);

  [[nodiscard]] double weight_sigma() const { return sigma_; }

  /// Perturbs a flat weight span in place; `range` is the representable
  /// weight magnitude of that tensor (per-tensor quantization range).
  void perturb_span(std::span<float> weights, float range, util::Rng& rng) const;

  /// Perturbs every parameter of a network in place (bias tensors included —
  /// they live in the same arrays). Range is taken per-tensor as max|w|.
  void perturb_params(std::vector<nn::Param*>& params, util::Rng& rng) const;

  /// Adapter usable as nn::WeightPerturber for noise-injection training.
  [[nodiscard]] nn::WeightPerturber as_perturber() const;

 private:
  double sigma_;
};

}  // namespace lcda::noise
