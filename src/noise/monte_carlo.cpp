#include "lcda/noise/monte_carlo.h"

#include <stdexcept>

#include "lcda/nn/trainer.h"

namespace lcda::noise {

MonteCarloResult monte_carlo(const std::function<double(util::Rng&)>& sample_fn,
                             int samples, util::Rng& rng) {
  if (samples <= 0) throw std::invalid_argument("monte_carlo: samples <= 0");
  if (!sample_fn) throw std::invalid_argument("monte_carlo: null sample_fn");
  MonteCarloResult result;
  for (int i = 0; i < samples; ++i) {
    util::Rng sample_rng = rng.fork();
    result.stats.add(sample_fn(sample_rng));
  }
  return result;
}

MonteCarloResult mc_noisy_accuracy(nn::Sequential& net, const data::Dataset& test,
                                   const VariationModel& variation, int samples,
                                   util::Rng& rng) {
  const nn::WeightPerturber perturber = variation.as_perturber();
  return monte_carlo(
      [&](util::Rng& sample_rng) {
        return nn::evaluate_noisy(net, test, perturber, sample_rng);
      },
      samples, rng);
}

}  // namespace lcda::noise
