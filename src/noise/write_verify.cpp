#include "lcda/noise/write_verify.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lcda::noise {

float verify_threshold(std::span<const float> weights, double fraction) {
  if (weights.empty() || fraction <= 0.0) {
    return std::numeric_limits<float>::infinity();  // verify nothing
  }
  if (fraction >= 1.0) return -1.0f;  // verify everything (|w| >= 0 > -1)
  std::vector<float> mags(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) mags[i] = std::abs(weights[i]);
  const auto k = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(mags.size()) - 1.0,
                       (1.0 - fraction) * static_cast<double>(mags.size())));
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k),
                   mags.end());
  return mags[k];
}

SelectiveWriteVerify::SelectiveWriteVerify(VariationModel variation, Options opts)
    : variation_(variation), opts_(opts) {
  if (opts.fraction < 0.0 || opts.fraction > 1.0) {
    throw std::invalid_argument("SelectiveWriteVerify: fraction out of [0,1]");
  }
  if (opts.verified_sigma_scale < 0.0 || opts.verified_sigma_scale > 1.0) {
    throw std::invalid_argument(
        "SelectiveWriteVerify: verified_sigma_scale out of [0,1]");
  }
  if (opts.pulses_per_verified_device < 1.0) {
    throw std::invalid_argument(
        "SelectiveWriteVerify: pulses_per_verified_device < 1");
  }
}

void SelectiveWriteVerify::perturb_params(std::vector<nn::Param*>& params,
                                          util::Rng& rng) const {
  const double sigma = variation_.weight_sigma();
  if (sigma == 0.0) return;
  for (nn::Param* p : params) {
    auto w = p->value.data();
    const float range = p->value.max_abs();
    if (range == 0.0f) continue;
    const float threshold = verify_threshold(w, opts_.fraction);
    const double raw_scale = sigma * range;
    const double verified_scale = raw_scale * opts_.verified_sigma_scale;
    for (float& x : w) {
      const double scale =
          std::abs(x) >= threshold ? verified_scale : raw_scale;
      x += static_cast<float>(rng.normal(0.0, scale));
    }
  }
}

nn::WeightPerturber SelectiveWriteVerify::as_perturber() const {
  const SelectiveWriteVerify copy = *this;
  return [copy](std::vector<nn::Param*>& params, util::Rng& rng) {
    copy.perturb_params(params, rng);
  };
}

SelectiveWriteVerify::ProgrammingCost SelectiveWriteVerify::programming_cost(
    long long total_weights, int cells_per_weight,
    const cim::DeviceModel& dev) const {
  if (total_weights < 0 || cells_per_weight <= 0) {
    throw std::invalid_argument("programming_cost: bad arguments");
  }
  ProgrammingCost cost;
  cost.total_devices = total_weights * cells_per_weight;
  cost.verified_devices = static_cast<long long>(
      std::llround(opts_.fraction * static_cast<double>(cost.total_devices)));
  // Unverified devices: one pulse. Verified: iterative write-verify.
  cost.write_pulses =
      static_cast<double>(cost.total_devices - cost.verified_devices) +
      static_cast<double>(cost.verified_devices) *
          opts_.pulses_per_verified_device;
  cost.energy_pj = cost.write_pulses * dev.write_energy_pj;
  return cost;
}

double effective_sigma_scale(double fraction, double verified_sigma_scale) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("effective_sigma_scale: fraction not in [0,1]");
  }
  if (verified_sigma_scale < 0.0) {
    throw std::invalid_argument("effective_sigma_scale: negative sigma scale");
  }
  if (fraction == 0.0) return 1.0;
  return std::sqrt((1.0 - fraction) +
                   fraction * verified_sigma_scale * verified_sigma_scale);
}

}  // namespace lcda::noise
