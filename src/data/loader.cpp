#include "lcda/data/loader.h"

#include <numeric>
#include <stdexcept>

namespace lcda::data {

DataLoader::DataLoader(const Dataset& dataset, int batch_size, bool shuffle,
                       bool augment)
    : dataset_(&dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      augment_(augment) {
  if (batch_size <= 0) throw std::invalid_argument("DataLoader: batch_size <= 0");
  if (dataset.size() == 0) throw std::invalid_argument("DataLoader: empty dataset");
  order_.resize(static_cast<std::size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), 0);
}

void DataLoader::start_epoch(util::Rng& rng) {
  cursor_ = 0;
  if (shuffle_) rng.shuffle(order_);
  if (augment_) augment_rng_ = rng.fork();
}

namespace {
void mirror_horizontal(float* img, int channels, int h, int w) {
  for (int c = 0; c < channels; ++c) {
    float* plane = img + static_cast<std::size_t>(c) * h * w;
    for (int y = 0; y < h; ++y) {
      float* row = plane + static_cast<std::size_t>(y) * w;
      for (int x = 0; x < w / 2; ++x) {
        std::swap(row[x], row[w - 1 - x]);
      }
    }
  }
}
}  // namespace

Batch DataLoader::next() {
  Batch batch;
  const auto total = order_.size();
  if (cursor_ >= total) return batch;
  const std::size_t count = std::min<std::size_t>(batch_size_, total - cursor_);

  const auto& shape = dataset_->images.shape();
  const int c = shape[1], h = shape[2], w = shape[3];
  const std::size_t img_elems = static_cast<std::size_t>(c) * h * w;

  batch.images = tensor::Tensor({static_cast<int>(count), c, h, w});
  batch.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int src = order_[cursor_ + i];
    const float* from = dataset_->images.raw() + src * img_elems;
    float* to = batch.images.raw() + i * img_elems;
    std::copy(from, from + img_elems, to);
    if (augment_ && augment_rng_.chance(0.5)) {
      mirror_horizontal(to, c, h, w);
    }
    batch.labels[i] = dataset_->labels[static_cast<std::size_t>(src)];
  }
  cursor_ += count;
  return batch;
}

int DataLoader::batches_per_epoch() const {
  return static_cast<int>((order_.size() + batch_size_ - 1) / batch_size_);
}

}  // namespace lcda::data
