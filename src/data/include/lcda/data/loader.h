#pragma once

#include <vector>

#include "lcda/data/synthetic_cifar.h"
#include "lcda/tensor/tensor.h"
#include "lcda/util/rng.h"

namespace lcda::data {

/// A single minibatch (owned copies; safe to mutate).
struct Batch {
  tensor::Tensor images;
  std::vector<int> labels;
  [[nodiscard]] int size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Minibatch iterator over a Dataset with optional shuffling.
///
/// Usage:
///   DataLoader loader(ds, 32);
///   loader.start_epoch(rng);           // reshuffles
///   while (auto b = loader.next()) { ... }
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, int batch_size, bool shuffle = true,
             bool augment = false);

  /// Resets the cursor; reshuffles when shuffling is enabled.
  void start_epoch(util::Rng& rng);

  /// Returns the next batch, or an empty batch (size 0) at epoch end.
  /// With augmentation enabled, each image is horizontally mirrored with
  /// probability 1/2 (the classic CIFAR augmentation; labels unchanged).
  [[nodiscard]] Batch next();

  [[nodiscard]] int batches_per_epoch() const;
  [[nodiscard]] int batch_size() const { return batch_size_; }

 private:
  const Dataset* dataset_;
  int batch_size_;
  bool shuffle_;
  bool augment_;
  std::vector<int> order_;
  std::size_t cursor_ = 0;
  util::Rng augment_rng_{0};
};

}  // namespace lcda::data
