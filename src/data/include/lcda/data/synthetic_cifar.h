#pragma once

#include <vector>

#include "lcda/tensor/tensor.h"
#include "lcda/util/rng.h"

namespace lcda::data {

/// A labelled image set. Images are NCHW float in roughly [-1, 1].
struct Dataset {
  tensor::Tensor images;
  std::vector<int> labels;

  [[nodiscard]] int size() const {
    return images.empty() ? 0 : images.dim(0);
  }
};

/// Options for the procedural CIFAR-10 stand-in.
///
/// The paper evaluates on CIFAR-10; this project has no dataset files, so we
/// generate a deterministic synthetic set with CIFAR's geometry (3x32x32, 10
/// classes by default). Each class is defined by a fixed spatial-frequency
/// texture and color prototype; samples add instance noise, amplitude jitter
/// and small translations, so a CNN must learn localized filters to separate
/// the classes — capacity and kernel size matter, as they do on CIFAR.
struct SyntheticCifarOptions {
  int num_classes = 10;
  int image_size = 32;
  int train_per_class = 64;
  int test_per_class = 16;
  double noise = 0.35;      ///< stddev of per-pixel instance noise
  int max_shift = 2;        ///< uniform translation in pixels (toroidal)
  std::uint64_t seed = 42;  ///< generator seed; same seed => identical data
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Builds the synthetic dataset. Fully deterministic in `opts.seed`.
[[nodiscard]] TrainTest make_synthetic_cifar(const SyntheticCifarOptions& opts);

}  // namespace lcda::data
