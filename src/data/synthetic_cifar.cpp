#include "lcda/data/synthetic_cifar.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace lcda::data {

namespace {

/// Per-class texture definition: three sinusoidal gratings per channel plus
/// a color offset. Everything is drawn once from the seeded RNG so the class
/// structure is stable across train and test splits.
struct ClassProto {
  struct Grating {
    double fx, fy, phase, amp;
  };
  std::array<std::vector<Grating>, 3> gratings;  // per channel
  std::array<double, 3> color;
};

std::vector<ClassProto> make_protos(int num_classes, util::Rng& rng) {
  std::vector<ClassProto> protos;
  protos.reserve(static_cast<std::size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    ClassProto p;
    for (int c = 0; c < 3; ++c) {
      const int n_gratings = 2 + static_cast<int>(rng.uniform_int(0, 1));
      for (int gi = 0; gi < n_gratings; ++gi) {
        ClassProto::Grating g;
        g.fx = rng.uniform(0.5, 4.0);
        g.fy = rng.uniform(0.5, 4.0);
        g.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
        g.amp = rng.uniform(0.25, 0.6);
        p.gratings[static_cast<std::size_t>(c)].push_back(g);
      }
      p.color[static_cast<std::size_t>(c)] = rng.uniform(-0.4, 0.4);
    }
    protos.push_back(std::move(p));
  }
  return protos;
}

void render_sample(const ClassProto& proto, int size, double noise, int max_shift,
                   util::Rng& rng, float* out) {
  const double amp_jitter = rng.uniform(0.8, 1.2);
  const int sx = static_cast<int>(rng.uniform_int(-max_shift, max_shift));
  const int sy = static_cast<int>(rng.uniform_int(-max_shift, max_shift));
  const double inv = 2.0 * std::numbers::pi / size;
  for (int c = 0; c < 3; ++c) {
    float* plane = out + static_cast<std::size_t>(c) * size * size;
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        // Toroidal shift keeps energy constant across samples.
        const int yy = (y + sy + size) % size;
        const int xx = (x + sx + size) % size;
        double v = proto.color[static_cast<std::size_t>(c)];
        for (const auto& g : proto.gratings[static_cast<std::size_t>(c)]) {
          v += amp_jitter * g.amp *
               std::sin(g.fx * xx * inv + g.fy * yy * inv + g.phase);
        }
        v += rng.normal(0.0, noise);
        plane[static_cast<std::size_t>(y) * size + x] =
            static_cast<float>(std::clamp(v, -1.5, 1.5));
      }
    }
  }
}

Dataset make_split(const std::vector<ClassProto>& protos, int per_class, int size,
                   double noise, int max_shift, util::Rng& rng) {
  const int num_classes = static_cast<int>(protos.size());
  const int n = per_class * num_classes;
  Dataset ds;
  ds.images = tensor::Tensor({n, 3, size, size});
  ds.labels.resize(static_cast<std::size_t>(n));
  const std::size_t img_elems = static_cast<std::size_t>(3) * size * size;
  // Interleave classes so any prefix of the split is roughly balanced.
  int idx = 0;
  for (int rep = 0; rep < per_class; ++rep) {
    for (int k = 0; k < num_classes; ++k) {
      render_sample(protos[static_cast<std::size_t>(k)], size, noise, max_shift,
                    rng, ds.images.raw() + idx * img_elems);
      ds.labels[static_cast<std::size_t>(idx)] = k;
      ++idx;
    }
  }
  return ds;
}

}  // namespace

TrainTest make_synthetic_cifar(const SyntheticCifarOptions& opts) {
  if (opts.num_classes < 2) {
    throw std::invalid_argument("make_synthetic_cifar: need >= 2 classes");
  }
  if (opts.image_size < 8) {
    throw std::invalid_argument("make_synthetic_cifar: image_size too small");
  }
  util::Rng rng(opts.seed);
  const auto protos = make_protos(opts.num_classes, rng);
  util::Rng train_rng = rng.fork();
  util::Rng test_rng = rng.fork();
  TrainTest tt;
  tt.train = make_split(protos, opts.train_per_class, opts.image_size, opts.noise,
                        opts.max_shift, train_rng);
  tt.test = make_split(protos, opts.test_per_class, opts.image_size, opts.noise,
                       opts.max_shift, test_rng);
  return tt;
}

}  // namespace lcda::data
