#include "lcda/nn/model_builder.h"

#include <algorithm>
#include <stdexcept>

namespace lcda::nn {

namespace {
bool pools_after(const BackboneOptions& opts, int conv_index) {
  return std::find(opts.pool_after.begin(), opts.pool_after.end(), conv_index) !=
         opts.pool_after.end();
}
}  // namespace

Sequential build_backbone(const std::vector<ConvSpec>& rollout,
                          const BackboneOptions& opts, util::Rng& rng) {
  if (rollout.empty()) throw std::invalid_argument("build_backbone: empty rollout");
  Sequential net;
  int channels = opts.input_channels;
  int size = opts.input_size;
  for (std::size_t i = 0; i < rollout.size(); ++i) {
    const ConvSpec& spec = rollout[i];
    if (spec.channels <= 0 || spec.kernel <= 0 || spec.kernel % 2 == 0) {
      throw std::invalid_argument("build_backbone: bad conv spec");
    }
    net.add(std::make_unique<Conv2d>(channels, spec.channels, spec.kernel, size,
                                     size, rng));
    if (opts.batch_norm) net.add(std::make_unique<BatchNorm2d>(spec.channels));
    net.add(std::make_unique<ReLU>());
    channels = spec.channels;
    if (pools_after(opts, static_cast<int>(i))) {
      if (size % 2 != 0 || size < 2) {
        throw std::invalid_argument("build_backbone: cannot pool below 1x1");
      }
      net.add(std::make_unique<MaxPool2x2>());
      size /= 2;
    }
  }
  net.add(std::make_unique<Flatten>());
  const int features = channels * size * size;
  net.add(std::make_unique<Dense>(features, opts.hidden, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Dense>(opts.hidden, opts.num_classes, rng));
  return net;
}

std::vector<LayerShape> backbone_shapes(const std::vector<ConvSpec>& rollout,
                                        const BackboneOptions& opts) {
  if (rollout.empty()) throw std::invalid_argument("backbone_shapes: empty rollout");
  std::vector<LayerShape> shapes;
  int channels = opts.input_channels;
  int size = opts.input_size;
  for (std::size_t i = 0; i < rollout.size(); ++i) {
    const ConvSpec& spec = rollout[i];
    if (spec.channels <= 0 || spec.kernel <= 0) {
      throw std::invalid_argument("backbone_shapes: bad conv spec");
    }
    LayerShape ls;
    ls.in_channels = channels;
    ls.out_channels = spec.channels;
    ls.kernel = spec.kernel;
    ls.in_hw = size;
    ls.out_hw = size;  // stride-1 "same" convolution
    shapes.push_back(ls);
    channels = spec.channels;
    if (pools_after(opts, static_cast<int>(i))) {
      if (size < 2) throw std::invalid_argument("backbone_shapes: pool below 1x1");
      size /= 2;
    }
  }
  // FC layers as 1x1 matrices: (features -> hidden), (hidden -> classes).
  const int features = channels * size * size;
  LayerShape fc1;
  fc1.in_channels = features;
  fc1.out_channels = opts.hidden;
  fc1.is_fc = true;
  shapes.push_back(fc1);
  LayerShape fc2;
  fc2.in_channels = opts.hidden;
  fc2.out_channels = opts.num_classes;
  fc2.is_fc = true;
  shapes.push_back(fc2);
  return shapes;
}

std::uint64_t rollout_hash(const std::vector<ConvSpec>& rollout,
                           std::uint64_t seed) {
  // The key on the stack for the common case (the search spaces top out at
  // 8 conv layers); heap fallback only for exotic callers. Must hash
  // identically to the historical vector<int>{c0, k0, c1, k1, ...} form —
  // the surrogate's luck values derived from it are part of every golden
  // trace.
  constexpr std::size_t kStackInts = 32;
  const std::size_t n = rollout.size() * 2;
  if (n <= kStackInts) {
    int key[kStackInts];
    for (std::size_t i = 0; i < rollout.size(); ++i) {
      key[2 * i] = rollout[i].channels;
      key[2 * i + 1] = rollout[i].kernel;
    }
    return util::hash_ints(std::span<const int>(key, n), seed);
  }
  std::vector<int> key;
  key.reserve(n);
  for (const auto& spec : rollout) {
    key.push_back(spec.channels);
    key.push_back(spec.kernel);
  }
  return util::hash_ints(key, seed);
}

}  // namespace lcda::nn
