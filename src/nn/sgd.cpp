#include "lcda/nn/sgd.h"

namespace lcda::nn {

Sgd::Sgd(std::vector<Param*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(Tensor::zeros(p->value.shape()));
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    Tensor& v = velocity_[pi];
    auto w = p.value.data();
    auto g = p.grad.data();
    auto vel = v.data();
    const auto lr = static_cast<float>(opts_.lr);
    const auto mu = static_cast<float>(opts_.momentum);
    const auto wd = static_cast<float>(opts_.weight_decay);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float grad = g[i] + wd * w[i];
      vel[i] = mu * vel[i] - lr * grad;
      w[i] += vel[i];
    }
  }
}

}  // namespace lcda::nn
