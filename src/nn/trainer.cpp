#include "lcda/nn/trainer.h"

#include <stdexcept>

namespace lcda::nn {

namespace {

/// Snapshot/restore helper for noise-injection training.
class WeightSnapshot {
 public:
  explicit WeightSnapshot(const std::vector<Param*>& params) {
    copies_.reserve(params.size());
    for (const Param* p : params) copies_.push_back(p->value);
  }

  void restore(std::vector<Param*>& params) const {
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = copies_[i];
    }
  }

 private:
  std::vector<Tensor> copies_;
};

}  // namespace

double evaluate(Sequential& net, const data::Dataset& dataset, int batch_size) {
  net.set_training(false);
  data::DataLoader loader(dataset, batch_size, /*shuffle=*/false);
  util::Rng dummy(0);
  loader.start_epoch(dummy);
  std::size_t correct = 0, total = 0;
  while (true) {
    const data::Batch batch = loader.next();
    if (batch.size() == 0) break;
    const auto preds = net.predict(batch.images);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
    total += preds.size();
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

double evaluate_noisy(Sequential& net, const data::Dataset& dataset,
                      const WeightPerturber& perturber, util::Rng& rng,
                      int batch_size) {
  auto params = net.params();
  const WeightSnapshot snapshot(params);
  if (perturber) perturber(params, rng);
  const double acc = evaluate(net, dataset, batch_size);
  snapshot.restore(params);
  return acc;
}

TrainResult train(Sequential& net, const data::Dataset& train_set,
                  const data::Dataset& test_set, const TrainOptions& opts,
                  util::Rng& rng) {
  if (opts.epochs <= 0) throw std::invalid_argument("train: epochs <= 0");
  auto params = net.params();
  Sgd optimizer(params, opts.sgd);
  data::DataLoader loader(train_set, /*batch_size=*/32);

  TrainResult result;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    net.set_training(true);  // evaluate() flips layers to inference mode
    loader.start_epoch(rng);
    double loss_sum = 0.0;
    int batches = 0;
    while (true) {
      const data::Batch batch = loader.next();
      if (batch.size() == 0) break;
      if (opts.perturber) {
        // Noise-injection step: gradients at perturbed weights, update on
        // clean weights (the perturbation is a fresh draw each step).
        const WeightSnapshot snapshot(params);
        opts.perturber(params, rng);
        loss_sum += net.train_step_loss(batch.images, batch.labels);
        snapshot.restore(params);
      } else {
        loss_sum += net.train_step_loss(batch.images, batch.labels);
      }
      optimizer.step();
      ++batches;
    }
    const double mean_loss = batches ? loss_sum / batches : 0.0;
    const double test_acc = evaluate(net, test_set);
    result.epoch_loss.push_back(mean_loss);
    result.epoch_test_accuracy.push_back(test_acc);
    if (opts.on_epoch) opts.on_epoch(epoch, mean_loss, test_acc);
    optimizer.set_lr(optimizer.lr() * opts.lr_decay);
  }
  result.final_test_accuracy = result.epoch_test_accuracy.back();
  return result;
}

}  // namespace lcda::nn
