#include "lcda/nn/quantize.h"

#include <cmath>
#include <stdexcept>

namespace lcda::nn {

namespace {
void check(const QuantSpec& spec) {
  if (spec.bits < 2 || spec.bits > 16) {
    throw std::invalid_argument("QuantSpec: bits must be in [2,16]");
  }
}

float span_max_abs(std::span<const float> values) {
  float m = 0.0f;
  for (float v : values) m = std::max(m, std::abs(v));
  return m;
}
}  // namespace

float quantize_span(std::span<float> values, const QuantSpec& spec) {
  check(spec);
  const float max_abs = span_max_abs(values);
  if (max_abs == 0.0f) return 0.0f;
  const float scale = max_abs / static_cast<float>(spec.levels());
  for (float& v : values) {
    v = std::round(v / scale) * scale;
  }
  return scale;
}

std::vector<float> quantize_params(std::vector<Param*>& params,
                                   const QuantSpec& spec) {
  std::vector<float> scales;
  scales.reserve(params.size());
  for (Param* p : params) {
    scales.push_back(quantize_span(p->value.data(), spec));
  }
  return scales;
}

float max_quant_error(float max_abs, const QuantSpec& spec) {
  check(spec);
  if (max_abs <= 0.0f) return 0.0f;
  return 0.5f * max_abs / static_cast<float>(spec.levels());
}

double quant_mse(std::span<const float> values, const QuantSpec& spec) {
  check(spec);
  const float max_abs = span_max_abs(values);
  if (max_abs == 0.0f || values.empty()) return 0.0;
  const float scale = max_abs / static_cast<float>(spec.levels());
  double mse = 0.0;
  for (float v : values) {
    const float q = std::round(v / scale) * scale;
    mse += static_cast<double>(q - v) * (q - v);
  }
  return mse / static_cast<double>(values.size());
}

}  // namespace lcda::nn
