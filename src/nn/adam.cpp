#include "lcda/nn/adam.h"

#include <cmath>
#include <stdexcept>

namespace lcda::nn {

Adam::Adam(std::vector<Param*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  if (opts_.lr <= 0.0) throw std::invalid_argument("Adam: lr must be positive");
  if (opts_.beta1 < 0.0 || opts_.beta1 >= 1.0 || opts_.beta2 < 0.0 ||
      opts_.beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas must be in [0,1)");
  }
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(Tensor::zeros(p->value.shape()));
    v_.emplace_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(t_));
  const auto b1 = static_cast<float>(opts_.beta1);
  const auto b2 = static_cast<float>(opts_.beta2);
  const auto eps = static_cast<float>(opts_.epsilon);
  const auto lr = static_cast<float>(opts_.lr);
  const auto wd = static_cast<float>(opts_.weight_decay);

  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    auto w = p.value.data();
    auto g = p.grad.data();
    auto m = m_[pi].data();
    auto v = v_[pi].data();
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = b1 * m[i] + (1.0f - b1) * g[i];
      v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
      const float mhat = m[i] / static_cast<float>(bc1);
      const float vhat = v[i] / static_cast<float>(bc2);
      // Decoupled weight decay (AdamW): applied directly to the weight.
      w[i] -= lr * (mhat / (std::sqrt(vhat) + eps) + wd * w[i]);
    }
  }
}

}  // namespace lcda::nn
