#include "lcda/nn/layers.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lcda::nn {

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int in_h, int in_w,
               util::Rng& rng)
    : in_c_(in_channels), out_c_(out_channels), kernel_(kernel) {
  if (kernel % 2 == 0) throw std::invalid_argument("Conv2d: kernel must be odd");
  geom_ = tensor::ConvGeom{in_h, in_w, kernel, /*stride=*/1, /*pad=*/kernel / 2};
  const int fan_in = in_channels * kernel * kernel;
  weight_.value = Tensor::he_normal({out_channels, in_channels, kernel, kernel},
                                    fan_in, rng);
  weight_.grad = Tensor::zeros({out_channels, in_channels, kernel, kernel});
  weight_.name = "conv.weight";
  bias_.value = Tensor::zeros({out_channels});
  bias_.grad = Tensor::zeros({out_channels});
  bias_.name = "conv.bias";
}

const Tensor& Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_c_ || x.dim(2) != geom_.in_h ||
      x.dim(3) != geom_.in_w) {
    throw std::invalid_argument("Conv2d::forward: bad input shape " + x.shape_str());
  }
  input_ = x;
  const int n = x.dim(0);
  output_ = Tensor({n, out_c_, geom_.out_h(), geom_.out_w()});
  tensor::conv2d_forward(x, weight_.value, bias_.value, geom_, output_, scratch_);
  return output_;
}

const Tensor& Conv2d::backward(const Tensor& dy) {
  dx_ = Tensor(input_.shape());
  tensor::conv2d_backward(input_, weight_.value, geom_, dy, &dx_, &weight_.grad,
                          &bias_.grad, scratch_);
  return dx_;
}

std::string Conv2d::describe() const {
  std::ostringstream os;
  os << "Conv2d(" << in_c_ << "->" << out_c_ << ", k" << kernel_ << ", "
     << geom_.in_h << 'x' << geom_.in_w << ')';
  return os.str();
}

long long Conv2d::macs_per_sample() const {
  return static_cast<long long>(out_c_) * geom_.out_h() * geom_.out_w() * in_c_ *
         kernel_ * kernel_;
}

// ----------------------------------------------------------------- Dense

Dense::Dense(int in_features, int out_features, util::Rng& rng)
    : in_f_(in_features), out_f_(out_features) {
  weight_.value = Tensor::he_normal({in_features, out_features}, in_features, rng);
  weight_.grad = Tensor::zeros({in_features, out_features});
  weight_.name = "dense.weight";
  bias_.value = Tensor::zeros({out_features});
  bias_.grad = Tensor::zeros({out_features});
  bias_.name = "dense.bias";
}

const Tensor& Dense::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_f_) {
    throw std::invalid_argument("Dense::forward: bad input shape " + x.shape_str());
  }
  input_ = x;
  output_ = Tensor({x.dim(0), out_f_});
  tensor::dense_forward(x, weight_.value, bias_.value, output_);
  return output_;
}

const Tensor& Dense::backward(const Tensor& dy) {
  dx_ = Tensor(input_.shape());
  tensor::dense_backward(input_, weight_.value, dy, &dx_, &weight_.grad,
                         &bias_.grad);
  return dx_;
}

std::string Dense::describe() const {
  std::ostringstream os;
  os << "Dense(" << in_f_ << "->" << out_f_ << ')';
  return os.str();
}

long long Dense::macs_per_sample() const {
  return static_cast<long long>(in_f_) * out_f_;
}

// ------------------------------------------------------------------ ReLU

const Tensor& ReLU::forward(const Tensor& x) {
  input_ = x;
  output_ = Tensor(x.shape());
  tensor::relu_forward(x, output_);
  return output_;
}

const Tensor& ReLU::backward(const Tensor& dy) {
  dx_ = Tensor(input_.shape());
  tensor::relu_backward(input_, dy, dx_);
  return dx_;
}

// ------------------------------------------------------------ MaxPool2x2

const Tensor& MaxPool2x2::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(2) % 2 != 0 || x.dim(3) % 2 != 0) {
    throw std::invalid_argument("MaxPool2x2: spatial dims must be even, got " +
                                x.shape_str());
  }
  in_shape_ = x.shape();
  output_ = Tensor({x.dim(0), x.dim(1), x.dim(2) / 2, x.dim(3) / 2});
  tensor::maxpool2x2_forward(x, output_, argmax_);
  return output_;
}

const Tensor& MaxPool2x2::backward(const Tensor& dy) {
  dx_ = Tensor(in_shape_);
  tensor::maxpool2x2_backward(dy, argmax_, dx_);
  return dx_;
}

// ------------------------------------------------------------ BatchNorm2d

BatchNorm2d::BatchNorm2d(int channels, double momentum, double epsilon)
    : channels_(channels), momentum_(momentum), epsilon_(epsilon) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("BatchNorm2d: momentum out of [0,1)");
  }
  gamma_.value = Tensor::full({channels}, 1.0f);
  gamma_.grad = Tensor::zeros({channels});
  gamma_.name = "bn.gamma";
  beta_.value = Tensor::zeros({channels});
  beta_.grad = Tensor::zeros({channels});
  beta_.name = "bn.beta";
  running_mean_ = Tensor::zeros({channels});
  running_var_ = Tensor::full({channels}, 1.0f);
}

const Tensor& BatchNorm2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d::forward: bad input " + x.shape_str());
  }
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const double count = static_cast<double>(n) * plane;

  output_ = Tensor(x.shape());
  x_hat_ = Tensor(x.shape());
  batch_mean_.assign(static_cast<std::size_t>(channels_), 0.0);
  batch_var_.assign(static_cast<std::size_t>(channels_), 0.0);

  for (int c = 0; c < channels_; ++c) {
    double mean = 0.0, var = 0.0;
    if (training_) {
      for (int i = 0; i < n; ++i) {
        const float* p = x.raw() +
                         (static_cast<std::size_t>(i) * channels_ + c) * plane;
        for (std::size_t j = 0; j < plane; ++j) mean += p[j];
      }
      mean /= count;
      for (int i = 0; i < n; ++i) {
        const float* p = x.raw() +
                         (static_cast<std::size_t>(i) * channels_ + c) * plane;
        for (std::size_t j = 0; j < plane; ++j) {
          var += (p[j] - mean) * (p[j] - mean);
        }
      }
      var /= count;
      running_mean_[static_cast<std::size_t>(c)] = static_cast<float>(
          momentum_ * running_mean_[static_cast<std::size_t>(c)] +
          (1.0 - momentum_) * mean);
      running_var_[static_cast<std::size_t>(c)] = static_cast<float>(
          momentum_ * running_var_[static_cast<std::size_t>(c)] +
          (1.0 - momentum_) * var);
    } else {
      mean = running_mean_[static_cast<std::size_t>(c)];
      var = running_var_[static_cast<std::size_t>(c)];
    }
    batch_mean_[static_cast<std::size_t>(c)] = mean;
    batch_var_[static_cast<std::size_t>(c)] = var;

    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float b = beta_.value[static_cast<std::size_t>(c)];
    const auto m = static_cast<float>(mean);
    for (int i = 0; i < n; ++i) {
      const std::size_t base = (static_cast<std::size_t>(i) * channels_ + c) * plane;
      for (std::size_t j = 0; j < plane; ++j) {
        const float xh = (x[base + j] - m) * inv_std;
        x_hat_[base + j] = xh;
        output_[base + j] = g * xh + b;
      }
    }
  }
  return output_;
}

const Tensor& BatchNorm2d::backward(const Tensor& dy) {
  const int n = dy.dim(0), h = dy.dim(2), w = dy.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const double count = static_cast<double>(n) * plane;
  dx_ = Tensor(dy.shape());

  for (int c = 0; c < channels_; ++c) {
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const double inv_std =
        1.0 / std::sqrt(batch_var_[static_cast<std::size_t>(c)] + epsilon_);

    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int i = 0; i < n; ++i) {
      const std::size_t base = (static_cast<std::size_t>(i) * channels_ + c) * plane;
      for (std::size_t j = 0; j < plane; ++j) {
        sum_dy += dy[base + j];
        sum_dy_xhat += static_cast<double>(dy[base + j]) * x_hat_[base + j];
      }
    }
    gamma_.grad[static_cast<std::size_t>(c)] = static_cast<float>(sum_dy_xhat);
    beta_.grad[static_cast<std::size_t>(c)] = static_cast<float>(sum_dy);

    if (training_) {
      // dx = g/std * (dy - mean(dy) - x_hat * mean(dy*x_hat))
      for (int i = 0; i < n; ++i) {
        const std::size_t base =
            (static_cast<std::size_t>(i) * channels_ + c) * plane;
        for (std::size_t j = 0; j < plane; ++j) {
          const double term = dy[base + j] - sum_dy / count -
                              x_hat_[base + j] * sum_dy_xhat / count;
          dx_[base + j] = static_cast<float>(g * inv_std * term);
        }
      }
    } else {
      // Running statistics are constants at inference.
      for (int i = 0; i < n; ++i) {
        const std::size_t base =
            (static_cast<std::size_t>(i) * channels_ + c) * plane;
        for (std::size_t j = 0; j < plane; ++j) {
          dx_[base + j] = static_cast<float>(g * inv_std * dy[base + j]);
        }
      }
    }
  }
  return dx_;
}

std::string BatchNorm2d::describe() const {
  std::ostringstream os;
  os << "BatchNorm2d(" << channels_ << ')';
  return os.str();
}

// --------------------------------------------------------------- Flatten

const Tensor& Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  int features = 1;
  for (std::size_t i = 1; i < x.rank(); ++i) features *= x.dim(i);
  output_ = x.reshaped({x.dim(0), features});
  return output_;
}

const Tensor& Flatten::backward(const Tensor& dy) {
  dx_ = dy.reshaped(in_shape_);
  return dx_;
}

}  // namespace lcda::nn
