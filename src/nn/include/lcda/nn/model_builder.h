#pragma once

#include <vector>

#include "lcda/nn/sequential.h"
#include "lcda/util/rng.h"

namespace lcda::nn {

/// One convolution stage of the NACIM backbone: output channels + square
/// kernel size. A "rollout" is six of these (paper Sec. IV).
struct ConvSpec {
  int channels = 0;
  int kernel = 0;
  [[nodiscard]] bool operator==(const ConvSpec&) const = default;
};

/// Options for the CIFAR backbone used throughout the paper: six conv
/// layers (ReLU each, 2x2 max-pool after stages 2, 4 and 6) followed by two
/// fully connected layers with a fixed hidden width.
struct BackboneOptions {
  int input_channels = 3;
  int input_size = 32;     ///< square input resolution
  int num_classes = 10;
  int hidden = 1024;       ///< FC hidden width ("set at 1024" in the paper)
  std::vector<int> pool_after = {1, 3, 5};  ///< conv indices followed by pooling
  /// Insert BatchNorm2d between each conv and its ReLU. Off by default to
  /// match the paper's plain backbone; useful for variation-robustness
  /// studies (normalization bounds the ADC input range).
  bool batch_norm = false;
};

/// Builds the backbone for a given rollout. Throws if the pooling schedule
/// would drive the spatial size below 1 or if the rollout is empty.
[[nodiscard]] Sequential build_backbone(const std::vector<ConvSpec>& rollout,
                                        const BackboneOptions& opts,
                                        util::Rng& rng);

/// Per-layer shapes of the backbone as seen by the hardware mapper:
/// (in_channels, out_channels, kernel, input H=W, output H=W) for each conv,
/// then the two FC layers expressed as 1x1 "convs" on 1x1 inputs.
struct LayerShape {
  int in_channels = 0;
  int out_channels = 0;
  int kernel = 1;
  int in_hw = 1;   ///< input spatial size (H = W)
  int out_hw = 1;  ///< output spatial size
  bool is_fc = false;

  /// Weight matrix dimensions when unrolled for a crossbar:
  /// rows = K*K*Cin, cols = Cout.
  [[nodiscard]] long long weight_rows() const {
    return static_cast<long long>(kernel) * kernel * in_channels;
  }
  [[nodiscard]] long long weight_cols() const { return out_channels; }
  [[nodiscard]] long long macs() const {
    return weight_rows() * weight_cols() * out_hw * out_hw;
  }
};

/// Computes the LayerShape list for a rollout without instantiating any
/// tensors — this is what the hardware cost evaluator consumes.
[[nodiscard]] std::vector<LayerShape> backbone_shapes(
    const std::vector<ConvSpec>& rollout, const BackboneOptions& opts);

/// Order-sensitive content hash of a rollout, equivalent to
/// util::hash_ints over {c0, k0, c1, k1, ...} with `seed` — the one
/// rollout key shared by the surrogate's deterministic "training luck"
/// and the evaluator-side memo caches, so a ConvSpec change can never
/// leave the two silently hashing different fields. Allocation-free for
/// rollouts up to 16 layers.
[[nodiscard]] std::uint64_t rollout_hash(const std::vector<ConvSpec>& rollout,
                                         std::uint64_t seed);

}  // namespace lcda::nn
