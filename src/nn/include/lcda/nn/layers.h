#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lcda/tensor/ops.h"
#include "lcda/tensor/tensor.h"
#include "lcda/util/rng.h"

namespace lcda::nn {

using tensor::Tensor;

/// A learnable parameter with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;
  std::string name;
};

/// Base class for all layers.
///
/// Layers cache whatever they need from forward() for the subsequent
/// backward() call; a trainer must therefore call them in strict
/// forward-then-backward order per batch (the Sequential container enforces
/// this pattern).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for input `x` (batched, NCHW or NC).
  virtual const Tensor& forward(const Tensor& x) = 0;

  /// Propagates `dy` (gradient w.r.t. this layer's output) and returns the
  /// gradient w.r.t. its input. Parameter gradients are accumulated into the
  /// layer's Param::grad tensors (overwritten each call, not summed).
  virtual const Tensor& backward(const Tensor& dy) = 0;

  /// Learnable parameters (possibly empty).
  virtual std::vector<Param*> params() { return {}; }

  /// Switches between training and inference behaviour (batch-norm uses
  /// batch statistics when training, running statistics otherwise).
  virtual void set_training(bool training) { (void)training; }

  /// Human-readable description, e.g. "Conv2d(16->32, k3)".
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Multiply-accumulate count for one sample (used for cost cross-checks).
  [[nodiscard]] virtual long long macs_per_sample() const { return 0; }
};

/// 2-D convolution with square kernels, stride 1 and "same" padding
/// (pad = k/2), matching the NACIM backbone.
class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int in_h, int in_w,
         util::Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] long long macs_per_sample() const override;

  [[nodiscard]] int in_channels() const { return in_c_; }
  [[nodiscard]] int out_channels() const { return out_c_; }
  [[nodiscard]] int kernel() const { return kernel_; }

 private:
  int in_c_, out_c_, kernel_;
  tensor::ConvGeom geom_;
  Param weight_;  // (Cout, Cin, K, K)
  Param bias_;    // (Cout)
  Tensor input_;  // cached forward input
  Tensor output_;
  Tensor dx_;
  std::vector<float> scratch_;
};

/// Fully connected layer.
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, util::Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] long long macs_per_sample() const override;

  [[nodiscard]] int in_features() const { return in_f_; }
  [[nodiscard]] int out_features() const { return out_f_; }

 private:
  int in_f_, out_f_;
  Param weight_;  // (In, Out)
  Param bias_;    // (Out)
  Tensor input_;
  Tensor output_;
  Tensor dx_;
};

/// Elementwise ReLU.
class ReLU final : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  [[nodiscard]] std::string describe() const override { return "ReLU"; }

 private:
  Tensor input_;
  Tensor output_;
  Tensor dx_;
};

/// 2x2 stride-2 max pooling (requires even spatial dims).
class MaxPool2x2 final : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  [[nodiscard]] std::string describe() const override { return "MaxPool2x2"; }

 private:
  std::vector<int> argmax_;
  std::vector<int> in_shape_;
  Tensor output_;
  Tensor dx_;
};

/// Batch normalization over the channel dimension of NCHW tensors
/// (Ioffe & Szegedy 2015). Normalizes with batch statistics while training
/// and with exponential running statistics at inference; learnable
/// per-channel scale (gamma) and shift (beta).
///
/// Useful in this project beyond accuracy: normalized activations bound the
/// dynamic range that CiM ADCs must digitize, and batch-norm folding is the
/// standard deployment step for fixed-point accelerators.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(int channels, double momentum = 0.9, double epsilon = 1e-5);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  void set_training(bool training) override { training_ = training; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] int channels() const { return channels_; }
  [[nodiscard]] bool training() const { return training_; }
  [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const { return running_var_; }

 private:
  int channels_;
  double momentum_;
  double epsilon_;
  bool training_ = true;
  Param gamma_;  // (C)
  Param beta_;   // (C)
  Tensor running_mean_;
  Tensor running_var_;
  // Forward cache for backward.
  Tensor x_hat_;
  std::vector<double> batch_mean_;
  std::vector<double> batch_var_;
  Tensor output_;
  Tensor dx_;
};

/// Collapses (N,C,H,W) to (N, C*H*W).
class Flatten final : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  [[nodiscard]] std::string describe() const override { return "Flatten"; }

 private:
  std::vector<int> in_shape_;
  Tensor output_;
  Tensor dx_;
};

}  // namespace lcda::nn
