#pragma once

#include <functional>
#include <vector>

#include "lcda/data/loader.h"
#include "lcda/nn/sequential.h"
#include "lcda/nn/sgd.h"
#include "lcda/util/rng.h"

namespace lcda::nn {

/// Callback that perturbs parameters in place (e.g. samples NVM conductance
/// variation). Invoked once per training step on the live weights; the
/// trainer snapshots and restores the clean weights around it, so the
/// callback never needs to undo anything.
using WeightPerturber = std::function<void(std::vector<Param*>&, util::Rng&)>;

struct TrainOptions {
  int epochs = 10;
  Sgd::Options sgd;
  /// Learning-rate decay multiplier applied at each epoch end.
  double lr_decay = 0.95;
  /// When set, implements noise-injection training [NACIM]: each step the
  /// forward/backward pass runs on perturbed weights while the update is
  /// applied to the clean weights.
  WeightPerturber perturber;
  /// Optional per-epoch progress callback (epoch, mean loss, test accuracy).
  std::function<void(int, double, double)> on_epoch;
};

struct TrainResult {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_test_accuracy;
  double final_test_accuracy = 0.0;
};

/// Trains `net` on `train`, evaluating on `test` each epoch.
///
/// Determinism: all stochasticity (shuffling, perturbation) flows through
/// `rng`, so the same seed reproduces the same trajectory.
TrainResult train(Sequential& net, const data::Dataset& train,
                  const data::Dataset& test, const TrainOptions& opts,
                  util::Rng& rng);

/// Evaluates accuracy in minibatches (avoids materializing one giant batch).
[[nodiscard]] double evaluate(Sequential& net, const data::Dataset& dataset,
                              int batch_size = 64);

/// Evaluates accuracy with weights perturbed by `perturber` (restores the
/// clean weights afterwards). One draw; see noise::MonteCarloEvaluator for
/// multi-draw statistics.
[[nodiscard]] double evaluate_noisy(Sequential& net, const data::Dataset& dataset,
                                    const WeightPerturber& perturber,
                                    util::Rng& rng, int batch_size = 64);

}  // namespace lcda::nn
