#pragma once

#include <vector>

#include "lcda/nn/layers.h"

namespace lcda::nn {

/// Symmetric per-tensor fixed-point quantization.
///
/// The CiM hardware stores weights as `weight_bits`-bit fixed point split
/// across NVM cells (cim::HardwareConfig); the faithful evaluation pipeline
/// therefore quantizes trained weights before programming/Monte-Carlo
/// evaluation. Quantization is symmetric around zero with a per-tensor
/// scale = max|w| / (2^(bits-1) - 1).
struct QuantSpec {
  int bits = 8;

  [[nodiscard]] int levels() const { return (1 << (bits - 1)) - 1; }
};

/// Quantizes a span in place; returns the scale used (0 for all-zero input).
float quantize_span(std::span<float> values, const QuantSpec& spec);

/// Quantizes every parameter tensor of a network in place. Returns the
/// per-tensor scales (same order as `params`).
std::vector<float> quantize_params(std::vector<Param*>& params,
                                   const QuantSpec& spec);

/// Largest absolute round-off introduced by quantizing with `spec` for a
/// tensor whose range is `max_abs` (half an LSB).
[[nodiscard]] float max_quant_error(float max_abs, const QuantSpec& spec);

/// Mean squared quantization error actually incurred on `values` had they
/// been quantized (does not modify the input) — used by tests and the
/// accuracy analysis.
[[nodiscard]] double quant_mse(std::span<const float> values, const QuantSpec& spec);

}  // namespace lcda::nn
