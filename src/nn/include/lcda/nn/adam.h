#pragma once

#include <vector>

#include "lcda/nn/layers.h"

namespace lcda::nn {

/// Adam optimizer (Kingma & Ba 2015) with bias correction and decoupled
/// weight decay (AdamW-style). Provided alongside Sgd because noise-
/// injection training of narrow candidate networks is sometimes unstable
/// under plain momentum SGD; Adam's per-parameter scaling helps small
/// evaluator budgets converge.
class Adam {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  explicit Adam(std::vector<Param*> params) : Adam(std::move(params), Options{}) {}
  Adam(std::vector<Param*> params, Options opts);

  /// Applies one update using each Param's current grad.
  void step();

  void set_lr(double lr) { opts_.lr = lr; }
  [[nodiscard]] double lr() const { return opts_.lr; }
  [[nodiscard]] long long steps() const { return t_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  Options opts_;
  long long t_ = 0;
};

}  // namespace lcda::nn
