#pragma once

#include <vector>

#include "lcda/nn/layers.h"

namespace lcda::nn {

/// SGD with classical momentum and decoupled weight decay.
class Sgd {
 public:
  struct Options {
    double lr = 0.05;
    double momentum = 0.9;
    double weight_decay = 1e-4;
  };

  Sgd(std::vector<Param*> params, Options opts);

  /// Applies one update using each Param's current grad.
  void step();

  /// Scales the learning rate (for simple schedules).
  void set_lr(double lr) { opts_.lr = lr; }
  [[nodiscard]] double lr() const { return opts_.lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  Options opts_;
};

}  // namespace lcda::nn
