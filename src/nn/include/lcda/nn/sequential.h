#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lcda/nn/layers.h"

namespace lcda::nn {

/// Feed-forward stack of layers with a softmax-cross-entropy head.
class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Runs all layers; returns the logits of the last layer.
  const Tensor& forward(const Tensor& x);

  /// Backpropagates from the loss gradient at the logits.
  void backward(const Tensor& dlogits);

  /// Forward + softmax + cross-entropy + backward in one call.
  /// Returns the mean loss over the batch.
  double train_step_loss(const Tensor& x, std::span<const int> labels);

  /// Forward + argmax; returns predicted class per sample.
  std::vector<int> predict(const Tensor& x);

  /// Fraction of samples classified correctly.
  double accuracy(const Tensor& x, std::span<const int> labels);

  /// All learnable parameters across layers.
  std::vector<Param*> params();

  /// Propagates the training/inference mode to every layer.
  void set_training(bool training);

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Total MACs per sample (conv + dense).
  [[nodiscard]] long long macs_per_sample() const;

  /// Total parameter count.
  [[nodiscard]] std::size_t param_count();

  /// Multi-line architecture summary.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  Tensor probs_;
  Tensor dlogits_;
};

}  // namespace lcda::nn
