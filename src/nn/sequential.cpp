#include "lcda/nn/sequential.h"

#include <sstream>
#include <stdexcept>

namespace lcda::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

const Tensor& Sequential::forward(const Tensor& x) {
  if (layers_.empty()) throw std::logic_error("Sequential::forward: no layers");
  const Tensor* cur = &x;
  for (auto& layer : layers_) cur = &layer->forward(*cur);
  return *cur;
}

void Sequential::backward(const Tensor& dlogits) {
  const Tensor* cur = &dlogits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = &(*it)->backward(*cur);
  }
}

double Sequential::train_step_loss(const Tensor& x, std::span<const int> labels) {
  const Tensor& logits = forward(x);
  probs_ = Tensor(logits.shape());
  dlogits_ = Tensor(logits.shape());
  tensor::softmax_rows(logits, probs_);
  const double loss = tensor::cross_entropy_loss(probs_, labels, dlogits_);
  backward(dlogits_);
  return loss;
}

std::vector<int> Sequential::predict(const Tensor& x) {
  return tensor::argmax_rows(forward(x));
}

double Sequential::accuracy(const Tensor& x, std::span<const int> labels) {
  const auto preds = predict(x);
  if (preds.size() != labels.size()) {
    throw std::invalid_argument("accuracy: label count mismatch");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return preds.empty() ? 0.0 : static_cast<double>(correct) / preds.size();
}

void Sequential::set_training(bool training) {
  for (auto& layer : layers_) layer->set_training(training);
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

long long Sequential::macs_per_sample() const {
  long long total = 0;
  for (const auto& layer : layers_) total += layer->macs_per_sample();
  return total;
}

std::size_t Sequential::param_count() {
  std::size_t total = 0;
  for (Param* p : params()) total += p->value.size();
  return total;
}

std::string Sequential::describe() const {
  std::ostringstream os;
  for (const auto& layer : layers_) os << layer->describe() << '\n';
  return os.str();
}

}  // namespace lcda::nn
