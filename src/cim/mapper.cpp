#include "lcda/cim/mapper.h"

#include <algorithm>
#include <stdexcept>

namespace lcda::cim {

double MappingResult::mean_utilization() const {
  double weighted = 0.0;
  long long arrays = 0;
  for (const auto& lm : layers) {
    weighted += lm.utilization() * static_cast<double>(lm.total_arrays());
    arrays += lm.total_arrays();
  }
  return arrays ? weighted / static_cast<double>(arrays) : 0.0;
}

namespace {

LayerMapping map_layer(int index, const nn::LayerShape& shape,
                       const HardwareConfig& hw, const MapperOptions& opts) {
  LayerMapping lm;
  lm.layer_index = index;
  lm.is_fc = shape.is_fc;
  lm.rows_needed = shape.weight_rows();
  lm.cols_needed = shape.weight_cols() * hw.cells_per_weight();

  const int n = hw.xbar_size;
  lm.row_tiles = static_cast<int>((lm.rows_needed + n - 1) / n);
  lm.col_tiles = static_cast<int>((lm.cols_needed + n - 1) / n);
  lm.row_utilization = static_cast<double>(lm.rows_needed) /
                       (static_cast<double>(lm.row_tiles) * n);
  lm.col_utilization = static_cast<double>(lm.cols_needed) /
                       (static_cast<double>(lm.col_tiles) * n);

  const long long pixels =
      shape.is_fc ? 1 : static_cast<long long>(shape.out_hw) * shape.out_hw;
  lm.reads_per_inference = pixels * opts.input_bits;

  lm.rows_in_fullest_tile =
      static_cast<int>(std::min<long long>(lm.rows_needed, n));
  lm.adc_bits_required = required_adc_bits(lm.rows_in_fullest_tile, hw.bits_per_cell);
  return lm;
}

}  // namespace

MappingResult map_network(const std::vector<nn::LayerShape>& shapes,
                          const HardwareConfig& hw, const CircuitLibrary& circuits,
                          const MapperOptions& opts) {
  if (shapes.empty()) throw std::invalid_argument("map_network: no layers");
  MappingResult result;
  result.layers.reserve(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    result.layers.push_back(map_layer(static_cast<int>(i), shapes[i], hw, opts));
  }

  // --- Pipeline balancing via weight replication (ISAAC Sec. 4) ---------
  // Greedily replicate the layer with the longest sequential read chain as
  // long as (a) it helps, (b) per-layer replication stays bounded and
  // (c) the array area stays inside the allotted envelope.
  const double area_per_array = circuits.array_area_mm2(hw);
  const double area_cap = hw.area_budget_mm2 * opts.replication_area_fraction;

  auto total_arrays = [&result]() {
    long long t = 0;
    for (const auto& lm : result.layers) t += lm.total_arrays();
    return t;
  };

  while (true) {
    // Find the current bottleneck stage.
    std::size_t worst = 0;
    long long worst_reads = -1;
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
      const long long sr = result.layers[i].sequential_reads();
      if (sr > worst_reads) {
        worst_reads = sr;
        worst = i;
      }
    }
    LayerMapping& bottleneck = result.layers[worst];
    if (bottleneck.replication >= opts.max_replication) break;
    // Replicating a 1-read stage cannot help.
    if (bottleneck.sequential_reads() <= 1) break;

    const double area_after =
        static_cast<double>(total_arrays() + bottleneck.arrays_per_copy()) *
        area_per_array;
    if (area_after > area_cap) break;
    ++bottleneck.replication;
  }

  result.total_arrays = total_arrays();
  return result;
}

}  // namespace lcda::cim
