#include "lcda/cim/noc.h"

#include <cmath>
#include <stdexcept>

namespace lcda::cim {

NocModel make_noc() { return NocModel{}; }

int htree_depth(long long tiles) {
  if (tiles <= 0) throw std::invalid_argument("htree_depth: tiles must be positive");
  int depth = 0;
  long long n = 1;
  while (n < tiles) {
    n *= 2;
    ++depth;
  }
  return depth;
}

NocLayerCost noc_layer_cost(const NocModel& noc, double bytes, long long tiles) {
  if (bytes < 0.0) throw std::invalid_argument("noc_layer_cost: negative bytes");
  NocLayerCost cost;
  cost.hops = std::max(1, htree_depth(tiles));
  cost.energy_pj = bytes * cost.hops * noc.energy_per_byte_hop_pj;
  // Serialization over the root link plus the hop traversal chain. The
  // transfer overlaps with compute in a pipelined chip; this is the
  // non-overlapped frame contribution (conservative).
  cost.latency_ns = bytes / noc.link_bytes_per_ns / 64.0 +
                    cost.hops * noc.hop_latency_ns;
  return cost;
}

}  // namespace lcda::cim
