#pragma once

#include <string>
#include <vector>

#include "lcda/cim/device.h"

namespace lcda::cim {

/// Hardware design point of the NACIM search space (paper Sec. IV):
/// the hyperparameters LCDA/NACIM pick for the ISAAC-style accelerator.
struct HardwareConfig {
  DeviceType device = DeviceType::kRram;

  /// Conductance bits stored per cell (1, 2 or 4 in the search space).
  int bits_per_cell = 2;

  /// Weight precision in bits; weights are split across
  /// ceil(weight_bits / bits_per_cell) cells.
  int weight_bits = 8;

  /// Input (activation) precision; fed bit-serially over the DACs.
  int input_bits = 8;

  /// ADC resolution in bits.
  int adc_bits = 6;

  /// Square crossbar dimension (rows = cols = xbar_size).
  int xbar_size = 128;

  /// Columns sharing one ADC through an analog mux.
  int col_mux = 8;

  /// Area budget; designs whose chip area exceeds it are invalid and the
  /// framework assigns them reward -1 (paper Algorithm 1 prompt).
  double area_budget_mm2 = 75.0;

  [[nodiscard]] int cells_per_weight() const {
    return (weight_bits + bits_per_cell - 1) / bits_per_cell;
  }

  /// Validation; returns a human-readable reason or empty string if OK.
  [[nodiscard]] std::string validate() const;

  /// "RRAM b2 w8 adc6 xbar128 mux8".
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const HardwareConfig&) const = default;
};

/// The hardware axis of the co-design space: legal values per knob.
struct HardwareChoices {
  std::vector<DeviceType> devices = {DeviceType::kRram, DeviceType::kFefet};
  std::vector<int> bits_per_cell = {1, 2, 4};
  std::vector<int> adc_bits = {4, 5, 6, 7, 8};
  std::vector<int> xbar_sizes = {64, 128, 256};
  std::vector<int> col_mux = {4, 8};

  /// Total number of hardware combinations.
  [[nodiscard]] std::size_t combinations() const {
    return devices.size() * bits_per_cell.size() * adc_bits.size() *
           xbar_sizes.size() * col_mux.size();
  }
};

/// ISAAC reference design (Shafiee et al. 2016): the normalization point of
/// the paper's reward functions (8e7 pJ energy scale, 1600 FPS).
[[nodiscard]] HardwareConfig isaac_reference();

}  // namespace lcda::cim
