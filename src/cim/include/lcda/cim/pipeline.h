#pragma once

#include <vector>

#include "lcda/cim/cost_model.h"

namespace lcda::cim {

/// Layer-pipelined execution analysis (ISAAC Sec. 4: consecutive frames
/// flow through the layer stages concurrently).
///
/// CostReport::latency_ns is the *frame latency* — one input traversing
/// every stage in sequence. Under pipelining the steady-state *throughput*
/// is set by the slowest stage alone, so:
///   fps_pipelined = 1e9 / max_i(stage_latency_i)  >=  fps_frame.
struct PipelineReport {
  double frame_latency_ns = 0.0;
  double bottleneck_latency_ns = 0.0;
  int bottleneck_layer = -1;
  std::vector<double> stage_latency_ns;

  [[nodiscard]] double pipelined_fps() const {
    return bottleneck_latency_ns > 0.0 ? 1e9 / bottleneck_latency_ns : 0.0;
  }
  [[nodiscard]] double frame_fps() const {
    return frame_latency_ns > 0.0 ? 1e9 / frame_latency_ns : 0.0;
  }
  /// How unbalanced the pipeline is: bottleneck / mean stage latency
  /// (1.0 = perfectly balanced).
  [[nodiscard]] double imbalance() const;
};

/// Derives the pipeline view from a chip cost report.
[[nodiscard]] PipelineReport analyze_pipeline(const CostReport& report);

}  // namespace lcda::cim
