#pragma once

#include "lcda/cim/config.h"
#include "lcda/cim/device.h"

namespace lcda::cim {

/// Technology node the analytical models are calibrated at.
inline constexpr double kFeatureSizeUm = 0.032;  // 32 nm

/// Successive-approximation ADC macro model.
///
/// Area and conversion energy grow exponentially with resolution (capacitor
/// DAC doubling per bit); conversion latency is one SAR cycle per bit.
/// Calibrated so an 8-bit converter is ~3000 um^2, ~1 pJ/conversion and
/// ~1 ns/conversion — the ISAAC operating point.
struct AdcModel {
  int bits = 0;
  double area_mm2 = 0.0;
  double energy_per_conversion_pj = 0.0;
  double latency_per_conversion_ns = 0.0;
  double leakage_mw = 0.0;
};
[[nodiscard]] AdcModel make_adc(int bits);

/// Wordline driver + 1-bit DAC per crossbar row (inputs are bit-serial).
struct DacModel {
  double area_per_row_mm2 = 0.0;
  double energy_per_row_activation_pj = 0.0;
  double leakage_per_row_mw = 0.0;
};
[[nodiscard]] DacModel make_dac();

/// The analog crossbar array itself.
struct XbarModel {
  int size = 0;                 ///< rows = cols
  double area_mm2 = 0.0;        ///< cell matrix only (drivers modelled separately)
  double read_settle_ns = 0.0;  ///< bitline settling time for one analog read
  double cell_read_energy_pj = 0.0;
  double leakage_mw = 0.0;      ///< array leakage (nonzero for SRAM cells)

  /// Analog energy of one read that activates `rows_used` rows and senses
  /// `cols_used` columns.
  [[nodiscard]] double read_energy_pj(int rows_used, int cols_used) const {
    return cell_read_energy_pj * rows_used * cols_used;
  }
};
[[nodiscard]] XbarModel make_xbar(int size, const DeviceModel& dev);

/// Column mux, shift-&-add tree, and the per-array digital glue.
struct PeripheryModel {
  double mux_area_per_col_mm2 = 0.0;
  double shift_add_area_per_adc_mm2 = 0.0;
  double shift_add_energy_per_sample_pj = 0.0;
  double mux_energy_per_switch_pj = 0.0;
  double leakage_per_adc_mw = 0.0;
};
[[nodiscard]] PeripheryModel make_periphery();

/// eDRAM activation buffer (per-tile in ISAAC).
struct BufferModel {
  double area_per_kb_mm2 = 0.0;
  double energy_per_byte_pj = 0.0;
  double leakage_per_kb_mw = 0.0;
};
[[nodiscard]] BufferModel make_buffer();

/// Non-crossbar digital units: activation, pooling, output registers,
/// inter-tile network — lumped per-output-element costs.
struct DigitalModel {
  double area_per_tile_mm2 = 0.0;
  double energy_per_output_pj = 0.0;
  double network_energy_per_byte_pj = 0.0;
  double leakage_per_tile_mw = 0.0;
};
[[nodiscard]] DigitalModel make_digital();

/// Everything the cost model needs, instantiated for one HardwareConfig.
struct CircuitLibrary {
  AdcModel adc;
  DacModel dac;
  XbarModel xbar;
  PeripheryModel periphery;
  BufferModel buffer;
  DigitalModel digital;
  DeviceModel device;

  /// ADCs physically attached to one crossbar (columns / mux ratio).
  [[nodiscard]] int adcs_per_array(int xbar_size, int col_mux) const {
    return (xbar_size + col_mux - 1) / col_mux;
  }

  /// Area of one array instance including drivers, mux, ADCs and shift-add.
  [[nodiscard]] double array_area_mm2(const HardwareConfig& hw) const;

  /// Time for one full analog read of an array: settle + sequential
  /// conversion of all muxed columns.
  [[nodiscard]] double array_read_latency_ns(const HardwareConfig& hw) const;

  /// Leakage of one array instance.
  [[nodiscard]] double array_leakage_mw(const HardwareConfig& hw) const;
};

/// Builds the full circuit library for a hardware configuration.
/// Throws std::invalid_argument when hw.validate() fails.
[[nodiscard]] CircuitLibrary make_circuits(const HardwareConfig& hw);

/// ADC resolution needed to digitize a column dot-product of `rows_used`
/// active rows with `bits_per_cell`-bit cells and 1-bit (serial) inputs
/// without clipping: bits_per_cell + ceil(log2(rows)) - 1.
/// (ISAAC: 2-bit cells, 128 rows -> 8 bits, matching its 8-bit ADC.)
[[nodiscard]] int required_adc_bits(int rows_used, int bits_per_cell);

}  // namespace lcda::cim
