#pragma once

#include <vector>

#include "lcda/cim/circuits.h"
#include "lcda/cim/config.h"
#include "lcda/nn/model_builder.h"

namespace lcda::cim {

/// How one network layer lands on crossbar arrays.
///
/// The unrolled weight matrix (rows = K*K*Cin, cols = Cout*cells_per_weight)
/// is tiled over xbar_size x xbar_size arrays. Row tiles accumulate partial
/// sums digitally; column tiles are independent. `replication` duplicates
/// the whole layer to raise throughput (ISAAC-style pipeline balancing).
struct LayerMapping {
  int layer_index = 0;
  bool is_fc = false;

  long long rows_needed = 0;   ///< K*K*Cin
  long long cols_needed = 0;   ///< Cout * cells_per_weight
  int row_tiles = 0;
  int col_tiles = 0;
  int replication = 1;

  /// Fraction of allocated crossbar cells holding real weights.
  double row_utilization = 0.0;
  double col_utilization = 0.0;
  [[nodiscard]] double utilization() const {
    return row_utilization * col_utilization;
  }

  /// Arrays for one copy of the layer / including replication.
  [[nodiscard]] long long arrays_per_copy() const {
    return static_cast<long long>(row_tiles) * col_tiles;
  }
  [[nodiscard]] long long total_arrays() const {
    return arrays_per_copy() * replication;
  }

  /// Analog reads issued per inference per array *chain* (all row/col tiles
  /// fire in parallel): output pixels times bit-serial input cycles.
  long long reads_per_inference = 0;

  /// Sequential reads after spreading pixels over `replication` copies.
  [[nodiscard]] long long sequential_reads() const {
    return (reads_per_inference + replication - 1) / replication;
  }

  /// Rows actually activated in the worst (fullest) row tile.
  int rows_in_fullest_tile = 0;

  /// ADC resolution this mapping would need for exact partial sums.
  int adc_bits_required = 0;
};

/// Whole-network mapping.
struct MappingResult {
  std::vector<LayerMapping> layers;
  long long total_arrays = 0;

  /// Area-weighted average cell utilization.
  [[nodiscard]] double mean_utilization() const;
};

struct MapperOptions {
  /// Bit-serial input cycles per pixel (= input precision).
  /// Taken from HardwareConfig::input_bits by the cost model.
  int input_bits = 8;

  /// Upper bound on per-layer replication during pipeline balancing.
  int max_replication = 8;

  /// Replication stops growing when the chip area (arrays only) would
  /// exceed this fraction of the area budget. Keeps the balancer from
  /// trivially invalidating every design.
  double replication_area_fraction = 0.35;
};

/// Maps every layer, then greedily replicates the slowest layers until the
/// area envelope is reached (deterministic; mirrors ISAAC's weight
/// duplication for early, pixel-heavy layers).
[[nodiscard]] MappingResult map_network(const std::vector<nn::LayerShape>& shapes,
                                        const HardwareConfig& hw,
                                        const CircuitLibrary& circuits,
                                        const MapperOptions& opts = {});

}  // namespace lcda::cim
