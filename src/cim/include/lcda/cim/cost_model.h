#pragma once

#include <string>
#include <vector>

#include "lcda/cim/circuits.h"
#include "lcda/cim/config.h"
#include "lcda/cim/mapper.h"
#include "lcda/cim/noc.h"
#include "lcda/nn/model_builder.h"

namespace lcda::cim {

/// Per-layer slice of the chip cost.
struct LayerCost {
  int layer_index = 0;
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  long long arrays = 0;
  double utilization = 0.0;
  int adc_deficit_bits = 0;  ///< required ADC bits minus provisioned bits, >= 0
};

/// Whole-chip cost report — the DNN+NeuroSim-equivalent output
/// (chip area, latency, dynamic energy, leakage power; paper Sec. III-D).
struct CostReport {
  bool valid = false;
  std::string invalid_reason;

  // --- area (mm^2) ---
  double area_arrays_mm2 = 0.0;   ///< crossbars + DAC/mux/ADC/shift-add
  double area_buffer_mm2 = 0.0;   ///< eDRAM tiles
  double area_digital_mm2 = 0.0;  ///< activation/pooling/registers
  double area_noc_mm2 = 0.0;      ///< H-tree routers
  double area_total_mm2 = 0.0;

  // --- dynamic energy per inference (pJ) ---
  double energy_adc_pj = 0.0;
  double energy_xbar_pj = 0.0;
  double energy_dac_pj = 0.0;
  double energy_digital_pj = 0.0;
  double energy_buffer_pj = 0.0;
  double energy_noc_pj = 0.0;  ///< inter-tile H-tree traffic
  double energy_total_pj = 0.0;

  // --- timing ---
  double latency_ns = 0.0;  ///< one frame, layer-sequential execution
  [[nodiscard]] double fps() const {
    return latency_ns > 0.0 ? 1e9 / latency_ns : 0.0;
  }

  // --- static power ---
  double leakage_mw = 0.0;

  // --- one-time chip programming (weights written once at deployment;
  //     excluded from per-inference energy) ---
  long long total_weights = 0;       ///< logical weights incl. replication
  long long total_cells = 0;         ///< NVM devices programmed
  double programming_energy_pj = 0.0;  ///< single-pulse write per cell; see
                                       ///< noise::SelectiveWriteVerify for
                                       ///< write-verify accounting

  // --- bookkeeping for the accuracy models ---
  /// Effective relative weight-error sigma of this hardware (device
  /// programming + temporal variation composed across the cells holding one
  /// weight). Consumed by noise::VariationModel / surrogate.
  double weight_sigma = 0.0;
  /// Worst-case ADC resolution shortfall across layers (0 = exact).
  int max_adc_deficit_bits = 0;

  /// Per-layer detail. Filled by the detailed evaluate() overloads; the
  /// engine's lean evaluate_span() path leaves both empty (every scalar
  /// above is still populated, bit-identically).
  std::vector<LayerCost> layers;
  MappingResult mapping;

  [[nodiscard]] double energy_per_mac_pj(long long total_macs) const {
    return total_macs > 0 ? energy_total_pj / static_cast<double>(total_macs) : 0.0;
  }

  /// Resets every field to its default while keeping the capacity of
  /// `layers` / `mapping.layers` / `invalid_reason`, so a report can be
  /// reused across evaluations without reallocating.
  void reset();
};

/// Options that define the fixed parts of the chip organization.
struct CostModelOptions {
  /// Crossbar arrays grouped per tile (shared buffer + digital units).
  int arrays_per_tile = 16;
  /// Activation buffer per tile, KB.
  int buffer_kb_per_tile = 64;
  MapperOptions mapper;
};

/// Flattened structure-of-arrays view of a backbone's layer geometry — the
/// per-rollout input of the cost model's second phase. Only the three
/// quantities the fused mapping+cost pass actually consumes survive the
/// flattening; everything else in nn::LayerShape is derived from them.
/// Hardware-independent, so SurrogateEvaluator memoizes one span per rollout
/// and reuses it across every hardware config the search visits.
struct LayerShapeSpan {
  std::vector<long long> rows;    ///< unrolled weight rows, K*K*Cin
  std::vector<long long> cols;    ///< output channels (cols before cell split)
  std::vector<long long> pixels;  ///< output pixels per inference (1 for FC)
  std::vector<unsigned char> fc;  ///< FC flag (mapping detail bookkeeping)

  [[nodiscard]] std::size_t size() const { return rows.size(); }
  [[nodiscard]] bool empty() const { return rows.empty(); }

  [[nodiscard]] static LayerShapeSpan from(
      const std::vector<nn::LayerShape>& shapes);
};

/// Phase one of the two-phase cost model: every term of the chip cost that
/// does not depend on the network being mapped, folded once per
/// HardwareConfig at CostEvaluator construction. The per-rollout pass then
/// touches only these scalars plus the LayerShapeSpan arrays.
///
/// Precomputed values are produced by exactly the expressions the
/// historical per-evaluation code used, so phase two reproduces the old
/// CostReport bit for bit (pinned in tests/cim_test.cpp).
struct CostPlan {
  // --- mapper terms ---
  int xbar_size = 0;
  int cells_per_weight = 0;
  int input_bits = 0;
  int max_replication = 0;
  int adc_bits = 0;
  int bits_per_cell = 0;
  double replication_area_cap_mm2 = 0.0;  ///< budget * replication fraction

  // --- per-unit circuit energies (pJ) ---
  double adc_energy_per_conversion_pj = 0.0;
  double cell_read_energy_pj = 0.0;
  double dac_energy_per_row_pj = 0.0;
  double sa_mux_energy_per_conversion_pj = 0.0;  ///< shift-add + mux, summed
  double digital_energy_per_output_pj = 0.0;
  double buffer_energy_per_byte_pj = 0.0;
  double noc_energy_per_byte_hop_pj = 0.0;

  // --- timing ---
  double read_latency_ns = 0.0;  ///< one full analog array read

  // --- area / leakage ---
  int arrays_per_tile = 0;
  int buffer_kb_per_tile = 0;
  double area_per_array_mm2 = 0.0;
  double buffer_area_per_kb_mm2 = 0.0;
  double digital_area_per_tile_mm2 = 0.0;
  double noc_router_area_mm2 = 0.0;
  double array_leakage_mw = 0.0;
  double leakage_per_tile_mw = 0.0;  ///< buffer + digital + router, summed
  double area_budget_mm2 = 0.0;

  // --- device ---
  double weight_sigma = 0.0;
  double device_write_energy_pj = 0.0;
};

/// Evaluates ISAAC-style chip costs for a network on a hardware config.
///
/// Construction validates the config (throws std::invalid_argument) and
/// folds the hardware-only cost terms into a CostPlan; evaluation is then a
/// single fused mapping+cost pass per rollout. evaluate() never throws for
/// well-formed shapes: an over-budget chip comes back with valid = false,
/// which the framework maps to reward -1.
///
/// Thread-safe after construction: evaluation only reads the plan.
class CostEvaluator {
 public:
  explicit CostEvaluator(const HardwareConfig& hw, CostModelOptions opts = {});

  [[nodiscard]] CostReport evaluate(const std::vector<nn::LayerShape>& shapes) const;

  /// Convenience: shapes derived from a rollout + backbone options.
  [[nodiscard]] CostReport evaluate(const std::vector<nn::ConvSpec>& rollout,
                                    const nn::BackboneOptions& backbone) const;

  /// The engine's hot path (phase two): whole-chip totals written into
  /// `out`, reusing its buffers — zero allocations for a valid design.
  /// `out.layers` / `out.mapping` are left empty; every scalar field is
  /// bit-identical to the detailed evaluate() overloads.
  void evaluate_span(const LayerShapeSpan& span, CostReport& out) const;

  [[nodiscard]] const HardwareConfig& config() const { return hw_; }
  [[nodiscard]] const CircuitLibrary& circuits() const { return circuits_; }
  [[nodiscard]] const CostPlan& plan() const { return plan_; }

 private:
  void run_pass(const LayerShapeSpan& span, CostReport& report,
                bool detail) const;

  HardwareConfig hw_;
  CostModelOptions opts_;
  CircuitLibrary circuits_;
  NocModel noc_;
  CostPlan plan_;
};

}  // namespace lcda::cim
