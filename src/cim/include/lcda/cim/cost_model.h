#pragma once

#include <string>
#include <vector>

#include "lcda/cim/circuits.h"
#include "lcda/cim/config.h"
#include "lcda/cim/mapper.h"
#include "lcda/cim/noc.h"
#include "lcda/nn/model_builder.h"

namespace lcda::cim {

/// Per-layer slice of the chip cost.
struct LayerCost {
  int layer_index = 0;
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  long long arrays = 0;
  double utilization = 0.0;
  int adc_deficit_bits = 0;  ///< required ADC bits minus provisioned bits, >= 0
};

/// Whole-chip cost report — the DNN+NeuroSim-equivalent output
/// (chip area, latency, dynamic energy, leakage power; paper Sec. III-D).
struct CostReport {
  bool valid = false;
  std::string invalid_reason;

  // --- area (mm^2) ---
  double area_arrays_mm2 = 0.0;   ///< crossbars + DAC/mux/ADC/shift-add
  double area_buffer_mm2 = 0.0;   ///< eDRAM tiles
  double area_digital_mm2 = 0.0;  ///< activation/pooling/registers
  double area_noc_mm2 = 0.0;      ///< H-tree routers
  double area_total_mm2 = 0.0;

  // --- dynamic energy per inference (pJ) ---
  double energy_adc_pj = 0.0;
  double energy_xbar_pj = 0.0;
  double energy_dac_pj = 0.0;
  double energy_digital_pj = 0.0;
  double energy_buffer_pj = 0.0;
  double energy_noc_pj = 0.0;  ///< inter-tile H-tree traffic
  double energy_total_pj = 0.0;

  // --- timing ---
  double latency_ns = 0.0;  ///< one frame, layer-sequential execution
  [[nodiscard]] double fps() const {
    return latency_ns > 0.0 ? 1e9 / latency_ns : 0.0;
  }

  // --- static power ---
  double leakage_mw = 0.0;

  // --- one-time chip programming (weights written once at deployment;
  //     excluded from per-inference energy) ---
  long long total_weights = 0;       ///< logical weights incl. replication
  long long total_cells = 0;         ///< NVM devices programmed
  double programming_energy_pj = 0.0;  ///< single-pulse write per cell; see
                                       ///< noise::SelectiveWriteVerify for
                                       ///< write-verify accounting

  // --- bookkeeping for the accuracy models ---
  /// Effective relative weight-error sigma of this hardware (device
  /// programming + temporal variation composed across the cells holding one
  /// weight). Consumed by noise::VariationModel / surrogate.
  double weight_sigma = 0.0;
  /// Worst-case ADC resolution shortfall across layers (0 = exact).
  int max_adc_deficit_bits = 0;

  std::vector<LayerCost> layers;
  MappingResult mapping;

  [[nodiscard]] double energy_per_mac_pj(long long total_macs) const {
    return total_macs > 0 ? energy_total_pj / static_cast<double>(total_macs) : 0.0;
  }
};

/// Options that define the fixed parts of the chip organization.
struct CostModelOptions {
  /// Crossbar arrays grouped per tile (shared buffer + digital units).
  int arrays_per_tile = 16;
  /// Activation buffer per tile, KB.
  int buffer_kb_per_tile = 64;
  MapperOptions mapper;
};

/// Evaluates ISAAC-style chip costs for a network on a hardware config.
///
/// Construction validates the config (throws std::invalid_argument).
/// evaluate() never throws for well-formed shapes: an over-budget chip comes
/// back with valid = false, which the framework maps to reward -1.
class CostEvaluator {
 public:
  explicit CostEvaluator(const HardwareConfig& hw, CostModelOptions opts = {});

  [[nodiscard]] CostReport evaluate(const std::vector<nn::LayerShape>& shapes) const;

  /// Convenience: shapes derived from a rollout + backbone options.
  [[nodiscard]] CostReport evaluate(const std::vector<nn::ConvSpec>& rollout,
                                    const nn::BackboneOptions& backbone) const;

  [[nodiscard]] const HardwareConfig& config() const { return hw_; }
  [[nodiscard]] const CircuitLibrary& circuits() const { return circuits_; }

 private:
  HardwareConfig hw_;
  CostModelOptions opts_;
  CircuitLibrary circuits_;
  NocModel noc_;
};

}  // namespace lcda::cim
