#pragma once

#include "lcda/cim/config.h"

namespace lcda::cim {

/// On-chip interconnect macro model (ISAAC links tiles with an H-tree; we
/// model an H-tree of routers over the tile grid).
///
/// Traffic: each layer ships its output activation bytes from the tiles
/// holding it to the tiles holding the next layer; the hop count grows
/// logarithmically with the tile count (tree depth).
struct NocModel {
  /// Energy to move one byte across one hop (wire + router), pJ.
  double energy_per_byte_hop_pj = 0.012;

  /// Router traversal latency per hop, ns.
  double hop_latency_ns = 1.2;

  /// Link bandwidth per tree level, bytes per ns (≈ GB/s).
  double link_bytes_per_ns = 4.0;

  /// Router area per tile, mm^2.
  double router_area_mm2 = 0.015;

  /// Router leakage per tile, mW.
  double router_leakage_mw = 0.08;
};

[[nodiscard]] NocModel make_noc();

/// Tree depth (= max hop count) for `tiles` tiles in an H-tree.
[[nodiscard]] int htree_depth(long long tiles);

/// Per-layer NoC cost for shipping `bytes` of activations across a chip
/// with `tiles` tiles.
struct NocLayerCost {
  double energy_pj = 0.0;
  double latency_ns = 0.0;  ///< serialization + hop traversal
  int hops = 0;
};
[[nodiscard]] NocLayerCost noc_layer_cost(const NocModel& noc, double bytes,
                                          long long tiles);

}  // namespace lcda::cim
