#pragma once

#include <string>
#include <string_view>

namespace lcda::cim {

/// Supported NVM / memory cell technologies (paper Sec. II-B; NeuroSim
/// supports SRAM plus emerging NVMs — we model the two the NACIM search
/// space uses, RRAM and FeFET, and SRAM as a conventional reference point).
enum class DeviceType { kRram, kFefet, kSram };

[[nodiscard]] std::string_view device_name(DeviceType t);

/// Inverse of device_name ("RRAM" / "FeFET" / "SRAM"); throws
/// std::invalid_argument on anything else. Used by scenario deserialization.
[[nodiscard]] DeviceType device_from_name(std::string_view name);

/// Electrical and statistical parameters of one synaptic cell.
///
/// The numbers are representative published values at a 32 nm logic node
/// (ISAAC / NeuroSim calibration range); they set the absolute scale of the
/// cost model. Relative orderings between technologies are what the search
/// relies on: RRAM is denser but noisier, FeFET writes cheaper and drifts
/// less, SRAM is variation-free but large and volatile.
struct DeviceModel {
  DeviceType type = DeviceType::kRram;

  /// Max conductance levels a single cell can reliably hold, as bits.
  int max_bits_per_cell = 4;

  /// Cell footprint in F^2 (F = feature size).
  double cell_area_f2 = 4.0;

  /// Energy to read one cell once (one MAC contribution), in pJ.
  double read_energy_pj = 0.0002;

  /// Energy to program one cell, in pJ (used by write/refresh accounting).
  double write_energy_pj = 10.0;

  /// Programming (write) conductance variation: relative standard deviation
  /// of the stored conductance w.r.t. the full conductance range, per cell.
  /// This is the sigma that the noise library and the surrogate consume.
  double programming_sigma = 0.10;

  /// Additional temporal (read) fluctuation sigma, per access.
  double temporal_sigma = 0.02;

  /// On/off conductance ratio; bounds how many levels are usable.
  double on_off_ratio = 100.0;

  /// Static leakage per cell in nW (SRAM leaks; NVMs effectively do not).
  double leakage_nw = 0.0;
};

/// Returns the calibrated model for a technology.
[[nodiscard]] DeviceModel device_model(DeviceType t);

/// Effective relative weight-error sigma when a weight is split across
/// `cells_per_weight` cells of `bits_per_cell` bits each.
///
/// The most significant cell dominates: its conductance error is worth
/// 2^((cells-1)*bits) LSB steps of the composed weight. Summing the
/// geometric contributions of all cells gives
///   sigma_w = sigma_cell * sqrt(sum_i 4^(-i*bits)) (i = 0 .. cells-1)
/// relative to the full weight range.
[[nodiscard]] double effective_weight_sigma(const DeviceModel& dev,
                                            int bits_per_cell,
                                            int cells_per_weight);

}  // namespace lcda::cim
