#include "lcda/cim/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lcda/cim/noc.h"

namespace lcda::cim {

CostEvaluator::CostEvaluator(const HardwareConfig& hw, CostModelOptions opts)
    : hw_(hw), opts_(opts), circuits_(make_circuits(hw)), noc_(make_noc()) {
  opts_.mapper.input_bits = hw.input_bits;
}

CostReport CostEvaluator::evaluate(const std::vector<nn::ConvSpec>& rollout,
                                   const nn::BackboneOptions& backbone) const {
  return evaluate(nn::backbone_shapes(rollout, backbone));
}

CostReport CostEvaluator::evaluate(const std::vector<nn::LayerShape>& shapes) const {
  CostReport report;
  report.mapping = map_network(shapes, hw_, circuits_, opts_.mapper);
  report.weight_sigma = effective_weight_sigma(
      circuits_.device, hw_.bits_per_cell, hw_.cells_per_weight());

  const double read_latency = circuits_.array_read_latency_ns(hw_);
  const int n = hw_.xbar_size;

  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const nn::LayerShape& shape = shapes[i];
    const LayerMapping& lm = report.mapping.layers[i];
    LayerCost lc;
    lc.layer_index = static_cast<int>(i);
    lc.arrays = lm.total_arrays();
    lc.utilization = lm.utilization();
    lc.adc_deficit_bits = std::max(0, lm.adc_bits_required - hw_.adc_bits);
    report.max_adc_deficit_bits =
        std::max(report.max_adc_deficit_bits, lc.adc_deficit_bits);

    const auto reads = static_cast<double>(lm.reads_per_inference);
    const auto rows = static_cast<double>(lm.rows_needed);
    const auto cols = static_cast<double>(lm.cols_needed);
    const double cols_allocated = static_cast<double>(lm.col_tiles) * n;

    // ADC: every *used* column is digitized once per read, in every row tile
    // (partial sums per tile are combined digitally afterwards).
    const double conversions = reads * lm.row_tiles * cols;
    const double e_adc = conversions * circuits_.adc.energy_per_conversion_pj;

    // Analog crossbar: current flows through every cell on an active row,
    // including cells in under-utilized (allocated-but-unused) columns —
    // low column utilization costs real energy.
    const double e_xbar =
        reads * rows * cols_allocated * circuits_.xbar.cell_read_energy_pj;

    // Wordline drivers fire once per active row per read.
    const double e_dac = reads * rows * circuits_.dac.energy_per_row_activation_pj;

    // Shift-&-add consumes one sample per conversion; column mux switches.
    const double e_sa =
        conversions * (circuits_.periphery.shift_add_energy_per_sample_pj +
                       circuits_.periphery.mux_energy_per_switch_pj);

    // Output-side digital work and buffering (write this layer's
    // activations, read them back for the next layer).
    const double outputs = shape.is_fc
                               ? static_cast<double>(shape.out_channels)
                               : static_cast<double>(shape.out_hw) * shape.out_hw *
                                     shape.out_channels;
    const double bytes = outputs;  // 8-bit activations
    const double e_digital = outputs * circuits_.digital.energy_per_output_pj;
    const double e_buffer = 2.0 * bytes * circuits_.buffer.energy_per_byte_pj;

    // Inter-tile H-tree traffic: this layer's activations travel to the
    // next layer's tiles. Tile count is estimated from this layer's arrays.
    const long long layer_tiles = std::max<long long>(
        1, (lm.total_arrays() + opts_.arrays_per_tile - 1) / opts_.arrays_per_tile);
    const NocLayerCost noc = noc_layer_cost(noc_, bytes, layer_tiles);

    lc.energy_pj = e_adc + e_xbar + e_dac + e_sa + e_digital + e_buffer +
                   noc.energy_pj;
    report.energy_adc_pj += e_adc;
    report.energy_xbar_pj += e_xbar;
    report.energy_dac_pj += e_dac;
    report.energy_digital_pj += e_digital + e_sa;
    report.energy_buffer_pj += e_buffer;
    report.energy_noc_pj += noc.energy_pj;

    // Latency: the layer's pixels stream through its replicated copies; row
    // and column tiles operate in parallel, partial-sum combining adds a
    // shallow adder-tree delay per read.
    const double combine_ns =
        lm.row_tiles > 1 ? 0.5 * std::ceil(std::log2(lm.row_tiles)) : 0.0;
    lc.latency_ns =
        static_cast<double>(lm.sequential_reads()) * (read_latency + combine_ns);
    report.latency_ns += lc.latency_ns;

    report.layers.push_back(lc);
  }
  report.energy_total_pj = report.energy_adc_pj + report.energy_xbar_pj +
                           report.energy_dac_pj + report.energy_digital_pj +
                           report.energy_buffer_pj + report.energy_noc_pj;

  // --- area & leakage -----------------------------------------------------
  const double area_per_array = circuits_.array_area_mm2(hw_);
  const auto arrays = static_cast<double>(report.mapping.total_arrays);
  const double tiles =
      std::ceil(arrays / static_cast<double>(opts_.arrays_per_tile));
  report.area_arrays_mm2 = arrays * area_per_array;
  report.area_buffer_mm2 =
      tiles * opts_.buffer_kb_per_tile * circuits_.buffer.area_per_kb_mm2;
  report.area_digital_mm2 = tiles * circuits_.digital.area_per_tile_mm2;
  report.area_noc_mm2 = tiles * noc_.router_area_mm2;
  report.area_total_mm2 = report.area_arrays_mm2 + report.area_buffer_mm2 +
                          report.area_digital_mm2 + report.area_noc_mm2;

  report.leakage_mw =
      arrays * circuits_.array_leakage_mw(hw_) +
      tiles * (opts_.buffer_kb_per_tile * circuits_.buffer.leakage_per_kb_mw +
               circuits_.digital.leakage_per_tile_mw +
               noc_.router_leakage_mw);

  // --- one-time programming cost --------------------------------------
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const nn::LayerShape& shape = shapes[i];
    const LayerMapping& lm = report.mapping.layers[i];
    report.total_weights +=
        shape.weight_rows() * shape.weight_cols() * lm.replication;
  }
  report.total_cells = report.total_weights * hw_.cells_per_weight();
  report.programming_energy_pj =
      static_cast<double>(report.total_cells) * circuits_.device.write_energy_pj;

  if (report.area_total_mm2 > hw_.area_budget_mm2) {
    report.valid = false;
    // %g matches the ostream default formatting this string historically
    // used (6 significant digits); snprintf keeps the invalid path — which
    // tight-budget scenarios hit for most of the search space — free of
    // ostringstream construction.
    char buf[96];
    std::snprintf(buf, sizeof(buf), "chip area %g mm^2 exceeds budget %g mm^2",
                  report.area_total_mm2, hw_.area_budget_mm2);
    report.invalid_reason = buf;
  } else {
    report.valid = true;
  }
  return report;
}

}  // namespace lcda::cim
