#include "lcda/cim/cost_model.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdio>

#include "lcda/cim/noc.h"

namespace lcda::cim {

void CostReport::reset() {
  valid = false;
  invalid_reason.clear();
  area_arrays_mm2 = area_buffer_mm2 = area_digital_mm2 = area_noc_mm2 =
      area_total_mm2 = 0.0;
  energy_adc_pj = energy_xbar_pj = energy_dac_pj = energy_digital_pj =
      energy_buffer_pj = energy_noc_pj = energy_total_pj = 0.0;
  latency_ns = 0.0;
  leakage_mw = 0.0;
  total_weights = 0;
  total_cells = 0;
  programming_energy_pj = 0.0;
  weight_sigma = 0.0;
  max_adc_deficit_bits = 0;
  layers.clear();
  mapping.layers.clear();
  mapping.total_arrays = 0;
}

LayerShapeSpan LayerShapeSpan::from(const std::vector<nn::LayerShape>& shapes) {
  LayerShapeSpan span;
  span.rows.reserve(shapes.size());
  span.cols.reserve(shapes.size());
  span.pixels.reserve(shapes.size());
  span.fc.reserve(shapes.size());
  for (const nn::LayerShape& shape : shapes) {
    span.rows.push_back(shape.weight_rows());
    span.cols.push_back(shape.weight_cols());
    span.pixels.push_back(
        shape.is_fc ? 1 : static_cast<long long>(shape.out_hw) * shape.out_hw);
    span.fc.push_back(shape.is_fc ? 1 : 0);
  }
  return span;
}

CostEvaluator::CostEvaluator(const HardwareConfig& hw, CostModelOptions opts)
    : hw_(hw), opts_(opts), circuits_(make_circuits(hw)), noc_(make_noc()) {
  opts_.mapper.input_bits = hw.input_bits;

  // Phase one: fold every hardware-only term once. Each value is computed
  // by the same expression the per-evaluation code historically used, so
  // phase two's arithmetic (and hence every trace) is bit-identical.
  plan_.xbar_size = hw_.xbar_size;
  plan_.cells_per_weight = hw_.cells_per_weight();
  plan_.input_bits = opts_.mapper.input_bits;
  plan_.max_replication = opts_.mapper.max_replication;
  plan_.adc_bits = hw_.adc_bits;
  plan_.bits_per_cell = hw_.bits_per_cell;
  plan_.replication_area_cap_mm2 =
      hw_.area_budget_mm2 * opts_.mapper.replication_area_fraction;

  plan_.adc_energy_per_conversion_pj = circuits_.adc.energy_per_conversion_pj;
  plan_.cell_read_energy_pj = circuits_.xbar.cell_read_energy_pj;
  plan_.dac_energy_per_row_pj = circuits_.dac.energy_per_row_activation_pj;
  plan_.sa_mux_energy_per_conversion_pj =
      circuits_.periphery.shift_add_energy_per_sample_pj +
      circuits_.periphery.mux_energy_per_switch_pj;
  plan_.digital_energy_per_output_pj = circuits_.digital.energy_per_output_pj;
  plan_.buffer_energy_per_byte_pj = circuits_.buffer.energy_per_byte_pj;
  plan_.noc_energy_per_byte_hop_pj = noc_.energy_per_byte_hop_pj;

  plan_.read_latency_ns = circuits_.array_read_latency_ns(hw_);

  plan_.arrays_per_tile = opts_.arrays_per_tile;
  plan_.buffer_kb_per_tile = opts_.buffer_kb_per_tile;
  plan_.area_per_array_mm2 = circuits_.array_area_mm2(hw_);
  plan_.buffer_area_per_kb_mm2 = circuits_.buffer.area_per_kb_mm2;
  plan_.digital_area_per_tile_mm2 = circuits_.digital.area_per_tile_mm2;
  plan_.noc_router_area_mm2 = noc_.router_area_mm2;
  plan_.array_leakage_mw = circuits_.array_leakage_mw(hw_);
  plan_.leakage_per_tile_mw =
      opts_.buffer_kb_per_tile * circuits_.buffer.leakage_per_kb_mw +
      circuits_.digital.leakage_per_tile_mw + noc_.router_leakage_mw;
  plan_.area_budget_mm2 = hw_.area_budget_mm2;

  plan_.weight_sigma = effective_weight_sigma(circuits_.device, hw_.bits_per_cell,
                                              hw_.cells_per_weight());
  plan_.device_write_energy_pj = circuits_.device.write_energy_pj;
}

CostReport CostEvaluator::evaluate(const std::vector<nn::ConvSpec>& rollout,
                                   const nn::BackboneOptions& backbone) const {
  return evaluate(nn::backbone_shapes(rollout, backbone));
}

CostReport CostEvaluator::evaluate(const std::vector<nn::LayerShape>& shapes) const {
  CostReport report;
  run_pass(LayerShapeSpan::from(shapes), report, /*detail=*/true);
  return report;
}

void CostEvaluator::evaluate_span(const LayerShapeSpan& span,
                                  CostReport& out) const {
  out.reset();
  run_pass(span, out, /*detail=*/false);
}

namespace {

/// Per-layer state of the fused mapping+cost pass. Lives on the stack for
/// any realistic backbone so the hot path never allocates.
struct LayerPass {
  long long rows_needed = 0;
  long long cols_needed = 0;
  long long reads_per_inference = 0;
  long long seq_reads = 0;  ///< cached sequential_reads() for the balancer
  int row_tiles = 0;
  int col_tiles = 0;
  int replication = 1;
  int rows_in_fullest_tile = 0;
  int adc_bits_required = 0;

  [[nodiscard]] long long arrays_per_copy() const {
    return static_cast<long long>(row_tiles) * col_tiles;
  }
  [[nodiscard]] long long total_arrays() const {
    return arrays_per_copy() * replication;
  }
  [[nodiscard]] long long sequential_reads() const {
    return (reads_per_inference + replication - 1) / replication;
  }
};

constexpr std::size_t kStackLayers = 48;

}  // namespace

void CostEvaluator::run_pass(const LayerShapeSpan& span, CostReport& report,
                             bool detail) const {
  // map_network() rejects empty networks; the fused pass keeps the contract.
  if (span.empty()) throw std::invalid_argument("map_network: no layers");
  const std::size_t layer_count = span.size();

  std::array<LayerPass, kStackLayers> stack_scratch;
  std::vector<LayerPass> heap_scratch;
  LayerPass* pass = stack_scratch.data();
  if (layer_count > kStackLayers) {
    heap_scratch.resize(layer_count);
    pass = heap_scratch.data();
  }

  // --- Mapping (mirrors mapper.cpp map_layer, integer arithmetic) --------
  // xbar_size is validated to be a power of two, so the tile divisions are
  // shifts — identical quotients for the non-negative operands here.
  const int n = plan_.xbar_size;
  const int n_shift = std::countr_zero(static_cast<unsigned>(n));
  for (std::size_t i = 0; i < layer_count; ++i) {
    LayerPass& lp = pass[i];
    lp.rows_needed = span.rows[i];
    lp.cols_needed = span.cols[i] * plan_.cells_per_weight;
    lp.row_tiles = static_cast<int>((lp.rows_needed + n - 1) >> n_shift);
    lp.col_tiles = static_cast<int>((lp.cols_needed + n - 1) >> n_shift);
    lp.replication = 1;
    lp.reads_per_inference = span.pixels[i] * plan_.input_bits;
    lp.seq_reads = lp.reads_per_inference;  // sequential_reads() at repl 1
    lp.rows_in_fullest_tile =
        static_cast<int>(std::min<long long>(lp.rows_needed, n));
    lp.adc_bits_required =
        required_adc_bits(lp.rows_in_fullest_tile, plan_.bits_per_cell);
  }

  // --- Pipeline balancing via weight replication (ISAAC Sec. 4) ---------
  // Same greedy decisions as mapper.cpp map_network: replicate the layer
  // with the longest sequential read chain while it helps, per-layer
  // replication stays bounded and the array area stays inside the
  // replication envelope. The running array total is tracked incrementally
  // (identical integers to recomputing it every round).
  long long total_arrays = 0;
  for (std::size_t i = 0; i < layer_count; ++i) total_arrays += pass[i].total_arrays();
  while (true) {
    std::size_t worst = 0;
    long long worst_reads = -1;
    for (std::size_t i = 0; i < layer_count; ++i) {
      // seq_reads caches sequential_reads(), refreshed whenever a layer's
      // replication changes — same argmax as recomputing every round.
      const long long sr = pass[i].seq_reads;
      if (sr > worst_reads) {
        worst_reads = sr;
        worst = i;
      }
    }
    LayerPass& bottleneck = pass[worst];
    if (bottleneck.replication >= plan_.max_replication) break;
    // Replicating a 1-read stage cannot help.
    if (bottleneck.seq_reads <= 1) break;

    const double area_after =
        static_cast<double>(total_arrays + bottleneck.arrays_per_copy()) *
        plan_.area_per_array_mm2;
    if (area_after > plan_.replication_area_cap_mm2) break;
    ++bottleneck.replication;
    bottleneck.seq_reads = bottleneck.sequential_reads();
    total_arrays += bottleneck.arrays_per_copy();
  }

  report.weight_sigma = plan_.weight_sigma;
  if (detail) {
    report.mapping.layers.reserve(layer_count);
    for (std::size_t i = 0; i < layer_count; ++i) {
      const LayerPass& lp = pass[i];
      LayerMapping lm;
      lm.layer_index = static_cast<int>(i);
      lm.is_fc = span.fc[i] != 0;
      lm.rows_needed = lp.rows_needed;
      lm.cols_needed = lp.cols_needed;
      lm.row_tiles = lp.row_tiles;
      lm.col_tiles = lp.col_tiles;
      lm.replication = lp.replication;
      lm.row_utilization = static_cast<double>(lp.rows_needed) /
                           (static_cast<double>(lp.row_tiles) * n);
      lm.col_utilization = static_cast<double>(lp.cols_needed) /
                           (static_cast<double>(lp.col_tiles) * n);
      lm.reads_per_inference = lp.reads_per_inference;
      lm.rows_in_fullest_tile = lp.rows_in_fullest_tile;
      lm.adc_bits_required = lp.adc_bits_required;
      report.mapping.layers.push_back(lm);
    }
    report.layers.reserve(layer_count);
  }
  report.mapping.total_arrays = detail ? total_arrays : 0;

  // --- Per-layer energy / latency ---------------------------------------
  const double read_latency = plan_.read_latency_ns;

  for (std::size_t i = 0; i < layer_count; ++i) {
    const LayerPass& lp = pass[i];
    const int adc_deficit_bits = std::max(0, lp.adc_bits_required - plan_.adc_bits);
    report.max_adc_deficit_bits =
        std::max(report.max_adc_deficit_bits, adc_deficit_bits);

    const auto reads = static_cast<double>(lp.reads_per_inference);
    const auto rows = static_cast<double>(lp.rows_needed);
    const auto cols = static_cast<double>(lp.cols_needed);
    const double cols_allocated = static_cast<double>(lp.col_tiles) * n;

    // ADC: every *used* column is digitized once per read, in every row tile
    // (partial sums per tile are combined digitally afterwards).
    const double conversions = reads * lp.row_tiles * cols;
    const double e_adc = conversions * plan_.adc_energy_per_conversion_pj;

    // Analog crossbar: current flows through every cell on an active row,
    // including cells in under-utilized (allocated-but-unused) columns —
    // low column utilization costs real energy.
    const double e_xbar = reads * rows * cols_allocated * plan_.cell_read_energy_pj;

    // Wordline drivers fire once per active row per read.
    const double e_dac = reads * rows * plan_.dac_energy_per_row_pj;

    // Shift-&-add consumes one sample per conversion; column mux switches.
    const double e_sa = conversions * plan_.sa_mux_energy_per_conversion_pj;

    // Output-side digital work and buffering (write this layer's
    // activations, read them back for the next layer).
    const double outputs = static_cast<double>(span.pixels[i]) * span.cols[i];
    const double bytes = outputs;  // 8-bit activations
    const double e_digital = outputs * plan_.digital_energy_per_output_pj;
    const double e_buffer = 2.0 * bytes * plan_.buffer_energy_per_byte_pj;

    // Inter-tile H-tree traffic: this layer's activations travel to the
    // next layer's tiles. Tile count is estimated from this layer's arrays.
    const long long layer_tiles = std::max<long long>(
        1, (lp.total_arrays() + plan_.arrays_per_tile - 1) / plan_.arrays_per_tile);
    const int hops = std::max(1, htree_depth(layer_tiles));
    const double e_noc = bytes * hops * plan_.noc_energy_per_byte_hop_pj;

    report.energy_adc_pj += e_adc;
    report.energy_xbar_pj += e_xbar;
    report.energy_dac_pj += e_dac;
    report.energy_digital_pj += e_digital + e_sa;
    report.energy_buffer_pj += e_buffer;
    report.energy_noc_pj += e_noc;

    // Latency: the layer's pixels stream through its replicated copies; row
    // and column tiles operate in parallel, partial-sum combining adds a
    // shallow adder-tree delay per read.
    const double combine_ns =
        lp.row_tiles > 1 ? 0.5 * std::ceil(std::log2(lp.row_tiles)) : 0.0;
    const double layer_latency_ns =
        static_cast<double>(lp.sequential_reads()) * (read_latency + combine_ns);
    report.latency_ns += layer_latency_ns;

    if (detail) {
      LayerCost lc;
      lc.layer_index = static_cast<int>(i);
      lc.arrays = lp.total_arrays();
      lc.utilization = report.mapping.layers[i].utilization();
      lc.adc_deficit_bits = adc_deficit_bits;
      lc.energy_pj = e_adc + e_xbar + e_dac + e_sa + e_digital + e_buffer + e_noc;
      lc.latency_ns = layer_latency_ns;
      report.layers.push_back(lc);
    }
  }
  report.energy_total_pj = report.energy_adc_pj + report.energy_xbar_pj +
                           report.energy_dac_pj + report.energy_digital_pj +
                           report.energy_buffer_pj + report.energy_noc_pj;

  // --- area & leakage -----------------------------------------------------
  const double area_per_array = plan_.area_per_array_mm2;
  const auto arrays = static_cast<double>(total_arrays);
  const double tiles =
      std::ceil(arrays / static_cast<double>(plan_.arrays_per_tile));
  report.area_arrays_mm2 = arrays * area_per_array;
  report.area_buffer_mm2 =
      tiles * plan_.buffer_kb_per_tile * plan_.buffer_area_per_kb_mm2;
  report.area_digital_mm2 = tiles * plan_.digital_area_per_tile_mm2;
  report.area_noc_mm2 = tiles * plan_.noc_router_area_mm2;
  report.area_total_mm2 = report.area_arrays_mm2 + report.area_buffer_mm2 +
                          report.area_digital_mm2 + report.area_noc_mm2;

  report.leakage_mw =
      arrays * plan_.array_leakage_mw + tiles * plan_.leakage_per_tile_mw;

  // --- one-time programming cost --------------------------------------
  for (std::size_t i = 0; i < layer_count; ++i) {
    report.total_weights += span.rows[i] * span.cols[i] * pass[i].replication;
  }
  report.total_cells = report.total_weights * plan_.cells_per_weight;
  report.programming_energy_pj =
      static_cast<double>(report.total_cells) * plan_.device_write_energy_pj;

  if (report.area_total_mm2 > plan_.area_budget_mm2) {
    report.valid = false;
    // %g matches the ostream default formatting this string historically
    // used (6 significant digits); snprintf keeps the invalid path — which
    // tight-budget scenarios hit for most of the search space — free of
    // ostringstream construction.
    char buf[96];
    std::snprintf(buf, sizeof(buf), "chip area %g mm^2 exceeds budget %g mm^2",
                  report.area_total_mm2, plan_.area_budget_mm2);
    report.invalid_reason = buf;
  } else {
    report.valid = true;
  }
}

}  // namespace lcda::cim
