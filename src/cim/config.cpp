#include "lcda/cim/config.h"

#include <cstdio>

namespace lcda::cim {

std::string HardwareConfig::validate() const {
  const DeviceModel dev = device_model(device);
  if (bits_per_cell <= 0) return "bits_per_cell must be positive";
  if (bits_per_cell > dev.max_bits_per_cell) {
    // snprintf instead of ostringstream: validation runs on every
    // CostEvaluator construction (the memo-key hot path builds one per
    // distinct hardware config), and the stream machinery dominated it.
    const std::string_view name = device_name(device);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.*s supports at most %d bits per cell, got %d",
                  static_cast<int>(name.size()), name.data(),
                  dev.max_bits_per_cell, bits_per_cell);
    return buf;
  }
  if (weight_bits < bits_per_cell) return "weight_bits < bits_per_cell";
  if (weight_bits > 16) return "weight_bits > 16 unsupported";
  if (input_bits < 1 || input_bits > 16) return "input_bits out of range";
  if (adc_bits < 1 || adc_bits > 12) return "adc_bits out of range";
  if (xbar_size < 16 || xbar_size > 1024) return "xbar_size out of range";
  if ((xbar_size & (xbar_size - 1)) != 0) return "xbar_size must be a power of two";
  if (col_mux < 1 || col_mux > xbar_size) return "col_mux out of range";
  if (area_budget_mm2 <= 0) return "area_budget must be positive";
  return {};
}

std::string HardwareConfig::describe() const {
  const std::string_view name = device_name(device);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*s b%d w%d adc%d xbar%d mux%d",
                static_cast<int>(name.size()), name.data(), bits_per_cell,
                weight_bits, adc_bits, xbar_size, col_mux);
  return buf;
}

HardwareConfig isaac_reference() {
  HardwareConfig hw;
  hw.device = DeviceType::kRram;
  hw.bits_per_cell = 2;
  hw.weight_bits = 8;   // ISAAC: 16-bit weights over 8 cells; we use the
  hw.input_bits = 8;    // NACIM-style 8-bit fixed point operating point.
  hw.adc_bits = 8;
  hw.xbar_size = 128;
  hw.col_mux = 8;
  return hw;
}

}  // namespace lcda::cim
