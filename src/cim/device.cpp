#include "lcda/cim/device.h"

#include <cmath>
#include <stdexcept>

namespace lcda::cim {

std::string_view device_name(DeviceType t) {
  switch (t) {
    case DeviceType::kRram: return "RRAM";
    case DeviceType::kFefet: return "FeFET";
    case DeviceType::kSram: return "SRAM";
  }
  return "?";
}

DeviceType device_from_name(std::string_view name) {
  if (name == "RRAM") return DeviceType::kRram;
  if (name == "FeFET") return DeviceType::kFefet;
  if (name == "SRAM") return DeviceType::kSram;
  throw std::invalid_argument("device_from_name: unknown device \"" +
                              std::string(name) + "\"");
}

DeviceModel device_model(DeviceType t) {
  DeviceModel m;
  m.type = t;
  switch (t) {
    case DeviceType::kRram:
      m.max_bits_per_cell = 4;
      m.cell_area_f2 = 4.0;       // 1T1R
      m.read_energy_pj = 0.0002;
      m.write_energy_pj = 10.0;
      m.programming_sigma = 0.10;  // [13],[16]-style write variation
      m.temporal_sigma = 0.02;
      m.on_off_ratio = 100.0;
      m.leakage_nw = 0.0;
      break;
    case DeviceType::kFefet:
      m.max_bits_per_cell = 4;
      m.cell_area_f2 = 6.0;       // FeFET cell slightly larger
      m.read_energy_pj = 0.00015;
      m.write_energy_pj = 1.0;    // field-driven write, much cheaper
      m.programming_sigma = 0.06; // tighter Vth distribution
      m.temporal_sigma = 0.015;
      m.on_off_ratio = 1000.0;
      m.leakage_nw = 0.0;
      break;
    case DeviceType::kSram:
      m.max_bits_per_cell = 1;
      m.cell_area_f2 = 150.0;     // 6T cell
      m.read_energy_pj = 0.0005;
      m.write_energy_pj = 0.0005;
      m.programming_sigma = 0.0;  // digital storage: no analog variation
      m.temporal_sigma = 0.0;
      m.on_off_ratio = 1e6;
      m.leakage_nw = 0.5;
      break;
  }
  return m;
}

double effective_weight_sigma(const DeviceModel& dev, int bits_per_cell,
                              int cells_per_weight) {
  if (bits_per_cell <= 0 || cells_per_weight <= 0) {
    throw std::invalid_argument("effective_weight_sigma: bad cell split");
  }
  if (bits_per_cell > dev.max_bits_per_cell) {
    throw std::invalid_argument("effective_weight_sigma: cell cannot hold that many bits");
  }
  // Each cell's conductance error is sigma_cell of the *cell* range; the
  // cell holding bit-position p contributes scaled by 2^-(bits*index) of the
  // full weight range. Quadrature sum over cells (independent errors).
  double sum = 0.0;
  for (int i = 0; i < cells_per_weight; ++i) {
    const double scale = std::pow(2.0, -bits_per_cell * i);
    sum += scale * scale;
  }
  const double sigma_cell =
      std::sqrt(dev.programming_sigma * dev.programming_sigma +
                dev.temporal_sigma * dev.temporal_sigma);
  // Packing more levels into one cell makes write-verify convergence harder;
  // empirically the residual programming error grows with level count
  // (SWIM [5], Feinberg [13]). Linear factor in bits-per-cell.
  const double level_difficulty = 1.0 + 0.3 * (bits_per_cell - 1);
  return sigma_cell * level_difficulty * std::sqrt(sum);
}

}  // namespace lcda::cim
