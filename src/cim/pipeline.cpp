#include "lcda/cim/pipeline.h"

#include <stdexcept>

namespace lcda::cim {

double PipelineReport::imbalance() const {
  if (stage_latency_ns.empty()) return 0.0;
  double sum = 0.0;
  for (double l : stage_latency_ns) sum += l;
  const double mean = sum / static_cast<double>(stage_latency_ns.size());
  return mean > 0.0 ? bottleneck_latency_ns / mean : 0.0;
}

PipelineReport analyze_pipeline(const CostReport& report) {
  if (report.layers.empty()) {
    throw std::invalid_argument("analyze_pipeline: empty cost report");
  }
  PipelineReport pr;
  pr.frame_latency_ns = report.latency_ns;
  pr.stage_latency_ns.reserve(report.layers.size());
  for (const auto& lc : report.layers) {
    pr.stage_latency_ns.push_back(lc.latency_ns);
    if (lc.latency_ns > pr.bottleneck_latency_ns) {
      pr.bottleneck_latency_ns = lc.latency_ns;
      pr.bottleneck_layer = lc.layer_index;
    }
  }
  return pr;
}

}  // namespace lcda::cim
