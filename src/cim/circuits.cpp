#include "lcda/cim/circuits.h"

#include <cmath>
#include <stdexcept>

namespace lcda::cim {

namespace {
constexpr double kUm2ToMm2 = 1e-6;
}

AdcModel make_adc(int bits) {
  if (bits < 1 || bits > 12) throw std::invalid_argument("make_adc: bits out of range");
  AdcModel m;
  m.bits = bits;
  // Cap-DAC area doubles per bit over a fixed comparator/logic floor.
  m.area_mm2 = (500.0 + 10.0 * std::pow(2.0, bits)) * kUm2ToMm2;
  // ~1 pJ at 8 bits, dropping steeply at low resolution.
  m.energy_per_conversion_pj = 0.004 * std::pow(2.0, bits) + 0.02 * bits;
  // One SAR cycle per bit at 2 GHz internal clock.
  m.latency_per_conversion_ns = 0.5 * bits;
  m.leakage_mw = 0.002 * bits;
  return m;
}

DacModel make_dac() {
  DacModel m;
  m.area_per_row_mm2 = 2.0 * kUm2ToMm2;       // 1-bit driver + level shifter
  m.energy_per_row_activation_pj = 0.002;     // wordline cap swing
  m.leakage_per_row_mw = 1e-5;
  return m;
}

XbarModel make_xbar(int size, const DeviceModel& dev) {
  if (size < 16) throw std::invalid_argument("make_xbar: size too small");
  XbarModel m;
  m.size = size;
  const double cell_um2 = dev.cell_area_f2 * kFeatureSizeUm * kFeatureSizeUm;
  m.area_mm2 = cell_um2 * size * size * kUm2ToMm2;
  // Bitline RC grows with the number of rows hanging off the line;
  // calibrated to ISAAC's ~100 ns crossbar read cycle.
  m.read_settle_ns = 40.0 + 0.05 * size;
  m.cell_read_energy_pj = dev.read_energy_pj;
  m.leakage_mw = dev.leakage_nw * 1e-6 * size * size;
  return m;
}

PeripheryModel make_periphery() {
  PeripheryModel m;
  m.mux_area_per_col_mm2 = 0.25 * kUm2ToMm2;
  m.shift_add_area_per_adc_mm2 = 300.0 * kUm2ToMm2;
  m.shift_add_energy_per_sample_pj = 0.02;
  m.mux_energy_per_switch_pj = 0.0005;
  m.leakage_per_adc_mw = 0.005;
  return m;
}

BufferModel make_buffer() {
  BufferModel m;
  m.area_per_kb_mm2 = 300.0 * kUm2ToMm2;
  m.energy_per_byte_pj = 0.02;
  m.leakage_per_kb_mw = 0.01;
  return m;
}

DigitalModel make_digital() {
  DigitalModel m;
  m.area_per_tile_mm2 = 5000.0 * kUm2ToMm2;
  m.energy_per_output_pj = 0.01;
  m.network_energy_per_byte_pj = 0.05;
  m.leakage_per_tile_mw = 0.05;
  return m;
}

double CircuitLibrary::array_area_mm2(const HardwareConfig& hw) const {
  const int n_adc = adcs_per_array(hw.xbar_size, hw.col_mux);
  double area = xbar.area_mm2;
  area += dac.area_per_row_mm2 * hw.xbar_size;
  area += periphery.mux_area_per_col_mm2 * hw.xbar_size;
  area += adc.area_mm2 * n_adc;
  area += periphery.shift_add_area_per_adc_mm2 * n_adc;
  return area;
}

double CircuitLibrary::array_read_latency_ns(const HardwareConfig& hw) const {
  // All ADCs convert in parallel; each serves col_mux columns sequentially.
  return xbar.read_settle_ns + hw.col_mux * adc.latency_per_conversion_ns;
}

double CircuitLibrary::array_leakage_mw(const HardwareConfig& hw) const {
  const int n_adc = adcs_per_array(hw.xbar_size, hw.col_mux);
  return xbar.leakage_mw + n_adc * (adc.leakage_mw + periphery.leakage_per_adc_mw) +
         dac.leakage_per_row_mw * hw.xbar_size;
}

CircuitLibrary make_circuits(const HardwareConfig& hw) {
  const std::string err = hw.validate();
  if (!err.empty()) throw std::invalid_argument("make_circuits: " + err);
  CircuitLibrary lib;
  lib.device = device_model(hw.device);
  lib.adc = make_adc(hw.adc_bits);
  lib.dac = make_dac();
  lib.xbar = make_xbar(hw.xbar_size, lib.device);
  lib.periphery = make_periphery();
  lib.buffer = make_buffer();
  lib.digital = make_digital();
  return lib;
}

int required_adc_bits(int rows_used, int bits_per_cell) {
  if (rows_used <= 0 || bits_per_cell <= 0) {
    throw std::invalid_argument("required_adc_bits: bad arguments");
  }
  const int row_bits = static_cast<int>(std::ceil(std::log2(static_cast<double>(rows_used))));
  // A single row still needs the full cell resolution; accumulation across
  // rows adds log2(rows) bits, minus one because bit-serial inputs are 0/1.
  return std::max(bits_per_cell, bits_per_cell + row_bits - 1);
}

}  // namespace lcda::cim
