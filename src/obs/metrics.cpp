#include "lcda/obs/metrics.h"

#include <stdexcept>

#include "lcda/util/logging.h"

namespace lcda::obs {

namespace {

constexpr std::string_view kMetricsFormat = "lcda-metrics-v1";

}  // namespace

namespace detail {

std::size_t assign_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

const std::vector<long long>& default_latency_bounds_us() {
  static const std::vector<long long> kBounds = {
      1,      2,      5,      10,      20,      50,      100,     200,
      500,    1000,   2000,   5000,    10000,   20000,   50000,   100000,
      200000, 500000, 1000000, 2000000, 5000000, 10000000};
  return kBounds;
}

long long HistogramData::total_count() const {
  long long total = 0;
  for (long long c : counts) total += c;
  return total;
}

long long MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    const auto it = gauges.find(name);
    if (it == gauges.end()) gauges[name] = value;
    else it->second = std::max(it->second, value);
  }
  for (const auto& [name, hist] : other.histograms) {
    const auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = hist;
      continue;
    }
    HistogramData& mine = it->second;
    if (mine.bounds != hist.bounds || mine.counts.size() != hist.counts.size()) {
      util::warn_once("obs-histogram-bounds:" + name, "obs",
                      "histogram \"" + name +
                          "\" has mismatched bounds across snapshots; "
                          "keeping the first and dropping the other");
      continue;
    }
    for (std::size_t i = 0; i < mine.counts.size(); ++i) {
      mine.counts[i] += hist.counts[i];
    }
    mine.sum += hist.sum;
  }
}

MetricsSnapshot MetricsSnapshot::delta_since(const MetricsSnapshot& base) const {
  MetricsSnapshot out = *this;
  for (const auto& [name, value] : base.counters) {
    const auto it = out.counters.find(name);
    if (it != out.counters.end()) it->second -= value;
  }
  for (const auto& [name, hist] : base.histograms) {
    const auto it = out.histograms.find(name);
    if (it == out.histograms.end()) continue;
    HistogramData& mine = it->second;
    if (mine.bounds != hist.bounds || mine.counts.size() != hist.counts.size()) {
      continue;  // bounds changed mid-run: keep the absolute values
    }
    for (std::size_t i = 0; i < mine.counts.size(); ++i) {
      mine.counts[i] -= hist.counts[i];
    }
    mine.sum -= hist.sum;
  }
  return out;  // gauges: current value stands
}

util::Json MetricsSnapshot::to_json() const {
  util::Json j = util::Json::object();
  j["format"] = kMetricsFormat;
  util::Json cj = util::Json::object();
  for (const auto& [name, value] : counters) cj[name] = value;
  j["counters"] = cj;
  util::Json gj = util::Json::object();
  for (const auto& [name, value] : gauges) gj[name] = value;
  j["gauges"] = gj;
  util::Json hj = util::Json::object();
  for (const auto& [name, hist] : histograms) {
    util::Json h = util::Json::object();
    util::Json bounds = util::Json::array();
    for (long long b : hist.bounds) bounds.push_back(b);
    h["bounds"] = bounds;
    util::Json counts = util::Json::array();
    for (long long c : hist.counts) counts.push_back(c);
    h["counts"] = counts;
    h["sum"] = hist.sum;
    hj[name] = h;
  }
  j["histograms"] = hj;
  return j;
}

MetricsSnapshot MetricsSnapshot::from_json(const util::Json& j) {
  if (!j.is_object() || !j.contains("format") ||
      j.at("format").as_string() != kMetricsFormat) {
    throw std::invalid_argument(
        std::string("MetricsSnapshot::from_json: not a ") +
        std::string(kMetricsFormat) + " document");
  }
  MetricsSnapshot snap;
  for (const auto& [name, value] : j.at("counters").items()) {
    snap.counters[name] = value.as_int();
  }
  for (const auto& [name, value] : j.at("gauges").items()) {
    snap.gauges[name] = value.as_int();
  }
  for (const auto& [name, h] : j.at("histograms").items()) {
    HistogramData hist;
    for (const util::Json& b : h.at("bounds").elements()) {
      hist.bounds.push_back(b.as_int());
    }
    for (const util::Json& c : h.at("counts").elements()) {
      hist.counts.push_back(c.as_int());
    }
    hist.sum = h.at("sum").as_int();
    snap.histograms[name] = hist;
  }
  return snap;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::enable() { enabled_ = true; }

Counter Registry::counter(std::string_view name) {
  if (!enabled_) return Counter();
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::make_unique<CounterStripes>()).first;
  }
  return Counter(it->second->cells);
}

Gauge Registry::gauge(std::string_view name) {
  if (!enabled_) return Gauge();
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         std::make_unique<std::atomic<long long>>(0)).first;
  }
  return Gauge(it->second.get());
}

Histogram Registry::histogram(std::string_view name) {
  return histogram(name, default_latency_bounds_us());
}

Histogram Registry::histogram(std::string_view name,
                              std::vector<long long> bounds) {
  if (!enabled_) return Histogram();
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto cells = std::make_unique<detail::HistogramCells>();
    cells->bounds = std::move(bounds);
    cells->cells = std::vector<CounterCell>(
        kCounterStripes * (cells->bounds.size() + 1));
    cells->sums = std::vector<CounterCell>(kCounterStripes);
    it = histograms_.emplace(std::string(name), std::move(cells)).first;
  }
  return Histogram(it->second.get());
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, stripes] : counters_) {
    long long total = 0;
    for (const CounterCell& cell : stripes->cells) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    snap.counters[name] = total;
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, cells] : histograms_) {
    HistogramData hist;
    hist.bounds = cells->bounds;
    const std::size_t buckets = cells->bounds.size() + 1;
    hist.counts.assign(buckets, 0);
    for (std::size_t stripe = 0; stripe < kCounterStripes; ++stripe) {
      for (std::size_t b = 0; b < buckets; ++b) {
        hist.counts[b] += cells->cells[stripe * buckets + b].value.load(
            std::memory_order_relaxed);
      }
      hist.sum += cells->sums[stripe].value.load(std::memory_order_relaxed);
    }
    snap.histograms[name] = std::move(hist);
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard lock(mutex_);
  for (const auto& [name, stripes] : counters_) {
    for (CounterCell& cell : stripes->cells) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& [name, cell] : gauges_) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (const auto& [name, cells] : histograms_) {
    for (CounterCell& cell : cells->cells) {
      cell.value.store(0, std::memory_order_relaxed);
    }
    for (CounterCell& cell : cells->sums) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
}

void add_counter(std::string_view name, long long n) {
  Registry& registry = Registry::instance();
  if (!registry.enabled()) return;
  registry.counter(name).add(n);
}

}  // namespace lcda::obs
