#include "lcda/obs/trace.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <stdexcept>

namespace lcda::obs {

namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Small dense thread id for the "tid" lane (0 is reserved so Chrome
/// never sees a zero tid on a real thread).
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  static thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

util::Json make_event(const char* name, const char* phase, std::int64_t ts,
                      int pid, std::uint32_t tid) {
  util::Json e = util::Json::object();
  e["name"] = std::string(name);
  e["ph"] = std::string(phase);
  e["ts"] = static_cast<long long>(ts);
  e["pid"] = pid;
  e["tid"] = static_cast<long long>(tid);
  return e;
}

}  // namespace

SpanTracer& SpanTracer::instance() {
  static SpanTracer tracer;
  return tracer;
}

void SpanTracer::enable(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  if (enabled_) return;
  ring_.resize(std::max<std::size_t>(capacity, 8));
  enabled_ = true;
}

void SpanTracer::begin(std::string_view name) { record('B', name); }
void SpanTracer::end(std::string_view name) { record('E', name); }

void SpanTracer::record(char phase, std::string_view name) {
  if (!enabled_) return;
  const std::int64_t ts = now_us();
  const std::uint32_t tid = current_tid();
  std::lock_guard lock(mutex_);
  std::size_t slot;
  if (count_ < ring_.size()) {
    slot = (head_ + count_) % ring_.size();
    ++count_;
  } else {
    // Full: overwrite the oldest event (drop-oldest) and count the loss.
    slot = head_;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
  TraceEvent& e = ring_[slot];
  const std::size_t n = std::min(name.size(), sizeof(e.name) - 1);
  std::memcpy(e.name, name.data(), n);
  e.name[n] = '\0';
  e.phase = phase;
  e.tid = tid;
  e.ts_us = ts;
}

std::uint64_t SpanTracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::size_t SpanTracer::size() const {
  std::lock_guard lock(mutex_);
  return count_;
}

void SpanTracer::clear() {
  std::lock_guard lock(mutex_);
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

util::Json SpanTracer::export_chrome(int pid,
                                     std::string_view process_name) const {
  std::vector<TraceEvent> events;
  std::uint64_t dropped;
  {
    std::lock_guard lock(mutex_);
    events.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i) {
      events.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    dropped = dropped_;
  }

  util::Json arr = util::Json::array();
  util::Json meta = util::Json::object();
  meta["name"] = std::string("process_name");
  meta["ph"] = std::string("M");
  meta["pid"] = pid;
  meta["tid"] = 0;
  util::Json args = util::Json::object();
  args["name"] = std::string(process_name);
  meta["args"] = args;
  arr.push_back(meta);

  // Balance and clamp per thread. Ring order IS per-thread program order
  // (each thread's records are sequenced), so a per-tid pass sees each
  // thread's events in the order they happened:
  //  - an 'E' with no open 'B' is an orphan whose begin was overwritten
  //    (drop-oldest) — skip it, the pair is gone;
  //  - wall clock going backwards (NTP step) is clamped away so per-tid
  //    timestamps stay non-decreasing;
  //  - spans still open at export get a synthetic 'E' at the thread's
  //    last timestamp.
  struct TidState {
    std::vector<std::string> open;
    std::int64_t last_ts = 0;
  };
  std::map<std::uint32_t, TidState> tids;
  for (const TraceEvent& e : events) {
    TidState& st = tids[e.tid];
    const std::int64_t ts = std::max(e.ts_us, st.last_ts);
    if (e.phase == 'B') {
      st.open.emplace_back(e.name);
    } else {
      if (st.open.empty()) continue;  // orphaned end: begin was dropped
      st.open.pop_back();
    }
    st.last_ts = ts;
    arr.push_back(make_event(e.name, e.phase == 'B' ? "B" : "E", ts, pid,
                             e.tid));
  }
  for (auto& [tid, st] : tids) {
    while (!st.open.empty()) {
      arr.push_back(
          make_event(st.open.back().c_str(), "E", st.last_ts, pid, tid));
      st.open.pop_back();
    }
  }

  util::Json doc = util::Json::object();
  doc["traceEvents"] = arr;
  doc["displayTimeUnit"] = std::string("ms");
  doc["obs_dropped_events"] = static_cast<long long>(dropped);
  return doc;
}

void write_trace_file(const util::Json& doc, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot write trace file " + path);
  }
  out << doc.dump() << "\n";
  if (!out.flush()) {
    throw std::runtime_error("obs: short write to trace file " + path);
  }
}

void append_chrome_events(util::Json& events, const util::Json& doc, int pid,
                          std::string_view process_name) {
  if (!doc.is_object() || !doc.contains("traceEvents")) return;
  for (const util::Json& e : doc.at("traceEvents").elements()) {
    if (!e.is_object() || !e.contains("ph")) continue;
    if (e.at("ph").as_string() == "M") continue;  // re-labelled below
    // Rebuild rather than copy-and-poke: Json copies share their object
    // rep, and this helper must not mutate the caller's document.
    util::Json copy = util::Json::object();
    for (const auto& [key, value] : e.items()) {
      if (key != "pid") copy[key] = value;
    }
    copy["pid"] = pid;
    events.push_back(std::move(copy));
  }
  util::Json meta = util::Json::object();
  meta["name"] = std::string("process_name");
  meta["ph"] = std::string("M");
  meta["pid"] = pid;
  meta["tid"] = 0;
  util::Json args = util::Json::object();
  args["name"] = std::string(process_name);
  meta["args"] = args;
  events.push_back(meta);
}

}  // namespace lcda::obs
