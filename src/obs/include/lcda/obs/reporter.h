#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "lcda/obs/metrics.h"

namespace lcda::obs {

/// Periodic stderr heartbeat (`--metrics-interval=SEC`): every interval a
/// background thread prints one `[obs] ...` line with the registry's
/// current counters. Read-only over the registry (snapshots sum relaxed
/// atomics), so it can never perturb a run — and it replaces ad-hoc
/// progress prints scattered through long studies.
class StatsReporter {
 public:
  /// Starts the heartbeat thread; interval_sec <= 0 starts nothing.
  explicit StatsReporter(double interval_sec);
  ~StatsReporter();
  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Stops the thread (idempotent; the destructor calls it). Prints one
  /// final line so short runs still report.
  void stop();

 private:
  void heartbeat_line(double elapsed_sec) const;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

/// Writes a snapshot to `path` as a pretty-printed lcda-metrics-v1
/// document with a trailing newline. Throws on I/O failure.
void write_metrics_file(const MetricsSnapshot& snapshot,
                        const std::string& path);

}  // namespace lcda::obs
